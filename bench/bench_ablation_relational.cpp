//===- bench_ablation_relational.cpp - Section 4's relational argument -------===//
//
// The paper argues (end of Section 4) that recording relational hints —
// (base allocation site, property name, value allocation site) triples —
// is decisively more precise than recording only the observed property
// names and turning dynamic accesses into static ones. This ablation
// quantifies that on the dynamic-write-heavy part of the corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();

  std::printf("Ablation: relational hints ([DPR]/[DPW]) vs. non-relational "
              "(property names only)\n");
  rule();
  std::printf("%-26s %12s %12s %14s %14s\n", "Benchmark", "Edges rel",
              "Edges nonrel", "Precision rel", "Precision nonrel");
  rule();

  double RelPrecSum = 0, NonRelPrecSum = 0, RelRecSum = 0, NonRelRecSum = 0;
  size_t Count = 0;
  for (const ProjectSpec &Spec : Suite) {
    ProjectAnalyzer A(Spec);
    const CallGraph &Dyn = A.dynamicCallGraph();
    AnalysisResult Rel = A.analyze(AnalysisMode::Hints);
    AnalysisResult NonRel = A.analyze(AnalysisMode::NonRelationalHints);
    RecallPrecision RelRP = compareCallGraphs(Rel.CG, Dyn);
    RecallPrecision NonRelRP = compareCallGraphs(NonRel.CG, Dyn);
    std::printf("%-26s %12zu %12zu %14s %14s\n", Spec.Name.c_str(),
                Rel.NumCallEdges, NonRel.NumCallEdges,
                pct(RelRP.Precision).c_str(),
                pct(NonRelRP.Precision).c_str());
    RelPrecSum += RelRP.Precision;
    NonRelPrecSum += NonRelRP.Precision;
    RelRecSum += RelRP.Recall;
    NonRelRecSum += NonRelRP.Recall;
    ++Count;
  }
  rule();
  std::printf("Average precision: relational %s vs non-relational %s\n",
              pct(RelPrecSum / Count).c_str(),
              pct(NonRelPrecSum / Count).c_str());
  std::printf("Average recall:    relational %s vs non-relational %s\n",
              pct(RelRecSum / Count).c_str(),
              pct(NonRelRecSum / Count).c_str());
  std::printf("(expected shape: similar recall, relational strictly more "
              "precise / fewer spurious edges)\n");
  return 0;
}
