//===- bench_interp_scaling.cpp - Interpreter property-access scaling --------===//
//
// Measures the approximate-interpretation phase on the three most
// property-access-heavy corpus patterns — express-like mixin initialization
// (Figure 1), plugin registries keyed by computed names, and prototype-OOP
// libraries with descriptor-table method installation — at the three corpus
// size classes. The interpreter phase is where the shape/IC work lands, so
// this bench is the before/after yardstick for that layer (the 13 metric
// benches are byte-identical by construction and measure nothing here).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/PatternGenerators.h"

#include <benchmark/benchmark.h>

using namespace jsai;
using namespace jsai::bench;

namespace {

using GeneratorFn = ProjectSpec (*)(Rng &, unsigned);

struct PatternCase {
  const char *Name;
  GeneratorFn Generate;
};

/// Monomorphic constructor/method loops: the one corpus-style workload
/// where member-access sites re-execute, so the inline caches actually get
/// warm (the generator patterns below run almost every site exactly once,
/// which is the worst case for caching by construction of the approximate
/// interpreter).
ProjectSpec makeHotLoops(Rng &, unsigned Size) {
  unsigned N = 5000u << Size;
  SourceWriter W;
  // Three-level prototype hierarchy (Box -> Shape2D -> Entity): method and
  // constant lookups resolve one to three hops up the chain, which is where
  // a warm cache skips the most generic-walk work.
  W.open("function Entity(id) {")
      .line("this.id = id;")
      .line("this.tags = 0;")
      .close();
  W.open("Entity.prototype.describe = function () {")
      .line("return (this.id + this.tags) * this.scale;")
      .close("};");
  W.line("Entity.prototype.kind = 1;");
  W.line("Entity.prototype.scale = 1;");
  W.open("function Shape2D(id, w, h) {")
      .line("Entity.call(this, id);")
      .line("this.w = w;")
      .line("this.h = h;")
      .close();
  W.line("Object.setPrototypeOf(Shape2D.prototype, Entity.prototype);");
  W.open("Shape2D.prototype.area = function () {")
      .line("return this.w * this.h * this.scale * this.kind;")
      .close("};");
  W.open("function Box(id, w, h, d) {")
      .line("Shape2D.call(this, id, w, h);")
      .line("this.d = d;")
      .close();
  W.line("Object.setPrototypeOf(Box.prototype, Shape2D.prototype);");
  W.open("Box.prototype.volume = function () {")
      .line("return this.area() * this.d * this.scale;")
      .close("};");
  W.open("function Accum() {")
      .line("this.total = 0;")
      .line("this.count = 0;")
      .close();
  W.open("Accum.prototype.add = function (b) {")
      .line("this.total = this.total + b.volume() + b.describe() + b.kind;")
      .line("this.count = this.count + 1;")
      .line("return this.total;")
      .close("};");
  W.line("var acc = new Accum();");
  W.open("for (var i = 0; i < " + std::to_string(N) + "; i = i + 1) {")
      .line("var b = new Box(i, i + 1, i + 2, 2);")
      .line("acc.add(b);")
      .line("b.w = acc.total;")
      .line("b.h = b.w + b.area() + b.kind;")
      .close();
  W.line("module.exports = acc.total;");

  ProjectSpec Spec;
  Spec.Pattern = "hot-loops";
  Spec.Files.addFile("app/main.js", W.str());
  return Spec;
}

constexpr PatternCase Patterns[] = {
    {"mixin-init", makeExpressLike},
    {"plugin-tables", makePluginRegistry},
    {"prototype-oop", makeOopLibrary},
    {"hot-loops", makeHotLoops},
};

ProjectSpec makeProject(size_t PatternIdx, unsigned Size) {
  Rng R(4242 + 31 * unsigned(PatternIdx) + Size);
  ProjectSpec Spec = Patterns[PatternIdx].Generate(R, Size);
  Spec.Name = std::string(Patterns[PatternIdx].Name) + "-S" +
              std::to_string(Size);
  return Spec;
}

ApproxOptions approxOptions(bool EnableIC) {
  ApproxOptions AO;
  AO.EnableInlineCaches = EnableIC;
  return AO;
}

void BM_ApproxInterp(benchmark::State &State) {
  ProjectSpec Spec =
      makeProject(size_t(State.range(0)), unsigned(State.range(1)));
  bool EnableIC = State.range(2) != 0;
  for (auto _ : State) {
    // Fresh analyzer each iteration: hint collection is cached otherwise.
    ProjectAnalyzer A(Spec, approxOptions(EnableIC));
    benchmark::DoNotOptimize(A.hints().size());
  }
}

void registerBenches() {
  for (size_t P = 0; P != std::size(Patterns); ++P)
    benchmark::RegisterBenchmark(
        (std::string("BM_ApproxInterp/") + Patterns[P].Name).c_str(),
        BM_ApproxInterp)
        ->Args({long(P), 0, 1})
        ->Args({long(P), 1, 1})
        ->Args({long(P), 2, 1})
        ->Unit(benchmark::kMillisecond);
  // The IC ablation only makes sense where sites re-execute.
  benchmark::RegisterBenchmark("BM_ApproxInterp/hot-loops-noic",
                               BM_ApproxInterp)
      ->Args({long(std::size(Patterns)) - 1, 0, 0})
      ->Args({long(std::size(Patterns)) - 1, 1, 0})
      ->Args({long(std::size(Patterns)) - 1, 2, 0})
      ->Unit(benchmark::kMillisecond);
}

/// One-shot table: per-pattern/size interpreter phase time plus the
/// property-system counters (IC hit rate, shape-tree churn).
void printScalingTable() {
  std::printf("Interpreter scaling on property-access-heavy patterns\n");
  rule();
  std::printf("%-22s %6s %8s %10s %12s %8s %8s %6s %6s\n", "Pattern", "Size",
              "Modules", "Functions", "Approx (s)", "ICHits", "ICMiss",
              "Hit%", "Shapes");
  rule();
  for (size_t P = 0; P != std::size(Patterns); ++P) {
    for (unsigned Size = 0; Size != 3; ++Size) {
      ProjectSpec Spec = makeProject(P, Size);
      ProjectAnalyzer A(Spec);
      size_t Hints = A.hints().size();
      benchmark::DoNotOptimize(Hints);
      const InterpStats &St = A.approxStats().Interp;
      std::printf("%-22s %6u %8zu %10zu %12.4f %8llu %8llu %5.1f%% %6llu\n",
                  Patterns[P].Name, Size, Spec.numModules(), A.numFunctions(),
                  A.approxSeconds(), (unsigned long long)St.icHits(),
                  (unsigned long long)St.icMisses(), 100.0 * St.icHitRate(),
                  (unsigned long long)St.ShapesCreated);
    }
  }
  rule();
  std::printf("\n");

  std::printf("Inline-cache ablation on hot-loops (approx phase)\n");
  rule();
  std::printf("%-22s %6s %14s %14s %9s %8s\n", "Pattern", "Size",
              "IC off (s)", "IC on (s)", "Speedup", "Hit%");
  rule();
  for (unsigned Size = 0; Size != 3; ++Size) {
    ProjectSpec Spec = makeProject(std::size(Patterns) - 1, Size);
    // Best-of-3 per configuration: one-shot wall times are noisy, and the
    // minimum is the standard noise-robust estimator for a deterministic
    // workload.
    double OffS = 0, OnS = 0, HitRate = 0;
    for (int Rep = 0; Rep != 3; ++Rep) {
      ProjectAnalyzer Off(Spec, approxOptions(false));
      Off.hints();
      ProjectAnalyzer On(Spec, approxOptions(true));
      On.hints();
      HitRate = On.approxStats().Interp.icHitRate();
      if (Rep == 0 || Off.approxSeconds() < OffS)
        OffS = Off.approxSeconds();
      if (Rep == 0 || On.approxSeconds() < OnS)
        OnS = On.approxSeconds();
    }
    std::printf("%-22s %6u %14.4f %14.4f %8.2fx %7.1f%%\n", "hot-loops",
                Size, OffS, OnS, OnS > 0 ? OffS / OnS : 0.0,
                100.0 * HitRate);
  }
  rule();
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printScalingTable();
  registerBenches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
