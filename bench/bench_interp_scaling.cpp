//===- bench_interp_scaling.cpp - Interpreter property-access scaling --------===//
//
// Measures the approximate-interpretation phase on the three most
// property-access-heavy corpus patterns — express-like mixin initialization
// (Figure 1), plugin registries keyed by computed names, and prototype-OOP
// libraries with descriptor-table method installation — at the three corpus
// size classes. The interpreter phase is where the shape/IC work lands, so
// this bench is the before/after yardstick for that layer (the 13 metric
// benches are byte-identical by construction and measure nothing here).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/PatternGenerators.h"

#include <benchmark/benchmark.h>

using namespace jsai;
using namespace jsai::bench;

namespace {

using GeneratorFn = ProjectSpec (*)(Rng &, unsigned);

struct PatternCase {
  const char *Name;
  GeneratorFn Generate;
};

/// Monomorphic constructor/method loops: the one corpus-style workload
/// where member-access sites re-execute, so the inline caches actually get
/// warm (the generator patterns below run almost every site exactly once,
/// which is the worst case for caching by construction of the approximate
/// interpreter).
ProjectSpec makeHotLoops(Rng &, unsigned Size) {
  unsigned N = 5000u << Size;
  SourceWriter W;
  // Three-level prototype hierarchy (Box -> Shape2D -> Entity): method and
  // constant lookups resolve one to three hops up the chain, which is where
  // a warm cache skips the most generic-walk work.
  W.open("function Entity(id) {")
      .line("this.id = id;")
      .line("this.tags = 0;")
      .close();
  W.open("Entity.prototype.describe = function () {")
      .line("return (this.id + this.tags) * this.scale;")
      .close("};");
  W.line("Entity.prototype.kind = 1;");
  W.line("Entity.prototype.scale = 1;");
  W.open("function Shape2D(id, w, h) {")
      .line("Entity.call(this, id);")
      .line("this.w = w;")
      .line("this.h = h;")
      .close();
  W.line("Object.setPrototypeOf(Shape2D.prototype, Entity.prototype);");
  W.open("Shape2D.prototype.area = function () {")
      .line("return this.w * this.h * this.scale * this.kind;")
      .close("};");
  W.open("function Box(id, w, h, d) {")
      .line("Shape2D.call(this, id, w, h);")
      .line("this.d = d;")
      .close();
  W.line("Object.setPrototypeOf(Box.prototype, Shape2D.prototype);");
  W.open("Box.prototype.volume = function () {")
      .line("return this.area() * this.d * this.scale;")
      .close("};");
  W.open("function Accum() {")
      .line("this.total = 0;")
      .line("this.count = 0;")
      .close();
  W.open("Accum.prototype.add = function (b) {")
      .line("this.total = this.total + b.volume() + b.describe() + b.kind;")
      .line("this.count = this.count + 1;")
      .line("return this.total;")
      .close("};");
  W.line("var acc = new Accum();");
  W.open("for (var i = 0; i < " + std::to_string(N) + "; i = i + 1) {")
      .line("var b = new Box(i, i + 1, i + 2, 2);")
      .line("acc.add(b);")
      .line("b.w = acc.total;")
      .line("b.h = b.w + b.area() + b.kind;")
      .close();
  W.line("module.exports = acc.total;");

  ProjectSpec Spec;
  Spec.Pattern = "hot-loops";
  Spec.Files.addFile("app/main.js", W.str());
  return Spec;
}

/// Pure control-flow/arithmetic kernels: long counted loops over local
/// variables with almost no property traffic. This isolates statement and
/// expression dispatch itself — the walker pays a recursive evalExpr visit
/// per AST node per iteration, the bytecode VM a flat opcode fetch — so it
/// is the headline workload for the VM-vs-walker engine ablation.
ProjectSpec makeLoopKernels(Rng &, unsigned Size) {
  unsigned Total = 6000u << Size; // Inner iterations across all calls.
  unsigned Calls = 8;
  unsigned N = Total / Calls;
  SourceWriter W;
  W.open("function kernel(n, seed) {")
      .line("var s = seed, a = 1, b = 2, c = 3;")
      .open("for (var i = 0; i < n; i = i + 1) {")
      .line("a = (a * 31 + i) % 1009;")
      .line("b = b + a - (i % 7);")
      .line("c = b < 500 ? c + 2 : c - 1;")
      .line("s = s + a + b * 2 - c;")
      .line("if (s > 1000000) { s = s - 1000000; }")
      .close()
      .line("return s;")
      .close();
  W.open("function reduce(total) {")
      .line("var acc = 0;")
      .open("for (var j = 0; j < 50; j = j + 1) {")
      .line("acc = (acc + total * j) % 99991;")
      .line("acc = acc + (j % 2 === 0 ? 1 : -1);")
      .close()
      .line("return acc;")
      .close();
  W.line("var total = 0;");
  W.open("for (var r = 0; r < " + std::to_string(Calls) + "; r = r + 1) {")
      .line("total = total + kernel(" + std::to_string(N) + ", r);")
      .line("total = reduce(total);")
      .close();
  W.line("module.exports = total;");

  ProjectSpec Spec;
  Spec.Pattern = "loop-kernels";
  Spec.Files.addFile("app/main.js", W.str());
  return Spec;
}

/// A switch-dispatched state machine inside a counted while loop: dense
/// branching with zero property traffic, the second loop-heavy workload of
/// the engine ablation (loop-kernels stresses straight-line arithmetic,
/// this stresses control transfer).
ProjectSpec makeStateMachine(Rng &, unsigned Size) {
  unsigned N = 800u << Size; // Per-call iterations; 6 calls per run.
  SourceWriter W;
  W.open("function machine(n, seed) {")
      .line("var st = 0, acc = seed, i = 0;")
      .open("while (i < n) {")
      .open("switch (st % 4) {")
      .line("case 0: acc = acc + i * 3; st = st + 1; break;")
      .line("case 1: acc = acc - (i % 5); st = st + 3; break;")
      .line("case 2: acc = (acc * 7 + 1) % 10007; st = st + 1; break;")
      .line("default: acc = acc + 1; st = acc % 9; break;")
      .close()
      .line("acc = (acc * 5 + st) % 9973;")
      .line("i = i + 1;")
      .close()
      .line("return acc;")
      .close();
  W.line("var out = 0;");
  W.open("for (var r = 0; r < 6; r = r + 1) {")
      .line("out = out + machine(" + std::to_string(N) + ", r);")
      .close();
  W.line("module.exports = out;");

  ProjectSpec Spec;
  Spec.Pattern = "state-machine";
  Spec.Files.addFile("app/main.js", W.str());
  return Spec;
}

constexpr PatternCase Patterns[] = {
    {"mixin-init", makeExpressLike},
    {"plugin-tables", makePluginRegistry},
    {"prototype-oop", makeOopLibrary},
    {"hot-loops", makeHotLoops},
    {"loop-kernels", makeLoopKernels},
    {"state-machine", makeStateMachine},
};

constexpr size_t HotLoopsIdx = 3;
constexpr size_t LoopKernelsIdx = 4;
constexpr size_t StateMachineIdx = 5;

ProjectSpec makeProject(size_t PatternIdx, unsigned Size) {
  Rng R(4242 + 31 * unsigned(PatternIdx) + Size);
  ProjectSpec Spec = Patterns[PatternIdx].Generate(R, Size);
  Spec.Name = std::string(Patterns[PatternIdx].Name) + "-S" +
              std::to_string(Size);
  return Spec;
}

ApproxOptions approxOptions(bool EnableIC,
                            InterpEngineKind Engine = InterpEngineKind::Ast,
                            bool VmOptimize = false) {
  ApproxOptions AO;
  AO.EnableInlineCaches = EnableIC;
  AO.Engine = Engine;
  AO.VmOptimize = VmOptimize;
  return AO;
}

void BM_ApproxInterp(benchmark::State &State) {
  ProjectSpec Spec =
      makeProject(size_t(State.range(0)), unsigned(State.range(1)));
  bool EnableIC = State.range(2) != 0;
  InterpEngineKind Engine = State.range(3) != 0 ? InterpEngineKind::Vm
                                                : InterpEngineKind::Ast;
  bool VmOptimize = State.range(4) != 0;
  for (auto _ : State) {
    // Fresh analyzer each iteration: hint collection is cached otherwise.
    ProjectAnalyzer A(Spec, approxOptions(EnableIC, Engine, VmOptimize));
    benchmark::DoNotOptimize(A.hints().size());
  }
}

void registerBenches() {
  for (size_t P = 0; P != std::size(Patterns); ++P)
    benchmark::RegisterBenchmark(
        (std::string("BM_ApproxInterp/") + Patterns[P].Name).c_str(),
        BM_ApproxInterp)
        ->Args({long(P), 0, 1, 0, 0})
        ->Args({long(P), 1, 1, 0, 0})
        ->Args({long(P), 2, 1, 0, 0})
        ->Unit(benchmark::kMillisecond);
  // The IC ablation only makes sense where sites re-execute.
  benchmark::RegisterBenchmark("BM_ApproxInterp/hot-loops-noic",
                               BM_ApproxInterp)
      ->Args({long(HotLoopsIdx), 0, 0, 0, 0})
      ->Args({long(HotLoopsIdx), 1, 0, 0, 0})
      ->Args({long(HotLoopsIdx), 2, 0, 0, 0})
      ->Unit(benchmark::kMillisecond);
  // Engine ablation: the loop-heavy patterns under the bytecode VM, plain
  // and optimized (the default registrations above run the tree walker).
  for (size_t P : {HotLoopsIdx, LoopKernelsIdx, StateMachineIdx}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_ApproxInterp/") + Patterns[P].Name + "-vm").c_str(),
        BM_ApproxInterp)
        ->Args({long(P), 0, 1, 1, 0})
        ->Args({long(P), 1, 1, 1, 0})
        ->Args({long(P), 2, 1, 1, 0})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_ApproxInterp/") + Patterns[P].Name + "-vmopt")
            .c_str(),
        BM_ApproxInterp)
        ->Args({long(P), 0, 1, 1, 1})
        ->Args({long(P), 1, 1, 1, 1})
        ->Args({long(P), 2, 1, 1, 1})
        ->Unit(benchmark::kMillisecond);
  }
}

/// One-shot table: per-pattern/size interpreter phase time plus the
/// property-system counters (IC hit rate, shape-tree churn).
void printScalingTable() {
  std::printf("Interpreter scaling on property-access-heavy patterns\n");
  rule();
  std::printf("%-22s %6s %8s %10s %12s %8s %8s %6s %6s\n", "Pattern", "Size",
              "Modules", "Functions", "Approx (s)", "ICHits", "ICMiss",
              "Hit%", "Shapes");
  rule();
  for (size_t P = 0; P != std::size(Patterns); ++P) {
    for (unsigned Size = 0; Size != 3; ++Size) {
      ProjectSpec Spec = makeProject(P, Size);
      ProjectAnalyzer A(Spec);
      size_t Hints = A.hints().size();
      benchmark::DoNotOptimize(Hints);
      const InterpStats &St = A.approxStats().Interp;
      std::printf("%-22s %6u %8zu %10zu %12.4f %8llu %8llu %5.1f%% %6llu\n",
                  Patterns[P].Name, Size, Spec.numModules(), A.numFunctions(),
                  A.approxSeconds(), (unsigned long long)St.icHits(),
                  (unsigned long long)St.icMisses(), 100.0 * St.icHitRate(),
                  (unsigned long long)St.ShapesCreated);
    }
  }
  rule();
  std::printf("\n");

  std::printf("Inline-cache ablation on hot-loops (approx phase)\n");
  rule();
  std::printf("%-22s %6s %14s %14s %9s %8s\n", "Pattern", "Size",
              "IC off (s)", "IC on (s)", "Speedup", "Hit%");
  rule();
  for (unsigned Size = 0; Size != 3; ++Size) {
    ProjectSpec Spec = makeProject(HotLoopsIdx, Size);
    // Best-of-3 per configuration: one-shot wall times are noisy, and the
    // minimum is the standard noise-robust estimator for a deterministic
    // workload.
    double OffS = 0, OnS = 0, HitRate = 0;
    for (int Rep = 0; Rep != 3; ++Rep) {
      ProjectAnalyzer Off(Spec, approxOptions(false));
      Off.hints();
      ProjectAnalyzer On(Spec, approxOptions(true));
      On.hints();
      HitRate = On.approxStats().Interp.icHitRate();
      if (Rep == 0 || Off.approxSeconds() < OffS)
        OffS = Off.approxSeconds();
      if (Rep == 0 || On.approxSeconds() < OnS)
        OnS = On.approxSeconds();
    }
    std::printf("%-22s %6u %14.4f %14.4f %8.2fx %7.1f%%\n", "hot-loops",
                Size, OffS, OnS, OnS > 0 ? OffS / OnS : 0.0,
                100.0 * HitRate);
  }
  rule();
  std::printf("\n");

  std::printf("Engine ablation: bytecode VM vs tree walker (approx phase)\n");
  rule();
  std::printf("%-22s %6s %14s %14s %9s\n", "Pattern", "Size", "walker (s)",
              "vm (s)", "Speedup");
  rule();
  for (size_t P : {HotLoopsIdx, LoopKernelsIdx, StateMachineIdx}) {
    for (unsigned Size = 0; Size != 3; ++Size) {
      ProjectSpec Spec = makeProject(P, Size);
      // Best-of-3 per engine, same estimator as the IC ablation. Both runs
      // produce identical hints (asserted here — the differential-oracle
      // contract, enforced again end to end by the golden-metrics gate).
      double AstS = 0, VmS = 0;
      size_t AstHints = 0, VmHints = 0;
      for (int Rep = 0; Rep != 3; ++Rep) {
        ProjectAnalyzer Walker(
            Spec, approxOptions(true, InterpEngineKind::Ast));
        AstHints = Walker.hints().size();
        ProjectAnalyzer Vm(Spec, approxOptions(true, InterpEngineKind::Vm));
        VmHints = Vm.hints().size();
        if (Rep == 0 || Walker.approxSeconds() < AstS)
          AstS = Walker.approxSeconds();
        if (Rep == 0 || Vm.approxSeconds() < VmS)
          VmS = Vm.approxSeconds();
      }
      if (AstHints != VmHints)
        std::printf("ENGINE DIVERGENCE: %zu vs %zu hints\n", AstHints,
                    VmHints);
      std::printf("%-22s %6u %14.4f %14.4f %8.2fx\n", Patterns[P].Name, Size,
                  AstS, VmS, VmS > 0 ? AstS / VmS : 0.0);
    }
  }
  rule();
  std::printf("\n");

  std::printf(
      "Bytecode optimizer ablation: --vm-opt=on vs off (approx phase)\n");
  rule();
  std::printf("%-22s %6s %12s %12s %8s %7s %7s %6s\n", "Pattern", "Size",
              "vm (s)", "vm-opt (s)", "Speedup", "Fused", "Quick", "Deopt");
  rule();
  for (size_t P : {HotLoopsIdx, LoopKernelsIdx, StateMachineIdx}) {
    for (unsigned Size = 0; Size != 3; ++Size) {
      ProjectSpec Spec = makeProject(P, Size);
      // Best-of-3 per mode; identical hints asserted (the optimizer is
      // inside the differential-oracle contract like the engine choice).
      double PlainS = 0, OptS = 0;
      size_t PlainHints = 0, OptHints = 0;
      VmOptStats OptStats;
      for (int Rep = 0; Rep != 3; ++Rep) {
        ProjectAnalyzer Plain(
            Spec, approxOptions(true, InterpEngineKind::Vm, false));
        PlainHints = Plain.hints().size();
        ProjectAnalyzer Opt(Spec,
                            approxOptions(true, InterpEngineKind::Vm, true));
        OptHints = Opt.hints().size();
        OptStats = Opt.vmOptStats();
        if (Rep == 0 || Plain.approxSeconds() < PlainS)
          PlainS = Plain.approxSeconds();
        if (Rep == 0 || Opt.approxSeconds() < OptS)
          OptS = Opt.approxSeconds();
      }
      if (PlainHints != OptHints)
        std::printf("ENGINE DIVERGENCE: %zu vs %zu hints\n", PlainHints,
                    OptHints);
      std::printf("%-22s %6u %12.4f %12.4f %7.2fx %7llu %7llu %6llu\n",
                  Patterns[P].Name, Size, PlainS, OptS,
                  OptS > 0 ? PlainS / OptS : 0.0,
                  (unsigned long long)OptStats.FusedInsns,
                  (unsigned long long)OptStats.QuickenedSites,
                  (unsigned long long)OptStats.Deopts);
    }
  }
  rule();
  std::printf("\n");

  // Per-opcode dispatch profile of the optimized VM on loop-kernels: which
  // opcodes dominate after fusion and quickening. CountVmOpcodes is a
  // bench-only knob — dispatch counting costs a load+increment per opcode
  // and never runs in default reports.
  std::printf("Optimized-VM opcode profile (loop-kernels, size 1)\n");
  rule();
  {
    ProjectSpec Spec = makeProject(LoopKernelsIdx, 1);
    ApproxOptions AO = approxOptions(true, InterpEngineKind::Vm, true);
    AO.CountVmOpcodes = true;
    ProjectAnalyzer A(Spec, AO);
    benchmark::DoNotOptimize(A.hints().size());
    const uint64_t *Counts = nullptr;
    if (const VmChunkCache *Cache = A.loader().vmChunkCacheIfPresent())
      Counts = Cache->opcodeCounts();
    if (!Counts) {
      std::printf("(no VM execution recorded)\n");
    } else {
      std::vector<std::pair<uint64_t, size_t>> Ranked;
      uint64_t Total = 0;
      for (size_t I = 0; I != VmNumOps; ++I) {
        Total += Counts[I];
        if (Counts[I])
          Ranked.push_back({Counts[I], I});
      }
      std::sort(Ranked.begin(), Ranked.end(),
                [](const auto &A, const auto &B) { return A.first > B.first; });
      std::printf("%-26s %14s %7s\n", "Opcode", "Dispatches", "Share");
      for (size_t I = 0; I != Ranked.size() && I != 16; ++I)
        std::printf("%-26s %14llu %6.1f%%\n",
                    vmOpName(VmOp(Ranked[I].second)),
                    (unsigned long long)Ranked[I].first,
                    Total ? 100.0 * double(Ranked[I].first) / double(Total)
                          : 0.0);
      std::printf("%-26s %14llu\n", "total", (unsigned long long)Total);
    }
  }
  rule();
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printScalingTable();
  registerBenches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
