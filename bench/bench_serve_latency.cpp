//===- bench_serve_latency.cpp - jsai serve request latency -------------------===//
//
// Latency of analyze requests served by a live `jsai serve` daemon over its
// Unix socket, measured end to end at the client (connect once, then one
// timed round trip per request). Three streams against a multi-component
// project whose weight sits in heavy import-closure components:
//
//   cold    every request edits the main module with the daemon's cache
//           disabled, so each analysis re-executes every component
//   warm    same edits against a cache-backed daemon, so only the edited
//           main-module component re-executes and every heavy component is
//           served from its per-module slices
//   replay  the identical request repeated, answered from the daemon's
//           in-memory replay map (pure protocol + digest overhead)
//   warmslv warm-solver daemon (--serve-warm-solver=on, no artifact
//           cache): unchanged sources with varying request options, so
//           each request misses the replay map and is answered by
//           revalidating the retained tracked solver (retract + re-solve)
//           and serving the stored cold bytes
//
// Enforced contracts (nonzero exit on violation, so this doubles as a
// gate): warm p50 must beat cold p50 by >= 10x, and the final warm served
// report must be byte-identical to a cache-less local run over the same
// tree.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Telemetry.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace jsai;
using namespace jsai::bench;
using namespace jsai::serve;

namespace {

void writeFileAt(const std::filesystem::path &Path, const std::string &Text) {
  std::filesystem::create_directories(Path.parent_path());
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

/// Nearest-rank percentile over an unsorted sample set, in milliseconds.
double percentile(std::vector<double> Samples, double Pct) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t Rank = size_t(Pct / 100.0 * double(Samples.size()) + 0.5);
  if (Rank > 0)
    --Rank;
  return Samples[std::min(Rank, Samples.size() - 1)];
}

double meanOf(const std::vector<double> &Samples) {
  double Sum = 0;
  for (double S : Samples)
    Sum += S;
  return Samples.empty() ? 0 : Sum / double(Samples.size());
}

/// One timed analyze round trip. Aborts the bench on transport or daemon
/// errors — latency numbers over failed requests are meaningless.
double timedAnalyze(Client &C, const std::string &Dir, JsonValue &Resp) {
  JsonValue Req = JsonValue::object();
  Req.set("cmd", JsonValue::str("analyze"));
  Req.set("dir", JsonValue::str(Dir));
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  bool Ok = C.request(Req, Resp, Err);
  auto T1 = std::chrono::steady_clock::now();
  if (!Ok || !Resp.boolField("ok")) {
    std::fprintf(stderr, "analyze failed: %s\n",
                 Ok ? Resp.stringField("error").c_str() : Err.c_str());
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

struct DaemonHandle {
  Server S;
  std::thread Loop;

  explicit DaemonHandle(const ServeOptions &Opts) : S(Opts) {
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
      std::exit(1);
    }
    Loop = std::thread([this] { S.run(); });
  }

  void connect(Client &C) {
    std::string Err;
    JsonValue Id;
    if (!C.connect(S.options().SocketPath, Err) || !C.handshake(Id, Err)) {
      std::fprintf(stderr, "connect failed: %s\n", Err.c_str());
      std::exit(1);
    }
  }

  /// Sends shutdown over \p C — the daemon serves connections one at a
  /// time, so it must arrive on the connection already being served.
  void shutdown(Client &C) {
    JsonValue Req = JsonValue::object();
    Req.set("cmd", JsonValue::str("shutdown"));
    JsonValue Resp;
    std::string Err;
    C.request(Req, Resp, Err);
    Loop.join();
  }
};

} // namespace

int main(int Argc, char **Argv) {
  size_t NumHeavy = 8, Edits = 9, Replays = 200;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--components=", 13) == 0)
      NumHeavy = std::strtoul(Argv[I] + 13, nullptr, 10);
    else if (std::strncmp(Argv[I], "--edits=", 8) == 0)
      Edits = std::strtoul(Argv[I] + 8, nullptr, 10);
    else if (std::strncmp(Argv[I], "--replays=", 10) == 0)
      Replays = std::strtoul(Argv[I] + 10, nullptr, 10);
  }

  std::filesystem::path Root =
      std::filesystem::temp_directory_path() / "jsai-bench-serve-latency";
  std::filesystem::remove_all(Root);
  std::filesystem::path ProjDir = Root / "proj";
  std::string Dir = ProjDir.string();

  // One tiny main-module component (the edit target) plus NumHeavy
  // two-module components whose approx execution carries the weight: a
  // 20k-iteration closure loop each, well under the interpreter's
  // per-loop budget so every iteration really executes.
  for (size_t I = 0; I < NumHeavy; ++I) {
    std::string N = std::to_string(I);
    writeFileAt(ProjDir / "app" / ("heavy" + N + ".js"),
                "var h = require('../lib/heavy" + N + "');\nvar out" + N +
                    " = h.work(" + N + ");\n");
    writeFileAt(ProjDir / "lib" / ("heavy" + N + ".js"),
                "exports.work = function (seed) {\n"
                "  var add = function (a, b) { return a + b; };\n"
                "  var acc = seed;\n"
                "  for (var i = 0; i < 20000; i = i + 1) {\n"
                "    acc = add(acc, i);\n"
                "  }\n"
                "  return acc;\n"
                "};\n");
  }
  std::string MainSource = "var t = { tag: 1 };\nvar v0 = t.tag;\n";
  writeFileAt(ProjDir / "app" / "main.js", MainSource);
  size_t EditSeq = 0;
  auto EditMain = [&] {
    ++EditSeq;
    MainSource +=
        "var v" + std::to_string(EditSeq) + " = " + std::to_string(EditSeq) +
        ";\n";
    writeFileAt(ProjDir / "app" / "main.js", MainSource);
  };

  std::printf("Serve latency: %zu heavy components + 1 edited main "
              "component, %zu timed edits per stream, %zu replays\n",
              NumHeavy, Edits, Replays);

  // Stream 1: cache-less daemon; every edited request re-runs everything.
  std::vector<double> ColdMs;
  {
    ServeOptions SO;
    SO.SocketPath = (Root / "cold.sock").string();
    DaemonHandle Daemon(SO);
    Client C;
    Daemon.connect(C);
    JsonValue Resp;
    EditMain();
    timedAnalyze(C, Dir, Resp); // untimed: first-touch noise (allocator, fs)
    for (size_t I = 0; I < Edits; ++I) {
      EditMain();
      ColdMs.push_back(timedAnalyze(C, Dir, Resp));
    }
    Daemon.shutdown(C);
  }

  // Stream 2: cache-backed daemon. The first request publishes every
  // component's slices (timed separately as "publish"); each timed edit
  // then re-executes only the main-module component.
  std::vector<double> WarmMs, ReplayMs;
  double PublishMs = 0;
  std::string ServedReport;
  uint64_t ReplayHits = 0;
  {
    ServeOptions SO;
    SO.SocketPath = (Root / "warm.sock").string();
    SO.Cache.Dir = (Root / "cache").string();
    DaemonHandle Daemon(SO);
    Client C;
    Daemon.connect(C);
    JsonValue Resp;
    EditMain();
    PublishMs = timedAnalyze(C, Dir, Resp);
    for (size_t I = 0; I < Edits; ++I) {
      EditMain();
      WarmMs.push_back(timedAnalyze(C, Dir, Resp));
    }
    ServedReport = Resp.stringField("report");

    // Stream 3: the same request again — content digest unchanged, so the
    // daemon answers from its replay map without touching the driver.
    for (size_t I = 0; I < Replays; ++I)
      ReplayMs.push_back(timedAnalyze(C, Dir, Resp));
    ReplayHits = Daemon.S.stats().ReplayHits;
    Daemon.shutdown(C);
  }

  // Stream 4: warm-solver daemon (no artifact cache) over the final,
  // unchanged tree. Each request varies only the jobs override, so the
  // replay map misses but the sources digest matches the retained slot:
  // the daemon retracts the tracked constraint group, re-solves
  // incrementally, and serves the stored cold bytes. Measures the
  // revalidation round trip against the cold stream.
  std::vector<double> WarmSolverMs;
  uint64_t WsBuilds = 0, WsHits = 0, WsFallbacks = 0;
  std::string WsColdReport, WsServedReport;
  {
    ServeOptions SO;
    SO.SocketPath = (Root / "warmslv.sock").string();
    SO.WarmSolver = true;
    DaemonHandle Daemon(SO);
    Client C;
    Daemon.connect(C);
    JsonValue Resp;
    timedAnalyze(C, Dir, Resp); // untimed cold request; builds the slot
    WsColdReport = Resp.stringField("report");
    for (size_t I = 0; I < Edits; ++I) {
      JsonValue Req = JsonValue::object();
      Req.set("cmd", JsonValue::str("analyze"));
      Req.set("dir", JsonValue::str(Dir));
      Req.set("jobs", JsonValue::number(double(I + 2)));
      std::string Err;
      auto T0 = std::chrono::steady_clock::now();
      bool Ok = C.request(Req, Resp, Err);
      auto T1 = std::chrono::steady_clock::now();
      if (!Ok || !Resp.boolField("ok")) {
        std::fprintf(stderr, "warm-solver analyze failed: %s\n",
                     Ok ? Resp.stringField("error").c_str() : Err.c_str());
        std::exit(1);
      }
      WarmSolverMs.push_back(
          std::chrono::duration<double, std::milli>(T1 - T0).count());
    }
    WsServedReport = Resp.stringField("report");
    WsBuilds = Daemon.S.stats().WarmSolverBuilds;
    WsHits = Daemon.S.stats().WarmSolverHits;
    WsFallbacks = Daemon.S.stats().WarmSolverFallbacks;
    Daemon.shutdown(C);
  }

  rule(74);
  std::printf("%-8s %8s %10s %10s %10s %10s\n", "stream", "samples",
              "p50 (ms)", "p99 (ms)", "mean (ms)", "max (ms)");
  rule(74);
  auto Row = [](const char *Label, const std::vector<double> &Ms) {
    std::printf("%-8s %8zu %10.2f %10.2f %10.2f %10.2f\n", Label, Ms.size(),
                percentile(Ms, 50), percentile(Ms, 99), meanOf(Ms),
                *std::max_element(Ms.begin(), Ms.end()));
  };
  Row("cold", ColdMs);
  Row("warm", WarmMs);
  Row("replay", ReplayMs);
  Row("warmslv", WarmSolverMs);
  rule(74);
  std::printf("cold publish request: %.2f ms\n", PublishMs);

  double Speedup =
      percentile(WarmMs, 50) > 0 ? percentile(ColdMs, 50) / percentile(WarmMs, 50)
                                 : 0.0;
  std::printf("warm speedup vs cold (p50): %.1fx\n", Speedup);
  std::printf("replay hits observed by daemon: %llu of %zu\n",
              (unsigned long long)ReplayHits, Replays);
  double WsSpeedup = percentile(WarmSolverMs, 50) > 0
                         ? percentile(ColdMs, 50) / percentile(WarmSolverMs, 50)
                         : 0.0;
  std::printf("warm-solver speedup vs cold (p50): %.1fx "
              "(builds=%llu hits=%llu fallbacks=%llu)\n",
              WsSpeedup, (unsigned long long)WsBuilds,
              (unsigned long long)WsHits, (unsigned long long)WsFallbacks);

  // Byte-identity: the last warm served report against a cache-less local
  // run over the identical on-disk tree.
  ProjectSpec Spec;
  Spec.Files.addDirectory(Dir);
  Spec.Name = Dir;
  DriverOptions Local;
  std::string LocalReport =
      renderReport(CorpusDriver(Local).run({Spec}), Local);
  bool Identical = ServedReport == LocalReport;
  bool FastEnough = Speedup >= 10.0;
  // Warm-solver responses are served from the stored cold bytes, so both
  // the first (cold) and the last (revalidated) response must match the
  // local one-shot over the same final tree.
  bool WsIdentical = WsColdReport == LocalReport && WsServedReport == LocalReport;
  std::printf("served report byte-identical to local one-shot: %s\n",
              Identical ? "yes" : "NO — serve perturbed the metrics");
  std::printf("warm-solver reports byte-identical to local one-shot: %s\n",
              WsIdentical ? "yes" : "NO — revalidation perturbed the metrics");
  std::printf("warm >= 10x cold: %s\n", FastEnough ? "yes" : "NO");

  std::filesystem::remove_all(Root);
  return Identical && WsIdentical && FastEnough ? 0 : 1;
}
