//===- bench_blame_breakdown.cpp - Unsoundness root-cause table --------------===//
//
// Aggregate blame breakdown over the dynamic-call-graph corpus subset: for
// every dynamic edge the extended analysis misses, the explain subsystem
// assigns exactly one root cause (eval code, unmodeled builtin, missing
// hint, approx budget, unresolved dynamic property, dataflow gap). This
// bench prints the corpus-wide cause-frequency table (the data behind the
// "why is the analysis still unsound?" discussion in EXPERIMENTS.md) plus
// the origins whose flows inflate points-to sets the most.
//
// The classifier is total, so the table is a partition: the bench exits
// non-zero if any project's cause counts do not sum to its missed-edge
// count, or if no ranked cause appears at all.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "explain/Explain.h"

#include <map>

using namespace jsai;
using namespace jsai::bench;

int main(int Argc, char **Argv) {
  consumeSolverSetFlag(Argc, Argv);
  size_t Jobs = consumeJobsFlag(Argc, Argv);

  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();
  DriverOptions DO;
  DO.Jobs = Jobs;
  DO.Explain = true;
  RunSummary Summary = CorpusDriver(DO).run(Suite);

  size_t Hist[size_t(CauseKind::NumCauseKinds)] = {};
  size_t TotalDynamic = 0, TotalMissed = 0, TotalSpurious = 0;
  size_t ProjectsWithBlame = 0;
  std::map<std::string, size_t> OriginInflationTotals;
  bool PartitionOk = true;

  for (const JobResult &J : Summary.Jobs) {
    const ProjectReport &R = J.Report;
    if (!R.HasBlame) {
      std::fprintf(stderr, "FAIL: %s has a dynamic call graph but no blame "
                           "summary\n",
                   R.Name.c_str());
      PartitionOk = false;
      continue;
    }
    ++ProjectsWithBlame;
    const BlameSummary &B = R.Blame;
    TotalDynamic += B.DynamicEdges;
    TotalMissed += B.MissedEdges;
    TotalSpurious += B.SpuriousEdges;
    size_t ProjectSum = 0;
    for (size_t K = 0; K != size_t(CauseKind::NumCauseKinds); ++K) {
      Hist[K] += B.CauseHist[K];
      ProjectSum += B.CauseHist[K];
    }
    if (ProjectSum != B.MissedEdges) {
      std::fprintf(stderr,
                   "FAIL: %s cause counts sum to %zu but %zu edges were "
                   "missed — the classifier is not a partition\n",
                   R.Name.c_str(), ProjectSum, B.MissedEdges);
      PartitionOk = false;
    }
    for (const OriginInflation &O : B.RankedOrigins)
      OriginInflationTotals[O.Origin] += O.SpuriousTokens;
  }

  std::printf("Blame breakdown: root causes of missed dynamic call edges "
              "(%zu projects with dynamic CGs)\n",
              ProjectsWithBlame);
  rule();
  std::printf("%zu dynamic edges, %zu missed by the extended analysis, %zu "
              "spurious static callees\n",
              TotalDynamic, TotalMissed, TotalSpurious);
  rule();
  std::printf("%-30s %8s %10s\n", "Cause", "Misses", "Share");
  rule();
  size_t MaxCount = 0;
  for (size_t K = 0; K != size_t(CauseKind::NumCauseKinds); ++K)
    MaxCount = std::max(MaxCount, Hist[K]);
  size_t RankedCauses = 0;
  for (size_t K = 0; K != size_t(CauseKind::NumCauseKinds); ++K) {
    double Share = TotalMissed ? double(Hist[K]) / double(TotalMissed) : 0;
    std::printf("%-30s %8zu %9s  %s\n", causeName(CauseKind(K)), Hist[K],
                pct(Share).c_str(), bar(Hist[K], MaxCount, 30).c_str());
    if (Hist[K])
      ++RankedCauses;
  }
  rule();
  std::printf("%-30s %8zu %9s\n", "total", TotalMissed,
              pct(TotalMissed ? 1.0 : 0.0).c_str());

  std::printf("\nOrigins ranked by points-to inflation (spurious-callee "
              "tokens attributed per origin kind)\n");
  rule();
  // Aggregate per origin string; project-level tables are already ranked,
  // so sort the corpus-wide totals the same way (count desc, name asc).
  std::vector<std::pair<std::string, size_t>> Ranked(
      OriginInflationTotals.begin(), OriginInflationTotals.end());
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (Ranked.empty())
    std::printf("(no spurious tokens attributed)\n");
  for (const auto &[Origin, Count] : Ranked)
    std::printf("%-42s %8zu\n", Origin.c_str(), Count);

  if (!PartitionOk)
    return 1;
  if (TotalMissed > 0 && RankedCauses == 0) {
    std::fprintf(stderr, "FAIL: misses exist but no cause was ranked\n");
    return 1;
  }
  return 0;
}
