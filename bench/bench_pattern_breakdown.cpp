//===- bench_pattern_breakdown.cpp - Gains by coding-pattern family ----------===//
//
// Slices the headline results by pattern family — the reproduction-side
// analogue of the paper's per-benchmark discussion (express-style projects
// gain the most, statically-easy utility libraries barely change,
// dynamic-require projects need module hints).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <map>

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite();

  struct Agg {
    size_t Count = 0;
    size_t BaseEdges = 0, ExtEdges = 0;
    size_t BaseReach = 0, ExtReach = 0;
    double BaseRecall = 0, ExtRecall = 0;
    size_t WithCG = 0;
    size_t Hints = 0;
  };
  std::map<std::string, Agg> ByPattern;
  for (const ProjectReport &R : Reports) {
    Agg &A = ByPattern[R.Pattern];
    ++A.Count;
    A.BaseEdges += R.Baseline.NumCallEdges;
    A.ExtEdges += R.Extended.NumCallEdges;
    A.BaseReach += R.Baseline.NumReachableFunctions;
    A.ExtReach += R.Extended.NumReachableFunctions;
    A.Hints += R.NumHints;
    if (R.HasDynamicCG) {
      ++A.WithCG;
      A.BaseRecall += R.BaselineRP.Recall;
      A.ExtRecall += R.ExtendedRP.Recall;
    }
  }

  std::printf("Per-pattern breakdown over %zu projects\n", Reports.size());
  rule(110);
  std::printf("%-18s %5s %8s | %9s %9s %8s | %9s %9s | %16s\n", "pattern", "n",
              "hints", "edgeBase", "edgeHint", "gain", "reachBase",
              "reachHint", "recall base->ext");
  rule(110);
  for (const auto &[Pattern, A] : ByPattern) {
    std::string RecallStr = "n/a";
    if (A.WithCG) {
      RecallStr = pct(A.BaseRecall / double(A.WithCG)) + " -> " +
                  pct(A.ExtRecall / double(A.WithCG));
    }
    std::printf("%-18s %5zu %8zu | %9zu %9zu %8s | %9zu %9zu | %16s\n",
                Pattern.c_str(), A.Count, A.Hints, A.BaseEdges, A.ExtEdges,
                delta(double(A.BaseEdges), double(A.ExtEdges)).c_str(),
                A.BaseReach, A.ExtReach, RecallStr.c_str());
  }
  rule(110);
  std::printf("(expected shape: express-like/delegator/eval-init gain most; "
              "utility-lib, the control group, barely moves)\n");
  return 0;
}
