//===- bench_fig7_monomorphic_call_sites.cpp - Reproduces Figure 7 -----------===//
//
// Figure 7: percentage of monomorphic call sites (at most one callee) per
// program — the precision indicator. As more edges are discovered, fewer
// call sites are monomorphic, but only slightly. Headline: only 1.5% fewer
// monomorphic call sites on average.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite();

  std::printf("Figure 7: monomorphic call sites per program (o baseline, * "
              "extended)\n");
  rule();

  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.Baseline.monomorphicFraction();
       })) {
    const ProjectReport &R = Reports[I];
    double Base = R.Baseline.monomorphicFraction();
    double Ext = R.Extended.monomorphicFraction();
    std::string Row(52, ' ');
    Row[size_t(Base * 50)] = 'o';
    size_t ExtPos = size_t(Ext * 50);
    Row[ExtPos] = Row[ExtPos] == 'o' ? '@' : '*';
    std::printf("%-24s %6s -> %6s  |%s|\n", R.Name.c_str(),
                pct(Base).c_str(), pct(Ext).c_str(), Row.c_str());
  }
  rule();
  double BaseAvg = average(Reports, [](const ProjectReport &R) {
    return R.Baseline.monomorphicFraction();
  });
  double ExtAvg = average(Reports, [](const ProjectReport &R) {
    return R.Extended.monomorphicFraction();
  });
  std::printf("Average monomorphic call sites: %s -> %s (change %+.1fpp; "
              "paper: -1.5%%)\n",
              pct(BaseAvg).c_str(), pct(ExtAvg).c_str(),
              (ExtAvg - BaseAvg) * 100.0);
  return 0;
}
