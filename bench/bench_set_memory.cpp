//===- bench_set_memory.cpp - Points-to set memory footprint -----------------===//
//
// Measures the memory cost of the points-to set representation, dense vs
// adaptive, two ways:
//
//  1. Corpus: the full benchmark suite run end-to-end under each
//     representation, reporting summed peak set bytes (baseline +
//     extended solves) and checking that every analysis metric is
//     identical between the two runs (the representation must never leak
//     into results).
//  2. Micro: a population of sets shaped like real corpus solves (most
//     sets tiny, token ids scattered across a large space), comparing the
//     solver's byte-accurate accounting against the OS-level peak RSS so
//     the accounting itself is validated against ground truth.
//
// Peak RSS is process-monotone, which dictates the ordering: within each
// part the adaptive pass runs first and the dense pass second (dense
// still registers because its footprint is strictly larger), and the
// micro part runs last because its dense pass dwarfs everything else. A
// zero RSS delta therefore means "masked by an earlier, larger phase",
// not "free".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/AdaptiveSet.h"
#include "support/Rng.h"

#include <cinttypes>

using namespace jsai;
using namespace jsai::bench;

namespace {

std::string fmtBytes(uint64_t Bytes) {
  char Buf[32];
  if (Bytes >= 1024 * 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1f MiB", double(Bytes) / (1024 * 1024));
  else if (Bytes >= 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1f KiB", double(Bytes) / 1024);
  else
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64 " B", Bytes);
  return Buf;
}

/// Fills \p Sets with the corpus-shaped population: 90% of sets hold 1-6
/// tokens (inline tier), 9% hold ~40 scattered tokens (sparse tier), 1%
/// hold a dense run of ~600 (dense tier). Ids span ~1M.
void populate(std::vector<AdaptiveSet> &Sets, SetMemoryStats &Mem,
              bool PinDense) {
  Rng R(424242);
  const unsigned TokenSpan = 1u << 20;
  // 20k sets keeps the dense pass around 2.4 GiB — large enough to show
  // up unmistakably in RSS, small enough for ordinary CI machines.
  Sets.resize(20000);
  for (AdaptiveSet &S : Sets) {
    S.attachMemoryStats(&Mem);
    if (PinDense)
      S.forceDense();
    uint64_t Roll = R.below(100);
    if (Roll < 90) {
      unsigned N = 1 + unsigned(R.below(6));
      for (unsigned I = 0; I < N; ++I)
        S.insert(uint32_t(R.below(TokenSpan)));
    } else if (Roll < 99) {
      for (unsigned I = 0; I < 40; ++I)
        S.insert(uint32_t(R.below(TokenSpan)));
    } else {
      uint32_t Base = uint32_t(R.below(TokenSpan));
      for (unsigned I = 0; I < 600; ++I)
        S.insert(Base + I);
    }
  }
}

void runMicro() {
  std::printf("Micro: 20k corpus-shaped sets (90%% tiny / 9%% scattered / "
              "1%% dense-run), ids across ~1M\n");
  rule();
  std::printf("%-10s %14s %14s %16s\n", "Kind", "Accounted", "Peak acct",
              "Peak RSS delta");
  rule();
  uint64_t AccountedByKind[2] = {0, 0};
  for (bool PinDense : {false, true}) {
    SetMemoryStats Mem;
    uint64_t RssBefore = peakRssBytes();
    {
      std::vector<AdaptiveSet> Sets;
      populate(Sets, Mem, PinDense);
      uint64_t RssAfter = peakRssBytes();
      AccountedByKind[PinDense] = Mem.LiveBytes;
      std::printf("%-10s %14s %14s %16s\n", PinDense ? "dense" : "adaptive",
                  fmtBytes(Mem.LiveBytes).c_str(),
                  fmtBytes(Mem.PeakBytes).c_str(),
                  fmtBytes(RssAfter > RssBefore ? RssAfter - RssBefore : 0)
                      .c_str());
    }
    if (Mem.LiveBytes != 0)
      std::printf("ACCOUNTING LEAK: %" PRIu64 " bytes still booked after "
                  "destruction\n",
                  Mem.LiveBytes);
  }
  rule();
  double Ratio = AccountedByKind[1] && AccountedByKind[0]
                     ? double(AccountedByKind[1]) / double(AccountedByKind[0])
                     : 0;
  std::printf("Dense-over-adaptive accounted bytes: %.1fx   (a zero RSS "
              "delta means an earlier phase already held the process peak)\n",
              Ratio);
}

/// Summed peak set bytes across a suite run (baseline + extended solves).
uint64_t sumPeakBytes(const std::vector<ProjectReport> &Reports) {
  uint64_t Sum = 0;
  for (const ProjectReport &R : Reports)
    Sum += R.Baseline.Solver.SetBytesPeak + R.Extended.Solver.SetBytesPeak;
  return Sum;
}

void runCorpus(size_t Jobs) {
  std::printf("Corpus: full benchmark suite under each representation "
              "[%zu job%s]\n",
              Jobs, Jobs == 1 ? "" : "s");
  rule();
  setDefaultSolverSetKind(SolverSetKind::Adaptive);
  std::vector<ProjectReport> Adaptive = runSuite(false, Jobs);
  uint64_t RssAfterAdaptive = peakRssBytes();
  setDefaultSolverSetKind(SolverSetKind::Dense);
  std::vector<ProjectReport> Dense = runSuite(false, Jobs);
  uint64_t RssAfterDense = peakRssBytes();

  // The representation must never change analysis results: compare every
  // metric the paper tables are built from, per project.
  size_t Mismatches = 0;
  for (size_t I = 0; I < Adaptive.size() && I < Dense.size(); ++I) {
    const ProjectReport &A = Adaptive[I];
    const ProjectReport &D = Dense[I];
    bool Ok =
        A.Name == D.Name &&
        A.Extended.NumCallEdges == D.Extended.NumCallEdges &&
        A.Extended.NumReachableFunctions == D.Extended.NumReachableFunctions &&
        A.Extended.NumResolvedCallSites == D.Extended.NumResolvedCallSites &&
        A.Baseline.NumCallEdges == D.Baseline.NumCallEdges &&
        A.Extended.Solver.NumTokensPropagated ==
            D.Extended.Solver.NumTokensPropagated &&
        A.Extended.Solver.NumCyclesCollapsed ==
            D.Extended.Solver.NumCyclesCollapsed;
    if (!Ok) {
      std::printf("METRIC MISMATCH on %s\n", A.Name.c_str());
      ++Mismatches;
    }
  }
  std::printf("Metric parity across %zu projects: %s\n", Adaptive.size(),
              Mismatches == 0 ? "identical" : "MISMATCH");

  uint64_t AdaptivePeak = sumPeakBytes(Adaptive);
  uint64_t DensePeak = sumPeakBytes(Dense);
  double Ratio =
      AdaptivePeak ? double(DensePeak) / double(AdaptivePeak) : 0;
  std::printf("%-10s %18s %18s\n", "Kind", "Sum peak set B", "Peak RSS mark");
  std::printf("%-10s %18s %18s\n", "adaptive", fmtBytes(AdaptivePeak).c_str(),
              fmtBytes(RssAfterAdaptive).c_str());
  std::printf("%-10s %18s %18s\n", "dense", fmtBytes(DensePeak).c_str(),
              fmtBytes(RssAfterDense).c_str());
  rule();
  std::printf("Peak-set-bytes reduction (dense / adaptive): %.1fx %s\n",
              Ratio,
              Ratio >= 4.0 ? "(>= 4x target met)" : "(below 4x target!)");
  std::printf("(Peak RSS is process-monotone: the dense mark includes the "
              "adaptive pass; treat it as a floor on dense's extra "
              "footprint.)\n\n");
}

} // namespace

int main(int argc, char **argv) {
  size_t Jobs = consumeJobsFlag(argc, argv);
  runCorpus(Jobs);
  runMicro();
  return 0;
}
