//===- bench_fig6_resolved_call_sites.cpp - Reproduces Figure 6 --------------===//
//
// Figure 6: percentage of resolved call sites per program (a call site is
// resolved when the analysis found at least one callee), baseline vs.
// extended, sorted by the baseline percentage. Headline: +17.7% more
// resolved call sites on average. Calls to standard-library functions (and
// methods on primitives) count as unresolved, which explains the remaining
// gap to 100%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite();

  std::printf("Figure 6: resolved call sites per program (o baseline, * "
              "extended)\n");
  rule();

  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.Baseline.resolvedFraction();
       })) {
    const ProjectReport &R = Reports[I];
    double Base = R.Baseline.resolvedFraction();
    double Ext = R.Extended.resolvedFraction();
    std::string Row(52, ' ');
    size_t BasePos = size_t(Base * 50);
    size_t ExtPos = size_t(Ext * 50);
    Row[BasePos] = 'o';
    Row[ExtPos] = Row[ExtPos] == 'o' ? '@' : '*';
    std::printf("%-24s %6s -> %6s  |%s|\n", R.Name.c_str(),
                pct(Base).c_str(), pct(Ext).c_str(), Row.c_str());
  }
  rule();
  double BaseAvg = average(Reports, [](const ProjectReport &R) {
    return R.Baseline.resolvedFraction();
  });
  double ExtAvg = average(Reports, [](const ProjectReport &R) {
    return R.Extended.resolvedFraction();
  });
  std::printf("Average resolved call sites: %s -> %s (relative %s; paper: "
              "+17.7%%)\n",
              pct(BaseAvg).c_str(), pct(ExtAvg).c_str(),
              delta(BaseAvg, ExtAvg).c_str());
  return 0;
}
