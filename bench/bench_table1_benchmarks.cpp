//===- bench_table1_benchmarks.cpp - Reproduces Table 1 ---------------------===//
//
// Table 1 of the paper lists the benchmarks with dynamic call graphs along
// with their sizes: packages, modules, functions, and code size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::printf("Table 1: benchmarks for which dynamic call graphs are "
              "available\n");
  rule();
  std::printf("%-28s %9s %9s %10s %14s\n", "Benchmark", "Packages", "Modules",
              "Functions", "Code size (B)");
  rule();

  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();
  Pipeline P;
  size_t TotalFunctions = 0, TotalBytes = 0;
  std::vector<ProjectReport> Reports;
  for (const ProjectSpec &Spec : Suite)
    Reports.push_back(P.analyzeProject(Spec));

  // Sorted by code size, as in the paper.
  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.CodeBytes;
       })) {
    const ProjectReport &R = Reports[I];
    std::printf("%-28s %9zu %9zu %10zu %14zu\n", R.Name.c_str(),
                R.NumPackages, R.NumModules, R.NumFunctions, R.CodeBytes);
    TotalFunctions += R.NumFunctions;
    TotalBytes += R.CodeBytes;
  }
  rule();
  std::printf("%-28s %9s %9s %10zu %14zu\n", "total (36 projects)", "", "",
              TotalFunctions, TotalBytes);
  return 0;
}
