//===- bench_table3_times.cpp - Reproduces Table 3 ---------------------------===//
//
// Table 3: running times of the baseline static analysis, approximate
// interpretation, and the extended static analysis, per benchmark with a
// dynamic call graph. The one-shot table is printed first; afterwards,
// google-benchmark measures the three phases on representative small /
// medium / large projects with proper repetition.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/PatternGenerators.h"

#include <benchmark/benchmark.h>

using namespace jsai;
using namespace jsai::bench;

namespace {

/// Representative projects (one per size class) for the measured phases.
ProjectSpec representativeProject(unsigned Size) {
  Rng R(777 + Size);
  ProjectSpec Spec = makeExpressLike(R, Size);
  Spec.Name = "express-like-S" + std::to_string(Size);
  return Spec;
}

void BM_BaselineAnalysis(benchmark::State &State) {
  ProjectSpec Spec = representativeProject(unsigned(State.range(0)));
  ProjectAnalyzer A(Spec);
  for (auto _ : State) {
    AnalysisResult R = A.analyze(AnalysisMode::Baseline);
    benchmark::DoNotOptimize(R.NumCallEdges);
  }
}

void BM_ApproximateInterpretation(benchmark::State &State) {
  ProjectSpec Spec = representativeProject(unsigned(State.range(0)));
  for (auto _ : State) {
    // Fresh analyzer each iteration: hint collection is cached otherwise.
    ProjectAnalyzer A(Spec);
    benchmark::DoNotOptimize(A.hints().size());
  }
}

void BM_ExtendedAnalysis(benchmark::State &State) {
  ProjectSpec Spec = representativeProject(unsigned(State.range(0)));
  ProjectAnalyzer A(Spec);
  A.hints(); // Pre-compute so only the static phase is measured.
  for (auto _ : State) {
    AnalysisResult R = A.analyze(AnalysisMode::Hints);
    benchmark::DoNotOptimize(R.NumCallEdges);
  }
}

BENCHMARK(BM_BaselineAnalysis)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_ApproximateInterpretation)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExtendedAnalysis)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

void printTable3(size_t Jobs) {
  std::printf("Table 3: running times (seconds) — baseline / approximate "
              "interpretation / extended   [%zu job%s]\n", Jobs,
              Jobs == 1 ? "" : "s");
  rule();
  std::printf("%-26s %12s %12s %12s %10s\n", "Benchmark", "Baseline (s)",
              "Approx. (s)", "Extended (s)", "Hints");
  rule();
  std::vector<ProjectReport> Reports = runSuite(/*OnlyDynamicCG=*/true, Jobs);
  double TotalApprox = 0;
  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.CodeBytes;
       })) {
    const ProjectReport &R = Reports[I];
    std::printf("%-26s %12.4f %12.4f %12.4f %10zu\n", R.Name.c_str(),
                R.BaselineSeconds, R.ApproxSeconds, R.ExtendedSeconds,
                R.NumHints);
    TotalApprox += R.ApproxSeconds;
  }
  rule();
  std::printf("Average approximate-interpretation time: %.4f s   (paper: "
              "0.6s-51s, avg 4.5s on V8 — our substrate is a small "
              "interpreter over small projects, so absolute numbers differ "
              "by design)\n\n",
              TotalApprox / double(Reports.size()));

  // Solver engine counters of the extended run: where the analysis time of
  // the previous table goes (propagation batches, deduplicated edges, and
  // the cycle-collapsing activity).
  std::printf("Solver engine counters (extended analysis)\n");
  rule();
  std::printf("%-26s %10s %10s %10s %8s %8s %10s\n", "Benchmark", "Edges",
              "DupEdges", "Batches", "Cycles", "Merged", "TokensProp");
  rule();
  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.CodeBytes;
       })) {
    const ProjectReport &R = Reports[I];
    const SolverStats &St = R.Extended.Solver;
    std::printf("%-26s %10llu %10llu %10llu %8llu %8llu %10llu\n",
                R.Name.c_str(), (unsigned long long)St.NumEdges,
                (unsigned long long)St.NumDuplicateEdges,
                (unsigned long long)St.NumBatchesFlushed,
                (unsigned long long)St.NumCyclesCollapsed,
                (unsigned long long)St.NumVarsMerged,
                (unsigned long long)St.NumTokensPropagated);
  }
  rule();
  std::printf("\n");

  // Memory footprint of the extended run's points-to sets: byte-accurate
  // live/peak accounting from the solver plus the tier histogram and
  // promotion counts of the adaptive representation (all zeros except
  // SetsDense under --solver-set=dense, where every set is pinned dense).
  std::printf("Solver set memory (extended analysis, --solver-set=%s)\n",
              solverSetKindName(defaultSolverSetKind()));
  rule();
  std::printf("%-26s %12s %12s %8s %8s %8s %9s %9s\n", "Benchmark",
              "LiveBytes", "PeakBytes", "Small", "Sparse", "Dense",
              "PromSpar", "PromDense");
  rule();
  uint64_t TotalPeak = 0;
  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.CodeBytes;
       })) {
    const ProjectReport &R = Reports[I];
    const SolverStats &St = R.Extended.Solver;
    TotalPeak += St.SetBytesPeak;
    std::printf("%-26s %12llu %12llu %8llu %8llu %8llu %9llu %9llu\n",
                R.Name.c_str(), (unsigned long long)St.SetBytesLive,
                (unsigned long long)St.SetBytesPeak,
                (unsigned long long)St.SetsSmall,
                (unsigned long long)St.SetsSparse,
                (unsigned long long)St.SetsDense,
                (unsigned long long)St.SetTierPromotionsSparse,
                (unsigned long long)St.SetTierPromotionsDense);
  }
  rule();
  std::printf("Summed peak set bytes across the suite: %llu\n\n",
              (unsigned long long)TotalPeak);

  // Runtime property-system counters of the approximate-interpretation run:
  // inline-cache effectiveness and shape-tree churn. A high hit rate means
  // the forced executions spend their time in the slot fast path rather
  // than hash probes.
  std::printf("Interpreter property-system counters (approx. run)\n");
  rule();
  std::printf("%-26s %10s %10s %10s %10s %8s %8s %8s %8s\n", "Benchmark",
              "GetHits", "GetMiss", "SetHits", "SetMiss", "HitRate",
              "Shapes", "Trans", "Dict");
  rule();
  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.CodeBytes;
       })) {
    const ProjectReport &R = Reports[I];
    const InterpStats &St = R.Approx.Interp;
    std::printf("%-26s %10llu %10llu %10llu %10llu %7.1f%% %8llu %8llu "
                "%8llu\n",
                R.Name.c_str(), (unsigned long long)St.ICGetHits,
                (unsigned long long)St.ICGetMisses,
                (unsigned long long)St.ICSetHits,
                (unsigned long long)St.ICSetMisses, 100.0 * St.icHitRate(),
                (unsigned long long)St.ShapesCreated,
                (unsigned long long)St.ShapeTransitions,
                (unsigned long long)St.DictionaryConversions);
  }
  rule();
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  size_t Jobs = consumeJobsFlag(argc, argv);
  consumeSolverSetFlag(argc, argv);
  printTable3(Jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
