//===- BenchUtil.h - Shared helpers for the benchmark binaries --*- C++ -*-===//
///
/// \file
/// Helpers shared by the bench/ executables that regenerate the paper's
/// tables and figures: suite-wide pipeline runs, aligned table printing,
/// and ASCII bar rendering for the figure-style outputs. Uses std::printf
/// (these are tools, not library code).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_BENCH_BENCHUTIL_H
#define JSAI_BENCH_BENCHUTIL_H

#include "corpus/BenchmarkSuite.h"
#include "driver/CorpusDriver.h"
#include "pipeline/Pipeline.h"
#include "support/AdaptiveSet.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/resource.h>

namespace jsai::bench {

/// Peak resident set size of this process so far, in bytes (getrusage).
/// Measured, not estimated — the memory benches report this next to the
/// solver's own byte accounting so the accounting can be sanity-checked
/// against the OS. Monotone: it never decreases within a process, so
/// compare before/after deltas, not absolutes, when phases share a run.
inline uint64_t peakRssBytes() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
#ifdef __APPLE__
  return uint64_t(Usage.ru_maxrss); // Bytes on macOS.
#else
  return uint64_t(Usage.ru_maxrss) * 1024; // KiB on Linux.
#endif
}

/// Consumes a "--solver-set=dense|adaptive" argument from argv and
/// installs it as the process-wide default representation (the same knob
/// as the JSAI_SOLVER_SET environment variable). \returns the selected
/// kind (the prevailing default when the flag is absent).
inline SolverSetKind consumeSolverSetFlag(int &Argc, char **Argv) {
  SolverSetKind Kind = defaultSolverSetKind();
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--solver-set=", 13) == 0) {
      if (!parseSolverSetKind(Argv[I] + 13, Kind)) {
        std::fprintf(stderr, "unknown solver set '%s'\n", Argv[I] + 13);
        std::exit(2);
      }
      setDefaultSolverSetKind(Kind);
    } else {
      Argv[Out++] = Argv[I];
    }
  }
  Argc = Out;
  return Kind;
}

/// Runs the full pipeline over every project of the default suite via the
/// corpus driver. Expensive-ish (a few seconds); each binary calls it
/// once. \p Jobs > 1 parallelizes across projects (per-project results
/// are identical for any jobs count).
inline std::vector<ProjectReport> runSuite(bool OnlyDynamicCG = false,
                                           size_t Jobs = 1) {
  std::vector<ProjectSpec> Suite =
      OnlyDynamicCG ? benchmarksWithDynamicCG() : buildBenchmarkSuite();
  DriverOptions DO;
  DO.Jobs = Jobs;
  CorpusDriver D(DO);
  RunSummary Summary = D.run(Suite);
  std::vector<ProjectReport> Reports;
  Reports.reserve(Summary.Jobs.size());
  for (JobResult &J : Summary.Jobs)
    Reports.push_back(std::move(J.Report));
  return Reports;
}

/// Consumes a "--jobs=N" argument from argv (the google-benchmark flag
/// parser rejects flags it does not know). \returns the jobs count, 1 by
/// default.
inline size_t consumeJobsFlag(int &Argc, char **Argv) {
  size_t Jobs = 1;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--jobs=", 7) == 0)
      Jobs = size_t(std::strtoull(Argv[I] + 7, nullptr, 10));
    else
      Argv[Out++] = Argv[I];
  }
  Argc = Out;
  return Jobs;
}

/// Percentage with one decimal.
inline std::string pct(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Fraction * 100.0);
  return Buf;
}

/// Relative change (After vs Before) as "+x.x%".
inline std::string delta(double Before, double After) {
  if (Before == 0)
    return "n/a";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%+.1f%%", (After - Before) / Before * 100.0);
  return Buf;
}

/// A log-ish ASCII bar for the figure-style plots.
inline std::string bar(size_t Value, size_t MaxValue, size_t Width = 40) {
  if (MaxValue == 0)
    return std::string();
  size_t Len = Value * Width / MaxValue;
  return std::string(Len, '#');
}

/// Prints a horizontal rule sized to \p Width.
inline void rule(size_t Width = 100) {
  std::printf("%s\n", std::string(Width, '-').c_str());
}

/// Average of a projected field across reports.
template <typename FnT>
double average(const std::vector<ProjectReport> &Reports, FnT Fn) {
  if (Reports.empty())
    return 0;
  double Sum = 0;
  for (const ProjectReport &R : Reports)
    Sum += Fn(R);
  return Sum / double(Reports.size());
}

/// Average relative increase of a metric from baseline to extended, the
/// way the paper reports "+55.1% more call edges" (mean of per-project
/// relative increases).
template <typename FnT>
double averageIncrease(const std::vector<ProjectReport> &Reports, FnT Fn) {
  double Sum = 0;
  size_t Count = 0;
  for (const ProjectReport &R : Reports) {
    auto [Before, After] = Fn(R);
    if (Before == 0)
      continue;
    Sum += (double(After) - double(Before)) / double(Before);
    ++Count;
  }
  return Count == 0 ? 0 : Sum / double(Count);
}

/// Sorts report indices ascending by a key (the figures sort programs by
/// their baseline metric).
template <typename FnT>
std::vector<size_t> sortedIndices(const std::vector<ProjectReport> &Reports,
                                  FnT Key) {
  std::vector<size_t> Idx(Reports.size());
  for (size_t I = 0; I != Idx.size(); ++I)
    Idx[I] = I;
  std::sort(Idx.begin(), Idx.end(), [&](size_t A, size_t B) {
    auto KA = Key(Reports[A]);
    auto KB = Key(Reports[B]);
    if (KA != KB)
      return KA < KB;
    return Reports[A].Name < Reports[B].Name;
  });
  return Idx;
}

} // namespace jsai::bench

#endif // JSAI_BENCH_BENCHUTIL_H
