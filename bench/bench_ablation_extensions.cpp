//===- bench_ablation_extensions.cpp - Section 6 extensions ------------------===//
//
// Quantifies the Section 6 "potential improvements" implemented in this
// reproduction on top of the paper's [DPR]/[DPW] rules:
//  - unknown-function-argument hints (proxy-base reads with known names);
//  - static analysis of eval'd code strings.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();

  std::printf("Section 6 extensions on top of the hint-extended analysis\n");
  rule();
  std::printf("%-26s %18s %18s %18s\n", "Benchmark", "hints (edges/rec)",
              "+unknown-arg", "+eval-bodies");
  rule();

  double Recall[3] = {0, 0, 0};
  size_t Edges[3] = {0, 0, 0};
  size_t Count = 0;
  for (const ProjectSpec &Spec : Suite) {
    ProjectAnalyzer A(Spec);
    const CallGraph &Dyn = A.dynamicCallGraph();

    AnalysisOptions Base;
    Base.Mode = AnalysisMode::Hints;
    AnalysisOptions UnknownArg = Base;
    UnknownArg.UseUnknownArgHints = true;
    AnalysisOptions EvalBodies = Base;
    EvalBodies.UseEvalBodyAnalysis = true;

    const AnalysisOptions Variants[3] = {Base, UnknownArg, EvalBodies};
    size_t E[3];
    double Rec[3];
    for (int V = 0; V != 3; ++V) {
      AnalysisResult Res = A.analyze(Variants[V]);
      RecallPrecision RP = compareCallGraphs(Res.CG, Dyn);
      E[V] = Res.NumCallEdges;
      Rec[V] = RP.Recall;
      Edges[V] += E[V];
      Recall[V] += RP.Recall;
    }
    std::printf("%-26s %9zu/%-7s %10zu/%-7s %10zu/%-7s\n", Spec.Name.c_str(),
                E[0], pct(Rec[0]).c_str(), E[1], pct(Rec[1]).c_str(), E[2],
                pct(Rec[2]).c_str());
    ++Count;
  }
  rule();
  const char *Labels[3] = {"hints ([DPR]/[DPW])", "+ unknown-arg hints",
                           "+ eval-body analysis"};
  for (int V = 0; V != 3; ++V)
    std::printf("%-22s total edges %6zu, avg recall %6s\n", Labels[V],
                Edges[V], pct(Recall[V] / double(Count)).c_str());
  std::printf("(expected shape: each extension adds a modest number of "
              "edges; recall never decreases)\n");
  return 0;
}
