//===- bench_table2_recall_precision.cpp - Reproduces Table 2 ----------------===//
//
// Table 2: analysis recall and precision before/after the new technique,
// for the benchmarks where dynamic call graphs are available. Headline:
// average recall improves from 75.9% to 88.1% while precision drops by
// only 1.5%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite(/*OnlyDynamicCG=*/true);

  std::printf("Table 2: recall and precision (baseline -> extended) against "
              "dynamic call graphs\n");
  rule();
  std::printf("%-26s %10s %22s %22s\n", "Benchmark", "Dyn edges",
              "Recall (base -> ext)", "Precision (base -> ext)");
  rule();

  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.CodeBytes;
       })) {
    const ProjectReport &R = Reports[I];
    std::printf("%-26s %10zu %10s -> %7s %10s -> %7s\n", R.Name.c_str(),
                R.DynamicEdges, pct(R.BaselineRP.Recall).c_str(),
                pct(R.ExtendedRP.Recall).c_str(),
                pct(R.BaselineRP.Precision).c_str(),
                pct(R.ExtendedRP.Precision).c_str());
  }
  rule();

  double BaseRecall = average(Reports, [](const ProjectReport &R) {
    return R.BaselineRP.Recall;
  });
  double ExtRecall = average(Reports, [](const ProjectReport &R) {
    return R.ExtendedRP.Recall;
  });
  double BasePrec = average(Reports, [](const ProjectReport &R) {
    return R.BaselineRP.Precision;
  });
  double ExtPrec = average(Reports, [](const ProjectReport &R) {
    return R.ExtendedRP.Precision;
  });
  std::printf("Average recall:    %s -> %s   (paper: 75.9%% -> 88.1%%)\n",
              pct(BaseRecall).c_str(), pct(ExtRecall).c_str());
  std::printf("Average precision: %s -> %s   (paper: reduced by 1.5%%)\n",
              pct(BasePrec).c_str(), pct(ExtPrec).c_str());

  // The paper's standout case: recall rising from 40.1% to 98.0%.
  double BestJump = 0;
  const ProjectReport *Best = nullptr;
  for (const ProjectReport &R : Reports) {
    double Jump = R.ExtendedRP.Recall - R.BaselineRP.Recall;
    if (Jump > BestJump) {
      BestJump = Jump;
      Best = &R;
    }
  }
  if (Best)
    std::printf("Largest improvement: %s, recall %s -> %s   (paper's best "
                "case: 40.1%% -> 98.0%%)\n",
                Best->Name.c_str(), pct(Best->BaselineRP.Recall).c_str(),
                pct(Best->ExtendedRP.Recall).c_str());
  return 0;
}
