//===- bench_suite_scaling.cpp - Corpus driver scaling ------------------------===//
//
// Wall-clock of the full embedded suite (parse → approx → baseline →
// extended per project) under the CorpusDriver at jobs = 1/2/4/8, with
// speedup ratios against the serial run. Also cross-checks that aggregate
// metrics are identical at every jobs level — the driver's determinism
// contract.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/CorpusDriver.h"

#include <thread>

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectSpec> Suite = buildBenchmarkSuite();
  unsigned Hardware = std::thread::hardware_concurrency();
  std::printf("Suite scaling: %zu projects, %u hardware thread%s\n",
              Suite.size(), Hardware, Hardware == 1 ? "" : "s");
  rule(72);
  std::printf("%8s %12s %10s %14s\n", "jobs", "wall (s)", "speedup",
              "ext. edges");
  rule(72);

  const size_t JobLevels[] = {1, 2, 4, 8};
  double SerialWall = 0;
  RunAggregates SerialTotals;
  bool Deterministic = true;
  for (size_t Jobs : JobLevels) {
    DriverOptions DO;
    DO.Jobs = Jobs;
    CorpusDriver D(DO);
    RunSummary Summary = D.run(Suite);
    if (Jobs == 1) {
      SerialWall = Summary.WallSeconds;
      SerialTotals = Summary.Totals;
    } else if (!(Summary.Totals == SerialTotals)) {
      Deterministic = false;
    }
    std::printf("%8zu %12.3f %9.2fx %14zu\n", Jobs, Summary.WallSeconds,
                Summary.WallSeconds > 0 ? SerialWall / Summary.WallSeconds
                                        : 0.0,
                Summary.Totals.ExtendedCallEdges);
  }
  rule(72);
  std::printf("aggregates identical across jobs levels: %s\n",
              Deterministic ? "yes" : "NO — determinism violation");
  return Deterministic ? 0 : 1;
}
