//===- bench_fig5_reachable_functions.cpp - Reproduces Figure 5 --------------===//
//
// Figure 5: reachable functions per program (reachability from the
// top-level code of the main package's modules), baseline vs. extended.
// Headline: on average 21.8% more functions deemed reachable.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite();

  std::printf("Figure 5: reachable functions per program (baseline '#' + "
              "hint-added '+'), sorted by baseline\n");
  rule();

  size_t MaxVal = 0;
  for (const ProjectReport &R : Reports)
    MaxVal = std::max(MaxVal, R.Extended.NumReachableFunctions);

  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.Baseline.NumReachableFunctions;
       })) {
    const ProjectReport &R = Reports[I];
    size_t Base = R.Baseline.NumReachableFunctions;
    size_t Ext = R.Extended.NumReachableFunctions;
    std::string BaseBar = bar(Base, MaxVal, 50);
    std::string AddBar(bar(Ext, MaxVal, 50).size() - BaseBar.size(), '+');
    std::printf("%-24s %5zu -> %5zu  %s%s\n", R.Name.c_str(), Base, Ext,
                BaseBar.c_str(), AddBar.c_str());
  }
  rule();
  double Increase = averageIncrease(Reports, [](const ProjectReport &R) {
    return std::make_pair(R.Baseline.NumReachableFunctions,
                          R.Extended.NumReachableFunctions);
  });
  std::printf("Average increase in reachable functions: %s   (paper: "
              "+21.8%%)\n",
              pct(Increase).c_str());
  return 0;
}
