//===- bench_solver_scaling.cpp - Solver speedup on cycle-heavy graphs -------===//
//
// Demonstrates the collapsed solver (online cycle collapsing + hashed edge
// dedup + delta batching) against a reference implementation with the
// pre-collapsing semantics (FIFO of (variable, token) deltas, linear
// duplicate-edge scan, token-by-token circulation through cycles).
//
// Two parts:
//  1. Head-to-head wall-clock on synthetic cycle-heavy constraint graphs
//     shaped like the pattern-generator corpus (rings of mutually
//     referencing registry/mixin variables joined by flow chains), at
//     scaled sizes. Reports the speedup factor.
//  2. The full static analysis over scaled pattern-generator projects with
//     the production solver, surfacing the new SolverStats counters
//     (cycles collapsed, variables merged, delta batches).
//  3. Dense vs adaptive points-to set representation on the same solver:
//     wall time and peak set bytes on cycle-heavy graphs and on
//     sparse-touch graphs (many variables, few scattered high-id tokens
//     each), with fixpoint equality checked between the two runs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Solver.h"
#include "corpus/PatternGenerators.h"
#include "support/Rng.h"

#include <chrono>
#include <deque>

using namespace jsai;
using namespace jsai::bench;

namespace {

//===----------------------------------------------------------------------===//
// Reference solver (pre-collapsing semantics)
//===----------------------------------------------------------------------===//

class NaiveSolver {
public:
  void addToken(CVarId V, TokenId T) {
    ensure(V);
    if (!PointsTo[V].insert(T))
      return;
    Pending.emplace_back(V, T);
  }

  void addEdge(CVarId From, CVarId To) {
    if (From == To)
      return;
    ensure(From);
    ensure(To);
    for (CVarId Existing : Succs[From])
      if (Existing == To)
        return;
    Succs[From].push_back(To);
    std::vector<uint32_t> Known = PointsTo[From].toVector();
    for (uint32_t T : Known)
      addToken(To, T);
  }

  void solve() {
    while (!Pending.empty()) {
      auto [V, T] = Pending.front();
      Pending.pop_front();
      for (size_t I = 0; I < Succs[V].size(); ++I)
        addToken(Succs[V][I], T);
    }
  }

  const BitSet &pointsTo(CVarId V) const { return PointsTo[V]; }

private:
  void ensure(CVarId V) {
    if (V >= PointsTo.size()) {
      PointsTo.resize(V + 1);
      Succs.resize(V + 1);
    }
  }

  std::vector<BitSet> PointsTo;
  std::vector<std::vector<CVarId>> Succs;
  std::deque<std::pair<CVarId, TokenId>> Pending;
};

//===----------------------------------------------------------------------===//
// Cycle-heavy workload generator
//===----------------------------------------------------------------------===//

/// One recorded constraint stream, replayable into any solver.
struct Workload {
  struct Edge {
    CVarId From, To;
  };
  std::vector<Edge> Edges;
  std::vector<std::pair<CVarId, TokenId>> Tokens;
  CVarId NumVars = 0;
};

/// Builds a constraint graph shaped like the corpus patterns: rings of
/// mutually referencing variables (plugin registries / mixin targets whose
/// members flow into each other) chained together (API objects flowing
/// through module layers), with duplicate edge insertions and cross edges
/// sprinkled in the way resolved call sites re-add them.
Workload makeCycleHeavyWorkload(unsigned Scale) {
  Rng R(9000 + Scale);
  Workload W;
  const unsigned NumRings = 24 * Scale;
  const unsigned RingSize = 24;
  const unsigned TokenPool = 512 * Scale;
  W.NumVars = CVarId(NumRings * RingSize);
  for (unsigned Ring = 0; Ring < NumRings; ++Ring) {
    CVarId Base = CVarId(Ring * RingSize);
    for (unsigned I = 0; I < RingSize; ++I)
      W.Edges.push_back({Base + I, Base + (I + 1) % RingSize});
    // Chain: each ring's exit feeds the next ring's entry, so token sets
    // accumulate down the chain (the expensive case for per-token
    // circulation).
    if (Ring + 1 < NumRings)
      W.Edges.push_back({Base + RingSize / 2, CVarId(Base + RingSize)});
    // Seed tokens into this ring. Sets grow dense down the chain, which is
    // where batched word-parallel unions pay off.
    for (unsigned K = 0; K < 32; ++K)
      W.Tokens.push_back({Base + CVarId(R.below(RingSize)),
                          TokenId(R.below(TokenPool))});
    // Duplicate edges, as produced by one-edge-per-resolved-token call
    // machinery.
    for (unsigned K = 0; K < RingSize / 2; ++K) {
      unsigned I = unsigned(R.below(RingSize));
      W.Edges.push_back({Base + I, Base + (I + 1) % RingSize});
    }
    // Cross edge into an earlier ring: nests SCCs occasionally.
    if (Ring > 0 && R.chance(25)) {
      CVarId Target = CVarId(R.below(Ring) * RingSize + R.below(RingSize));
      W.Edges.push_back({Base + CVarId(R.below(RingSize)), Target});
      W.Edges.push_back({Target, Base + CVarId(R.below(RingSize))});
    }
  }
  return W;
}

/// Builds the opposite shape from the cycle-heavy workload: many variables
/// that each hold only a handful of tokens drawn from a very large id
/// space, joined into short chains. Real corpus solves look like this —
/// most points-to sets have single-digit cardinality, but token ids span
/// the whole abstract-object space, so a dense bit set pays for the full
/// span while the adaptive representation stays on the inline/sparse tiers.
Workload makeSparseTouchWorkload(unsigned Scale) {
  Rng R(7700 + Scale);
  Workload W;
  const unsigned NumChains = 128 * Scale;
  const unsigned ChainLen = 32;
  const unsigned TokenSpan = 1u << 20; // Ids scattered across ~1M.
  W.NumVars = CVarId(NumChains * ChainLen);
  for (unsigned Chain = 0; Chain < NumChains; ++Chain) {
    CVarId Base = CVarId(Chain * ChainLen);
    for (unsigned I = 0; I + 1 < ChainLen; ++I)
      W.Edges.push_back({Base + I, Base + I + 1});
    // Three scattered tokens per chain head, one or two mid-chain. Every
    // fourth chain gets a richer head (a registry-ish hub) so its sets
    // leave the inline tier and land on the sparse-chunk tier.
    unsigned HeadTokens = Chain % 4 == 0 ? 24 : 3;
    for (unsigned K = 0; K < HeadTokens; ++K)
      W.Tokens.push_back({Base, TokenId(R.below(TokenSpan))});
    for (unsigned K = 0; K < 2; ++K)
      W.Tokens.push_back({Base + CVarId(1 + R.below(ChainLen - 1)),
                          TokenId(R.below(TokenSpan))});
    // An extra random intra-chain shortcut edge per chain.
    W.Edges.push_back({Base + CVarId(R.below(ChainLen - 1)),
                       Base + CVarId(R.below(ChainLen - 1)) + 1});
  }
  return W;
}

/// Builds a wide, layered fan-in DAG shaped for the wave-parallel
/// fixpoint: every node of layer L+1 draws from several random layer-L
/// nodes, token ids are contiguous (sets land on the dense tier, where
/// word lookups are O(1)), and each layer-0 node holds a large shared
/// token block plus one unique token. The shared block makes most flushes
/// mostly-duplicate — exactly the work the parallel precompute removes
/// from the serial commit — while the unique tokens keep every edge
/// productive. Acyclic by construction, so no collapse ever voids a wave.
Workload makeWideFanInWorkload(unsigned Scale) {
  Rng R(4200 + Scale);
  Workload W;
  const unsigned Layers = 12;
  const unsigned Width = 192 * Scale;
  const unsigned FanIn = 10;
  const unsigned SharedTokens = 2048;
  W.NumVars = CVarId(Layers * Width);
  for (unsigned N = 0; N < Width; ++N) {
    // A contiguous run out of the shared block: heavy pairwise overlap
    // between any two layer-0 nodes, dense-tier words throughout.
    unsigned Start = unsigned(R.below(SharedTokens / 2));
    unsigned Len = SharedTokens / 2;
    for (unsigned K = 0; K < Len; K += 64)
      for (unsigned B = 0; B < 64 && Start + K + B < SharedTokens; ++B)
        if (B == 0 || R.chance(80))
          W.Tokens.push_back({CVarId(N), TokenId(Start + K + B)});
    // One token no other node holds: every downstream union stays
    // productive, so no flush short-circuits on set equality.
    W.Tokens.push_back({CVarId(N), TokenId(SharedTokens + N)});
  }
  for (unsigned L = 1; L < Layers; ++L)
    for (unsigned N = 0; N < Width; ++N)
      for (unsigned F = 0; F < FanIn; ++F)
        W.Edges.push_back({CVarId((L - 1) * Width + R.below(Width)),
                           CVarId(L * Width + N)});
  return W;
}

template <typename SolverT> double timeReplay(const Workload &W, SolverT &S) {
  auto Start = std::chrono::steady_clock::now();
  // Interleave the way the analysis builder does: edges first, tokens
  // flushed in, then a final solve.
  for (const Workload::Edge &E : W.Edges)
    S.addEdge(E.From, E.To);
  for (const auto &[V, T] : W.Tokens)
    S.addToken(V, T);
  S.solve();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void runHeadToHead(const std::vector<unsigned> &Scales) {
  std::printf("Solver scaling on cycle-heavy constraint graphs (corpus-"
              "shaped rings + chains)\n");
  rule();
  std::printf("%-10s %8s %9s %12s %12s %9s %8s %8s\n", "Scale", "Vars",
              "Edges", "Naive (s)", "Collapsed(s)", "Speedup", "Cycles",
              "Merged");
  rule();
  double LargestScaleSpeedup = 0;
  for (unsigned Scale : Scales) {
    Workload W = makeCycleHeavyWorkload(Scale);
    NaiveSolver Naive;
    double NaiveSecs = timeReplay(W, Naive);
    Solver Collapsed;
    double CollapsedSecs = timeReplay(W, Collapsed);
    // Same fixpoint, or the timing is meaningless.
    for (CVarId V = 0; V < W.NumVars; ++V)
      if (!(Naive.pointsTo(V) == Collapsed.pointsTo(V))) {
        std::printf("MISMATCH at var %u\n", V);
        return;
      }
    double Speedup = CollapsedSecs > 0 ? NaiveSecs / CollapsedSecs : 0;
    LargestScaleSpeedup = Speedup;
    const SolverStats &St = Collapsed.stats();
    std::printf("%-10u %8u %9zu %12.4f %12.4f %8.1fx %8llu %8llu\n", Scale,
                W.NumVars, W.Edges.size(), NaiveSecs, CollapsedSecs, Speedup,
                (unsigned long long)St.NumCyclesCollapsed,
                (unsigned long long)St.NumVarsMerged);
  }
  rule();
  std::printf(
      "Speedup over the pre-collapsing solver at the largest scale: %.1fx "
      "%s\n\n",
      LargestScaleSpeedup, LargestScaleSpeedup >= 2.0
                               ? "(>= 2x target met)"
                               : "(below 2x target!)");
}

//===----------------------------------------------------------------------===//
// Production pipeline at scaled corpus sizes
//===----------------------------------------------------------------------===//

void runCorpusScaling() {
  std::printf("Extended static analysis over scaled pattern-generator "
              "projects (production solver)\n");
  rule();
  std::printf("%-22s %12s %10s %10s %10s %12s\n", "Project", "Extended (s)",
              "Cycles", "Merged", "Batches", "TokensProp");
  rule();
  struct Gen {
    const char *Name;
    ProjectSpec (*Make)(Rng &, unsigned);
  };
  const Gen Gens[] = {{"express-like", makeExpressLike},
                      {"plugin-registry", makePluginRegistry},
                      {"event-hub", makeEventHub},
                      {"oop-library", makeOopLibrary}};
  for (const Gen &G : Gens)
    for (unsigned Size : {0u, 1u, 2u}) {
      Rng R(1234 + Size);
      ProjectSpec Spec = G.Make(R, Size);
      ProjectAnalyzer A(Spec);
      auto Start = std::chrono::steady_clock::now();
      AnalysisResult Res = A.analyze(AnalysisMode::Hints);
      double Secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      std::printf("%-19s S%u %12.4f %10llu %10llu %10llu %12llu\n", G.Name,
                  Size, Secs, (unsigned long long)Res.Solver.NumCyclesCollapsed,
                  (unsigned long long)Res.Solver.NumVarsMerged,
                  (unsigned long long)Res.Solver.NumBatchesFlushed,
                  (unsigned long long)Res.Solver.NumTokensPropagated);
    }
  rule();
}

//===----------------------------------------------------------------------===//
// Dense vs adaptive set representation
//===----------------------------------------------------------------------===//

/// Formats a byte count with a binary-unit suffix.
std::string fmtBytes(uint64_t Bytes) {
  char Buf[32];
  if (Bytes >= 1024 * 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1f MiB", double(Bytes) / (1024 * 1024));
  else if (Bytes >= 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1f KiB", double(Bytes) / 1024);
  else
    std::snprintf(Buf, sizeof(Buf), "%llu B", (unsigned long long)Bytes);
  return Buf;
}

void runRepresentationComparison() {
  std::printf("Points-to set representation head-to-head (same solver, "
              "dense vs adaptive sets)\n");
  rule();
  std::printf("%-14s %5s %8s %10s %10s %8s %12s %12s %8s\n", "Workload",
              "Scale", "Vars", "Dense (s)", "Adapt (s)", "Time", "Dense peak",
              "Adapt peak", "Bytes");
  rule();
  struct Shape {
    const char *Name;
    Workload (*Make)(unsigned);
    // Sparse-touch scales are capped: the dense representation allocates
    // gigabytes there (that is the point), and the bench must stay
    // runnable on ordinary CI machines.
    unsigned Scales[3];
  };
  const Shape Shapes[] = {{"cycle-heavy", makeCycleHeavyWorkload, {4, 8, 16}},
                          {"sparse-touch", makeSparseTouchWorkload, {1, 2, 4}}};
  for (const Shape &Sh : Shapes)
    for (unsigned Scale : Sh.Scales) {
      Workload W = Sh.Make(Scale);
      Solver Dense;
      Dense.setSetKind(SolverSetKind::Dense);
      double DenseSecs = timeReplay(W, Dense);
      Solver Adaptive;
      Adaptive.setSetKind(SolverSetKind::Adaptive);
      double AdaptiveSecs = timeReplay(W, Adaptive);
      // The representation must not change the fixpoint.
      for (CVarId V = 0; V < W.NumVars; ++V)
        if (!(Dense.pointsTo(V) == Adaptive.pointsTo(V))) {
          std::printf("MISMATCH at var %u\n", V);
          return;
        }
      uint64_t DensePeak = Dense.stats().SetBytesPeak;
      uint64_t AdaptPeak = Adaptive.stats().SetBytesPeak;
      double TimeRatio = AdaptiveSecs > 0 ? DenseSecs / AdaptiveSecs : 0;
      char ByteRatio[16];
      if (AdaptPeak > 0)
        std::snprintf(ByteRatio, sizeof(ByteRatio), "%.1fx",
                      double(DensePeak) / double(AdaptPeak));
      else
        std::snprintf(ByteRatio, sizeof(ByteRatio), "inf");
      std::printf("%-14s %5u %8u %10.4f %10.4f %7.2fx %12s %12s %8s\n",
                  Sh.Name, Scale, W.NumVars, DenseSecs, AdaptiveSecs,
                  TimeRatio, fmtBytes(DensePeak).c_str(),
                  fmtBytes(AdaptPeak).c_str(), ByteRatio);
    }
  rule();
  std::printf("Time/Bytes columns are dense-over-adaptive ratios (>1x means "
              "the adaptive representation wins).\n");
}

//===----------------------------------------------------------------------===//
// Parallel fixpoint thread scaling
//===----------------------------------------------------------------------===//

/// Replays \p W once per repetition at \p Jobs threads, returning the best
/// wall clock. When \p Oracle is given, the first repetition's fixpoint
/// and counters are checked against it — a wall-clock win with different
/// results would be worthless.
double bestReplaySeconds(const Workload &W, size_t Jobs, int Reps,
                         Solver *Oracle, uint64_t *WavesOut = nullptr) {
  double Best = 1e30;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    Solver S;
    S.setJobs(Jobs);
    double T = timeReplay(W, S);
    if (T < Best)
      Best = T;
    if (WavesOut)
      *WavesOut = S.parallelStats().NumWaves;
    if (Oracle && Rep == 0) {
      if (!(S.stats() == Oracle->stats())) {
        std::printf("COUNTER MISMATCH at jobs=%zu\n", Jobs);
        std::exit(1);
      }
      for (CVarId V = 0; V < W.NumVars; ++V)
        if (!(S.pointsTo(V) == Oracle->pointsTo(V))) {
          std::printf("FIXPOINT MISMATCH at jobs=%zu var %u\n", Jobs, V);
          std::exit(1);
        }
    }
  }
  return Best;
}

void runThreadScaling(const std::vector<unsigned> &Scales) {
  std::printf("Parallel fixpoint thread scaling (wide fan-in DAG, "
              "precompute/commit waves; best of 3)\n");
  rule();
  std::printf("%-14s %8s %9s %10s %10s %10s %10s %10s\n", "Workload", "Vars",
              "Edges", "jobs=1(s)", "jobs=2(s)", "jobs=4(s)", "jobs=8(s)",
              "spdup@4");
  rule();
  double LargestSpeedup4 = 0;
  for (unsigned Scale : Scales) {
    Workload W = makeWideFanInWorkload(Scale);
    Solver Oracle;
    double T1 = 1e30;
    {
      // jobs=1 oracle: the sequential loop, timed like the others.
      for (int Rep = 0; Rep < 3; ++Rep) {
        Solver S;
        S.setJobs(1);
        T1 = std::min(T1, timeReplay(W, S));
      }
      timeReplay(W, Oracle); // untimed; holds the reference state
    }
    double T2 = bestReplaySeconds(W, 2, 3, &Oracle);
    double T4 = bestReplaySeconds(W, 4, 3, &Oracle);
    double T8 = bestReplaySeconds(W, 8, 3, &Oracle);
    double Speedup4 = T4 > 0 ? T1 / T4 : 0;
    LargestSpeedup4 = Speedup4;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "fan-in S%u", Scale);
    std::printf("%-14s %8u %9zu %10.4f %10.4f %10.4f %10.4f %9.2fx\n", Name,
                W.NumVars, W.Edges.size(), T1, T2, T4, T8, Speedup4);
  }
  // Honest non-wins: shapes where waves cannot pay. A tiny graph never
  // reaches the pool threshold (threads are never spawned), and the
  // cycle-heavy shape collapses SCCs mid-wave, voiding most precomputed
  // slots; both should hover near 1x and are reported, not hidden.
  {
    Workload Tiny = makeWideFanInWorkload(1);
    Tiny.Edges.resize(Tiny.Edges.size() / 8);
    Tiny.Tokens.resize(Tiny.Tokens.size() / 8);
    Solver Oracle;
    timeReplay(Tiny, Oracle);
    double T1 = bestReplaySeconds(Tiny, 1, 3, nullptr);
    double T4 = bestReplaySeconds(Tiny, 4, 3, &Oracle);
    std::printf("%-14s %8u %9zu %10.4f %10s %10.4f %10s %9.2fx  (non-win: "
                "small)\n",
                "fan-in tiny", Tiny.NumVars, Tiny.Edges.size(), T1, "-", T4,
                "-", T4 > 0 ? T1 / T4 : 0);
  }
  {
    Workload Cyc = makeCycleHeavyWorkload(8);
    Solver Oracle;
    timeReplay(Cyc, Oracle);
    uint64_t Waves = 0;
    double T1 = bestReplaySeconds(Cyc, 1, 3, nullptr);
    double T4 = bestReplaySeconds(Cyc, 4, 3, &Oracle, &Waves);
    std::printf("%-14s %8u %9zu %10.4f %10s %10.4f %10s %9.2fx  (non-win: "
                "collapse-dominated, %llu waves)\n",
                "cycle-heavy", Cyc.NumVars, Cyc.Edges.size(), T1, "-", T4, "-",
                T4 > 0 ? T1 / T4 : 0, (unsigned long long)Waves);
  }
  rule();
  std::printf("Speedup at 4 threads on the largest fan-in graph: %.2fx %s\n",
              LargestSpeedup4,
              LargestSpeedup4 >= 2.0 ? "(>= 2x target met)"
                                     : "(below 2x target!)");
  std::printf("Fixpoints and solver counters verified equal to jobs=1 at "
              "every thread count.\n\n");
}

} // namespace

int main(int Argc, char **Argv) {
  // Graph scales come from argv so CI and profiling runs can resize the
  // workloads without a rebuild; no arguments keeps the historical sizes.
  std::vector<unsigned> Scales;
  for (int I = 1; I < Argc; ++I) {
    unsigned S = unsigned(std::strtoul(Argv[I], nullptr, 10));
    if (S > 0)
      Scales.push_back(S);
  }
  runThreadScaling(Scales.empty() ? std::vector<unsigned>{1, 2, 4} : Scales);
  runHeadToHead(Scales.empty() ? std::vector<unsigned>{2, 4, 8, 16} : Scales);
  runCorpusScaling();
  runRepresentationComparison();
  return 0;
}
