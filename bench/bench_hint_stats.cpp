//===- bench_hint_stats.cpp - Section 5 in-text hint statistics --------------===//
//
// Reproduces the in-text statistics of Section 5: the number of hints per
// program (paper: 0 to 15,036, median 1,492) and the fraction of function
// definitions visited by approximate interpretation (paper: ~60%).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite();

  std::vector<size_t> HintCounts;
  double VisitedSum = 0;
  size_t AbortTotal = 0, ForcedTotal = 0;
  for (const ProjectReport &R : Reports) {
    HintCounts.push_back(R.NumHints);
    VisitedSum += R.Approx.visitedFraction();
    AbortTotal += R.Approx.NumAborts;
    ForcedTotal += R.Approx.NumForcedExecutions;
  }
  std::sort(HintCounts.begin(), HintCounts.end());

  std::printf("Approximate interpretation statistics over %zu projects\n",
              Reports.size());
  rule();
  std::printf("Hints per program:  min %zu, median %zu, max %zu   (paper: 0 "
              "to 15,036, median 1,492)\n",
              HintCounts.front(), HintCounts[HintCounts.size() / 2],
              HintCounts.back());
  std::printf("Functions visited:  %s on average   (paper: ~60%%)\n",
              pct(VisitedSum / double(Reports.size())).c_str());
  std::printf("Forced executions:  %zu total, %zu aborted by budgets\n",
              ForcedTotal, AbortTotal);
  rule();

  std::printf("\nPer-program hint counts (sorted):\n");
  size_t MaxHints = HintCounts.back();
  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.NumHints;
       })) {
    const ProjectReport &R = Reports[I];
    std::printf("%-24s %6zu  %s\n", R.Name.c_str(), R.NumHints,
                bar(R.NumHints, MaxHints, 50).c_str());
  }
  return 0;
}
