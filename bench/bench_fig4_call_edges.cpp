//===- bench_fig4_call_edges.cpp - Reproduces Figure 4 ----------------------===//
//
// Figure 4: the number of call edges per program for the baseline static
// analysis (blue bars) and the additional edges contributed by the new
// mechanism (orange bars), programs sorted by the baseline number.
// Headline: on average, approximate interpretation leads to 55.1% more
// call edges.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectReport> Reports = runSuite();

  std::printf("Figure 4: call edges per program (baseline '#' + hint-added "
              "'+'), sorted by baseline\n");
  rule();

  size_t MaxEdges = 0;
  for (const ProjectReport &R : Reports)
    MaxEdges = std::max(MaxEdges, R.Extended.NumCallEdges);

  for (size_t I : sortedIndices(Reports, [](const ProjectReport &R) {
         return R.Baseline.NumCallEdges;
       })) {
    const ProjectReport &R = Reports[I];
    size_t Base = R.Baseline.NumCallEdges;
    size_t Ext = R.Extended.NumCallEdges;
    std::string BaseBar = bar(Base, MaxEdges, 50);
    std::string AddBar(bar(Ext, MaxEdges, 50).size() - BaseBar.size(), '+');
    std::printf("%-24s %5zu -> %5zu  %s%s\n", R.Name.c_str(), Base, Ext,
                BaseBar.c_str(), AddBar.c_str());
  }
  rule();
  double Increase = averageIncrease(Reports, [](const ProjectReport &R) {
    return std::make_pair(R.Baseline.NumCallEdges, R.Extended.NumCallEdges);
  });
  std::printf("Average increase in call edges: %s   (paper: +55.1%%)\n",
              pct(Increase).c_str());
  return 0;
}
