//===- bench_motivating_example.cpp - Section 5's FAST comparison ------------===//
//
// Reproduces the in-text comparison on the motivating example: the paper's
// whole-program analyzer finds 136 of the 138 actual call edges (98.5%
// recall) with approximate interpretation, whereas a baseline that ignores
// dynamic property accesses and library internals achieves only 12.3%
// (FAST). Here the dynamic call graph of the Figure-1 project is the
// ground truth.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/MotivatingExample.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  ProjectSpec Spec = motivatingExampleProject();
  ProjectAnalyzer A(Spec);
  const CallGraph &Dyn = A.dynamicCallGraph();

  std::printf("Motivating example (Figure 1): recall against the dynamic "
              "call graph (%zu edges)\n",
              Dyn.numEdges());
  rule();

  struct Row {
    const char *Label;
    AnalysisMode Mode;
  };
  const Row Rows[] = {
      {"baseline (ignore dynamic accesses)", AnalysisMode::Baseline},
      {"+ approximate interpretation", AnalysisMode::Hints},
      {"non-relational-hints ablation", AnalysisMode::NonRelationalHints},
      {"over-approximation ablation", AnalysisMode::OverApprox},
  };
  for (const Row &R : Rows) {
    AnalysisResult Res = A.analyze(R.Mode);
    RecallPrecision RP = compareCallGraphs(Res.CG, Dyn);
    std::printf("%-38s recall %6s (%zu/%zu)   precision %6s   edges %4zu\n",
                R.Label, pct(RP.Recall).c_str(), RP.MatchedEdges,
                RP.DynamicEdges, pct(RP.Precision).c_str(),
                Res.NumCallEdges);
  }
  rule();
  std::printf("(paper: extended analysis 136/138 = 98.5%% recall in 3s; "
              "FAST-like analyses 12.3%%)\n");

  // Show the concrete edges the hints recover — the app.get / app.listen
  // story of Section 2.
  AnalysisResult Base = A.analyze(AnalysisMode::Baseline);
  AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
  std::printf("\nCall edges recovered by the hints:\n");
  for (const auto &[Site, Callees] : Ext.CG.edges())
    for (const SourceLoc &Callee : Callees)
      if (!Base.CG.hasEdge(Site, Callee))
        std::printf("  %s -> %s\n",
                    A.context().files().format(Site).c_str(),
                    A.context().files().format(Callee).c_str());
  return 0;
}
