//===- bench_ablation_overapprox.cpp - TAJS-style conservatism ---------------===//
//
// Sections 1-2 argue that conservatively over-approximating dynamic
// property accesses (TAJS/SAFE style) causes "catastrophic losses of
// analysis precision". This ablation compares three treatments of dynamic
// accesses — ignore (baseline), hints, and over-approximation — on edge
// counts, precision, and monomorphic call sites.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jsai;
using namespace jsai::bench;

int main() {
  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();

  std::printf("Ablation: ignore vs. hints vs. over-approximate dynamic "
              "property accesses\n");
  rule();
  std::printf("%-26s | %7s %7s %7s | %7s %7s %7s\n", "Benchmark", "edgIgn",
              "edgHint", "edgOver", "prcIgn", "prcHint", "prcOver");
  rule();

  double Prec[3] = {0, 0, 0};
  double Recall[3] = {0, 0, 0};
  double Mono[3] = {0, 0, 0};
  size_t Edges[3] = {0, 0, 0};
  size_t Count = 0;

  for (const ProjectSpec &Spec : Suite) {
    ProjectAnalyzer A(Spec);
    const CallGraph &Dyn = A.dynamicCallGraph();
    AnalysisMode Modes[3] = {AnalysisMode::Baseline, AnalysisMode::Hints,
                             AnalysisMode::OverApprox};
    size_t E[3];
    double P[3];
    for (int M = 0; M != 3; ++M) {
      AnalysisResult Res = A.analyze(Modes[M]);
      RecallPrecision RP = compareCallGraphs(Res.CG, Dyn);
      E[M] = Res.NumCallEdges;
      P[M] = RP.Precision;
      Edges[M] += Res.NumCallEdges;
      Prec[M] += RP.Precision;
      Recall[M] += RP.Recall;
      Mono[M] += Res.monomorphicFraction();
    }
    std::printf("%-26s | %7zu %7zu %7zu | %6s %6s %6s\n", Spec.Name.c_str(),
                E[0], E[1], E[2], pct(P[0]).c_str(), pct(P[1]).c_str(),
                pct(P[2]).c_str());
    ++Count;
  }
  rule();
  const char *Labels[3] = {"ignore (baseline)", "hints (this paper)",
                           "over-approximate"};
  for (int M = 0; M != 3; ++M)
    std::printf("%-20s total edges %6zu, avg recall %6s, avg precision "
                "%6s, avg monomorphic %6s\n",
                Labels[M], Edges[M], pct(Recall[M] / Count).c_str(),
                pct(Prec[M] / Count).c_str(), pct(Mono[M] / Count).c_str());
  std::printf("(expected shape: over-approximation matches or beats recall "
              "but wrecks precision and edge counts; hints get the recall "
              "at near-baseline precision)\n");
  return 0;
}
