//===- bench_cache_warmup.cpp - Artifact-cache warm-run speedup ---------------===//
//
// Wall-clock of the full embedded suite cold (empty cache, publishing) vs
// warm (every project served from the cache, approx skipped), against a
// cache-less reference run. Also enforces the cache's two hard contracts:
// the warm run's timing-free JSONL report must be byte-identical to the
// cold run's, and a warm run must hit on every project. Exit is nonzero on
// any violation, so this doubles as an end-to-end gate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Telemetry.h"

#include <filesystem>

using namespace jsai;
using namespace jsai::bench;

int main(int Argc, char **Argv) {
  size_t Jobs = consumeJobsFlag(Argc, Argv);
  std::vector<ProjectSpec> Suite = buildBenchmarkSuite();

  std::filesystem::path CacheDir =
      std::filesystem::temp_directory_path() / "jsai-bench-cache-warmup";
  std::filesystem::remove_all(CacheDir);

  std::printf("Cache warmup: %zu projects, %zu job%s, cache at %s\n",
              Suite.size(), Jobs, Jobs == 1 ? "" : "s",
              CacheDir.string().c_str());
  rule(78);
  std::printf("%-10s %10s %10s %8s %8s %10s %12s\n", "run", "wall (s)",
              "approx(s)", "hits", "misses", "writes", "bytes r/w");
  rule(78);

  auto ApproxTotal = [](const RunSummary &S) {
    double Sum = 0;
    for (const JobResult &J : S.Jobs)
      Sum += J.Report.ApproxSeconds;
    return Sum;
  };
  auto Row = [&](const char *Label, const RunSummary &S) {
    std::printf("%-10s %10.3f %10.3f %8llu %8llu %10llu %6llu/%llu\n", Label,
                S.WallSeconds, ApproxTotal(S),
                (unsigned long long)S.Cache.Hits,
                (unsigned long long)S.Cache.Misses,
                (unsigned long long)S.Cache.Writes,
                (unsigned long long)S.Cache.BytesRead,
                (unsigned long long)S.Cache.BytesWritten);
  };

  DriverOptions Plain;
  Plain.Jobs = Jobs;
  RunSummary NoCache = CorpusDriver(Plain).run(Suite);
  Row("no-cache", NoCache);

  DriverOptions DO;
  DO.Jobs = Jobs;
  DO.Cache.Dir = CacheDir.string();
  RunSummary Cold = CorpusDriver(DO).run(Suite);
  Row("cold", Cold);

  RunSummary Warm = CorpusDriver(DO).run(Suite);
  Row("warm", Warm);
  rule(78);

  std::printf("cold publish overhead vs no-cache: %s\n",
              delta(NoCache.WallSeconds, Cold.WallSeconds).c_str());
  std::printf("warm speedup vs cold: %.2fx wall, approx phase %.3f s -> "
              "%.3f s\n",
              Warm.WallSeconds > 0 ? Cold.WallSeconds / Warm.WallSeconds : 0.0,
              ApproxTotal(Cold), ApproxTotal(Warm));

  bool AllHits = Warm.Cache.Hits == Suite.size() && Warm.Cache.Misses == 0;
  bool Identical = renderReport(Cold, DO) == renderReport(Warm, DO) &&
                   renderReport(NoCache, Plain) == renderReport(Warm, DO);
  std::printf("warm run all hits: %s\n", AllHits ? "yes" : "NO");
  std::printf("reports byte-identical (no-cache == cold == warm): %s\n",
              Identical ? "yes" : "NO — cache perturbed the metrics");

  std::filesystem::remove_all(CacheDir);
  return AllHits && Identical ? 0 : 1;
}
