//===- EsModulesTest.cpp - ES module syntax (desugared) -----------------------===//
//
// `import`/`export` statements are desugared at parse time to the CommonJS
// machinery, so both the interpreter and the analyses handle ES modules
// without further changes (the paper's footnote 2).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct Project {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;

  Project(std::initializer_list<std::pair<std::string, std::string>> Files) {
    for (const auto &[Path, Source] : Files)
      Fs.addFile(Path, Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Loader->parseAll();
  }

  std::string run(const std::string &Main = "app/main.js") {
    Interpreter I(*Loader);
    Completion C = I.loadModule(Main);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());
    EXPECT_FALSE(C.isThrow()) << "uncaught: " << I.toStringValue(C.V);
    std::string Out;
    for (const auto &Line : I.consoleOutput()) {
      if (!Out.empty())
        Out += '\n';
      Out += Line;
    }
    return Out;
  }
};

TEST(EsModulesTest, NamedExportsAndImports) {
  Project P({{"app/main.js", "import { add, sub } from 'math';\n"
                             "console.log(add(2, 3), sub(5, 1));"},
             {"math/index.js", "export function add(a, b) { return a + b; }\n"
                               "export function sub(a, b) { return a - b; }"}});
  EXPECT_EQ(P.run(), "5 4");
}

TEST(EsModulesTest, ImportAliases) {
  Project P({{"app/main.js", "import { add as plus } from 'math';\n"
                             "console.log(plus(1, 1));"},
             {"math/index.js", "export function add(a, b) { return a + b; }"}});
  EXPECT_EQ(P.run(), "2");
}

TEST(EsModulesTest, DefaultExportAndImport) {
  Project P({{"app/main.js", "import greet from 'greeter';\n"
                             "console.log(greet('world'));"},
             {"greeter/index.js",
              "export default function greet(who) { return 'hi ' + who; }"}});
  EXPECT_EQ(P.run(), "hi world");
}

TEST(EsModulesTest, DefaultImportFallsBackToCommonJs) {
  // Importing a CommonJS module through default-import syntax binds the
  // exports object itself (interop rule).
  Project P({{"app/main.js", "import lib from 'cjslib';\n"
                             "console.log(lib.tag);"},
             {"cjslib/index.js", "exports.tag = 'cjs';"}});
  EXPECT_EQ(P.run(), "cjs");
}

TEST(EsModulesTest, NamespaceImport) {
  Project P({{"app/main.js", "import * as math from 'math';\n"
                             "console.log(math.add(4, 4));"},
             {"math/index.js", "export function add(a, b) { return a + b; }"}});
  EXPECT_EQ(P.run(), "8");
}

TEST(EsModulesTest, MixedDefaultAndNamed) {
  Project P({{"app/main.js",
              "import main, { helper } from 'kit';\n"
              "console.log(main(), helper());"},
             {"kit/index.js",
              "export default function main() { return 'main'; }\n"
              "export function helper() { return 'helper'; }"}});
  EXPECT_EQ(P.run(), "main helper");
}

TEST(EsModulesTest, ExportVarAndList) {
  Project P({{"app/main.js", "import { x, y, z } from 'vals';\n"
                             "console.log(x, y, z);"},
             {"vals/index.js", "export var x = 1, y = 2;\n"
                               "var local = 3;\n"
                               "export { local as z };"}});
  EXPECT_EQ(P.run(), "1 2 3");
}

TEST(EsModulesTest, ReExportFrom) {
  Project P({{"app/main.js", "import { inner } from 'facade';\n"
                             "console.log(inner());"},
             {"facade/index.js", "export { inner } from 'impl';"},
             {"impl/index.js",
              "export function inner() { return 'deep'; }"}});
  EXPECT_EQ(P.run(), "deep");
}

TEST(EsModulesTest, BareImportRunsSideEffects) {
  Project P({{"app/main.js", "import 'sideeffect';\n"
                             "console.log(globalThis.touched);"},
             {"sideeffect/index.js", "globalThis.touched = 'yes';"}});
  EXPECT_EQ(P.run(), "yes");
}

TEST(EsModulesTest, FromAndAsRemainValidIdentifiers) {
  Project P({{"app/main.js", "var from = 1;\n"
                             "var as = 2;\n"
                             "console.log(from + as);"}});
  EXPECT_EQ(P.run(), "3");
}

TEST(EsModulesTest, StaticAnalysisResolvesEsImports) {
  Project P({{"app/main.js", "import { go } from 'lib';\n"
                             "go();"},
             {"lib/index.js", "export function go() {}"}});
  StaticAnalysis SA(*P.Loader);
  AnalysisResult A = SA.run();
  FileId AppF = P.Ctx.files().lookup("app/main.js");
  FileId LibF = P.Ctx.files().lookup("lib/index.js");
  bool Found = false;
  for (const auto &[Site, Callees] : A.CG.edges())
    if (Site.File == AppF && Site.Line == 2)
      for (const SourceLoc &Callee : Callees)
        if (Callee.File == LibF && Callee.Line == 1)
          Found = true;
  EXPECT_TRUE(Found) << A.CG.toText(P.Ctx.files());
}

TEST(EsModulesTest, HintsWorkAcrossEsModules) {
  // The Figure-1 pattern, written as an ES module.
  Project P({{"app/main.js", "import api from 'dynlib';\n"
                             "api.go();"},
             {"dynlib/index.js",
              "var api = {};\n"
              "var names = ['go'];\n"
              "names.forEach(function(n) {\n"
              "  api[n] = function goImpl() {};\n"
              "});\n"
              "export default api;"}});
  ApproxInterpreter Approx(*P.Loader);
  HintSet Hints = Approx.run({"app/main.js"});
  EXPECT_FALSE(Hints.writeHints().empty());

  AnalysisOptions Base;
  StaticAnalysis BaseSA(*P.Loader, Base, nullptr);
  AnalysisResult BaseRes = BaseSA.run();

  AnalysisOptions Ext;
  Ext.Mode = AnalysisMode::Hints;
  StaticAnalysis ExtSA(*P.Loader, Ext, &Hints);
  AnalysisResult ExtRes = ExtSA.run();
  EXPECT_GT(ExtRes.NumCallEdges, BaseRes.NumCallEdges)
      << "hints must recover api.go through the ES default export";
}

} // namespace
