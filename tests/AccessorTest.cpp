//===- AccessorTest.cpp - Getter/setter semantics and analysis ----------------===//
//
// Getters and setters across all layers: interpreter semantics, descriptor
// plumbing (the real merge-descriptors preserves accessors), approximate
// interpretation, and the static analysis (getter call edges appear at
// property-read sites — the paper's explanation for the Figure 7 outliers).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"
#include "callgraph/DynamicCallGraphRecorder.h"
#include "callgraph/Metrics.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct Runner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<Interpreter> Interp;
  Completion Result;

  explicit Runner(const std::string &MainSource) {
    Fs.addFile("app/main.js", MainSource);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Interp = std::make_unique<Interpreter>(*Loader);
    Result = Interp->loadModule("app/main.js");
    EXPECT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());
    EXPECT_FALSE(Result.isThrow())
        << "uncaught: " << Interp->toStringValue(Result.V);
  }

  std::string console() const {
    std::string Out;
    for (const auto &Line : Interp->consoleOutput()) {
      if (!Out.empty())
        Out += '\n';
      Out += Line;
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Interpreter semantics
//===----------------------------------------------------------------------===//

TEST(AccessorTest, GetterInvokedOnRead) {
  Runner R("var calls = 0;\n"
           "var o = { get value() { calls++; return 42; } };\n"
           "console.log(o.value, o.value, calls);");
  EXPECT_EQ(R.console(), "42 42 2");
}

TEST(AccessorTest, SetterInvokedOnWrite) {
  Runner R("var o = {\n"
           "  backing: 0,\n"
           "  set value(v) { this.backing = v * 2; }\n"
           "};\n"
           "o.value = 21;\n"
           "console.log(o.backing, o.value);");
  EXPECT_EQ(R.console(), "42 undefined")
      << "set-only property reads as undefined";
}

TEST(AccessorTest, GetterAndSetterPair) {
  Runner R("var o = {\n"
           "  _n: 1,\n"
           "  get n() { return this._n; },\n"
           "  set n(v) { this._n = v; }\n"
           "};\n"
           "o.n = 10;\n"
           "console.log(o.n + 1);");
  EXPECT_EQ(R.console(), "11");
}

TEST(AccessorTest, GetterThroughPrototypeChain) {
  Runner R("var proto = { get kind() { return 'proto-made'; } };\n"
           "var child = Object.create(proto);\n"
           "console.log(child.kind);");
  EXPECT_EQ(R.console(), "proto-made");
}

TEST(AccessorTest, ThrowingGetterPropagates) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("app/main.js", "var o = { get boom() { throw new "
                            "Error('getter'); } };\n"
                            "o.boom;");
  ModuleLoader Loader(Ctx, Fs, Diags);
  Interpreter I(Loader);
  Completion C = I.loadModule("app/main.js");
  ASSERT_TRUE(C.isThrow());
  EXPECT_EQ(I.toStringValue(C.V), "Error: getter");
}

TEST(AccessorTest, DefinePropertyInstallsAccessor) {
  Runner R("var o = {};\n"
           "Object.defineProperty(o, 'lazy', {\n"
           "  get: function lazyGet() { return 'computed'; }\n"
           "});\n"
           "console.log(o.lazy);");
  EXPECT_EQ(R.console(), "computed");
}

TEST(AccessorTest, MergeDescriptorsPreservesAccessors) {
  // The real merge-descriptors behavior: accessors survive the copy.
  Runner R("function merge(dest, src) {\n"
           "  Object.getOwnPropertyNames(src).forEach(function(name) {\n"
           "    var d = Object.getOwnPropertyDescriptor(src, name);\n"
           "    Object.defineProperty(dest, name, d);\n"
           "  });\n"
           "  return dest;\n"
           "}\n"
           "var calls = 0;\n"
           "var src = { get fresh() { calls++; return calls; } };\n"
           "var dst = merge({}, src);\n"
           "console.log(dst.fresh, dst.fresh, calls);");
  EXPECT_EQ(R.console(), "1 2 2")
      << "the copied property must still be a live getter, not a snapshot";
}

TEST(AccessorTest, ObjectAssignSnapshotsGetterValues) {
  // Object.assign (unlike defineProperty copies) invokes getters.
  Runner R("var calls = 0;\n"
           "var src = { get v() { calls++; return 'snap'; } };\n"
           "var dst = Object.assign({}, src);\n"
           "console.log(dst.v, calls);\n"
           "dst.v;\n"
           "console.log(calls);");
  EXPECT_EQ(R.console(), "snap 1\n1") << "the copy is a data property";
}

TEST(AccessorTest, GetSetAsPlainPropertyNamesStillWork) {
  Runner R("var o = { get: function() { return 'g'; }, set: 1 };\n"
           "console.log(o.get(), o.set);");
  EXPECT_EQ(R.console(), "g 1");
}

//===----------------------------------------------------------------------===//
// Approximate interpretation with accessors
//===----------------------------------------------------------------------===//

TEST(AccessorTest, GetterResultsProduceReadHints) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("app/main.js",
             "var table = {\n"
             "  get handler() { return function handlerImpl() {}; }\n"
             "};\n"
             "var key = 'hand' + 'ler';\n"
             "var h = table[key];\n");
  ModuleLoader Loader(Ctx, Fs, Diags);
  ApproxInterpreter Approx(Loader);
  HintSet Hints = Approx.run({"app/main.js"});
  // The dynamic read at line 5 observed the getter's result.
  bool Found = false;
  for (const auto &[Loc, Refs] : Hints.readHints())
    if (Loc.Line == 5)
      for (const AllocRef &Ref : Refs)
        if (Ref.Loc.Line == 2)
          Found = true;
  EXPECT_TRUE(Found) << Hints.toText(Ctx.files());
}

//===----------------------------------------------------------------------===//
// Static analysis: getter/setter call edges at access sites
//===----------------------------------------------------------------------===//

struct AnalysisFixture {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;

  explicit AnalysisFixture(const std::string &MainSource) {
    Fs.addFile("app/main.js", MainSource);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Loader->parseAll();
  }

  AnalysisResult baseline() {
    StaticAnalysis SA(*Loader);
    return SA.run();
  }

  bool hasEdge(const CallGraph &CG, uint32_t SiteLine, uint32_t CalleeLine) {
    FileId F = Ctx.files().lookup("app/main.js");
    for (const auto &[Site, Callees] : CG.edges()) {
      if (Site.File != F || Site.Line != SiteLine)
        continue;
      for (const SourceLoc &Callee : Callees)
        if (Callee.File == F && Callee.Line == CalleeLine)
          return true;
    }
    return false;
  }
};

TEST(AccessorTest, StaticGetterEdgeAtReadSite) {
  AnalysisFixture F("var o = {\n"
                    "  get value() { return 42; }\n"
                    "};\n"
                    "var v = o.value;");
  AnalysisResult A = F.baseline();
  EXPECT_TRUE(F.hasEdge(A.CG, 4, 2))
      << "reading an accessor property is a getter call\n"
      << A.CG.toText(F.Ctx.files());
}

TEST(AccessorTest, StaticSetterEdgeAtWriteSite) {
  AnalysisFixture F("var o = {\n"
                    "  set value(v) { this._v = v; }\n"
                    "};\n"
                    "o.value = 1;");
  AnalysisResult A = F.baseline();
  EXPECT_TRUE(F.hasEdge(A.CG, 4, 2)) << A.CG.toText(F.Ctx.files());
}

TEST(AccessorTest, StaticGetterReturnValueFlows) {
  AnalysisFixture F("var o = {\n"
                    "  get fn() { return function made() {}; }\n"
                    "};\n"
                    "var g = o.fn;\n"
                    "g();");
  AnalysisResult A = F.baseline();
  EXPECT_TRUE(F.hasEdge(A.CG, 5, 2))
      << "the getter's returned function is callable\n"
      << A.CG.toText(F.Ctx.files());
}

TEST(AccessorTest, StaticSetterReceivesWrittenValue) {
  AnalysisFixture F("var o = {\n"
                    "  set cb(fn) { fn(); }\n"
                    "};\n"
                    "o.cb = function invoked() {};");
  AnalysisResult A = F.baseline();
  EXPECT_TRUE(F.hasEdge(A.CG, 2, 4))
      << "the written value flows into the setter parameter\n"
      << A.CG.toText(F.Ctx.files());
}

TEST(AccessorTest, StaticAndDynamicGetterEdgesAgree) {
  // The dynamic CG records the getter call at the read site; the static
  // analysis must produce the same edge (loc-for-loc).
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("app/main.js", "var o = {\n"
                            "  get item() { return 7; }\n"
                            "};\n"
                            "var x = o.item;");
  ModuleLoader Loader(Ctx, Fs, Diags);
  DynamicCallGraphRecorder Recorder;
  Interpreter I(Loader, InterpOptions(), &Recorder);
  I.loadModule("app/main.js");
  const CallGraph &Dyn = Recorder.callGraph();
  ASSERT_EQ(Dyn.numEdges(), 1u) << Dyn.toText(Ctx.files());

  StaticAnalysis SA(Loader);
  AnalysisResult A = SA.run();
  RecallPrecision RP = compareCallGraphs(A.CG, Dyn);
  EXPECT_DOUBLE_EQ(RP.Recall, 1.0) << A.CG.toText(Ctx.files());
}

} // namespace
