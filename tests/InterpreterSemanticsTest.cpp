//===- InterpreterSemanticsTest.cpp - Corner-case MiniJS semantics ------------===//
//
// Second interpreter suite: the semantic corners that the pattern
// generators and the motivating example rely on indirectly (prototype
// shadowing, delete semantics, the `in` operator, try/finally overrides,
// module identity, and the other cases JavaScript is famous for).
//
//===----------------------------------------------------------------------===//

#include "approx/ApproxInterpreter.h"
#include "interp/Interpreter.h"
#include "support/JsNumber.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct Runner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<Interpreter> Interp;
  Completion Result;

  explicit Runner(const std::string &MainSource) {
    Fs.addFile("app/main.js", MainSource);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Interp = std::make_unique<Interpreter>(*Loader);
    Result = Interp->loadModule("app/main.js");
  }

  std::string console() const {
    std::string Out;
    for (const auto &Line : Interp->consoleOutput()) {
      if (!Out.empty())
        Out += '\n';
      Out += Line;
    }
    return Out;
  }
};

std::string run(const std::string &Source) {
  Runner R(Source);
  EXPECT_FALSE(R.Diags.hasErrors()) << R.Diags.render(R.Ctx.files());
  EXPECT_FALSE(R.Result.isThrow())
      << "uncaught: " << R.Interp->toStringValue(R.Result.V);
  return R.console();
}

TEST(SemanticsTest, PrototypeShadowingAndDelete) {
  EXPECT_EQ(run("function T() {}\n"
                "T.prototype.v = 'proto';\n"
                "var t = new T();\n"
                "console.log(t.v);\n"
                "t.v = 'own';\n"
                "console.log(t.v);\n"
                "delete t.v;\n"
                "console.log(t.v);"),
            "proto\nown\nproto")
      << "delete exposes the prototype value again";
}

TEST(SemanticsTest, InOperatorWalksPrototypeChain) {
  EXPECT_EQ(run("function T() { this.own = 1; }\n"
                "T.prototype.inherited = 2;\n"
                "var t = new T();\n"
                "console.log('own' in t, 'inherited' in t, 'nope' in t);"),
            "true true false");
}

TEST(SemanticsTest, InstanceofAfterPrototypeReplacement) {
  EXPECT_EQ(run("function A() {}\n"
                "function B() {}\n"
                "var a = new A();\n"
                "console.log(a instanceof A, a instanceof B);\n"
                "B.prototype = A.prototype;\n"
                "console.log(a instanceof B);"),
            "true false\ntrue");
}

TEST(SemanticsTest, ConstructorPropertyPointsBack) {
  EXPECT_EQ(run("function T() {}\n"
                "var t = new T();\n"
                "console.log(t.constructor === T);"),
            "true");
}

TEST(SemanticsTest, ThisInPlainCallIsUndefined) {
  EXPECT_EQ(run("function f() { return typeof this; }\n"
                "console.log(f());"),
            "undefined");
}

TEST(SemanticsTest, MethodExtractionLosesReceiver) {
  EXPECT_EQ(run("var o = { x: 1, get: function() { return this ? 'has' : "
                "'lost'; } };\n"
                "var g = o.get;\n"
                "console.log(o.get(), g());"),
            "has lost");
}

TEST(SemanticsTest, ClosuresInLoopShareVar) {
  // The classic var-capture behavior (function scope).
  EXPECT_EQ(run("var fns = [];\n"
                "for (var i = 0; i < 3; i++) {\n"
                "  fns.push(function() { return i; });\n"
                "}\n"
                "console.log(fns[0](), fns[1](), fns[2]());"),
            "3 3 3");
}

TEST(SemanticsTest, TryFinallyReturnOverride) {
  EXPECT_EQ(run("function f() {\n"
                "  try { return 'try'; }\n"
                "  finally { return 'finally'; }\n"
                "}\n"
                "console.log(f());"),
            "finally");
}

TEST(SemanticsTest, CatchRethrowReachesOuter) {
  EXPECT_EQ(run("var log = '';\n"
                "try {\n"
                "  try { throw 'inner'; }\n"
                "  catch (e) { log += 'c1:' + e + ';'; throw 'outer'; }\n"
                "} catch (e) { log += 'c2:' + e; }\n"
                "console.log(log);"),
            "c1:inner;c2:outer");
}

TEST(SemanticsTest, ThrowNonObjectValues) {
  EXPECT_EQ(run("try { throw 42; } catch (e) { console.log(typeof e, e); }"),
            "number 42");
}

TEST(SemanticsTest, SwitchDefaultInMiddleFallsThrough) {
  EXPECT_EQ(run("function f(x) {\n"
                "  var out = '';\n"
                "  switch (x) {\n"
                "    default: out += 'd';\n"
                "    case 1: out += '1'; break;\n"
                "    case 2: out += '2';\n"
                "  }\n"
                "  return out;\n"
                "}\n"
                "console.log(f(9), f(1), f(2));"),
            "d1 1 2");
}

TEST(SemanticsTest, SequenceExpressionEvaluatesAll) {
  EXPECT_EQ(run("var log = '';\n"
                "function note(x) { log += x; return x; }\n"
                "var v = (note('a'), note('b'), note('c'));\n"
                "console.log(log, v);"),
            "abc c");
}

TEST(SemanticsTest, StringIndexingAndLength) {
  EXPECT_EQ(run("var s = 'abc';\n"
                "console.log(s[0], s[2], s[9], s.length);"),
            "a c undefined 3");
}

TEST(SemanticsTest, NumericStringKeysOnObjects) {
  EXPECT_EQ(run("var o = {};\n"
                "o[1] = 'one';\n"
                "console.log(o['1'], o[1]);"),
            "one one")
      << "numeric keys canonicalize to strings";
}

TEST(SemanticsTest, ArrayDeleteLeavesHole) {
  EXPECT_EQ(run("var a = [1, 2, 3];\n"
                "delete a[1];\n"
                "console.log(a.length, a[1]);"),
            "3 undefined");
}

TEST(SemanticsTest, ArrayLengthTruncation) {
  EXPECT_EQ(run("var a = [1, 2, 3, 4];\n"
                "a.length = 2;\n"
                "console.log(a.join(','), a.length);"),
            "1,2 2");
}

TEST(SemanticsTest, ForInSkipsProtoProperties) {
  // MiniJS deviation (documented): for-in enumerates own properties only.
  EXPECT_EQ(run("function T() { this.own = 1; }\n"
                "T.prototype.inherited = 2;\n"
                "var keys = '';\n"
                "var t = new T();\n"
                "for (var k in t) keys += k;\n"
                "console.log(keys);"),
            "own");
}

TEST(SemanticsTest, ModuleThisIsExports) {
  Runner R("this.viaThis = 'works';\n"
           "console.log(exports.viaThis, this === exports, this === "
           "module.exports);");
  EXPECT_EQ(R.console(), "works true true");
}

TEST(SemanticsTest, ExportsRebindDoesNotChangeModuleExports) {
  Runner R1("exports = { hijacked: true };");
  // What require() sees is module.exports, not the rebound local.
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("lib/index.js", "exports = { hijacked: true };\n"
                             "exports.foo = 1;");
  Fs.addFile("app/main.js", "var lib = require('lib');\n"
                            "console.log(lib.foo === undefined, lib.hijacked "
                            "=== undefined);");
  ModuleLoader Loader(Ctx, Fs, Diags);
  Interpreter I(Loader);
  I.loadModule("app/main.js");
  ASSERT_EQ(I.consoleOutput().size(), 1u);
  EXPECT_EQ(I.consoleOutput()[0], "true true");
}

TEST(SemanticsTest, CompoundAssignOnMembers) {
  EXPECT_EQ(run("var o = { n: 10, s: 'a' };\n"
                "o.n += 5;\n"
                "o.s += 'b';\n"
                "var k = 'n';\n"
                "o[k] += 1;\n"
                "console.log(o.n, o.s);"),
            "16 ab");
}

TEST(SemanticsTest, UpdateOnMemberExpressions) {
  EXPECT_EQ(run("var o = { n: 1 };\n"
                "var a = [5];\n"
                "console.log(o.n++, o.n, ++a[0], a[0]);"),
            "1 2 6 6");
}

TEST(SemanticsTest, NestedEval) {
  EXPECT_EQ(run("var x = 1;\n"
                "eval(\"eval('x = x + 41;');\");\n"
                "console.log(x);"),
            "42");
}

TEST(SemanticsTest, VoidTypeofDeleteOperators) {
  EXPECT_EQ(run("console.log(void 0, typeof notDeclaredAnywhere, delete "
                "alsoNotDeclared);"),
            "undefined undefined true");
}

TEST(SemanticsTest, BitwiseOperators) {
  EXPECT_EQ(run("console.log(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 4, 256 >> 4);"),
            "1 7 6 -6 16 16");
}

TEST(SemanticsTest, NaNPropagationAndComparisons) {
  EXPECT_EQ(run("var n = 0 / 0;\n"
                "console.log(n === n, n < 1, n > 1, isNaN(n), "
                "isNaN('text'));"),
            "false false false true true");
}

TEST(SemanticsTest, StringNumberCoercionInComparisons) {
  EXPECT_EQ(run("console.log('10' < '9', 10 < 9, '10' < 9, 10 == '10');"),
            "true false false true")
      << "string-string compares lexicographically; mixed compares numerically";
}

TEST(SemanticsTest, HasOwnPropertyVsIn) {
  EXPECT_EQ(run("function T() { this.own = 1; }\n"
                "T.prototype.proto = 2;\n"
                "var t = new T();\n"
                "console.log(t.hasOwnProperty('own'), "
                "t.hasOwnProperty('proto'), 'proto' in t);"),
            "true false true");
}

TEST(SemanticsTest, ArgumentsReflectsCallNotSignature) {
  EXPECT_EQ(run("function f(a) { return arguments.length; }\n"
                "console.log(f(), f(1), f(1, 2, 3));"),
            "0 1 3");
}

TEST(SemanticsTest, RecursionThroughSelfBindingAfterReassignment) {
  // The named-function-expression binding is immune to outer reassignment.
  EXPECT_EQ(run("var f = function rec(n) {\n"
                "  return n === 0 ? 'done' : rec(n - 1);\n"
                "};\n"
                "var g = f;\n"
                "f = null;\n"
                "console.log(g(3));"),
            "done");
}

TEST(SemanticsTest, GuardedClosureNeverCreatedUntilTaken) {
  EXPECT_EQ(run("function maybe(mode) {\n"
                "  if (mode === 'special') {\n"
                "    var inner = function inner() { return 'made'; };\n"
                "    return inner();\n"
                "  }\n"
                "  return 'skipped';\n"
                "}\n"
                "console.log(maybe('x'), maybe('special'));"),
            "skipped made");
}

TEST(SemanticsTest, ObjectToStringInConcatenation) {
  EXPECT_EQ(run("console.log('' + {}, '' + [1, 2], '' + [null], '' + "
                "function named() {});"),
            "[object Object] 1,2  function named() { [code] }");
}

//===----------------------------------------------------------------------===//
// Inline-cache invalidation: the loops below execute one member-access site
// repeatedly so its cache gets warm, then change the world mid-loop. The
// cached fast path must notice every time.
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, WarmReadSiteSeesShadowingMidLoop) {
  EXPECT_EQ(run("function T() {}\n"
                "T.prototype.v = 'proto';\n"
                "var t = new T();\n"
                "var out = '';\n"
                "for (var i = 0; i < 5; i = i + 1) {\n"
                "  out = out + t.v + ',';\n"
                "  if (i === 2) { t.v = 'own'; }\n"
                "}\n"
                "console.log(out);"),
            "proto,proto,proto,own,own,")
      << "adding an own slot transitions the shape, killing the proto hit";
}

TEST(SemanticsTest, WarmReadSiteSeesAccessorOverData) {
  EXPECT_EQ(run("var o = { x: 1 };\n"
                "var out = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  out = out + o.x + ',';\n"
                "  if (i === 1) {\n"
                "    Object.defineProperty(o, 'x', {\n"
                "      get: function () { return 42; }\n"
                "    });\n"
                "  }\n"
                "}\n"
                "console.log(out);"),
            "1,1,42,42,")
      << "accessor installation keeps the shape; the cached slot must "
         "re-check isAccessor";
}

TEST(SemanticsTest, WarmWriteSiteSeesProtoSetterMidLoop) {
  EXPECT_EQ(run("function T() {}\n"
                "T.prototype = {};\n"
                "var logged = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  var o = new T();\n"
                "  o.p = i;\n"
                "  if (i === 1) {\n"
                "    Object.defineProperty(T.prototype, 'p', {\n"
                "      set: function (v) { logged = logged + v; }\n"
                "    });\n"
                "  }\n"
                "}\n"
                "console.log(logged);"),
            "23")
      << "a setter appearing on the chain must stop the cached add "
         "transition";
}

TEST(SemanticsTest, WarmReadSiteSeesPrototypeSurgery) {
  EXPECT_EQ(run("var protoA = { tag: 'A' };\n"
                "var protoB = { tag: 'B' };\n"
                "var o = {};\n"
                "Object.setPrototypeOf(o, protoA);\n"
                "var out = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  out = out + o.tag;\n"
                "  if (i === 1) { Object.setPrototypeOf(o, protoB); }\n"
                "}\n"
                "console.log(out);"),
            "AABB")
      << "replacing the prototype changes the chain identity, not the "
         "receiver shape";
}

TEST(SemanticsTest, WarmSiteSurvivesDictionaryConversion) {
  EXPECT_EQ(run("var o = { a: 1, b: 2, c: 3 };\n"
                "var out = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  out = out + o.a;\n"
                "  if (i === 1) { delete o.b; o.a = 9; }\n"
                "}\n"
                "console.log(out + '|' + Object.keys(o).join(','));"),
            "1199|a,c")
      << "deletion drops the object off shapes; reads must keep working";
}

TEST(SemanticsTest, DeleteThenReaddKeepsDeterministicOrder) {
  EXPECT_EQ(run("var o = { a: 1, b: 2, c: 3 };\n"
                "delete o.b;\n"
                "o.b = 4;\n"
                "o.d = 5;\n"
                "var ks = '';\n"
                "for (var k in o) { ks = ks + k; }\n"
                "console.log(Object.keys(o).join(','), ks);"),
            "a,c,b,d acbd")
      << "re-added properties append; for-in and Object.keys agree";
}

//===----------------------------------------------------------------------===//
// Engine parity: the bytecode VM (--interp=vm) against the tree-walker
// oracle. Every observable channel must agree — console output, completion
// kind, uncaught-throw rendering, the full observer event sequence,
// inline-cache/shape stats, and budget behavior — on handwritten corner
// cases and on seeded random programs.
//===----------------------------------------------------------------------===//

/// Records every observer callback as a stable string so two runs can be
/// compared event for event.
struct RecordingObserver : InterpObserver {
  const FileTable *Files = nullptr;
  std::vector<std::string> Events;

  std::string loc(SourceLoc L) const { return Files->format(L); }
  static std::string render(const Value &V) {
    if (V.isNumber())
      return jsNumberToString(V.asNumber());
    if (V.isString())
      return "'" + V.asString() + "'";
    if (V.isObject())
      return "object";
    return V.typeOf();
  }

  void onObjectCreated(Object *O) override {
    Events.push_back("obj@" + loc(O->birthLoc()));
  }
  void onFunctionCreated(Object *, FunctionDef *Def) override {
    Events.push_back("fn@" + loc(Def->loc()));
  }
  void onCall(SourceLoc CallSite, FunctionDef *Callee) override {
    Events.push_back("call " + loc(CallSite) + " -> " + loc(Callee->loc()));
  }
  void onDynamicRead(SourceLoc ReadLoc, const std::string &Prop,
                     const Value &Result) override {
    Events.push_back("read " + loc(ReadLoc) + " " + Prop + "=" +
                     render(Result));
  }
  void onDynamicWrite(SourceLoc OpLoc, Object *Base, const std::string &Prop,
                      const Value &Val) override {
    Events.push_back("write " + loc(OpLoc) + " " + Prop + "=" + render(Val) +
                     " base@" + loc(Base->birthLoc()));
  }
  void onProxyBaseRead(SourceLoc ReadLoc, const std::string &Prop) override {
    Events.push_back("proxyread " + loc(ReadLoc) + " " + Prop);
  }
  void onModuleRequired(SourceLoc CallSite,
                        const std::string &Path) override {
    Events.push_back("require " + loc(CallSite) + " " + Path);
  }
  void onEvalCode(SourceLoc CallSite, const std::string &Code) override {
    Events.push_back("eval " + loc(CallSite) + " " + Code);
  }
};

/// One execution of a single-module program under an explicit engine, with
/// every comparable channel captured.
struct EngineRun {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  RecordingObserver Obs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<Interpreter> Interp;
  Completion Result;
  std::string Console;
  std::string Thrown;
  InterpStats Stats;
  size_t Chunks = 0;
  bool BudgetHit = false;

  EngineRun(const std::string &Source, InterpEngineKind Engine,
            InterpOptions Base = InterpOptions()) {
    Fs.addFile("app/main.js", Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Obs.Files = &Ctx.files();
    Base.Engine = Engine;
    Interp = std::make_unique<Interpreter>(*Loader, Base, &Obs);
    Result = Interp->loadModule("app/main.js");
    for (const auto &Line : Interp->consoleOutput()) {
      if (!Console.empty())
        Console += '\n';
      Console += Line;
    }
    if (Result.isThrow())
      Thrown = Interp->toStringValue(Result.V);
    Stats = Interp->stats();
    Chunks = Interp->compiledVmChunks();
    BudgetHit = Interp->budgetExhausted();
  }
};

/// Runs \p Source under three configurations — walker, plain VM, and VM
/// with the bytecode optimizer — and asserts that every observable channel
/// is identical. The module body itself executes through a chunk, so a VM
/// run always compiles at least one.
void expectEnginesAgree(const std::string &Source,
                        InterpOptions Base = InterpOptions()) {
  EngineRun Ast(Source, InterpEngineKind::Ast, Base);
  InterpOptions Plain = Base;
  Plain.VmOptimize = false;
  EngineRun Vm(Source, InterpEngineKind::Vm, Plain);
  InterpOptions Optimized = Base;
  Optimized.VmOptimize = true;
  EngineRun VmOpt(Source, InterpEngineKind::Vm, Optimized);
  ASSERT_FALSE(Ast.Diags.hasErrors()) << Ast.Diags.render(Ast.Ctx.files());
  EXPECT_EQ(int(Ast.Result.Kind), int(Vm.Result.Kind));
  EXPECT_EQ(Ast.Console, Vm.Console);
  EXPECT_EQ(Ast.Thrown, Vm.Thrown);
  EXPECT_EQ(Ast.Obs.Events, Vm.Obs.Events);
  EXPECT_TRUE(Ast.Stats == Vm.Stats)
      << "inline-cache/shape stats diverge between engines";
  EXPECT_EQ(Ast.BudgetHit, Vm.BudgetHit);
  EXPECT_EQ(Ast.Chunks, 0u) << "walker run must not compile bytecode";
  EXPECT_GE(Vm.Chunks, 1u) << "VM run silently fell back to the walker";
  EXPECT_EQ(int(Ast.Result.Kind), int(VmOpt.Result.Kind));
  EXPECT_EQ(Ast.Console, VmOpt.Console);
  EXPECT_EQ(Ast.Thrown, VmOpt.Thrown);
  EXPECT_EQ(Ast.Obs.Events, VmOpt.Obs.Events);
  EXPECT_TRUE(Ast.Stats == VmOpt.Stats)
      << "inline-cache/shape stats diverge under --vm-opt=on";
  EXPECT_EQ(Ast.BudgetHit, VmOpt.BudgetHit);
  EXPECT_GE(VmOpt.Chunks, 1u);
}

TEST(EngineParityTest, VmEngineActuallyCompilesChunks) {
  EngineRun Vm("function f() { return 1; }\nconsole.log(f());",
               InterpEngineKind::Vm);
  EXPECT_EQ(Vm.Console, "1");
  EXPECT_GE(Vm.Chunks, 2u) << "module body and f() should both compile";
  EngineRun Ast("function f() { return 1; }\nconsole.log(f());",
                InterpEngineKind::Ast);
  EXPECT_EQ(Ast.Chunks, 0u);
}

TEST(EngineParityTest, ControlFlowKitchenSink) {
  expectEnginesAgree(
      "var log = console.log;\n"
      "var s = 0;\n"
      "for (var i = 0; i < 10; i++) {\n"
      "  if (i % 3 === 0) { continue; }\n"
      "  if (i === 8) { break; }\n"
      "  s += i;\n"
      "}\n"
      "log('loop', s);\n"
      "var j = 0;\n"
      "do { j++; } while (j < 4);\n"
      "while (j < 7) { j += 2; }\n"
      "log('while', j);\n"
      "switch (j % 4) {\n"
      "  case 0: log('zero');\n"
      "  case 1: log('one'); break;\n"
      "  case 2: log('two'); break;\n"
      "  default: log('other');\n"
      "}\n"
      "function weave(n) {\n"
      "  try {\n"
      "    if (n > 2) { throw 'big:' + n; }\n"
      "    for (var x = 0; x < n; x++) {\n"
      "      try { if (x === 1) { return 'early:' + x; } }\n"
      "      finally { log('fin-inner', x); }\n"
      "    }\n"
      "    return 'ran:' + n;\n"
      "  } catch (e) { return 'caught:' + e; }\n"
      "  finally { log('fin-outer', n); }\n"
      "}\n"
      "log(weave(1), weave(2), weave(5));\n"
      "var o = { a: 1, get g() { return this.a + 1; },\n"
      "          set g(v) { this.a = v * 10; } };\n"
      "log(o.g); o.g = 3; log(o.a, o.g);\n"
      "o['dy' + 'n'] = 4; log(o.dyn, o['dy' + 'n']);\n"
      "o.a ||= 99; o.z ||= 7; log(o.a, o.z);\n"
      "var u; u ||= 'filled'; log(u);\n"
      "o.a += 5; o['a'] += 5; log(o.a, ++o.a, o.a++, o.a);\n"
      "delete o.z; log('z' in o, delete o.nope);\n"
      "function T(v) { this.p = v; }\n"
      "var t = new T(6);\n"
      "log(t.p, t instanceof T);\n"
      "var ks = '';\n"
      "for (var k in o) { ks += k + ';'; }\n"
      "log(ks);\n"
      "for (o.p in t) { }\n"
      "log(o.p);\n"
      "var g = 10; eval('g = g + 5;'); log(g);\n"
      "log(1 / -0, -0, 0.1 + 0.2, 1e21, (8).toString(2));\n"
      "var seq = (log('sq1'), log('sq2'), 42); log(seq);\n");
}

TEST(EngineParityTest, UncaughtThrowMatches) {
  const char *Src = "function f() { console.log('pre'); return missing + 1; }\nf();";
  EngineRun Ast(Src, InterpEngineKind::Ast);
  EngineRun Vm(Src, InterpEngineKind::Vm);
  ASSERT_TRUE(Ast.Result.isThrow());
  ASSERT_TRUE(Vm.Result.isThrow());
  EXPECT_EQ(Ast.Thrown, Vm.Thrown);
  EXPECT_EQ(Ast.Console, Vm.Console);
  EXPECT_EQ(Ast.Obs.Events, Vm.Obs.Events);
}

TEST(EngineParityTest, StepBudgetAbortsAtSamePoint) {
  // Step accounting is the subtlest part of the parity contract: with a
  // tiny MaxSteps both engines must stop after the same number of
  // console.log calls and report the same Abort completion.
  InterpOptions Tight;
  Tight.MaxSteps = 400;
  expectEnginesAgree("var n = 0;\n"
                     "for (var i = 0; i < 100000; i++) {\n"
                     "  n += i;\n"
                     "  console.log('it', i, n);\n"
                     "}\n"
                     "console.log('done', n);\n",
                     Tight);
}

TEST(EngineParityTest, LoopBudgetAbortsAtSamePoint) {
  InterpOptions Approx;
  Approx.ApproxMode = true;
  Approx.MaxLoopIterations = 25;
  expectEnginesAgree("var n = 0;\n"
                     "for (var i = 0; i < 1000; i++) {\n"
                     "  n = n + 1;\n"
                     "  console.log(i, n);\n"
                     "}\n",
                     Approx);
}

TEST(EngineParityTest, FinallyRunsOnAbortInBothEngines) {
  InterpOptions Tight;
  Tight.MaxSteps = 300;
  expectEnginesAgree("try {\n"
                     "  for (var i = 0; ; i++) { console.log('t', i); }\n"
                     "} finally {\n"
                     "  console.log('cleanup');\n"
                     "}\n",
                     Tight);
}

//===----------------------------------------------------------------------===//
// Approx-mode parity: identical hints and identical ApproxStats (which
// embed the interpreter's inline-cache counters) under both engines.
//===----------------------------------------------------------------------===//

struct ApproxEngineRun {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<ApproxInterpreter> Approx;
  HintSet Hints;
  std::string HintText;
  ApproxStats Stats;

  ApproxEngineRun(
      const std::vector<std::pair<std::string, std::string>> &Files,
      InterpEngineKind Engine, bool VmOptimize = false) {
    for (const auto &[Path, Source] : Files)
      Fs.addFile(Path, Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    ApproxOptions AO;
    AO.Engine = Engine;
    AO.VmOptimize = VmOptimize;
    Approx = std::make_unique<ApproxInterpreter>(*Loader, AO);
    Hints = Approx->run({"app/main.js"});
    HintText = Hints.toText(Ctx.files());
    Stats = Approx->stats();
  }
};

void expectApproxEnginesAgree(
    const std::vector<std::pair<std::string, std::string>> &Files) {
  ApproxEngineRun Ast(Files, InterpEngineKind::Ast);
  ApproxEngineRun Vm(Files, InterpEngineKind::Vm, /*VmOptimize=*/false);
  ApproxEngineRun VmOpt(Files, InterpEngineKind::Vm, /*VmOptimize=*/true);
  EXPECT_EQ(Ast.HintText, Vm.HintText);
  EXPECT_TRUE(Ast.Stats == Vm.Stats)
      << "approx stats diverge: visited " << Ast.Stats.NumFunctionsVisited
      << " vs " << Vm.Stats.NumFunctionsVisited << ", aborts "
      << Ast.Stats.NumAborts << " vs " << Vm.Stats.NumAborts;
  EXPECT_EQ(Ast.HintText, VmOpt.HintText)
      << "hints diverge under --vm-opt=on";
  EXPECT_TRUE(Ast.Stats == VmOpt.Stats)
      << "approx stats diverge under --vm-opt=on: visited "
      << Ast.Stats.NumFunctionsVisited << " vs "
      << VmOpt.Stats.NumFunctionsVisited << ", aborts " << Ast.Stats.NumAborts
      << " vs " << VmOpt.Stats.NumAborts;
}

TEST(EngineParityTest, ApproxHintsIdenticalAcrossEngines) {
  expectApproxEnginesAgree(
      {{"app/main.js",
        "var lib = require('lib/util.js');\n"
        "var handlers = {};\n"
        "function register(name, fn) { handlers[name] = fn; }\n"
        "register('go' + '!', function onGo(ev) { return ev.detail; });\n"
        "function dispatch(name) { return handlers[name]; }\n"
        "dispatch('go!');\n"
        "var spec = 'lib/' + 'extra.js';\n"
        "function lazy() { return require(spec); }\n"},
       {"lib/util.js",
        "module.exports = { pick: function pick(o, key) { return o[key]; } "
        "};\n"},
       {"lib/extra.js", "module.exports = {};\n"}});
}

//===----------------------------------------------------------------------===//
// Seeded differential fuzzing: random (always-valid) MiniJS programs, each
// run under both engines in concrete mode and under the approximate
// interpreter. Any divergence is a parity bug by definition — the tree
// walker is the oracle.
//===----------------------------------------------------------------------===//

/// Deterministic random-program generator over the MiniJS subset both
/// engines implement. All loops are counter-bounded and throws happen only
/// inside try, so generated programs always terminate.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Out.clear();
    LoopId = 0;
    Out += "var v0 = " + num() + ", v1 = " + num() + ", v2 = 's2', v3 = " +
           num() + ", v4 = 'zz';\n";
    Out += "var o = {a: 1, b: 'two', m: 0};\n";
    Out += "var arr = [3, 1, 4, 1, 5];\n";
    Out += "var k = 'a';\n";
    Out += "var ik = 'a';\n";
    emitFunction("f0");
    emitFunction("f1");
    int N = int(R.range(5, 10));
    for (int I = 0; I < N; ++I)
      stmt(2, "");
    Out += "console.log(v0, v1, v2, v3, v4, o.a, o.b, o.m, arr[0], arr[3], "
           "k, ik);\n";
    return Out;
  }

private:
  std::string num() { return std::to_string(R.below(100)); }
  std::string varName() {
    static const char *Names[] = {"v0", "v1", "v2", "v3", "v4", "k"};
    return Names[R.below(6)];
  }
  std::string propName() {
    static const char *Names[] = {"a", "b", "m", "z"};
    return Names[R.below(4)];
  }

  std::string expr(int Depth) {
    switch (R.below(Depth > 0 ? 18 : 10)) {
    case 0:
      return num();
    case 1:
      return "'s" + std::to_string(R.below(10)) + "'";
    case 2:
    case 3:
      return varName();
    case 4:
      return "o." + propName();
    case 5:
      return "arr[" + std::to_string(R.below(6)) + "]";
    case 6:
      return "o[k]";
    case 7:
      return "typeof " + varName();
    case 8:
      return "(" + varName() + " < " + num() + ")";
    case 9:
      return num();
    case 10:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 11:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 12:
      return "(" + expr(Depth - 1) + " * " + expr(Depth - 1) + ")";
    case 13:
      return "(" + expr(Depth - 1) + " % " + expr(Depth - 1) + ")";
    case 14:
      return "(" + expr(Depth - 1) + " ? " + expr(Depth - 1) + " : " +
             expr(Depth - 1) + ")";
    case 15:
      return std::string(R.chance(50) ? "f0" : "f1") + "(" + expr(Depth - 1) +
             ", " + expr(Depth - 1) + ")";
    case 16:
      return "(" + expr(Depth - 1) + " && " + expr(Depth - 1) + ")";
    default:
      return "(" + expr(Depth - 1) + " || " + expr(Depth - 1) + ")";
    }
  }

  void stmt(int Depth, const std::string &Ind) {
    switch (R.below(Depth > 0 ? 12 : 6)) {
    case 0:
      Out += Ind + "v" + std::to_string(R.below(5)) + " = " + expr(1) + ";\n";
      break;
    case 1:
      Out += Ind + (R.chance(50) ? "v" + std::to_string(R.below(5)) : "o.m") +
             " += " + expr(1) + ";\n";
      break;
    case 2:
      Out += Ind + "console.log(" + expr(2) + ");\n";
      break;
    case 3:
      Out += Ind + "o." + propName() + " = " + expr(1) + ";\n";
      break;
    case 4:
      Out += Ind + "o[" +
             (R.chance(50) ? std::string("k")
                           : "'p' + " + std::to_string(R.below(3))) +
             "] = " + expr(1) + ";\n";
      break;
    case 5:
      Out += Ind +
             (R.chance(50) ? "v0++" : R.chance(50) ? "--v1" : "o.m++") +
             ";\n";
      break;
    case 6:
      Out += Ind + "if (" + expr(1) + ") {\n";
      stmt(Depth - 1, Ind + "  ");
      if (R.chance(50)) {
        Out += Ind + "} else {\n";
        stmt(Depth - 1, Ind + "  ");
      }
      Out += Ind + "}\n";
      break;
    case 7: {
      std::string T = "t" + std::to_string(LoopId++);
      Out += Ind + "for (var " + T + " = 0; " + T + " < " +
             std::to_string(R.range(1, 5)) + "; " + T + "++) {\n";
      stmt(Depth - 1, Ind + "  ");
      Out += Ind + "}\n";
      break;
    }
    case 8:
      Out += Ind + "for (ik in o) {\n";
      Out += Ind + "  console.log(ik, o[ik]);\n";
      Out += Ind + "}\n";
      break;
    case 9:
      Out += Ind + "try {\n";
      stmt(Depth - 1, Ind + "  ");
      if (R.chance(60))
        Out += Ind + "  throw " + expr(1) + ";\n";
      Out += Ind + "} catch (e) {\n";
      Out += Ind + "  console.log('caught', e);\n";
      Out += Ind + "}";
      if (R.chance(50)) {
        Out += " finally {\n";
        Out += Ind + "  console.log('fin');\n";
        Out += Ind + "}";
      }
      Out += "\n";
      break;
    case 10:
      Out += Ind + "switch (" + expr(1) + " % 3) {\n";
      Out += Ind + "case 0:\n";
      stmt(0, Ind + "  ");
      if (R.chance(70))
        Out += Ind + "  break;\n";
      Out += Ind + "case 1:\n";
      stmt(0, Ind + "  ");
      Out += Ind + "  break;\n";
      Out += Ind + "default:\n";
      stmt(0, Ind + "  ");
      Out += Ind + "}\n";
      break;
    default:
      Out += Ind + (R.chance(50) ? "delete o." + propName()
                                 : "f1(" + expr(1) + ", " + expr(1) + ")") +
             ";\n";
      break;
    }
  }

  void emitFunction(const std::string &Name) {
    Out += "function " + Name + "(x, y) {\n";
    Out += "  var r = " + expr(1) + ";\n";
    if (R.chance(60))
      Out += "  if (" + expr(1) + ") { r = r + x; }\n";
    if (R.chance(40))
      Out += "  r = r + o[k];\n";
    Out += "  return r + y;\n";
    Out += "}\n";
  }

  Rng R;
  std::string Out;
  int LoopId = 0;
};

TEST(EngineParityFuzzTest, RandomProgramsAgreeConcretely) {
  for (uint64_t Seed = 1; Seed <= 150; ++Seed) {
    ProgramGen G(Seed * 0x9E3779B97F4A7C15ULL + 1);
    std::string Src = G.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Src);
    expectEnginesAgree(Src);
    if (::testing::Test::HasFailure())
      break; // One divergence is enough to diagnose; don't spam 150.
  }
}

TEST(EngineParityFuzzTest, RandomProgramsAgreeUnderApproximation) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    ProgramGen G(Seed * 0xBF58476D1CE4E5B9ULL + 3);
    std::string Src = G.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Src);
    expectApproxEnginesAgree({{"app/main.js", Src}});
    if (::testing::Test::HasFailure())
      break;
  }
}

} // namespace
