//===- InterpreterSemanticsTest.cpp - Corner-case MiniJS semantics ------------===//
//
// Second interpreter suite: the semantic corners that the pattern
// generators and the motivating example rely on indirectly (prototype
// shadowing, delete semantics, the `in` operator, try/finally overrides,
// module identity, and the other cases JavaScript is famous for).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct Runner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<Interpreter> Interp;
  Completion Result;

  explicit Runner(const std::string &MainSource) {
    Fs.addFile("app/main.js", MainSource);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Interp = std::make_unique<Interpreter>(*Loader);
    Result = Interp->loadModule("app/main.js");
  }

  std::string console() const {
    std::string Out;
    for (const auto &Line : Interp->consoleOutput()) {
      if (!Out.empty())
        Out += '\n';
      Out += Line;
    }
    return Out;
  }
};

std::string run(const std::string &Source) {
  Runner R(Source);
  EXPECT_FALSE(R.Diags.hasErrors()) << R.Diags.render(R.Ctx.files());
  EXPECT_FALSE(R.Result.isThrow())
      << "uncaught: " << R.Interp->toStringValue(R.Result.V);
  return R.console();
}

TEST(SemanticsTest, PrototypeShadowingAndDelete) {
  EXPECT_EQ(run("function T() {}\n"
                "T.prototype.v = 'proto';\n"
                "var t = new T();\n"
                "console.log(t.v);\n"
                "t.v = 'own';\n"
                "console.log(t.v);\n"
                "delete t.v;\n"
                "console.log(t.v);"),
            "proto\nown\nproto")
      << "delete exposes the prototype value again";
}

TEST(SemanticsTest, InOperatorWalksPrototypeChain) {
  EXPECT_EQ(run("function T() { this.own = 1; }\n"
                "T.prototype.inherited = 2;\n"
                "var t = new T();\n"
                "console.log('own' in t, 'inherited' in t, 'nope' in t);"),
            "true true false");
}

TEST(SemanticsTest, InstanceofAfterPrototypeReplacement) {
  EXPECT_EQ(run("function A() {}\n"
                "function B() {}\n"
                "var a = new A();\n"
                "console.log(a instanceof A, a instanceof B);\n"
                "B.prototype = A.prototype;\n"
                "console.log(a instanceof B);"),
            "true false\ntrue");
}

TEST(SemanticsTest, ConstructorPropertyPointsBack) {
  EXPECT_EQ(run("function T() {}\n"
                "var t = new T();\n"
                "console.log(t.constructor === T);"),
            "true");
}

TEST(SemanticsTest, ThisInPlainCallIsUndefined) {
  EXPECT_EQ(run("function f() { return typeof this; }\n"
                "console.log(f());"),
            "undefined");
}

TEST(SemanticsTest, MethodExtractionLosesReceiver) {
  EXPECT_EQ(run("var o = { x: 1, get: function() { return this ? 'has' : "
                "'lost'; } };\n"
                "var g = o.get;\n"
                "console.log(o.get(), g());"),
            "has lost");
}

TEST(SemanticsTest, ClosuresInLoopShareVar) {
  // The classic var-capture behavior (function scope).
  EXPECT_EQ(run("var fns = [];\n"
                "for (var i = 0; i < 3; i++) {\n"
                "  fns.push(function() { return i; });\n"
                "}\n"
                "console.log(fns[0](), fns[1](), fns[2]());"),
            "3 3 3");
}

TEST(SemanticsTest, TryFinallyReturnOverride) {
  EXPECT_EQ(run("function f() {\n"
                "  try { return 'try'; }\n"
                "  finally { return 'finally'; }\n"
                "}\n"
                "console.log(f());"),
            "finally");
}

TEST(SemanticsTest, CatchRethrowReachesOuter) {
  EXPECT_EQ(run("var log = '';\n"
                "try {\n"
                "  try { throw 'inner'; }\n"
                "  catch (e) { log += 'c1:' + e + ';'; throw 'outer'; }\n"
                "} catch (e) { log += 'c2:' + e; }\n"
                "console.log(log);"),
            "c1:inner;c2:outer");
}

TEST(SemanticsTest, ThrowNonObjectValues) {
  EXPECT_EQ(run("try { throw 42; } catch (e) { console.log(typeof e, e); }"),
            "number 42");
}

TEST(SemanticsTest, SwitchDefaultInMiddleFallsThrough) {
  EXPECT_EQ(run("function f(x) {\n"
                "  var out = '';\n"
                "  switch (x) {\n"
                "    default: out += 'd';\n"
                "    case 1: out += '1'; break;\n"
                "    case 2: out += '2';\n"
                "  }\n"
                "  return out;\n"
                "}\n"
                "console.log(f(9), f(1), f(2));"),
            "d1 1 2");
}

TEST(SemanticsTest, SequenceExpressionEvaluatesAll) {
  EXPECT_EQ(run("var log = '';\n"
                "function note(x) { log += x; return x; }\n"
                "var v = (note('a'), note('b'), note('c'));\n"
                "console.log(log, v);"),
            "abc c");
}

TEST(SemanticsTest, StringIndexingAndLength) {
  EXPECT_EQ(run("var s = 'abc';\n"
                "console.log(s[0], s[2], s[9], s.length);"),
            "a c undefined 3");
}

TEST(SemanticsTest, NumericStringKeysOnObjects) {
  EXPECT_EQ(run("var o = {};\n"
                "o[1] = 'one';\n"
                "console.log(o['1'], o[1]);"),
            "one one")
      << "numeric keys canonicalize to strings";
}

TEST(SemanticsTest, ArrayDeleteLeavesHole) {
  EXPECT_EQ(run("var a = [1, 2, 3];\n"
                "delete a[1];\n"
                "console.log(a.length, a[1]);"),
            "3 undefined");
}

TEST(SemanticsTest, ArrayLengthTruncation) {
  EXPECT_EQ(run("var a = [1, 2, 3, 4];\n"
                "a.length = 2;\n"
                "console.log(a.join(','), a.length);"),
            "1,2 2");
}

TEST(SemanticsTest, ForInSkipsProtoProperties) {
  // MiniJS deviation (documented): for-in enumerates own properties only.
  EXPECT_EQ(run("function T() { this.own = 1; }\n"
                "T.prototype.inherited = 2;\n"
                "var keys = '';\n"
                "var t = new T();\n"
                "for (var k in t) keys += k;\n"
                "console.log(keys);"),
            "own");
}

TEST(SemanticsTest, ModuleThisIsExports) {
  Runner R("this.viaThis = 'works';\n"
           "console.log(exports.viaThis, this === exports, this === "
           "module.exports);");
  EXPECT_EQ(R.console(), "works true true");
}

TEST(SemanticsTest, ExportsRebindDoesNotChangeModuleExports) {
  Runner R1("exports = { hijacked: true };");
  // What require() sees is module.exports, not the rebound local.
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("lib/index.js", "exports = { hijacked: true };\n"
                             "exports.foo = 1;");
  Fs.addFile("app/main.js", "var lib = require('lib');\n"
                            "console.log(lib.foo === undefined, lib.hijacked "
                            "=== undefined);");
  ModuleLoader Loader(Ctx, Fs, Diags);
  Interpreter I(Loader);
  I.loadModule("app/main.js");
  ASSERT_EQ(I.consoleOutput().size(), 1u);
  EXPECT_EQ(I.consoleOutput()[0], "true true");
}

TEST(SemanticsTest, CompoundAssignOnMembers) {
  EXPECT_EQ(run("var o = { n: 10, s: 'a' };\n"
                "o.n += 5;\n"
                "o.s += 'b';\n"
                "var k = 'n';\n"
                "o[k] += 1;\n"
                "console.log(o.n, o.s);"),
            "16 ab");
}

TEST(SemanticsTest, UpdateOnMemberExpressions) {
  EXPECT_EQ(run("var o = { n: 1 };\n"
                "var a = [5];\n"
                "console.log(o.n++, o.n, ++a[0], a[0]);"),
            "1 2 6 6");
}

TEST(SemanticsTest, NestedEval) {
  EXPECT_EQ(run("var x = 1;\n"
                "eval(\"eval('x = x + 41;');\");\n"
                "console.log(x);"),
            "42");
}

TEST(SemanticsTest, VoidTypeofDeleteOperators) {
  EXPECT_EQ(run("console.log(void 0, typeof notDeclaredAnywhere, delete "
                "alsoNotDeclared);"),
            "undefined undefined true");
}

TEST(SemanticsTest, BitwiseOperators) {
  EXPECT_EQ(run("console.log(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 4, 256 >> 4);"),
            "1 7 6 -6 16 16");
}

TEST(SemanticsTest, NaNPropagationAndComparisons) {
  EXPECT_EQ(run("var n = 0 / 0;\n"
                "console.log(n === n, n < 1, n > 1, isNaN(n), "
                "isNaN('text'));"),
            "false false false true true");
}

TEST(SemanticsTest, StringNumberCoercionInComparisons) {
  EXPECT_EQ(run("console.log('10' < '9', 10 < 9, '10' < 9, 10 == '10');"),
            "true false false true")
      << "string-string compares lexicographically; mixed compares numerically";
}

TEST(SemanticsTest, HasOwnPropertyVsIn) {
  EXPECT_EQ(run("function T() { this.own = 1; }\n"
                "T.prototype.proto = 2;\n"
                "var t = new T();\n"
                "console.log(t.hasOwnProperty('own'), "
                "t.hasOwnProperty('proto'), 'proto' in t);"),
            "true false true");
}

TEST(SemanticsTest, ArgumentsReflectsCallNotSignature) {
  EXPECT_EQ(run("function f(a) { return arguments.length; }\n"
                "console.log(f(), f(1), f(1, 2, 3));"),
            "0 1 3");
}

TEST(SemanticsTest, RecursionThroughSelfBindingAfterReassignment) {
  // The named-function-expression binding is immune to outer reassignment.
  EXPECT_EQ(run("var f = function rec(n) {\n"
                "  return n === 0 ? 'done' : rec(n - 1);\n"
                "};\n"
                "var g = f;\n"
                "f = null;\n"
                "console.log(g(3));"),
            "done");
}

TEST(SemanticsTest, GuardedClosureNeverCreatedUntilTaken) {
  EXPECT_EQ(run("function maybe(mode) {\n"
                "  if (mode === 'special') {\n"
                "    var inner = function inner() { return 'made'; };\n"
                "    return inner();\n"
                "  }\n"
                "  return 'skipped';\n"
                "}\n"
                "console.log(maybe('x'), maybe('special'));"),
            "skipped made");
}

TEST(SemanticsTest, ObjectToStringInConcatenation) {
  EXPECT_EQ(run("console.log('' + {}, '' + [1, 2], '' + [null], '' + "
                "function named() {});"),
            "[object Object] 1,2  function named() { [code] }");
}

//===----------------------------------------------------------------------===//
// Inline-cache invalidation: the loops below execute one member-access site
// repeatedly so its cache gets warm, then change the world mid-loop. The
// cached fast path must notice every time.
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, WarmReadSiteSeesShadowingMidLoop) {
  EXPECT_EQ(run("function T() {}\n"
                "T.prototype.v = 'proto';\n"
                "var t = new T();\n"
                "var out = '';\n"
                "for (var i = 0; i < 5; i = i + 1) {\n"
                "  out = out + t.v + ',';\n"
                "  if (i === 2) { t.v = 'own'; }\n"
                "}\n"
                "console.log(out);"),
            "proto,proto,proto,own,own,")
      << "adding an own slot transitions the shape, killing the proto hit";
}

TEST(SemanticsTest, WarmReadSiteSeesAccessorOverData) {
  EXPECT_EQ(run("var o = { x: 1 };\n"
                "var out = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  out = out + o.x + ',';\n"
                "  if (i === 1) {\n"
                "    Object.defineProperty(o, 'x', {\n"
                "      get: function () { return 42; }\n"
                "    });\n"
                "  }\n"
                "}\n"
                "console.log(out);"),
            "1,1,42,42,")
      << "accessor installation keeps the shape; the cached slot must "
         "re-check isAccessor";
}

TEST(SemanticsTest, WarmWriteSiteSeesProtoSetterMidLoop) {
  EXPECT_EQ(run("function T() {}\n"
                "T.prototype = {};\n"
                "var logged = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  var o = new T();\n"
                "  o.p = i;\n"
                "  if (i === 1) {\n"
                "    Object.defineProperty(T.prototype, 'p', {\n"
                "      set: function (v) { logged = logged + v; }\n"
                "    });\n"
                "  }\n"
                "}\n"
                "console.log(logged);"),
            "23")
      << "a setter appearing on the chain must stop the cached add "
         "transition";
}

TEST(SemanticsTest, WarmReadSiteSeesPrototypeSurgery) {
  EXPECT_EQ(run("var protoA = { tag: 'A' };\n"
                "var protoB = { tag: 'B' };\n"
                "var o = {};\n"
                "Object.setPrototypeOf(o, protoA);\n"
                "var out = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  out = out + o.tag;\n"
                "  if (i === 1) { Object.setPrototypeOf(o, protoB); }\n"
                "}\n"
                "console.log(out);"),
            "AABB")
      << "replacing the prototype changes the chain identity, not the "
         "receiver shape";
}

TEST(SemanticsTest, WarmSiteSurvivesDictionaryConversion) {
  EXPECT_EQ(run("var o = { a: 1, b: 2, c: 3 };\n"
                "var out = '';\n"
                "for (var i = 0; i < 4; i = i + 1) {\n"
                "  out = out + o.a;\n"
                "  if (i === 1) { delete o.b; o.a = 9; }\n"
                "}\n"
                "console.log(out + '|' + Object.keys(o).join(','));"),
            "1199|a,c")
      << "deletion drops the object off shapes; reads must keep working";
}

TEST(SemanticsTest, DeleteThenReaddKeepsDeterministicOrder) {
  EXPECT_EQ(run("var o = { a: 1, b: 2, c: 3 };\n"
                "delete o.b;\n"
                "o.b = 4;\n"
                "o.d = 5;\n"
                "var ks = '';\n"
                "for (var k in o) { ks = ks + k; }\n"
                "console.log(Object.keys(o).join(','), ks);"),
            "a,c,b,d acbd")
      << "re-added properties append; for-in and Object.keys agree";
}

} // namespace
