//===- RuntimeTest.cpp - Unit tests for values, objects, environments --------===//

#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace jsai;

namespace {

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::undefined().isUndefined());
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_TRUE(Value::undefined().isNullish());
  EXPECT_TRUE(Value::null().isNullish());
  EXPECT_FALSE(Value::number(0).isNullish());
  EXPECT_EQ(Value::boolean(true).asBoolean(), true);
  EXPECT_EQ(Value::number(3.5).asNumber(), 3.5);
  EXPECT_EQ(Value::str("hi").asString(), "hi");
}

TEST(ValueTest, ToBoolean) {
  EXPECT_FALSE(Value::undefined().toBoolean());
  EXPECT_FALSE(Value::null().toBoolean());
  EXPECT_FALSE(Value::number(0).toBoolean());
  EXPECT_FALSE(Value::number(std::nan("")).toBoolean());
  EXPECT_FALSE(Value::str("").toBoolean());
  EXPECT_TRUE(Value::number(-1).toBoolean());
  EXPECT_TRUE(Value::str("0").toBoolean());
}

TEST(ValueTest, StrictEquals) {
  EXPECT_TRUE(Value::strictEquals(Value::number(1), Value::number(1)));
  EXPECT_FALSE(Value::strictEquals(Value::number(std::nan("")),
                                   Value::number(std::nan(""))))
      << "NaN !== NaN";
  EXPECT_TRUE(Value::strictEquals(Value::str("a"), Value::str("a")));
  EXPECT_FALSE(Value::strictEquals(Value::str("1"), Value::number(1)));
  EXPECT_TRUE(Value::strictEquals(Value::null(), Value::null()));
  EXPECT_FALSE(Value::strictEquals(Value::null(), Value::undefined()));
  Heap H;
  Object *A = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  Object *B = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_TRUE(Value::strictEquals(Value::object(A), Value::object(A)));
  EXPECT_FALSE(Value::strictEquals(Value::object(A), Value::object(B)));
}

TEST(ValueTest, TypeOf) {
  Heap H;
  EXPECT_STREQ(Value::undefined().typeOf(), "undefined");
  EXPECT_STREQ(Value::null().typeOf(), "object");
  EXPECT_STREQ(Value::boolean(false).typeOf(), "boolean");
  EXPECT_STREQ(Value::number(1).typeOf(), "number");
  EXPECT_STREQ(Value::str("").typeOf(), "string");
  Object *Plain = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_STREQ(Value::object(Plain).typeOf(), "object");
  Object *Fn = H.newNative("f", nullptr);
  EXPECT_STREQ(Value::object(Fn).typeOf(), "function");
}

//===----------------------------------------------------------------------===//
// Object
//===----------------------------------------------------------------------===//

TEST(ObjectTest, InsertionOrderPreserved) {
  Heap H;
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  O->setOwn(3, Value::number(1));
  O->setOwn(1, Value::number(2));
  O->setOwn(2, Value::number(3));
  std::vector<Symbol> Want = {3, 1, 2};
  EXPECT_EQ(O->ownKeys(), Want);
  // Overwrite keeps the original position.
  O->setOwn(1, Value::number(9));
  EXPECT_EQ(O->ownKeys(), Want);
  EXPECT_EQ(O->getOwn(1)->asNumber(), 9);
}

TEST(ObjectTest, DeleteRemovesFromOrder) {
  Heap H;
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  O->setOwn(1, Value::number(1));
  O->setOwn(2, Value::number(2));
  EXPECT_TRUE(O->deleteOwn(1));
  EXPECT_FALSE(O->deleteOwn(1));
  std::vector<Symbol> Want = {2};
  EXPECT_EQ(O->ownKeys(), Want);
  // Re-insertion appends at the end.
  O->setOwn(1, Value::number(1));
  std::vector<Symbol> Want2 = {2, 1};
  EXPECT_EQ(O->ownKeys(), Want2);
}

TEST(ObjectTest, PrototypeChainLookup) {
  Heap H;
  Object *Proto = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid(), Proto);
  Proto->setOwn(7, Value::str("inherited"));
  EXPECT_FALSE(O->getOwn(7).has_value());
  ASSERT_TRUE(O->get(7).has_value());
  EXPECT_EQ(O->get(7)->asString(), "inherited");
  EXPECT_TRUE(O->has(7));
  EXPECT_FALSE(O->hasOwn(7));
  // Shadowing.
  O->setOwn(7, Value::str("own"));
  EXPECT_EQ(O->get(7)->asString(), "own");
}

TEST(ObjectTest, CallablePayloads) {
  Heap H;
  Object *Plain = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_FALSE(Plain->isCallable());
  Object *Native = H.newNative("n", nullptr);
  EXPECT_TRUE(Native->isCallable());
  EXPECT_EQ(Native->nativeName(), "n");
  EXPECT_FALSE(Native->isProxy());
  Object *Proxy = H.newObject(ObjectClass::Proxy, SourceLoc::invalid());
  EXPECT_TRUE(Proxy->isProxy());
}

TEST(ObjectTest, BirthLocAndPrototypeFlag) {
  Heap H;
  SourceLoc Loc(2, 10, 4);
  Object *O = H.newObject(ObjectClass::Plain, Loc);
  EXPECT_EQ(O->birthLoc(), Loc);
  EXPECT_FALSE(O->isFunctionPrototype());
  O->setFunctionPrototype(true);
  EXPECT_TRUE(O->isFunctionPrototype());
  O->clearBirthLoc();
  EXPECT_FALSE(O->birthLoc().isValid());
}

//===----------------------------------------------------------------------===//
// Environment
//===----------------------------------------------------------------------===//

TEST(EnvironmentTest, LookupWalksChain) {
  Heap H;
  Environment *Outer = H.newEnvironment(nullptr);
  Environment *Inner = H.newEnvironment(Outer);
  Outer->define(1, Value::number(10));
  ASSERT_NE(Inner->lookup(1), nullptr);
  EXPECT_EQ(Inner->lookup(1)->asNumber(), 10);
  EXPECT_EQ(Inner->lookup(99), nullptr);
}

TEST(EnvironmentTest, ShadowingAndAssignment) {
  Heap H;
  Environment *Outer = H.newEnvironment(nullptr);
  Environment *Inner = H.newEnvironment(Outer);
  Outer->define(1, Value::number(10));
  Inner->define(1, Value::number(20));
  EXPECT_EQ(Inner->lookup(1)->asNumber(), 20);
  EXPECT_EQ(Outer->lookup(1)->asNumber(), 10);
  // Assignment hits the nearest binding.
  EXPECT_TRUE(Inner->assign(1, Value::number(21)));
  EXPECT_EQ(Inner->lookup(1)->asNumber(), 21);
  EXPECT_EQ(Outer->lookup(1)->asNumber(), 10);
  // Assignment through to the outer frame.
  Outer->define(2, Value::number(5));
  EXPECT_TRUE(Inner->assign(2, Value::number(6)));
  EXPECT_EQ(Outer->lookup(2)->asNumber(), 6);
  // Unbound assignment reports false.
  EXPECT_FALSE(Inner->assign(42, Value::number(0)));
}

//===----------------------------------------------------------------------===//
// Heap
//===----------------------------------------------------------------------===//

TEST(HeapTest, AllocationKindsAndCounting) {
  Heap H;
  EXPECT_EQ(H.numObjects(), 0u);
  Object *Arr = H.newArray(SourceLoc::invalid(),
                           {Value::number(1), Value::number(2)});
  EXPECT_EQ(Arr->objectClass(), ObjectClass::Array);
  EXPECT_EQ(Arr->elements().size(), 2u);
  H.newNative("x", nullptr);
  EXPECT_EQ(H.numObjects(), 2u);
}

} // namespace
