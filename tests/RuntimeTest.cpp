//===- RuntimeTest.cpp - Unit tests for values, objects, environments --------===//

#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace jsai;

namespace {

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::undefined().isUndefined());
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_TRUE(Value::undefined().isNullish());
  EXPECT_TRUE(Value::null().isNullish());
  EXPECT_FALSE(Value::number(0).isNullish());
  EXPECT_EQ(Value::boolean(true).asBoolean(), true);
  EXPECT_EQ(Value::number(3.5).asNumber(), 3.5);
  EXPECT_EQ(Value::str("hi").asString(), "hi");
}

TEST(ValueTest, ToBoolean) {
  EXPECT_FALSE(Value::undefined().toBoolean());
  EXPECT_FALSE(Value::null().toBoolean());
  EXPECT_FALSE(Value::number(0).toBoolean());
  EXPECT_FALSE(Value::number(std::nan("")).toBoolean());
  EXPECT_FALSE(Value::str("").toBoolean());
  EXPECT_TRUE(Value::number(-1).toBoolean());
  EXPECT_TRUE(Value::str("0").toBoolean());
}

TEST(ValueTest, StrictEquals) {
  EXPECT_TRUE(Value::strictEquals(Value::number(1), Value::number(1)));
  EXPECT_FALSE(Value::strictEquals(Value::number(std::nan("")),
                                   Value::number(std::nan(""))))
      << "NaN !== NaN";
  EXPECT_TRUE(Value::strictEquals(Value::str("a"), Value::str("a")));
  EXPECT_FALSE(Value::strictEquals(Value::str("1"), Value::number(1)));
  EXPECT_TRUE(Value::strictEquals(Value::null(), Value::null()));
  EXPECT_FALSE(Value::strictEquals(Value::null(), Value::undefined()));
  Heap H;
  Object *A = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  Object *B = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_TRUE(Value::strictEquals(Value::object(A), Value::object(A)));
  EXPECT_FALSE(Value::strictEquals(Value::object(A), Value::object(B)));
}

TEST(ValueTest, TypeOf) {
  Heap H;
  EXPECT_STREQ(Value::undefined().typeOf(), "undefined");
  EXPECT_STREQ(Value::null().typeOf(), "object");
  EXPECT_STREQ(Value::boolean(false).typeOf(), "boolean");
  EXPECT_STREQ(Value::number(1).typeOf(), "number");
  EXPECT_STREQ(Value::str("").typeOf(), "string");
  Object *Plain = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_STREQ(Value::object(Plain).typeOf(), "object");
  Object *Fn = H.newNative("f", nullptr);
  EXPECT_STREQ(Value::object(Fn).typeOf(), "function");
}

//===----------------------------------------------------------------------===//
// Object
//===----------------------------------------------------------------------===//

TEST(ObjectTest, InsertionOrderPreserved) {
  Heap H;
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  O->setOwn(3, Value::number(1));
  O->setOwn(1, Value::number(2));
  O->setOwn(2, Value::number(3));
  std::vector<Symbol> Want = {3, 1, 2};
  EXPECT_EQ(O->ownKeys(), Want);
  // Overwrite keeps the original position.
  O->setOwn(1, Value::number(9));
  EXPECT_EQ(O->ownKeys(), Want);
  EXPECT_EQ(O->getOwn(1)->asNumber(), 9);
}

TEST(ObjectTest, DeleteRemovesFromOrder) {
  Heap H;
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  O->setOwn(1, Value::number(1));
  O->setOwn(2, Value::number(2));
  EXPECT_TRUE(O->deleteOwn(1));
  EXPECT_FALSE(O->deleteOwn(1));
  std::vector<Symbol> Want = {2};
  EXPECT_EQ(O->ownKeys(), Want);
  // Re-insertion appends at the end.
  O->setOwn(1, Value::number(1));
  std::vector<Symbol> Want2 = {2, 1};
  EXPECT_EQ(O->ownKeys(), Want2);
}

TEST(ObjectTest, PrototypeChainLookup) {
  Heap H;
  Object *Proto = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid(), Proto);
  Proto->setOwn(7, Value::str("inherited"));
  EXPECT_FALSE(O->getOwn(7).has_value());
  ASSERT_TRUE(O->get(7).has_value());
  EXPECT_EQ(O->get(7)->asString(), "inherited");
  EXPECT_TRUE(O->has(7));
  EXPECT_FALSE(O->hasOwn(7));
  // Shadowing.
  O->setOwn(7, Value::str("own"));
  EXPECT_EQ(O->get(7)->asString(), "own");
}

TEST(ObjectTest, CallablePayloads) {
  Heap H;
  Object *Plain = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_FALSE(Plain->isCallable());
  Object *Native = H.newNative("n", nullptr);
  EXPECT_TRUE(Native->isCallable());
  EXPECT_EQ(Native->nativeName(), "n");
  EXPECT_FALSE(Native->isProxy());
  Object *Proxy = H.newObject(ObjectClass::Proxy, SourceLoc::invalid());
  EXPECT_TRUE(Proxy->isProxy());
}

TEST(ObjectTest, ShapesSharedAcrossSameInsertionOrder) {
  Heap H;
  Object *A = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  Object *B = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  EXPECT_EQ(A->shape(), B->shape()) << "both start at the root layout";
  A->setOwn(1, Value::number(1));
  A->setOwn(2, Value::number(2));
  B->setOwn(1, Value::number(10));
  B->setOwn(2, Value::number(20));
  EXPECT_EQ(A->shape(), B->shape())
      << "same insertion order must share one shape";
  // A different insertion order is a different layout.
  Object *C = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  C->setOwn(2, Value::number(2));
  C->setOwn(1, Value::number(1));
  EXPECT_NE(C->shape(), A->shape());
  // Values stayed per-object even though the layout is shared.
  EXPECT_EQ(A->getOwn(1)->asNumber(), 1);
  EXPECT_EQ(B->getOwn(1)->asNumber(), 10);
  // The tree materialized each layout once: {}, {1}, {1,2}, {2}, {2,1}.
  EXPECT_EQ(H.shapes().numShapes(), 4u);
  EXPECT_EQ(H.shapes().stats().NumShapesCreated, 4u);
  EXPECT_GE(H.shapes().stats().NumTransitions, 6u);
}

TEST(ObjectTest, AccessorOverDataKeepsShape) {
  Heap H;
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  Object *Getter = H.newNative("get", nullptr);
  O->setOwn(5, Value::number(1));
  Shape *S = O->shape();
  O->setAccessor(5, Getter, nullptr);
  EXPECT_EQ(O->shape(), S)
      << "converting a data slot to an accessor is invisible to the shape "
         "(inline caches re-check isAccessor at the slot instead)";
  const PropertySlot *Slot = O->getOwnSlot(5);
  ASSERT_NE(Slot, nullptr);
  EXPECT_TRUE(Slot->isAccessor());
  EXPECT_EQ(Slot->Getter, Getter);
  EXPECT_FALSE(O->getOwn(5).has_value())
      << "getOwn sees data properties only";
  // Merging in a setter keeps the getter.
  Object *Setter = H.newNative("set", nullptr);
  O->setAccessor(5, nullptr, Setter);
  Slot = O->getOwnSlot(5);
  EXPECT_EQ(Slot->Getter, Getter);
  EXPECT_EQ(Slot->Setter, Setter);
}

TEST(ObjectTest, DeleteFallsBackToDictionaryMode) {
  Heap H;
  Object *O = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  O->setOwn(1, Value::number(1));
  O->setOwn(2, Value::number(2));
  O->setOwn(3, Value::number(3));
  EXPECT_FALSE(O->inDictionaryMode());
  ASSERT_TRUE(O->deleteOwn(2));
  EXPECT_TRUE(O->inDictionaryMode());
  EXPECT_EQ(O->shape(), nullptr) << "inline caches key on a non-null shape";
  EXPECT_EQ(H.shapes().stats().NumDictionaryConversions, 1u);
  // Surviving properties keep their values; re-adding appends at the end.
  EXPECT_EQ(O->getOwn(1)->asNumber(), 1);
  EXPECT_EQ(O->getOwn(3)->asNumber(), 3);
  O->setOwn(2, Value::number(22));
  std::vector<Symbol> Want = {1, 3, 2};
  EXPECT_EQ(O->ownKeys(), Want);
  EXPECT_EQ(O->getOwn(2)->asNumber(), 22);
  // Dictionary mode is permanent: further adds never re-shape.
  O->setOwn(4, Value::number(4));
  EXPECT_TRUE(O->inDictionaryMode());
  // A second delete does not count another conversion.
  ASSERT_TRUE(O->deleteOwn(4));
  EXPECT_EQ(H.shapes().stats().NumDictionaryConversions, 1u);
}

TEST(ObjectTest, BirthLocAndPrototypeFlag) {
  Heap H;
  SourceLoc Loc(2, 10, 4);
  Object *O = H.newObject(ObjectClass::Plain, Loc);
  EXPECT_EQ(O->birthLoc(), Loc);
  EXPECT_FALSE(O->isFunctionPrototype());
  O->setFunctionPrototype(true);
  EXPECT_TRUE(O->isFunctionPrototype());
  O->clearBirthLoc();
  EXPECT_FALSE(O->birthLoc().isValid());
}

//===----------------------------------------------------------------------===//
// Environment
//===----------------------------------------------------------------------===//

TEST(EnvironmentTest, LookupWalksChain) {
  Heap H;
  Environment *Outer = H.newEnvironment(nullptr);
  Environment *Inner = H.newEnvironment(Outer);
  Outer->define(1, Value::number(10));
  ASSERT_NE(Inner->lookup(1), nullptr);
  EXPECT_EQ(Inner->lookup(1)->asNumber(), 10);
  EXPECT_EQ(Inner->lookup(99), nullptr);
}

TEST(EnvironmentTest, ShadowingAndAssignment) {
  Heap H;
  Environment *Outer = H.newEnvironment(nullptr);
  Environment *Inner = H.newEnvironment(Outer);
  Outer->define(1, Value::number(10));
  Inner->define(1, Value::number(20));
  EXPECT_EQ(Inner->lookup(1)->asNumber(), 20);
  EXPECT_EQ(Outer->lookup(1)->asNumber(), 10);
  // Assignment hits the nearest binding.
  EXPECT_TRUE(Inner->assign(1, Value::number(21)));
  EXPECT_EQ(Inner->lookup(1)->asNumber(), 21);
  EXPECT_EQ(Outer->lookup(1)->asNumber(), 10);
  // Assignment through to the outer frame.
  Outer->define(2, Value::number(5));
  EXPECT_TRUE(Inner->assign(2, Value::number(6)));
  EXPECT_EQ(Outer->lookup(2)->asNumber(), 6);
  // Unbound assignment reports false.
  EXPECT_FALSE(Inner->assign(42, Value::number(0)));
}

//===----------------------------------------------------------------------===//
// Heap
//===----------------------------------------------------------------------===//

TEST(HeapTest, AllocationKindsAndCounting) {
  Heap H;
  EXPECT_EQ(H.numObjects(), 0u);
  Object *Arr = H.newArray(SourceLoc::invalid(),
                           {Value::number(1), Value::number(2)});
  EXPECT_EQ(Arr->objectClass(), ObjectClass::Array);
  EXPECT_EQ(Arr->elements().size(), 2u);
  H.newNative("x", nullptr);
  EXPECT_EQ(H.numObjects(), 2u);
}

} // namespace
