//===- ApproxTest.cpp - Tests for approximate interpretation ----------------===//

#include "approx/ApproxInterpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

/// Builds a project, runs approximate interpretation seeded with \p Roots,
/// and exposes the hints.
struct ApproxRunner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<ApproxInterpreter> Approx;
  HintSet Hints;

  ApproxRunner(std::initializer_list<std::pair<std::string, std::string>> Files,
               std::vector<std::string> Roots = {"app/main.js"},
               ApproxOptions Opts = ApproxOptions()) {
    for (const auto &[Path, Source] : Files)
      Fs.addFile(Path, Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Approx = std::make_unique<ApproxInterpreter>(*Loader, Opts);
    Hints = Approx->run(Roots);
  }

  /// True when some write hint stores property \p Prop with a value
  /// allocated in \p ValFile.
  bool hasWriteHint(const std::string &Prop, const std::string &ValFile) {
    FileId F = Ctx.files().lookup(ValFile);
    for (const WriteHint &W : Hints.writeHints())
      if (W.Prop == Prop && W.Val.Loc.File == F)
        return true;
    return false;
  }
};

TEST(ApproxTest, DynamicWriteProducesHint) {
  ApproxRunner R({{"app/main.js",
                   "var target = {};\n"
                   "var fn = function handler() {};\n"
                   "var key = 'h' + 'andle';\n"
                   "target[key] = fn;\n"}});
  ASSERT_EQ(R.Hints.writeHints().size(), 1u);
  const WriteHint &W = *R.Hints.writeHints().begin();
  EXPECT_EQ(W.Prop, "handle");
  EXPECT_EQ(W.Base.Loc.Line, 1u) << "base allocated at the object literal";
  EXPECT_EQ(W.Val.Loc.Line, 2u) << "value allocated at the function expr";
  EXPECT_FALSE(W.Base.IsPrototype);
}

TEST(ApproxTest, DynamicReadProducesHint) {
  ApproxRunner R({{"app/main.js",
                   "var table = { a: function fa() {}, b: function fb() {} "
                   "};\n"
                   "var k = 'a';\n"
                   "var got = table[k];\n"}});
  ASSERT_EQ(R.Hints.readHints().size(), 1u);
  const auto &[Loc, Refs] = *R.Hints.readHints().begin();
  EXPECT_EQ(Loc.Line, 3u);
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_EQ(Refs.begin()->Loc.Line, 1u);
}

TEST(ApproxTest, PrimitiveValuesProduceNoWriteHints) {
  ApproxRunner R({{"app/main.js",
                   "var o = {};\n"
                   "var k = 'n';\n"
                   "o[k] = 42;\n"
                   "o[k + '2'] = 'str';\n"}});
  EXPECT_TRUE(R.Hints.writeHints().empty())
      << "only objects have allocation sites";
  // Non-relational name data is still collected.
  EXPECT_EQ(R.Hints.writeNames().size(), 2u);
}

TEST(ApproxTest, UncalledFunctionIsForceExecuted) {
  // `register` is never called by the module's top-level code; only forced
  // execution can reach the dynamic write inside it.
  ApproxRunner R({{"app/main.js",
                   "var registry = {};\n"
                   "function register(name) {\n"
                   "  registry['fixed'] = function added() {};\n"
                   "}\n"}});
  EXPECT_GE(R.Approx->stats().NumForcedExecutions, 1u);
  EXPECT_EQ(R.Hints.writeHints().size(), 1u);
  EXPECT_EQ(R.Hints.writeHints().begin()->Prop, "fixed");
}

TEST(ApproxTest, EachDefinitionExecutedAtMostOnce) {
  // makeHandler is called twice naturally, creating two closures of the
  // inner definition; the worklist must not force either again.
  ApproxRunner R({{"app/main.js",
                   "var count = { n: 0 };\n"
                   "function makeHandler(tag) {\n"
                   "  return function handler() { count.n = count.n + 1; };\n"
                   "}\n"
                   "var h1 = makeHandler('a');\n"
                   "var h2 = makeHandler('b');\n"}});
  const ApproxStats &S = R.Approx->stats();
  // makeHandler runs naturally; handler (one definition, two values) is
  // forced exactly once.
  EXPECT_EQ(S.NumForcedExecutions, 1u);
  EXPECT_EQ(S.NumFunctionsTotal, 2u);
  EXPECT_EQ(S.NumFunctionsVisited, 2u);
}

TEST(ApproxTest, ProxyParametersKeepExecutionGoing) {
  // reached() is only invoked behind property reads on an unknown argument;
  // the proxy semantics must carry execution into the dynamic write.
  ApproxRunner R({{"app/main.js",
                   "var sink = {};\n"
                   "function init(options) {\n"
                   "  var name = options.section;\n"
                   "  if (options.enabled) {\n"
                   "    sink['plugin'] = function plug() {};\n"
                   "  }\n"
                   "}\n"}});
  ASSERT_EQ(R.Hints.writeHints().size(), 1u);
  EXPECT_EQ(R.Hints.writeHints().begin()->Prop, "plugin");
}

TEST(ApproxTest, CallsOnProxyAreNoOps) {
  ApproxRunner R({{"app/main.js",
                   "function f(cb) {\n"
                   "  var result = cb(1, 2);\n"
                   "  var obj = {};\n"
                   "  obj['r'] = result;\n"
                   "}\n"}});
  // cb is p*, its result is p*, so no write hint for 'r' (no alloc site),
  // but the run completes without errors.
  EXPECT_TRUE(R.Hints.writeHints().empty());
  EXPECT_EQ(R.Approx->stats().NumForcedExecutions, 1u);
}

TEST(ApproxTest, InferredReceiverThisMap) {
  // methodify is assigned to o.method (static write), so forced execution
  // uses o as the receiver: this.slot refers to the real object and the
  // dynamic write inside produces a hint with o's allocation site.
  ApproxRunner R({{"app/main.js",
                   "var o = { table: {} };\n"
                   "o.method = function() {\n"
                   "  var k = 'dyn';\n"
                   "  this.table[k] = function inner() {};\n"
                   "};\n"}});
  ASSERT_GE(R.Hints.writeHints().size(), 1u);
  bool Found = false;
  for (const WriteHint &W : R.Hints.writeHints())
    if (W.Prop == "dyn" && W.Base.Loc.Line == 1)
      Found = true;
  EXPECT_TRUE(Found) << R.Hints.toText(R.Ctx.files());
}

TEST(ApproxTest, ReceiverProxyDelegatesAbsentProperties) {
  // this.unknownProp is absent on the inferred receiver; it must become p*
  // rather than undefined so execution continues.
  ApproxRunner R({{"app/main.js",
                   "var o = {};\n"
                   "o.m = function() {\n"
                   "  var cfg = this.missing;\n"
                   "  cfg.use();\n"      // would throw on undefined
                   "  var t = {};\n"
                   "  t['late'] = function lateFn() {};\n"
                   "};\n"}});
  bool Found = false;
  for (const WriteHint &W : R.Hints.writeHints())
    if (W.Prop == "late")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(ApproxTest, BudgetAbortsLongLoops) {
  ApproxOptions Opts;
  Opts.MaxLoopIterations = 100;
  ApproxRunner R({{"app/main.js",
                   "function spin(n) {\n"
                   "  while (n) { n = n; }\n" // n is p*: truthy forever
                   "  var o = {};\n"
                   "  o['never'] = function nope() {};\n"
                   "}\n"}},
                 {"app/main.js"}, Opts);
  EXPECT_GE(R.Approx->stats().NumAborts, 1u);
  EXPECT_TRUE(R.Hints.writeHints().empty());
}

TEST(ApproxTest, AbortInOneFunctionDoesNotStopOthers) {
  ApproxOptions Opts;
  Opts.MaxLoopIterations = 100;
  ApproxRunner R({{"app/main.js",
                   "function bad(n) { while (n) { n = n; } }\n"
                   "function good() {\n"
                   "  var o = {};\n"
                   "  o['ok'] = function fine() {};\n"
                   "}\n"}},
                 {"app/main.js"}, Opts);
  EXPECT_GE(R.Approx->stats().NumAborts, 1u);
  ASSERT_EQ(R.Hints.writeHints().size(), 1u);
  EXPECT_EQ(R.Hints.writeHints().begin()->Prop, "ok");
}

TEST(ApproxTest, ObjectDefinePropertyProducesWriteHints) {
  ApproxRunner R({{"app/main.js",
                   "var dst = {};\n"
                   "Object.defineProperty(dst, 'm', { value: function mv() {} "
                   "});\n"}});
  ASSERT_EQ(R.Hints.writeHints().size(), 1u);
  EXPECT_EQ(R.Hints.writeHints().begin()->Prop, "m");
}

TEST(ApproxTest, ObjectAssignProducesWriteHints) {
  ApproxRunner R({{"app/main.js",
                   "var src = { a: function fa() {}, b: function fb() {} };\n"
                   "var dst = Object.assign({}, src);\n"}});
  EXPECT_EQ(R.Hints.writeHints().size(), 2u);
}

TEST(ApproxTest, EvalCodeStillProducesHints) {
  // Allocation-site recording is disabled inside eval, but writes of
  // statically-allocated objects still produce hints (Section 3).
  ApproxRunner R({{"app/main.js",
                   "var registry = {};\n"
                   "var handler = function h() {};\n"
                   "eval(\"registry['k'] = handler;\");\n"}});
  ASSERT_EQ(R.Hints.writeHints().size(), 1u);
  const WriteHint &W = *R.Hints.writeHints().begin();
  EXPECT_EQ(W.Prop, "k");
  EXPECT_EQ(W.Base.Loc.Line, 1u);
  EXPECT_EQ(W.Val.Loc.Line, 2u);
  EXPECT_EQ(R.Hints.evalHints().size(), 1u);
}

TEST(ApproxTest, EvalAllocationsHaveNoSites) {
  ApproxRunner R({{"app/main.js",
                   "var registry = {};\n"
                   "eval(\"registry['e'] = function evalFn() {};\");\n"}});
  // The value was allocated in eval code: no allocation site, no hint.
  EXPECT_TRUE(R.Hints.writeHints().empty());
  EXPECT_EQ(R.Hints.writeNames().count(SourceLoc()), 0u);
}

TEST(ApproxTest, ModuleHintsForDynamicRequire) {
  ApproxRunner R({{"app/main.js",
                   "var which = 'plug' + 'in-a';\n"
                   "var m = require(which);\n"},
                  {"plugin-a/index.js", "exports.tag = 'A';"}});
  ASSERT_EQ(R.Hints.moduleHints().size(), 1u);
  const auto &[Loc, Paths] = *R.Hints.moduleHints().begin();
  EXPECT_EQ(Loc.Line, 2u);
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(*Paths.begin(), "plugin-a/index.js");
}

TEST(ApproxTest, VisitedFractionIsSensible) {
  ApproxRunner R({{"app/main.js",
                   "function a() {}\n"
                   "function b() { a(); }\n"
                   "function c() {}\n"}});
  const ApproxStats &S = R.Approx->stats();
  EXPECT_EQ(S.NumFunctionsTotal, 3u);
  EXPECT_EQ(S.NumFunctionsVisited, 3u);
  EXPECT_DOUBLE_EQ(S.visitedFraction(), 1.0);
}

TEST(ApproxTest, DeterministicAcrossRuns) {
  auto Once = [] {
    ApproxRunner R({{"app/main.js",
                     "var reg = {};\n"
                     "['x', 'y', 'z'].forEach(function(k) {\n"
                     "  reg[k] = function entry() {};\n"
                     "});\n"}});
    return R.Hints.toText(R.Ctx.files());
  };
  EXPECT_EQ(Once(), Once());
}

TEST(ApproxTest, ForEachOverMethodsArrayLikeExpress) {
  // The application.js pattern from Figure 1(d).
  ApproxRunner R(
      {{"app/main.js", "require('application');"},
       {"application/index.js",
        "var methods = ['get', 'post', 'put'];\n"
        "var app = exports = module.exports = {};\n"
        "methods.forEach(function(method) {\n"
        "  app[method] = function(path) { return this; };\n"
        "});\n"
        "app.listen = function listen() { return null; };\n"}});
  // Dynamic writes: one hint per method name, each storing the same inner
  // function definition into the module's exports object.
  FileId AppFile = R.Ctx.files().lookup("application/index.js");
  int MethodHints = 0;
  for (const WriteHint &W : R.Hints.writeHints()) {
    if (W.Prop == "get" || W.Prop == "post" || W.Prop == "put") {
      ++MethodHints;
      EXPECT_EQ(W.Base.Loc.File, AppFile);
      // The base is the `{}` literal assigned to module.exports (the
      // paper's "object o1 created on line 35").
      EXPECT_EQ(W.Base.Loc.Line, 2u);
      EXPECT_EQ(W.Val.Loc.Line, 4u) << "value is the inner function";
    }
  }
  EXPECT_EQ(MethodHints, 3);
}

TEST(ApproxTest, MotivatingExampleFullHints) {
  // The full Figure-1 pipeline: mixin copies the dynamically-defined
  // methods onto the application function created in createApplication.
  ApproxRunner R(
      {
          {"app/main.js", "var express = require('express');\n"
                          "var app = express();\n"},
          {"express/index.js",
           "var mixin = require('merge-descriptors');\n"
           "var proto = require('./application');\n"
           "exports = module.exports = createApplication;\n"
           "function createApplication() {\n"
           "  var app = function(req, res, next) {\n"
           "    app.handle(req, res, next);\n"
           "  };\n"
           "  mixin(app, proto, false);\n"
           "  return app;\n"
           "}\n"},
          {"merge-descriptors/index.js",
           "module.exports = merge;\n"
           "function merge(dest, src, redefine) {\n"
           "  Object.getOwnPropertyNames(src).forEach(function "
           "forOwnPropertyName(name) {\n"
           "    var descriptor = Object.getOwnPropertyDescriptor(src, name);\n"
           "    Object.defineProperty(dest, name, descriptor);\n"
           "  });\n"
           "  return dest;\n"
           "}\n"},
          {"express/application.js",
           "var methods = require('methods');\n"
           "var app = exports = module.exports = {};\n"
           "methods.forEach(function(method) {\n"
           "  app[method] = function(path) { return this; };\n"
           "});\n"
           "app.listen = function listen() { return null; };\n"},
          {"methods/index.js", "module.exports = ['get', 'post', 'put'];"},
      });
  FileId ExpressFile = R.Ctx.files().lookup("express/index.js");

  // The paper's H_W: (l14, get, l38) etc. — here the app function inside
  // createApplication is at express/index.js line 5.
  bool FoundGetOnApp = false, FoundListenOnApp = false;
  for (const WriteHint &W : R.Hints.writeHints()) {
    if (W.Base.Loc.File == ExpressFile && W.Base.Loc.Line == 5) {
      if (W.Prop == "get")
        FoundGetOnApp = true;
      if (W.Prop == "listen")
        FoundListenOnApp = true;
    }
  }
  EXPECT_TRUE(FoundGetOnApp) << R.Hints.toText(R.Ctx.files());
  EXPECT_TRUE(FoundListenOnApp);
}

//===----------------------------------------------------------------------===//
// HintSet insertion dedup
//===----------------------------------------------------------------------===//

TEST(HintSetTest, InsertionsDeduplicate) {
  HintSet H;
  SourceLoc ReadLoc(FileId(0), 3, 1);
  AllocRef Target{SourceLoc(FileId(0), 9, 5), false};
  H.addReadHint(ReadLoc, Target);
  H.addReadHint(ReadLoc, Target);
  EXPECT_EQ(H.readHints().at(ReadLoc).size(), 1u);

  AllocRef Base{SourceLoc(FileId(1), 2, 1), false};
  AllocRef Val{SourceLoc(FileId(1), 4, 1), true};
  H.addWriteHint(Base, "p", Val);
  H.addWriteHint(Base, "p", Val);
  EXPECT_EQ(H.writeHints().size(), 1u);
  EXPECT_EQ(H.size(), 2u);

  SourceLoc EvalLoc(FileId(0), 7, 2);
  H.addEvalHint(EvalLoc, "var x = 1;");
  H.addEvalHint(EvalLoc, "var x = 1;");
  H.addEvalHint(EvalLoc, "var y = 2;"); // Different code: kept.
  EXPECT_EQ(H.evalHints().size(), 2u);
}

TEST(HintSetTest, MergeDeduplicatesEvalHints) {
  SourceLoc EvalLoc(FileId(0), 1, 1);
  HintSet A, B;
  A.addEvalHint(EvalLoc, "f()");
  B.addEvalHint(EvalLoc, "f()");
  B.addEvalHint(EvalLoc, "g()");
  A.merge(B);
  A.merge(B); // Merging twice must still not duplicate.
  EXPECT_EQ(A.evalHints().size(), 2u);
}

} // namespace
