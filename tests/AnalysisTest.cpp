//===- AnalysisTest.cpp - Tests for the static call-graph analysis ----------===//

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"
#include "callgraph/DynamicCallGraphRecorder.h"
#include "callgraph/Metrics.h"
#include "callgraph/VulnerabilityScan.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

/// Parses a project once; runs approximate interpretation and any number of
/// static analyses over the shared AST.
struct AnalysisRunner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  HintSet Hints;

  AnalysisRunner(
      std::initializer_list<std::pair<std::string, std::string>> Files) {
    for (const auto &[Path, Source] : Files)
      Fs.addFile(Path, Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Loader->parseAll();
    EXPECT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());
    ApproxInterpreter Approx(*Loader);
    std::vector<std::string> Roots = Fs.allPaths();
    // Main module first for determinism parity with the pipeline.
    Hints = Approx.run(Roots);
  }

  AnalysisResult analyze(AnalysisMode Mode) {
    AnalysisOptions Opts;
    Opts.Mode = Mode;
    StaticAnalysis SA(*Loader, Opts, &Hints);
    return SA.run();
  }

  /// True when the call graph has an edge from (SiteFile, SiteLine) to the
  /// function defined at (CalleeFile, CalleeLine).
  bool hasEdge(const CallGraph &CG, const std::string &SiteFile,
               uint32_t SiteLine, const std::string &CalleeFile,
               uint32_t CalleeLine) {
    FileId SF = Ctx.files().lookup(SiteFile);
    FileId CF = Ctx.files().lookup(CalleeFile);
    for (const auto &[Site, Callees] : CG.edges()) {
      if (Site.File != SF || Site.Line != SiteLine)
        continue;
      for (const SourceLoc &Callee : Callees)
        if (Callee.File == CF && Callee.Line == CalleeLine)
          return true;
    }
    return false;
  }

  /// Runs the concrete interpreter on \p Driver and records the dynamic CG.
  CallGraph dynamicCallGraph(const std::string &Driver = "app/main.js") {
    DynamicCallGraphRecorder Recorder;
    Interpreter I(*Loader, InterpOptions(), &Recorder);
    Completion C = I.loadModule(Driver);
    EXPECT_FALSE(C.isThrow()) << I.toStringValue(C.V);
    return Recorder.callGraph();
  }
};

//===----------------------------------------------------------------------===//
// Baseline resolution
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, DirectCall) {
  AnalysisRunner R({{"app/main.js", "function f() {}\n"
                                    "f();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "app/main.js", 1));
  EXPECT_EQ(A.NumCallEdges, 1u);
}

TEST(AnalysisTest, CallThroughVariableAndClosure) {
  AnalysisRunner R({{"app/main.js", "var g = function inner() {};\n"
                                    "function call(h) { h(); }\n"
                                    "call(g);"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "app/main.js", 1))
      << A.CG.toText(R.Ctx.files());
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 2));
}

TEST(AnalysisTest, MethodCallOnObjectLiteral) {
  AnalysisRunner R({{"app/main.js", "var o = { m: function () {} };\n"
                                    "o.m();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "app/main.js", 1));
}

TEST(AnalysisTest, PrototypeMethodThroughNew) {
  AnalysisRunner R({{"app/main.js", "function Dog() {}\n"
                                    "Dog.prototype.speak = function () {};\n"
                                    "var d = new Dog();\n"
                                    "d.speak();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 1))
      << "constructor edge";
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 4, "app/main.js", 2))
      << "prototype method edge\n" << A.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, ReturnValueFlow) {
  AnalysisRunner R({{"app/main.js", "function make() { return function made() "
                                    "{}; }\n"
                                    "var f = make();\n"
                                    "f();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 1));
}

TEST(AnalysisTest, ForEachCallbackEdgeAndElementFlow) {
  AnalysisRunner R({{"app/main.js",
                     "var fns = [function a() {}, function b() {}];\n"
                     "fns.forEach(function cb(f) { f(); });"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  // forEach invokes cb; cb's parameter receives the array elements.
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "app/main.js", 2))
      << "callback edge at the forEach call site";
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "app/main.js", 1))
      << "elements flow into the callback parameter\n"
      << A.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, ApplyAndCall) {
  AnalysisRunner R({{"app/main.js", "function f() { this.g(); }\n"
                                    "var ctx = { g: function () {} };\n"
                                    "f.apply(ctx, []);\n"
                                    "f.call(ctx);"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 1));
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 4, "app/main.js", 1));
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 1, "app/main.js", 2))
      << "receiver flows through apply into this";
}

TEST(AnalysisTest, RequireExportsFlow) {
  AnalysisRunner R({{"app/main.js", "var lib = require('lib');\n"
                                    "lib.go();"},
                    {"lib/index.js", "exports.go = function () {};"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "lib/index.js", 1));
}

TEST(AnalysisTest, ModuleExportsReassignment) {
  AnalysisRunner R({{"app/main.js", "var make = require('factory');\n"
                                    "make();"},
                    {"factory/index.js",
                     "module.exports = function factory() {};"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 2, "factory/index.js", 1));
}

TEST(AnalysisTest, ObjectAssignCopiesStaticProps) {
  AnalysisRunner R({{"app/main.js",
                     "var src = { m: function () {} };\n"
                     "var dst = Object.assign({}, src);\n"
                     "dst.m();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 1))
      << "Object.assign has a static model (as in Jelly)\n"
      << A.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, UtilInheritsChainsPrototypes) {
  AnalysisRunner R({{"app/main.js",
                     "var util = require('util');\n"
                     "function Base() {}\n"
                     "Base.prototype.kind = function () {};\n"
                     "function Derived() {}\n"
                     "util.inherits(Derived, Base);\n"
                     "var d = new Derived();\n"
                     "d.kind();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 7, "app/main.js", 3))
      << A.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, EventEmitterHandlers) {
  AnalysisRunner R({{"app/main.js",
                     "var EventEmitter = require('events').EventEmitter;\n"
                     "var e = new EventEmitter();\n"
                     "e.on('x', function handler() {});\n"
                     "e.emit('x');"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 4, "app/main.js", 3))
      << A.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, ArrayElementsThroughDynamicIndexResolve) {
  // Array element reads are modeled even in baseline (array handling is
  // not the paper's target unsoundness).
  AnalysisRunner R({{"app/main.js",
                     "var fns = [function a() {}];\n"
                     "var i = 0;\n"
                     "fns[i]();"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 1));
}

//===----------------------------------------------------------------------===//
// Baseline unsoundness and the hint rules
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, BaselineMissesDynamicWriteHintsRecover) {
  AnalysisRunner R({{"app/main.js",
                     "var registry = {};\n"
                     "var key = 'h' + 'andler';\n"
                     "registry[key] = function target() {};\n"
                     "registry.handler();"}});
  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 4, "app/main.js", 3))
      << "baseline must ignore the dynamic write";
  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 4, "app/main.js", 3))
      << "[DPW] recovers the edge\n" << WithHints.CG.toText(R.Ctx.files());
  EXPECT_GT(WithHints.NumCallEdges, Base.NumCallEdges);
}

TEST(AnalysisTest, ReadHintsResolveDynamicReads) {
  AnalysisRunner R({{"app/main.js",
                     "var table = { go: function target() {} };\n"
                     "var k = 'g' + 'o';\n"
                     "table[k]();"}});
  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 3, "app/main.js", 1));
  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 3, "app/main.js", 1))
      << "[DPR] injects the observed function value\n"
      << WithHints.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, WriteHintsFlowThroughPropertyReadsElsewhere) {
  // The hint write happens in a library; the read is a fixed-name access in
  // the application — the paper's central scenario.
  AnalysisRunner R(
      {{"app/main.js", "var lib = require('lib');\n"
                       "lib.api.run();"},
       {"lib/index.js", "exports.api = {};\n"
                        "var names = ['run'];\n"
                        "names.forEach(function (n) {\n"
                        "  exports.api[n] = function impl() {};\n"
                        "});"}});
  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 2, "lib/index.js", 4));
  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 2, "lib/index.js", 4))
      << WithHints.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, ModuleHintsResolveDynamicRequire) {
  AnalysisRunner R({{"app/main.js", "var name = 'plug' + 'in';\n"
                                    "var p = require(name);\n"
                                    "p.activate();"},
                    {"plugin/index.js", "exports.activate = function () {};"}});
  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 3, "plugin/index.js", 1));
  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 3, "plugin/index.js", 1))
      << WithHints.CG.toText(R.Ctx.files());
}

TEST(AnalysisTest, DisablingWriteHintsKeepsBaselineBehavior) {
  AnalysisRunner R({{"app/main.js",
                     "var o = {};\n"
                     "var k = 'm' + '';\n"
                     "o[k] = function target() {};\n"
                     "o.m();"}});
  AnalysisOptions Opts;
  Opts.Mode = AnalysisMode::Hints;
  Opts.UseWriteHints = false;
  StaticAnalysis SA(*R.Loader, Opts, &R.Hints);
  AnalysisResult A = SA.run();
  EXPECT_FALSE(R.hasEdge(A.CG, "app/main.js", 4, "app/main.js", 3));
}

//===----------------------------------------------------------------------===//
// Relational precision (Section 4's three-writes example)
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, RelationalHintsKeepObjectsApart) {
  // One dynamic write operation observes three (base, name, value)
  // combinations; relational hints must not mix them.
  AnalysisRunner R({{"app/main.js",
                     "var o1 = {};\n"
                     "var o2 = {};\n"
                     "function f1() {}\n"
                     "function f2() {}\n"
                     "var specs = [[o1, 'p1', f1], [o2, 'p2', f2]];\n"
                     "specs.forEach(function (s) {\n"
                     "  s[0][s[1]] = s[2];\n"
                     "});\n"
                     "o1.p1();\n"
                     "o2.p2();\n"
                     "o1.p2 && o1.p2();\n"}});
  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 9, "app/main.js", 3));
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 10, "app/main.js", 4));
  // Relational: o1 never received p2.
  EXPECT_FALSE(R.hasEdge(WithHints.CG, "app/main.js", 11, "app/main.js", 4))
      << WithHints.CG.toText(R.Ctx.files());

  // The non-relational ablation conflates the combinations.
  AnalysisResult NonRel = R.analyze(AnalysisMode::NonRelationalHints);
  EXPECT_TRUE(R.hasEdge(NonRel.CG, "app/main.js", 9, "app/main.js", 3));
  EXPECT_TRUE(R.hasEdge(NonRel.CG, "app/main.js", 11, "app/main.js", 4))
      << "non-relational hints cross-contaminate";
  EXPECT_GE(NonRel.NumCallEdges, WithHints.NumCallEdges);
}

TEST(AnalysisTest, OverApproximationRecallsButPollutes) {
  AnalysisRunner R({{"app/main.js",
                     "var o = { fixed: function fixedFn() {} };\n"
                     "var k = 'd' + 'yn';\n"
                     "o[k] = function dynFn() {};\n"
                     "o.dyn && o.dyn();\n"
                     "var x = o.other;\n"
                     "x && x();"}});
  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 4, "app/main.js", 3));
  AnalysisResult Over = R.analyze(AnalysisMode::OverApprox);
  EXPECT_TRUE(R.hasEdge(Over.CG, "app/main.js", 4, "app/main.js", 3))
      << "over-approximation finds the edge";
  EXPECT_TRUE(R.hasEdge(Over.CG, "app/main.js", 6, "app/main.js", 3))
      << "...but also pollutes unrelated property reads";
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, CallSiteMetrics) {
  AnalysisRunner R({{"app/main.js",
                     "function a() {}\n"
                     "function b() {}\n"
                     "var f = 1 ? a : b;\n" // Polymorphic (both flow).
                     "f();\n"
                     "a();\n"
                     "unknownGlobal();"}}); // Unresolved.
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  EXPECT_EQ(A.NumCallSites, 3u);
  EXPECT_EQ(A.NumResolvedCallSites, 2u);
  EXPECT_EQ(A.NumMonomorphicCallSites, 2u) << "a() and the unresolved site";
  EXPECT_EQ(A.NumCallEdges, 3u);
}

TEST(AnalysisTest, ReachabilityFromMainPackage) {
  AnalysisRunner R({{"app/main.js", "var lib = require('lib');\n"
                                    "lib.entry();"},
                    {"lib/index.js",
                     "exports.entry = function entry() { helper(); };\n"
                     "function helper() {}\n"
                     "function unreached() {}\n"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  FileId LibFile = R.Ctx.files().lookup("lib/index.js");
  EXPECT_TRUE(A.ReachableFunctions.count(SourceLoc(LibFile, 1, 18)) ||
              [&] {
                for (const SourceLoc &L : A.ReachableFunctions)
                  if (L.File == LibFile && L.Line == 1)
                    return true;
                return false;
              }())
      << "entry reachable";
  bool HelperReachable = false, UnreachedReachable = false;
  for (const SourceLoc &L : A.ReachableFunctions) {
    if (L.File == LibFile && L.Line == 2)
      HelperReachable = true;
    if (L.File == LibFile && L.Line == 3)
      UnreachedReachable = true;
  }
  EXPECT_TRUE(HelperReachable);
  EXPECT_FALSE(UnreachedReachable);
}

TEST(AnalysisTest, RecallPrecisionAgainstDynamicCallGraph) {
  AnalysisRunner R({{"app/main.js",
                     "var reg = {};\n"
                     "reg['k' + ''] = function hidden() {};\n"
                     "function visible() {}\n"
                     "visible();\n"
                     "reg.k();"}});
  CallGraph Dyn = R.dynamicCallGraph();
  EXPECT_EQ(Dyn.numEdges(), 2u) << Dyn.toText(R.Ctx.files());

  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  RecallPrecision BaseRP = compareCallGraphs(Base.CG, Dyn);
  EXPECT_NEAR(BaseRP.Recall, 0.5, 1e-9) << "baseline misses reg.k()";

  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  RecallPrecision HintRP = compareCallGraphs(WithHints.CG, Dyn);
  EXPECT_NEAR(HintRP.Recall, 1.0, 1e-9);
  EXPECT_NEAR(HintRP.Precision, 1.0, 1e-9);
}

TEST(AnalysisTest, VulnerabilityScanCountsReachableDependencies) {
  AnalysisRunner R(
      {{"app/main.js", "var lib = require('lib');\n"
                       "lib.safeEntry();"},
       {"lib/index.js",
        "exports.safeEntry = function () { vuln_reachable(); };\n"
        "function vuln_reachable() {}\n"
        "function vuln_unreachable() {}\n"}});
  AnalysisResult A = R.analyze(AnalysisMode::Baseline);
  VulnerabilityReport Report = scanVulnerabilities(R.Ctx, A, "app");
  EXPECT_EQ(Report.NumTotal, 2u);
  EXPECT_EQ(Report.NumReachable, 1u);
}

//===----------------------------------------------------------------------===//
// The motivating example, statically
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, MotivatingExampleEndToEnd) {
  AnalysisRunner R(
      {
          {"app/main.js",
           "const express = require('express');\n"
           "const app = express();\n"
           "app.get('/', function handler(req, res) {\n"
           "  res.send('Hello world!');\n"
           "});\n"
           "var server = app.listen(8080);\n"},
          {"express/index.js",
           "var mixin = require('merge-descriptors');\n"
           "var proto = require('./application');\n"
           "exports = module.exports = createApplication;\n"
           "function createApplication() {\n"
           "  var app = function(req, res, next) {\n"
           "    app.handle(req, res, next);\n"
           "  };\n"
           "  mixin(app, proto, false);\n"
           "  return app;\n"
           "}\n"},
          {"merge-descriptors/index.js",
           "module.exports = merge;\n"
           "function merge(dest, src, redefine) {\n"
           "  Object.getOwnPropertyNames(src).forEach(function "
           "forOwnPropertyName(name) {\n"
           "    var descriptor = Object.getOwnPropertyDescriptor(src, name);\n"
           "    Object.defineProperty(dest, name, descriptor);\n"
           "  });\n"
           "  return dest;\n"
           "}\n"},
          {"express/application.js",
           "var methods = require('methods');\n"
           "var app = exports = module.exports = {};\n"
           "methods.forEach(function(method) {\n"
           "  app[method] = function(path) {\n"
           "    return this;\n"
           "  };\n"
           "});\n"
           "app.listen = function listen() {\n"
           "  return null;\n"
           "};\n"},
          {"methods/index.js", "module.exports = ['get', 'post', 'put'];"},
      });

  AnalysisResult Base = R.analyze(AnalysisMode::Baseline);
  // The baseline resolves express() but misses app.get and app.listen.
  EXPECT_TRUE(R.hasEdge(Base.CG, "app/main.js", 2, "express/index.js", 4));
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 3,
                         "express/application.js", 4));
  EXPECT_FALSE(R.hasEdge(Base.CG, "app/main.js", 6,
                         "express/application.js", 8));

  AnalysisResult WithHints = R.analyze(AnalysisMode::Hints);
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 3,
                        "express/application.js", 4))
      << "app.get resolves to the dynamically-installed method\n"
      << WithHints.CG.toText(R.Ctx.files());
  EXPECT_TRUE(R.hasEdge(WithHints.CG, "app/main.js", 6,
                        "express/application.js", 8))
      << "app.listen resolves through the mixin";
  EXPECT_GT(WithHints.NumCallEdges, Base.NumCallEdges);
  EXPECT_GT(WithHints.NumReachableFunctions, Base.NumReachableFunctions);
}

} // namespace
