//===- InterpreterTest.cpp - Tests for the concrete MiniJS interpreter ------===//

#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

/// Parses the given files, runs "app/main.js", and captures results.
struct Runner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  std::unique_ptr<Interpreter> Interp;
  Completion Result;

  Runner(std::initializer_list<std::pair<std::string, std::string>> Files,
         InterpOptions Opts = InterpOptions()) {
    for (const auto &[Path, Source] : Files)
      Fs.addFile(Path, Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Interp = std::make_unique<Interpreter>(*Loader, Opts);
    Result = Interp->loadModule("app/main.js");
  }

  /// Console lines joined by '\n'.
  std::string console() const {
    std::string Out;
    for (const auto &Line : Interp->consoleOutput()) {
      if (!Out.empty())
        Out += '\n';
      Out += Line;
    }
    return Out;
  }
};

/// Runs one source as app/main.js and returns the console transcript.
std::string runAndLog(const std::string &Source) {
  Runner R({{"app/main.js", Source}});
  EXPECT_FALSE(R.Diags.hasErrors()) << R.Diags.render(R.Ctx.files());
  EXPECT_FALSE(R.Result.isThrow())
      << "uncaught: " << R.Interp->toStringValue(R.Result.V);
  EXPECT_FALSE(R.Result.isAbort());
  return R.console();
}

//===----------------------------------------------------------------------===//
// Expressions and control flow
//===----------------------------------------------------------------------===//

TEST(InterpTest, Arithmetic) {
  EXPECT_EQ(runAndLog("console.log(1 + 2 * 3, 10 % 3, 7 / 2, 2 - 5);"),
            "7 1 3.5 -3");
}

TEST(InterpTest, StringConcat) {
  EXPECT_EQ(runAndLog("console.log('a' + 'b' + 1 + true);"), "ab1true");
}

TEST(InterpTest, ComparisonAndEquality) {
  EXPECT_EQ(runAndLog("console.log(1 < 2, 'a' < 'b', 2 >= 3, 1 == '1', "
                      "1 === '1', null == undefined, null === undefined);"),
            "true true false true false true false");
}

TEST(InterpTest, LogicalShortCircuit) {
  EXPECT_EQ(runAndLog("var calls = 0;\n"
                      "function f() { calls++; return true; }\n"
                      "var a = false && f();\n"
                      "var b = true || f();\n"
                      "console.log(calls, a, b);"),
            "0 false true");
}

TEST(InterpTest, NullishCoalescing) {
  EXPECT_EQ(runAndLog("console.log(null ?? 'x', 0 ?? 'y', undefined ?? 1);"),
            "x 0 1");
}

TEST(InterpTest, TernaryAndUnary) {
  EXPECT_EQ(runAndLog("console.log(1 ? 'y' : 'n', !0, -(3), typeof 'a', "
                      "typeof {}, typeof undefined);"),
            "y true -3 string object undefined");
}

TEST(InterpTest, UpdateOperators) {
  EXPECT_EQ(runAndLog("var i = 5;\n"
                      "console.log(i++, i, ++i, i--, --i);"),
            "5 6 7 7 5");
}

TEST(InterpTest, CompoundAssignment) {
  EXPECT_EQ(runAndLog("var x = 2; x += 3; x *= 4; x -= 2; x /= 3;\n"
                      "var s = 'a'; s += 'b';\n"
                      "var y = 0; y ||= 9;\n"
                      "console.log(x, s, y);"),
            "6 ab 9");
}

TEST(InterpTest, WhileAndFor) {
  EXPECT_EQ(runAndLog("var sum = 0;\n"
                      "for (var i = 1; i <= 4; i++) sum += i;\n"
                      "var n = 0;\n"
                      "while (n < 3) { n++; }\n"
                      "do { n++; } while (false);\n"
                      "console.log(sum, n);"),
            "10 4");
}

TEST(InterpTest, BreakContinue) {
  EXPECT_EQ(runAndLog("var out = '';\n"
                      "for (var i = 0; i < 10; i++) {\n"
                      "  if (i % 2 === 0) continue;\n"
                      "  if (i > 6) break;\n"
                      "  out += i;\n"
                      "}\n"
                      "console.log(out);"),
            "135");
}

TEST(InterpTest, SwitchFallthrough) {
  EXPECT_EQ(runAndLog("function f(x) {\n"
                      "  var out = '';\n"
                      "  switch (x) {\n"
                      "    case 1: out += 'one ';\n"
                      "    case 2: out += 'two'; break;\n"
                      "    default: out = 'other';\n"
                      "  }\n"
                      "  return out;\n"
                      "}\n"
                      "console.log(f(1), '|', f(2), '|', f(9));"),
            "one two | two | other");
}

TEST(InterpTest, ThrowTryCatchFinally) {
  EXPECT_EQ(runAndLog("var log = '';\n"
                      "try {\n"
                      "  try { throw new Error('boom'); }\n"
                      "  finally { log += 'fin;'; }\n"
                      "} catch (e) { log += e.message; }\n"
                      "console.log(log);"),
            "fin;boom");
}

TEST(InterpTest, UncaughtThrowPropagates) {
  Runner R({{"app/main.js", "throw new Error('bad');"}});
  EXPECT_TRUE(R.Result.isThrow());
  EXPECT_EQ(R.Interp->toStringValue(R.Result.V), "Error: bad");
}

//===----------------------------------------------------------------------===//
// Functions, closures, this
//===----------------------------------------------------------------------===//

TEST(InterpTest, ClosureCapture) {
  EXPECT_EQ(runAndLog("function counter() {\n"
                      "  var n = 0;\n"
                      "  return function() { n++; return n; };\n"
                      "}\n"
                      "var c1 = counter(); var c2 = counter();\n"
                      "console.log(c1(), c1(), c2());"),
            "1 2 1");
}

TEST(InterpTest, HoistedFunctionsCallableBeforeDefinition) {
  EXPECT_EQ(runAndLog("console.log(f());\n"
                      "function f() { return 'hoisted'; }"),
            "hoisted");
}

TEST(InterpTest, NamedFunctionExpressionRecursion) {
  EXPECT_EQ(runAndLog("var fact = function f(n) {\n"
                      "  return n <= 1 ? 1 : n * f(n - 1);\n"
                      "};\n"
                      "console.log(fact(5));"),
            "120");
}

TEST(InterpTest, ArgumentsObject) {
  EXPECT_EQ(runAndLog("function f() { return arguments.length + ':' + "
                      "arguments[1]; }\n"
                      "console.log(f('a', 'b', 'c'));"),
            "3:b");
}

TEST(InterpTest, ThisInMethodCall) {
  EXPECT_EQ(runAndLog("var o = { x: 41, get: function() { return this.x + 1; } "
                      "};\n"
                      "console.log(o.get());"),
            "42");
}

TEST(InterpTest, ArrowCapturesThis) {
  EXPECT_EQ(runAndLog("var o = {\n"
                      "  x: 7,\n"
                      "  make: function() { return () => this.x; }\n"
                      "};\n"
                      "var f = o.make();\n"
                      "console.log(f());"),
            "7");
}

TEST(InterpTest, ApplyCallBind) {
  EXPECT_EQ(runAndLog("function add(a, b) { return this.base + a + b; }\n"
                      "var ctx = { base: 100 };\n"
                      "console.log(add.apply(ctx, [1, 2]));\n"
                      "console.log(add.call(ctx, 3, 4));\n"
                      "var bound = add.bind(ctx, 10);\n"
                      "console.log(bound(20));"),
            "103\n107\n130");
}

TEST(InterpTest, NewAndPrototypes) {
  EXPECT_EQ(runAndLog("function Dog(name) { this.name = name; }\n"
                      "Dog.prototype.speak = function() { return this.name + "
                      "' says woof'; };\n"
                      "var d = new Dog('rex');\n"
                      "console.log(d.speak(), d instanceof Dog);"),
            "rex says woof true");
}

TEST(InterpTest, ConstructorReturningObject) {
  EXPECT_EQ(runAndLog("function F() { return { marker: 1 }; }\n"
                      "var o = new F();\n"
                      "console.log(o.marker);"),
            "1");
}

TEST(InterpTest, UtilInheritsChain) {
  EXPECT_EQ(runAndLog("var util = require('util');\n"
                      "function Base() {}\n"
                      "Base.prototype.kind = function() { return 'base'; };\n"
                      "function Derived() {}\n"
                      "util.inherits(Derived, Base);\n"
                      "var d = new Derived();\n"
                      "console.log(d.kind(), d instanceof Base);"),
            "base true");
}

//===----------------------------------------------------------------------===//
// Objects and arrays
//===----------------------------------------------------------------------===//

TEST(InterpTest, ObjectLiteralsAndDynamicAccess) {
  EXPECT_EQ(runAndLog("var o = { a: 1, 'b c': 2 };\n"
                      "o['d'] = o.a + o['b c'];\n"
                      "var k = 'd';\n"
                      "console.log(o[k], o.missing);"),
            "3 undefined");
}

TEST(InterpTest, ComputedKeysInLiterals) {
  EXPECT_EQ(runAndLog("var k = 'dyn';\n"
                      "var o = { [k + '1']: 'v' };\n"
                      "console.log(o.dyn1);"),
            "v");
}

TEST(InterpTest, DeleteProperty) {
  EXPECT_EQ(runAndLog("var o = { a: 1 };\n"
                      "console.log(delete o.a, o.a, 'a' in o);"),
            "true undefined false");
}

TEST(InterpTest, ForInIterationOrder) {
  EXPECT_EQ(runAndLog("var o = { b: 1, a: 2, c: 3 };\n"
                      "var keys = '';\n"
                      "for (var k in o) keys += k;\n"
                      "console.log(keys);"),
            "bac") << "insertion order, as in modern engines";
}

TEST(InterpTest, ArraysBasics) {
  EXPECT_EQ(runAndLog("var a = [1, 2, 3];\n"
                      "a.push(4);\n"
                      "a[10] = 'x';\n"
                      "console.log(a.length, a[0], a[9], a.pop());"),
            "11 1 undefined x");
}

TEST(InterpTest, ArrayIterationMethods) {
  EXPECT_EQ(runAndLog(
                "var a = [1, 2, 3, 4];\n"
                "var doubled = a.map(function(x) { return x * 2; });\n"
                "var evens = a.filter(function(x) { return x % 2 === 0; });\n"
                "var sum = a.reduce(function(acc, x) { return acc + x; }, 0);\n"
                "console.log(doubled.join('-'), evens.join(','), sum);"),
            "2-4-6-8 2,4 10");
}

TEST(InterpTest, ArrayForEachIndexAndThisArg) {
  EXPECT_EQ(runAndLog("var out = '';\n"
                      "['a', 'b'].forEach(function(v, i) { out += i + v; });\n"
                      "console.log(out);"),
            "0a1b");
}

TEST(InterpTest, ArraySliceSpliceConcat) {
  EXPECT_EQ(runAndLog("var a = [1, 2, 3, 4, 5];\n"
                      "console.log(a.slice(1, 3).join(','));\n"
                      "console.log(a.slice(-2).join(','));\n"
                      "var removed = a.splice(1, 2, 'x');\n"
                      "console.log(removed.join(','), a.join(','));\n"
                      "console.log([0].concat(a, 9).join(','));"),
            "2,3\n4,5\n2,3 1,x,4,5\n0,1,x,4,5,9");
}

TEST(InterpTest, ArraySortDeterministic) {
  EXPECT_EQ(runAndLog("var a = ['pear', 'apple', 'fig'];\n"
                      "console.log(a.sort().join(','));\n"
                      "var n = [10, 2, 33, 4];\n"
                      "n.sort(function(x, y) { return x - y; });\n"
                      "console.log(n.join(','));"),
            "apple,fig,pear\n2,4,10,33");
}

TEST(InterpTest, ForOfOverArray) {
  EXPECT_EQ(runAndLog("var sum = 0;\n"
                      "for (var x of [1, 2, 3]) sum += x;\n"
                      "console.log(sum);"),
            "6");
}

TEST(InterpTest, StringMethods) {
  EXPECT_EQ(runAndLog("var s = 'Hello World';\n"
                      "console.log(s.toUpperCase(), s.toLowerCase());\n"
                      "console.log(s.indexOf('World'), s.slice(0, 5), "
                      "s.split(' ').length);\n"
                      "console.log('  pad  '.trim(), 'abc'.charAt(1), "
                      "'a-b-c'.replace('-', '+'));"),
            "HELLO WORLD hello world\n6 Hello 2\npad b a+b-c");
}

TEST(InterpTest, ObjectKeysAndAssign) {
  EXPECT_EQ(runAndLog("var src = { a: 1, b: 2 };\n"
                      "var dst = Object.assign({}, src, { c: 3 });\n"
                      "console.log(Object.keys(dst).join(','), dst.a + dst.b + "
                      "dst.c);"),
            "a,b,c 6");
}

TEST(InterpTest, ObjectDefinePropertyAndDescriptors) {
  EXPECT_EQ(runAndLog(
                "var o = {};\n"
                "Object.defineProperty(o, 'x', { value: 42 });\n"
                "var d = Object.getOwnPropertyDescriptor(o, 'x');\n"
                "console.log(o.x, d.value, d.writable);"),
            "42 42 true");
}

TEST(InterpTest, MergeDescriptorsPattern) {
  // The exact merge-descriptors idiom from Figure 1(c) of the paper.
  EXPECT_EQ(runAndLog(
                "function merge(dest, src) {\n"
                "  Object.getOwnPropertyNames(src).forEach(\n"
                "    function forOwnPropertyName(name) {\n"
                "      var descriptor = "
                "Object.getOwnPropertyDescriptor(src, name);\n"
                "      Object.defineProperty(dest, name, descriptor);\n"
                "    });\n"
                "  return dest;\n"
                "}\n"
                "var dst = merge({}, { hi: function() { return 'hi!'; } });\n"
                "console.log(dst.hi());"),
            "hi!");
}

TEST(InterpTest, ObjectCreateWithProto) {
  EXPECT_EQ(runAndLog("var proto = { greet: function() { return 'yo'; } };\n"
                      "var o = Object.create(proto);\n"
                      "console.log(o.greet(), "
                      "Object.getPrototypeOf(o) === proto);"),
            "yo true");
}

TEST(InterpTest, JsonRoundTrip) {
  EXPECT_EQ(runAndLog("var s = JSON.stringify({ a: [1, 'two', null], b: { c: "
                      "true } });\n"
                      "var o = JSON.parse(s);\n"
                      "console.log(s);\n"
                      "console.log(o.a[1], o.b.c);"),
            "{\"a\":[1,\"two\",null],\"b\":{\"c\":true}}\ntwo true");
}

//===----------------------------------------------------------------------===//
// Modules
//===----------------------------------------------------------------------===//

TEST(InterpTest, RequireExportsObject) {
  Runner R({{"app/main.js", "var lib = require('mylib');\n"
                            "console.log(lib.add(2, 3));"},
            {"mylib/index.js", "exports.add = function(a, b) { return a + b; "
                               "};"}});
  EXPECT_EQ(R.console(), "5");
}

TEST(InterpTest, RequireModuleExportsReassignment) {
  Runner R({{"app/main.js", "var make = require('factory');\n"
                            "console.log(make().tag);"},
            {"factory/index.js",
             "module.exports = function() { return { tag: 'made' }; };"}});
  EXPECT_EQ(R.console(), "made");
}

TEST(InterpTest, RequireRelativeAndCaching) {
  Runner R({{"app/main.js", "var a = require('pkg');\n"
                            "var b = require('pkg');\n"
                            "console.log(a === b, a.n);"},
            {"pkg/index.js", "var helper = require('./helper');\n"
                             "exports.n = helper.next();"},
            {"pkg/helper.js", "var count = 0;\n"
                              "exports.next = function() { return ++count; };"}});
  EXPECT_EQ(R.console(), "true 1");
}

TEST(InterpTest, RequireCycleSeesPartialExports) {
  Runner R({{"app/main.js", "var a = require('a');\n"
                            "console.log(a.fromB);"},
            {"a/index.js", "exports.early = 'A';\n"
                           "var b = require('b');\n"
                           "exports.fromB = b.sawEarly;"},
            {"b/index.js", "var a = require('a');\n"
                           "exports.sawEarly = a.early;"}});
  EXPECT_EQ(R.console(), "A");
}

TEST(InterpTest, RequireMissingThrows) {
  Runner R({{"app/main.js", "require('missing-pkg');"}});
  EXPECT_TRUE(R.Result.isThrow());
}

TEST(InterpTest, BuiltinModulesFallback) {
  Runner R({{"app/main.js",
             "var path = require('path');\n"
             "console.log(path.join('a', 'b/c'), path.basename('x/y.js'), "
             "path.extname('x/y.js'));"}});
  EXPECT_EQ(R.console(), "a/b/c y.js .js");
}

TEST(InterpTest, ProjectModuleShadowsBuiltin) {
  Runner R({{"app/main.js", "console.log(require('events').marker);"},
            {"events/index.js", "exports.marker = 'project';"}});
  EXPECT_EQ(R.console(), "project");
}

TEST(InterpTest, EventEmitterNativeFallback) {
  Runner R({{"app/main.js",
             "var EventEmitter = require('events').EventEmitter;\n"
             "var e = new EventEmitter();\n"
             "var got = '';\n"
             "e.on('ping', function(v) { got += 'a' + v; });\n"
             "e.on('ping', function(v) { got += 'b' + v; });\n"
             "e.emit('ping', 1);\n"
             "console.log(got);"}});
  EXPECT_EQ(R.console(), "a1b1");
}

TEST(InterpTest, HttpFakeServerRunsCallbacks) {
  Runner R({{"app/main.js",
             "var http = require('http');\n"
             "var server = http.createServer(function(req, res) {});\n"
             "server.listen(8080, function() { console.log('listening'); });\n"
             "server.close();"}});
  EXPECT_EQ(R.console(), "listening");
}

//===----------------------------------------------------------------------===//
// eval and dynamically generated code
//===----------------------------------------------------------------------===//

TEST(InterpTest, DirectEvalSeesLocalScope) {
  EXPECT_EQ(runAndLog("var x = 20;\n"
                      "function f() {\n"
                      "  var y = 22;\n"
                      "  eval('result = x + y;');\n"
                      "}\n"
                      "var result = 0;\n"
                      "f();\n"
                      "console.log(result);"),
            "42");
}

TEST(InterpTest, EvalDefinesFunctions) {
  EXPECT_EQ(runAndLog("eval('function gen() { return \"from eval\"; }\\n"
                      "made = gen;');\n"
                      "var made;\n"
                      "console.log(made());"),
            "from eval");
}

TEST(InterpTest, FunctionConstructor) {
  EXPECT_EQ(runAndLog("var add = new Function('a', 'b', 'return a + b;');\n"
                      "console.log(add(20, 22));"),
            "42");
}

TEST(InterpTest, EvalSyntaxErrorThrows) {
  Runner R({{"app/main.js", "eval('var = broken(');"}});
  EXPECT_TRUE(R.Result.isThrow());
}

//===----------------------------------------------------------------------===//
// Budgets and safety
//===----------------------------------------------------------------------===//

TEST(InterpTest, InfiniteLoopHitsStepBudget) {
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  Runner R({{"app/main.js", "while (true) {}"}}, Opts);
  EXPECT_TRUE(R.Result.isAbort());
  EXPECT_TRUE(R.Interp->budgetExhausted());
}

TEST(InterpTest, DeepRecursionHitsDepthBudget) {
  InterpOptions Opts;
  Opts.MaxCallDepth = 32;
  Runner R({{"app/main.js", "function f(n) { return f(n + 1); } f(0);"}},
           Opts);
  EXPECT_TRUE(R.Result.isAbort());
}

TEST(InterpTest, MathRandomDeterministic) {
  Runner A({{"app/main.js", "console.log(Math.random());"}});
  Runner B({{"app/main.js", "console.log(Math.random());"}});
  EXPECT_EQ(A.console(), B.console());
}

TEST(InterpTest, TimersRunSynchronously) {
  EXPECT_EQ(runAndLog("setTimeout(function() { console.log('timer'); }, 50);"),
            "timer");
}

//===----------------------------------------------------------------------===//
// The motivating example (Figure 1), end to end
//===----------------------------------------------------------------------===//

TEST(InterpTest, MotivatingExampleExpressClone) {
  Runner R({
      {"app/main.js",
       "const express = require('express');\n"
       "const app = express();\n"
       "app.get('/', function(req, res) {\n"
       "  res.send('Hello world!');\n"
       "  server.close();\n"
       "});\n"
       "var server = app.listen(8080);\n"
       "console.log(typeof app.get, typeof app.listen);"},
      {"express/index.js",
       "var mixin = require('merge-descriptors');\n"
       "var proto = require('./application');\n"
       "exports = module.exports = createApplication;\n"
       "function createApplication() {\n"
       "  var app = function(req, res, next) {\n"
       "    app.handle(req, res, next);\n"
       "  };\n"
       "  mixin(app, proto, false);\n"
       "  return app;\n"
       "}\n"},
      {"merge-descriptors/index.js",
       "module.exports = merge;\n"
       "function merge(dest, src, redefine) {\n"
       "  Object.getOwnPropertyNames(src).forEach(function "
       "forOwnPropertyName(name) {\n"
       "    var descriptor = Object.getOwnPropertyDescriptor(src, name);\n"
       "    Object.defineProperty(dest, name, descriptor);\n"
       "  });\n"
       "  return dest;\n"
       "}\n"},
      {"express/application.js",
       "var methods = require('methods');\n"
       "var http = require('http');\n"
       "var app = exports = module.exports = {};\n"
       "var slice = Array.prototype.slice;\n"
       "methods.forEach(function(method) {\n"
       "  app[method] = function(path) {\n"
       "    return this;\n"
       "  };\n"
       "});\n"
       "app.listen = function listen() {\n"
       "  var server = http.createServer(this);\n"
       "  return server.listen.apply(server, arguments);\n"
       "};\n"},
      {"methods/index.js",
       "module.exports = ['get', 'post', 'put', 'delete'].map(\n"
       "  function(m) { return m.toLowerCase(); });\n"},
  });
  EXPECT_FALSE(R.Result.isThrow())
      << R.Interp->toStringValue(R.Result.V);
  EXPECT_EQ(R.console(), "function function");
}

} // namespace
