//===- SupportTest.cpp - Tests for the support library --------------------===//

#include "support/BitSet.h"
#include "support/Diagnostics.h"
#include "support/JsNumber.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"
#include "support/StringPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace jsai;

//===----------------------------------------------------------------------===//
// SourceLoc / FileTable
//===----------------------------------------------------------------------===//

TEST(SourceLocTest, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc, SourceLoc::invalid());
}

TEST(SourceLocTest, EqualityAndOrdering) {
  SourceLoc A(0, 1, 2), B(0, 1, 2), C(0, 1, 3), D(1, 0, 0);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_LT(A, C);
  EXPECT_LT(C, D);
}

TEST(SourceLocTest, KeyIsInjectiveForDistinctLocs) {
  SourceLoc A(1, 10, 4), B(1, 10, 5), C(1, 11, 4), D(2, 10, 4);
  std::set<uint64_t> Keys = {A.key(), B.key(), C.key(), D.key()};
  EXPECT_EQ(Keys.size(), 4u);
}

TEST(FileTableTest, AddIsIdempotent) {
  FileTable Files;
  FileId A = Files.add("app/main.js");
  FileId B = Files.add("express/index.js");
  FileId A2 = Files.add("app/main.js");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Files.name(A), "app/main.js");
  EXPECT_EQ(Files.size(), 2u);
}

TEST(FileTableTest, LookupMissingReturnsInvalid) {
  FileTable Files;
  EXPECT_EQ(Files.lookup("nope.js"), InvalidFileId);
}

TEST(FileTableTest, FormatRendersFileLineCol) {
  FileTable Files;
  FileId F = Files.add("a.js");
  EXPECT_EQ(Files.format(SourceLoc(F, 3, 7)), "a.js:3:7");
  EXPECT_EQ(Files.format(SourceLoc::invalid()), "<unknown>");
}

//===----------------------------------------------------------------------===//
// StringPool
//===----------------------------------------------------------------------===//

TEST(StringPoolTest, InternDeduplicates) {
  StringPool Pool;
  Symbol A = Pool.intern("get");
  Symbol B = Pool.intern("listen");
  Symbol A2 = Pool.intern("get");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.str(A), "get");
  EXPECT_EQ(Pool.str(B), "listen");
}

TEST(StringPoolTest, LookupWithoutIntern) {
  StringPool Pool;
  EXPECT_EQ(Pool.lookup("missing"), InvalidSymbol);
  Symbol S = Pool.intern("present");
  EXPECT_EQ(Pool.lookup("present"), S);
}

TEST(StringPoolTest, EmptyStringIsInternable) {
  StringPool Pool;
  Symbol S = Pool.intern("");
  EXPECT_EQ(Pool.str(S), "");
  EXPECT_EQ(Pool.intern(""), S);
}

//===----------------------------------------------------------------------===//
// BitSet
//===----------------------------------------------------------------------===//

TEST(BitSetTest, InsertAndContains) {
  BitSet S;
  EXPECT_TRUE(S.insert(0));
  EXPECT_TRUE(S.insert(63));
  EXPECT_TRUE(S.insert(64));
  EXPECT_TRUE(S.insert(1000));
  EXPECT_FALSE(S.insert(64)) << "double insert must report no change";
  EXPECT_TRUE(S.contains(0));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_TRUE(S.contains(1000));
  EXPECT_FALSE(S.contains(1));
  EXPECT_FALSE(S.contains(2000));
  EXPECT_EQ(S.count(), 4u);
}

TEST(BitSetTest, UnionWithReportsChange) {
  BitSet A, B;
  A.insert(1);
  A.insert(100);
  B.insert(100);
  B.insert(200);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(A.count(), 3u);
  EXPECT_FALSE(A.unionWith(B)) << "second union must be a no-op";
}

TEST(BitSetTest, ForEachAscending) {
  BitSet S;
  for (uint32_t V : {5u, 300u, 64u, 0u})
    S.insert(V);
  std::vector<uint32_t> Got = S.toVector();
  std::vector<uint32_t> Want = {0, 5, 64, 300};
  EXPECT_EQ(Got, Want);
}

TEST(BitSetTest, EqualityIgnoresTrailingZeros) {
  BitSet A, B;
  A.insert(3);
  B.insert(3);
  B.insert(500);
  EXPECT_FALSE(A == B);
  A.insert(500);
  EXPECT_TRUE(A == B);
  // Extend A's storage without changing membership.
  A.insert(4000);
  BitSet C;
  C.insert(3);
  C.insert(500);
  C.insert(4000);
  EXPECT_TRUE(A == C);
}

TEST(BitSetTest, EmptySet) {
  BitSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_TRUE(S == BitSet());
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(Rng(42).next(), C.next());
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.range(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0));
    EXPECT_TRUE(R.chance(100));
  }
}

//===----------------------------------------------------------------------===//
// JsNumber
//===----------------------------------------------------------------------===//

TEST(JsNumberTest, ToStringIntegers) {
  EXPECT_EQ(jsNumberToString(0), "0");
  EXPECT_EQ(jsNumberToString(1), "1");
  EXPECT_EQ(jsNumberToString(-17), "-17");
  EXPECT_EQ(jsNumberToString(4294967296.0), "4294967296");
}

TEST(JsNumberTest, ToStringNonIntegers) {
  EXPECT_EQ(jsNumberToString(1.5), "1.5");
  EXPECT_EQ(jsNumberToString(-0.25), "-0.25");
}

TEST(JsNumberTest, ToStringSpecials) {
  EXPECT_EQ(jsNumberToString(std::nan("")), "NaN");
  EXPECT_EQ(jsNumberToString(HUGE_VAL), "Infinity");
  EXPECT_EQ(jsNumberToString(-HUGE_VAL), "-Infinity");
}

TEST(JsNumberTest, ToNumberBasics) {
  EXPECT_EQ(jsStringToNumber("42"), 42);
  EXPECT_EQ(jsStringToNumber("  3.5  "), 3.5);
  EXPECT_EQ(jsStringToNumber(""), 0);
  EXPECT_EQ(jsStringToNumber("   "), 0);
  EXPECT_EQ(jsStringToNumber("0x10"), 16);
  EXPECT_TRUE(std::isnan(jsStringToNumber("12abc")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("foo")));
}

TEST(JsNumberTest, RoundTripArrayIndices) {
  // Array index property names must round-trip exactly.
  for (double D : {0.0, 1.0, 7.0, 100.0, 65535.0}) {
    EXPECT_EQ(jsStringToNumber(jsNumberToString(D)), D);
  }
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(), "w");
  Diags.note(SourceLoc(), "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(), "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 3u);
}

TEST(DiagnosticsTest, RenderFormat) {
  DiagnosticEngine Diags;
  FileTable Files;
  FileId F = Files.add("m.js");
  Diags.error(SourceLoc(F, 2, 5), "bad token");
  EXPECT_EQ(Diags.render(Files), "error: m.js:2:5: bad token\n");
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(), "e");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.all().empty());
}
