//===- SupportTest.cpp - Tests for the support library --------------------===//

#include "support/AdaptiveSet.h"
#include "support/BitSet.h"
#include "support/Diagnostics.h"
#include "support/JsNumber.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"
#include "support/StringPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace jsai;

//===----------------------------------------------------------------------===//
// SourceLoc / FileTable
//===----------------------------------------------------------------------===//

TEST(SourceLocTest, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc, SourceLoc::invalid());
}

TEST(SourceLocTest, EqualityAndOrdering) {
  SourceLoc A(0, 1, 2), B(0, 1, 2), C(0, 1, 3), D(1, 0, 0);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_LT(A, C);
  EXPECT_LT(C, D);
}

TEST(SourceLocTest, KeyIsInjectiveForDistinctLocs) {
  SourceLoc A(1, 10, 4), B(1, 10, 5), C(1, 11, 4), D(2, 10, 4);
  std::set<uint64_t> Keys = {A.key(), B.key(), C.key(), D.key()};
  EXPECT_EQ(Keys.size(), 4u);
}

TEST(FileTableTest, AddIsIdempotent) {
  FileTable Files;
  FileId A = Files.add("app/main.js");
  FileId B = Files.add("express/index.js");
  FileId A2 = Files.add("app/main.js");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Files.name(A), "app/main.js");
  EXPECT_EQ(Files.size(), 2u);
}

TEST(FileTableTest, LookupMissingReturnsInvalid) {
  FileTable Files;
  EXPECT_EQ(Files.lookup("nope.js"), InvalidFileId);
}

TEST(FileTableTest, FormatRendersFileLineCol) {
  FileTable Files;
  FileId F = Files.add("a.js");
  EXPECT_EQ(Files.format(SourceLoc(F, 3, 7)), "a.js:3:7");
  EXPECT_EQ(Files.format(SourceLoc::invalid()), "<unknown>");
}

//===----------------------------------------------------------------------===//
// StringPool
//===----------------------------------------------------------------------===//

TEST(StringPoolTest, InternDeduplicates) {
  StringPool Pool;
  Symbol A = Pool.intern("get");
  Symbol B = Pool.intern("listen");
  Symbol A2 = Pool.intern("get");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.str(A), "get");
  EXPECT_EQ(Pool.str(B), "listen");
}

TEST(StringPoolTest, LookupWithoutIntern) {
  StringPool Pool;
  EXPECT_EQ(Pool.lookup("missing"), InvalidSymbol);
  Symbol S = Pool.intern("present");
  EXPECT_EQ(Pool.lookup("present"), S);
}

TEST(StringPoolTest, EmptyStringIsInternable) {
  StringPool Pool;
  Symbol S = Pool.intern("");
  EXPECT_EQ(Pool.str(S), "");
  EXPECT_EQ(Pool.intern(""), S);
}

//===----------------------------------------------------------------------===//
// BitSet
//===----------------------------------------------------------------------===//

TEST(BitSetTest, InsertAndContains) {
  BitSet S;
  EXPECT_TRUE(S.insert(0));
  EXPECT_TRUE(S.insert(63));
  EXPECT_TRUE(S.insert(64));
  EXPECT_TRUE(S.insert(1000));
  EXPECT_FALSE(S.insert(64)) << "double insert must report no change";
  EXPECT_TRUE(S.contains(0));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_TRUE(S.contains(1000));
  EXPECT_FALSE(S.contains(1));
  EXPECT_FALSE(S.contains(2000));
  EXPECT_EQ(S.count(), 4u);
}

TEST(BitSetTest, UnionWithReportsChange) {
  BitSet A, B;
  A.insert(1);
  A.insert(100);
  B.insert(100);
  B.insert(200);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(A.count(), 3u);
  EXPECT_FALSE(A.unionWith(B)) << "second union must be a no-op";
}

TEST(BitSetTest, ForEachAscending) {
  BitSet S;
  for (uint32_t V : {5u, 300u, 64u, 0u})
    S.insert(V);
  std::vector<uint32_t> Got = S.toVector();
  std::vector<uint32_t> Want = {0, 5, 64, 300};
  EXPECT_EQ(Got, Want);
}

TEST(BitSetTest, EqualityIgnoresTrailingZeros) {
  BitSet A, B;
  A.insert(3);
  B.insert(3);
  B.insert(500);
  EXPECT_FALSE(A == B);
  A.insert(500);
  EXPECT_TRUE(A == B);
  // Extend A's storage without changing membership.
  A.insert(4000);
  BitSet C;
  C.insert(3);
  C.insert(500);
  C.insert(4000);
  EXPECT_TRUE(A == C);
}

TEST(BitSetTest, EmptySet) {
  BitSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_TRUE(S == BitSet());
}

TEST(BitSetTest, SwapClearUnionSequencesKeepMembershipSemantics) {
  // Regression for the unionWith/operator== interaction: unions must size
  // by *membership* (ignoring trailing zero words), so storage laundered
  // through swap/clear paths can never propagate through unions or skew
  // equality, empty(), or count().
  BitSet Big;
  Big.insert(5000); // ~79 words of storage.
  BitSet Small;
  Small.insert(1);
  Big.swap(Small); // Small now owns the large storage.
  EXPECT_TRUE(Small.contains(5000));
  EXPECT_TRUE(Big.contains(1));
  EXPECT_EQ(Big.count(), 1u);

  Small.clear();
  EXPECT_TRUE(Small.empty());
  EXPECT_EQ(Small.count(), 0u);
  EXPECT_TRUE(Small == BitSet());

  // Union with the cleared set: no change reported, no storage adopted,
  // equality against a never-grown twin still holds.
  EXPECT_FALSE(Big.unionWith(Small));
  BitSet Twin;
  Twin.insert(1);
  EXPECT_TRUE(Big == Twin);

  // unionWithRecordingNew through the same laundered sets: the delta holds
  // exactly the new members and compares clean against a fresh set.
  Small.insert(64);
  BitSet Delta;
  EXPECT_TRUE(Big.unionWithRecordingNew(Small, Delta));
  BitSet WantDelta;
  WantDelta.insert(64);
  EXPECT_TRUE(Delta == WantDelta);
  EXPECT_EQ(Big.count(), 2u);
  EXPECT_FALSE(Big.unionWithRecordingNew(Small, Delta)) << "second is no-op";
}

//===----------------------------------------------------------------------===//
// AdaptiveSet
//===----------------------------------------------------------------------===//

TEST(AdaptiveSetTest, StartsSmallWithNoHeap) {
  AdaptiveSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Small);
  EXPECT_EQ(S.heapBytes(), 0u);
  for (uint32_t V : {7u, 100000u, 3u, 64u, 63u, 9000u, 1u, 2u})
    EXPECT_TRUE(S.insert(V));
  EXPECT_EQ(S.count(), 8u);
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Small);
  EXPECT_EQ(S.heapBytes(), 0u) << "<= 8 members must stay inline";
  EXPECT_FALSE(S.insert(64)) << "double insert reports no change";
  EXPECT_TRUE(S.contains(100000));
  EXPECT_FALSE(S.contains(65));
  std::vector<uint32_t> Want = {1, 2, 3, 7, 63, 64, 9000, 100000};
  EXPECT_EQ(S.toVector(), Want);
}

TEST(AdaptiveSetTest, NinthElementPromotesToSparse) {
  AdaptiveSet S;
  // Widely spaced members: chunk occupancy stays far below the dense
  // threshold, so the set promotes to Sparse and stays there.
  for (uint32_t I = 0; I != 8; ++I)
    S.insert(I * 1000);
  ASSERT_EQ(S.tier(), AdaptiveSet::Tier::Small);
  S.insert(8 * 1000);
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Sparse);
  EXPECT_EQ(S.count(), 9u);
  EXPECT_GT(S.heapBytes(), 0u);
  for (uint32_t I = 0; I != 9; ++I)
    EXPECT_TRUE(S.contains(I * 1000));
  std::vector<uint32_t> V = S.toVector();
  ASSERT_EQ(V.size(), 9u);
  EXPECT_TRUE(std::is_sorted(V.begin(), V.end()));
}

TEST(AdaptiveSetTest, DenseSpanPromotesToDense) {
  AdaptiveSet S;
  // Contiguous ids populate every 128-bit chunk of the span; once enough
  // chunks exist, dense storage is no larger and the set promotes.
  for (uint32_t I = 0; I != 600; ++I)
    S.insert(I);
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Dense);
  EXPECT_EQ(S.count(), 600u);
  for (uint32_t I = 0; I != 600; ++I)
    EXPECT_TRUE(S.contains(I));
  EXPECT_FALSE(S.contains(600));
}

TEST(AdaptiveSetTest, SparseSurvivesHighIdsWithTinyFootprint) {
  AdaptiveSet S;
  for (uint32_t I = 0; I != 64; ++I)
    S.insert(I * 100000); // Span of 6.4M ids, 64 members.
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Sparse);
  EXPECT_EQ(S.count(), 64u);
  // Dense storage for this span would be ~800 KB; sparse stays tiny.
  EXPECT_LT(S.heapBytes(), 8u * 1024u);
}

TEST(AdaptiveSetTest, ClearKeepsTierPolicyAndResetsCount) {
  AdaptiveSet S;
  for (uint32_t I = 0; I != 20; ++I)
    S.insert(I * 500);
  ASSERT_FALSE(S.empty());
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Small);
  EXPECT_TRUE(S.insert(5));
  EXPECT_EQ(S.count(), 1u);
}

TEST(AdaptiveSetTest, ForceDensePinsThroughClear) {
  AdaptiveSet S;
  S.insert(3);
  S.insert(70);
  S.forceDense();
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Dense);
  EXPECT_TRUE(S.contains(3));
  EXPECT_TRUE(S.contains(70));
  EXPECT_EQ(S.count(), 2u);
  S.clear();
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Dense) << "the pin survives clear";
  S.insert(9);
  EXPECT_EQ(S.tier(), AdaptiveSet::Tier::Dense);
  EXPECT_EQ(S.count(), 1u);
}

TEST(AdaptiveSetTest, EqualityAcrossTiers) {
  AdaptiveSet A, B;
  for (uint32_t V : {1u, 600u, 40000u})
    A.insert(V);
  B.forceDense(); // Same membership, different representation.
  for (uint32_t V : {1u, 600u, 40000u})
    B.insert(V);
  EXPECT_NE(A.tier(), B.tier());
  EXPECT_TRUE(A == B);
  EXPECT_TRUE(B == A);
  B.insert(2);
  EXPECT_FALSE(A == B);
}

TEST(AdaptiveSetTest, CrossTypeEqualityWithBitSet) {
  AdaptiveSet A;
  BitSet B;
  for (uint32_t V : {0u, 63u, 64u, 900u, 30000u}) {
    A.insert(V);
    B.insert(V);
  }
  EXPECT_TRUE(A == B);
  EXPECT_TRUE(B == A);
  B.insert(1);
  EXPECT_FALSE(A == B);
}

TEST(AdaptiveSetTest, UnionWithRecordingNewRecordsExactDelta) {
  AdaptiveSet A, Other, Delta;
  A.insert(1);
  A.insert(100);
  Other.insert(100);
  Other.insert(200);
  Other.insert(90000);
  EXPECT_TRUE(A.unionWithRecordingNew(Other, Delta));
  std::vector<uint32_t> WantDelta = {200, 90000};
  EXPECT_EQ(Delta.toVector(), WantDelta);
  EXPECT_EQ(A.count(), 4u);
  Delta.clear();
  EXPECT_FALSE(A.unionWithRecordingNew(Other, Delta)) << "second is no-op";
  EXPECT_TRUE(Delta.empty());
}

TEST(AdaptiveSetTest, SwapExchangesMembershipAndTier) {
  AdaptiveSet A, B;
  A.insert(5);
  for (uint32_t I = 0; I != 600; ++I)
    B.insert(I);
  ASSERT_EQ(B.tier(), AdaptiveSet::Tier::Dense);
  A.swap(B);
  EXPECT_EQ(A.count(), 600u);
  EXPECT_EQ(A.tier(), AdaptiveSet::Tier::Dense);
  EXPECT_EQ(B.count(), 1u);
  EXPECT_TRUE(B.contains(5));
  EXPECT_EQ(B.tier(), AdaptiveSet::Tier::Small);
}

TEST(AdaptiveSetTest, MemoryAccountingBooksAndReleases) {
  SetMemoryStats Mem;
  {
    AdaptiveSet S;
    S.attachMemoryStats(&Mem);
    for (uint32_t I = 0; I != 8; ++I)
      S.insert(I * 1000);
    EXPECT_EQ(Mem.LiveBytes, 0u) << "inline tier books zero bytes";
    S.insert(8000); // Promote to sparse.
    EXPECT_EQ(Mem.PromotionsToSparse, 1u);
    EXPECT_GT(Mem.LiveBytes, 0u);
    EXPECT_EQ(Mem.LiveBytes, S.heapBytes());
    EXPECT_GE(Mem.PeakBytes, Mem.LiveBytes);
    for (uint32_t I = 0; I != 8000; ++I)
      S.insert(I); // Fill the span so the density rule promotes to dense.
    EXPECT_EQ(Mem.PromotionsToDense, 1u);
    EXPECT_EQ(Mem.LiveBytes, S.heapBytes());
    EXPECT_GE(Mem.PeakBytes, Mem.LiveBytes);
  }
  EXPECT_EQ(Mem.LiveBytes, 0u) << "destructor books the bytes back out";
  EXPECT_GT(Mem.PeakBytes, 0u) << "peak survives the release";
}

TEST(AdaptiveSetTest, CopyAssignKeepsOwnAccountingBlock) {
  SetMemoryStats MemA, MemB;
  AdaptiveSet A, B;
  A.attachMemoryStats(&MemA);
  B.attachMemoryStats(&MemB);
  for (uint32_t I = 0; I != 100; ++I)
    B.insert(I * 700);
  uint64_t BLive = MemB.LiveBytes;
  EXPECT_GT(BLive, 0u);
  A = B; // A's bytes land in MemA; MemB is untouched.
  EXPECT_TRUE(A == B);
  EXPECT_EQ(MemB.LiveBytes, BLive);
  EXPECT_EQ(MemA.LiveBytes, A.heapBytes());
}

TEST(AdaptiveSetTest, PropertyDifferentialVsBitSetReference) {
  // Seeded random op sequences over a production AdaptiveSet, a dense-
  // pinned AdaptiveSet (the ablation path), and the reference BitSet.
  // Value ranges alternate between clustered (drives Small -> Sparse ->
  // Dense) and scattered (keeps sets sparse), so every tier transition is
  // crossed; verified at the end of each round.
  Rng R(20260805);
  bool SawSparse = false, SawDense = false;
  for (int Round = 0; Round < 40; ++Round) {
    AdaptiveSet S, SDense;
    SDense.forceDense();
    BitSet Ref;
    const uint32_t Range = R.chance(50) ? 300 : 50000;
    const size_t NumOps = size_t(R.range(10, 400));
    for (size_t Op = 0; Op < NumOps; ++Op) {
      uint32_t Roll = uint32_t(R.below(100));
      if (Roll < 70) {
        uint32_t V = uint32_t(R.below(Range));
        EXPECT_EQ(S.insert(V), SDense.insert(V));
        Ref.insert(V);
      } else if (Roll < 85) {
        // Union with a random batch, recording the delta both ways.
        AdaptiveSet Batch;
        BitSet RefBatch;
        size_t N = size_t(R.range(1, 40));
        for (size_t I = 0; I != N; ++I) {
          uint32_t V = uint32_t(R.below(Range));
          Batch.insert(V);
          RefBatch.insert(V);
        }
        AdaptiveSet DeltaA, DeltaB;
        BitSet RefDelta;
        bool ChangedA = S.unionWithRecordingNew(Batch, DeltaA);
        bool ChangedB = SDense.unionWithRecordingNew(Batch, DeltaB);
        bool ChangedRef = Ref.unionWithRecordingNew(RefBatch, RefDelta);
        EXPECT_EQ(ChangedA, ChangedRef);
        EXPECT_EQ(ChangedB, ChangedRef);
        EXPECT_TRUE(DeltaA == RefDelta);
        EXPECT_TRUE(DeltaB == RefDelta);
        EXPECT_TRUE(DeltaA == DeltaB);
      } else if (Roll < 95) {
        uint32_t V = uint32_t(R.below(Range));
        EXPECT_EQ(S.contains(V), Ref.contains(V));
        EXPECT_EQ(SDense.contains(V), Ref.contains(V));
      } else {
        S.clear();
        SDense.clear();
        Ref.clear();
      }
      if (S.tier() == AdaptiveSet::Tier::Sparse)
        SawSparse = true;
      if (S.tier() == AdaptiveSet::Tier::Dense)
        SawDense = true;
    }
    ASSERT_EQ(S.count(), Ref.count()) << "round " << Round;
    ASSERT_TRUE(S == Ref) << "round " << Round;
    ASSERT_TRUE(SDense == Ref) << "round " << Round;
    ASSERT_TRUE(S == SDense) << "round " << Round;
    ASSERT_EQ(S.toVector(), Ref.toVector()) << "round " << Round;
    ASSERT_EQ(SDense.toVector(), Ref.toVector()) << "round " << Round;
  }
  EXPECT_TRUE(SawSparse) << "op mix must exercise the sparse tier";
  EXPECT_TRUE(SawDense) << "op mix must exercise the dense tier";
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(Rng(42).next(), C.next());
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.range(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0));
    EXPECT_TRUE(R.chance(100));
  }
}

//===----------------------------------------------------------------------===//
// JsNumber
//===----------------------------------------------------------------------===//

TEST(JsNumberTest, ToStringIntegers) {
  EXPECT_EQ(jsNumberToString(0), "0");
  EXPECT_EQ(jsNumberToString(1), "1");
  EXPECT_EQ(jsNumberToString(-17), "-17");
  EXPECT_EQ(jsNumberToString(4294967296.0), "4294967296");
}

TEST(JsNumberTest, ToStringNonIntegers) {
  EXPECT_EQ(jsNumberToString(1.5), "1.5");
  EXPECT_EQ(jsNumberToString(-0.25), "-0.25");
}

TEST(JsNumberTest, ToStringSpecials) {
  EXPECT_EQ(jsNumberToString(std::nan("")), "NaN");
  EXPECT_EQ(jsNumberToString(HUGE_VAL), "Infinity");
  EXPECT_EQ(jsNumberToString(-HUGE_VAL), "-Infinity");
}

TEST(JsNumberTest, ToNumberBasics) {
  EXPECT_EQ(jsStringToNumber("42"), 42);
  EXPECT_EQ(jsStringToNumber("  3.5  "), 3.5);
  EXPECT_EQ(jsStringToNumber(""), 0);
  EXPECT_EQ(jsStringToNumber("   "), 0);
  EXPECT_EQ(jsStringToNumber("0x10"), 16);
  EXPECT_TRUE(std::isnan(jsStringToNumber("12abc")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("foo")));
}

TEST(JsNumberTest, RoundTripArrayIndices) {
  // Array index property names must round-trip exactly.
  for (double D : {0.0, 1.0, 7.0, 100.0, 65535.0}) {
    EXPECT_EQ(jsStringToNumber(jsNumberToString(D)), D);
  }
}

TEST(JsNumberTest, ToStringNegativeZero) {
  // ToString(-0) is "0"; the sign is only observable via division.
  EXPECT_EQ(jsNumberToString(-0.0), "0");
}

TEST(JsNumberTest, ToStringPositionalExponentBoundaries) {
  // Number::toString stays positional up to 21 integer digits and down to
  // 6 leading fraction zeros, then switches to exponential form.
  EXPECT_EQ(jsNumberToString(1e20), "100000000000000000000");
  EXPECT_EQ(jsNumberToString(1e21), "1e+21");
  EXPECT_EQ(jsNumberToString(123456789012345680000.0), "123456789012345680000");
  EXPECT_EQ(jsNumberToString(0.000001), "0.000001");
  EXPECT_EQ(jsNumberToString(1e-7), "1e-7");
  EXPECT_EQ(jsNumberToString(-1e21), "-1e+21");
  EXPECT_EQ(jsNumberToString(-1e-7), "-1e-7");
}

TEST(JsNumberTest, ToStringExponentialDigits) {
  EXPECT_EQ(jsNumberToString(1.5e22), "1.5e+22");
  EXPECT_EQ(jsNumberToString(1.25e-8), "1.25e-8");
  EXPECT_EQ(jsNumberToString(6.02e23), "6.02e+23");
}

TEST(JsNumberTest, ToStringShortestRoundTrip) {
  EXPECT_EQ(jsNumberToString(0.1), "0.1");
  EXPECT_EQ(jsNumberToString(0.3), "0.3");
  EXPECT_EQ(jsNumberToString(0.1 + 0.2), "0.30000000000000004");
  EXPECT_EQ(jsNumberToString(9007199254740993.0), "9007199254740992");
  EXPECT_EQ(jsNumberToString(5e-324), "5e-324");
  EXPECT_EQ(jsNumberToString(1.7976931348623157e308),
            "1.7976931348623157e+308");
}

TEST(JsNumberTest, ToStringRoundTripsThroughToNumber) {
  for (double D : {0.1, 1e21, 1e-7, 1.5e22, 0.000001, 123.456,
                   9007199254740992.0, 5e-324, 1.7976931348623157e308}) {
    EXPECT_EQ(jsStringToNumber(jsNumberToString(D)), D);
  }
}

TEST(JsNumberTest, ToNumberRejectsStrtodExtensions) {
  // ECMAScript StringToNumber has no "inf"/"nan"/hex-float productions.
  EXPECT_TRUE(std::isnan(jsStringToNumber("inf")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("infinity")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("-inf")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("nan")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("NaN ")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("0x1p4")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("0x1.8p1")));
}

TEST(JsNumberTest, ToNumberRejectsSignedRadixLiterals) {
  // The sign productions only exist for decimal literals.
  EXPECT_TRUE(std::isnan(jsStringToNumber("-0x10")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("+0x10")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("-0b101")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("+0o17")));
}

TEST(JsNumberTest, ToNumberAcceptsInfinityLiteral) {
  EXPECT_EQ(jsStringToNumber("Infinity"), HUGE_VAL);
  EXPECT_EQ(jsStringToNumber("+Infinity"), HUGE_VAL);
  EXPECT_EQ(jsStringToNumber("-Infinity"), -HUGE_VAL);
  EXPECT_EQ(jsStringToNumber("  Infinity\n"), HUGE_VAL);
  EXPECT_TRUE(std::isnan(jsStringToNumber("Infinity1")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("InfinityInfinity")));
}

TEST(JsNumberTest, ToNumberRadixLiterals) {
  EXPECT_EQ(jsStringToNumber("0b101"), 5);
  EXPECT_EQ(jsStringToNumber("0B11"), 3);
  EXPECT_EQ(jsStringToNumber("0o17"), 15);
  EXPECT_EQ(jsStringToNumber("0O777"), 511);
  EXPECT_EQ(jsStringToNumber("0xfF"), 255);
  EXPECT_EQ(jsStringToNumber("0xFFFFFFFFFFFFFFFFFF"), 4722366482869645213696.0);
  EXPECT_TRUE(std::isnan(jsStringToNumber("0x")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("0b")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("0b2")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("0o8")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("0xfg")));
}

TEST(JsNumberTest, ToNumberDecimalGrammar) {
  EXPECT_EQ(jsStringToNumber(".5"), 0.5);
  EXPECT_EQ(jsStringToNumber("5."), 5);
  EXPECT_EQ(jsStringToNumber("+1.5e2"), 150);
  EXPECT_EQ(jsStringToNumber("-3E-1"), -0.3);
  EXPECT_EQ(jsStringToNumber(".5e1"), 5);
  EXPECT_EQ(jsStringToNumber("\t\v\f 12 \r\n"), 12);
  EXPECT_TRUE(std::isnan(jsStringToNumber(".")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("+")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("-")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("1e")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("1e+")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("1.2.3")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("1 2")));
  EXPECT_TRUE(std::isnan(jsStringToNumber("--1")));
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(), "w");
  Diags.note(SourceLoc(), "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(), "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 3u);
}

TEST(DiagnosticsTest, RenderFormat) {
  DiagnosticEngine Diags;
  FileTable Files;
  FileId F = Files.add("m.js");
  Diags.error(SourceLoc(F, 2, 5), "bad token");
  EXPECT_EQ(Diags.render(Files), "error: m.js:2:5: bad token\n");
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(), "e");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.all().empty());
}
