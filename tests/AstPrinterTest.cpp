//===- AstPrinterTest.cpp - Stable debug dumps -------------------------------===//

#include "ast/AstPrinter.h"
#include "ast/ScopeResolver.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

std::string dump(const std::string &Source) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  Parser P(Ctx, Diags);
  Module *M = P.parseModule("app/main.js", "app", Source);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());
  ScopeResolver(Ctx).resolveAll();
  return AstPrinter(Ctx).printFunction(M->Func);
}

TEST(AstPrinterTest, ModuleShell) {
  std::string Out = dump("var x = 1;");
  EXPECT_NE(Out.find("(module-function"), std::string::npos);
  EXPECT_NE(Out.find("(params exports require module)"), std::string::npos);
  EXPECT_NE(Out.find("(declarator x"), std::string::npos);
  EXPECT_NE(Out.find("(number 1)"), std::string::npos);
}

TEST(AstPrinterTest, GlobalsAreMarked) {
  std::string Out = dump("localFn();\nfunction localFn() {}\nglobalFn();");
  EXPECT_NE(Out.find("(ident localFn)"), std::string::npos)
      << "resolved identifiers carry no marker";
  EXPECT_NE(Out.find("(ident globalFn global)"), std::string::npos);
}

TEST(AstPrinterTest, ControlFlowShapes) {
  std::string Out = dump("if (a) { b(); } else { c(); }\n"
                         "for (var i = 0; i < 3; i++) { continue; }\n"
                         "switch (x) { case 1: break; default: d(); }\n"
                         "try { t(); } catch (e) { h(); } finally { f(); }");
  for (const char *Marker :
       {"(if", "(for", "(switch", "(case", "(default", "(try", "(break)",
        "(continue)", "(update ++ postfix"})
    EXPECT_NE(Out.find(Marker), std::string::npos) << Marker;
}

TEST(AstPrinterTest, ExpressionsRoundTripShapes) {
  std::string Out = dump("var r = (a && b) || (c ? d : e[f].g);");
  for (const char *Marker :
       {"(logical ||", "(logical &&", "(conditional", "(member-dyn",
        "(member g"})
    EXPECT_NE(Out.find(Marker), std::string::npos) << Marker;
}

TEST(AstPrinterTest, DumpIsDeterministic) {
  const char *Source = "var o = { m() { return this; } };\n"
                       "o.m();";
  EXPECT_EQ(dump(Source), dump(Source));
}

} // namespace
