//===- FileSystemTest.cpp - Tests for the virtual file system ---------------===//

#include "interp/FileSystem.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace jsai;

namespace {

TEST(FileSystemTest, NormalizePath) {
  EXPECT_EQ(FileSystem::normalizePath("a/b/c.js"), "a/b/c.js");
  EXPECT_EQ(FileSystem::normalizePath("a/./b"), "a/b");
  EXPECT_EQ(FileSystem::normalizePath("a/b/../c"), "a/c");
  EXPECT_EQ(FileSystem::normalizePath("./a"), "a");
  EXPECT_EQ(FileSystem::normalizePath("a//b"), "a/b");
  EXPECT_EQ(FileSystem::normalizePath("../a"), "a");
}

TEST(FileSystemTest, AddAndRead) {
  FileSystem Fs;
  Fs.addFile("app/main.js", "var x = 1;");
  EXPECT_TRUE(Fs.exists("app/main.js"));
  EXPECT_EQ(Fs.read("app/main.js"), "var x = 1;");
  EXPECT_FALSE(Fs.exists("app/other.js"));
  EXPECT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs.totalBytes(), 10u);
}

TEST(FileSystemTest, AddNormalizes) {
  FileSystem Fs;
  Fs.addFile("./app/main.js", "x");
  EXPECT_TRUE(Fs.exists("app/main.js"));
}

TEST(FileSystemTest, AllPathsSorted) {
  FileSystem Fs;
  Fs.addFile("z/index.js", "");
  Fs.addFile("a/index.js", "");
  Fs.addFile("m/index.js", "");
  std::vector<std::string> Want = {"a/index.js", "m/index.js", "z/index.js"};
  EXPECT_EQ(Fs.allPaths(), Want);
}

TEST(FileSystemTest, ResolveRelative) {
  FileSystem Fs;
  Fs.addFile("express/index.js", "");
  Fs.addFile("express/application.js", "");
  Fs.addFile("express/lib/router/index.js", "");
  EXPECT_EQ(Fs.resolveRequire("express/index.js", "./application"),
            "express/application.js");
  EXPECT_EQ(Fs.resolveRequire("express/index.js", "./application.js"),
            "express/application.js");
  EXPECT_EQ(Fs.resolveRequire("express/index.js", "./lib/router"),
            "express/lib/router/index.js");
  EXPECT_EQ(
      Fs.resolveRequire("express/lib/router/index.js", "../../application"),
      "express/application.js");
}

TEST(FileSystemTest, ResolveBarePackage) {
  FileSystem Fs;
  Fs.addFile("express/index.js", "");
  Fs.addFile("merge-descriptors/index.js", "");
  EXPECT_EQ(Fs.resolveRequire("app/main.js", "express"), "express/index.js");
  EXPECT_EQ(Fs.resolveRequire("express/index.js", "merge-descriptors"),
            "merge-descriptors/index.js");
}

TEST(FileSystemTest, ResolveBareSubpath) {
  FileSystem Fs;
  Fs.addFile("pkg/lib/util.js", "");
  EXPECT_EQ(Fs.resolveRequire("app/main.js", "pkg/lib/util"),
            "pkg/lib/util.js");
}

TEST(FileSystemTest, ResolveMissing) {
  FileSystem Fs;
  Fs.addFile("app/main.js", "");
  EXPECT_EQ(Fs.resolveRequire("app/main.js", "./nope"), "");
  EXPECT_EQ(Fs.resolveRequire("app/main.js", "http"), "");
  EXPECT_EQ(Fs.resolveRequire("app/main.js", ""), "");
}

TEST(FileSystemTest, AddDirectoryLoadsJsFilesRecursively) {
  namespace fs = std::filesystem;
  fs::path Root = fs::temp_directory_path() / "jsai_fs_test";
  fs::remove_all(Root);
  fs::create_directories(Root / "app");
  fs::create_directories(Root / "lib" / "inner");
  auto WriteFile = [](const fs::path &P, const std::string &Text) {
    std::ofstream Out(P);
    Out << Text;
  };
  WriteFile(Root / "app" / "main.js", "var x = 1;");
  WriteFile(Root / "lib" / "index.js", "exports.y = 2;");
  WriteFile(Root / "lib" / "inner" / "util.js", "exports.z = 3;");
  WriteFile(Root / "README.md", "not js");

  FileSystem FsObj;
  EXPECT_EQ(FsObj.addDirectory(Root.string()), 3u);
  EXPECT_TRUE(FsObj.exists("app/main.js"));
  EXPECT_TRUE(FsObj.exists("lib/index.js"));
  EXPECT_TRUE(FsObj.exists("lib/inner/util.js"));
  EXPECT_FALSE(FsObj.exists("README.md"));
  EXPECT_EQ(FsObj.read("app/main.js"), "var x = 1;");
  fs::remove_all(Root);
}

TEST(FileSystemTest, AddDirectoryMissingReturnsZero) {
  FileSystem FsObj;
  EXPECT_EQ(FsObj.addDirectory("/nonexistent/jsai/dir"), 0u);
}

} // namespace
