//===- PipelineTest.cpp - End-to-end pipeline tests --------------------------===//

#include "callgraph/VulnerabilityScan.h"
#include "corpus/BenchmarkSuite.h"
#include "corpus/MotivatingExample.h"
#include "corpus/PatternGenerators.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

TEST(PipelineTest, MotivatingExampleReport) {
  Pipeline P;
  ProjectReport R = P.analyzeProject(motivatingExampleProject());
  EXPECT_EQ(R.Name, "motivating-example");
  EXPECT_GT(R.NumHints, 0u);
  EXPECT_GT(R.NumFunctions, 0u);
  EXPECT_GT(R.Extended.NumCallEdges, R.Baseline.NumCallEdges)
      << "hints must add call edges on the motivating example";
  EXPECT_GT(R.Extended.NumReachableFunctions,
            R.Baseline.NumReachableFunctions);
  ASSERT_TRUE(R.HasDynamicCG);
  EXPECT_GT(R.DynamicEdges, 0u);
  EXPECT_GT(R.ExtendedRP.Recall, R.BaselineRP.Recall)
      << "recall must improve (paper: 75.9% -> 88.1% on average)";
  EXPECT_GE(R.BaselineRP.Precision, 0.5);
  EXPECT_GE(R.ExtendedRP.Precision, 0.5);
}

TEST(PipelineTest, TimingsArePopulated) {
  Pipeline P;
  Rng R(3);
  ProjectReport Rep = P.analyzeProject(makeExpressLike(R, 1));
  EXPECT_GT(Rep.BaselineSeconds, 0.0);
  EXPECT_GT(Rep.ApproxSeconds, 0.0);
  EXPECT_GT(Rep.ExtendedSeconds, 0.0);
}

TEST(PipelineTest, ExpressLikeShapeMatchesPaper) {
  Pipeline P;
  Rng R(11);
  ProjectSpec Spec = makeExpressLike(R, 2);
  Spec.Name = "express-like-shape";
  ProjectReport Rep = P.analyzeProject(Spec);
  // The dominant pattern family: hints must recover substantial dataflow.
  EXPECT_GT(Rep.Extended.NumCallEdges, Rep.Baseline.NumCallEdges);
  EXPECT_GE(Rep.Extended.resolvedFraction(),
            Rep.Baseline.resolvedFraction());
  ASSERT_TRUE(Rep.HasDynamicCG);
  EXPECT_GT(Rep.ExtendedRP.Recall, Rep.BaselineRP.Recall);
  // Precision should not collapse (paper: -1.5% on average).
  EXPECT_GE(Rep.ExtendedRP.Precision, Rep.BaselineRP.Precision - 0.25);
}

TEST(PipelineTest, UtilityLibControlGroupBarelyChanges) {
  Pipeline P;
  Rng R(13);
  ProjectSpec Spec = makeUtilityLib(R, 1);
  Spec.Name = "utility-lib-control";
  ProjectReport Rep = P.analyzeProject(Spec);
  // Statically-easy code: baseline already resolves it; hints add little.
  ASSERT_TRUE(Rep.HasDynamicCG);
  EXPECT_GE(Rep.BaselineRP.Recall, 0.95)
      << "the control group must be easy for the baseline";
  EXPECT_LE(Rep.Extended.NumCallEdges,
            Rep.Baseline.NumCallEdges + Rep.Baseline.NumCallEdges / 5)
      << "hints should not inflate easy projects much";
}

TEST(PipelineTest, DynamicLoaderNeedsModuleHints) {
  Pipeline P;
  Rng R(17);
  ProjectSpec Spec = makeDynamicLoader(R, 1);
  Spec.Name = "dynamic-loader-hints";
  ProjectReport Rep = P.analyzeProject(Spec);
  EXPECT_GT(Rep.Extended.NumReachableFunctions,
            Rep.Baseline.NumReachableFunctions)
      << "module hints make feature packages reachable";
}

TEST(PipelineTest, VulnerabilityStudyShape) {
  // With hints, at least as many dependency vulnerabilities are reachable,
  // and reachable-function counts grow (the Section 5 study's shape).
  Pipeline P;
  size_t BaseReach = 0, ExtReach = 0, Total = 0;
  for (unsigned Seed : {21u, 22u, 23u}) {
    Rng R(Seed);
    ProjectSpec Spec = makeExpressLike(R, 1);
    Spec.Name = "vuln-study-" + std::to_string(Seed);
    ProjectAnalyzer A(Spec);
    AnalysisResult Base = A.analyze(AnalysisMode::Baseline);
    AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
    VulnerabilityReport BaseRep =
        scanVulnerabilities(A.context(), Base, "app");
    VulnerabilityReport ExtRep = scanVulnerabilities(A.context(), Ext, "app");
    EXPECT_EQ(BaseRep.NumTotal, ExtRep.NumTotal);
    Total += BaseRep.NumTotal;
    BaseReach += BaseRep.NumReachable;
    ExtReach += ExtRep.NumReachable;
  }
  EXPECT_GT(Total, 0u);
  EXPECT_GE(ExtReach, BaseReach);
  EXPECT_LT(ExtReach, Total) << "most vulnerabilities stay dormant";
}

TEST(PipelineTest, ProjectAnalyzerCachesHints) {
  ProjectAnalyzer A(motivatingExampleProject());
  const HintSet &H1 = A.hints();
  const HintSet &H2 = A.hints();
  EXPECT_EQ(&H1, &H2);
  EXPECT_GT(A.approxStats().NumFunctionsVisited, 0u);
  EXPECT_GT(A.approxStats().visitedFraction(), 0.3)
      << "approximate interpretation should visit a large share of "
         "functions (paper: ~60%)";
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  auto Run = [] {
    Pipeline P;
    Rng R(29);
    ProjectSpec Spec = makeEventHub(R, 1);
    Spec.Name = "determinism";
    ProjectReport Rep = P.analyzeProject(Spec);
    return std::make_tuple(Rep.NumHints, Rep.Baseline.NumCallEdges,
                           Rep.Extended.NumCallEdges,
                           Rep.Extended.NumReachableFunctions);
  };
  EXPECT_EQ(Run(), Run());
}

TEST(PipelineTest, WholeSuiteSmokeRun) {
  // A fast pass over a slice of the full suite: every fourth project, all
  // phases; catches generator/analysis integration regressions.
  std::vector<ProjectSpec> Suite = buildBenchmarkSuite();
  Pipeline P;
  size_t Analyzed = 0, Improved = 0;
  for (size_t I = 0; I < Suite.size(); I += 8) {
    ProjectReport Rep = P.analyzeProject(Suite[I]);
    ++Analyzed;
    if (Rep.Extended.NumCallEdges > Rep.Baseline.NumCallEdges)
      ++Improved;
    EXPECT_GE(Rep.Extended.NumCallEdges, Rep.Baseline.NumCallEdges)
        << Suite[I].Name << ": hints must never lose edges";
  }
  EXPECT_GE(Analyzed, 17u);
  EXPECT_GE(Improved, Analyzed / 2)
      << "most projects should gain call edges (paper: +55.1% on average)";
}

} // namespace
