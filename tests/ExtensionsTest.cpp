//===- ExtensionsTest.cpp - Tests for the Section 6 extensions --------------===//
//
// Covers the paper's "Potential improvements" (Section 6) implemented here:
// unknown-function-argument hints, static analysis of eval'd code strings,
// and reuse of approximate-interpretation results via portable hint
// serialization.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct ExtRunner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;
  HintSet Hints;

  ExtRunner(std::initializer_list<std::pair<std::string, std::string>> Files,
            std::vector<std::string> Roots = {"app/main.js"}) {
    for (const auto &[Path, Source] : Files)
      Fs.addFile(Path, Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Loader->parseAll();
    ApproxInterpreter Approx(*Loader);
    Hints = Approx.run(Roots);
  }

  AnalysisResult analyze(AnalysisOptions Opts) {
    StaticAnalysis SA(*Loader, Opts, &Hints);
    return SA.run();
  }

  bool hasEdge(const CallGraph &CG, const std::string &SiteFile,
               uint32_t SiteLine, const std::string &CalleeFile,
               uint32_t CalleeLine) {
    FileId SF = Ctx.files().lookup(SiteFile);
    FileId CF = Ctx.files().lookup(CalleeFile);
    for (const auto &[Site, Callees] : CG.edges()) {
      if (Site.File != SF || Site.Line != SiteLine)
        continue;
      for (const SourceLoc &Callee : Callees)
        if (Callee.File == CF && Callee.Line == CalleeLine)
          return true;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Unknown-function-argument hints
//===----------------------------------------------------------------------===//

TEST(ExtensionsTest, ProxyReadNamesAreCollected) {
  ExtRunner R({{"app/main.js", "var key = 'run';\n"
                               "function use(opts) {\n"
                               "  return opts[key];\n"
                               "}\n"}});
  ASSERT_EQ(R.Hints.proxyReadNames().size(), 1u);
  const auto &[Loc, Names] = *R.Hints.proxyReadNames().begin();
  EXPECT_EQ(Loc.Line, 3u);
  EXPECT_EQ(*Names.begin(), "run");
}

TEST(ExtensionsTest, UnknownArgHintsResolveProxyBaseReads) {
  // The real call to `use` hides behind a comparison on mocked I/O data,
  // which is false under forced execution — so approximate interpretation
  // only ever sees opts = p* at the dynamic read. The observed name "run"
  // lets the extension treat opts[key] as the static read opts.run.
  ExtRunner R({{"app/main.js",
                "var key = 'run';\n"
                "function use(opts) {\n"
                "  var f = opts[key];\n"
                "  f();\n"
                "}\n"
                "var tool = { run: function runImpl() {} };\n"
                "var fs = require('fs');\n"
                "fs.readFile('x', function(err, data) {\n"
                "  if (data.length > 3) { use(tool); }\n"
                "});\n"}});
  AnalysisOptions Plain;
  Plain.Mode = AnalysisMode::Hints;
  AnalysisResult Without = R.analyze(Plain);
  EXPECT_FALSE(R.hasEdge(Without.CG, "app/main.js", 4, "app/main.js", 6));

  AnalysisOptions Ext = Plain;
  Ext.UseUnknownArgHints = true;
  AnalysisResult With = R.analyze(Ext);
  EXPECT_TRUE(R.hasEdge(With.CG, "app/main.js", 4, "app/main.js", 6))
      << With.CG.toText(R.Ctx.files());
}

TEST(ExtensionsTest, UnknownArgHintsYieldToOrdinaryReadHints) {
  // When a site has real read hints, the name-based fallback must stay
  // inactive (the paper's precision guard).
  ExtRunner R({{"app/main.js",
                "var key = 'go';\n"
                "var known = { go: function knownGo() {} };\n"
                "function poly(x) { return x[key]; }\n"
                "poly(known);\n"}});
  // The natural call poly(known) produced a real read hint for line 3.
  SourceLoc ReadLoc;
  for (const auto &[Loc, Refs] : R.Hints.readHints())
    if (Loc.Line == 3)
      ReadLoc = Loc;
  ASSERT_TRUE(ReadLoc.isValid());
  // Forced execution later sees x = p*, so a proxy name may also exist;
  // the extension must skip the site either way.
  AnalysisOptions Ext;
  Ext.Mode = AnalysisMode::Hints;
  Ext.UseUnknownArgHints = true;
  AnalysisResult A = R.analyze(Ext);
  EXPECT_GT(A.NumCallEdges, 0u);
}

//===----------------------------------------------------------------------===//
// Eval-body analysis
//===----------------------------------------------------------------------===//

TEST(ExtensionsTest, EvalBodyAnalysisFindsInternalEdges) {
  // The eval'd code contains a *static* call to a program function. The
  // ordinary hints already capture the dynamic write; the extension also
  // analyzes the code string, discovering the call edge inside it.
  ExtRunner R({{"app/main.js",
                "var registry = {};\n"
                "function logRegistration() {}\n"
                "function impl_alpha() { return 1; }\n"
                "eval(\"logRegistration(); registry['alpha'] = "
                "impl_alpha;\");\n"
                "registry.alpha();\n"}});
  AnalysisOptions Plain;
  Plain.Mode = AnalysisMode::Hints;
  AnalysisResult Without = R.analyze(Plain);
  // The [DPW] hint resolves registry.alpha() even without eval analysis.
  EXPECT_TRUE(R.hasEdge(Without.CG, "app/main.js", 5, "app/main.js", 3));

  AnalysisOptions Ext = Plain;
  Ext.UseEvalBodyAnalysis = true;
  AnalysisResult With = R.analyze(Ext);
  EXPECT_TRUE(R.hasEdge(With.CG, "app/main.js", 5, "app/main.js", 3));
  // The logRegistration() call inside the eval'd string is only visible to
  // the extension; its call site lives in the eval pseudo-file.
  bool FoundEvalEdge = false;
  FileId MainFile = R.Ctx.files().lookup("app/main.js");
  for (const auto &[Site, Callees] : With.CG.edges())
    for (const SourceLoc &Callee : Callees)
      if (Site.File != MainFile && Callee.File == MainFile &&
          Callee.Line == 2)
        FoundEvalEdge = true;
  EXPECT_TRUE(FoundEvalEdge) << With.CG.toText(R.Ctx.files());
  EXPECT_GT(With.NumCallSites, Without.NumCallSites);
}

TEST(ExtensionsTest, EvalBodyAnalysisHandlesParseErrors) {
  ExtRunner R({{"app/main.js",
                "try { eval('var = broken('); } catch (e) {}\n"
                "function f() {}\n"
                "f();\n"}});
  AnalysisOptions Ext;
  Ext.Mode = AnalysisMode::Hints;
  Ext.UseEvalBodyAnalysis = true;
  AnalysisResult A = R.analyze(Ext);
  EXPECT_TRUE(R.hasEdge(A.CG, "app/main.js", 3, "app/main.js", 2))
      << "broken eval code must not derail the analysis";
}

//===----------------------------------------------------------------------===//
// Hint serialization and reuse
//===----------------------------------------------------------------------===//

TEST(ExtensionsTest, SerializeDeserializeRoundTrip) {
  ExtRunner R({{"app/main.js",
                "var o = {};\n"
                "var k = 'a b';\n" // Name with a space: exercises escaping.
                "o[k] = function spaced() {};\n"
                "var got = o['a b'];\n"
                "eval('var inEval = 1;');\n"},
               {"plugin-x/index.js", "exports.t = 1;"},
               {"app/dyn.js", "var m = require('plugin' + '-x');"}},
              {"app/main.js", "app/dyn.js"});
  std::string Text = R.Hints.serialize(R.Ctx.files());
  HintSet Back = HintSet::deserialize(Text, R.Ctx.files());
  EXPECT_EQ(Back.serialize(R.Ctx.files()), Text) << "stable round trip";
  EXPECT_EQ(Back.writeHints().size(), R.Hints.writeHints().size());
  EXPECT_EQ(Back.readHints().size(), R.Hints.readHints().size());
  EXPECT_EQ(Back.moduleHints().size(), R.Hints.moduleHints().size());
  EXPECT_EQ(Back.evalHints().size(), R.Hints.evalHints().size());
  ASSERT_FALSE(Back.writeHints().empty());
  EXPECT_EQ(Back.writeHints().begin()->Prop, "a b");
}

TEST(ExtensionsTest, DeserializeDropsUnknownFiles) {
  ExtRunner R({{"app/main.js", "var o = {};\n"
                               "o['k' + ''] = function f() {};\n"}});
  std::string Text = R.Hints.serialize(R.Ctx.files());
  // A context that never saw app/main.js cannot resolve the hints.
  FileTable Other;
  Other.add("unrelated.js");
  HintSet Back = HintSet::deserialize(Text, Other);
  EXPECT_TRUE(Back.writeHints().empty());
}

TEST(ExtensionsTest, MergeUnionsHints) {
  ExtRunner A({{"app/main.js", "var o = {};\n"
                               "o['x' + ''] = function fx() {};\n"}});
  ExtRunner B({{"app/main.js", "var o = {};\n"
                               "o['y' + ''] = function fy() {};\n"}});
  HintSet Merged = A.Hints;
  // Same file table layout (both projects have just app/main.js).
  Merged.merge(B.Hints);
  EXPECT_EQ(Merged.writeHints().size(), 2u);
  Merged.merge(B.Hints); // Idempotent.
  EXPECT_EQ(Merged.writeHints().size(), 2u);
}

TEST(ExtensionsTest, LibraryHintReuseAcrossApplications) {
  // The Section 6 scenario: approximate interpretation runs ONCE on the
  // library; the produced hints are serialized and reused for an
  // application that bundles the same library — without re-running the
  // pre-analysis on the app.
  const char *LibSource =
      "var names = ['start', 'stop'];\n"
      "var impls = {\n"
      "  start: function startImpl() { return 'up'; },\n"
      "  stop: function stopImpl() { return 'down'; }\n"
      "};\n"
      "names.forEach(function(n) {\n"
      "  exports[n] = impls[n];\n"
      "});\n";

  // Pass 1: the library alone.
  std::string Portable;
  {
    ExtRunner LibOnly({{"svc/index.js", LibSource},
                       {"app/main.js", "require('svc');"}});
    Portable = LibOnly.Hints.serialize(LibOnly.Ctx.files());
    EXPECT_FALSE(LibOnly.Hints.writeHints().empty());
  }

  // Pass 2: a different application using the library; no approximate
  // interpretation — only the imported hints.
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("svc/index.js", LibSource);
  Fs.addFile("app/main.js", "var svc = require('svc');\n"
                            "svc.start();\n"
                            "svc.stop();\n");
  ModuleLoader Loader(Ctx, Fs, Diags);
  Loader.parseAll();
  HintSet Imported = HintSet::deserialize(Portable, Ctx.files());
  EXPECT_FALSE(Imported.writeHints().empty());

  AnalysisOptions Opts;
  Opts.Mode = AnalysisMode::Hints;
  StaticAnalysis SA(Loader, Opts, &Imported);
  AnalysisResult A = SA.run();

  FileId AppFile = Ctx.files().lookup("app/main.js");
  FileId LibFile = Ctx.files().lookup("svc/index.js");
  auto HasEdge = [&](uint32_t SiteLine, uint32_t CalleeLine) {
    for (const auto &[Site, Callees] : A.CG.edges())
      if (Site.File == AppFile && Site.Line == SiteLine)
        for (const SourceLoc &Callee : Callees)
          if (Callee.File == LibFile && Callee.Line == CalleeLine)
            return true;
    return false;
  };
  EXPECT_TRUE(HasEdge(2, 3)) << "svc.start resolves from imported hints\n"
                             << A.CG.toText(Ctx.files());
  EXPECT_TRUE(HasEdge(3, 4)) << "svc.stop resolves from imported hints";
}

} // namespace
