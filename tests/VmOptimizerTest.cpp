//===- VmOptimizerTest.cpp - bytecode optimizer unit tests ----------------===//
//
// Direct tests of the peephole pass (fusion shapes, leader safety, jump
// remapping), the loader-level chunk cache, and runtime quickening /
// deoptimization. Cross-engine observable parity is covered separately by
// InterpreterSemanticsTest's differential harness and fuzzer; this file
// checks the mechanisms themselves via chunk inspection and the VmOptStats
// counters.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace jsai;

namespace {

/// Parses a one-module project and keeps the loader alive so chunks can be
/// compiled, optimized, and executed against it.
struct ChunkFixture {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;

  explicit ChunkFixture(const std::string &Source) {
    Fs.addFile("app/main.js", Source);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Loader->parseAll();
    EXPECT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());
  }

  FunctionDef *moduleFunc() {
    Module *M = Ctx.findModule("app/main.js");
    EXPECT_NE(M, nullptr);
    return M->Func;
  }

  std::unique_ptr<VmChunk> compile(bool Optimize) {
    std::unique_ptr<VmChunk> Chunk = VmCompiler(Ctx).compile(moduleFunc());
    if (Optimize)
      VmOptimizer().optimize(*Chunk);
    return Chunk;
  }

  size_t count(const VmChunk &Chunk, VmOp Op) {
    return size_t(std::count_if(Chunk.Code.begin(), Chunk.Code.end(),
                                [&](const VmInsn &I) { return I.Op == Op; }));
  }
};

TEST(VmOptimizerTest, FusesLoopGuardAndMarksChunk) {
  // `i < 10` compiles to LoadIdent(i) Const(10) BinaryValue(Lt)
  // JumpIfFalsePop; Const+cmp+branch collapses to ConstCmpBranchFalse.
  ChunkFixture F("var s = 0;\n"
                 "for (var i = 0; i < 10; i++) { s += i; }\n");
  std::unique_ptr<VmChunk> Plain = F.compile(false);
  std::unique_ptr<VmChunk> Opt = F.compile(true);
  EXPECT_FALSE(Plain->Optimized);
  EXPECT_TRUE(Opt->Optimized);
  EXPECT_LT(Opt->Code.size(), Plain->Code.size());
  EXPECT_GE(F.count(*Opt, VmOp::ConstCmpBranchFalse), 1u);
  // The generic pair must be gone from the guard; no bare BinaryValue
  // remains (survivors become BinaryValueProf).
  EXPECT_EQ(F.count(*Opt, VmOp::BinaryValue), 0u);
}

TEST(VmOptimizerTest, FusionRespectsJumpTargetLeaders) {
  // The while-loop back edge targets the condition's first instruction
  // (LoadIdent n). A fused run must never swallow that leader as a
  // non-first member, or the back edge would land mid-superinstruction.
  ChunkFixture F("var n = 5;\n"
                 "var hits = 0;\n"
                 "while (n > 0) { n -= 1; hits += 1; }\n"
                 "console.log(hits, n);\n");
  std::unique_ptr<VmChunk> Opt = F.compile(true);
  const std::vector<VmInsn> &Code = Opt->Code;
  // Every surviving jump operand must be in range; out-of-range or
  // mid-group targets would make this loop read garbage or diverge when
  // executed (executed below as the real check).
  for (const VmInsn &I : Code) {
    switch (I.Op) {
    case VmOp::Jump:
    case VmOp::JumpIfFalsePop:
    case VmOp::JumpIfTruePop:
      EXPECT_LE(I.A, uint32_t(Code.size()));
      break;
    case VmOp::CmpBranchFalse:
    case VmOp::LogicalJump:
      EXPECT_LE(I.B, uint32_t(Code.size()));
      break;
    case VmOp::ConstCmpBranchFalse:
      EXPECT_LE(I.C, uint32_t(Code.size()));
      break;
    default:
      break;
    }
  }
}

TEST(VmOptimizerTest, StepRunsCollapseToStepN) {
  // Nested expressions emit runs of bare Step charges; the optimizer folds
  // each maximal run into one StepN whose A operand is the run length.
  ChunkFixture F("var a = 1, b = 2, c = 3;\n"
                 "var r = ((a + b) * (b + c)) - ((a * c) + (b * b));\n"
                 "console.log(r);\n");
  std::unique_ptr<VmChunk> Plain = F.compile(false);
  std::unique_ptr<VmChunk> Opt = F.compile(true);
  size_t PlainSteps = F.count(*Plain, VmOp::Step);
  size_t OptSteps = F.count(*Opt, VmOp::Step);
  size_t StepNs = F.count(*Opt, VmOp::StepN);
  EXPECT_GE(PlainSteps, 2u);
  EXPECT_GE(StepNs, 1u);
  // Total charged steps are preserved: every StepN charges >= 2.
  uint64_t ChargedViaStepN = 0;
  for (const VmInsn &I : Opt->Code)
    if (I.Op == VmOp::StepN) {
      EXPECT_GE(I.A, 2u);
      ChargedViaStepN += I.A;
    }
  EXPECT_EQ(PlainSteps, OptSteps + ChargedViaStepN);
}

TEST(VmOptimizerTest, InstallsProfVariantsOnlyWhenOptimizing) {
  ChunkFixture F("function mix(o, k) { return o.f + o[k]; }\n"
                 "console.log(mix({ f: 1, g: 2 }, 'g'));\n");
  std::unique_ptr<VmChunk> Plain = F.compile(false);
  EXPECT_EQ(F.count(*Plain, VmOp::BinaryValueProf), 0u);
  EXPECT_EQ(F.count(*Plain, VmOp::GetMemberProf), 0u);
  std::unique_ptr<VmChunk> Opt = F.compile(true);
  EXPECT_EQ(F.count(*Opt, VmOp::BinaryValue), 0u);
  EXPECT_EQ(F.count(*Opt, VmOp::GetMember), 0u);
}

TEST(VmOptimizerTest, ChunkCacheReusesAcrossInterpreters) {
  // Two VM interpreters over one loader: the second run recompiles
  // nothing. This is the serve/suite reuse path (one loader per project,
  // many executions).
  ChunkFixture F("function work(n) {\n"
                 "  var s = 0;\n"
                 "  for (var i = 0; i < n; i++) { s += i; }\n"
                 "  return s;\n"
                 "}\n"
                 "console.log(work(100));\n");
  InterpOptions Opts;
  Opts.Engine = InterpEngineKind::Vm;
  Opts.VmOptimize = true;

  Interpreter First(*F.Loader, Opts);
  First.loadModule("app/main.js");
  const VmOptStats &After1 = F.Loader->vmChunkCache().Stats;
  uint64_t Compiles1 = After1.ChunkCompiles;
  EXPECT_GE(Compiles1, 2u) << "module body and work() should both compile";
  EXPECT_EQ(After1.ChunkReuses, 0u);
  EXPECT_GE(After1.FusedInsns, 1u);
  EXPECT_GE(First.compiledVmChunks(), 2u);

  Interpreter Second(*F.Loader, Opts);
  Second.loadModule("app/main.js");
  const VmOptStats &After2 = F.Loader->vmChunkCache().Stats;
  EXPECT_EQ(After2.ChunkCompiles, Compiles1) << "second run recompiled";
  EXPECT_EQ(After2.ChunkReuses, Compiles1);
  // The per-interpreter footprint still counts chunks this interpreter
  // resolved, even though they came from the shared cache.
  EXPECT_GE(Second.compiledVmChunks(), 2u);
}

TEST(VmOptimizerTest, OptAndPlainChunksAreSeparateCacheSlots) {
  // An optimized chunk contains Prof/quickened opcodes that the off-mode
  // dispatch must never see; the cache keeps one slot per mode.
  ChunkFixture F("var s = 0;\n"
                 "for (var i = 0; i < 50; i++) { s += i; }\n"
                 "console.log(s);\n");
  InterpOptions OptOn;
  OptOn.Engine = InterpEngineKind::Vm;
  OptOn.VmOptimize = true;
  InterpOptions OptOff = OptOn;
  OptOff.VmOptimize = false;

  Interpreter A(*F.Loader, OptOn);
  A.loadModule("app/main.js");
  uint64_t CompilesAfterOpt = F.Loader->vmChunkCache().Stats.ChunkCompiles;
  Interpreter B(*F.Loader, OptOff);
  B.loadModule("app/main.js");
  const VmOptStats &S = F.Loader->vmChunkCache().Stats;
  EXPECT_EQ(S.ChunkCompiles, 2 * CompilesAfterOpt)
      << "off-mode run must compile its own plain chunks";
  EXPECT_EQ(S.ChunkReuses, 0u);
  EXPECT_EQ(A.consoleOutput(), B.consoleOutput());
}

TEST(VmOptimizerTest, QuickensHotNumberSitesAndCountsThem) {
  // The loop body executes far past VmQuickenThreshold, so its arithmetic
  // and comparison sites must rewrite themselves to QNum*/QArith* forms.
  ChunkFixture F("var s = 0;\n"
                 "for (var i = 0; i < 200; i++) { s = s + i * 2; }\n"
                 "console.log(s);\n");
  InterpOptions Opts;
  Opts.Engine = InterpEngineKind::Vm;
  Opts.VmOptimize = true;
  Interpreter I(*F.Loader, Opts);
  Completion R = I.loadModule("app/main.js");
  EXPECT_FALSE(R.isThrow());
  const VmOptStats &S = F.Loader->vmChunkCache().Stats;
  EXPECT_GE(S.QuickenedSites, 1u) << "hot numeric sites never quickened";
  EXPECT_EQ(S.Deopts, 0u) << "monomorphic number loop must not deopt";
}

TEST(VmOptimizerTest, DeoptsWhenSiteTurnsPolymorphic) {
  // add() runs number-number long enough to quicken, then sees strings:
  // the QNum site must deopt back to the generic form and still produce
  // the correct concatenation. The outer + has parenthesized operands, so
  // it survives fusion as a Prof site (a plain `a + b` fuses into
  // IdentBinary, which deliberately has no Prof slot).
  ChunkFixture F("function add(a, b) { return (a + b) + (b + a); }\n"
                 "var s = 0;\n"
                 "for (var i = 0; i < 50; i++) { s = add(i, i); }\n"
                 "console.log(s, add('x', 'y'), add(1, 2));\n");
  InterpOptions Opts;
  Opts.Engine = InterpEngineKind::Vm;
  Opts.VmOptimize = true;
  Interpreter I(*F.Loader, Opts);
  Completion R = I.loadModule("app/main.js");
  EXPECT_FALSE(R.isThrow());
  ASSERT_EQ(I.consoleOutput().size(), 1u);
  EXPECT_EQ(I.consoleOutput()[0], "196 xyyx 6");
  const VmOptStats &S = F.Loader->vmChunkCache().Stats;
  EXPECT_GE(S.QuickenedSites, 1u);
  EXPECT_GE(S.Deopts, 1u) << "string operands must force a deopt";
}

TEST(VmOptimizerTest, TightStepBudgetAbortsIdenticallyWithFusion) {
  // StepN charges a whole fused run at once; the abort point (observed via
  // console output and budgetExhausted) must match the unoptimized VM.
  const char *Src = "var n = 0;\n"
                    "for (var i = 0; i < 100000; i++) {\n"
                    "  n = n + i + i * 2 - (i % 7);\n"
                    "  console.log(i, n);\n"
                    "}\n";
  for (uint64_t MaxSteps : {50u, 137u, 400u, 1001u}) {
    ChunkFixture FPlain(Src);
    ChunkFixture FOpt(Src);
    InterpOptions Plain;
    Plain.Engine = InterpEngineKind::Vm;
    Plain.VmOptimize = false;
    Plain.MaxSteps = MaxSteps;
    InterpOptions Opt = Plain;
    Opt.VmOptimize = true;
    Interpreter A(*FPlain.Loader, Plain);
    A.loadModule("app/main.js");
    Interpreter B(*FOpt.Loader, Opt);
    B.loadModule("app/main.js");
    EXPECT_TRUE(A.budgetExhausted());
    EXPECT_EQ(A.budgetExhausted(), B.budgetExhausted());
    EXPECT_EQ(A.consoleOutput(), B.consoleOutput())
        << "abort point diverged at MaxSteps=" << MaxSteps;
  }
}

TEST(VmOptimizerTest, VmOpNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> Names;
  for (size_t I = 0; I != VmNumOps; ++I) {
    const char *N = vmOpName(VmOp(I));
    ASSERT_NE(N, nullptr);
    EXPECT_STRNE(N, "?") << "opcode " << I << " missing from vmOpName";
    Names.push_back(N);
  }
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(std::adjacent_find(Names.begin(), Names.end()), Names.end())
      << "duplicate opcode name";
}

} // namespace
