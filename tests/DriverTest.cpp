//===- DriverTest.cpp - CorpusDriver, deadlines, and telemetry ------------===//
//
// Covers the parallel corpus driver's three contracts:
//  1. determinism — jobs=4 produces byte-identical aggregate metrics and
//     JSONL report to jobs=1;
//  2. graceful degradation — a non-terminating project hits the approx
//     deadline, degrades to baseline-only, and the run still completes;
//  3. no false cancellations — tokens never fire when no deadline is set.
//
//===----------------------------------------------------------------------===//

#include "corpus/BenchmarkSuite.h"
#include "driver/CorpusDriver.h"
#include "driver/Telemetry.h"
#include "support/Cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace jsai;

namespace {

/// A small slice of the embedded corpus — big enough to exercise stealing
/// with 4 workers, small enough to keep the test quick.
std::vector<ProjectSpec> smallSuite() {
  SuiteOptions SO;
  SO.Count = 16;
  return buildBenchmarkSuite(SO);
}

/// A trivial well-behaved project.
ProjectSpec trivialProject(const std::string &Name) {
  ProjectSpec Spec;
  Spec.Name = Name;
  Spec.Pattern = "trivial";
  Spec.Files.addFile("app/main.js", "function f() { return 1; }\n"
                                    "var r = f();\n");
  return Spec;
}

/// A project whose main module never terminates on its own. The driver
/// test gives the approx phase effectively unlimited budgets, so only the
/// wall-clock deadline can stop it.
ProjectSpec infiniteProject() {
  ProjectSpec Spec;
  Spec.Name = "pathological-spin";
  Spec.Pattern = "infinite-loop";
  Spec.Files.addFile("app/main.js", "var i = 0;\n"
                                    "while (true) { i = i + 1; }\n");
  return Spec;
}

/// Budgets so large the spin loop cannot exhaust them in test time.
ApproxOptions unboundedApprox() {
  ApproxOptions AO;
  AO.MaxLoopIterations = ~uint64_t(0) / 2;
  AO.MaxSteps = ~uint64_t(0) / 2;
  return AO;
}

//===----------------------------------------------------------------------===//
// CancellationToken
//===----------------------------------------------------------------------===//

TEST(CancellationTokenTest, UnarmedNeverFires) {
  CancellationToken T;
  for (int I = 0; I != 10000; ++I)
    EXPECT_FALSE(T.expired());
  EXPECT_FALSE(T.cancelled());
}

TEST(CancellationTokenTest, ExpiresAfterDeadline) {
  CancellationToken T;
  T.arm(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Polls are throttled; drive past one throttle window.
  bool Fired = false;
  for (int I = 0; I != 1000 && !Fired; ++I)
    Fired = T.expired();
  EXPECT_TRUE(Fired);
  EXPECT_TRUE(T.cancelled());
  // The latch holds without further clock reads.
  EXPECT_TRUE(T.expired());
}

TEST(CancellationTokenTest, RearmClearsLatch) {
  CancellationToken T;
  T.arm(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  bool Fired = false;
  for (int I = 0; I != 1000 && !Fired; ++I)
    Fired = T.expired();
  EXPECT_TRUE(Fired);
  T.arm(1000.0);
  EXPECT_FALSE(T.expired());
  EXPECT_FALSE(T.cancelled());
  T.disarm();
  EXPECT_FALSE(T.expired());
}

//===----------------------------------------------------------------------===//
// Determinism under parallelism
//===----------------------------------------------------------------------===//

TEST(DriverTest, ParallelRunMatchesSerialByteForByte) {
  std::vector<ProjectSpec> Suite = smallSuite();

  DriverOptions Serial;
  Serial.Jobs = 1;
  RunSummary S1 = CorpusDriver(Serial).run(Suite);

  DriverOptions Parallel;
  Parallel.Jobs = 4;
  RunSummary S4 = CorpusDriver(Parallel).run(Suite);

  ASSERT_EQ(S1.Jobs.size(), Suite.size());
  ASSERT_EQ(S4.Jobs.size(), Suite.size());
  EXPECT_EQ(S1.Totals, S4.Totals);

  // Reports are in project order and timing-free by default, so the full
  // JSONL output must match byte for byte.
  EXPECT_EQ(renderReport(S1, Serial), renderReport(S4, Parallel));

  // Per-project results, not just aggregates.
  for (size_t I = 0; I != Suite.size(); ++I) {
    EXPECT_EQ(S1.Jobs[I].Report.Name, S4.Jobs[I].Report.Name);
    EXPECT_EQ(S1.Jobs[I].Report.Extended.NumCallEdges,
              S4.Jobs[I].Report.Extended.NumCallEdges)
        << "project " << S1.Jobs[I].Report.Name;
    EXPECT_EQ(S1.Jobs[I].Report.NumHints, S4.Jobs[I].Report.NumHints)
        << "project " << S1.Jobs[I].Report.Name;
  }
}

TEST(DriverTest, MoreWorkersThanJobsIsClamped) {
  std::vector<ProjectSpec> Suite;
  Suite.push_back(trivialProject("only"));
  DriverOptions DO;
  DO.Jobs = 16;
  RunSummary S = CorpusDriver(DO).run(Suite);
  EXPECT_EQ(S.Workers, 1u);
  ASSERT_EQ(S.Jobs.size(), 1u);
  EXPECT_EQ(S.Jobs[0].Report.Outcome, ProjectOutcome::Ok);
}

TEST(DriverTest, EmptySuite) {
  DriverOptions DO;
  DO.Jobs = 4;
  RunSummary S = CorpusDriver(DO).run({});
  EXPECT_EQ(S.Jobs.size(), 0u);
  EXPECT_EQ(S.Totals.Projects, 0u);
}

//===----------------------------------------------------------------------===//
// Deadlines and graceful degradation
//===----------------------------------------------------------------------===//

TEST(DriverTest, InfiniteLoopDegradesUnderApproxDeadline) {
  std::vector<ProjectSpec> Suite;
  Suite.push_back(trivialProject("fine-a"));
  Suite.push_back(infiniteProject());
  Suite.push_back(trivialProject("fine-b"));
  Suite.push_back(trivialProject("fine-c"));

  DriverOptions DO;
  DO.Jobs = 2;
  DO.Approx = unboundedApprox();
  DO.Deadlines.ApproxSeconds = 0.5;

  auto Start = std::chrono::steady_clock::now();
  RunSummary S = CorpusDriver(DO).run(Suite);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  // The run completed (the spin project did not hang it) and stayed in
  // the same order of magnitude as the deadline.
  ASSERT_EQ(S.Jobs.size(), 4u);
  EXPECT_LT(Wall, 30.0);

  const JobResult &Spin = S.Jobs[1];
  EXPECT_EQ(Spin.Report.Outcome, ProjectOutcome::Degraded);
  EXPECT_EQ(Spin.Report.DegradedPhase, "approx");
  // Baseline-only fallback: no hints, extended mirrors baseline.
  EXPECT_EQ(Spin.Report.NumHints, 0u);
  EXPECT_EQ(Spin.Report.Extended.NumCallEdges,
            Spin.Report.Baseline.NumCallEdges);

  for (size_t I : {size_t(0), size_t(2), size_t(3)}) {
    EXPECT_EQ(S.Jobs[I].Report.Outcome, ProjectOutcome::Ok)
        << "project " << S.Jobs[I].Report.Name;
    EXPECT_TRUE(S.Jobs[I].Report.DegradedPhase.empty());
  }
  EXPECT_EQ(S.Totals.Ok, 3u);
  EXPECT_EQ(S.Totals.Degraded, 1u);
  EXPECT_EQ(S.Totals.Errors, 0u);

  // Telemetry reflects the outcome.
  std::string Record = jobRecordJson(Spin, /*IncludeTimings=*/false);
  EXPECT_NE(Record.find("\"outcome\":\"degraded\""), std::string::npos);
  EXPECT_NE(Record.find("\"degraded_phase\":\"approx\""), std::string::npos);
}

TEST(DriverTest, PreLatchedInterruptCancelsEveryProject) {
  // SIGINT before any work starts: workers refuse to claim, every slot is
  // back-filled as cancelled with its suite identity, and the partial
  // report still renders one record per project plus the manifest.
  std::vector<ProjectSpec> Suite = smallSuite();
  CancellationToken Interrupt;
  Interrupt.cancelNow();

  DriverOptions DO;
  DO.Jobs = 4;
  DO.Interrupt = &Interrupt;
  RunSummary S = CorpusDriver(DO).run(Suite);

  ASSERT_EQ(S.Jobs.size(), Suite.size());
  EXPECT_EQ(S.Totals.Cancelled, Suite.size());
  EXPECT_EQ(S.Totals.Ok, 0u);
  for (size_t I = 0; I != Suite.size(); ++I) {
    EXPECT_EQ(S.Jobs[I].Report.Name, Suite[I].Name);
    EXPECT_EQ(S.Jobs[I].Report.Pattern, Suite[I].Pattern);
    EXPECT_EQ(S.Jobs[I].Report.Outcome, ProjectOutcome::Cancelled);
  }

  std::string Record = jobRecordJson(S.Jobs[0], /*IncludeTimings=*/false);
  EXPECT_NE(Record.find("\"outcome\":\"cancelled\""), std::string::npos);
  std::string Report = renderReport(S, DO);
  EXPECT_EQ(std::count(Report.begin(), Report.end(), '\n'),
            long(Suite.size()) + 1);
  EXPECT_NE(Report.find("\"cancelled\":" + std::to_string(Suite.size())),
            std::string::npos);
}

TEST(DriverTest, NoDeadlineTokenNeverFires) {
  // Threading an unarmed token through a full approx run must never
  // cancel anything.
  ProjectSpec Spec = trivialProject("quiet");
  CancellationToken Token;
  ApproxOptions AO;
  AO.Cancel = &Token;
  ProjectAnalyzer A(Spec, AO);
  EXPECT_GE(A.hints().size(), 0u);
  EXPECT_FALSE(Token.cancelled());

  // And the pipeline without deadlines reports Ok.
  Pipeline P;
  ProjectReport R = P.analyzeProject(Spec);
  EXPECT_EQ(R.Outcome, ProjectOutcome::Ok);
  EXPECT_TRUE(R.DegradedPhase.empty());
}

//===----------------------------------------------------------------------===//
// Telemetry schema
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TelemetryTest, ReportShapeAndTimingGate) {
  std::vector<ProjectSpec> Suite;
  Suite.push_back(trivialProject("t"));
  DriverOptions DO;
  RunSummary S = CorpusDriver(DO).run(Suite);

  std::string Report = renderReport(S, DO);
  // One record per project plus the manifest, newline-terminated JSONL.
  EXPECT_EQ(std::count(Report.begin(), Report.end(), '\n'), 2);
  EXPECT_NE(Report.find("\"project\":\"t\""), std::string::npos);
  EXPECT_NE(Report.find("\"manifest\":{"), std::string::npos);
  EXPECT_NE(Report.find("\"outcome\":\"ok\""), std::string::npos);
  // Runtime-layer counters ride along in every record; they are counters,
  // not timings, so they are not gated.
  EXPECT_NE(Report.find("\"interp\":{"), std::string::npos);
  EXPECT_NE(Report.find("\"ic_hit_rate\""), std::string::npos);
  EXPECT_NE(Report.find("\"shape_transitions\""), std::string::npos);
  // Timing fields are gated off by default (determinism contract).
  EXPECT_EQ(Report.find("\"timings\""), std::string::npos);
  EXPECT_EQ(Report.find("\"wall_s\""), std::string::npos);
  EXPECT_EQ(Report.find("\"jobs\""), std::string::npos);

  DriverOptions Timed = DO;
  Timed.IncludeTimings = true;
  std::string TimedReport = renderReport(S, Timed);
  EXPECT_NE(TimedReport.find("\"timings\""), std::string::npos);
  EXPECT_NE(TimedReport.find("\"wall_s\""), std::string::npos);
}

} // namespace
