//===- PropertySweepTest.cpp - Property-based corpus sweeps ------------------===//
//
// Parameterized invariants over many generated projects (seed x pattern x
// size): the relations that must hold for ANY program, regardless of the
// metric values — hint monotonicity, metric consistency, determinism, and
// soundness of the relational rules relative to the baseline.
//
//===----------------------------------------------------------------------===//

#include "callgraph/VulnerabilityScan.h"
#include "corpus/PatternGenerators.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

using GeneratorFn = ProjectSpec (*)(Rng &, unsigned);

struct SweepParam {
  GeneratorFn Fn;
  const char *Pattern;
  uint64_t Seed;
  unsigned Size;
};

class CorpusInvariantTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CorpusInvariantTest, HoldsOnGeneratedProject) {
  const SweepParam &P = GetParam();
  Rng R(P.Seed);
  ProjectSpec Spec = P.Fn(R, P.Size);
  Spec.Name = std::string(P.Pattern) + "-sweep";

  ProjectAnalyzer A(Spec);
  EXPECT_FALSE(A.diagnostics().hasErrors())
      << A.diagnostics().render(A.context().files());

  AnalysisResult Base = A.analyze(AnalysisMode::Baseline);
  AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
  AnalysisResult Over = A.analyze(AnalysisMode::OverApprox);

  // --- Metric consistency (any mode).
  for (const AnalysisResult *Res : {&Base, &Ext, &Over}) {
    EXPECT_LE(Res->NumResolvedCallSites, Res->NumCallSites);
    EXPECT_LE(Res->NumMonomorphicCallSites, Res->NumCallSites);
    EXPECT_GE(Res->NumCallEdges, Res->NumResolvedCallSites);
    EXPECT_EQ(Res->NumReachableFunctions, Res->ReachableFunctions.size());
    EXPECT_GE(Res->resolvedFraction(), 0.0);
    EXPECT_LE(Res->resolvedFraction(), 1.0);
  }
  EXPECT_EQ(Base.NumCallSites, Ext.NumCallSites)
      << "hint application must not change the call-site population";

  // --- Hint monotonicity: the extended call graph contains the baseline.
  for (const auto &[Site, Callees] : Base.CG.edges())
    for (const SourceLoc &Callee : Callees)
      EXPECT_TRUE(Ext.CG.hasEdge(Site, Callee))
          << "hints lost a baseline edge at "
          << A.context().files().format(Site);
  EXPECT_GE(Ext.NumCallEdges, Base.NumCallEdges);
  EXPECT_GE(Ext.NumReachableFunctions, Base.NumReachableFunctions);
  EXPECT_GE(Ext.NumResolvedCallSites, Base.NumResolvedCallSites);
  EXPECT_LE(Ext.NumMonomorphicCallSites, Base.NumMonomorphicCallSites + 1);

  // --- Approximate interpretation sanity.
  const ApproxStats &Stats = A.approxStats();
  EXPECT_LE(Stats.NumFunctionsVisited, Stats.NumFunctionsTotal);
  EXPECT_GE(Stats.visitedFraction(), 0.0);
  EXPECT_LE(Stats.visitedFraction(), 1.0);

  // --- Runtime property-system counters are internally consistent.
  const InterpStats &IS = Stats.Interp;
  EXPECT_GE(IS.ShapeTransitions, IS.ShapesCreated)
      << "every materialized shape is reached by a transition";
  EXPECT_GE(IS.icHitRate(), 0.0);
  EXPECT_LE(IS.icHitRate(), 1.0);

  // --- Inline caches are a pure optimization: disabling them must change
  // neither the hints nor the analysis built on them.
  ApproxOptions NoIC;
  NoIC.EnableInlineCaches = false;
  ProjectAnalyzer ANoIC(Spec, NoIC);
  EXPECT_EQ(ANoIC.hints().size(), A.hints().size());
  AnalysisResult ExtNoIC = ANoIC.analyze(AnalysisMode::Hints);
  EXPECT_EQ(ExtNoIC.NumCallEdges, Ext.NumCallEdges);
  EXPECT_EQ(ExtNoIC.NumReachableFunctions, Ext.NumReachableFunctions);
  EXPECT_EQ(ANoIC.approxStats().Interp.icHits() +
                ANoIC.approxStats().Interp.icMisses(),
            0u)
      << "disabled caches must not count accesses";

  // --- Dynamic CG relations.
  if (Spec.hasDynamicCallGraph()) {
    const CallGraph &Dyn = A.dynamicCallGraph();
    RecallPrecision BaseRP = compareCallGraphs(Base.CG, Dyn);
    RecallPrecision ExtRP = compareCallGraphs(Ext.CG, Dyn);
    EXPECT_GE(ExtRP.Recall, BaseRP.Recall - 1e-9);
    EXPECT_GE(ExtRP.Recall, 0.0);
    EXPECT_LE(ExtRP.Recall, 1.0);
    EXPECT_GE(ExtRP.Precision, 0.0);
    EXPECT_LE(ExtRP.Precision, 1.0);
    // Over-approximation is at least as sound as hints on dynamic writes.
    RecallPrecision OverRP = compareCallGraphs(Over.CG, Dyn);
    EXPECT_GE(OverRP.Recall + 1e-9, BaseRP.Recall);
  }

  // --- Vulnerability scan consistency.
  VulnerabilityReport Rep = scanVulnerabilities(A.context(), Ext, "app");
  EXPECT_LE(Rep.NumReachable, Rep.NumTotal);

  // --- Determinism: a fresh analyzer reproduces the numbers exactly.
  Rng R2(P.Seed);
  ProjectSpec Spec2 = P.Fn(R2, P.Size);
  Spec2.Name = Spec.Name;
  ProjectAnalyzer A2(Spec2);
  AnalysisResult Ext2 = A2.analyze(AnalysisMode::Hints);
  EXPECT_EQ(Ext2.NumCallEdges, Ext.NumCallEdges);
  EXPECT_EQ(Ext2.NumReachableFunctions, Ext.NumReachableFunctions);
  EXPECT_EQ(A2.hints().size(), A.hints().size());
  // ... including the runtime counters, which feed telemetry.
  const InterpStats &IS2 = A2.approxStats().Interp;
  EXPECT_EQ(IS2.ICGetHits, IS.ICGetHits);
  EXPECT_EQ(IS2.ICGetMisses, IS.ICGetMisses);
  EXPECT_EQ(IS2.ICSetHits, IS.ICSetHits);
  EXPECT_EQ(IS2.ICSetMisses, IS.ICSetMisses);
  EXPECT_EQ(IS2.ShapesCreated, IS.ShapesCreated);
  EXPECT_EQ(IS2.ShapeTransitions, IS.ShapeTransitions);
  EXPECT_EQ(IS2.DictionaryConversions, IS.DictionaryConversions);
}

std::vector<SweepParam> sweepParams() {
  const std::pair<GeneratorFn, const char *> Gens[] = {
      {&makeExpressLike, "express"},   {&makeEventHub, "eventhub"},
      {&makePluginRegistry, "plugreg"}, {&makeOopLibrary, "oop"},
      {&makeDelegator, "delegator"},    {&makeEvalInit, "evalinit"},
      {&makeDynamicLoader, "dynload"},  {&makeUtilityLib, "utility"},
      {&makeMiddlewareChain, "midware"},
  };
  std::vector<SweepParam> Out;
  for (const auto &[Fn, Name] : Gens)
    for (uint64_t Seed : {101u, 202u, 303u})
      for (unsigned Size : {0u, 2u})
        Out.push_back({Fn, Name, Seed, Size});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorpusInvariantTest, ::testing::ValuesIn(sweepParams()),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return std::string(Info.param.Pattern) + "_s" +
             std::to_string(Info.param.Seed) + "_z" +
             std::to_string(Info.param.Size);
    });

} // namespace
