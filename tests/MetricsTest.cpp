//===- MetricsTest.cpp - Ratio guards on degenerate inputs -------------------===//
//
// The evaluation metrics divide by call-site, edge, and function counts;
// all of them must stay NaN-free on degenerate projects (no call sites, no
// dynamic edges, no functions).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"
#include "callgraph/Metrics.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace jsai;

namespace {

TEST(MetricsTest, EmptyModuleProjectHasFiniteRatios) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  Fs.addFile("app/main.js", "");
  ModuleLoader Loader(Ctx, Fs, Diags);
  Loader.parseAll();
  ASSERT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());

  StaticAnalysis SA(Loader);
  AnalysisResult R = SA.run();
  EXPECT_EQ(R.NumCallSites, 0u);
  EXPECT_EQ(R.resolvedFraction(), 0.0);
  EXPECT_EQ(R.monomorphicFraction(), 0.0);
  EXPECT_TRUE(std::isfinite(R.resolvedFraction()));
  EXPECT_TRUE(std::isfinite(R.monomorphicFraction()));
}

TEST(MetricsTest, EmptyCallGraphComparisonIsFinite) {
  CallGraph Static, Dynamic;
  RecallPrecision RP = compareCallGraphs(Static, Dynamic);
  // Vacuous comparisons use the sound sentinel 1.0, never NaN.
  EXPECT_EQ(RP.Recall, 1.0);
  EXPECT_EQ(RP.Precision, 1.0);
  EXPECT_EQ(RP.DynamicEdges, 0u);
  EXPECT_EQ(RP.MatchedEdges, 0u);
}

TEST(MetricsTest, RelativeIncreaseFromZeroIsZero) {
  EXPECT_EQ(relativeIncrease(0.0, 5.0), 0.0);
  EXPECT_TRUE(std::isfinite(relativeIncrease(0.0, 0.0)));
}

TEST(MetricsTest, VisitedFractionWithNoFunctionsIsZero) {
  ApproxStats S;
  EXPECT_EQ(S.visitedFraction(), 0.0);
  EXPECT_TRUE(std::isfinite(S.visitedFraction()));
}

} // namespace
