//===- BuiltinModelsTest.cpp - Static models of the standard library ---------===//
//
// Each test checks that one builtin's constraint model produces the same
// dataflow the concrete interpreter exhibits — the property that keeps the
// baseline analysis comparable to Jelly.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct ModelRunner {
  AstContext Ctx;
  DiagnosticEngine Diags;
  FileSystem Fs;
  std::unique_ptr<ModuleLoader> Loader;

  explicit ModelRunner(const std::string &MainSource) {
    Fs.addFile("app/main.js", MainSource);
    Loader = std::make_unique<ModuleLoader>(Ctx, Fs, Diags);
    Loader->parseAll();
    EXPECT_FALSE(Diags.hasErrors()) << Diags.render(Ctx.files());
  }

  AnalysisResult baseline() {
    StaticAnalysis SA(*Loader);
    return SA.run();
  }

  bool hasEdge(const CallGraph &CG, uint32_t SiteLine, uint32_t CalleeLine) {
    FileId F = Ctx.files().lookup("app/main.js");
    for (const auto &[Site, Callees] : CG.edges()) {
      if (Site.File != F || Site.Line != SiteLine)
        continue;
      for (const SourceLoc &Callee : Callees)
        if (Callee.File == F && Callee.Line == CalleeLine)
          return true;
    }
    return false;
  }
};

TEST(BuiltinModelsTest, ArrayPushPopFlow) {
  ModelRunner R("var stack = [];\n"
                "stack.push(function pushed() {});\n"
                "var f = stack.pop();\n"
                "f();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 2)) << A.CG.toText(R.Ctx.files());
}

TEST(BuiltinModelsTest, ArrayShiftUnshiftFlow) {
  ModelRunner R("var q = [];\n"
                "q.unshift(function queued() {});\n"
                "var f = q.shift();\n"
                "f();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 2));
}

TEST(BuiltinModelsTest, ArrayMapResultElements) {
  ModelRunner R("var fns = [1].map(function make(x) {\n"
                "  return function made() {};\n"
                "});\n"
                "fns.forEach(function run(f) { f(); });");
  AnalysisResult A = R.baseline();
  // The mapped closure flows into the result array and out at f().
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 2)) << A.CG.toText(R.Ctx.files());
}

TEST(BuiltinModelsTest, ArrayFilterKeepsElements) {
  ModelRunner R("var fns = [function kept() {}].filter(function pred(f) {\n"
                "  return true;\n"
                "});\n"
                "var g = fns.pop();\n"
                "g();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 5, 1));
}

TEST(BuiltinModelsTest, ArrayFindFlowsElement) {
  ModelRunner R("var f = [function target() {}].find(function pred(x) {\n"
                "  return true;\n"
                "});\n"
                "f();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 1));
}

TEST(BuiltinModelsTest, ArrayReduceAccumulatorFlow) {
  ModelRunner R("var out = [function a() {}].reduce(function fold(acc, x) {\n"
                "  return x;\n"
                "}, function init() {});\n"
                "out();");
  AnalysisResult A = R.baseline();
  // Both the initial value and the callback's return flow to the result.
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 1)) << A.CG.toText(R.Ctx.files());
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 3));
}

TEST(BuiltinModelsTest, ArrayConcatMergesElements) {
  ModelRunner R("var merged = [function x() {}].concat([function y() {}]);\n"
                "merged.forEach(function run(f) { f(); });");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 1));
}

TEST(BuiltinModelsTest, ArraySliceThroughCall) {
  // The slice.call(arguments, N) idiom from Figure 1(d).
  ModelRunner R("var slice = Array.prototype.slice;\n"
                "function take() {\n"
                "  var rest = slice.call(arguments, 0);\n"
                "  var f = rest.pop();\n"
                "  f();\n"
                "}\n"
                "take(function passed() {});");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 5, 7)) << A.CG.toText(R.Ctx.files());
}

TEST(BuiltinModelsTest, ArraySortCallbackAndChaining) {
  ModelRunner R("var arr = [function a() {}, function b() {}];\n"
                "var sorted = arr.sort(function cmp(x, y) { return 0; });\n"
                "var f = sorted.pop();\n"
                "f();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 2)) << "comparator edge";
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 1)) << "sort returns the receiver";
}

TEST(BuiltinModelsTest, ObjectValuesFlowsPropertyValues) {
  ModelRunner R("var table = { m: function method() {} };\n"
                "Object.values(table).forEach(function run(f) { f(); });");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 1)) << A.CG.toText(R.Ctx.files());
}

TEST(BuiltinModelsTest, ObjectCreatePrototypeChain) {
  ModelRunner R("var proto = { greet: function greetImpl() {} };\n"
                "var child = Object.create(proto);\n"
                "child.greet();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 3, 1));
}

TEST(BuiltinModelsTest, ObjectSetPrototypeOf) {
  ModelRunner R("var base = { m: function impl() {} };\n"
                "var obj = {};\n"
                "Object.setPrototypeOf(obj, base);\n"
                "obj.m();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 1));
}

TEST(BuiltinModelsTest, ObjectDefinePropertyLiteralName) {
  ModelRunner R("var o = {};\n"
                "Object.defineProperty(o, 'm', { value: function impl() {} "
                "});\n"
                "o.m();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 3, 2))
      << "literal-name defineProperty is statically modeled";
}

TEST(BuiltinModelsTest, ObjectGetOwnPropertyDescriptorLiteralName) {
  ModelRunner R("var src = { m: function impl() {} };\n"
                "var d = Object.getOwnPropertyDescriptor(src, 'm');\n"
                "var f = d.value;\n"
                "f();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 1));
}

TEST(BuiltinModelsTest, FunctionBindApproximation) {
  ModelRunner R("var ctx = { g: function target() {} };\n"
                "function caller() { this.g(); }\n"
                "var bound = caller.bind(ctx);\n"
                "bound();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 2)) << "bound call reaches the original";
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 1)) << "bound this flows";
}

TEST(BuiltinModelsTest, NativeEventEmitterOnEmit) {
  ModelRunner R("var EE = require('events').EventEmitter;\n"
                "var e = new EE();\n"
                "e.on('x', function handler(v) { v.go(); });\n"
                "e.emit('x', { go: function goImpl() {} });");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 3)) << "handler edge at emit";
  EXPECT_TRUE(R.hasEdge(A.CG, 3, 4)) << "emit payload flows to the handler";
}

TEST(BuiltinModelsTest, CallbackInvokersAddEdges) {
  ModelRunner R("setTimeout(function timer() {}, 10);\n"
                "process.nextTick(function tick() {});\n"
                "var fs = require('fs');\n"
                "fs.readFile('x', function onRead(err, data) {});");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 1, 1));
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 2));
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 4));
}

TEST(BuiltinModelsTest, HttpServerCallbackAndChaining) {
  ModelRunner R("var http = require('http');\n"
                "var server = http.createServer(function handler(req, res) "
                "{});\n"
                "server.listen(80, function ready() {});");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 2)) << "request handler edge";
  EXPECT_TRUE(R.hasEdge(A.CG, 3, 3)) << "listen-ready callback edge";
}

TEST(BuiltinModelsTest, ArrayFromCopiesElements) {
  ModelRunner R("var src = [function orig() {}];\n"
                "var copy = Array.from(src);\n"
                "var f = copy.pop();\n"
                "f();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 4, 1));
}

TEST(BuiltinModelsTest, StringReplaceCallback) {
  ModelRunner R("'a-b'.replace('-', function repl(m) { return '+'; });");
  AnalysisResult A = R.baseline();
  // Callee base is a primitive (no tokens), but the callback-invoker model
  // is unreachable then; verify no crash and site counted.
  EXPECT_EQ(A.NumCallSites, 1u);
}

TEST(BuiltinModelsTest, ForOfElementFlow) {
  ModelRunner R("var fns = [function el() {}];\n"
                "for (var f of fns) { f(); }");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 2, 1));
}

TEST(BuiltinModelsTest, NewObjectConstructor) {
  ModelRunner R("var o = new Object();\n"
                "o.m = function impl() {};\n"
                "o.m();");
  AnalysisResult A = R.baseline();
  EXPECT_TRUE(R.hasEdge(A.CG, 3, 2));
}

TEST(BuiltinModelsTest, RequireBuiltinModuleTokens) {
  ModelRunner R("var util = require('util');\n"
                "util.format('x');\n"
                "var path = require('path');\n"
                "path.join('a', 'b');");
  AnalysisResult A = R.baseline();
  // No program-function edges, but both call sites exist and nothing
  // crashes resolving builtin-module methods.
  EXPECT_EQ(A.NumCallSites, 4u);
  EXPECT_EQ(A.NumCallEdges, 0u);
}

} // namespace
