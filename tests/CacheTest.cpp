//===- CacheTest.cpp - Artifact cache: format, store, warm runs -----------===//
//
// Covers the cache subsystem's three contracts:
//  1. the binary format — property-based encode/decode round-trips, plus an
//     adversarial pass (truncation at every length, a bit flip at every
//     byte, stale versions, wrong keys) where decode must always fail
//     cleanly, never crash;
//  2. the store — content-addressed keys, atomic deterministic writes,
//     read-only mode, corrupt-entry fallback;
//  3. warm runs — a cached suite run skips approx yet renders a JSONL
//     report byte-identical to the cold run, and degraded runs are never
//     published.
//
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "cache/ModularArtifacts.h"
#include "cache/Serialization.h"
#include "cache/Sha256.h"
#include "corpus/BenchmarkSuite.h"
#include "driver/CorpusDriver.h"
#include "driver/Telemetry.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace jsai;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Scoped temp directory under the system temp root; unique per test so
/// test binaries running in parallel never collide.
struct TempDir {
  std::filesystem::path Path;

  explicit TempDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("jsai-cache-test-" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void writeFile(const std::filesystem::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary);
  Out << Bytes;
}

std::vector<std::filesystem::path> entryFiles(const std::string &Dir) {
  std::vector<std::filesystem::path> Out;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().extension() == ".jsac")
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Deterministic xorshift generator for the property-based round-trips (no
/// std::random_device: failures must reproduce).
struct Rng64 {
  uint64_t State;
  explicit Rng64(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  uint32_t below(uint32_t N) { return uint32_t(next() % N); }
};

SourceLoc randomLoc(Rng64 &R, FileId NumFiles) {
  return SourceLoc(R.below(NumFiles), 1 + R.below(500), 1 + R.below(120));
}

AllocRef randomRef(Rng64 &R, FileId NumFiles) {
  AllocRef Ref;
  Ref.Loc = randomLoc(R, NumFiles);
  Ref.IsPrototype = R.below(2) == 1;
  return Ref;
}

std::string randomName(Rng64 &R) {
  static const char Chars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$.";
  std::string Out;
  size_t Len = 1 + R.below(12);
  for (size_t I = 0; I != Len; ++I)
    Out += Chars[R.below(sizeof(Chars) - 1)];
  return Out;
}

/// A FileTable with \p N registered module paths.
FileTable makeFiles(FileId N) {
  FileTable Files;
  for (FileId I = 0; I != N; ++I)
    Files.add("pkg" + std::to_string(I % 3) + "/mod" + std::to_string(I) +
              ".js");
  return Files;
}

/// A pseudo-random entry exercising every hint kind and every stat field.
CacheEntry randomEntry(Rng64 &R, FileId NumFiles) {
  CacheEntry E;
  for (uint32_t I = 0, N = R.below(20); I != N; ++I)
    E.Hints.addReadHint(randomLoc(R, NumFiles), randomRef(R, NumFiles));
  for (uint32_t I = 0, N = R.below(20); I != N; ++I)
    E.Hints.addWriteHint(randomRef(R, NumFiles), randomName(R),
                         randomRef(R, NumFiles));
  for (uint32_t I = 0, N = R.below(8); I != N; ++I)
    E.Hints.addModuleHint(randomLoc(R, NumFiles),
                          "lib/" + randomName(R) + ".js");
  for (uint32_t I = 0, N = R.below(5); I != N; ++I)
    E.Hints.addEvalHint(randomLoc(R, NumFiles),
                        "var " + randomName(R) + "=1;");
  for (uint32_t I = 0, N = R.below(8); I != N; ++I)
    E.Hints.addReadName(randomLoc(R, NumFiles), randomName(R));
  for (uint32_t I = 0, N = R.below(8); I != N; ++I)
    E.Hints.addWriteName(randomLoc(R, NumFiles), randomName(R));
  for (uint32_t I = 0, N = R.below(8); I != N; ++I)
    E.Hints.addProxyReadName(randomLoc(R, NumFiles), randomName(R));

  E.Approx.NumFunctionsTotal = R.below(10000);
  E.Approx.NumFunctionsVisited = R.below(10000);
  E.Approx.NumModulesLoaded = R.below(1000);
  E.Approx.NumForcedExecutions = R.below(10000);
  E.Approx.NumAborts = R.below(100);
  E.Approx.Interp.ICGetHits = R.next();
  E.Approx.Interp.ICGetMisses = R.next();
  E.Approx.Interp.ICSetHits = R.next();
  E.Approx.Interp.ICSetMisses = R.next();
  E.Approx.Interp.ShapeTransitions = R.next();
  E.Approx.Interp.ShapesCreated = R.next();
  E.Approx.Interp.DictionaryConversions = R.next();

  E.HasMetrics = R.below(2) == 1;
  if (E.HasMetrics) {
    E.Baseline.CallEdges = R.next();
    E.Baseline.ReachableFunctions = R.next();
    E.Baseline.CallSites = R.next();
    E.Baseline.ResolvedCallSites = R.next();
    E.Baseline.MonomorphicCallSites = R.next();
    E.Extended.CallEdges = R.next();
    E.Extended.ReachableFunctions = R.next();
    E.Extended.CallSites = R.next();
    E.Extended.ResolvedCallSites = R.next();
    E.Extended.MonomorphicCallSites = R.next();
  }
  return E;
}

Sha256Digest keyOf(uint8_t Fill) {
  Sha256Digest Key;
  Key.fill(Fill);
  return Key;
}

/// Recomputes and replaces the trailing integrity digest after the test
/// mutated the header (used to isolate non-digest failure paths).
void refreshDigest(std::string &Bytes) {
  ASSERT_GE(Bytes.size(), 32u);
  Sha256 H;
  H.update(Bytes.data(), Bytes.size() - 32);
  Sha256Digest D = H.digest();
  Bytes.replace(Bytes.size() - 32, 32,
                reinterpret_cast<const char *>(D.data()), 32);
}

/// The driver-test corpus slice: big enough to exercise parallel cache
/// sharing, small enough to keep the test quick.
std::vector<ProjectSpec> smallSuite() {
  SuiteOptions SO;
  SO.Count = 16;
  return buildBenchmarkSuite(SO);
}

ProjectSpec trivialProject(const std::string &Name) {
  ProjectSpec Spec;
  Spec.Name = Name;
  Spec.Pattern = "trivial";
  Spec.Files.addFile("app/main.js", "function f(o) { return o.x; }\n"
                                    "var r = f({ x: 1 });\n");
  return Spec;
}

/// A project whose require graph splits into two import-closure
/// components: {app/main.js, lib/a.js} and {app/side.js, lib/b.js}.
/// \p LibB parameterizes the second component so tests can edit it.
ProjectSpec twoComponentProject(const std::string &LibB) {
  ProjectSpec Spec;
  Spec.Name = "two-component";
  Spec.Pattern = "modular";
  Spec.Files.addFile("app/main.js", "var a = require('../lib/a');\n"
                                    "var r = a.go({ x: 1 });\n");
  Spec.Files.addFile("lib/a.js",
                     "exports.go = function (o) { return o.x; };\n");
  Spec.Files.addFile("app/side.js", "var b = require('../lib/b');\n"
                                    "var s = b.run({ y: 2 });\n");
  Spec.Files.addFile("lib/b.js", LibB);
  return Spec;
}

const char *LibBV1 = "exports.run = function (o) { return o.y; };\n";
const char *LibBV2 = "exports.run = function (o) { return o.y + o.y; };\n";

//===----------------------------------------------------------------------===//
// SHA-256
//===----------------------------------------------------------------------===//

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(
      Sha256::hex(Sha256::hash("")),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256::hex(Sha256::hash("abc")),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::hex(Sha256::hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  // Exercise the block boundary: 64-byte internal blocks.
  std::string Input;
  for (int I = 0; I != 300; ++I)
    Input += char('a' + I % 26);
  for (size_t Split : {size_t(1), size_t(63), size_t(64), size_t(65),
                       size_t(128), size_t(299)}) {
    Sha256 H;
    H.update(Input.substr(0, Split));
    H.update(Input.substr(Split));
    EXPECT_EQ(Sha256::hex(H.digest()), Sha256::hex(Sha256::hash(Input)))
        << "split at " << Split;
  }
}

//===----------------------------------------------------------------------===//
// Binary format: round-trips
//===----------------------------------------------------------------------===//

TEST(SerializationTest, RoundTripEmptyEntry) {
  FileTable Files = makeFiles(2);
  CacheEntry In;
  std::string Bytes = encodeCacheEntry(In, keyOf(0xab), Files);

  CacheEntry Out;
  std::string Error;
  ASSERT_TRUE(decodeCacheEntry(Bytes, keyOf(0xab), Files, Out, Error))
      << Error;
  EXPECT_EQ(In.Hints, Out.Hints);
  EXPECT_EQ(In.Approx, Out.Approx);
  EXPECT_FALSE(Out.HasMetrics);
}

TEST(SerializationTest, PropertyRoundTrip) {
  // 50 seeded pseudo-random entries; every decoded field must equal its
  // source. Failures print the seed for replay.
  FileTable Files = makeFiles(7);
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    Rng64 R(Seed * 0x9e3779b97f4a7c15ull);
    CacheEntry In = randomEntry(R, 7);
    Sha256Digest Key = Sha256::hash("seed " + std::to_string(Seed));
    std::string Bytes = encodeCacheEntry(In, Key, Files);

    CacheEntry Out;
    std::string Error;
    ASSERT_TRUE(decodeCacheEntry(Bytes, Key, Files, Out, Error))
        << "seed " << Seed << ": " << Error;
    EXPECT_EQ(In.Hints, Out.Hints) << "seed " << Seed;
    EXPECT_EQ(In.Approx, Out.Approx) << "seed " << Seed;
    EXPECT_EQ(In.HasMetrics, Out.HasMetrics) << "seed " << Seed;
    if (In.HasMetrics) {
      EXPECT_EQ(In.Baseline, Out.Baseline) << "seed " << Seed;
      EXPECT_EQ(In.Extended, Out.Extended) << "seed " << Seed;
    }
  }
}

TEST(SerializationTest, EncodeIsDeterministic) {
  FileTable Files = makeFiles(5);
  Rng64 R(42);
  CacheEntry E = randomEntry(R, 5);
  std::string A = encodeCacheEntry(E, keyOf(0x11), Files);
  std::string B = encodeCacheEntry(E, keyOf(0x11), Files);
  EXPECT_EQ(A, B);

  // An equal entry built by a second insertion pass (different insertion
  // history, same content) also encodes identically: the format depends
  // only on entry content, never on construction order or environment.
  CacheEntry E2;
  E2.Hints.merge(E.Hints);
  E2.Approx = E.Approx;
  E2.HasMetrics = E.HasMetrics;
  E2.Baseline = E.Baseline;
  E2.Extended = E.Extended;
  EXPECT_EQ(encodeCacheEntry(E2, keyOf(0x11), Files), A);
}

//===----------------------------------------------------------------------===//
// Binary format: adversarial inputs
//===----------------------------------------------------------------------===//

TEST(SerializationTest, TruncationAtEveryLengthFailsCleanly) {
  FileTable Files = makeFiles(4);
  Rng64 R(7);
  CacheEntry E = randomEntry(R, 4);
  std::string Bytes = encodeCacheEntry(E, keyOf(0x22), Files);

  // Every proper prefix — this sweeps every section boundary and every
  // offset inside every section header and payload.
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    CacheEntry Out;
    std::string Error;
    EXPECT_FALSE(
        decodeCacheEntry(Bytes.substr(0, Len), keyOf(0x22), Files, Out, Error))
        << "prefix of " << Len << " bytes decoded successfully";
    EXPECT_FALSE(Error.empty()) << "no reason for prefix of " << Len;
  }
}

TEST(SerializationTest, BitFlipAtEveryByteFailsCleanly) {
  FileTable Files = makeFiles(4);
  Rng64 R(9);
  CacheEntry E = randomEntry(R, 4);
  std::string Bytes = encodeCacheEntry(E, keyOf(0x33), Files);

  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Flipped = Bytes;
    Flipped[I] = char(uint8_t(Flipped[I]) ^ (1u << (I % 8)));
    CacheEntry Out;
    std::string Error;
    EXPECT_FALSE(decodeCacheEntry(Flipped, keyOf(0x33), Files, Out, Error))
        << "flip at byte " << I << " decoded successfully";
    EXPECT_FALSE(Error.empty());
  }
}

TEST(SerializationTest, StaleFormatVersionIsRejected) {
  FileTable Files = makeFiles(2);
  CacheEntry E;
  std::string Bytes = encodeCacheEntry(E, keyOf(0x44), Files);
  // Patch the version field (offset 4, little-endian u32) and re-sign so
  // only the version check can fire.
  uint32_t Stale = CacheFormatVersion + 1;
  for (int I = 0; I != 4; ++I)
    Bytes[4 + I] = char(uint8_t(Stale >> (I * 8)));
  refreshDigest(Bytes);

  CacheEntry Out;
  std::string Error;
  EXPECT_FALSE(decodeCacheEntry(Bytes, keyOf(0x44), Files, Out, Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(SerializationTest, WrongKeyIsRejected) {
  FileTable Files = makeFiles(2);
  CacheEntry E;
  std::string Bytes = encodeCacheEntry(E, keyOf(0x55), Files);
  CacheEntry Out;
  std::string Error;
  EXPECT_FALSE(decodeCacheEntry(Bytes, keyOf(0x66), Files, Out, Error));
  EXPECT_NE(Error.find("key mismatch"), std::string::npos) << Error;

  // Integrity-only validation still accepts it and reports the embedded
  // key (the `jsai cache stats` path, where no expected key exists).
  Sha256Digest Embedded;
  EXPECT_TRUE(validateCacheEntryBytes(Bytes, Embedded, Error));
  EXPECT_EQ(Embedded, keyOf(0x55));
}

TEST(SerializationTest, UnknownSectionIsSkipped) {
  FileTable Files = makeFiles(2);
  Rng64 R(11);
  CacheEntry E = randomEntry(R, 2);
  std::string Bytes = encodeCacheEntry(E, keyOf(0x77), Files);

  // Append a future-tag section and bump the count (offset 40), then
  // re-sign. A version-1 reader must skip it and still decode everything.
  std::string Body = Bytes.substr(0, Bytes.size() - 32);
  uint32_t Count = 0;
  for (int I = 0; I != 4; ++I)
    Count |= uint32_t(uint8_t(Body[40 + I])) << (I * 8);
  ++Count;
  for (int I = 0; I != 4; ++I)
    Body[40 + I] = char(uint8_t(Count >> (I * 8)));
  const std::string Payload = "future payload";
  uint32_t Tag = 99;
  for (int I = 0; I != 4; ++I)
    Body += char(uint8_t(Tag >> (I * 8)));
  uint64_t Len = Payload.size();
  for (int I = 0; I != 8; ++I)
    Body += char(uint8_t(Len >> (I * 8)));
  Body += Payload;
  Body.append(32, '\0');
  refreshDigest(Body);

  CacheEntry Out;
  std::string Error;
  ASSERT_TRUE(decodeCacheEntry(Body, keyOf(0x77), Files, Out, Error)) << Error;
  EXPECT_EQ(E.Hints, Out.Hints);
  EXPECT_EQ(E.Approx, Out.Approx);
}

//===----------------------------------------------------------------------===//
// ArtifactCache store
//===----------------------------------------------------------------------===//

TEST(ArtifactCacheTest, KeyDependsOnSourcesAndConfig) {
  ProjectSpec A = trivialProject("a");
  std::string Fp = ArtifactCache::fingerprint(ApproxOptions(), "app/main.js");
  Sha256Digest K1 = ArtifactCache::computeKey(A.Files, Fp);
  EXPECT_EQ(K1, ArtifactCache::computeKey(A.Files, Fp));

  // Any source change changes the key.
  ProjectSpec B = trivialProject("b");
  B.Files.addFile("app/extra.js", "var x = 2;\n");
  EXPECT_NE(K1, ArtifactCache::computeKey(B.Files, Fp));
  ProjectSpec C;
  C.Files.addFile("app/main.js", "function f(o) { return o.x; }\n"
                                 "var r = f({ x: 2 });\n");
  EXPECT_NE(K1, ArtifactCache::computeKey(C.Files, Fp));

  // Any config-fingerprint change changes the key.
  ApproxOptions Opts;
  Opts.MaxLoopIterations += 1;
  EXPECT_NE(K1, ArtifactCache::computeKey(
                    A.Files,
                    ArtifactCache::fingerprint(Opts, "app/main.js")));
  EXPECT_NE(K1, ArtifactCache::computeKey(
                    A.Files,
                    ArtifactCache::fingerprint(ApproxOptions(), "app/alt.js")));
}

TEST(ArtifactCacheTest, StoreThenLoadRoundTrip) {
  TempDir Dir("store-load");
  CacheConfig Config;
  Config.Dir = Dir.str();
  ArtifactCache Cache(Config);

  FileTable Files = makeFiles(3);
  Rng64 R(21);
  CacheEntry In = randomEntry(R, 3);
  Sha256Digest Key = Sha256::hash("round-trip");

  CacheEntry Miss;
  std::string Diag;
  EXPECT_FALSE(Cache.load(Key, Files, Miss, Diag));
  EXPECT_TRUE(Diag.empty()) << Diag; // a plain miss is not diagnostic-worthy

  ASSERT_TRUE(Cache.store(Key, Files, In, Diag)) << Diag;
  CacheEntry Out;
  ASSERT_TRUE(Cache.load(Key, Files, Out, Diag)) << Diag;
  EXPECT_EQ(In.Hints, Out.Hints);
  EXPECT_EQ(In.Approx, Out.Approx);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.CorruptEntries, 0u);
  EXPECT_EQ(S.Writes, 1u);
  EXPECT_GT(S.BytesRead, 0u);
  EXPECT_GT(S.BytesWritten, 0u);

  // No temp files left behind by the atomic publish.
  size_t NonEntry = 0;
  for (const auto &F : std::filesystem::directory_iterator(Dir.Path))
    if (F.path().extension() != ".jsac")
      ++NonEntry;
  EXPECT_EQ(NonEntry, 0u);
}

TEST(ArtifactCacheTest, WritesAreDeterministic) {
  TempDir DirA("det-a");
  TempDir DirB("det-b");
  FileTable Files = makeFiles(3);
  Rng64 R(31);
  CacheEntry E = randomEntry(R, 3);
  Sha256Digest Key = Sha256::hash("determinism");
  std::string Diag;

  CacheConfig CA;
  CA.Dir = DirA.str();
  ArtifactCache CacheA(CA);
  ASSERT_TRUE(CacheA.store(Key, Files, E, Diag)) << Diag;
  ASSERT_TRUE(CacheA.store(Key, Files, E, Diag)) << Diag; // overwrite

  CacheConfig CB;
  CB.Dir = DirB.str();
  ArtifactCache CacheB(CB);
  ASSERT_TRUE(CacheB.store(Key, Files, E, Diag)) << Diag;

  auto A = entryFiles(DirA.str()), B = entryFiles(DirB.str());
  ASSERT_EQ(A.size(), 1u);
  ASSERT_EQ(B.size(), 1u);
  EXPECT_EQ(A[0].filename(), B[0].filename());
  EXPECT_EQ(readFile(A[0]), readFile(B[0]));
}

TEST(ArtifactCacheTest, ReadModeNeverWrites) {
  TempDir Dir("read-only");
  CacheConfig Config;
  Config.Dir = Dir.str();
  Config.Mode = CacheMode::Read;
  EXPECT_TRUE(Config.reads());
  EXPECT_FALSE(Config.writes());

  std::vector<ProjectSpec> Suite;
  Suite.push_back(trivialProject("ro"));
  DriverOptions DO;
  DO.Cache = Config;
  RunSummary S = CorpusDriver(DO).run(Suite);
  EXPECT_TRUE(S.CacheEnabled);
  // One whole-project miss plus one per-module slice miss.
  EXPECT_EQ(S.Cache.Misses, 2u);
  EXPECT_EQ(S.Cache.Writes, 0u);
  EXPECT_TRUE(entryFiles(Dir.str()).empty());
}

TEST(ArtifactCacheTest, CorruptEntryFallsBackWithDiagnostic) {
  TempDir Dir("corrupt");
  CacheConfig Config;
  Config.Dir = Dir.str();
  ArtifactCache Cache(Config);
  FileTable Files = makeFiles(2);
  CacheEntry E;
  Sha256Digest Key = Sha256::hash("corrupt");
  std::string Diag;
  ASSERT_TRUE(Cache.store(Key, Files, E, Diag)) << Diag;

  // Flip one payload bit on disk.
  auto Entries = entryFiles(Dir.str());
  ASSERT_EQ(Entries.size(), 1u);
  std::string Bytes = readFile(Entries[0]);
  Bytes[Bytes.size() / 2] = char(uint8_t(Bytes[Bytes.size() / 2]) ^ 0x10);
  writeFile(Entries[0], Bytes);

  CacheEntry Out;
  EXPECT_FALSE(Cache.load(Key, Files, Out, Diag));
  EXPECT_NE(Diag.find("rejected"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("recomputing"), std::string::npos) << Diag;
  EXPECT_EQ(Cache.stats().CorruptEntries, 1u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
}

//===----------------------------------------------------------------------===//
// Warm runs
//===----------------------------------------------------------------------===//

TEST(CacheWarmRunTest, WarmSuiteMatchesColdByteForByte) {
  TempDir Dir("warm-suite");
  std::vector<ProjectSpec> Suite = smallSuite();

  DriverOptions DO;
  DO.Jobs = 4;
  DO.Cache.Dir = Dir.str();
  RunSummary Cold = CorpusDriver(DO).run(Suite);
  ASSERT_TRUE(Cold.CacheEnabled);
  // A cold project misses its whole-project entry and then each of its
  // per-module slices, so misses exceed the project count. (Slice hits can
  // already occur cold: projects sharing an identical module component
  // reuse each other's published slices.)
  EXPECT_GE(Cold.Cache.Misses, Suite.size());
  EXPECT_GT(Cold.Cache.Writes, 0u);

  RunSummary Warm = CorpusDriver(DO).run(Suite);
  EXPECT_EQ(Warm.Cache.Hits, Suite.size());
  EXPECT_EQ(Warm.Cache.Misses, 0u);
  EXPECT_EQ(Warm.Cache.Writes, 0u);
  EXPECT_EQ(Warm.Cache.CorruptEntries, 0u);

  // The contract at the heart of the cache: warm metrics and the full
  // timing-free JSONL report are byte-identical to cold.
  EXPECT_EQ(Cold.Totals, Warm.Totals);
  EXPECT_EQ(renderReport(Cold, DO), renderReport(Warm, DO));

  // And both equal a cache-less run: the cache never perturbs results.
  DriverOptions NoCache;
  NoCache.Jobs = 1;
  RunSummary Plain = CorpusDriver(NoCache).run(Suite);
  EXPECT_EQ(renderReport(Plain, NoCache), renderReport(Warm, DO));
}

TEST(CacheWarmRunTest, EveryCorruptionRecoversToColdOutput) {
  TempDir Dir("warm-corrupt");
  std::vector<ProjectSpec> Suite = smallSuite();
  DriverOptions DO;
  DO.Jobs = 2;
  DO.Cache.Dir = Dir.str();
  RunSummary Cold = CorpusDriver(DO).run(Suite);
  std::string ColdReport = renderReport(Cold, DO);

  auto Entries = entryFiles(Dir.str());
  ASSERT_GE(Entries.size(), 3u);

  // Three corruption shapes — truncation, bit flip, stale version
  // (re-signed) — applied round-robin to EVERY entry (whole-project and
  // per-module slices alike; a warm project-entry hit would otherwise
  // never read the slices). Every one must degrade to recompute.
  for (size_t I = 0; I != Entries.size(); ++I) {
    std::string Bytes = readFile(Entries[I]);
    switch (I % 3) {
    case 0:
      Bytes = Bytes.substr(0, Bytes.size() / 2);
      break;
    case 1:
      Bytes[Bytes.size() / 2] = char(uint8_t(Bytes[Bytes.size() / 2]) ^ 0x01);
      break;
    case 2:
      uint32_t V = CacheFormatVersion + 7;
      for (int B = 0; B != 4; ++B)
        Bytes[4 + B] = char(uint8_t(V >> (B * 8)));
      refreshDigest(Bytes);
      break;
    }
    writeFile(Entries[I], Bytes);
  }

  RunSummary Warm = CorpusDriver(DO).run(Suite);
  EXPECT_GE(Warm.Cache.CorruptEntries, 3u);
  EXPECT_EQ(renderReport(Cold, DO), renderReport(Warm, DO));

  // The recovered run republished the rejected entries; a second warm run
  // is fully hot again.
  RunSummary Healed = CorpusDriver(DO).run(Suite);
  EXPECT_EQ(Healed.Cache.Hits, Suite.size());
  EXPECT_EQ(Healed.Cache.CorruptEntries, 0u);
  EXPECT_EQ(ColdReport, renderReport(Healed, DO));
}

TEST(CacheWarmRunTest, DegradedRunIsNeverPublished) {
  TempDir Dir("degraded");
  ProjectSpec Spin;
  Spin.Name = "spin";
  Spin.Pattern = "infinite-loop";
  Spin.Files.addFile("app/main.js", "var i = 0;\n"
                                    "while (true) { i = i + 1; }\n");

  DriverOptions DO;
  DO.Approx.MaxLoopIterations = ~uint64_t(0) / 2;
  DO.Approx.MaxSteps = ~uint64_t(0) / 2;
  DO.Deadlines.ApproxSeconds = 0.3;
  DO.Cache.Dir = Dir.str();
  RunSummary S = CorpusDriver(DO).run({Spin});
  ASSERT_EQ(S.Jobs.size(), 1u);
  EXPECT_EQ(S.Jobs[0].Report.Outcome, ProjectOutcome::Degraded);
  EXPECT_EQ(S.Cache.Writes, 0u);
  EXPECT_TRUE(entryFiles(Dir.str()).empty());
}

TEST(CacheWarmRunTest, AnalyzerHitSkipsApproxButRestoresStats) {
  TempDir Dir("analyzer-hit");
  CacheConfig Config;
  Config.Dir = Dir.str();
  ProjectSpec Spec = trivialProject("hit");

  ArtifactCache ColdCache(Config);
  ProjectAnalyzer Cold(Spec, ApproxOptions(), &ColdCache);
  size_t ColdHints = Cold.hints().size();
  ApproxStats ColdStats = Cold.approxStats();
  EXPECT_FALSE(Cold.hintsFromCache());
  Cold.publishToCache();
  // One per-module slice plus the whole-project entry.
  EXPECT_EQ(ColdCache.stats().Writes, 2u);

  ArtifactCache WarmCache(Config);
  ProjectAnalyzer Warm(Spec, ApproxOptions(), &WarmCache);
  EXPECT_EQ(Warm.hints().size(), ColdHints);
  EXPECT_TRUE(Warm.hintsFromCache());
  EXPECT_EQ(Warm.approxStats(), ColdStats);
  EXPECT_EQ(Warm.approxSeconds(), 0.0);
  EXPECT_EQ(WarmCache.stats().Hits, 1u);

  // Publishing a from-cache result is a no-op (no write amplification).
  Warm.publishToCache();
  EXPECT_EQ(WarmCache.stats().Writes, 0u);
}

//===----------------------------------------------------------------------===//
// Module-granular slicing
//===----------------------------------------------------------------------===//

TEST(SerializationTest, SliceProvenanceRoundTrips) {
  FileTable Files = makeFiles(3);
  Rng64 R(51);
  CacheEntry In = randomEntry(R, 3);
  In.SliceModule = "pkg0/mod0.js";
  In.SliceComponent = Sha256::hex(Sha256::hash("component"));
  EXPECT_TRUE(In.isSlice());
  std::string Bytes = encodeCacheEntry(In, keyOf(0x88), Files);

  CacheEntry Out;
  std::string Error;
  ASSERT_TRUE(decodeCacheEntry(Bytes, keyOf(0x88), Files, Out, Error))
      << Error;
  EXPECT_EQ(Out.SliceModule, In.SliceModule);
  EXPECT_EQ(Out.SliceComponent, In.SliceComponent);
  EXPECT_EQ(Out.Hints, In.Hints);
  EXPECT_TRUE(Out.isSlice());
}

TEST(ModularArtifactsTest, PartitionSplitsIndependentImportClosures) {
  ProjectSpec Spec = twoComponentProject(LibBV1);
  std::vector<std::string> Roots = {"app/main.js", "app/side.js"};
  ModulePartition Part = computeModulePartition(Spec.Files, Roots);
  ASSERT_EQ(Part.Components.size(), 2u);

  const ModuleComponent &A = Part.Components[0];
  EXPECT_EQ(A.leader(), "app/main.js");
  EXPECT_EQ(A.Members,
            (std::vector<std::string>{"app/main.js", "lib/a.js"}));
  EXPECT_EQ(A.Roots, std::vector<std::string>{"app/main.js"});
  EXPECT_TRUE(A.contains("lib/a.js"));
  EXPECT_FALSE(A.contains("lib/b.js"));
  const ModuleComponent &B = Part.Components[1];
  EXPECT_EQ(B.Members,
            (std::vector<std::string>{"app/side.js", "lib/b.js"}));
  EXPECT_EQ(B.Roots, std::vector<std::string>{"app/side.js"});

  // Editing one member changes only its own component's fingerprint.
  ModulePartition Edited =
      computeModulePartition(twoComponentProject(LibBV2).Files, Roots);
  ASSERT_EQ(Edited.Components.size(), 2u);
  EXPECT_EQ(Edited.Components[0].Fingerprint, A.Fingerprint);
  EXPECT_NE(Edited.Components[1].Fingerprint, B.Fingerprint);
}

TEST(ModularArtifactsTest, ResolvableStringLiteralMergesComponents) {
  // The require graph is recovered by treating *every* string literal as a
  // potential require spec. A literal that resolves — even one never passed
  // to require — must merge the closures: coarser is sound, finer is not.
  ProjectSpec Spec = twoComponentProject(LibBV1);
  Spec.Files.addFile("app/main.js", "var a = require('../lib/a');\n"
                                    "var tag = '../lib/b';\n"
                                    "var r = a.go({ x: 1 });\n");
  std::vector<std::string> Roots = {"app/main.js", "app/side.js"};
  ModulePartition Part = computeModulePartition(Spec.Files, Roots);
  ASSERT_EQ(Part.Components.size(), 1u);
  EXPECT_EQ(Part.Components[0].Members.size(), 4u);
  EXPECT_EQ(Part.Components[0].Roots, Roots);
}

TEST(ModularArtifactsTest, SliceKeyBindsConfigComponentAndModule) {
  ProjectSpec Spec = twoComponentProject(LibBV1);
  std::vector<std::string> Roots = {"app/main.js", "app/side.js"};
  ModulePartition Part = computeModulePartition(Spec.Files, Roots);
  ASSERT_EQ(Part.Components.size(), 2u);
  const ModuleComponent &A = Part.Components[0];
  std::string Fp = ArtifactCache::fingerprint(ApproxOptions(), "app/main.js");
  const std::string &Src = Spec.Files.read("app/main.js");

  Sha256Digest K = computeSliceKey(Fp, A, "app/main.js", Src);
  EXPECT_EQ(K, computeSliceKey(Fp, A, "app/main.js", Src));
  EXPECT_NE(K, computeSliceKey(Fp, A, "lib/a.js",
                               Spec.Files.read("lib/a.js")));
  ApproxOptions Other;
  Other.MaxSteps += 1;
  EXPECT_NE(K, computeSliceKey(
                   ArtifactCache::fingerprint(Other, "app/main.js"), A,
                   "app/main.js", Src));
  // A different component fingerprint (the other component) changes the
  // key even for an identical module path + source pairing.
  EXPECT_NE(K, computeSliceKey(Fp, Part.Components[1], "app/main.js", Src));
}

TEST(ModularArtifactsTest, SliceMergeReproducesHintsExactly) {
  // Property test: slicing a random hint set by owner module and merging
  // the slices back leader-first must reproduce the set exactly, with
  // non-member-owned hints parked in the leader's slice.
  FileTable Files = makeFiles(4);
  ModuleComponent C;
  C.Members = {"pkg0/mod0.js", "pkg0/mod3.js", "pkg1/mod1.js"};
  C.Roots = {"pkg0/mod0.js"};
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng64 R(Seed * 0x2545F4914F6CDD1Dull);
    CacheEntry E = randomEntry(R, 4); // references a non-member file too
    std::vector<HintSet> Slices = sliceHintsByModule(E.Hints, C, Files);
    ASSERT_EQ(Slices.size(), C.Members.size()) << "seed " << Seed;

    HintSet Merged;
    for (const HintSet &S : Slices)
      Merged.merge(S);
    EXPECT_EQ(Merged, E.Hints) << "seed " << Seed;
  }
}

TEST(CacheWarmRunTest, EditReusesUnaffectedComponentSlices) {
  TempDir Dir("slice-edit");
  CacheConfig Config;
  Config.Dir = Dir.str();

  {
    ArtifactCache Cache(Config);
    ProjectAnalyzer Cold(twoComponentProject(LibBV1), ApproxOptions(),
                         &Cache);
    Cold.hints();
    EXPECT_EQ(Cold.numComponents(), 2u);
    EXPECT_EQ(Cold.numComponentsFromCache(), 0u);
    Cold.publishToCache();
    // Four module slices plus the whole-project entry.
    EXPECT_EQ(Cache.stats().Writes, 5u);
  }

  // Edit lib/b.js: the project entry misses, component A is reconstructed
  // from its slices, only component B re-runs.
  ProjectSpec Edited = twoComponentProject(LibBV2);
  ArtifactCache WarmCache(Config);
  ProjectAnalyzer Warm(Edited, ApproxOptions(), &WarmCache);
  const HintSet &WarmHints = Warm.hints();
  EXPECT_EQ(Warm.numComponents(), 2u);
  EXPECT_EQ(Warm.numComponentsFromCache(), 1u);
  EXPECT_FALSE(Warm.hintsFromCache()) << "mixed runs are not 'from cache'";
  // Project-entry miss + component B's first-slice miss; component A's two
  // slices hit.
  EXPECT_EQ(WarmCache.stats().Hits, 2u);
  EXPECT_EQ(WarmCache.stats().Misses, 2u);

  // The mixed slice-reuse run is indistinguishable from a fully fresh one.
  ProjectAnalyzer Fresh(Edited);
  EXPECT_EQ(WarmHints, Fresh.hints());
  EXPECT_EQ(Warm.approxStats(), Fresh.approxStats());

  // Republish: component B's two new slices plus the new project entry
  // (component A's slices are already on disk and are not rewritten).
  Warm.publishToCache();
  EXPECT_EQ(WarmCache.stats().Writes, 3u);

  // Third run: whole-project hit, slices not consulted.
  ArtifactCache HotCache(Config);
  ProjectAnalyzer Hot(Edited, ApproxOptions(), &HotCache);
  Hot.hints();
  EXPECT_TRUE(Hot.hintsFromCache());
  EXPECT_EQ(HotCache.stats().Hits, 1u);
  EXPECT_EQ(HotCache.stats().Misses, 0u);
  EXPECT_EQ(Hot.approxStats(), Fresh.approxStats());
}

TEST(SliceCacheTest, ConcurrentReadersWritersAndCorruptorsStayConsistent) {
  // The daemon keeps one ArtifactCache hot across requests while driver
  // workers read, publish, and heal slice entries concurrently. Hammer one
  // cache directory from six threads doing stores, loads, in-place
  // corruption, and deletions: a load may miss or reject, but it must
  // never return wrong content, and the store must never crash or wedge.
  TempDir Dir("hammer");
  CacheConfig Config;
  Config.Dir = Dir.str();
  ArtifactCache Cache(Config);
  FileTable Files = makeFiles(4);

  constexpr size_t NumKeys = 8;
  std::vector<CacheEntry> Entries;
  std::vector<Sha256Digest> Keys;
  for (size_t K = 0; K != NumKeys; ++K) {
    Rng64 R(0x5eed + K);
    CacheEntry E = randomEntry(R, 4);
    E.SliceModule = "pkg0/mod" + std::to_string(K % 3) + ".js";
    E.SliceComponent =
        Sha256::hex(Sha256::hash("component " + std::to_string(K % 3)));
    Entries.push_back(std::move(E));
    Keys.push_back(Sha256::hash("hammer key " + std::to_string(K)));
  }

  std::atomic<size_t> WrongLoads{0};
  auto Worker = [&](size_t Self) {
    Rng64 R(101 + Self);
    std::string Diag;
    for (size_t I = 0; I != 150; ++I) {
      size_t K = R.below(NumKeys);
      switch (R.below(8)) {
      case 0: { // Flip one byte of the entry file in place.
        std::string Path = Cache.entryPath(Keys[K]);
        std::string Bytes = readFile(Path);
        if (!Bytes.empty()) {
          size_t At = R.below(uint32_t(Bytes.size()));
          Bytes[At] = char(uint8_t(Bytes[At]) ^ (1u << R.below(8)));
          writeFile(Path, Bytes);
        }
        break;
      }
      case 1: { // Evict the entry outright.
        std::error_code Ec;
        std::filesystem::remove(Cache.entryPath(Keys[K]), Ec);
        break;
      }
      case 2:
      case 3: { // Publish (atomic write-then-rename).
        Cache.store(Keys[K], Files, Entries[K], Diag);
        break;
      }
      default: { // Load: miss/reject is fine, wrong content never is.
        CacheEntry Out;
        if (Cache.load(Keys[K], Files, Out, Diag) &&
            (!(Out.Hints == Entries[K].Hints) ||
             Out.SliceModule != Entries[K].SliceModule ||
             Out.SliceComponent != Entries[K].SliceComponent))
          ++WrongLoads;
        break;
      }
      }
    }
  };
  std::vector<std::thread> Threads;
  for (size_t T = 0; T != 6; ++T)
    Threads.emplace_back(Worker, T);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(WrongLoads.load(), 0u);

  // Quiesced, every key heals: one store, then a clean matching load.
  for (size_t K = 0; K != NumKeys; ++K) {
    std::string Diag;
    ASSERT_TRUE(Cache.store(Keys[K], Files, Entries[K], Diag)) << Diag;
    CacheEntry Out;
    ASSERT_TRUE(Cache.load(Keys[K], Files, Out, Diag)) << Diag;
    EXPECT_EQ(Out.Hints, Entries[K].Hints);
    EXPECT_EQ(Out.SliceModule, Entries[K].SliceModule);
  }
}

} // namespace
