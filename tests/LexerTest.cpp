//===- LexerTest.cpp - Tests for the MiniJS lexer --------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

std::vector<Token> lex(const std::string &Source,
                       DiagnosticEngine *OutDiags = nullptr) {
  static DiagnosticEngine Scratch;
  DiagnosticEngine &Diags = OutDiags ? *OutDiags : Scratch;
  Scratch.clear();
  Lexer L(0, Source, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Source) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source))
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Identifiers) {
  auto Tokens = lex("foo _bar $baz a1");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "$baz");
  EXPECT_EQ(Tokens[3].Text, "a1");
}

TEST(LexerTest, Keywords) {
  auto K = kinds("var function return new this typeof in of instanceof");
  std::vector<TokenKind> Want = {
      TokenKind::KwVar,    TokenKind::KwFunction, TokenKind::KwReturn,
      TokenKind::KwNew,    TokenKind::KwThis,     TokenKind::KwTypeof,
      TokenKind::KwIn,     TokenKind::KwOf,       TokenKind::KwInstanceof,
      TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, KeywordPrefixIsIdentifier) {
  auto Tokens = lex("variable newish thisx");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(LexerTest, Numbers) {
  auto Tokens = lex("0 42 3.25 1e3 2.5e-2 0xff");
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 0);
  EXPECT_DOUBLE_EQ(Tokens[1].NumValue, 42);
  EXPECT_DOUBLE_EQ(Tokens[2].NumValue, 3.25);
  EXPECT_DOUBLE_EQ(Tokens[3].NumValue, 1000);
  EXPECT_DOUBLE_EQ(Tokens[4].NumValue, 0.025);
  EXPECT_DOUBLE_EQ(Tokens[5].NumValue, 255);
}

TEST(LexerTest, NumberFollowedByIdentifierLikeE) {
  // `1e` is number 1 followed by identifier e (no exponent digits).
  auto Tokens = lex("1e");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 1);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "e");
}

TEST(LexerTest, NumberValueBoundedToTokenSpan) {
  // The scanner stops "123" before ".e5" (dot not followed by a digit does
  // not extend the literal), so the token value must be 123 — not the
  // 12300000 an unbounded strtod would read from "123.e5".
  auto Tokens = lex("123.e5");
  ASSERT_GE(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 123);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Dot);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Text, "e5");
}

TEST(LexerTest, LeadingDotLexesAsDotThenNumber) {
  // MiniJS deviation: number tokens start with a digit, so ".5" is a Dot
  // token followed by the number 5 (a parse error in expression position),
  // not the fractional literal 0.5.
  auto Tokens = lex(".5");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Dot);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[1].NumValue, 5);
}

TEST(LexerTest, TrailingDotIsMemberAccess) {
  // "7.x" is the number 7 then member access, not a malformed literal.
  auto Tokens = lex("7.x");
  ASSERT_GE(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 7);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Dot);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(LexerTest, ExponentSignWithoutDigitsRollsBack) {
  // `2e+` is number 2, then Plus — the exponent candidate is abandoned.
  auto Tokens = lex("2e+x");
  ASSERT_GE(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 2);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "e");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Plus);
}

TEST(LexerTest, WideHexLiteralDoesNotSaturate) {
  // 2^72 needs the double fallback; strtoull would clamp to 2^64-1.
  auto Tokens = lex("0xFFFFFFFFFFFFFFFFFF");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 4722366482869645213696.0);
}

TEST(LexerTest, HexPrefixWithoutDigitsReportsError) {
  DiagnosticEngine Diags;
  auto Tokens = lex("0x", &Diags);
  ASSERT_GE(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Error);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, Strings) {
  auto Tokens = lex("'hello' \"world\" 'a\\nb' \"q\\\"q\"");
  EXPECT_EQ(Tokens[0].Text, "hello");
  EXPECT_EQ(Tokens[1].Text, "world");
  EXPECT_EQ(Tokens[2].Text, "a\nb");
  EXPECT_EQ(Tokens[3].Text, "q\"q");
}

TEST(LexerTest, UnterminatedStringReportsError) {
  DiagnosticEngine Diags;
  auto Tokens = lex("'oops", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Error);
}

TEST(LexerTest, Comments) {
  auto K = kinds("a // line comment\n b /* block\n comment */ c");
  std::vector<TokenKind> Want = {TokenKind::Identifier, TokenKind::Identifier,
                                 TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, UnterminatedBlockCommentReportsError) {
  DiagnosticEngine Diags;
  lex("a /* never closed", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, OperatorsMaximalMunch) {
  auto K = kinds("=== == = != !== ! => >= > ++ + += && & || | ||= ?? ?");
  std::vector<TokenKind> Want = {
      TokenKind::EqEqEq,   TokenKind::EqEq,
      TokenKind::Assign,   TokenKind::NotEq,
      TokenKind::NotEqEq,  TokenKind::Not,
      TokenKind::Arrow,    TokenKind::GreaterEq,
      TokenKind::Greater,  TokenKind::PlusPlus,
      TokenKind::Plus,     TokenKind::PlusAssign,
      TokenKind::AndAnd,   TokenKind::Amp,
      TokenKind::OrOr,     TokenKind::Pipe,
      TokenKind::OrOrAssign, TokenKind::QuestionQuestion,
      TokenKind::Question, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, Punctuation) {
  auto K = kinds("( ) { } [ ] ; , . : ~ << >>");
  std::vector<TokenKind> Want = {
      TokenKind::LParen, TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Semi,   TokenKind::Comma,    TokenKind::Dot,
      TokenKind::Colon,  TokenKind::Tilde,    TokenKind::Shl,
      TokenKind::Shr,    TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  auto Tokens = lex("a\n  bb\nccc");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
  EXPECT_EQ(Tokens[2].Loc.Line, 3u);
  EXPECT_EQ(Tokens[2].Loc.Col, 1u);
}

TEST(LexerTest, UnexpectedCharacter) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a # b", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(LexerTest, ExpressLikeSnippet) {
  // Real-world shaped input should lex without errors.
  DiagnosticEngine Diags;
  lex("methods.forEach(function(method) {\n"
      "  app[method] = function(path) {\n"
      "    var route = this._router.route(path);\n"
      "    route[method].apply(route, slice.call(arguments, 1));\n"
      "    return this;\n"
      "  };\n"
      "});\n",
      &Diags);
  EXPECT_FALSE(Diags.hasErrors());
}

} // namespace
