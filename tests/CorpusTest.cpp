//===- CorpusTest.cpp - Tests for the benchmark corpus ----------------------===//

#include "corpus/BenchmarkSuite.h"
#include "corpus/MotivatingExample.h"
#include "corpus/PatternGenerators.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

/// Parses \p Spec and asserts no diagnostics.
void expectParses(const ProjectSpec &Spec) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  ModuleLoader Loader(Ctx, Spec.Files, Diags);
  Loader.parseAll();
  EXPECT_FALSE(Diags.hasErrors())
      << Spec.Name << ":\n"
      << Diags.render(Ctx.files());
}

/// Runs \p Module of \p Spec concretely and asserts clean completion.
void expectRuns(const ProjectSpec &Spec, const std::string &Module) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  ModuleLoader Loader(Ctx, Spec.Files, Diags);
  Interpreter I(Loader);
  Completion C = I.loadModule(Module);
  EXPECT_FALSE(C.isThrow())
      << Spec.Name << " (" << Module << "): " << I.toStringValue(C.V);
  EXPECT_FALSE(C.isAbort()) << Spec.Name << " (" << Module << ")";
}

//===----------------------------------------------------------------------===//
// Individual generators
//===----------------------------------------------------------------------===//

class PatternTest
    : public ::testing::TestWithParam<
          std::tuple<ProjectSpec (*)(Rng &, unsigned), const char *>> {};

TEST_P(PatternTest, AllSizesParseAndRun) {
  auto [Fn, Name] = GetParam();
  for (unsigned Size = 0; Size != 3; ++Size) {
    Rng R(1000 + Size);
    ProjectSpec Spec = Fn(R, Size);
    Spec.Name = std::string(Name) + "-size" + std::to_string(Size);
    EXPECT_EQ(Spec.Pattern, Name);
    EXPECT_GE(Spec.numPackages(), 2u) << "app + at least one dependency";
    expectParses(Spec);
    expectRuns(Spec, Spec.MainModule);
    ASSERT_TRUE(Spec.hasDynamicCallGraph());
    expectRuns(Spec, Spec.TestDriver);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternTest,
    ::testing::Values(
        std::make_tuple(&makeExpressLike, "express-like"),
        std::make_tuple(&makeEventHub, "event-hub"),
        std::make_tuple(&makePluginRegistry, "plugin-registry"),
        std::make_tuple(&makeOopLibrary, "oop-library"),
        std::make_tuple(&makeDelegator, "delegator"),
        std::make_tuple(&makeEvalInit, "eval-init"),
        std::make_tuple(&makeDynamicLoader, "dynamic-loader"),
        std::make_tuple(&makeUtilityLib, "utility-lib"),
        std::make_tuple(&makeMiddlewareChain, "middleware-chain")),
    [](const auto &Info) {
      std::string Name = std::get<1>(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(CorpusTest, GeneratorsAreDeterministic) {
  Rng R1(7), R2(7);
  ProjectSpec A = makeExpressLike(R1, 1);
  ProjectSpec B = makeExpressLike(R2, 1);
  ASSERT_EQ(A.Files.allPaths(), B.Files.allPaths());
  for (const std::string &Path : A.Files.allPaths())
    EXPECT_EQ(A.Files.read(Path), B.Files.read(Path)) << Path;
}

TEST(CorpusTest, SizesScaleCode) {
  Rng RSmall(42), RLarge(42);
  ProjectSpec Small = makeExpressLike(RSmall, 0);
  ProjectSpec Large = makeExpressLike(RLarge, 2);
  EXPECT_GT(Large.codeBytes(), Small.codeBytes());
}

TEST(CorpusTest, DependencyPackagesContainVulnerabilities) {
  Rng R(5);
  ProjectSpec Spec = makePluginRegistry(R, 1);
  bool Found = false;
  for (const std::string &Path : Spec.Files.allPaths())
    if (Path.rfind("app/", 0) != 0 &&
        Spec.Files.read(Path).find("function vuln_") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Motivating example fixture
//===----------------------------------------------------------------------===//

TEST(CorpusTest, MotivatingExampleParsesAndRuns) {
  ProjectSpec Spec = motivatingExampleProject();
  EXPECT_EQ(Spec.numPackages(), 5u); // app, express, merge-descriptors,
                                     // methods, events.
  expectParses(Spec);
  expectRuns(Spec, Spec.MainModule);
  expectRuns(Spec, Spec.TestDriver);
}

TEST(CorpusTest, MotivatingExampleDriverExercisesHandlers) {
  ProjectSpec Spec = motivatingExampleProject();
  AstContext Ctx;
  DiagnosticEngine Diags;
  ModuleLoader Loader(Ctx, Spec.Files, Diags);
  Interpreter I(Loader);
  Completion C = I.loadModule(Spec.TestDriver);
  ASSERT_FALSE(C.isThrow()) << I.toStringValue(C.V);
}

//===----------------------------------------------------------------------===//
// The full suite
//===----------------------------------------------------------------------===//

TEST(CorpusTest, SuiteHas141ProjectsAnd36WithDynamicCG) {
  std::vector<ProjectSpec> Suite = buildBenchmarkSuite();
  EXPECT_EQ(Suite.size(), 141u);
  size_t WithCG = 0;
  for (const ProjectSpec &Spec : Suite)
    if (Spec.hasDynamicCallGraph())
      ++WithCG;
  EXPECT_EQ(WithCG, 36u);
  EXPECT_EQ(benchmarksWithDynamicCG().size(), 36u);
}

TEST(CorpusTest, SuiteNamesAreUniqueAndPatternsDiverse) {
  std::vector<ProjectSpec> Suite = buildBenchmarkSuite();
  std::set<std::string> Names;
  std::set<std::string> PatternsSeen;
  for (const ProjectSpec &Spec : Suite) {
    EXPECT_TRUE(Names.insert(Spec.Name).second) << Spec.Name;
    PatternsSeen.insert(Spec.Pattern);
  }
  EXPECT_EQ(PatternsSeen.size(), 9u) << "every pattern family appears";
}

TEST(CorpusTest, SuiteIsDeterministic) {
  std::vector<ProjectSpec> A = buildBenchmarkSuite();
  std::vector<ProjectSpec> B = buildBenchmarkSuite();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].codeBytes(), B[I].codeBytes());
  }
}

TEST(CorpusTest, EverySuiteProjectParses) {
  for (const ProjectSpec &Spec : buildBenchmarkSuite())
    expectParses(Spec);
}

TEST(CorpusTest, EveryDynamicCGProjectDriverRuns) {
  for (const ProjectSpec &Spec : benchmarksWithDynamicCG())
    expectRuns(Spec, Spec.TestDriver);
}

} // namespace
