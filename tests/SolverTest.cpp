//===- SolverTest.cpp - Unit tests for the constraint solver -----------------===//

#include "analysis/Solver.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

TEST(SolverTest, TokensPropagateAlongEdges) {
  Solver S;
  S.addToken(0, 7);
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.solve();
  EXPECT_TRUE(S.pointsTo(2).contains(7));
  EXPECT_TRUE(S.pointsTo(1).contains(7));
}

TEST(SolverTest, EdgeAddedAfterTokensFlushes) {
  Solver S;
  S.addToken(0, 1);
  S.addToken(0, 2);
  S.solve();
  S.addEdge(0, 5);
  S.solve();
  EXPECT_EQ(S.pointsTo(5).count(), 2u);
}

TEST(SolverTest, CyclesTerminate) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.addEdge(2, 0);
  S.addToken(1, 9);
  S.solve();
  for (CVarId V : {0u, 1u, 2u})
    EXPECT_TRUE(S.pointsTo(V).contains(9));
}

TEST(SolverTest, SelfEdgeIsIgnored) {
  Solver S;
  S.addEdge(3, 3);
  S.addToken(3, 1);
  S.solve();
  EXPECT_EQ(S.pointsTo(3).count(), 1u);
}

TEST(SolverTest, DuplicateEdgesDedupe) {
  Solver S;
  S.addEdge(0, 1);
  uint64_t EdgesAfterFirst = S.stats().NumEdges;
  S.addEdge(0, 1);
  EXPECT_EQ(S.stats().NumEdges, EdgesAfterFirst);
}

TEST(SolverTest, ListenerReplaysExistingTokens) {
  Solver S;
  S.addToken(4, 11);
  S.addToken(4, 12);
  std::vector<TokenId> Seen;
  S.addListener(4, [&Seen](TokenId T) { Seen.push_back(T); });
  std::vector<TokenId> Want = {11, 12};
  EXPECT_EQ(Seen, Want);
}

TEST(SolverTest, ListenerSeesFutureTokens) {
  Solver S;
  std::vector<TokenId> Seen;
  S.addListener(4, [&Seen](TokenId T) { Seen.push_back(T); });
  S.addToken(4, 3);
  S.solve();
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0], 3u);
}

TEST(SolverTest, ListenerCanAddConstraintsOnTheFly) {
  // Classic on-the-fly pattern: a token arriving at the "callee" var wires
  // a new edge, whose effects propagate in the same solve.
  Solver S;
  S.addToken(10, 1); // Argument value.
  S.addListener(0, [&S](TokenId T) {
    if (T == 42)
      S.addEdge(10, 20); // "Connect arg to param" when function 42 arrives.
  });
  S.addToken(0, 42);
  S.solve();
  EXPECT_TRUE(S.pointsTo(20).contains(1));
}

TEST(SolverTest, ListenerAddingListenerToSameVar) {
  Solver S;
  int Inner = 0;
  S.addListener(0, [&](TokenId) {
    S.addListener(0, [&](TokenId) { ++Inner; });
  });
  S.addToken(0, 1);
  S.solve();
  // The inner listener sees the token that triggered its registration
  // (replay) — effects must be idempotent, counts need not be exactly one.
  EXPECT_GE(Inner, 1);
}

TEST(SolverTest, LargeChainPropagates) {
  Solver S;
  const CVarId N = 2000;
  for (CVarId V = 0; V + 1 < N; ++V)
    S.addEdge(V, V + 1);
  S.addToken(0, 5);
  S.solve();
  EXPECT_TRUE(S.pointsTo(N - 1).contains(5));
  EXPECT_GE(S.stats().NumTokensPropagated, uint64_t(N) - 1);
}

TEST(SolverTest, PointsToOfUnknownVarIsEmpty) {
  Solver S;
  EXPECT_TRUE(S.pointsTo(12345).empty());
}

TEST(SolverTest, DiamondConvergence) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(0, 2);
  S.addEdge(1, 3);
  S.addEdge(2, 3);
  S.addToken(0, 8);
  S.solve();
  EXPECT_EQ(S.pointsTo(3).count(), 1u) << "token arrives once per set";
}

} // namespace
