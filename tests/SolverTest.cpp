//===- SolverTest.cpp - Unit tests for the constraint solver -----------------===//

#include "analysis/Solver.h"

#include "support/Rng.h"

#include <deque>
#include <gtest/gtest.h>
#include <map>
#include <set>

using namespace jsai;

namespace {

/// Reference implementation with the pre-collapsing semantics (FIFO of
/// (variable, token) deltas, linear edge dedup, no cycle merging). The
/// randomized stress test checks the production solver against it.
class NaiveSolver {
public:
  void addToken(CVarId V, TokenId T) {
    ensure(V);
    if (!PointsTo[V].insert(T))
      return;
    Pending.emplace_back(V, T);
  }

  void addEdge(CVarId From, CVarId To) {
    if (From == To)
      return;
    ensure(From);
    ensure(To);
    for (CVarId Existing : Succs[From])
      if (Existing == To)
        return;
    Succs[From].push_back(To);
    std::vector<uint32_t> Known = PointsTo[From].toVector();
    for (uint32_t T : Known)
      addToken(To, T);
  }

  void solve() {
    while (!Pending.empty()) {
      auto [V, T] = Pending.front();
      Pending.pop_front();
      for (size_t I = 0; I < Succs[V].size(); ++I)
        addToken(Succs[V][I], T);
    }
  }

  const BitSet &pointsTo(CVarId V) const {
    return V < PointsTo.size() ? PointsTo[V] : Empty;
  }

private:
  void ensure(CVarId V) {
    if (V >= PointsTo.size()) {
      PointsTo.resize(V + 1);
      Succs.resize(V + 1);
    }
  }

  std::vector<BitSet> PointsTo;
  std::vector<std::vector<CVarId>> Succs;
  std::deque<std::pair<CVarId, TokenId>> Pending;
  BitSet Empty;
};

TEST(SolverTest, TokensPropagateAlongEdges) {
  Solver S;
  S.addToken(0, 7);
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.solve();
  EXPECT_TRUE(S.pointsTo(2).contains(7));
  EXPECT_TRUE(S.pointsTo(1).contains(7));
}

TEST(SolverTest, EdgeAddedAfterTokensFlushes) {
  Solver S;
  S.addToken(0, 1);
  S.addToken(0, 2);
  S.solve();
  S.addEdge(0, 5);
  S.solve();
  EXPECT_EQ(S.pointsTo(5).count(), 2u);
}

TEST(SolverTest, CyclesTerminate) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.addEdge(2, 0);
  S.addToken(1, 9);
  S.solve();
  for (CVarId V : {0u, 1u, 2u})
    EXPECT_TRUE(S.pointsTo(V).contains(9));
}

TEST(SolverTest, SelfEdgeIsIgnored) {
  Solver S;
  S.addEdge(3, 3);
  S.addToken(3, 1);
  S.solve();
  EXPECT_EQ(S.pointsTo(3).count(), 1u);
}

TEST(SolverTest, DuplicateEdgesDedupe) {
  Solver S;
  S.addEdge(0, 1);
  uint64_t EdgesAfterFirst = S.stats().NumEdges;
  S.addEdge(0, 1);
  EXPECT_EQ(S.stats().NumEdges, EdgesAfterFirst);
}

TEST(SolverTest, ListenerReplaysExistingTokens) {
  Solver S;
  S.addToken(4, 11);
  S.addToken(4, 12);
  std::vector<TokenId> Seen;
  S.addListener(4, [&Seen](TokenId T) { Seen.push_back(T); });
  std::vector<TokenId> Want = {11, 12};
  EXPECT_EQ(Seen, Want);
}

TEST(SolverTest, ListenerSeesFutureTokens) {
  Solver S;
  std::vector<TokenId> Seen;
  S.addListener(4, [&Seen](TokenId T) { Seen.push_back(T); });
  S.addToken(4, 3);
  S.solve();
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0], 3u);
}

TEST(SolverTest, ListenerCanAddConstraintsOnTheFly) {
  // Classic on-the-fly pattern: a token arriving at the "callee" var wires
  // a new edge, whose effects propagate in the same solve.
  Solver S;
  S.addToken(10, 1); // Argument value.
  S.addListener(0, [&S](TokenId T) {
    if (T == 42)
      S.addEdge(10, 20); // "Connect arg to param" when function 42 arrives.
  });
  S.addToken(0, 42);
  S.solve();
  EXPECT_TRUE(S.pointsTo(20).contains(1));
}

TEST(SolverTest, ListenerAddingListenerToSameVar) {
  Solver S;
  int Inner = 0;
  S.addListener(0, [&](TokenId) {
    S.addListener(0, [&](TokenId) { ++Inner; });
  });
  S.addToken(0, 1);
  S.solve();
  // The inner listener sees the token that triggered its registration via
  // replay, and the delivered-set blocks the queued delta from re-firing
  // it: exactly once per (listener, token).
  EXPECT_EQ(Inner, 1);
}

TEST(SolverTest, ListenerRegisteredWithDeltaPendingFiresOnce) {
  // Regression: addToken queues a delta; a listener registered before
  // solve() replays the token immediately. The queued delta must not fire
  // the listener a second time during solve().
  Solver S;
  S.addToken(7, 3);
  int Calls = 0;
  S.addListener(7, [&Calls](TokenId) { ++Calls; });
  EXPECT_EQ(Calls, 1) << "registration replay";
  S.solve();
  EXPECT_EQ(Calls, 1) << "queued delta must not double-fire the listener";
}

TEST(SolverTest, LargeChainPropagates) {
  Solver S;
  const CVarId N = 2000;
  for (CVarId V = 0; V + 1 < N; ++V)
    S.addEdge(V, V + 1);
  S.addToken(0, 5);
  S.solve();
  EXPECT_TRUE(S.pointsTo(N - 1).contains(5));
  EXPECT_GE(S.stats().NumTokensPropagated, uint64_t(N) - 1);
}

TEST(SolverTest, PointsToOfUnknownVarIsEmpty) {
  Solver S;
  EXPECT_TRUE(S.pointsTo(12345).empty());
}

TEST(SolverTest, DiamondConvergence) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(0, 2);
  S.addEdge(1, 3);
  S.addEdge(2, 3);
  S.addToken(0, 8);
  S.solve();
  EXPECT_EQ(S.pointsTo(3).count(), 1u) << "token arrives once per set";
}

//===----------------------------------------------------------------------===//
// Cycle collapsing
//===----------------------------------------------------------------------===//

TEST(SolverTest, TwoCycleCollapses) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(1, 0);
  S.addToken(0, 5);
  S.solve();
  EXPECT_TRUE(S.pointsTo(0).contains(5));
  EXPECT_TRUE(S.pointsTo(1).contains(5));
  EXPECT_EQ(S.representative(0), S.representative(1));
  EXPECT_GE(S.stats().NumCyclesCollapsed, 1u);
  EXPECT_GE(S.stats().NumVarsMerged, 1u);
}

TEST(SolverTest, LongCycleCollapsesAndStaysCorrect) {
  Solver S;
  const CVarId N = 200;
  for (CVarId V = 0; V < N; ++V)
    S.addEdge(V, (V + 1) % N);
  S.addToken(3, 9);
  S.solve();
  for (CVarId V = 0; V < N; ++V) {
    EXPECT_TRUE(S.pointsTo(V).contains(9));
    EXPECT_EQ(S.representative(V), S.representative(0));
  }
  EXPECT_GE(S.stats().NumCyclesCollapsed, 1u);
  EXPECT_EQ(S.stats().NumVarsMerged, uint64_t(N) - 1);
}

TEST(SolverTest, TokenAddedAfterCollapseReachesAllMembers) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.addEdge(2, 0);
  S.addToken(0, 1);
  S.solve(); // Collapses the 3-cycle.
  ASSERT_EQ(S.representative(1), S.representative(2));
  S.addToken(1, 7); // Addressed via a merged member id.
  S.solve();
  for (CVarId V : {0u, 1u, 2u})
    EXPECT_TRUE(S.pointsTo(V).contains(7));
}

TEST(SolverTest, NestedSccsCollapseToOneRepresentative) {
  // Figure-eight: two rings sharing variable 0, with an entry chain feeding
  // the shared node and an exit edge draining it.
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.addEdge(2, 0); // Ring A: {0,1,2}.
  S.addEdge(0, 3);
  S.addEdge(3, 4);
  S.addEdge(4, 0); // Ring B: {0,3,4}.
  S.addEdge(10, 0); // Entry.
  S.addEdge(2, 20); // Exit.
  S.addToken(10, 1);
  S.addToken(3, 2);
  S.solve();
  // Both rings form one SCC through the shared node; every member sees both
  // tokens, and so does the exit.
  for (CVarId V : {0u, 1u, 2u, 3u, 4u}) {
    EXPECT_TRUE(S.pointsTo(V).contains(1));
    EXPECT_TRUE(S.pointsTo(V).contains(2));
    EXPECT_EQ(S.representative(V), S.representative(0));
  }
  EXPECT_TRUE(S.pointsTo(20).contains(1));
  EXPECT_TRUE(S.pointsTo(20).contains(2));
  EXPECT_FALSE(S.pointsTo(10).contains(2)) << "entry is not in the SCC";
  EXPECT_NE(S.representative(10), S.representative(0));
  EXPECT_NE(S.representative(20), S.representative(0));
}

TEST(SolverTest, ListenerOnCycleMemberFiresOncePerToken) {
  Solver S;
  std::map<TokenId, int> Calls;
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.addEdge(2, 0);
  S.addListener(1, [&Calls](TokenId T) { ++Calls[T]; });
  S.addToken(2, 4);
  S.solve(); // Cycle collapses; the listener now lives on the rep.
  S.addToken(0, 8);
  S.solve();
  EXPECT_EQ(Calls[4], 1);
  EXPECT_EQ(Calls[8], 1);
}

TEST(SolverTest, EdgeIntoCollapsedCycleFlushes) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(1, 0);
  S.addToken(0, 1);
  S.solve();
  S.addToken(5, 6);
  S.solve();
  S.addEdge(5, 1); // Into the cycle via a merged member id.
  S.solve();
  EXPECT_TRUE(S.pointsTo(0).contains(6));
  EXPECT_TRUE(S.pointsTo(1).contains(6));
}

TEST(SolverTest, DuplicateEdgeCounterCountsRejections) {
  Solver S;
  S.addEdge(0, 1);
  S.addEdge(0, 1);
  S.addEdge(0, 1);
  EXPECT_EQ(S.stats().NumEdges, 1u);
  EXPECT_EQ(S.stats().NumDuplicateEdges, 2u);
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(SolverTest, IdenticalBuildsProduceIdenticalStatsAndSets) {
  auto Build = [](Solver &S) {
    // A mix of pre-solve tokens, cycles, listeners, and in-solve edge
    // additions.
    S.addToken(0, 1);
    S.addToken(0, 2);
    S.addEdge(0, 1);
    S.addEdge(1, 2);
    S.addEdge(2, 1);
    S.addListener(2, [&S](TokenId T) {
      if (T == 1)
        S.addEdge(2, 3);
    });
    S.addEdge(3, 4);
    S.addToken(4, 9);
    S.solve();
  };
  Solver A, B;
  Build(A);
  Build(B);
  EXPECT_TRUE(A.stats() == B.stats());
  for (CVarId V = 0; V <= 4; ++V)
    EXPECT_TRUE(A.pointsTo(V) == B.pointsTo(V)) << "var " << V;
}

//===----------------------------------------------------------------------===//
// Randomized stress vs. the naive reference
//===----------------------------------------------------------------------===//

void runRandomizedStress(SolverSetKind Kind) {
  Rng R(20240805);
  for (int Round = 0; Round < 20; ++Round) {
    const CVarId NumVars = CVarId(R.range(5, 60));
    const size_t NumOps = size_t(R.range(20, 300));
    Solver S;
    S.setSetKind(Kind);
    NaiveSolver N;
    for (size_t Op = 0; Op < NumOps; ++Op) {
      if (R.chance(55)) {
        // Bias toward edges (and thus cycles at these densities).
        CVarId From = CVarId(R.below(NumVars));
        CVarId To = CVarId(R.below(NumVars));
        S.addEdge(From, To);
        N.addEdge(From, To);
      } else {
        CVarId V = CVarId(R.below(NumVars));
        TokenId T = TokenId(R.below(30));
        S.addToken(V, T);
        N.addToken(V, T);
      }
      if (R.chance(10)) {
        S.solve();
        N.solve();
      }
    }
    S.solve();
    N.solve();
    for (CVarId V = 0; V < NumVars; ++V)
      ASSERT_TRUE(S.pointsTo(V) == N.pointsTo(V))
          << "round " << Round << " var " << V;
  }
}

TEST(SolverTest, RandomizedStressMatchesNaiveReference) {
  runRandomizedStress(SolverSetKind::Adaptive);
}

TEST(SolverTest, RandomizedStressMatchesNaiveReferenceDense) {
  runRandomizedStress(SolverSetKind::Dense);
}

//===----------------------------------------------------------------------===//
// Set representations and memory accounting
//===----------------------------------------------------------------------===//

/// The same constraint stream under both representations must agree on
/// every engine-visible outcome; only the memory fields may differ.
TEST(SolverTest, DenseAndAdaptiveSolversAgreeOnSetsAndCounters) {
  auto Build = [](Solver &S) {
    for (CVarId V = 0; V < 50; ++V)
      S.addEdge(V, (V + 1) % 50); // One big cycle.
    for (CVarId V = 50; V < 80; ++V)
      S.addEdge(V, V + 1); // A chain.
    for (TokenId T = 0; T < 40; ++T)
      S.addToken(T % 7, T);
    S.addListener(25, [](TokenId) {});
    S.solve();
  };
  Solver Adaptive, Dense;
  Adaptive.setSetKind(SolverSetKind::Adaptive);
  Dense.setSetKind(SolverSetKind::Dense);
  Build(Adaptive);
  Build(Dense);
  for (CVarId V = 0; V < 81; ++V)
    ASSERT_TRUE(Adaptive.pointsTo(V) == Dense.pointsTo(V)) << "var " << V;
  const SolverStats &A = Adaptive.stats();
  const SolverStats &D = Dense.stats();
  EXPECT_EQ(A.NumTokensPropagated, D.NumTokensPropagated);
  EXPECT_EQ(A.NumEdges, D.NumEdges);
  EXPECT_EQ(A.NumDuplicateEdges, D.NumDuplicateEdges);
  EXPECT_EQ(A.NumCyclesCollapsed, D.NumCyclesCollapsed);
  EXPECT_EQ(A.NumVarsMerged, D.NumVarsMerged);
  EXPECT_EQ(A.NumBatchesFlushed, D.NumBatchesFlushed);
  // In dense mode every set is pinned dense; the histogram must say so.
  EXPECT_EQ(D.SetsSmall, 0u);
  EXPECT_EQ(D.SetsSparse, 0u);
  EXPECT_GT(D.SetsDense, 0u);
  EXPECT_EQ(D.SetTierPromotionsSparse, 0u);
  EXPECT_EQ(D.SetTierPromotionsDense, 0u);
}

TEST(SolverTest, MemoryStatsTrackLiveAndPeakBytes) {
  Solver S; // Default (adaptive) representation.
  S.setSetKind(SolverSetKind::Adaptive);
  // Tiny sets only: everything fits the inline tier, so set bytes stay 0.
  for (CVarId V = 0; V < 30; ++V)
    S.addToken(V, V % 5);
  S.solve();
  const SolverStats &Small = S.stats();
  EXPECT_EQ(Small.SetBytesLive, 0u)
      << "tiny points-to sets must cost zero heap bytes";
  EXPECT_GT(Small.SetsSmall, 0u);

  // Now blow one variable up past the inline and sparse thresholds.
  for (TokenId T = 0; T < 3000; ++T)
    S.addToken(0, T);
  S.solve();
  const SolverStats &Grown = S.stats();
  EXPECT_GT(Grown.SetBytesLive, 0u);
  EXPECT_GE(Grown.SetBytesPeak, Grown.SetBytesLive);
  EXPECT_GT(Grown.SetTierPromotionsSparse, 0u);
  EXPECT_GT(Grown.SetTierPromotionsDense, 0u);
  EXPECT_GT(Grown.SetsDense, 0u);
}

TEST(SolverTest, AdaptiveUsesFewerSetBytesOnSparseWorkload) {
  // A sparse workload with high token ids: many variables, each holding a
  // handful of widely spaced tokens — the shape the adaptive design is
  // for. The dense ablation pays O(maxTokenId/64) words per variable.
  auto Build = [](Solver &S) {
    for (CVarId V = 0; V < 200; ++V)
      for (uint32_t I = 0; I != 3; ++I)
        S.addToken(V, 40000 + V * 16 + I * 5);
    S.solve();
  };
  Solver Adaptive, Dense;
  Adaptive.setSetKind(SolverSetKind::Adaptive);
  Dense.setSetKind(SolverSetKind::Dense);
  Build(Adaptive);
  Build(Dense);
  uint64_t AdaptivePeak = Adaptive.stats().SetBytesPeak;
  uint64_t DensePeak = Dense.stats().SetBytesPeak;
  EXPECT_GT(DensePeak, 0u);
  EXPECT_LT(AdaptivePeak * 4, DensePeak)
      << "adaptive must be >= 4x smaller on sparse high-id sets";
}

//===----------------------------------------------------------------------===//
// Constraint-group retraction (incremental re-analysis)
//===----------------------------------------------------------------------===//

std::vector<uint32_t> tokensOf(const Solver &S, CVarId V) {
  return S.pointsTo(V).toVector();
}

bool isSuperset(const AdaptiveSet &A, const AdaptiveSet &B) {
  for (uint32_t T : B.toVector())
    if (!A.contains(T))
      return false;
  return true;
}

TEST(SolverRetractionTest, UntrackedAndGroupZeroAreNeverRetractable) {
  Solver S;
  EXPECT_FALSE(S.canRetract(1)) << "tracking starts with the first group";
  S.setGroup(1);
  EXPECT_FALSE(S.canRetract(0)) << "the shared group is irretractable";
  EXPECT_TRUE(S.canRetract(1));
}

TEST(SolverRetractionTest, IdenticalReaddMatchesColdSolveExactly) {
  // Retract a module's constraint batch and re-add the identical batch
  // under a new group: every lingering token coincides with a rederived
  // one, so the warm fixpoint equals the cold solve variable by variable.
  Solver Warm;
  Warm.addToken(0, 1);
  Warm.addToken(4, 2);
  Warm.addEdge(0, 1); // shared base
  Warm.setGroup(1);
  Warm.addEdge(1, 2);
  Warm.addEdge(4, 2);
  Warm.solve();
  EXPECT_EQ(Warm.pointsTo(2).count(), 2u);

  ASSERT_TRUE(Warm.canRetract(1));
  ASSERT_TRUE(Warm.retractGroup(1));
  Warm.setGroup(2);
  Warm.addEdge(1, 2);
  Warm.addEdge(4, 2);
  Warm.solve();
  EXPECT_EQ(Warm.stats().NumGroupRetractions, 1u);

  Solver Cold;
  Cold.addToken(0, 1);
  Cold.addToken(4, 2);
  Cold.addEdge(0, 1);
  Cold.addEdge(1, 2);
  Cold.addEdge(4, 2);
  Cold.solve();
  for (CVarId V = 0; V != 5; ++V)
    EXPECT_EQ(tokensOf(Warm, V), tokensOf(Cold, V)) << "var " << V;
}

TEST(SolverRetractionTest, WarmReaddOverApproximatesColdNeverMisses) {
  // The headline soundness contract: after retract-and-readd with a
  // *changed* batch, the warm fixpoint is a superset of the cold one —
  // tokens the old batch propagated linger as extra may-facts, but no
  // fact of the new program is ever missing.
  Solver Warm;
  Warm.addToken(0, 1);
  Warm.addEdge(0, 1); // shared base
  Warm.setGroup(1);
  Warm.addEdge(1, 2); // old module: drains into var 2
  Warm.addToken(0, 8); // old module's own token
  Warm.solve();
  ASSERT_TRUE(Warm.retractGroup(1));
  Warm.setGroup(2);
  Warm.addEdge(1, 3); // new module: drains into var 3 instead
  Warm.solve();

  Solver Cold; // the new program from scratch, without the old token 8
  Cold.addToken(0, 1);
  Cold.addEdge(0, 1);
  Cold.addEdge(1, 3);
  Cold.solve();

  for (CVarId V = 0; V != 4; ++V)
    EXPECT_TRUE(isSuperset(Warm.pointsTo(V), Cold.pointsTo(V)))
        << "warm must never miss a cold fact, var " << V;
  // The over-approximation is visible exactly where expected: the stale
  // token (never withdrawn) and the old drain's already-propagated set.
  EXPECT_TRUE(Warm.pointsTo(2).contains(1));
  EXPECT_TRUE(Warm.pointsTo(3).contains(8));
  EXPECT_FALSE(Cold.pointsTo(3).contains(8));
}

TEST(SolverRetractionTest, RetractedEdgeStopsPropagationReaddIsFresh) {
  Solver S;
  S.setGroup(1);
  S.addEdge(0, 1);
  S.solve();
  ASSERT_TRUE(S.retractGroup(1));

  S.addToken(0, 3);
  S.solve();
  EXPECT_FALSE(S.pointsTo(1).contains(3)) << "retracted edge still flows";

  // Re-adding a previously retracted edge must register as a fresh edge
  // (the insert-only dedup set cannot forget it), flush existing tokens,
  // and be retractable under its new owner.
  uint64_t DupsBefore = S.stats().NumDuplicateEdges;
  S.setGroup(2);
  S.addEdge(0, 1);
  S.solve();
  EXPECT_EQ(S.stats().NumDuplicateEdges, DupsBefore);
  EXPECT_TRUE(S.pointsTo(1).contains(3));
  EXPECT_TRUE(S.canRetract(2));
}

TEST(SolverRetractionTest, RetractionRemovesListenersExactly) {
  Solver S;
  int Fired = 0;
  S.setGroup(1);
  S.addListener(2, [&](TokenId) { ++Fired; });
  S.setGroup(0);
  S.addToken(2, 9);
  S.solve();
  EXPECT_EQ(Fired, 1);

  ASSERT_TRUE(S.retractGroup(1));
  S.addToken(2, 10);
  S.solve();
  EXPECT_EQ(Fired, 1) << "retracted listener observed a new token";
}

TEST(SolverRetractionTest, CollapseWhileTrackingRefusesRetraction) {
  // A cycle collapse splices and dedups successor lists, destroying edge
  // attribution; retraction must refuse (caller falls back to cold) and
  // leave the warm state untouched and sound.
  Solver S;
  S.setGroup(1);
  S.addEdge(0, 1);
  S.addEdge(1, 0);
  S.addToken(0, 5);
  S.solve();
  ASSERT_GE(S.stats().NumCyclesCollapsed, 1u);

  EXPECT_FALSE(S.canRetract(1));
  EXPECT_FALSE(S.retractGroup(1));
  EXPECT_EQ(S.stats().NumRetractionRefusals, 1u);
  EXPECT_EQ(S.stats().NumGroupRetractions, 0u);
  EXPECT_TRUE(S.pointsTo(0).contains(5));
  EXPECT_TRUE(S.pointsTo(1).contains(5));
}

TEST(SolverRetractionTest, CrossGroupDuplicateEdgeTaintsBothOwners) {
  // One physical edge, two owners: retracting either would silently drop
  // the other's constraint, so both groups are tainted. Same-group
  // duplicates and unrelated groups are unaffected.
  Solver S;
  S.setGroup(1);
  S.addEdge(0, 1);
  S.addEdge(0, 1); // same-group duplicate: harmless
  EXPECT_TRUE(S.canRetract(1));

  S.setGroup(2);
  S.addEdge(0, 1); // cross-group duplicate: taints 1 and 2
  S.setGroup(3);
  S.addEdge(0, 2);

  EXPECT_FALSE(S.canRetract(1));
  EXPECT_FALSE(S.canRetract(2));
  EXPECT_TRUE(S.canRetract(3));
  EXPECT_FALSE(S.retractGroup(1));
  EXPECT_TRUE(S.retractGroup(3));
  EXPECT_EQ(S.stats().NumRetractionRefusals, 1u);
  EXPECT_EQ(S.stats().NumGroupRetractions, 1u);
}

//===----------------------------------------------------------------------===//
// Parallel fixpoint vs. the sequential oracle
//===----------------------------------------------------------------------===//

/// Replays one randomized constraint stream into \p S, logging every
/// listener delivery in order. The same seed always produces the same
/// stream, so two solvers built from it differ only in their jobs
/// setting. Listeners also add edges mid-solve (derived from the token
/// they saw) to exercise wave-slot invalidation and mid-wave successor
/// growth; the variable range is large enough that worklists regularly
/// exceed the wave threshold.
void buildRandomizedParallelWorkload(
    Solver &S, uint64_t Seed, std::vector<std::pair<CVarId, TokenId>> &Log) {
  Rng R(Seed);
  const CVarId NumVars = CVarId(R.range(24, 96));
  const size_t NumOps = size_t(R.range(100, 600));
  for (int L = 0; L < 4; ++L) {
    CVarId Watch = CVarId(R.below(NumVars));
    CVarId Target = CVarId(R.below(NumVars));
    S.addListener(Watch, [&S, &Log, Watch, Target, NumVars](TokenId T) {
      Log.emplace_back(Watch, T);
      if (T % 3 == 0)
        S.addEdge(Target, CVarId((Target + T) % NumVars));
    });
  }
  for (size_t Op = 0; Op < NumOps; ++Op) {
    if (R.chance(55)) {
      S.addEdge(CVarId(R.below(NumVars)), CVarId(R.below(NumVars)));
    } else {
      S.addToken(CVarId(R.below(NumVars)), TokenId(R.below(200)));
    }
    if (R.chance(5))
      S.solve();
  }
  S.solve();
}

/// The parallel fixpoint contract: at any jobs count the solver produces
/// the same points-to sets, the same counters (down to batch flushes and
/// collapse events), and the same listener delivery order as the
/// sequential loop.
void runParallelEqualsSequential(size_t Jobs) {
  Rng Seeds(20260808);
  bool SawWaves = false;
  for (int Round = 0; Round < 10; ++Round) {
    uint64_t Seed = Seeds.next();
    Solver Seq, Par;
    Par.setJobs(Jobs);
    std::vector<std::pair<CVarId, TokenId>> SeqLog, ParLog;
    buildRandomizedParallelWorkload(Seq, Seed, SeqLog);
    buildRandomizedParallelWorkload(Par, Seed, ParLog);
    ASSERT_TRUE(Seq.stats() == Par.stats()) << "jobs " << Jobs << " round "
                                            << Round;
    ASSERT_EQ(SeqLog, ParLog) << "jobs " << Jobs << " round " << Round;
    for (CVarId V = 0; V < 96; ++V)
      ASSERT_TRUE(Seq.pointsTo(V) == Par.pointsTo(V))
          << "jobs " << Jobs << " round " << Round << " var " << V;
    SawWaves |= Par.parallelStats().NumWaves > 0;
  }
  if (Jobs > 1) {
    EXPECT_TRUE(SawWaves) << "no round ever entered wave mode at jobs "
                          << Jobs << "; the parallel path went untested";
  }
}

TEST(SolverParallelTest, OneJobMatchesSequential) {
  runParallelEqualsSequential(1);
}

TEST(SolverParallelTest, TwoJobsMatchSequential) {
  runParallelEqualsSequential(2);
}

TEST(SolverParallelTest, FourJobsMatchSequential) {
  runParallelEqualsSequential(4);
}

TEST(SolverParallelTest, EightJobsMatchSequential) {
  runParallelEqualsSequential(8);
}

TEST(SolverParallelTest, RepeatedParallelRunsAreDeterministic) {
  // Ten runs of the same graph at jobs=4 must agree with each other on
  // every observable — including the wave accounting itself, which is a
  // deterministic function of the (deterministic) worklist trajectory.
  std::vector<std::pair<CVarId, TokenId>> FirstLog;
  Solver First;
  First.setJobs(4);
  buildRandomizedParallelWorkload(First, 99, FirstLog);
  for (int Run = 1; Run < 10; ++Run) {
    std::vector<std::pair<CVarId, TokenId>> Log;
    Solver S;
    S.setJobs(4);
    buildRandomizedParallelWorkload(S, 99, Log);
    ASSERT_TRUE(First.stats() == S.stats()) << "run " << Run;
    ASSERT_TRUE(First.parallelStats() == S.parallelStats()) << "run " << Run;
    ASSERT_EQ(FirstLog, Log) << "run " << Run;
    for (CVarId V = 0; V < 96; ++V)
      ASSERT_TRUE(First.pointsTo(V) == S.pointsTo(V))
          << "run " << Run << " var " << V;
  }
}

TEST(SolverParallelTest, ParallelMatchesNaiveReference) {
  // End-to-end soundness at jobs=4 against the independent oracle, dense
  // and adaptive representations both.
  for (SolverSetKind Kind : {SolverSetKind::Adaptive, SolverSetKind::Dense}) {
    Rng R(20240805);
    for (int Round = 0; Round < 10; ++Round) {
      const CVarId NumVars = CVarId(R.range(24, 96));
      const size_t NumOps = size_t(R.range(100, 600));
      Solver S;
      S.setSetKind(Kind);
      S.setJobs(4);
      NaiveSolver N;
      for (size_t Op = 0; Op < NumOps; ++Op) {
        if (R.chance(55)) {
          CVarId From = CVarId(R.below(NumVars));
          CVarId To = CVarId(R.below(NumVars));
          S.addEdge(From, To);
          N.addEdge(From, To);
        } else {
          CVarId V = CVarId(R.below(NumVars));
          TokenId T = TokenId(R.below(200));
          S.addToken(V, T);
          N.addToken(V, T);
        }
      }
      S.solve();
      N.solve();
      for (CVarId V = 0; V < NumVars; ++V)
        ASSERT_TRUE(S.pointsTo(V) == N.pointsTo(V))
            << "round " << Round << " var " << V;
    }
  }
}

//===----------------------------------------------------------------------===//
// Provenance recording (--explain=record)
//===----------------------------------------------------------------------===//

/// Walks the recorded arrival chain of (V, T) back toward its source.
/// \returns true when every hop has an arrival record and the walk
/// terminates — at a direct addToken insertion, or at a representative
/// already visited (cycle collapsing re-keys arrivals keep-first, so an
/// in-cycle arrival may legitimately point back into its own collapsed
/// representative). False means provenance was LOST: a token present in a
/// final points-to set with no recorded arrival somewhere along its chain.
bool chainTerminates(const Solver &S, CVarId V, TokenId T) {
  std::set<CVarId> Visited;
  CVarId Cur = S.representative(V);
  for (size_t Hop = 0; Hop < 10000; ++Hop) {
    if (!Visited.insert(Cur).second)
      return true; // Collapse-induced self-loop: chain is complete.
    const TokenArrival *A = S.arrival(Cur, T);
    if (!A)
      return false; // Token present but never recorded arriving.
    if (A->From == ~CVarId(0))
      return true; // Direct addToken insertion: the chain's source.
    Cur = S.representative(A->From);
  }
  return false;
}

/// Randomized provenance-under-collapse stress: heavy edge bias (so cycles
/// form and collapse constantly, re-keying arrival maps), interleaved
/// origin changes, incremental solves. Afterwards every token in every
/// final points-to set must have a recorded origin chain that terminates
/// in a direct insertion — collapsing and parallel waves must never lose
/// provenance.
void runProvenanceStress(size_t Jobs) {
  Rng R(20240808);
  for (int Round = 0; Round < 12; ++Round) {
    const CVarId NumVars = CVarId(R.range(5, 60));
    const size_t NumOps = size_t(R.range(20, 300));
    Solver S;
    S.setJobs(Jobs);
    S.setExplainRecording(true);
    for (size_t Op = 0; Op < NumOps; ++Op) {
      if (R.chance(5))
        S.setOrigin(ProvOriginId(R.below(8)));
      if (R.chance(60)) {
        S.addEdge(CVarId(R.below(NumVars)), CVarId(R.below(NumVars)));
      } else {
        S.addToken(CVarId(R.below(NumVars)), TokenId(R.below(30)));
      }
      if (R.chance(10))
        S.solve();
    }
    S.solve();
    for (CVarId V = 0; V < NumVars; ++V) {
      if (S.representative(V) != V)
        continue; // Merged members share the representative's records.
      S.pointsTo(V).forEach([&](uint32_t T) {
        EXPECT_TRUE(chainTerminates(S, V, TokenId(T)))
            << "round " << Round << " var " << V << " token " << T;
      });
    }
  }
}

TEST(SolverProvenanceTest, EveryTokenHasOriginChainSequential) {
  runProvenanceStress(/*Jobs=*/1);
}

TEST(SolverProvenanceTest, EveryTokenHasOriginChainParallel) {
  runProvenanceStress(/*Jobs=*/4);
}

TEST(SolverProvenanceTest, RecordingOffKeepsArrivalsEmpty) {
  Solver S;
  S.addToken(0, 3);
  S.addEdge(0, 1);
  S.solve();
  EXPECT_EQ(S.arrival(0, 3), nullptr);
  EXPECT_EQ(S.arrival(1, 3), nullptr);
}

TEST(SolverProvenanceTest, ArrivalRecordsPredecessorAndOrigin) {
  Solver S;
  S.setExplainRecording(true);
  S.addToken(0, 3);
  S.setOrigin(7);
  S.addEdge(0, 1);
  S.solve();
  const TokenArrival *Direct = S.arrival(0, 3);
  ASSERT_NE(Direct, nullptr);
  EXPECT_EQ(Direct->From, ~CVarId(0));
  const TokenArrival *Flowed = S.arrival(1, 3);
  ASSERT_NE(Flowed, nullptr);
  EXPECT_EQ(Flowed->From, CVarId(0));
  EXPECT_EQ(Flowed->Origin, ProvOriginId(7));
}

TEST(SolverProvenanceTest, ArrivalsSurviveCycleCollapse) {
  Solver S;
  S.setExplainRecording(true);
  S.addToken(0, 9);
  S.addEdge(0, 1);
  S.addEdge(1, 2);
  S.addEdge(2, 0); // Collapses {0,1,2} into one representative.
  S.solve();
  CVarId Rep = S.representative(0);
  EXPECT_EQ(S.representative(1), Rep);
  EXPECT_EQ(S.representative(2), Rep);
  EXPECT_TRUE(chainTerminates(S, Rep, 9));
}

} // namespace
