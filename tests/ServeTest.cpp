//===- ServeTest.cpp - Analysis service: protocol, daemon, client ---------===//
//
// Covers the serve subsystem's three contracts:
//  1. the wire protocol — JSON parse/serialize round-trips, adversarial
//     inputs that must fail with a reason, and the integer/float rendering
//     rules the replay map depends on;
//  2. the request handlers — handshake identity, analyze/stats/shutdown
//     dispatch, the replay map (hit on an identical request, miss after an
//     on-disk edit), and error accounting, all exercised without sockets
//     through Server::handleLine;
//  3. the daemon — a real Unix-socket round-trip against a client
//     (handshake verification, served report byte-identical to a local
//     one-shot run, shutdown), stale-socket reclaim, live-daemon conflict,
//     and the interrupt exit path.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include "driver/Telemetry.h"
#include "support/Version.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace jsai;
using namespace jsai::serve;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Scoped temp directory, unique per test.
struct TempDir {
  std::filesystem::path Path;

  explicit TempDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("jsai-serve-test-" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

void writeFile(const std::filesystem::path &P, const std::string &Bytes) {
  std::filesystem::create_directories(P.parent_path());
  std::ofstream Out(P, std::ios::binary);
  Out << Bytes;
}

/// A project directory on disk with one trivial module.
void writeTrivialProject(const std::filesystem::path &Root) {
  writeFile(Root / "app" / "main.js", "function f(o) { return o.x; }\n"
                                      "var r = f({ x: 1 });\n");
}

/// Parses \p Line, asserting success.
JsonValue parsed(const std::string &Line) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Line, V, Err)) << Line << ": " << Err;
  return V;
}

/// Runs one line through \p S, returning the parsed response.
JsonValue respond(Server &S, const std::string &Line) {
  bool Shutdown = false;
  return parsed(S.handleLine(Line, Shutdown));
}

/// Socket paths must fit in sun_path, so they live in the (short) system
/// temp root rather than inside a per-test directory.
std::string socketPath(const std::string &Name) {
  return (std::filesystem::temp_directory_path() /
          ("jsai-serve-test-" + Name + ".sock"))
      .string();
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, ParsesScalars) {
  EXPECT_EQ(parsed("null").K, JsonValue::Kind::Null);
  EXPECT_TRUE(parsed("true").B);
  EXPECT_FALSE(parsed("false").B);
  EXPECT_EQ(parsed("42").Num, 42.0);
  EXPECT_EQ(parsed("-1.5e2").Num, -150.0);
  EXPECT_EQ(parsed("\"hi\"").Str, "hi");
}

TEST(ServeProtocolTest, ParsesNestedStructure) {
  JsonValue V = parsed("{\"a\": [1, {\"b\": \"x\"}, null], \"c\": true}");
  ASSERT_TRUE(V.isObject());
  const JsonValue *A = V.field("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->Arr.size(), 3u);
  EXPECT_EQ(A->Arr[0].Num, 1.0);
  EXPECT_EQ(A->Arr[1].stringField("b"), "x");
  EXPECT_EQ(A->Arr[2].K, JsonValue::Kind::Null);
  EXPECT_TRUE(V.boolField("c"));
}

TEST(ServeProtocolTest, StringEscapesRoundTrip) {
  JsonValue V = parsed("\"a\\n\\t\\\"\\\\b\\u0041\"");
  EXPECT_EQ(V.Str, "a\n\t\"\\bA");
  // A surrogate pair decodes to one 4-byte UTF-8 sequence.
  EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").Str.size(), 4u);
  // Rendering and reparsing reproduces the value.
  EXPECT_EQ(parsed(writeJson(V)).Str, V.Str);
}

TEST(ServeProtocolTest, WriteThenParseIsIdentity) {
  JsonValue V = JsonValue::object();
  V.set("name", JsonValue::str("line\nbreak"));
  V.set("n", JsonValue::number(7));
  JsonValue Arr = JsonValue::array();
  Arr.Arr.push_back(JsonValue::boolean(true));
  Arr.Arr.push_back(JsonValue::null());
  Arr.Arr.push_back(JsonValue::number(2.5));
  V.set("xs", std::move(Arr));

  std::string Line = writeJson(V);
  // Newline-delimited framing: a rendered value never contains a raw '\n'.
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  JsonValue Back = parsed(Line);
  EXPECT_EQ(Back.stringField("name"), "line\nbreak");
  EXPECT_EQ(Back.numberField("n"), 7.0);
  EXPECT_EQ(Back.field("xs")->Arr.size(), 3u);
  // Insertion order is preserved, so re-rendering is byte-stable.
  EXPECT_EQ(writeJson(Back), Line);
}

TEST(ServeProtocolTest, IntegersRenderWithoutExponent) {
  // Counters travel as JSON numbers; integral values must render as
  // integers (the CI greps and the replay map depend on stable text).
  EXPECT_EQ(writeJson(JsonValue::number(0)), "0");
  EXPECT_EQ(writeJson(JsonValue::number(42)), "42");
  EXPECT_EQ(writeJson(JsonValue::number(-3)), "-3");
  EXPECT_EQ(writeJson(JsonValue::number(1e15)), "1000000000000000");
  EXPECT_EQ(writeJson(JsonValue::number(1.5)), "1.5");
}

TEST(ServeProtocolTest, MalformedInputsFailWithReason) {
  const char *Bad[] = {
      "",           "{",         "{\"a\":}",       "[1,",
      "\"abc",      "\"\\q\"",   "\"\\u12g4\"",    "\"\\ud800x\"",
      "tru",        "{} extra",  "{\"a\" 1}",      "nan",
  };
  for (const char *Text : Bad) {
    JsonValue V;
    std::string Err;
    EXPECT_FALSE(parseJson(Text, V, Err)) << "'" << Text << "' parsed";
    EXPECT_FALSE(Err.empty()) << "'" << Text << "' gave no reason";
  }
}

TEST(ServeProtocolTest, FieldAccessorsApplyDefaults) {
  JsonValue V = parsed("{\"s\":\"x\",\"n\":3,\"b\":true}");
  EXPECT_EQ(V.stringField("s"), "x");
  EXPECT_EQ(V.stringField("missing", "fallback"), "fallback");
  EXPECT_EQ(V.numberField("n"), 3.0);
  EXPECT_EQ(V.numberField("missing", -1), -1.0);
  EXPECT_TRUE(V.boolField("b"));
  EXPECT_TRUE(V.boolField("missing", true));
  // Type mismatches also fall back to the default.
  EXPECT_EQ(V.stringField("n", "d"), "d");
  EXPECT_EQ(V.numberField("s", 9), 9.0);
}

//===----------------------------------------------------------------------===//
// Request handlers (socketless)
//===----------------------------------------------------------------------===//

TEST(ServeHandlerTest, HandshakeCarriesIdentity) {
  ServeOptions SO;
  Server S(SO);
  JsonValue R = respond(S, "{\"cmd\":\"handshake\"}");
  EXPECT_TRUE(R.boolField("ok"));
  EXPECT_EQ(R.stringField("version"), JsaiVersion);
  EXPECT_EQ(R.stringField("config_fingerprint"),
            runConfigFingerprint(DriverOptions()));
  EXPECT_EQ(R.numberField("pid"), double(::getpid()));
  EXPECT_EQ(S.stats().Requests, 1u);
  EXPECT_EQ(S.stats().Errors, 0u);
}

TEST(ServeHandlerTest, BadRequestsAreCountedAndAnswered) {
  ServeOptions SO;
  Server S(SO);
  EXPECT_FALSE(respond(S, "{not json").boolField("ok", true));
  EXPECT_FALSE(respond(S, "[1,2]").boolField("ok", true));
  EXPECT_NE(respond(S, "{\"cmd\":\"frobnicate\"}").stringField("error").find(
                "unknown cmd"),
            std::string::npos);
  EXPECT_NE(respond(S, "{\"cmd\":\"analyze\"}").stringField("error").find(
                "requires \"dir\""),
            std::string::npos);
  EXPECT_NE(respond(S, "{\"cmd\":\"analyze\",\"dir\":\"/nonexistent-xyz\"}")
                .stringField("error")
                .find("no .js files"),
            std::string::npos);
  EXPECT_EQ(S.stats().Requests, 5u);
  EXPECT_EQ(S.stats().Errors, 5u);
  EXPECT_EQ(S.stats().Analyses, 0u);
}

TEST(ServeHandlerTest, ShutdownSetsFlag) {
  ServeOptions SO;
  Server S(SO);
  bool Shutdown = false;
  JsonValue R = parsed(S.handleLine("{\"cmd\":\"shutdown\"}", Shutdown));
  EXPECT_TRUE(Shutdown);
  EXPECT_TRUE(R.boolField("ok"));
  EXPECT_TRUE(R.boolField("shutdown"));
}

TEST(ServeHandlerTest, ServedReportMatchesOneShotByteForByte) {
  TempDir Proj("analyze-project");
  writeTrivialProject(Proj.Path);

  ServeOptions SO;
  Server S(SO);
  JsonValue R =
      respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\"}");
  ASSERT_TRUE(R.boolField("ok")) << R.stringField("error");
  EXPECT_EQ(R.stringField("project"), Proj.str());
  EXPECT_EQ(R.stringField("outcome"), "ok");

  // The byte-identity contract: the served report is exactly what a local
  // one-shot run over the same directory renders.
  ProjectSpec Spec;
  ASSERT_GT(Spec.Files.addDirectory(Proj.str()), 0u);
  Spec.Name = Proj.str();
  DriverOptions DO;
  RunSummary Local = CorpusDriver(DO).run({Spec});
  EXPECT_EQ(R.stringField("report"), renderReport(Local, DO));
  EXPECT_EQ(S.stats().Analyses, 1u);
}

TEST(ServeHandlerTest, ReplayHitsOnIdenticalRequestMissesAfterEdit) {
  TempDir Proj("replay-project");
  writeTrivialProject(Proj.Path);
  std::string Line = "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\"}";

  ServeOptions SO;
  Server S(SO);
  std::string First = writeJson(respond(S, Line));
  std::string Second = writeJson(respond(S, Line));
  EXPECT_EQ(First, Second);
  EXPECT_EQ(S.stats().Analyses, 1u) << "second request must replay";
  EXPECT_EQ(S.stats().ReplayHits, 1u);

  // An on-disk edit changes the content digest in the replay key, so the
  // same request line re-analyzes and the report changes with the source.
  writeFile(Proj.Path / "app" / "main.js",
            "function f(o) { return o.x; }\n"
            "function g(o) { return o.y; }\n"
            "var r = f({ x: 1 });\n"
            "var s = g({ y: 2 });\n");
  std::string Edited = writeJson(respond(S, Line));
  EXPECT_NE(Edited, First);
  EXPECT_EQ(S.stats().Analyses, 2u);
  EXPECT_EQ(S.stats().ReplayHits, 1u);
}

TEST(ServeHandlerTest, WarmSolverServesStoredColdBytesOnUnchangedSources) {
  TempDir Proj("warm-solver-project");
  writeTrivialProject(Proj.Path);

  ServeOptions SO;
  SO.WarmSolver = true;
  Server S(SO);

  // Cold request: full run plus a retained tracked solver.
  std::string ColdLine =
      "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\"}";
  std::string Cold = writeJson(respond(S, ColdLine));
  EXPECT_EQ(S.stats().Analyses, 1u);
  ASSERT_EQ(S.stats().WarmSolverBuilds, 1u)
      << "the trivial project must build a revalidatable slot";

  // A different request line over unchanged sources misses the replay map
  // but hits the warm slot: the retained solver revalidates (retract +
  // re-add + incremental re-solve) and the stored cold response is served
  // byte-for-byte — no full pipeline run.
  std::string WarmLine =
      "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\",\"jobs\":2}";
  std::string Warm = writeJson(respond(S, WarmLine));
  EXPECT_EQ(Warm, Cold);
  EXPECT_EQ(S.stats().Analyses, 1u) << "warm hit must not re-run cold";
  EXPECT_EQ(S.stats().WarmSolverHits, 1u);
  EXPECT_EQ(S.stats().WarmSolverFallbacks, 0u);

  // The warm hit populated the replay map under the new line's key.
  std::string Again = writeJson(respond(S, WarmLine));
  EXPECT_EQ(Again, Cold);
  EXPECT_EQ(S.stats().ReplayHits, 1u);
  EXPECT_EQ(S.stats().WarmSolverHits, 1u);

  // An on-disk edit invalidates the slot's source digest: the next
  // request takes the cold path (and rebuilds the slot for the new
  // sources).
  writeFile(Proj.Path / "app" / "main.js",
            "function f(o) { return o.x; }\n"
            "function g(o) { return o.y; }\n"
            "var r = f({ x: 1 });\n"
            "var s = g({ y: 2 });\n");
  std::string Edited = writeJson(respond(S, ColdLine));
  EXPECT_NE(Edited, Cold);
  EXPECT_EQ(S.stats().Analyses, 2u);
  EXPECT_EQ(S.stats().WarmSolverBuilds, 2u);
  EXPECT_EQ(S.stats().WarmSolverHits, 1u);
}

TEST(ServeHandlerTest, WarmSolverOffByDefault) {
  TempDir Proj("warm-solver-off");
  writeTrivialProject(Proj.Path);
  ServeOptions SO;
  Server S(SO);
  respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\"}");
  respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() +
                 "\",\"jobs\":2}");
  EXPECT_EQ(S.stats().WarmSolverBuilds, 0u);
  EXPECT_EQ(S.stats().WarmSolverHits, 0u);
  EXPECT_EQ(S.stats().Analyses, 2u) << "without the flag both runs are cold";
}

TEST(ServeHandlerTest, WarmSolverSkipsTimedAndDeadlineRequests) {
  // Timings make report bytes nondeterministic and deadlines can degrade
  // outcomes, so neither side of the warm path may engage for them.
  TempDir Proj("warm-solver-timed");
  writeTrivialProject(Proj.Path);
  ServeOptions SO;
  SO.WarmSolver = true;
  Server S(SO);
  respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() +
                 "\",\"timings\":true}");
  EXPECT_EQ(S.stats().WarmSolverBuilds, 0u);
  respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() +
                 "\",\"deadline_analysis\":100}");
  EXPECT_EQ(S.stats().WarmSolverBuilds, 0u);
  EXPECT_EQ(S.stats().WarmSolverHits, 0u);
}

TEST(ServeHandlerTest, MissingMainModuleIsAnError) {
  TempDir Proj("no-main");
  writeFile(Proj.Path / "lib" / "util.js", "var x = 1;\n");
  ServeOptions SO;
  Server S(SO);
  JsonValue R =
      respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\"}");
  EXPECT_FALSE(R.boolField("ok", true));
  EXPECT_NE(R.stringField("error").find("main module"), std::string::npos);
  // Naming an existing main explicitly succeeds.
  JsonValue Ok = respond(S, "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() +
                                "\",\"main\":\"lib/util.js\"}");
  EXPECT_TRUE(Ok.boolField("ok")) << Ok.stringField("error");
}

TEST(ServeHandlerTest, StatsAccumulateCacheCountersAcrossRequests) {
  TempDir Proj("stats-project");
  TempDir CacheDir("stats-cache");
  writeTrivialProject(Proj.Path);

  ServeOptions SO;
  SO.Cache.Dir = CacheDir.str();
  Server S(SO);
  std::string Line = "{\"cmd\":\"analyze\",\"dir\":\"" + Proj.str() + "\"}";
  ASSERT_TRUE(respond(S, Line).boolField("ok"));

  JsonValue Stats = respond(S, "{\"cmd\":\"stats\"}");
  EXPECT_TRUE(Stats.boolField("ok"));
  EXPECT_EQ(Stats.stringField("version"), JsaiVersion);
  EXPECT_EQ(Stats.numberField("analyses"), 1.0);
  const JsonValue *C = Stats.field("cache");
  ASSERT_NE(C, nullptr);
  // Cold single-module project: project-entry miss + slice miss, then one
  // slice write + the project-entry write.
  EXPECT_EQ(C->numberField("misses"), 2.0);
  EXPECT_EQ(C->numberField("writes"), 2.0);

  // A fresh daemon over the same (now warm) cache dir hits the project
  // entry; the replay map is per-daemon so this is a real cache exercise.
  Server S2(SO);
  ASSERT_TRUE(respond(S2, Line).boolField("ok"));
  JsonValue Stats2 = respond(S2, "{\"cmd\":\"stats\"}");
  EXPECT_EQ(Stats2.field("cache")->numberField("hits"), 1.0);
  EXPECT_EQ(Stats2.field("cache")->numberField("misses"), 0.0);
  EXPECT_EQ(Stats2.field("cache")->numberField("writes"), 0.0);
}

//===----------------------------------------------------------------------===//
// Daemon over a real socket
//===----------------------------------------------------------------------===//

TEST(ServeSocketTest, ClientRoundTripAndShutdown) {
  TempDir Proj("socket-project");
  writeTrivialProject(Proj.Path);

  ServeOptions SO;
  SO.SocketPath = socketPath("round-trip");
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  ServeExit Exit = ServeExit::Error;
  std::thread Daemon([&] { Exit = S.run(); });

  Client C;
  ASSERT_TRUE(C.connect(SO.SocketPath, Err)) << Err;
  JsonValue Hello;
  ASSERT_TRUE(C.handshake(Hello, Err)) << Err;
  EXPECT_EQ(Hello.stringField("version"), JsaiVersion);

  JsonValue Req = JsonValue::object();
  Req.set("cmd", JsonValue::str("analyze"));
  Req.set("dir", JsonValue::str(Proj.str()));
  JsonValue Resp;
  ASSERT_TRUE(C.request(Req, Resp, Err)) << Err;
  ASSERT_TRUE(Resp.boolField("ok")) << Resp.stringField("error");

  ProjectSpec Spec;
  ASSERT_GT(Spec.Files.addDirectory(Proj.str()), 0u);
  Spec.Name = Proj.str();
  DriverOptions DO;
  RunSummary Local = CorpusDriver(DO).run({Spec});
  EXPECT_EQ(Resp.stringField("report"), renderReport(Local, DO));

  JsonValue Bye = JsonValue::object();
  Bye.set("cmd", JsonValue::str("shutdown"));
  ASSERT_TRUE(C.request(Bye, Resp, Err)) << Err;
  EXPECT_TRUE(Resp.boolField("shutdown"));
  Daemon.join();
  EXPECT_EQ(Exit, ServeExit::Shutdown);
}

TEST(ServeSocketTest, StaleSocketFileIsReclaimed) {
  std::string Path = socketPath("stale");
  // Simulate a dead daemon: bind the path, then close without unlinking.
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  ::close(Fd);
  ASSERT_TRUE(std::filesystem::exists(Path));

  ServeOptions SO;
  SO.SocketPath = Path;
  Server S(SO);
  std::string Err;
  EXPECT_TRUE(S.start(Err)) << Err;
}

TEST(ServeSocketTest, SecondDaemonOnLivePathIsRefused) {
  ServeOptions SO;
  SO.SocketPath = socketPath("conflict");
  Server First(SO);
  std::string Err;
  ASSERT_TRUE(First.start(Err)) << Err;

  Server Second(SO);
  EXPECT_FALSE(Second.start(Err));
  EXPECT_NE(Err.find("already serving"), std::string::npos) << Err;
  // The loser must not have unlinked the winner's socket.
  EXPECT_TRUE(std::filesystem::exists(SO.SocketPath));
}

TEST(ServeSocketTest, InterruptTokenStopsTheAcceptLoop) {
  CancellationToken Interrupt;
  ServeOptions SO;
  SO.SocketPath = socketPath("interrupt");
  SO.Interrupt = &Interrupt;
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  ServeExit Exit = ServeExit::Error;
  std::thread Daemon([&] { Exit = S.run(); });
  Interrupt.cancelNow();
  Daemon.join();
  EXPECT_EQ(Exit, ServeExit::Interrupted);
}

TEST(ServeSocketTest, RequestStopEndsTheLoop) {
  ServeOptions SO;
  SO.SocketPath = socketPath("stop");
  Server S(SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  ServeExit Exit = ServeExit::Error;
  std::thread Daemon([&] { Exit = S.run(); });
  S.requestStop();
  Daemon.join();
  EXPECT_EQ(Exit, ServeExit::Shutdown);
}

TEST(ServeClientTest, ConnectToMissingSocketFails) {
  Client C;
  std::string Err;
  EXPECT_FALSE(C.connect(socketPath("nobody-home"), Err));
  EXPECT_FALSE(Err.empty());
  JsonValue Resp;
  EXPECT_FALSE(C.request(JsonValue::object(), Resp, Err));
  EXPECT_NE(Err.find("not connected"), std::string::npos);
}

} // namespace
