//===- RobustnessTest.cpp - Failure injection and hostile inputs -------------===//
//
// The pipeline must degrade gracefully: parse errors in one module, crashes
// in top-level code, exhausted budgets, garbage hint files, and pathological
// inputs must never take down an analysis run (an analyzer that dies on one
// dependency is useless for whole-program work).
//
//===----------------------------------------------------------------------===//

#include "approx/ApproxInterpreter.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

TEST(RobustnessTest, ParseErrorInOneModuleDoesNotBlockOthers) {
  ProjectSpec Spec;
  Spec.Name = "partial-parse";
  Spec.Files.addFile("app/main.js", "var lib = require('good');\n"
                                    "lib.fine();");
  Spec.Files.addFile("good/index.js", "exports.fine = function fine() {};");
  Spec.Files.addFile("broken/index.js", "var = ;;; function ( {");
  ProjectAnalyzer A(Spec);
  EXPECT_TRUE(A.diagnostics().hasErrors()) << "the broken module must report";
  // The analyses still run over the well-formed modules.
  AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
  FileId AppF = A.context().files().lookup("app/main.js");
  bool Found = false;
  for (const auto &[Site, Callees] : Ext.CG.edges())
    if (Site.File == AppF && Site.Line == 2 && !Callees.empty())
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(RobustnessTest, ThrowingTopLevelModule) {
  ProjectSpec Spec;
  Spec.Name = "throwing-module";
  Spec.Files.addFile("app/main.js",
                     "var ok = require('stable');\n"
                     "var boom = require('exploder');\n" // Throws on load.
                     "ok.use();");
  Spec.Files.addFile("stable/index.js", "exports.use = function use() {};");
  Spec.Files.addFile("exploder/index.js",
                     "throw new Error('init failure');");
  ProjectAnalyzer A(Spec);
  // Approximate interpretation records what it can before/around the throw.
  EXPECT_NO_FATAL_FAILURE(A.hints());
  AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
  EXPECT_GT(Ext.NumCallSites, 0u);
}

TEST(RobustnessTest, InfiniteLoopInLibraryOnlyCostsItsBudget) {
  ProjectSpec Spec;
  Spec.Name = "spinner";
  Spec.Files.addFile("app/main.js",
                     "var spin = require('spinner');\n"
                     "var sane = require('sane');\n"
                     "sane.register();");
  Spec.Files.addFile("spinner/index.js",
                     "exports.spin = function spin() {\n"
                     "  while (true) { var x = 1; }\n"
                     "};");
  Spec.Files.addFile("sane/index.js",
                     "exports.register = function register() {\n"
                     "  var t = {};\n"
                     "  t['k' + ''] = function target() {};\n"
                     "};");
  ApproxOptions Opts;
  Opts.MaxLoopIterations = 500;
  ProjectAnalyzer A(Spec, Opts);
  const HintSet &Hints = A.hints();
  EXPECT_GE(A.approxStats().NumAborts, 1u) << "spin() must hit the budget";
  bool FoundSaneHint = false;
  for (const WriteHint &W : Hints.writeHints())
    if (W.Prop == "k")
      FoundSaneHint = true;
  EXPECT_TRUE(FoundSaneHint) << "the abort must not lose other hints";
}

TEST(RobustnessTest, MissingRequireTargetInDriver) {
  ProjectSpec Spec;
  Spec.Name = "missing-dep";
  Spec.Files.addFile("app/main.js", "function before() {}\n"
                                    "before();\n"
                                    "require('not-installed');\n"
                                    "function after() {}\n"
                                    "after();");
  Spec.TestDriver = "app/main.js";
  ProjectAnalyzer A(Spec);
  const CallGraph &Dyn = A.dynamicCallGraph();
  // Edges up to the failing require are recorded.
  EXPECT_GE(Dyn.numEdges(), 1u);
  // The static analyses are unaffected by the runtime failure.
  AnalysisResult Base = A.analyze(AnalysisMode::Baseline);
  EXPECT_GE(Base.NumCallEdges, 2u);
}

TEST(RobustnessTest, EmptyAndTrivialProjects) {
  for (const char *Source : {"", ";;;", "// only a comment\n"}) {
    ProjectSpec Spec;
    Spec.Name = "trivial";
    Spec.Files.addFile("app/main.js", Source);
    ProjectAnalyzer A(Spec);
    EXPECT_EQ(A.hints().size(), 0u);
    AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
    EXPECT_EQ(Ext.NumCallEdges, 0u);
    EXPECT_EQ(Ext.NumCallSites, 0u);
  }
}

TEST(RobustnessTest, DeeplyNestedExpressionsParse) {
  std::string Source = "var x = ";
  for (int I = 0; I != 200; ++I)
    Source += "(1 + ";
  Source += "0";
  for (int I = 0; I != 200; ++I)
    Source += ")";
  Source += ";";
  ProjectSpec Spec;
  Spec.Name = "deep-nesting";
  Spec.Files.addFile("app/main.js", Source);
  ProjectAnalyzer A(Spec);
  EXPECT_FALSE(A.diagnostics().hasErrors());
  EXPECT_NO_FATAL_FAILURE(A.analyze(AnalysisMode::Baseline));
}

TEST(RobustnessTest, LargeArrayLiteral) {
  std::string Source = "var a = [";
  for (int I = 0; I != 5000; ++I) {
    if (I)
      Source += ",";
    Source += std::to_string(I);
  }
  Source += "];\nvar total = a.length;";
  ProjectSpec Spec;
  Spec.Name = "large-array";
  Spec.Files.addFile("app/main.js", Source);
  ProjectAnalyzer A(Spec);
  EXPECT_FALSE(A.diagnostics().hasErrors());
  EXPECT_NO_FATAL_FAILURE(A.hints());
}

TEST(RobustnessTest, GarbageHintFileDeserializesToEmpty) {
  FileTable Files;
  Files.add("app/main.js");
  for (const char *Garbage :
       {"", "not hints at all", "R |||| ||||", "W x y z extra junk",
        "R app/main.js|abc|def app/main.js|1|1|O\n",
        "jsai-hints v1\nX unknown-kind a b\n"}) {
    HintSet H = HintSet::deserialize(Garbage, Files);
    EXPECT_EQ(H.size(), 0u) << "garbage: " << Garbage;
  }
}

TEST(RobustnessTest, HintsAgainstWrongProjectAreHarmless) {
  // Hints produced for one project applied to a different project with the
  // same file names must not crash (locations simply fail to resolve).
  ProjectSpec A1;
  A1.Name = "first";
  A1.Files.addFile("app/main.js", "var o = {};\n"
                                  "o['k' + ''] = function f() {};\n"
                                  "o.k();");
  ProjectAnalyzer An1(A1);
  std::string Portable = An1.hints().serialize(An1.context().files());

  ProjectSpec A2;
  A2.Name = "second";
  A2.Files.addFile("app/main.js", "function unrelated() {}\nunrelated();");
  AstContext Ctx;
  DiagnosticEngine Diags;
  ModuleLoader Loader(Ctx, A2.Files, Diags);
  Loader.parseAll();
  HintSet Imported = HintSet::deserialize(Portable, Ctx.files());
  AnalysisOptions Opts;
  Opts.Mode = AnalysisMode::Hints;
  StaticAnalysis SA(Loader, Opts, &Imported);
  AnalysisResult Res = SA.run();
  EXPECT_EQ(Res.NumCallEdges, 1u) << "only the real edge survives";
}

TEST(RobustnessTest, RecursiveDataStructuresInToString) {
  // Cyclic object graphs must not hang stringification (depth-limited).
  ProjectSpec Spec;
  Spec.Name = "cycle";
  Spec.Files.addFile("app/main.js", "var a = {};\n"
                                    "var b = { a: a };\n"
                                    "a.b = b;\n"
                                    "var s = JSON.stringify(a);\n"
                                    "console.log(typeof s);");
  AstContext Ctx;
  DiagnosticEngine Diags;
  ModuleLoader Loader(Ctx, Spec.Files, Diags);
  Interpreter I(Loader);
  Completion C = I.loadModule("app/main.js");
  EXPECT_FALSE(C.isAbort());
}

TEST(RobustnessTest, SelfRequiringModule) {
  ProjectSpec Spec;
  Spec.Name = "self-require";
  Spec.Files.addFile("app/main.js", "var self = require('./main');\n"
                                    "exports.marker = 'set';");
  ProjectAnalyzer A(Spec);
  EXPECT_NO_FATAL_FAILURE(A.hints());
  EXPECT_NO_FATAL_FAILURE(A.analyze(AnalysisMode::Hints));
}

TEST(RobustnessTest, ManyModulesScale) {
  // 200 modules requiring each other in a chain: parsing, approximate
  // interpretation, and analysis all stay linear-ish and complete.
  ProjectSpec Spec;
  Spec.Name = "chain-200";
  for (int I = 0; I != 200; ++I) {
    std::string Source;
    if (I + 1 != 200)
      Source += "var next = require('m" + std::to_string(I + 1) + "');\n";
    Source += "exports.step = function step" + std::to_string(I) +
              "() { return " + std::to_string(I) + "; };\n";
    Source += "exports.step();\n";
    if (I == 0)
      Spec.Files.addFile("app/main.js",
                         "var chain = require('m1');\nchain.step();");
    Spec.Files.addFile("m" + std::to_string(I) + "/index.js", Source);
  }
  ProjectAnalyzer A(Spec);
  EXPECT_FALSE(A.diagnostics().hasErrors());
  AnalysisResult Ext = A.analyze(AnalysisMode::Hints);
  EXPECT_GT(Ext.NumReachableFunctions, 150u)
      << "the whole chain is reachable through require edges";
}

} // namespace
