//===- ParserTest.cpp - Tests for the MiniJS parser -------------------------===//

#include "ast/AstPrinter.h"
#include "ast/ScopeResolver.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

struct Parsed {
  std::unique_ptr<AstContext> Ctx;
  DiagnosticEngine Diags;
  Module *M = nullptr;
};

Parsed parse(const std::string &Source, bool ExpectErrors = false) {
  Parsed P;
  P.Ctx = std::make_unique<AstContext>();
  Parser Par(*P.Ctx, P.Diags);
  P.M = Par.parseModule("app/main.js", "app", Source);
  ScopeResolver(*P.Ctx).resolveAll();
  if (!ExpectErrors) {
    EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.render(P.Ctx->files());
  }
  return P;
}

/// First top-level statement of the module.
Stmt *firstStmt(Parsed &P) {
  const auto &Body = P.M->Func->body()->body();
  EXPECT_FALSE(Body.empty());
  return Body.front();
}

Expr *firstExpr(Parsed &P) {
  auto *S = dyn_cast<ExprStmt>(firstStmt(P));
  EXPECT_NE(S, nullptr);
  return S ? S->expr() : nullptr;
}

TEST(ParserTest, ModuleFunctionShape) {
  Parsed P = parse("var x = 1;");
  ASSERT_NE(P.M, nullptr);
  FunctionDef *F = P.M->Func;
  EXPECT_TRUE(F->isModule());
  ASSERT_EQ(F->params().size(), 3u);
  EXPECT_EQ(F->params()[0]->name(), P.Ctx->SymExports);
  EXPECT_EQ(F->params()[1]->name(), P.Ctx->SymRequire);
  EXPECT_EQ(F->params()[2]->name(), P.Ctx->SymModule);
  EXPECT_EQ(P.M->Package, "app");
}

TEST(ParserTest, VarDeclCreatesHoistedVars) {
  Parsed P = parse("var a = 1, b;");
  auto *S = dyn_cast<VarDeclStmt>(firstStmt(P));
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->declarators().size(), 2u);
  EXPECT_NE(S->declarators()[0].Init, nullptr);
  EXPECT_EQ(S->declarators()[1].Init, nullptr);
  // Hoisted into the module function scope.
  FunctionDef *F = P.M->Func;
  EXPECT_EQ(F->hoistedVars().size(), 2u);
}

TEST(ParserTest, VarRedeclarationSharesDecl) {
  Parsed P = parse("var a = 1; var a = 2;");
  auto *S1 = cast<VarDeclStmt>(P.M->Func->body()->body()[0]);
  auto *S2 = cast<VarDeclStmt>(P.M->Func->body()->body()[1]);
  EXPECT_EQ(S1->declarators()[0].Decl, S2->declarators()[0].Decl);
}

TEST(ParserTest, FunctionDeclarationHoisted) {
  Parsed P = parse("function f(a, b) { return a; }");
  auto *S = dyn_cast<FunctionDeclStmt>(firstStmt(P));
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->def()->params().size(), 2u);
  EXPECT_FALSE(S->def()->isArrow());
  ASSERT_EQ(P.M->Func->hoistedFuncs().size(), 1u);
  EXPECT_EQ(P.M->Func->hoistedFuncs()[0], S);
}

TEST(ParserTest, NestedFunctionParentChain) {
  Parsed P = parse("function outer() { function inner() {} }");
  auto *Outer = cast<FunctionDeclStmt>(firstStmt(P))->def();
  ASSERT_EQ(Outer->hoistedFuncs().size(), 1u);
  FunctionDef *Inner = Outer->hoistedFuncs()[0]->def();
  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Outer->parent(), P.M->Func);
}

TEST(ParserTest, IdentResolvesToParam) {
  Parsed P = parse("function f(x) { return x; }");
  FunctionDef *F = cast<FunctionDeclStmt>(firstStmt(P))->def();
  auto *Ret = cast<ReturnStmt>(F->body()->body()[0]);
  auto *I = cast<Ident>(Ret->value());
  EXPECT_EQ(I->decl(), F->params()[0]);
}

TEST(ParserTest, IdentResolvesThroughClosure) {
  Parsed P = parse("var captured = 1;\n"
                   "function f() { return captured; }");
  auto *VD = cast<VarDeclStmt>(P.M->Func->body()->body()[0]);
  FunctionDef *F = cast<FunctionDeclStmt>(P.M->Func->body()->body()[1])->def();
  auto *Ret = cast<ReturnStmt>(F->body()->body()[0]);
  EXPECT_EQ(cast<Ident>(Ret->value())->decl(), VD->declarators()[0].Decl);
}

TEST(ParserTest, UnresolvedIdentIsGlobal) {
  Parsed P = parse("console.log(1);");
  auto *Call = cast<CallExpr>(firstExpr(P));
  auto *M = cast<MemberExpr>(Call->callee());
  auto *I = cast<Ident>(M->object());
  EXPECT_EQ(I->decl(), nullptr) << "console must stay unresolved (global)";
}

TEST(ParserTest, NamedFunctionExpressionSelfBinding) {
  Parsed P = parse("var f = function rec(n) { return rec(n); };");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *FE = cast<FunctionExpr>(VD->declarators()[0].Init);
  FunctionDef *F = FE->def();
  auto *Ret = cast<ReturnStmt>(F->body()->body()[0]);
  auto *Call = cast<CallExpr>(Ret->value());
  auto *Callee = cast<Ident>(Call->callee());
  ASSERT_NE(Callee->decl(), nullptr);
  EXPECT_EQ(Callee->decl()->owner(), F) << "self binding lives in own scope";
}

TEST(ParserTest, ArrowFunctionSingleParam) {
  Parsed P = parse("var f = x => x + 1;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *FE = cast<FunctionExpr>(VD->declarators()[0].Init);
  EXPECT_TRUE(FE->def()->isArrow());
  ASSERT_EQ(FE->def()->params().size(), 1u);
  // Concise body desugars to a return statement.
  auto *Ret = dyn_cast<ReturnStmt>(FE->def()->body()->body()[0]);
  EXPECT_NE(Ret, nullptr);
}

TEST(ParserTest, ArrowFunctionParenParams) {
  Parsed P = parse("var f = (a, b) => { return a; };");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *FE = cast<FunctionExpr>(VD->declarators()[0].Init);
  EXPECT_TRUE(FE->def()->isArrow());
  EXPECT_EQ(FE->def()->params().size(), 2u);
}

TEST(ParserTest, ParenthesizedExprIsNotArrow) {
  Parsed P = parse("var x = (1 + 2) * 3;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  EXPECT_EQ(VD->declarators()[0].Init->kind(), NodeKind::Binary);
}

TEST(ParserTest, EmptyArrowParams) {
  Parsed P = parse("var f = () => 42;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *FE = cast<FunctionExpr>(VD->declarators()[0].Init);
  EXPECT_TRUE(FE->def()->params().empty());
}

TEST(ParserTest, ObjectLiteralForms) {
  Parsed P = parse("var o = { a: 1, 'b c': 2, 3: true, d, m() { return 1; },"
                   " [k]: 5 };");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *O = cast<ObjectLit>(VD->declarators()[0].Init);
  const auto &Props = O->properties();
  ASSERT_EQ(Props.size(), 6u);
  EXPECT_EQ(P.Ctx->strings().str(Props[0].Key), "a");
  EXPECT_EQ(P.Ctx->strings().str(Props[1].Key), "b c");
  EXPECT_EQ(P.Ctx->strings().str(Props[2].Key), "3");
  // Shorthand becomes an Ident value.
  EXPECT_EQ(Props[3].Value->kind(), NodeKind::Ident);
  // Method shorthand becomes a FunctionExpr.
  EXPECT_EQ(Props[4].Value->kind(), NodeKind::FunctionExpr);
  // Computed key.
  EXPECT_NE(Props[5].KeyExpr, nullptr);
  EXPECT_EQ(Props[5].Key, InvalidSymbol);
}

TEST(ParserTest, KeywordAsPropertyName) {
  Parsed P = parse("var o = { default: 1, new: 2 }; o.default; o.in;");
  EXPECT_FALSE(P.Diags.hasErrors());
}

TEST(ParserTest, ArrayLiteral) {
  Parsed P = parse("var a = [1, 'two', [3]];");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *A = cast<ArrayLit>(VD->declarators()[0].Init);
  ASSERT_EQ(A->elements().size(), 3u);
  EXPECT_EQ(A->elements()[2]->kind(), NodeKind::ArrayLit);
}

TEST(ParserTest, MemberFixedVsComputed) {
  Parsed P = parse("a.b; a['b']; a[i];");
  const auto &Body = P.M->Func->body()->body();
  auto *Fixed = cast<MemberExpr>(cast<ExprStmt>(Body[0])->expr());
  EXPECT_FALSE(Fixed->isComputed());
  auto *Computed = cast<MemberExpr>(cast<ExprStmt>(Body[1])->expr());
  EXPECT_TRUE(Computed->isComputed());
  auto *Dyn = cast<MemberExpr>(cast<ExprStmt>(Body[2])->expr());
  EXPECT_TRUE(Dyn->isComputed());
}

TEST(ParserTest, CallChain) {
  Parsed P = parse("a.b(1)(2).c[d](3);");
  // Just verify it parses into a Call whose callee ends in computed member.
  auto *Outer = cast<CallExpr>(firstExpr(P));
  ASSERT_EQ(Outer->args().size(), 1u);
  auto *M = cast<MemberExpr>(Outer->callee());
  EXPECT_TRUE(M->isComputed());
}

TEST(ParserTest, NewExpression) {
  Parsed P = parse("var s = new http.Server(arg);");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *N = cast<NewExpr>(VD->declarators()[0].Init);
  EXPECT_EQ(N->args().size(), 1u);
  EXPECT_EQ(N->callee()->kind(), NodeKind::Member);
}

TEST(ParserTest, NewWithoutArguments) {
  Parsed P = parse("var e = new Error;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *N = cast<NewExpr>(VD->declarators()[0].Init);
  EXPECT_TRUE(N->args().empty());
}

TEST(ParserTest, NewThenCallSuffix) {
  // `new X().go()` — the new binds to X(), the call applies to the result.
  Parsed P = parse("new X().go();");
  auto *Call = cast<CallExpr>(firstExpr(P));
  auto *M = cast<MemberExpr>(Call->callee());
  EXPECT_EQ(M->object()->kind(), NodeKind::New);
}

TEST(ParserTest, AssignmentChained) {
  Parsed P = parse("exports = module.exports = createApplication;");
  auto *A = cast<AssignExpr>(firstExpr(P));
  EXPECT_EQ(A->value()->kind(), NodeKind::Assign) << "right-associative";
}

TEST(ParserTest, CompoundAssignment) {
  Parsed P = parse("x += 2; y ||= z;");
  const auto &Body = P.M->Func->body()->body();
  EXPECT_EQ(cast<AssignExpr>(cast<ExprStmt>(Body[0])->expr())->op(),
            AssignOp::Add);
  EXPECT_EQ(cast<AssignExpr>(cast<ExprStmt>(Body[1])->expr())->op(),
            AssignOp::OrOr);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  Parsed P = parse("var x = 1 + 2 * 3;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *Add = cast<BinaryExpr>(VD->declarators()[0].Init);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->rhs())->op(), BinaryOp::Mul);
}

TEST(ParserTest, LogicalShortCircuitShape) {
  Parsed P = parse("var x = a && b || c;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  auto *Or = cast<LogicalExpr>(VD->declarators()[0].Init);
  EXPECT_EQ(Or->op(), LogicalOp::Or);
  EXPECT_EQ(cast<LogicalExpr>(Or->lhs())->op(), LogicalOp::And);
}

TEST(ParserTest, ConditionalExpression) {
  Parsed P = parse("var x = c ? 1 : 2;");
  auto *VD = cast<VarDeclStmt>(firstStmt(P));
  EXPECT_EQ(VD->declarators()[0].Init->kind(), NodeKind::Conditional);
}

TEST(ParserTest, UpdatePrefixPostfix) {
  Parsed P = parse("++i; j--;");
  const auto &Body = P.M->Func->body()->body();
  auto *Pre = cast<UpdateExpr>(cast<ExprStmt>(Body[0])->expr());
  EXPECT_TRUE(Pre->isPrefix());
  EXPECT_TRUE(Pre->isIncrement());
  auto *Post = cast<UpdateExpr>(cast<ExprStmt>(Body[1])->expr());
  EXPECT_FALSE(Post->isPrefix());
  EXPECT_FALSE(Post->isIncrement());
}

TEST(ParserTest, ControlFlowStatements) {
  Parsed P = parse("if (a) { b; } else c;\n"
                   "while (x) { break; }\n"
                   "do { continue; } while (y);\n"
                   "for (var i = 0; i < 10; i++) {}\n"
                   "for (;;) { break; }\n"
                   "switch (v) { case 1: a; break; default: b; }\n"
                   "try { t(); } catch (e) { h(e); } finally { f(); }\n"
                   "throw err;");
  EXPECT_FALSE(P.Diags.hasErrors());
  const auto &Body = P.M->Func->body()->body();
  EXPECT_EQ(Body[0]->kind(), NodeKind::If);
  EXPECT_EQ(Body[1]->kind(), NodeKind::While);
  EXPECT_EQ(Body[2]->kind(), NodeKind::DoWhile);
  EXPECT_EQ(Body[3]->kind(), NodeKind::For);
  EXPECT_EQ(Body[4]->kind(), NodeKind::For);
  EXPECT_EQ(Body[5]->kind(), NodeKind::Switch);
  EXPECT_EQ(Body[6]->kind(), NodeKind::Try);
  EXPECT_EQ(Body[7]->kind(), NodeKind::Throw);
}

TEST(ParserTest, ForInWithDecl) {
  Parsed P = parse("for (var k in obj) { use(k); }");
  auto *L = cast<ForInStmt>(firstStmt(P));
  ASSERT_NE(L->decl(), nullptr);
  EXPECT_FALSE(L->isOf());
}

TEST(ParserTest, ForOfWithDecl) {
  Parsed P = parse("for (const x of arr) { use(x); }");
  auto *L = cast<ForInStmt>(firstStmt(P));
  ASSERT_NE(L->decl(), nullptr);
  EXPECT_TRUE(L->isOf());
}

TEST(ParserTest, ForInWithExistingTarget) {
  Parsed P = parse("var k; for (k in obj) {}");
  auto *L = cast<ForInStmt>(P.M->Func->body()->body()[1]);
  EXPECT_EQ(L->decl(), nullptr);
  ASSERT_NE(L->target(), nullptr);
  EXPECT_EQ(L->target()->kind(), NodeKind::Ident);
}

TEST(ParserTest, SequenceExpression) {
  Parsed P = parse("a, b, c;");
  auto *S = cast<SequenceExpr>(firstExpr(P));
  EXPECT_EQ(S->exprs().size(), 3u);
}

TEST(ParserTest, MissingSemicolonIsError) {
  Parsed P = parse("var x = 1 var y = 2;", /*ExpectErrors=*/true);
  EXPECT_TRUE(P.Diags.hasErrors());
}

TEST(ParserTest, ErrorRecoveryKeepsGoing) {
  Parsed P = parse("var = ;\n var ok = 1;", /*ExpectErrors=*/true);
  EXPECT_TRUE(P.Diags.hasErrors());
  // The second statement must still be present.
  bool FoundOk = false;
  for (Stmt *S : P.M->Func->body()->body())
    if (auto *VD = dyn_cast<VarDeclStmt>(S))
      for (const auto &D : VD->declarators())
        if (P.Ctx->strings().str(D.Decl->name()) == "ok")
          FoundOk = true;
  EXPECT_TRUE(FoundOk);
}

TEST(ParserTest, MotivatingExampleExpressCode) {
  // Figure 1(d) of the paper, nearly verbatim.
  Parsed P = parse(
      "var methods = require('methods');\n"
      "var app = exports = module.exports = {};\n"
      "methods.forEach(function(method) {\n"
      "  app[method] = function(path) {\n"
      "    var route = this._router.route(path);\n"
      "    route[method].apply(route, slice.call(arguments, 1));\n"
      "    return this;\n"
      "  };\n"
      "});\n"
      "app.listen = function listen() {\n"
      "  var server = http.createServer(this);\n"
      "  return server.listen.apply(server, arguments);\n"
      "};\n");
  EXPECT_FALSE(P.Diags.hasErrors()) << P.Diags.render(P.Ctx->files());
}

TEST(ParserTest, AllocationSiteLocsAreDistinct) {
  Parsed P = parse("var a = {};\nvar b = {};\nvar f = function() {};");
  const auto &Body = P.M->Func->body()->body();
  SourceLoc L1 = cast<VarDeclStmt>(Body[0])->declarators()[0].Init->loc();
  SourceLoc L2 = cast<VarDeclStmt>(Body[1])->declarators()[0].Init->loc();
  SourceLoc L3 = cast<VarDeclStmt>(Body[2])->declarators()[0].Init->loc();
  EXPECT_NE(L1, L2);
  EXPECT_NE(L2, L3);
  EXPECT_EQ(L1.Line, 1u);
  EXPECT_EQ(L2.Line, 2u);
  EXPECT_EQ(L3.Line, 3u);
}

TEST(ParserTest, EvalParsingMarksInEval) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  Parser Par(Ctx, Diags);
  Module *M = Par.parseModule("app/main.js", "app", "var host = 1;");
  ASSERT_NE(M, nullptr);
  Parser EvalParser(Ctx, Diags);
  FunctionDef *F = EvalParser.parseEval("var inner = function() {};", M->Func,
                                        SourceLoc(0, 1, 1));
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isInEval());
  EXPECT_EQ(F->parent(), M->Func);
  // Nested functions inherit the in-eval flag.
  bool FoundNested = false;
  for (const auto &Fn : Ctx.functions())
    if (Fn.get() != F && !Fn->isModule() && Fn->isInEval())
      FoundNested = true;
  EXPECT_TRUE(FoundNested);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(ParserTest, EvalParseErrorReturnsNull) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  Parser Par(Ctx, Diags);
  Module *M = Par.parseModule("app/main.js", "app", "var x = 1;");
  Parser EvalParser(Ctx, Diags);
  FunctionDef *F =
      EvalParser.parseEval("var = broken(", M->Func, SourceLoc(0, 1, 1));
  EXPECT_EQ(F, nullptr);
}

TEST(ParserTest, PrinterSmokeTest) {
  Parsed P = parse("var x = a.b[c](1, 'two');");
  AstPrinter Printer(*P.Ctx);
  std::string Out = Printer.printFunction(P.M->Func);
  EXPECT_NE(Out.find("(call"), std::string::npos);
  EXPECT_NE(Out.find("(member-dyn"), std::string::npos);
  EXPECT_NE(Out.find("(string \"two\")"), std::string::npos);
}

} // namespace
