//===- ExplainTest.cpp - Blame and provenance subsystem tests ----------------===//
//
// Covers src/explain/: root-cause classification of missed dynamic call
// edges, witness chains, inflation blame, and the determinism contracts —
// two identical runs (and runs at different solver-jobs counts) must
// produce byte-identical blame output, and turning recording on must not
// change a single metric.
//
//===----------------------------------------------------------------------===//

#include "corpus/BenchmarkSuite.h"
#include "corpus/MotivatingExample.h"
#include "driver/Telemetry.h"
#include "explain/Explain.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace jsai;

namespace {

/// Runs the pipeline on \p Spec with provenance recording on.
ProjectReport analyzeWithBlame(const ProjectSpec &Spec, size_t SolverJobs = 1) {
  Pipeline P(ApproxOptions(), PhaseDeadlines(), nullptr,
             defaultSolverSetKind(), nullptr, SolverJobs, /*Explain=*/true);
  return P.analyzeProject(Spec);
}

/// The blame summary rendered to its canonical JSONL form (the exact bytes
/// a suite report would append), used for byte-level comparisons.
std::string blameBytes(const ProjectReport &R) {
  JobResult Job;
  Job.Report = R;
  return blameRecordJson(Job);
}

TEST(ExplainTest, MotivatingExampleHasBlameSummary) {
  ProjectReport R = analyzeWithBlame(motivatingExampleProject());
  ASSERT_TRUE(R.HasDynamicCG);
  ASSERT_TRUE(R.HasBlame);
  const BlameSummary &B = R.Blame;
  EXPECT_EQ(B.DynamicEdges, R.DynamicEdges);
  // The classifier is total: causes partition the misses.
  size_t Sum = 0;
  for (size_t K = 0; K != size_t(CauseKind::NumCauseKinds); ++K)
    Sum += B.CauseHist[K];
  EXPECT_EQ(Sum, B.MissedEdges);
  EXPECT_EQ(B.Misses.size(), B.MissedEdges);
  for (const MissRecord &M : B.Misses) {
    EXPECT_FALSE(M.Site.empty());
    EXPECT_FALSE(M.Callee.empty());
    EXPECT_FALSE(M.Detail.empty());
  }
}

TEST(ExplainTest, RecordingDoesNotChangeMetrics) {
  ProjectSpec Spec = motivatingExampleProject();
  Pipeline Off(ApproxOptions(), PhaseDeadlines(), nullptr,
               defaultSolverSetKind(), nullptr, 1, /*Explain=*/false);
  Pipeline On(ApproxOptions(), PhaseDeadlines(), nullptr,
              defaultSolverSetKind(), nullptr, 1, /*Explain=*/true);
  ProjectReport A = Off.analyzeProject(Spec);
  ProjectReport B = On.analyzeProject(Spec);
  EXPECT_FALSE(A.HasBlame);
  EXPECT_TRUE(B.HasBlame);
  // The default JSONL record is a function of every metric field: byte
  // equality here is metric equality.
  JobResult JA, JB;
  JA.Report = A;
  JB.Report = B;
  EXPECT_EQ(jobRecordJson(JA, /*IncludeTimings=*/false),
            jobRecordJson(JB, /*IncludeTimings=*/false));
}

TEST(ExplainTest, TwoRunsProduceIdenticalBlameBytes) {
  // Satellite determinism contract: blame output is sorted by the
  // documented tiebreak (cause rank, then site, then callee, then callee
  // var id), so two runs diff clean.
  ProjectSpec Spec = motivatingExampleProject();
  std::string First = blameBytes(analyzeWithBlame(Spec));
  std::string Second = blameBytes(analyzeWithBlame(Spec));
  EXPECT_EQ(First, Second);
}

TEST(ExplainTest, BlameBytesIdenticalAcrossSolverJobs) {
  ProjectSpec Spec = motivatingExampleProject();
  std::string Seq = blameBytes(analyzeWithBlame(Spec, /*SolverJobs=*/1));
  std::string Par = blameBytes(analyzeWithBlame(Spec, /*SolverJobs=*/4));
  EXPECT_EQ(Seq, Par);
}

TEST(ExplainTest, MissesSortedByDocumentedTiebreak) {
  // Check across several dynamic-CG corpus projects: miss records must be
  // ordered by (cause rank, site, callee).
  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();
  size_t Checked = 0;
  for (size_t I = 0; I < Suite.size() && Checked < 6; ++I) {
    ProjectReport R = analyzeWithBlame(Suite[I]);
    if (!R.HasBlame || R.Blame.Misses.size() < 2)
      continue;
    ++Checked;
    const std::vector<MissRecord> &M = R.Blame.Misses;
    for (size_t J = 1; J < M.size(); ++J) {
      const MissRecord &A = M[J - 1], &B = M[J];
      bool Ordered = A.Cause < B.Cause ||
                     (A.Cause == B.Cause &&
                      (A.Site < B.Site ||
                       (A.Site == B.Site && A.Callee <= B.Callee)));
      EXPECT_TRUE(Ordered) << Suite[I].Name << " miss " << J;
    }
  }
}

TEST(ExplainTest, EvalCallClassifiedAsEvalCode) {
  ProjectSpec Spec;
  Spec.Name = "eval-miss";
  // The call site lives inside the eval'd string (the eval pseudo-file):
  // the dynamic recorder sees the edge to `target`, but an analysis
  // without --eval-bodies has no constraints for that site at all.
  Spec.Files.addFile("app/main.js",
                     "function target() { return 1; }\n"
                     "eval(\"target();\");\n");
  Spec.TestDriver = "app/main.js";

  ProjectAnalyzer Analyzer(Spec);
  const CallGraph &Dyn = Analyzer.dynamicCallGraph();
  ASSERT_GT(Dyn.numEdges(), 0u);

  AnalysisOptions AO;
  AO.Mode = AnalysisMode::Hints;
  AO.Explain = true;
  std::unique_ptr<StaticAnalysis> SA = Analyzer.createAnalysis(AO);
  AnalysisResult Res = SA->run();

  ExplainInputs In;
  In.StaticCG = &Res.CG;
  In.DynamicCG = &Dyn;
  BlameSummary B = summarizeBlame(SA->explainView(), In);
  ASSERT_GT(B.MissedEdges, 0u);
  EXPECT_GT(B.CauseHist[size_t(CauseKind::EvalCode)], 0u)
      << "a call into eval'd code must be blamed on eval-code";
}

TEST(ExplainTest, ComputedCallWithoutHintsClassifiedAsMissingHint) {
  ProjectSpec Spec;
  Spec.Name = "computed-miss";
  Spec.Files.addFile("app/main.js",
                     "var obj = { run: function run() { return 1; } };\n"
                     "var key = \"ru\" + \"n\";\n"
                     "obj[key]();\n");
  Spec.TestDriver = "app/main.js";

  ProjectAnalyzer Analyzer(Spec);
  const CallGraph &Dyn = Analyzer.dynamicCallGraph();
  ASSERT_GT(Dyn.numEdges(), 0u);

  // Baseline mode: dynamic-property reads resolve nothing and hint rules
  // are off, so the missed computed call must be blamed on the absent
  // hint machinery.
  AnalysisOptions AO;
  AO.Mode = AnalysisMode::Baseline;
  AO.Explain = true;
  std::unique_ptr<StaticAnalysis> SA = Analyzer.createAnalysis(AO);
  AnalysisResult Res = SA->run();

  ExplainInputs In;
  In.StaticCG = &Res.CG;
  In.DynamicCG = &Dyn;
  BlameSummary B = summarizeBlame(SA->explainView(), In);
  ASSERT_GT(B.MissedEdges, 0u);
  EXPECT_GT(B.CauseHist[size_t(CauseKind::MissingHint)], 0u)
      << "a computed call missed without hint rules must be blamed on "
         "missing-hint";
}

TEST(ExplainTest, RenderTruncatesMissListButNeverTables) {
  // Find a corpus project with at least two misses so --top=1 actually
  // truncates.
  std::vector<ProjectSpec> Suite = benchmarksWithDynamicCG();
  ProjectReport R;
  bool Found = false;
  for (const ProjectSpec &Spec : Suite) {
    R = analyzeWithBlame(Spec);
    if (R.HasBlame && R.Blame.Misses.size() >= 2) {
      Found = true;
      break;
    }
  }
  ASSERT_TRUE(Found) << "no corpus project with two or more missed edges";
  std::string Full = renderBlameReport(R.Blame, 0);
  std::string Top1 = renderBlameReport(R.Blame, 1);
  EXPECT_LT(Top1.size(), Full.size());
  EXPECT_NE(Top1.find("more)"), std::string::npos)
      << "truncated output must say how many records were dropped";
  // The cause histogram and origin table are aggregates: always complete.
  EXPECT_NE(Top1.find("origins ranked by inflation"), std::string::npos);
}

TEST(ExplainTest, CauseNamesAreStable) {
  // The JSONL schema documents these strings; renaming one is a schema
  // break and must be caught.
  EXPECT_STREQ(causeName(CauseKind::EvalCode), "eval-code");
  EXPECT_STREQ(causeName(CauseKind::UnmodeledBuiltin), "unmodeled-builtin");
  EXPECT_STREQ(causeName(CauseKind::MissingHint), "missing-hint");
  EXPECT_STREQ(causeName(CauseKind::ApproxBudget), "approx-budget");
  EXPECT_STREQ(causeName(CauseKind::UnresolvedDynamicProperty),
               "unresolved-dynamic-property");
  EXPECT_STREQ(causeName(CauseKind::DataflowGap), "dataflow-gap");
}

} // namespace
