file(REMOVE_RECURSE
  "CMakeFiles/jsai.dir/jsai.cpp.o"
  "CMakeFiles/jsai.dir/jsai.cpp.o.d"
  "jsai"
  "jsai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
