# Empty compiler generated dependencies file for jsai.
# This may be replaced when dependencies are built.
