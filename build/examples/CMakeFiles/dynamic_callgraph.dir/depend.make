# Empty dependencies file for dynamic_callgraph.
# This may be replaced when dependencies are built.
