file(REMOVE_RECURSE
  "CMakeFiles/dynamic_callgraph.dir/dynamic_callgraph.cpp.o"
  "CMakeFiles/dynamic_callgraph.dir/dynamic_callgraph.cpp.o.d"
  "dynamic_callgraph"
  "dynamic_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
