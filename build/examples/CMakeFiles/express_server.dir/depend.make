# Empty dependencies file for express_server.
# This may be replaced when dependencies are built.
