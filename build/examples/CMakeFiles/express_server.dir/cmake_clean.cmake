file(REMOVE_RECURSE
  "CMakeFiles/express_server.dir/express_server.cpp.o"
  "CMakeFiles/express_server.dir/express_server.cpp.o.d"
  "express_server"
  "express_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
