file(REMOVE_RECURSE
  "CMakeFiles/jsai_runtime.dir/builtins/ArrayBuiltins.cpp.o"
  "CMakeFiles/jsai_runtime.dir/builtins/ArrayBuiltins.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/builtins/Builtins.cpp.o"
  "CMakeFiles/jsai_runtime.dir/builtins/Builtins.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/builtins/FunctionBuiltins.cpp.o"
  "CMakeFiles/jsai_runtime.dir/builtins/FunctionBuiltins.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/builtins/NodeBuiltins.cpp.o"
  "CMakeFiles/jsai_runtime.dir/builtins/NodeBuiltins.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/builtins/ObjectBuiltins.cpp.o"
  "CMakeFiles/jsai_runtime.dir/builtins/ObjectBuiltins.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/builtins/StringBuiltins.cpp.o"
  "CMakeFiles/jsai_runtime.dir/builtins/StringBuiltins.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/interp/FileSystem.cpp.o"
  "CMakeFiles/jsai_runtime.dir/interp/FileSystem.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/interp/Interpreter.cpp.o"
  "CMakeFiles/jsai_runtime.dir/interp/Interpreter.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/interp/ModuleLoader.cpp.o"
  "CMakeFiles/jsai_runtime.dir/interp/ModuleLoader.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/runtime/Environment.cpp.o"
  "CMakeFiles/jsai_runtime.dir/runtime/Environment.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/runtime/Heap.cpp.o"
  "CMakeFiles/jsai_runtime.dir/runtime/Heap.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/runtime/Object.cpp.o"
  "CMakeFiles/jsai_runtime.dir/runtime/Object.cpp.o.d"
  "CMakeFiles/jsai_runtime.dir/runtime/Value.cpp.o"
  "CMakeFiles/jsai_runtime.dir/runtime/Value.cpp.o.d"
  "libjsai_runtime.a"
  "libjsai_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
