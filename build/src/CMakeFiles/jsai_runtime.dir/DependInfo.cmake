
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/builtins/ArrayBuiltins.cpp" "src/CMakeFiles/jsai_runtime.dir/builtins/ArrayBuiltins.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/builtins/ArrayBuiltins.cpp.o.d"
  "/root/repo/src/builtins/Builtins.cpp" "src/CMakeFiles/jsai_runtime.dir/builtins/Builtins.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/builtins/Builtins.cpp.o.d"
  "/root/repo/src/builtins/FunctionBuiltins.cpp" "src/CMakeFiles/jsai_runtime.dir/builtins/FunctionBuiltins.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/builtins/FunctionBuiltins.cpp.o.d"
  "/root/repo/src/builtins/NodeBuiltins.cpp" "src/CMakeFiles/jsai_runtime.dir/builtins/NodeBuiltins.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/builtins/NodeBuiltins.cpp.o.d"
  "/root/repo/src/builtins/ObjectBuiltins.cpp" "src/CMakeFiles/jsai_runtime.dir/builtins/ObjectBuiltins.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/builtins/ObjectBuiltins.cpp.o.d"
  "/root/repo/src/builtins/StringBuiltins.cpp" "src/CMakeFiles/jsai_runtime.dir/builtins/StringBuiltins.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/builtins/StringBuiltins.cpp.o.d"
  "/root/repo/src/interp/FileSystem.cpp" "src/CMakeFiles/jsai_runtime.dir/interp/FileSystem.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/interp/FileSystem.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/jsai_runtime.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/interp/ModuleLoader.cpp" "src/CMakeFiles/jsai_runtime.dir/interp/ModuleLoader.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/interp/ModuleLoader.cpp.o.d"
  "/root/repo/src/runtime/Environment.cpp" "src/CMakeFiles/jsai_runtime.dir/runtime/Environment.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/runtime/Environment.cpp.o.d"
  "/root/repo/src/runtime/Heap.cpp" "src/CMakeFiles/jsai_runtime.dir/runtime/Heap.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/runtime/Heap.cpp.o.d"
  "/root/repo/src/runtime/Object.cpp" "src/CMakeFiles/jsai_runtime.dir/runtime/Object.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/runtime/Object.cpp.o.d"
  "/root/repo/src/runtime/Value.cpp" "src/CMakeFiles/jsai_runtime.dir/runtime/Value.cpp.o" "gcc" "src/CMakeFiles/jsai_runtime.dir/runtime/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jsai_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
