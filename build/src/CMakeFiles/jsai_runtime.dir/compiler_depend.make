# Empty compiler generated dependencies file for jsai_runtime.
# This may be replaced when dependencies are built.
