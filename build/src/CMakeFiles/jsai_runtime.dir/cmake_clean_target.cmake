file(REMOVE_RECURSE
  "libjsai_runtime.a"
)
