file(REMOVE_RECURSE
  "libjsai_callgraph.a"
)
