file(REMOVE_RECURSE
  "CMakeFiles/jsai_callgraph.dir/callgraph/CallGraph.cpp.o"
  "CMakeFiles/jsai_callgraph.dir/callgraph/CallGraph.cpp.o.d"
  "CMakeFiles/jsai_callgraph.dir/callgraph/Metrics.cpp.o"
  "CMakeFiles/jsai_callgraph.dir/callgraph/Metrics.cpp.o.d"
  "CMakeFiles/jsai_callgraph.dir/callgraph/VulnerabilityScan.cpp.o"
  "CMakeFiles/jsai_callgraph.dir/callgraph/VulnerabilityScan.cpp.o.d"
  "libjsai_callgraph.a"
  "libjsai_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
