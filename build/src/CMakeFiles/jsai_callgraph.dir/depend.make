# Empty dependencies file for jsai_callgraph.
# This may be replaced when dependencies are built.
