file(REMOVE_RECURSE
  "libjsai_corpus.a"
)
