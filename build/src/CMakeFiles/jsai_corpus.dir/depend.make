# Empty dependencies file for jsai_corpus.
# This may be replaced when dependencies are built.
