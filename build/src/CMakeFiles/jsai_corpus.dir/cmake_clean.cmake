file(REMOVE_RECURSE
  "CMakeFiles/jsai_corpus.dir/corpus/BenchmarkSuite.cpp.o"
  "CMakeFiles/jsai_corpus.dir/corpus/BenchmarkSuite.cpp.o.d"
  "CMakeFiles/jsai_corpus.dir/corpus/MotivatingExample.cpp.o"
  "CMakeFiles/jsai_corpus.dir/corpus/MotivatingExample.cpp.o.d"
  "CMakeFiles/jsai_corpus.dir/corpus/PatternGenerators.cpp.o"
  "CMakeFiles/jsai_corpus.dir/corpus/PatternGenerators.cpp.o.d"
  "CMakeFiles/jsai_corpus.dir/corpus/Project.cpp.o"
  "CMakeFiles/jsai_corpus.dir/corpus/Project.cpp.o.d"
  "libjsai_corpus.a"
  "libjsai_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
