
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/BenchmarkSuite.cpp" "src/CMakeFiles/jsai_corpus.dir/corpus/BenchmarkSuite.cpp.o" "gcc" "src/CMakeFiles/jsai_corpus.dir/corpus/BenchmarkSuite.cpp.o.d"
  "/root/repo/src/corpus/MotivatingExample.cpp" "src/CMakeFiles/jsai_corpus.dir/corpus/MotivatingExample.cpp.o" "gcc" "src/CMakeFiles/jsai_corpus.dir/corpus/MotivatingExample.cpp.o.d"
  "/root/repo/src/corpus/PatternGenerators.cpp" "src/CMakeFiles/jsai_corpus.dir/corpus/PatternGenerators.cpp.o" "gcc" "src/CMakeFiles/jsai_corpus.dir/corpus/PatternGenerators.cpp.o.d"
  "/root/repo/src/corpus/Project.cpp" "src/CMakeFiles/jsai_corpus.dir/corpus/Project.cpp.o" "gcc" "src/CMakeFiles/jsai_corpus.dir/corpus/Project.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jsai_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
