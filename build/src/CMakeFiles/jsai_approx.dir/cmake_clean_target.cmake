file(REMOVE_RECURSE
  "libjsai_approx.a"
)
