file(REMOVE_RECURSE
  "CMakeFiles/jsai_approx.dir/approx/ApproxInterpreter.cpp.o"
  "CMakeFiles/jsai_approx.dir/approx/ApproxInterpreter.cpp.o.d"
  "CMakeFiles/jsai_approx.dir/approx/HintSet.cpp.o"
  "CMakeFiles/jsai_approx.dir/approx/HintSet.cpp.o.d"
  "libjsai_approx.a"
  "libjsai_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
