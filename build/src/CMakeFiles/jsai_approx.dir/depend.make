# Empty dependencies file for jsai_approx.
# This may be replaced when dependencies are built.
