
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/Pipeline.cpp" "src/CMakeFiles/jsai_pipeline.dir/pipeline/Pipeline.cpp.o" "gcc" "src/CMakeFiles/jsai_pipeline.dir/pipeline/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jsai_callgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
