file(REMOVE_RECURSE
  "libjsai_pipeline.a"
)
