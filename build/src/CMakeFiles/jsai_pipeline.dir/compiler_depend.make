# Empty compiler generated dependencies file for jsai_pipeline.
# This may be replaced when dependencies are built.
