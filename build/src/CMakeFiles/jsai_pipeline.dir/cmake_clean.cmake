file(REMOVE_RECURSE
  "CMakeFiles/jsai_pipeline.dir/pipeline/Pipeline.cpp.o"
  "CMakeFiles/jsai_pipeline.dir/pipeline/Pipeline.cpp.o.d"
  "libjsai_pipeline.a"
  "libjsai_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
