file(REMOVE_RECURSE
  "libjsai_support.a"
)
