# Empty compiler generated dependencies file for jsai_support.
# This may be replaced when dependencies are built.
