file(REMOVE_RECURSE
  "CMakeFiles/jsai_support.dir/support/BitSet.cpp.o"
  "CMakeFiles/jsai_support.dir/support/BitSet.cpp.o.d"
  "CMakeFiles/jsai_support.dir/support/Diagnostics.cpp.o"
  "CMakeFiles/jsai_support.dir/support/Diagnostics.cpp.o.d"
  "CMakeFiles/jsai_support.dir/support/JsNumber.cpp.o"
  "CMakeFiles/jsai_support.dir/support/JsNumber.cpp.o.d"
  "CMakeFiles/jsai_support.dir/support/Rng.cpp.o"
  "CMakeFiles/jsai_support.dir/support/Rng.cpp.o.d"
  "CMakeFiles/jsai_support.dir/support/SourceLoc.cpp.o"
  "CMakeFiles/jsai_support.dir/support/SourceLoc.cpp.o.d"
  "CMakeFiles/jsai_support.dir/support/StringPool.cpp.o"
  "CMakeFiles/jsai_support.dir/support/StringPool.cpp.o.d"
  "libjsai_support.a"
  "libjsai_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
