
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AnalysisBuilder.cpp" "src/CMakeFiles/jsai_analysis.dir/analysis/AnalysisBuilder.cpp.o" "gcc" "src/CMakeFiles/jsai_analysis.dir/analysis/AnalysisBuilder.cpp.o.d"
  "/root/repo/src/analysis/BuiltinModels.cpp" "src/CMakeFiles/jsai_analysis.dir/analysis/BuiltinModels.cpp.o" "gcc" "src/CMakeFiles/jsai_analysis.dir/analysis/BuiltinModels.cpp.o.d"
  "/root/repo/src/analysis/ConstraintVar.cpp" "src/CMakeFiles/jsai_analysis.dir/analysis/ConstraintVar.cpp.o" "gcc" "src/CMakeFiles/jsai_analysis.dir/analysis/ConstraintVar.cpp.o.d"
  "/root/repo/src/analysis/Solver.cpp" "src/CMakeFiles/jsai_analysis.dir/analysis/Solver.cpp.o" "gcc" "src/CMakeFiles/jsai_analysis.dir/analysis/Solver.cpp.o.d"
  "/root/repo/src/analysis/StaticAnalysis.cpp" "src/CMakeFiles/jsai_analysis.dir/analysis/StaticAnalysis.cpp.o" "gcc" "src/CMakeFiles/jsai_analysis.dir/analysis/StaticAnalysis.cpp.o.d"
  "/root/repo/src/analysis/Token.cpp" "src/CMakeFiles/jsai_analysis.dir/analysis/Token.cpp.o" "gcc" "src/CMakeFiles/jsai_analysis.dir/analysis/Token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jsai_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jsai_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
