file(REMOVE_RECURSE
  "CMakeFiles/jsai_analysis.dir/analysis/AnalysisBuilder.cpp.o"
  "CMakeFiles/jsai_analysis.dir/analysis/AnalysisBuilder.cpp.o.d"
  "CMakeFiles/jsai_analysis.dir/analysis/BuiltinModels.cpp.o"
  "CMakeFiles/jsai_analysis.dir/analysis/BuiltinModels.cpp.o.d"
  "CMakeFiles/jsai_analysis.dir/analysis/ConstraintVar.cpp.o"
  "CMakeFiles/jsai_analysis.dir/analysis/ConstraintVar.cpp.o.d"
  "CMakeFiles/jsai_analysis.dir/analysis/Solver.cpp.o"
  "CMakeFiles/jsai_analysis.dir/analysis/Solver.cpp.o.d"
  "CMakeFiles/jsai_analysis.dir/analysis/StaticAnalysis.cpp.o"
  "CMakeFiles/jsai_analysis.dir/analysis/StaticAnalysis.cpp.o.d"
  "CMakeFiles/jsai_analysis.dir/analysis/Token.cpp.o"
  "CMakeFiles/jsai_analysis.dir/analysis/Token.cpp.o.d"
  "libjsai_analysis.a"
  "libjsai_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
