file(REMOVE_RECURSE
  "libjsai_analysis.a"
)
