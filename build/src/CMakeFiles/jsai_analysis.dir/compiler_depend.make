# Empty compiler generated dependencies file for jsai_analysis.
# This may be replaced when dependencies are built.
