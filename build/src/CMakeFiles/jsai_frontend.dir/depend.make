# Empty dependencies file for jsai_frontend.
# This may be replaced when dependencies are built.
