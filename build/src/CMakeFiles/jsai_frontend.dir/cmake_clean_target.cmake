file(REMOVE_RECURSE
  "libjsai_frontend.a"
)
