
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/Ast.cpp" "src/CMakeFiles/jsai_frontend.dir/ast/Ast.cpp.o" "gcc" "src/CMakeFiles/jsai_frontend.dir/ast/Ast.cpp.o.d"
  "/root/repo/src/ast/AstPrinter.cpp" "src/CMakeFiles/jsai_frontend.dir/ast/AstPrinter.cpp.o" "gcc" "src/CMakeFiles/jsai_frontend.dir/ast/AstPrinter.cpp.o.d"
  "/root/repo/src/ast/ScopeResolver.cpp" "src/CMakeFiles/jsai_frontend.dir/ast/ScopeResolver.cpp.o" "gcc" "src/CMakeFiles/jsai_frontend.dir/ast/ScopeResolver.cpp.o.d"
  "/root/repo/src/lexer/Lexer.cpp" "src/CMakeFiles/jsai_frontend.dir/lexer/Lexer.cpp.o" "gcc" "src/CMakeFiles/jsai_frontend.dir/lexer/Lexer.cpp.o.d"
  "/root/repo/src/lexer/Token.cpp" "src/CMakeFiles/jsai_frontend.dir/lexer/Token.cpp.o" "gcc" "src/CMakeFiles/jsai_frontend.dir/lexer/Token.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/jsai_frontend.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/jsai_frontend.dir/parser/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jsai_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
