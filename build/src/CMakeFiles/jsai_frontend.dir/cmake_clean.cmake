file(REMOVE_RECURSE
  "CMakeFiles/jsai_frontend.dir/ast/Ast.cpp.o"
  "CMakeFiles/jsai_frontend.dir/ast/Ast.cpp.o.d"
  "CMakeFiles/jsai_frontend.dir/ast/AstPrinter.cpp.o"
  "CMakeFiles/jsai_frontend.dir/ast/AstPrinter.cpp.o.d"
  "CMakeFiles/jsai_frontend.dir/ast/ScopeResolver.cpp.o"
  "CMakeFiles/jsai_frontend.dir/ast/ScopeResolver.cpp.o.d"
  "CMakeFiles/jsai_frontend.dir/lexer/Lexer.cpp.o"
  "CMakeFiles/jsai_frontend.dir/lexer/Lexer.cpp.o.d"
  "CMakeFiles/jsai_frontend.dir/lexer/Token.cpp.o"
  "CMakeFiles/jsai_frontend.dir/lexer/Token.cpp.o.d"
  "CMakeFiles/jsai_frontend.dir/parser/Parser.cpp.o"
  "CMakeFiles/jsai_frontend.dir/parser/Parser.cpp.o.d"
  "libjsai_frontend.a"
  "libjsai_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsai_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
