# Empty dependencies file for bench_pattern_breakdown.
# This may be replaced when dependencies are built.
