file(REMOVE_RECURSE
  "../bench/bench_pattern_breakdown"
  "../bench/bench_pattern_breakdown.pdb"
  "CMakeFiles/bench_pattern_breakdown.dir/bench_pattern_breakdown.cpp.o"
  "CMakeFiles/bench_pattern_breakdown.dir/bench_pattern_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pattern_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
