# Empty compiler generated dependencies file for bench_table3_times.
# This may be replaced when dependencies are built.
