file(REMOVE_RECURSE
  "../bench/bench_table3_times"
  "../bench/bench_table3_times.pdb"
  "CMakeFiles/bench_table3_times.dir/bench_table3_times.cpp.o"
  "CMakeFiles/bench_table3_times.dir/bench_table3_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
