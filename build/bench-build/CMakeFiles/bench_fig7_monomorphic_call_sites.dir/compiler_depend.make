# Empty compiler generated dependencies file for bench_fig7_monomorphic_call_sites.
# This may be replaced when dependencies are built.
