file(REMOVE_RECURSE
  "../bench/bench_fig7_monomorphic_call_sites"
  "../bench/bench_fig7_monomorphic_call_sites.pdb"
  "CMakeFiles/bench_fig7_monomorphic_call_sites.dir/bench_fig7_monomorphic_call_sites.cpp.o"
  "CMakeFiles/bench_fig7_monomorphic_call_sites.dir/bench_fig7_monomorphic_call_sites.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_monomorphic_call_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
