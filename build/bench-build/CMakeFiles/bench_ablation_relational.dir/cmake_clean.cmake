file(REMOVE_RECURSE
  "../bench/bench_ablation_relational"
  "../bench/bench_ablation_relational.pdb"
  "CMakeFiles/bench_ablation_relational.dir/bench_ablation_relational.cpp.o"
  "CMakeFiles/bench_ablation_relational.dir/bench_ablation_relational.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
