# Empty compiler generated dependencies file for bench_ablation_relational.
# This may be replaced when dependencies are built.
