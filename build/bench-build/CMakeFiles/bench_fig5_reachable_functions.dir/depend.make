# Empty dependencies file for bench_fig5_reachable_functions.
# This may be replaced when dependencies are built.
