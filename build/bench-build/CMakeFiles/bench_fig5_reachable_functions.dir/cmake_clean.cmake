file(REMOVE_RECURSE
  "../bench/bench_fig5_reachable_functions"
  "../bench/bench_fig5_reachable_functions.pdb"
  "CMakeFiles/bench_fig5_reachable_functions.dir/bench_fig5_reachable_functions.cpp.o"
  "CMakeFiles/bench_fig5_reachable_functions.dir/bench_fig5_reachable_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_reachable_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
