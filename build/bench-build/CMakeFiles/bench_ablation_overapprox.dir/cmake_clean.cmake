file(REMOVE_RECURSE
  "../bench/bench_ablation_overapprox"
  "../bench/bench_ablation_overapprox.pdb"
  "CMakeFiles/bench_ablation_overapprox.dir/bench_ablation_overapprox.cpp.o"
  "CMakeFiles/bench_ablation_overapprox.dir/bench_ablation_overapprox.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overapprox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
