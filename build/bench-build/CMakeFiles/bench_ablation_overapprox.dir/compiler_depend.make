# Empty compiler generated dependencies file for bench_ablation_overapprox.
# This may be replaced when dependencies are built.
