# Empty compiler generated dependencies file for bench_fig6_resolved_call_sites.
# This may be replaced when dependencies are built.
