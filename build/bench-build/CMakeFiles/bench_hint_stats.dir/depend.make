# Empty dependencies file for bench_hint_stats.
# This may be replaced when dependencies are built.
