file(REMOVE_RECURSE
  "../bench/bench_hint_stats"
  "../bench/bench_hint_stats.pdb"
  "CMakeFiles/bench_hint_stats.dir/bench_hint_stats.cpp.o"
  "CMakeFiles/bench_hint_stats.dir/bench_hint_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hint_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
