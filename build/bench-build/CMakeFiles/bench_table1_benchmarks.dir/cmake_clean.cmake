file(REMOVE_RECURSE
  "../bench/bench_table1_benchmarks"
  "../bench/bench_table1_benchmarks.pdb"
  "CMakeFiles/bench_table1_benchmarks.dir/bench_table1_benchmarks.cpp.o"
  "CMakeFiles/bench_table1_benchmarks.dir/bench_table1_benchmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
