file(REMOVE_RECURSE
  "../bench/bench_table2_recall_precision"
  "../bench/bench_table2_recall_precision.pdb"
  "CMakeFiles/bench_table2_recall_precision.dir/bench_table2_recall_precision.cpp.o"
  "CMakeFiles/bench_table2_recall_precision.dir/bench_table2_recall_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_recall_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
