# Empty dependencies file for bench_table2_recall_precision.
# This may be replaced when dependencies are built.
