# Empty dependencies file for bench_fig4_call_edges.
# This may be replaced when dependencies are built.
