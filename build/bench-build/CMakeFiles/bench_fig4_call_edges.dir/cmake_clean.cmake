file(REMOVE_RECURSE
  "../bench/bench_fig4_call_edges"
  "../bench/bench_fig4_call_edges.pdb"
  "CMakeFiles/bench_fig4_call_edges.dir/bench_fig4_call_edges.cpp.o"
  "CMakeFiles/bench_fig4_call_edges.dir/bench_fig4_call_edges.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_call_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
