file(REMOVE_RECURSE
  "../bench/bench_motivating_example"
  "../bench/bench_motivating_example.pdb"
  "CMakeFiles/bench_motivating_example.dir/bench_motivating_example.cpp.o"
  "CMakeFiles/bench_motivating_example.dir/bench_motivating_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivating_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
