# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/filesystem_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/approx_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/builtin_models_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/accessor_test[1]_include.cmake")
include("/root/repo/build/tests/es_modules_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/ast_printer_test[1]_include.cmake")
