file(REMOVE_RECURSE
  "CMakeFiles/ast_printer_test.dir/AstPrinterTest.cpp.o"
  "CMakeFiles/ast_printer_test.dir/AstPrinterTest.cpp.o.d"
  "ast_printer_test"
  "ast_printer_test.pdb"
  "ast_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ast_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
