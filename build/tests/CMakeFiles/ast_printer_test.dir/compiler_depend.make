# Empty compiler generated dependencies file for ast_printer_test.
# This may be replaced when dependencies are built.
