# Empty compiler generated dependencies file for builtin_models_test.
# This may be replaced when dependencies are built.
