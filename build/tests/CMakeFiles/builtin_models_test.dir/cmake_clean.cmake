file(REMOVE_RECURSE
  "CMakeFiles/builtin_models_test.dir/BuiltinModelsTest.cpp.o"
  "CMakeFiles/builtin_models_test.dir/BuiltinModelsTest.cpp.o.d"
  "builtin_models_test"
  "builtin_models_test.pdb"
  "builtin_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builtin_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
