file(REMOVE_RECURSE
  "CMakeFiles/interpreter_semantics_test.dir/InterpreterSemanticsTest.cpp.o"
  "CMakeFiles/interpreter_semantics_test.dir/InterpreterSemanticsTest.cpp.o.d"
  "interpreter_semantics_test"
  "interpreter_semantics_test.pdb"
  "interpreter_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
