file(REMOVE_RECURSE
  "CMakeFiles/es_modules_test.dir/EsModulesTest.cpp.o"
  "CMakeFiles/es_modules_test.dir/EsModulesTest.cpp.o.d"
  "es_modules_test"
  "es_modules_test.pdb"
  "es_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
