# Empty dependencies file for es_modules_test.
# This may be replaced when dependencies are built.
