# Empty compiler generated dependencies file for accessor_test.
# This may be replaced when dependencies are built.
