file(REMOVE_RECURSE
  "CMakeFiles/accessor_test.dir/AccessorTest.cpp.o"
  "CMakeFiles/accessor_test.dir/AccessorTest.cpp.o.d"
  "accessor_test"
  "accessor_test.pdb"
  "accessor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
