#!/usr/bin/env bash
# Configure, build, and run the test suite — the one-command CI smoke check —
# then exercise the artifact cache end-to-end: a cold and a warm `jsai suite`
# run sharing a fresh cache directory must produce byte-identical JSONL
# reports, and the warm run must hit the cache for every project.
#
#   tools/smoke.sh [build-dir] [extra cmake args...]
#
# Examples:
#   tools/smoke.sh                 # default ./build tree
#   tools/smoke.sh build-asan -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined"
#
# Exits non-zero if configuration, compilation, any test, or the cache
# cold/warm check fails.
set -euo pipefail

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Cold-then-warm cache pair over the embedded suite.
WORK_DIR="$(mktemp -d)"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$WORK_DIR"' EXIT
JSAI="$BUILD_DIR/tools/jsai"

"$JSAI" suite --jobs="$JOBS" --cache-dir="$WORK_DIR/cache" \
  --report="$WORK_DIR/cold.jsonl" >"$WORK_DIR/cold.out"
"$JSAI" suite --jobs="$JOBS" --cache-dir="$WORK_DIR/cache" \
  --report="$WORK_DIR/warm.jsonl" >"$WORK_DIR/warm.out"

if ! cmp -s "$WORK_DIR/cold.jsonl" "$WORK_DIR/warm.jsonl"; then
  echo "smoke.sh: FAIL — warm suite report differs from cold" >&2
  diff "$WORK_DIR/cold.jsonl" "$WORK_DIR/warm.jsonl" | head -20 >&2
  exit 1
fi
if ! grep -q "^cache: [1-9][0-9]* hits, 0 misses, 0 corrupt" \
    "$WORK_DIR/warm.out"; then
  echo "smoke.sh: FAIL — warm suite run did not hit the cache:" >&2
  grep "^cache:" "$WORK_DIR/warm.out" >&2 || true
  exit 1
fi
"$JSAI" cache stats --cache-dir="$WORK_DIR/cache"
echo "smoke.sh: cache cold/warm check ok"

# Optimized-VM round-trip: the same suite under the bytecode VM with the
# optimizer on (superinstruction fusion + quickening) must write a report
# byte-identical to the walker's cold run — the differential-oracle
# contract, end to end through the CLI. No cache dir: every chunk is
# compiled, fused, and executed fresh.
"$JSAI" suite --jobs="$JOBS" --interp=vm --vm-opt=on \
  --report="$WORK_DIR/vmopt.jsonl" >"$WORK_DIR/vmopt.out"
if ! cmp -s "$WORK_DIR/cold.jsonl" "$WORK_DIR/vmopt.jsonl"; then
  echo "smoke.sh: FAIL — optimized-VM suite report differs from walker" >&2
  diff "$WORK_DIR/cold.jsonl" "$WORK_DIR/vmopt.jsonl" | head -20 >&2
  exit 1
fi
echo "smoke.sh: optimized-VM round-trip ok"

# Serve round-trip: a daemon-served suite report must be byte-identical to
# the one-shot report above.
SOCK="$WORK_DIR/jsai.sock"
"$JSAI" serve --socket="$SOCK" --jobs="$JOBS" >"$WORK_DIR/serve.out" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
"$JSAI" client suite --socket="$SOCK" --report="$WORK_DIR/served.jsonl" \
  >"$WORK_DIR/client.out"
"$JSAI" client shutdown --socket="$SOCK" >/dev/null
wait "$SERVE_PID"
SERVE_PID=""
if ! cmp -s "$WORK_DIR/cold.jsonl" "$WORK_DIR/served.jsonl"; then
  echo "smoke.sh: FAIL — daemon-served suite report differs from one-shot" >&2
  diff "$WORK_DIR/cold.jsonl" "$WORK_DIR/served.jsonl" | head -20 >&2
  exit 1
fi
echo "smoke.sh: serve round-trip ok"

# Explain round-trip on one corpus project: materialize the first project
# that carries a test driver, run `jsai explain` on it, and require a
# ranked blame report (the missed-edges section with its cause histogram
# and the origin inflation table).
read -r PROJ DRIVER <<EOF
$("$JSAI" corpus list | awk '$5 != "-" {print $1, $5; exit}')
EOF
"$JSAI" corpus dump "$PROJ" "$WORK_DIR/explainproj" >/dev/null
"$JSAI" explain "$WORK_DIR/explainproj" --driver="$DRIVER" \
  >"$WORK_DIR/explain.out"
if ! grep -q "^== missed dynamic call edges: " "$WORK_DIR/explain.out" ||
   ! grep -q "^== origins ranked by inflation ==" "$WORK_DIR/explain.out"; then
  echo "smoke.sh: FAIL — jsai explain produced no ranked blame report" >&2
  cat "$WORK_DIR/explain.out" >&2
  exit 1
fi
echo "smoke.sh: explain round-trip ok ($PROJ)"
