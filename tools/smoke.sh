#!/usr/bin/env bash
# Configure, build, and run the test suite — the one-command CI smoke check.
#
#   tools/smoke.sh [build-dir] [extra cmake args...]
#
# Examples:
#   tools/smoke.sh                 # default ./build tree
#   tools/smoke.sh build-asan -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined"
#
# Exits non-zero if configuration, compilation, or any test fails.
set -euo pipefail

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
