#!/usr/bin/env sh
# Configure, build, and run the test suite — the one-command CI smoke check.
#
#   tools/smoke.sh [build-dir]
#
# Exits non-zero if configuration, compilation, or any test fails.
set -eu

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.."
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
