//===- jsai.cpp - Command-line driver ----------------------------------------===//
//
// The jsai command-line tool: run the paper's pipeline on a project
// directory laid out as "<package>/<file>.js" with the application package
// named "app" (see README).
//
//   jsai analyze  <dir>             metrics: baseline vs hint-extended
//   jsai callgraph <dir>            print the call graph
//   jsai hints    <dir>             run approximate interpretation only
//   jsai run      <dir>             execute app/main.js concretely
//   jsai compare  <dir> --driver=m  recall/precision vs a dynamic call graph
//   jsai explain  <dir> --driver=m  root causes of missed dynamic edges
//   jsai suite                      run the embedded 141-project benchmark
//   jsai corpus list|dump           inspect/materialize embedded projects
//   jsai cache stats                inspect an artifact-cache directory
//   jsai serve --socket=<path>      persistent analysis daemon (Unix socket)
//   jsai client <req> --socket=<p>  send analyze/suite/explain/stats/
//                                   shutdown to it
//
// Every option lives in the flag table below (flagSpecs): the parser
// dispatches through it and the usage text is generated from it, so the
// two can never drift apart.
//
//===----------------------------------------------------------------------===//

#include "callgraph/VulnerabilityScan.h"
#include "explain/Explain.h"
#include "corpus/BenchmarkSuite.h"
#include "driver/CorpusDriver.h"
#include "driver/Telemetry.h"
#include "pipeline/Pipeline.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Version.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <csignal>

using namespace jsai;

namespace {

struct CliOptions {
  std::string Command;
  std::string Dir;
  /// All positional arguments in order (Dir is the first; `client` takes a
  /// request name and an optional directory).
  std::vector<std::string> Positionals;
  std::string MainModule = "app/main.js";
  AnalysisOptions Analysis;
  std::string HintsOut;
  std::string HintsIn;
  std::string Driver;
  size_t Jobs = 1;
  bool JobsSet = false;
  PhaseDeadlines Deadlines;
  std::string ReportPath;
  bool ReportTimings = false;
  CacheConfig Cache;
  std::string Socket;
  std::string ServeVia;
  bool ServeWarmSolver = false;
  /// Truncation for `jsai explain` record listings (0 = show everything;
  /// aggregate tables are never truncated).
  size_t Top = 0;
};

/// Latched by the SIGINT/SIGTERM handlers; suite/serve runs chain their
/// phase tokens to it, so an interrupt winds every worker down
/// cooperatively and the partial report is still flushed.
CancellationToken GInterrupt;

extern "C" void onInterruptSignal(int) {
  // cancelNow is one relaxed atomic store: async-signal-safe.
  GInterrupt.cancelNow();
}

void installInterruptHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onInterruptSignal;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

/// One CLI flag: its spelling, help text, and parse action. The single
/// source of truth for both parseArgs and printUsage — a flag cannot be
/// parseable but undocumented (or vice versa).
struct FlagSpec {
  /// "--name=" for value flags (prefix match; the handler gets the part
  /// after '='), "--name" for boolean flags (exact match; empty value).
  const char *Name;
  /// Argument placeholder shown in the table ("" for boolean flags).
  const char *Arg;
  /// Help text; lines after the first are indented under the flag.
  const char *Help;
  bool (*Parse)(const std::string &Val, CliOptions &O);
};

bool parseFail(const char *What, const std::string &Val) {
  std::fprintf(stderr, "jsai: unknown %s '%s'\n", What, Val.c_str());
  return false;
}

const FlagSpec *flagSpecs(size_t &Count) {
  static const FlagSpec Specs[] = {
      {"--mode=", "baseline|hints|nonrel|overapprox",
       "analysis mode (default: hints)",
       [](const std::string &V, CliOptions &O) {
         if (V == "baseline")
           O.Analysis.Mode = AnalysisMode::Baseline;
         else if (V == "hints")
           O.Analysis.Mode = AnalysisMode::Hints;
         else if (V == "nonrel")
           O.Analysis.Mode = AnalysisMode::NonRelationalHints;
         else if (V == "overapprox")
           O.Analysis.Mode = AnalysisMode::OverApprox;
         else
           return parseFail("mode", V);
         return true;
       }},
      {"--main=", "<module-path>", "main module (default: app/main.js)",
       [](const std::string &V, CliOptions &O) {
         O.MainModule = V;
         return true;
       }},
      {"--driver=", "<module-path>",
       "test driver for `compare`/`explain` (default: main)",
       [](const std::string &V, CliOptions &O) {
         O.Driver = V;
         return true;
       }},
      {"--hints-out=", "<file>", "serialize collected hints",
       [](const std::string &V, CliOptions &O) {
         O.HintsOut = V;
         return true;
       }},
      {"--hints-in=", "<file>", "import previously collected hints",
       [](const std::string &V, CliOptions &O) {
         O.HintsIn = V;
         return true;
       }},
      {"--no-read-hints", "", "disable rule [DPR] (read hints)",
       [](const std::string &, CliOptions &O) {
         O.Analysis.UseReadHints = false;
         return true;
       }},
      {"--no-write-hints", "", "disable rule [DPW] (write hints)",
       [](const std::string &, CliOptions &O) {
         O.Analysis.UseWriteHints = false;
         return true;
       }},
      {"--no-module-hints", "", "disable module-load hints",
       [](const std::string &, CliOptions &O) {
         O.Analysis.UseModuleHints = false;
         return true;
       }},
      {"--unknown-args", "",
       "enable unknown-argument hints (Section 6)",
       [](const std::string &, CliOptions &O) {
         O.Analysis.UseUnknownArgHints = true;
         return true;
       }},
      {"--eval-bodies", "", "analyze eval'd code strings (Section 6)",
       [](const std::string &, CliOptions &O) {
         O.Analysis.UseEvalBodyAnalysis = true;
         return true;
       }},
      {"--solver-set=", "dense|adaptive",
       "points-to set representation\n"
       "(default: adaptive; env JSAI_SOLVER_SET)",
       [](const std::string &V, CliOptions &O) {
         SolverSetKind K;
         if (!parseSolverSetKind(V.c_str(), K))
           return parseFail("solver set", V);
         // Update the process default too: solvers constructed without
         // explicit options (e.g. ProjectAnalyzer::analyze(Mode)) follow
         // it.
         setDefaultSolverSetKind(K);
         O.Analysis.SolverSet = K;
         return true;
       }},
      {"--solver-jobs=", "N",
       "threads per constraint-solver fixpoint\n"
       "(default: 1 = sequential; env JSAI_SOLVER_JOBS); results are\n"
       "byte-identical at any N, only wall clock changes",
       [](const std::string &V, CliOptions &O) {
         size_t N = size_t(std::strtoull(V.c_str(), nullptr, 10));
         if (N == 0)
           N = 1;
         // Update the process default too: solvers constructed without
         // explicit options (tests, benches, serve jobs) follow it.
         setDefaultSolverJobs(N);
         O.Analysis.SolverJobs = N;
         return true;
       }},
      {"--explain=", "off|record",
       "solver provenance recording for blame tracing\n"
       "(default: off; env JSAI_EXPLAIN); `record` adds \"blame\" JSONL\n"
       "records and enables `jsai explain`-style tracing in suite runs;\n"
       "never changes any metric or default report byte",
       [](const std::string &V, CliOptions &O) {
         if (V != "off" && V != "record")
           return parseFail("explain mode", V);
         // Process default: every AnalysisOptions/Pipeline constructed
         // after this point follows it.
         setDefaultExplainRecording(V == "record");
         O.Analysis.Explain = V == "record";
         return true;
       }},
      {"--top=", "N",
       "`explain`: show only the first N records per section\n"
       "(default: 0 = all; aggregate tables are never truncated)",
       [](const std::string &V, CliOptions &O) {
         O.Top = size_t(std::strtoull(V.c_str(), nullptr, 10));
         return true;
       }},
      {"--serve-warm-solver=", "on|off",
       "serve: revalidate retained solvers on\n"
       "unchanged re-analyze requests (default: off)",
       [](const std::string &V, CliOptions &O) {
         if (V == "on")
           O.ServeWarmSolver = true;
         else if (V == "off")
           O.ServeWarmSolver = false;
         else
           return parseFail("warm-solver mode", V);
         return true;
       }},
      {"--interp=", "ast|vm",
       "execution engine for concrete runs and\n"
       "approximate interpretation (default: ast; env JSAI_INTERP); both\n"
       "engines produce identical hints and metric tables",
       [](const std::string &V, CliOptions &) {
         InterpEngineKind K;
         if (!parseInterpEngineKind(V.c_str(), K))
           return parseFail("interpreter engine", V);
         // Process default: every InterpOptions/ApproxOptions constructed
         // after this point (pipeline, suite workers, `run`) picks it up.
         setDefaultInterpEngineKind(K);
         return true;
       }},
      {"--vm-opt=", "on|off",
       "bytecode optimizer (superinstruction fusion +\n"
       "runtime quickening) for the vm engine (default: on; env\n"
       "JSAI_VM_OPT); no effect under --interp=ast; results are identical\n"
       "in both modes",
       [](const std::string &V, CliOptions &) {
         bool On;
         if (!parseVmOptMode(V.c_str(), On))
           return parseFail("vm-opt mode", V);
         setDefaultVmOptEnabled(On);
         return true;
       }},
      {"--jobs=", "N", "suite worker threads (0 = all cores)",
       [](const std::string &V, CliOptions &O) {
         O.Jobs = size_t(std::strtoull(V.c_str(), nullptr, 10));
         O.JobsSet = true;
         return true;
       }},
      {"--deadline-approx=", "S",
       "approx-phase deadline in seconds (0 = none)",
       [](const std::string &V, CliOptions &O) {
         O.Deadlines.ApproxSeconds = std::strtod(V.c_str(), nullptr);
         return true;
       }},
      {"--deadline-analysis=", "S",
       "per-analysis deadline in seconds (0 = none)",
       [](const std::string &V, CliOptions &O) {
         O.Deadlines.AnalysisSeconds = std::strtod(V.c_str(), nullptr);
         return true;
       }},
      {"--report=", "<file.jsonl>",
       "write JSONL telemetry (suite, analyze, explain)",
       [](const std::string &V, CliOptions &O) {
         O.ReportPath = V;
         return true;
       }},
      {"--report-timings", "", "include wall-clock fields in the report",
       [](const std::string &, CliOptions &O) {
         O.ReportTimings = true;
         return true;
       }},
      {"--cache-dir=", "<dir>",
       "artifact cache directory (analyze, suite)",
       [](const std::string &V, CliOptions &O) {
         O.Cache.Dir = V;
         return true;
       }},
      {"--cache=", "off|read|readwrite",
       "cache mode (default: readwrite)",
       [](const std::string &V, CliOptions &O) {
         if (V == "off")
           O.Cache.Mode = CacheMode::Off;
         else if (V == "read")
           O.Cache.Mode = CacheMode::Read;
         else if (V == "readwrite")
           O.Cache.Mode = CacheMode::ReadWrite;
         else
           return parseFail("cache mode", V);
         return true;
       }},
      {"--socket=", "<path>", "Unix socket for serve/client",
       [](const std::string &V, CliOptions &O) {
         O.Socket = V;
         return true;
       }},
      {"--serve-via=", "<socket>",
       "route analyze/suite/explain through a daemon",
       [](const std::string &V, CliOptions &O) {
         O.ServeVia = V;
         return true;
       }},
      {"--version", "", "print the tool version and exit",
       [](const std::string &, CliOptions &) {
         return true; // Handled before parsing; listed for the table.
       }},
  };
  Count = sizeof(Specs) / sizeof(Specs[0]);
  return Specs;
}

void printUsage() {
  std::printf(
      "usage: jsai <analyze|callgraph|hints|run|compare|explain|suite> "
      "[options] [<dir>]\n"
      "\n"
      "commands:\n"
      "  analyze <dir>    run the full pipeline, print metric comparison\n"
      "  callgraph <dir>  print the computed call graph\n"
      "  hints <dir>      run approximate interpretation, print the hints\n"
      "  run <dir>        execute the main module concretely\n"
      "  compare <dir>    score all modes against a dynamic call graph\n"
      "  explain <dir>    trace missed dynamic edges and inflated sets to\n"
      "                   root causes (needs a dynamic call graph driver)\n"
      "  suite            run the embedded benchmark suite summary\n"
      "  corpus list      list the embedded benchmark projects\n"
      "  corpus dump <name> <dir>  write one embedded project to disk\n"
      "  cache stats      validate and summarize an artifact-cache dir\n"
      "  serve            persistent analysis daemon on --socket=<path>\n"
      "  client <req>     send analyze|suite|explain|stats|shutdown to a\n"
      "                   daemon\n"
      "\n"
      "options:\n");
  size_t Count = 0;
  const FlagSpec *Specs = flagSpecs(Count);
  for (size_t I = 0; I != Count; ++I) {
    const FlagSpec &S = Specs[I];
    std::string Left = S.Name;
    Left += S.Arg;
    // First help line on the flag's row; continuation lines indented.
    std::string Help = S.Help;
    size_t Nl = Help.find('\n');
    std::string First = Nl == std::string::npos ? Help : Help.substr(0, Nl);
    if (Left.size() <= 20)
      std::printf("  %-20s %s\n", Left.c_str(), First.c_str());
    else
      std::printf("  %s\n  %-20s %s\n", Left.c_str(), "", First.c_str());
    while (Nl != std::string::npos) {
      size_t Start = Nl + 1;
      Nl = Help.find('\n', Start);
      std::string Line = Nl == std::string::npos
                             ? Help.substr(Start)
                             : Help.substr(Start, Nl - Start);
      std::printf("  %-20s %s\n", "", Line.c_str());
    }
  }
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  if (Argc < 2)
    return false;
  Opts.Command = Argv[1];
  Opts.Analysis.Mode = AnalysisMode::Hints;
  size_t Count = 0;
  const FlagSpec *Specs = flagSpecs(Count);
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Opts.Positionals.push_back(Arg);
      if (Opts.Dir.empty())
        Opts.Dir = Arg;
      continue;
    }
    bool Matched = false;
    for (size_t S = 0; S != Count && !Matched; ++S) {
      const FlagSpec &Spec = Specs[S];
      size_t Len = std::strlen(Spec.Name);
      bool TakesValue = Spec.Name[Len - 1] == '=';
      if (TakesValue ? Arg.compare(0, Len, Spec.Name) == 0
                     : Arg == Spec.Name) {
        Matched = true;
        if (!Spec.Parse(TakesValue ? Arg.substr(Len) : std::string(), Opts))
          return false;
      }
    }
    if (!Matched) {
      std::fprintf(stderr, "jsai: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

/// Loads a project from disk. \returns false on failure.
bool loadProject(const CliOptions &Opts, ProjectSpec &Spec) {
  if (Opts.Dir.empty()) {
    std::fprintf(stderr, "jsai: no project directory given\n");
    return false;
  }
  size_t Loaded = Spec.Files.addDirectory(Opts.Dir);
  if (Loaded == 0) {
    std::fprintf(stderr, "jsai: no .js files under '%s'\n", Opts.Dir.c_str());
    return false;
  }
  Spec.Name = Opts.Dir;
  Spec.MainModule = Opts.MainModule;
  if (!Spec.Files.exists(Spec.MainModule)) {
    std::fprintf(stderr, "jsai: main module '%s' not found (use --main=)\n",
                 Spec.MainModule.c_str());
    return false;
  }
  return true;
}

/// Hints for \p Analyzer: imported, collected, or merged.
HintSet gatherHints(const CliOptions &Opts, ProjectAnalyzer &Analyzer) {
  HintSet Hints = Analyzer.hints();
  if (!Opts.HintsIn.empty()) {
    std::ifstream In(Opts.HintsIn);
    if (!In) {
      std::fprintf(stderr, "jsai: warning: cannot read '%s'\n",
                   Opts.HintsIn.c_str());
    } else {
      std::ostringstream Text;
      Text << In.rdbuf();
      Hints.merge(
          HintSet::deserialize(Text.str(), Analyzer.context().files()));
    }
  }
  if (!Opts.HintsOut.empty()) {
    std::ofstream Out(Opts.HintsOut);
    Out << Hints.serialize(Analyzer.context().files());
    std::printf("wrote %zu hints to %s\n", Hints.size(),
                Opts.HintsOut.c_str());
  }
  return Hints;
}

AnalysisResult runAnalysis(const CliOptions &Opts, ProjectAnalyzer &Analyzer,
                           const HintSet &Hints) {
  StaticAnalysis SA(Analyzer.loader(), Opts.Analysis, &Hints);
  return SA.run();
}

/// One deterministic stdout line with the run's cache counters. No timing
/// fields, so a given cache state always prints the same line (CI greps it
/// to assert warm-run hit rates).
void printCacheSummary(const CacheStats &S) {
  std::printf("cache: %llu hits, %llu misses, %llu corrupt, %llu writes, "
              "%llu bytes read, %llu bytes written\n",
              (unsigned long long)S.Hits, (unsigned long long)S.Misses,
              (unsigned long long)S.CorruptEntries,
              (unsigned long long)S.Writes, (unsigned long long)S.BytesRead,
              (unsigned long long)S.BytesWritten);
}

/// Routes one request through a running daemon (`jsai client` and the
/// --serve-via= passthrough). \p Request is analyze|suite|stats|shutdown;
/// \p Dir is the project directory for analyze.
int serveRequest(const CliOptions &Opts, const std::string &SocketPath,
                 const std::string &Request, const std::string &Dir) {
  using serve::JsonValue;
  if (SocketPath.empty()) {
    std::fprintf(stderr, "jsai: no daemon socket (use --socket= or "
                         "--serve-via=)\n");
    return 2;
  }
  serve::Client Client;
  std::string Error;
  if (!Client.connect(SocketPath, Error)) {
    std::fprintf(stderr, "jsai: %s\n", Error.c_str());
    return 1;
  }
  JsonValue Hello;
  if (!Client.handshake(Hello, Error)) {
    std::fprintf(stderr, "jsai: %s\n", Error.c_str());
    return 1;
  }

  JsonValue Req = JsonValue::object();
  Req.set("cmd", JsonValue::str(Request));
  if (Request == "analyze" || Request == "explain") {
    if (Dir.empty()) {
      std::fprintf(stderr, "jsai: %s requires a project directory\n",
                   Request.c_str());
      return 2;
    }
    Req.set("dir", JsonValue::str(Dir));
    if (Opts.MainModule != "app/main.js")
      Req.set("main", JsonValue::str(Opts.MainModule));
  }
  if (Request == "explain") {
    if (!Opts.Driver.empty())
      Req.set("driver", JsonValue::str(Opts.Driver));
    if (Opts.Top)
      Req.set("top", JsonValue::number(double(Opts.Top)));
  }
  if (Request == "analyze" || Request == "suite") {
    // Send only the options the user set explicitly; everything else
    // follows the daemon's own defaults.
    if (Opts.JobsSet)
      Req.set("jobs", JsonValue::number(double(Opts.Jobs)));
    if (Opts.ReportTimings)
      Req.set("timings", JsonValue::boolean(true));
    if (Opts.Deadlines.ApproxSeconds > 0)
      Req.set("deadline_approx",
              JsonValue::number(Opts.Deadlines.ApproxSeconds));
    if (Opts.Deadlines.AnalysisSeconds > 0)
      Req.set("deadline_analysis",
              JsonValue::number(Opts.Deadlines.AnalysisSeconds));
  }

  JsonValue Resp;
  if (!Client.request(Req, Resp, Error)) {
    std::fprintf(stderr, "jsai: %s\n", Error.c_str());
    return 1;
  }
  if (!Resp.boolField("ok")) {
    std::fprintf(stderr, "jsai: daemon error: %s\n",
                 Resp.stringField("error", "unknown").c_str());
    return 1;
  }

  if (Request == "stats") {
    std::printf("%s\n", serve::writeJson(Resp).c_str());
    return 0;
  }
  if (Request == "shutdown") {
    std::printf("daemon shut down\n");
    return 0;
  }

  // analyze/suite/explain: the "report" field holds the exact renderReport
  // bytes a local run would produce; write or print them verbatim.
  std::string Report = Resp.stringField("report");
  if (Request == "explain") {
    // The rendered blame report is the payload; the JSONL report is only
    // written when the caller asked for a file.
    std::printf("serve: explain %s\n", Resp.stringField("project").c_str());
    std::fputs(Resp.stringField("output").c_str(), stdout);
    if (!Opts.ReportPath.empty()) {
      std::ofstream Out(Opts.ReportPath, std::ios::binary);
      Out << Report;
      if (!Out) {
        std::fprintf(stderr, "jsai: cannot write '%s'\n",
                     Opts.ReportPath.c_str());
        return 1;
      }
      std::printf("report: %s\n", Opts.ReportPath.c_str());
    }
    return 0;
  }
  if (Request == "analyze")
    std::printf("serve: analyze %s (%s)\n",
                Resp.stringField("project").c_str(),
                Resp.stringField("outcome").c_str());
  else {
    const JsonValue *Outcomes = Resp.field("outcomes");
    std::printf("serve: suite %llu projects (%llu ok, %llu degraded, %llu "
                "error, %llu cancelled)\n",
                (unsigned long long)Resp.numberField("projects"),
                (unsigned long long)(Outcomes ? Outcomes->numberField("ok")
                                              : 0),
                (unsigned long long)(Outcomes
                                         ? Outcomes->numberField("degraded")
                                         : 0),
                (unsigned long long)(Outcomes ? Outcomes->numberField("error")
                                              : 0),
                (unsigned long long)(Outcomes
                                         ? Outcomes->numberField("cancelled")
                                         : 0));
  }
  if (!Opts.ReportPath.empty()) {
    std::ofstream Out(Opts.ReportPath, std::ios::binary);
    Out << Report;
    if (!Out) {
      std::fprintf(stderr, "jsai: cannot write '%s'\n",
                   Opts.ReportPath.c_str());
      return 1;
    }
    std::printf("report: %s\n", Opts.ReportPath.c_str());
  } else {
    std::fputs(Report.c_str(), stdout);
  }
  if (Request == "analyze" && Resp.stringField("outcome") == "cancelled")
    return 130;
  if (const JsonValue *Outcomes = Resp.field("outcomes"))
    if (Outcomes->numberField("cancelled") > 0)
      return 130;
  return 0;
}

int cmdAnalyze(const CliOptions &Opts) {
  if (!Opts.ServeVia.empty())
    return serveRequest(Opts, Opts.ServeVia, "analyze", Opts.Dir);
  ProjectSpec Spec;
  if (!loadProject(Opts, Spec))
    return 1;
  // Phase deadlines are enforced via cooperative tokens, exactly as in the
  // corpus driver: an expired approx phase degrades to the hints collected
  // so far; an expired analysis stops at a partial fixpoint.
  CancellationToken ApproxToken, AnalysisToken;
  ApproxOptions AO;
  if (Opts.Deadlines.ApproxSeconds > 0)
    AO.Cancel = &ApproxToken;
  std::optional<ArtifactCache> Cache;
  if (Opts.Cache.enabled())
    Cache.emplace(Opts.Cache);
  ProjectAnalyzer Analyzer(Spec, AO, Cache ? &*Cache : nullptr);
  if (Analyzer.diagnostics().hasErrors()) {
    std::fprintf(stderr, "%s",
                 Analyzer.diagnostics().render(Analyzer.context().files())
                     .c_str());
    return 1;
  }
  std::printf("project: %s (%zu packages, %zu modules, %zu functions, %zu "
              "bytes)\n",
              Spec.Name.c_str(), Analyzer.numPackages(),
              Analyzer.numModules(), Analyzer.numFunctions(),
              Analyzer.codeBytes());

  if (Opts.Deadlines.ApproxSeconds > 0)
    ApproxToken.arm(Opts.Deadlines.ApproxSeconds);
  HintSet Hints = gatherHints(Opts, Analyzer);
  std::printf("approximate interpretation: %zu hints, %zu/%zu functions "
              "visited (%.1f%%), %.3f ms%s%s\n",
              Hints.size(), Analyzer.approxStats().NumFunctionsVisited,
              Analyzer.approxStats().NumFunctionsTotal,
              Analyzer.approxStats().visitedFraction() * 100,
              Analyzer.approxSeconds() * 1000,
              Analyzer.hintsFromCache() ? "  [cached]" : "",
              ApproxToken.cancelled() ? "  [deadline hit]" : "");

  AnalysisOptions BaseOpts = Opts.Analysis;
  BaseOpts.Mode = AnalysisMode::Baseline;
  if (Opts.Deadlines.AnalysisSeconds > 0) {
    BaseOpts.Cancel = &AnalysisToken;
    AnalysisToken.arm(Opts.Deadlines.AnalysisSeconds);
  }
  StaticAnalysis BaseSA(Analyzer.loader(), BaseOpts, nullptr);
  AnalysisResult Base = BaseSA.run();
  bool AnalysisDegraded = AnalysisToken.cancelled();

  AnalysisOptions ExtOpts = Opts.Analysis;
  if (Opts.Deadlines.AnalysisSeconds > 0) {
    ExtOpts.Cancel = &AnalysisToken;
    AnalysisToken.arm(Opts.Deadlines.AnalysisSeconds);
  }
  StaticAnalysis ExtSA(Analyzer.loader(), ExtOpts, &Hints);
  AnalysisResult Ext = ExtSA.run();
  AnalysisDegraded |= AnalysisToken.cancelled();
  if (AnalysisDegraded)
    std::printf("note: analysis deadline hit — results are a partial "
                "fixpoint\n");

  std::printf("\n%-26s %12s %12s\n", "metric", "baseline", "selected mode");
  std::printf("%-26s %12zu %12zu\n", "call edges", Base.NumCallEdges,
              Ext.NumCallEdges);
  std::printf("%-26s %12zu %12zu\n", "reachable functions",
              Base.NumReachableFunctions, Ext.NumReachableFunctions);
  std::printf("%-26s %11.1f%% %11.1f%%\n", "resolved call sites",
              Base.resolvedFraction() * 100, Ext.resolvedFraction() * 100);
  std::printf("%-26s %11.1f%% %11.1f%%\n", "monomorphic call sites",
              Base.monomorphicFraction() * 100,
              Ext.monomorphicFraction() * 100);

  VulnerabilityReport Rep =
      scanVulnerabilities(Analyzer.context(), Ext, "app");
  if (Rep.NumTotal)
    std::printf("%-26s %12s %6zu of %zu\n", "reachable vulnerabilities", "",
                Rep.NumReachable, Rep.NumTotal);

  if (Cache) {
    // Publish only fully successful runs; attach the analysis metric
    // scalars only when they come from the canonical configuration (plain
    // hints mode, no extensions, no imported hints) so a key always maps
    // to the same metric block.
    bool Canonical =
        Opts.Analysis.Mode == AnalysisMode::Hints &&
        Opts.Analysis.UseReadHints && Opts.Analysis.UseWriteHints &&
        Opts.Analysis.UseModuleHints && !Opts.Analysis.UseUnknownArgHints &&
        !Opts.Analysis.UseEvalBodyAnalysis && Opts.HintsIn.empty();
    if (!AnalysisDegraded)
      Analyzer.publishToCache(Canonical ? &Base : nullptr,
                              Canonical ? &Ext : nullptr);
    printCacheSummary(Cache->stats());
  }

  if (!Opts.ReportPath.empty()) {
    // Single-project telemetry: one job record plus the manifest, same
    // schema as `jsai suite --report=`.
    JobResult Job;
    ProjectReport &R = Job.Report;
    R.Name = Spec.Name;
    R.Pattern = Spec.Pattern;
    R.NumPackages = Analyzer.numPackages();
    R.NumModules = Analyzer.numModules();
    R.NumFunctions = Analyzer.numFunctions();
    R.CodeBytes = Analyzer.codeBytes();
    R.ApproxSeconds = Analyzer.approxSeconds();
    R.Approx = Analyzer.approxStats();
    R.NumHints = Hints.size();
    R.Baseline = Base;
    R.Extended = Ext;
    if (ApproxToken.cancelled()) {
      R.Outcome = ProjectOutcome::Degraded;
      R.DegradedPhase = "approx";
    } else if (AnalysisDegraded) {
      R.Outcome = ProjectOutcome::Degraded;
      R.DegradedPhase = "analysis";
    }
    DriverOptions DO;
    DO.Deadlines = Opts.Deadlines;
    DO.IncludeTimings = Opts.ReportTimings;
    RunSummary Summary;
    Summary.Jobs.push_back(std::move(Job));
    // Aggregate the single job the same way CorpusDriver::run does.
    RunAggregates &Agg = Summary.Totals;
    const ProjectReport &JR = Summary.Jobs[0].Report;
    Agg.Projects = 1;
    (JR.Outcome == ProjectOutcome::Ok ? Agg.Ok : Agg.Degraded) = 1;
    Agg.BaselineCallEdges = JR.Baseline.NumCallEdges;
    Agg.ExtendedCallEdges = JR.Extended.NumCallEdges;
    Agg.BaselineReachable = JR.Baseline.NumReachableFunctions;
    Agg.ExtendedReachable = JR.Extended.NumReachableFunctions;
    Agg.Hints = JR.NumHints;
    Agg.SolverTokensPropagated = JR.Extended.Solver.NumTokensPropagated;
    if (!writeReport(Opts.ReportPath, Summary, DO))
      std::fprintf(stderr, "jsai: warning: cannot write '%s'\n",
                   Opts.ReportPath.c_str());
  }
  return 0;
}

int cmdCallGraph(const CliOptions &Opts) {
  ProjectSpec Spec;
  if (!loadProject(Opts, Spec))
    return 1;
  ProjectAnalyzer Analyzer(Spec);
  HintSet Hints = gatherHints(Opts, Analyzer);
  AnalysisResult Res = runAnalysis(Opts, Analyzer, Hints);
  std::printf("%s", Res.CG.toText(Analyzer.context().files()).c_str());
  std::printf("# %zu call sites, %zu edges\n", Res.NumCallSites,
              Res.NumCallEdges);
  return 0;
}

int cmdHints(const CliOptions &Opts) {
  ProjectSpec Spec;
  if (!loadProject(Opts, Spec))
    return 1;
  ProjectAnalyzer Analyzer(Spec);
  HintSet Hints = gatherHints(Opts, Analyzer);
  std::printf("%s", Hints.toText(Analyzer.context().files()).c_str());
  std::printf("# %zu hints\n", Hints.size());
  return 0;
}

int cmdRun(const CliOptions &Opts) {
  ProjectSpec Spec;
  if (!loadProject(Opts, Spec))
    return 1;
  AstContext Ctx;
  DiagnosticEngine Diags;
  ModuleLoader Loader(Ctx, Spec.Files, Diags);
  Interpreter I(Loader);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.render(Ctx.files()).c_str());
    return 1;
  }
  Completion C = I.loadModule(Spec.MainModule);
  for (const std::string &Line : I.consoleOutput())
    std::printf("%s\n", Line.c_str());
  if (C.isThrow()) {
    std::fprintf(stderr, "uncaught: %s\n", I.toStringValue(C.V).c_str());
    return 1;
  }
  if (C.isAbort()) {
    std::fprintf(stderr, "aborted: execution budget exhausted\n");
    return 1;
  }
  return 0;
}

int cmdCompare(const CliOptions &Opts) {
  ProjectSpec Spec;
  if (!loadProject(Opts, Spec))
    return 1;
  Spec.TestDriver = Opts.Driver.empty() ? Opts.MainModule : Opts.Driver;
  if (!Spec.Files.exists(Spec.TestDriver)) {
    std::fprintf(stderr, "jsai: driver module '%s' not found\n",
                 Spec.TestDriver.c_str());
    return 1;
  }
  ProjectAnalyzer Analyzer(Spec);
  const CallGraph &Dyn = Analyzer.dynamicCallGraph();
  std::printf("dynamic call graph (%s): %zu sites, %zu edges\n\n",
              Spec.TestDriver.c_str(), Dyn.numSites(), Dyn.numEdges());
  HintSet Hints = gatherHints(Opts, Analyzer);

  struct Row {
    const char *Label;
    AnalysisMode Mode;
  };
  const Row Rows[] = {
      {"baseline", AnalysisMode::Baseline},
      {"hints", AnalysisMode::Hints},
      {"non-relational", AnalysisMode::NonRelationalHints},
      {"over-approx", AnalysisMode::OverApprox},
  };
  std::printf("%-16s %8s %8s %10s\n", "mode", "edges", "recall",
              "precision");
  for (const Row &M : Rows) {
    AnalysisOptions ModeOpts = Opts.Analysis;
    ModeOpts.Mode = M.Mode;
    StaticAnalysis SA(Analyzer.loader(), ModeOpts, &Hints);
    AnalysisResult Res = SA.run();
    RecallPrecision RP = compareCallGraphs(Res.CG, Dyn);
    std::printf("%-16s %8zu %7.1f%% %9.1f%%\n", M.Label, Res.NumCallEdges,
                RP.Recall * 100, RP.Precision * 100);
  }
  return 0;
}

int cmdExplain(const CliOptions &Opts) {
  if (!Opts.ServeVia.empty())
    return serveRequest(Opts, Opts.ServeVia, "explain", Opts.Dir);
  ProjectSpec Spec;
  if (!loadProject(Opts, Spec))
    return 1;
  Spec.TestDriver = Opts.Driver.empty() ? Opts.MainModule : Opts.Driver;
  if (!Spec.Files.exists(Spec.TestDriver)) {
    std::fprintf(stderr, "jsai: driver module '%s' not found\n",
                 Spec.TestDriver.c_str());
    return 1;
  }
  ProjectAnalyzer Analyzer(Spec);
  const CallGraph &Dyn = Analyzer.dynamicCallGraph();
  std::printf("dynamic call graph (%s): %zu sites, %zu edges\n\n",
              Spec.TestDriver.c_str(), Dyn.numSites(), Dyn.numEdges());
  HintSet Hints = gatherHints(Opts, Analyzer);

  // Force provenance recording on for this analysis regardless of the
  // --explain= process default: the whole point of the command is the
  // blame trace, and recording never changes a metric.
  AnalysisOptions AO = Opts.Analysis;
  AO.Explain = true;
  StaticAnalysis SA(Analyzer.loader(), AO, &Hints);
  AnalysisResult Res = SA.run();

  ExplainInputs In;
  In.StaticCG = &Res.CG;
  In.DynamicCG = &Dyn;
  In.ApproxAborts = Analyzer.approxStats().NumAborts;
  BlameSummary B = summarizeBlame(SA.explainView(), In);
  std::printf("%s", renderBlameReport(B, Opts.Top).c_str());

  if (!Opts.ReportPath.empty()) {
    // Single-project telemetry with a trailing blame record, same schema
    // as `jsai suite --explain=record --report=`.
    JobResult Job;
    ProjectReport &R = Job.Report;
    R.Name = Spec.Name;
    R.Pattern = Spec.Pattern;
    R.NumPackages = Analyzer.numPackages();
    R.NumModules = Analyzer.numModules();
    R.NumFunctions = Analyzer.numFunctions();
    R.CodeBytes = Analyzer.codeBytes();
    R.Approx = Analyzer.approxStats();
    R.NumHints = Hints.size();
    R.Extended = Res;
    R.HasDynamicCG = true;
    R.DynamicEdges = Dyn.numEdges();
    R.ExtendedRP = compareCallGraphs(Res.CG, Dyn);
    R.HasBlame = true;
    R.Blame = B;
    DriverOptions DO;
    DO.IncludeTimings = Opts.ReportTimings;
    RunSummary Summary;
    Summary.Jobs.push_back(std::move(Job));
    RunAggregates &Agg = Summary.Totals;
    const ProjectReport &JR = Summary.Jobs[0].Report;
    Agg.Projects = 1;
    Agg.Ok = 1;
    Agg.ExtendedCallEdges = JR.Extended.NumCallEdges;
    Agg.ExtendedReachable = JR.Extended.NumReachableFunctions;
    Agg.Hints = JR.NumHints;
    Agg.SolverTokensPropagated = JR.Extended.Solver.NumTokensPropagated;
    if (!writeReport(Opts.ReportPath, Summary, DO)) {
      std::fprintf(stderr, "jsai: cannot write '%s'\n",
                   Opts.ReportPath.c_str());
      return 1;
    }
    std::printf("report: %s\n", Opts.ReportPath.c_str());
  }
  return 0;
}

int cmdSuite(const CliOptions &Opts) {
  if (!Opts.ServeVia.empty())
    return serveRequest(Opts, Opts.ServeVia, "suite", "");
  // SIGINT/SIGTERM latch the shared token: workers stop claiming projects,
  // in-flight jobs wind down through the pipeline's cancellation path, and
  // the partial report (unstarted projects marked "cancelled") still
  // flushes below.
  installInterruptHandlers();
  DriverOptions DO;
  DO.Jobs = Opts.Jobs;
  DO.Deadlines = Opts.Deadlines;
  DO.IncludeTimings = Opts.ReportTimings;
  DO.Cache = Opts.Cache;
  DO.SolverSet = Opts.Analysis.SolverSet;
  DO.SolverJobs = Opts.Analysis.SolverJobs;
  DO.Interrupt = &GInterrupt;
  CorpusDriver D(DO);
  RunSummary Summary = D.run(buildBenchmarkSuite());

  const RunAggregates &A = Summary.Totals;
  std::printf("%zu projects: %zu baseline call edges, %zu with hints "
              "(%+.1f%%)\n",
              A.Projects, A.BaselineCallEdges, A.ExtendedCallEdges,
              A.BaselineCallEdges
                  ? (double(A.ExtendedCallEdges) -
                     double(A.BaselineCallEdges)) /
                        double(A.BaselineCallEdges) * 100
                  : 0.0);
  std::printf("outcomes: %zu ok, %zu degraded, %zu error, %zu cancelled   "
              "(%zu worker%s, %.2f s)\n",
              A.Ok, A.Degraded, A.Errors, A.Cancelled, Summary.Workers,
              Summary.Workers == 1 ? "" : "s", Summary.WallSeconds);
  for (const JobResult &J : Summary.Jobs)
    if (J.Report.Outcome != ProjectOutcome::Ok)
      std::printf("  %-26s %s%s%s%s\n", J.Report.Name.c_str(),
                  projectOutcomeName(J.Report.Outcome),
                  J.Report.DegradedPhase.empty() ? "" : " (",
                  J.Report.DegradedPhase.c_str(),
                  J.Report.DegradedPhase.empty() ? "" : " phase)");
  if (Summary.CacheEnabled)
    printCacheSummary(Summary.Cache);
  if (!Opts.ReportPath.empty()) {
    if (!writeReport(Opts.ReportPath, Summary, DO)) {
      std::fprintf(stderr, "jsai: cannot write '%s'\n",
                   Opts.ReportPath.c_str());
      return 1;
    }
    std::printf("report: %s (%zu records + manifest)\n",
                Opts.ReportPath.c_str(), Summary.Jobs.size());
  }
  if (A.Cancelled > 0)
    return 130; // Interrupted: partial results flushed, exit like SIGINT.
  return A.Errors == 0 ? 0 : 1;
}

int cmdCache(const CliOptions &Opts) {
  // `jsai cache stats --cache-dir=DIR`: walk every *.jsac entry, run the
  // same structural validation the loader uses (magic, version, integrity
  // digest, section bounds), and summarize. Never modifies the cache.
  if (Opts.Dir != "stats") {
    std::fprintf(stderr, "jsai: unknown cache subcommand '%s' "
                         "(expected: stats)\n",
                 Opts.Dir.c_str());
    return 2;
  }
  if (Opts.Cache.Dir.empty()) {
    std::fprintf(stderr, "jsai: cache stats requires --cache-dir=\n");
    return 2;
  }
  std::error_code Ec;
  std::vector<std::string> Paths;
  for (const auto &DirEntry :
       std::filesystem::directory_iterator(Opts.Cache.Dir, Ec)) {
    std::string Path = DirEntry.path().string();
    if (Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".jsac") == 0)
      Paths.push_back(Path);
  }
  if (Ec) {
    std::fprintf(stderr, "jsai: cannot read cache dir '%s': %s\n",
                 Opts.Cache.Dir.c_str(), Ec.message().c_str());
    return 1;
  }
  std::sort(Paths.begin(), Paths.end());

  size_t Valid = 0, Invalid = 0;
  uint64_t TotalBytes = 0;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Bytes = Buf.str();
    if (!In) {
      std::printf("  invalid  %s  (unreadable)\n", Path.c_str());
      ++Invalid;
      continue;
    }
    TotalBytes += Bytes.size();
    Sha256Digest Key;
    std::string Error;
    if (validateCacheEntryBytes(Bytes, Key, Error)) {
      ++Valid;
    } else {
      std::printf("  invalid  %s  (%s)\n", Path.c_str(), Error.c_str());
      ++Invalid;
    }
  }
  std::printf("cache dir: %s\n", Opts.Cache.Dir.c_str());
  std::printf("entries: %zu valid, %zu invalid, %llu bytes\n", Valid, Invalid,
              (unsigned long long)TotalBytes);
  return Invalid == 0 ? 0 : 1;
}

int cmdCorpus(const CliOptions &Opts) {
  // `jsai corpus list` / `jsai corpus dump <name> <dir>`: inspect and
  // materialize projects of the embedded benchmark suite, so scripts can
  // point the file-based commands (analyze/compare/explain) at a real
  // corpus project on disk.
  const std::string Sub =
      Opts.Positionals.empty() ? std::string() : Opts.Positionals[0];
  std::vector<ProjectSpec> Suite = buildBenchmarkSuite();
  if (Sub == "list") {
    for (const ProjectSpec &Spec : Suite)
      std::printf("%-26s %-22s %3zu modules  %s\n", Spec.Name.c_str(),
                  Spec.Pattern.c_str(), Spec.numModules(),
                  Spec.hasDynamicCallGraph() ? Spec.TestDriver.c_str() : "-");
    return 0;
  }
  if (Sub == "dump") {
    if (Opts.Positionals.size() < 3) {
      std::fprintf(stderr,
                   "jsai: corpus dump requires a project name and a "
                   "destination directory\n");
      return 2;
    }
    const std::string &Name = Opts.Positionals[1];
    const std::string &Dest = Opts.Positionals[2];
    for (const ProjectSpec &Spec : Suite) {
      if (Spec.Name != Name)
        continue;
      for (const std::string &Path : Spec.Files.allPaths()) {
        std::filesystem::path Out = std::filesystem::path(Dest) / Path;
        std::error_code Ec;
        std::filesystem::create_directories(Out.parent_path(), Ec);
        std::ofstream File(Out, std::ios::binary);
        File << Spec.Files.read(Path);
        if (!File) {
          std::fprintf(stderr, "jsai: cannot write '%s'\n",
                       Out.string().c_str());
          return 1;
        }
      }
      std::printf("dumped %s to %s (%zu files, main: %s, driver: %s)\n",
                  Name.c_str(), Dest.c_str(), Spec.Files.size(),
                  Spec.MainModule.c_str(),
                  Spec.hasDynamicCallGraph() ? Spec.TestDriver.c_str() : "-");
      return 0;
    }
    std::fprintf(stderr, "jsai: no corpus project named '%s' (see `jsai "
                         "corpus list`)\n",
                 Name.c_str());
    return 1;
  }
  std::fprintf(stderr, "jsai: unknown corpus subcommand '%s' "
                       "(expected: list, dump)\n",
               Sub.c_str());
  return 2;
}

int cmdServe(const CliOptions &Opts) {
  if (Opts.Socket.empty()) {
    std::fprintf(stderr, "jsai: serve requires --socket=<path>\n");
    return 2;
  }
  installInterruptHandlers();
  serve::ServeOptions SO;
  SO.SocketPath = Opts.Socket;
  SO.Jobs = Opts.Jobs;
  SO.Deadlines = Opts.Deadlines;
  SO.Cache = Opts.Cache;
  SO.IncludeTimings = Opts.ReportTimings;
  SO.SolverSet = Opts.Analysis.SolverSet;
  SO.SolverJobs = Opts.Analysis.SolverJobs;
  SO.WarmSolver = Opts.ServeWarmSolver;
  SO.Interrupt = &GInterrupt;
  serve::Server Server(SO);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "jsai: %s\n", Error.c_str());
    return 1;
  }
  std::printf("jsai %s serving on %s (jobs=%zu, cache=%s)\n", JsaiVersion,
              Opts.Socket.c_str(), Opts.Jobs,
              Opts.Cache.enabled() ? Opts.Cache.Dir.c_str() : "off");
  std::fflush(stdout); // The readiness line; scripts wait for it.
  switch (Server.run()) {
  case serve::ServeExit::Shutdown:
    std::printf("shutdown requested, exiting\n");
    return 0;
  case serve::ServeExit::Interrupted:
    std::printf("interrupted, exiting\n");
    return 130;
  case serve::ServeExit::Error:
    std::fprintf(stderr, "jsai: socket error, exiting\n");
    return 1;
  }
  return 1;
}

int cmdClient(const CliOptions &Opts) {
  if (Opts.Positionals.empty()) {
    std::fprintf(stderr, "jsai: client requires a request "
                         "(analyze|suite|explain|stats|shutdown)\n");
    return 2;
  }
  const std::string &Request = Opts.Positionals[0];
  if (Request != "analyze" && Request != "suite" && Request != "explain" &&
      Request != "stats" && Request != "shutdown") {
    std::fprintf(stderr, "jsai: unknown client request '%s'\n",
                 Request.c_str());
    return 2;
  }
  std::string Dir =
      Opts.Positionals.size() > 1 ? Opts.Positionals[1] : std::string();
  return serveRequest(Opts, Opts.Socket, Request, Dir);
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--version") == 0) {
      std::printf("jsai %s\n", JsaiVersion);
      return 0;
    }
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage();
    return 2;
  }
  if (Opts.Command == "analyze")
    return cmdAnalyze(Opts);
  if (Opts.Command == "callgraph")
    return cmdCallGraph(Opts);
  if (Opts.Command == "hints")
    return cmdHints(Opts);
  if (Opts.Command == "run")
    return cmdRun(Opts);
  if (Opts.Command == "compare")
    return cmdCompare(Opts);
  if (Opts.Command == "explain")
    return cmdExplain(Opts);
  if (Opts.Command == "suite")
    return cmdSuite(Opts);
  if (Opts.Command == "cache")
    return cmdCache(Opts);
  if (Opts.Command == "corpus")
    return cmdCorpus(Opts);
  if (Opts.Command == "serve")
    return cmdServe(Opts);
  if (Opts.Command == "client")
    return cmdClient(Opts);
  printUsage();
  return 2;
}
