#!/usr/bin/env bash
# Golden-metrics check: the 13 metric-producing benches print deterministic
# paper tables (hints, call edges, recall/precision, ...). Object-layout and
# other performance refactors must never change them, so CI compares a
# SHA-256 of each bench's output against the committed aggregate.
#
#   tools/check_metrics.sh [build-dir]            # verify (CI mode)
#   tools/check_metrics.sh [build-dir] --update   # re-bless after an
#                                                 # intentional metric change
#   tools/check_metrics.sh [build-dir] --solver-set=dense|adaptive
#                                 # verify under one set representation; CI
#                                 # runs both against the SAME golden file —
#                                 # the representation must never leak into
#                                 # metric tables
#   tools/check_metrics.sh [build-dir] --interp=ast|vm
#                                 # verify under one execution engine; CI
#                                 # runs both against the SAME golden file —
#                                 # the bytecode VM must reproduce the tree
#                                 # walker's tables byte for byte
#   tools/check_metrics.sh [build-dir] --vm-opt=on|off
#                                 # verify under the bytecode optimizer; CI
#                                 # runs the vm engine in both modes against
#                                 # the SAME golden file — superinstruction
#                                 # fusion and quickening must never change
#                                 # a metric table
#   tools/check_metrics.sh [build-dir] --solver-jobs=N
#                                 # verify under an N-thread parallel
#                                 # fixpoint; CI runs jobs=4 against the
#                                 # SAME golden file — the wave-parallel
#                                 # solver must be byte-identical to the
#                                 # sequential loop
#   tools/check_metrics.sh [build-dir] --explain=off|record
#                                 # verify under provenance recording; CI
#                                 # runs record against the SAME golden
#                                 # file — blame tracking must never
#                                 # change a metric table
#
# Exits non-zero on drift, listing each bench whose table changed.
set -euo pipefail

BUILD_DIR="build"
UPDATE=0
for Arg in "$@"; do
  case "$Arg" in
  --update) UPDATE=1 ;;
  --solver-set=*)
    JSAI_SOLVER_SET="${Arg#--solver-set=}"
    export JSAI_SOLVER_SET
    ;;
  --interp=*)
    JSAI_INTERP="${Arg#--interp=}"
    export JSAI_INTERP
    ;;
  --vm-opt=*)
    JSAI_VM_OPT="${Arg#--vm-opt=}"
    export JSAI_VM_OPT
    ;;
  --solver-jobs=*)
    JSAI_SOLVER_JOBS="${Arg#--solver-jobs=}"
    export JSAI_SOLVER_JOBS
    ;;
  --explain=*)
    JSAI_EXPLAIN="${Arg#--explain=}"
    export JSAI_EXPLAIN
    ;;
  *) BUILD_DIR="$Arg" ;;
  esac
done

BENCHES="
ablation_extensions
ablation_overapprox
ablation_relational
fig4_call_edges
fig5_reachable_functions
fig6_resolved_call_sites
fig7_monomorphic_call_sites
hint_stats
motivating_example
pattern_breakdown
table1_benchmarks
table2_recall_precision
vulnerability_reachability
"

GOLDEN="$(dirname "$0")/golden_metrics.json"

# sha256sum (coreutils) on Linux; shasum -a 256 (perl) on macOS/BSD.
if command -v sha256sum >/dev/null 2>&1; then
  sha256() { sha256sum | cut -d' ' -f1; }
elif command -v shasum >/dev/null 2>&1; then
  sha256() { shasum -a 256 | cut -d' ' -f1; }
else
  echo "check_metrics.sh: neither sha256sum nor shasum found" >&2
  exit 1
fi

hash_of() {
  "$BUILD_DIR/bench/bench_$1" 2>/dev/null | sha256
}

if [ "$UPDATE" -eq 1 ]; then
  {
    echo '{'
    First=1
    for B in $BENCHES; do
      [ "$First" -eq 1 ] || echo ','
      First=0
      printf '  "%s": "%s"' "$B" "$(hash_of "$B")"
    done
    echo
    echo '}'
  } >"$GOLDEN"
  echo "updated $GOLDEN"
  exit 0
fi

[ -f "$GOLDEN" ] || { echo "missing $GOLDEN (run with --update once)"; exit 1; }

Fail=0
for B in $BENCHES; do
  Want="$(sed -n "s/.*\"$B\": *\"\([0-9a-f]*\)\".*/\1/p" "$GOLDEN")"
  if [ -z "$Want" ]; then
    echo "FAIL $B: no golden entry"
    Fail=1
    continue
  fi
  Got="$(hash_of "$B")"
  if [ "$Got" != "$Want" ]; then
    echo "FAIL $B: metric drift (got $Got, want $Want)"
    Fail=1
  else
    echo "ok   $B"
  fi
done

if [ "$Fail" -ne 0 ]; then
  echo
  echo "Metric tables changed. If the change is an intentional analysis"
  echo "improvement, re-bless with: tools/check_metrics.sh $BUILD_DIR --update"
  exit 1
fi
