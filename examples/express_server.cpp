//===- express_server.cpp - The paper's Figure 1, end to end -----------------===//
//
// Walks through the motivating example of the paper: the Express-style
// "Hello world!" web server whose app.get / app.listen calls can only be
// resolved by understanding merge-descriptors and the dynamically computed
// method names. Prints the observations (Section 2), the resulting hints
// (Section 3), and the call edges recovered by rules [DPR]/[DPW]
// (Section 4).
//
//===----------------------------------------------------------------------===//

#include "corpus/MotivatingExample.h"
#include "pipeline/Pipeline.h"

#include <cstdio>

using namespace jsai;

int main() {
  ProjectSpec Spec = motivatingExampleProject();
  ProjectAnalyzer Analyzer(Spec);
  const FileTable &Files = Analyzer.context().files();

  std::printf("The motivating example: %zu packages, %zu modules, %zu "
              "functions\n\n",
              Analyzer.numPackages(), Analyzer.numModules(),
              Analyzer.numFunctions());

  // Section 3: approximate interpretation over the project.
  const HintSet &Hints = Analyzer.hints();
  std::printf("Approximate interpretation visited %zu/%zu functions and "
              "produced %zu hints.\n",
              Analyzer.approxStats().NumFunctionsVisited,
              Analyzer.approxStats().NumFunctionsTotal, Hints.size());

  std::printf("\nWrite hints H_W involving the web-application object "
              "(express/index.js:6) — compare the paper's\n"
              "H_W = {(l35,get,l38), (l35,listen,l46), (l14,get,l38), "
              "(l14,listen,l46), ...}:\n");
  FileId ExpressFile = Analyzer.context().files().lookup("express/index.js");
  for (const WriteHint &W : Hints.writeHints())
    if (W.Base.Loc.File == ExpressFile)
      std::printf("  (%s, %s, %s)\n", Files.format(W.Base.Loc).c_str(),
                  W.Prop.c_str(), Files.format(W.Val.Loc).c_str());

  // Section 4: baseline vs. extended static analysis.
  AnalysisResult Baseline = Analyzer.analyze(AnalysisMode::Baseline);
  AnalysisResult Extended = Analyzer.analyze(AnalysisMode::Hints);
  std::printf("\nBaseline:  %zu call edges, %zu reachable functions\n",
              Baseline.NumCallEdges, Baseline.NumReachableFunctions);
  std::printf("Extended:  %zu call edges, %zu reachable functions\n",
              Extended.NumCallEdges, Extended.NumReachableFunctions);

  std::printf("\nEdges recovered by the hints (note app.get at "
              "app/main.js:3 and app.listen at app/main.js:7):\n");
  for (const auto &[Site, Callees] : Extended.CG.edges())
    for (const SourceLoc &Callee : Callees)
      if (!Baseline.CG.hasEdge(Site, Callee))
        std::printf("  %s -> %s\n", Files.format(Site).c_str(),
                    Files.format(Callee).c_str());

  // Ground truth from the test-driver execution.
  const CallGraph &Dyn = Analyzer.dynamicCallGraph();
  RecallPrecision BaseRP = compareCallGraphs(Baseline.CG, Dyn);
  RecallPrecision ExtRP = compareCallGraphs(Extended.CG, Dyn);
  std::printf("\nAgainst the dynamic call graph (%zu edges): recall %.1f%% "
              "-> %.1f%%, precision %.1f%% -> %.1f%%\n",
              Dyn.numEdges(), BaseRP.Recall * 100, ExtRP.Recall * 100,
              BaseRP.Precision * 100, ExtRP.Precision * 100);
  return ExtRP.Recall > BaseRP.Recall ? 0 : 1;
}
