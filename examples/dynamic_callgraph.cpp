//===- dynamic_callgraph.cpp - Recording and comparing call graphs -----------===//
//
// Demonstrates the measurement side of the evaluation: run a project's
// test driver under the instrumented concrete interpreter (the NodeProf
// stand-in), record the dynamic call graph, and score every analysis mode
// against it — recall (soundness) and per-call precision.
//
//===----------------------------------------------------------------------===//

#include "corpus/PatternGenerators.h"
#include "pipeline/Pipeline.h"

#include <cstdio>

using namespace jsai;

int main() {
  Rng R(7);
  ProjectSpec Spec = makeEventHub(R, 2);
  Spec.Name = "dyncg-demo";

  ProjectAnalyzer Analyzer(Spec);
  const FileTable &Files = Analyzer.context().files();

  // The instrumented run of the test driver (the project's "test suite").
  const CallGraph &Dyn = Analyzer.dynamicCallGraph();
  std::printf("Dynamic call graph from %s: %zu call sites, %zu edges\n\n",
              Spec.TestDriver.c_str(), Dyn.numSites(), Dyn.numEdges());
  std::printf("%s\n", Dyn.toText(Files).c_str());

  struct ModeRow {
    const char *Label;
    AnalysisMode Mode;
  };
  const ModeRow Modes[] = {
      {"baseline", AnalysisMode::Baseline},
      {"hints", AnalysisMode::Hints},
      {"non-relational", AnalysisMode::NonRelationalHints},
      {"over-approx", AnalysisMode::OverApprox},
  };

  std::printf("%-16s %8s %8s %10s %12s\n", "Mode", "Edges", "Recall",
              "Precision", "Monomorphic");
  for (const ModeRow &M : Modes) {
    AnalysisResult Res = Analyzer.analyze(M.Mode);
    RecallPrecision RP = compareCallGraphs(Res.CG, Dyn);
    std::printf("%-16s %8zu %7.1f%% %9.1f%% %11.1f%%\n", M.Label,
                Res.NumCallEdges, RP.Recall * 100, RP.Precision * 100,
                Res.monomorphicFraction() * 100);
  }

  std::printf("\nDynamic edges missed by the baseline but found with "
              "hints:\n");
  AnalysisResult Base = Analyzer.analyze(AnalysisMode::Baseline);
  AnalysisResult Ext = Analyzer.analyze(AnalysisMode::Hints);
  for (const auto &[Site, Callees] : Dyn.edges())
    for (const SourceLoc &Callee : Callees)
      if (!Base.CG.hasEdge(Site, Callee) && Ext.CG.hasEdge(Site, Callee))
        std::printf("  %s -> %s\n", Files.format(Site).c_str(),
                    Files.format(Callee).c_str());
  return 0;
}
