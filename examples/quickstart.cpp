//===- quickstart.cpp - Getting started with the jsai library ----------------===//
//
// Quickstart: analyze a small program with and without approximate
// interpretation. Shows the three-step API:
//
//   1. put the project's modules in a ProjectSpec (virtual file system);
//   2. run the dynamic pre-analysis (ProjectAnalyzer::hints);
//   3. run the static analysis with AnalysisMode::Baseline and
//      AnalysisMode::Hints and compare the call graphs.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include <cstdio>

using namespace jsai;

int main() {
  // A tiny project with the pattern the paper targets: a library installs
  // its API methods via dynamically computed property names.
  ProjectSpec Spec;
  Spec.Name = "quickstart";
  Spec.Files.addFile("mathlib/index.js",
                     "var ops = ['add', 'sub'];\n"
                     "var impls = {\n"
                     "  add: function add(a, b) { return a + b; },\n"
                     "  sub: function sub(a, b) { return a - b; }\n"
                     "};\n"
                     "ops.forEach(function(op) {\n"
                     "  exports[op] = impls[op];\n"
                     "});\n");
  Spec.Files.addFile("app/main.js", "var mathlib = require('mathlib');\n"
                                    "var sum = mathlib.add(2, 3);\n"
                                    "var diff = mathlib.sub(5, 1);\n");

  ProjectAnalyzer Analyzer(Spec);

  // Step 1: the dynamic pre-analysis produces hints.
  const HintSet &Hints = Analyzer.hints();
  std::printf("== Hints produced by approximate interpretation ==\n%s\n",
              Hints.toText(Analyzer.context().files()).c_str());

  // Step 2: baseline (ignores dynamic property accesses).
  AnalysisResult Baseline = Analyzer.analyze(AnalysisMode::Baseline);
  std::printf("== Baseline call graph (%zu edges) ==\n%s\n",
              Baseline.NumCallEdges,
              Baseline.CG.toText(Analyzer.context().files()).c_str());

  // Step 3: extended analysis consuming the hints ([DPR]/[DPW]).
  AnalysisResult Extended = Analyzer.analyze(AnalysisMode::Hints);
  std::printf("== Extended call graph (%zu edges) ==\n%s\n",
              Extended.NumCallEdges,
              Extended.CG.toText(Analyzer.context().files()).c_str());

  std::printf("The calls mathlib.add / mathlib.sub resolve only with "
              "hints: %zu -> %zu call edges.\n",
              Baseline.NumCallEdges, Extended.NumCallEdges);
  return Extended.NumCallEdges > Baseline.NumCallEdges ? 0 : 1;
}
