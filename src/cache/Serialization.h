//===- Serialization.h - Versioned binary artifact format -------*- C++ -*-===//
///
/// \file
/// The on-disk encoding of one cached analysis artifact: the hints produced
/// by approximate interpretation (H_R/H_W plus the extension hint kinds),
/// the approx/interp statistic blocks, and the per-project call-graph metric
/// scalars of the baseline and extended analyses.
///
/// Layout (all integers little-endian):
///
///   magic   "JSAC"                          4 bytes
///   version u32                             format version (CacheFormatVersion)
///   key     32 bytes                        the entry's content-address key
///   count   u32                             number of sections
///   section { tag u32, length u64, payload }  x count
///   digest  32 bytes                        SHA-256 of every preceding byte
///
/// Robustness contract: decode() never throws and never reads out of
/// bounds. Truncated input, flipped bits anywhere (the trailing digest
/// covers the full header and every section), a wrong format version, or a
/// key that does not match the expected content address all fail with a
/// one-line reason; the caller recomputes. Unknown section tags are skipped
/// so future versions can extend the format without invalidating readers
/// only when the version matches.
///
/// Determinism contract: encode() is a pure function of the entry and the
/// file table — sections are written in fixed order, hint payloads use the
/// portable path-keyed text format (itself ordered), and no timestamp,
/// hostname, or other run-environment fact is ever included. Two clean
/// builds therefore produce bit-identical entries (asserted in CacheTest).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CACHE_SERIALIZATION_H
#define JSAI_CACHE_SERIALIZATION_H

#include "approx/ApproxInterpreter.h"
#include "approx/HintSet.h"
#include "cache/Sha256.h"

#include <cstdint>
#include <string>

namespace jsai {

/// Bump on any incompatible change to the entry layout or section payloads.
/// Old entries then fail decode with a version diagnostic and are treated
/// as misses (never migrated in place).
inline constexpr uint32_t CacheFormatVersion = 2;

/// Per-mode call-graph metric scalars cached alongside the hints (the
/// figure-4..7 numbers for one project). Informational: a warm run always
/// recomputes the analysis from the cached hints, so these can never poison
/// reported metrics; `jsai cache stats` surfaces them.
struct CachedAnalysisMetrics {
  uint64_t CallEdges = 0;
  uint64_t ReachableFunctions = 0;
  uint64_t CallSites = 0;
  uint64_t ResolvedCallSites = 0;
  uint64_t MonomorphicCallSites = 0;

  friend bool operator==(const CachedAnalysisMetrics &,
                         const CachedAnalysisMetrics &) = default;
};

/// Everything one cache entry carries.
struct CacheEntry {
  HintSet Hints;
  /// Statistic blocks of the approx phase (including the runtime-layer
  /// InterpStats); restored on a hit so warm telemetry is byte-identical
  /// to cold telemetry.
  ApproxStats Approx;
  /// Present only when the entry was published by a full pipeline run
  /// (analyze/suite); hint-only producers leave it absent.
  bool HasMetrics = false;
  CachedAnalysisMetrics Baseline;
  CachedAnalysisMetrics Extended;
  /// Module-granular slice provenance (format v2). Whole-project entries
  /// leave both empty; a per-module slice records which module it covers
  /// and the hex fingerprint of the import-closure component it was sliced
  /// from, so `jsai cache stats` can tell the two entry kinds apart.
  std::string SliceModule;
  std::string SliceComponent;

  bool isSlice() const { return !SliceModule.empty(); }
};

/// Serializes \p Entry under content-address \p Key. \p Files resolves the
/// hint locations to portable path-based references.
std::string encodeCacheEntry(const CacheEntry &Entry, const Sha256Digest &Key,
                             const FileTable &Files);

/// Decodes \p Bytes, verifying magic, version, integrity digest, and that
/// the embedded key equals \p ExpectedKey. \returns false with a one-line
/// reason in \p Error on any mismatch or malformation; \p Out is then
/// unspecified.
bool decodeCacheEntry(const std::string &Bytes, const Sha256Digest &ExpectedKey,
                      const FileTable &Files, CacheEntry &Out,
                      std::string &Error);

/// Integrity-only validation (magic, version, digest, section bounds) for
/// entries whose key is not independently known — `jsai cache stats` uses
/// it to classify on-disk files. On success \p EmbeddedKey receives the
/// entry's content address.
bool validateCacheEntryBytes(const std::string &Bytes, Sha256Digest &EmbeddedKey,
                             std::string &Error);

} // namespace jsai

#endif // JSAI_CACHE_SERIALIZATION_H
