//===- ModularArtifacts.h - Module-granular artifact slicing ----*- C++ -*-===//
///
/// \file
/// Module-granular keys for the artifact cache. The whole-project key of
/// PR 4 invalidates everything when any byte of any file changes; the slice
/// layer here partitions a project into *import-closure components* so an
/// edit re-runs approximate interpretation only for the component that
/// contains the edited module.
///
/// Soundness of the unit. Approximate interpretation of a module can read
/// anything reachable through the require graph — and, because hints record
/// what *callers* force-execute, anything that reaches it. The smallest
/// unit whose hints are a pure function of its own sources is therefore a
/// weakly-connected component of the require graph restricted to
/// root-reachable modules. The require graph is recovered statically by an
/// over-approximating scan: every string literal in every file is treated
/// as a potential require spec and resolved with the module loader's exact
/// resolution rules. Over-approximation merges components (coarser
/// granularity, never wrong); dynamically computed specs the scan cannot
/// see are caught at publish time — a component's slices are only written
/// when the interpreter's observed module loads stayed inside the
/// component's member set.
///
/// A slice key binds (format version, approx-config fingerprint, component
/// root list, module path, component fingerprint); the component
/// fingerprint hashes every member's path + source plus the full spec →
/// resolution map, so adding a file that would re-route any member's
/// require invalidates the component even though no member changed.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CACHE_MODULARARTIFACTS_H
#define JSAI_CACHE_MODULARARTIFACTS_H

#include "approx/HintSet.h"
#include "cache/Sha256.h"
#include "interp/FileSystem.h"

#include <string>
#include <vector>

namespace jsai {

/// One weakly-connected component of the root-reachable require graph.
struct ModuleComponent {
  /// Member module paths, sorted. The first member is the component's
  /// *leader*: its slice carries the component-level approx stat block and
  /// the (insertion-ordered) eval hints of the whole component.
  std::vector<std::string> Members;
  /// The analysis roots that fall in this component, in original root
  /// order (main module first) — this is the execution order for a cold
  /// per-component approx run.
  std::vector<std::string> Roots;
  /// Hex SHA-256 over members' (path, source) pairs and the component's
  /// require-resolution map.
  std::string Fingerprint;

  const std::string &leader() const { return Members.front(); }
  bool contains(const std::string &Path) const;
};

/// The partition of a project's root-reachable modules into components,
/// ordered by first-root occurrence (so the main module's component is
/// always first and execution order is deterministic).
struct ModulePartition {
  std::vector<ModuleComponent> Components;
};

/// Computes the partition of \p FS's root-reachable modules under the
/// string-literal require scan, seeded from \p Roots (orderd, main first).
ModulePartition computeModulePartition(const FileSystem &FS,
                                       const std::vector<std::string> &Roots);

/// Content-address for one module's slice within its component.
/// \p ConfigFingerprint is the same approx-config fingerprint used for the
/// whole-project key, so every knob that invalidates the project entry also
/// invalidates every slice.
Sha256Digest computeSliceKey(const std::string &ConfigFingerprint,
                             const ModuleComponent &Component,
                             const std::string &ModulePath,
                             const std::string &ModuleSource);

/// Splits \p Hints into per-member slices for \p Component, keyed by the
/// owner file of each hint (read hints by read location, write hints by the
/// base object's allocation site, module hints by the require site). Eval
/// hints are order-sensitive, so the leader's slice carries all of them;
/// merging slices leader-first reproduces the component's hint set exactly
/// (asserted in CacheTest). \p Files maps hint FileIds back to paths.
/// Hints whose owner file is not a member land in the leader's slice.
std::vector<HintSet> sliceHintsByModule(const HintSet &Hints,
                                        const ModuleComponent &Component,
                                        const FileTable &Files);

} // namespace jsai

#endif // JSAI_CACHE_MODULARARTIFACTS_H
