//===- Sha256.h - SHA-256 message digest ------------------------*- C++ -*-===//
///
/// \file
/// A small, dependency-free SHA-256 (FIPS 180-4) implementation. The cache
/// subsystem uses it twice: to derive content-addressed entry keys from
/// module sources plus the analysis-config fingerprint, and as the trailing
/// integrity checksum of every serialized artifact. Determinism is the whole
/// point — the digest of a byte string is the same on every platform, every
/// build, every run.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CACHE_SHA256_H
#define JSAI_CACHE_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace jsai {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 hasher: update() any number of times, then digest()
/// exactly once.
class Sha256 {
public:
  Sha256();

  void update(const void *Data, size_t Len);
  void update(const std::string &S) { update(S.data(), S.size()); }

  /// Finalizes the hash. The hasher must not be updated afterwards.
  Sha256Digest digest();

  /// One-shot convenience.
  static Sha256Digest hash(const std::string &S);

  /// Lower-case hex rendering (64 characters).
  static std::string hex(const Sha256Digest &D);

private:
  void compress(const uint8_t *Block);

  uint32_t State[8];
  uint64_t TotalBytes = 0;
  uint8_t Buffer[64];
  size_t BufferLen = 0;
};

} // namespace jsai

#endif // JSAI_CACHE_SHA256_H
