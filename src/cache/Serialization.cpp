//===- Serialization.cpp - Versioned binary artifact format ---------------===//

#include "cache/Serialization.h"

#include <cstring>

using namespace jsai;

namespace {

// Section tags. Values are part of the on-disk format; never reuse.
constexpr uint32_t SecHints = 1;   ///< Portable hint text (HintSet::serialize).
constexpr uint32_t SecApprox = 2;  ///< ApproxStats + InterpStats, 12 u64s.
constexpr uint32_t SecMetrics = 3; ///< u8 present + 2 x 5 u64s.
constexpr uint32_t SecSlice = 4;   ///< Slice provenance: 2 length-prefixed strings.

constexpr char Magic[4] = {'J', 'S', 'A', 'C'};
constexpr size_t HeaderSize = 4 + 4 + 32 + 4; // magic + version + key + count
constexpr size_t DigestSize = 32;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out += char(uint8_t(V >> (I * 8)));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out += char(uint8_t(V >> (I * 8)));
}

/// Bounds-checked little-endian reader over the entry bytes.
class ByteReader {
public:
  ByteReader(const std::string &Bytes, size_t Pos, size_t End)
      : Bytes(Bytes), Pos(Pos), End(End) {}

  size_t pos() const { return Pos; }
  size_t remaining() const { return End - Pos; }

  bool readU32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= uint32_t(uint8_t(Bytes[Pos + I])) << (I * 8);
    Pos += 4;
    return true;
  }

  bool readU64(uint64_t &V) {
    if (remaining() < 8)
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= uint64_t(uint8_t(Bytes[Pos + I])) << (I * 8);
    Pos += 8;
    return true;
  }

  bool readU8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = uint8_t(Bytes[Pos++]);
    return true;
  }

  bool skip(uint64_t N) {
    if (remaining() < N)
      return false;
    Pos += size_t(N);
    return true;
  }

private:
  const std::string &Bytes;
  size_t Pos;
  size_t End;
};

void encodeApproxSection(std::string &Out, const ApproxStats &S) {
  putU64(Out, S.NumFunctionsTotal);
  putU64(Out, S.NumFunctionsVisited);
  putU64(Out, S.NumModulesLoaded);
  putU64(Out, S.NumForcedExecutions);
  putU64(Out, S.NumAborts);
  putU64(Out, S.Interp.ICGetHits);
  putU64(Out, S.Interp.ICGetMisses);
  putU64(Out, S.Interp.ICSetHits);
  putU64(Out, S.Interp.ICSetMisses);
  putU64(Out, S.Interp.ShapeTransitions);
  putU64(Out, S.Interp.ShapesCreated);
  putU64(Out, S.Interp.DictionaryConversions);
}

bool decodeApproxSection(ByteReader &R, ApproxStats &S) {
  uint64_t V[12];
  for (uint64_t &Field : V)
    if (!R.readU64(Field))
      return false;
  S.NumFunctionsTotal = size_t(V[0]);
  S.NumFunctionsVisited = size_t(V[1]);
  S.NumModulesLoaded = size_t(V[2]);
  S.NumForcedExecutions = size_t(V[3]);
  S.NumAborts = size_t(V[4]);
  S.Interp.ICGetHits = V[5];
  S.Interp.ICGetMisses = V[6];
  S.Interp.ICSetHits = V[7];
  S.Interp.ICSetMisses = V[8];
  S.Interp.ShapeTransitions = V[9];
  S.Interp.ShapesCreated = V[10];
  S.Interp.DictionaryConversions = V[11];
  return true;
}

void encodeMetrics(std::string &Out, const CachedAnalysisMetrics &M) {
  putU64(Out, M.CallEdges);
  putU64(Out, M.ReachableFunctions);
  putU64(Out, M.CallSites);
  putU64(Out, M.ResolvedCallSites);
  putU64(Out, M.MonomorphicCallSites);
}

bool decodeMetrics(ByteReader &R, CachedAnalysisMetrics &M) {
  return R.readU64(M.CallEdges) && R.readU64(M.ReachableFunctions) &&
         R.readU64(M.CallSites) && R.readU64(M.ResolvedCallSites) &&
         R.readU64(M.MonomorphicCallSites);
}

void appendSection(std::string &Out, uint32_t Tag, const std::string &Payload) {
  putU32(Out, Tag);
  putU64(Out, Payload.size());
  Out += Payload;
}

/// Shared frame walk: validates magic/version/digest/section bounds and
/// hands each section's body to \p OnSection(tag, reader-positioned-at-
/// payload, length). Returns false with \p Error set on any malformation.
template <typename FnT>
bool walkEntry(const std::string &Bytes, Sha256Digest &EmbeddedKey,
               std::string &Error, FnT OnSection) {
  if (Bytes.size() < HeaderSize + DigestSize) {
    Error = "cache entry truncated (shorter than header + digest)";
    return false;
  }
  if (std::memcmp(Bytes.data(), Magic, 4) != 0) {
    Error = "cache entry has wrong magic (not a jsai artifact)";
    return false;
  }
  ByteReader Header(Bytes, 4, Bytes.size());
  uint32_t Version = 0;
  Header.readU32(Version);
  if (Version != CacheFormatVersion) {
    Error = "cache entry format version " + std::to_string(Version) +
            " != supported " + std::to_string(CacheFormatVersion);
    return false;
  }

  // Integrity first: a digest mismatch subsumes most other corruptions and
  // guarantees the section walk below runs over exactly the bytes that
  // were written.
  Sha256 H;
  H.update(Bytes.data(), Bytes.size() - DigestSize);
  Sha256Digest Want = H.digest();
  if (std::memcmp(Want.data(), Bytes.data() + Bytes.size() - DigestSize,
                  DigestSize) != 0) {
    Error = "cache entry integrity digest mismatch (corrupt or truncated)";
    return false;
  }

  std::memcpy(EmbeddedKey.data(), Bytes.data() + 8, 32);

  ByteReader R(Bytes, 8 + 32, Bytes.size() - DigestSize);
  uint32_t NumSections = 0;
  R.readU32(NumSections);
  for (uint32_t I = 0; I != NumSections; ++I) {
    uint32_t Tag = 0;
    uint64_t Len = 0;
    if (!R.readU32(Tag) || !R.readU64(Len) || Len > R.remaining()) {
      Error = "cache entry section " + std::to_string(I) +
              " header out of bounds";
      return false;
    }
    size_t BodyStart = R.pos();
    ByteReader Body(Bytes, BodyStart, BodyStart + size_t(Len));
    if (!OnSection(Tag, Body, size_t(Len), Error))
      return false;
    R.skip(Len);
  }
  if (R.remaining() != 0) {
    Error = "cache entry has trailing bytes after the last section";
    return false;
  }
  return true;
}

} // namespace

std::string jsai::encodeCacheEntry(const CacheEntry &Entry,
                                   const Sha256Digest &Key,
                                   const FileTable &Files) {
  std::string Out;
  Out.append(Magic, 4);
  putU32(Out, CacheFormatVersion);
  Out.append(reinterpret_cast<const char *>(Key.data()), Key.size());
  putU32(Out, 4); // section count

  appendSection(Out, SecHints, Entry.Hints.serialize(Files));

  std::string Approx;
  encodeApproxSection(Approx, Entry.Approx);
  appendSection(Out, SecApprox, Approx);

  std::string Metrics;
  Metrics += char(Entry.HasMetrics ? 1 : 0);
  encodeMetrics(Metrics, Entry.Baseline);
  encodeMetrics(Metrics, Entry.Extended);
  appendSection(Out, SecMetrics, Metrics);

  std::string Slice;
  putU32(Slice, uint32_t(Entry.SliceModule.size()));
  Slice += Entry.SliceModule;
  putU32(Slice, uint32_t(Entry.SliceComponent.size()));
  Slice += Entry.SliceComponent;
  appendSection(Out, SecSlice, Slice);

  Sha256 H;
  H.update(Out);
  Sha256Digest Digest = H.digest();
  Out.append(reinterpret_cast<const char *>(Digest.data()), Digest.size());
  return Out;
}

bool jsai::decodeCacheEntry(const std::string &Bytes,
                            const Sha256Digest &ExpectedKey,
                            const FileTable &Files, CacheEntry &Out,
                            std::string &Error) {
  Sha256Digest EmbeddedKey;
  bool SawHints = false, SawApprox = false;
  bool Ok = walkEntry(
      Bytes, EmbeddedKey, Error,
      [&](uint32_t Tag, ByteReader &Body, size_t Len,
          std::string &Err) -> bool {
        switch (Tag) {
        case SecHints: {
          Out.Hints = HintSet::deserialize(
              Bytes.substr(Body.pos(), Len), Files);
          SawHints = true;
          return true;
        }
        case SecApprox:
          if (Len != 12 * 8 || !decodeApproxSection(Body, Out.Approx)) {
            Err = "cache entry approx-stats section has wrong size";
            return false;
          }
          SawApprox = true;
          return true;
        case SecMetrics: {
          uint8_t Present = 0;
          if (Len != 1 + 10 * 8 || !Body.readU8(Present) ||
              !decodeMetrics(Body, Out.Baseline) ||
              !decodeMetrics(Body, Out.Extended)) {
            Err = "cache entry metrics section has wrong size";
            return false;
          }
          Out.HasMetrics = Present != 0;
          return true;
        }
        case SecSlice: {
          uint32_t ModLen = 0, CompLen = 0;
          if (!Body.readU32(ModLen) || Body.remaining() < ModLen) {
            Err = "cache entry slice section has wrong size";
            return false;
          }
          Out.SliceModule = Bytes.substr(Body.pos(), ModLen);
          Body.skip(ModLen);
          if (!Body.readU32(CompLen) || Body.remaining() < CompLen) {
            Err = "cache entry slice section has wrong size";
            return false;
          }
          Out.SliceComponent = Bytes.substr(Body.pos(), CompLen);
          return true;
        }
        default:
          // Unknown tags within a supported version are skippable padding
          // (forward-compatible minor additions).
          return true;
        }
      });
  if (!Ok)
    return false;
  if (std::memcmp(EmbeddedKey.data(), ExpectedKey.data(), 32) != 0) {
    Error = "cache entry key mismatch (entry " + Sha256::hex(EmbeddedKey) +
            ", expected " + Sha256::hex(ExpectedKey) + ")";
    return false;
  }
  if (!SawHints || !SawApprox) {
    Error = "cache entry is missing a required section";
    return false;
  }
  return true;
}

bool jsai::validateCacheEntryBytes(const std::string &Bytes,
                                   Sha256Digest &EmbeddedKey,
                                   std::string &Error) {
  return walkEntry(Bytes, EmbeddedKey, Error,
                   [](uint32_t, ByteReader &, size_t, std::string &) {
                     return true;
                   });
}
