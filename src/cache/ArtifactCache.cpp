//===- ArtifactCache.cpp - Content-addressed artifact store ---------------===//

#include "cache/ArtifactCache.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

using namespace jsai;

namespace {

/// Hashes \p V in a fixed byte order so keys do not depend on host
/// endianness.
void hashU64(Sha256 &H, uint64_t V) {
  uint8_t Bytes[8];
  for (int I = 0; I != 8; ++I)
    Bytes[I] = uint8_t(V >> (I * 8));
  H.update(Bytes, sizeof(Bytes));
}

} // namespace

const char *jsai::cacheModeName(CacheMode M) {
  switch (M) {
  case CacheMode::Off:
    return "off";
  case CacheMode::Read:
    return "read";
  case CacheMode::ReadWrite:
    return "readwrite";
  }
  return "unknown";
}

Sha256Digest ArtifactCache::computeKey(const FileSystem &Files,
                                       const std::string &ConfigFingerprint) {
  Sha256 H;
  // Domain separator + format version: a format bump re-keys every entry,
  // so a new binary never even finds (let alone rejects) old-format files.
  H.update("jsai-artifact-key v" + std::to_string(CacheFormatVersion) + "\n");
  H.update(ConfigFingerprint);
  H.update("\n", 1);
  // allPaths() is lexicographically sorted, and each field is length-
  // prefixed so (path, source) concatenations cannot collide.
  for (const std::string &Path : Files.allPaths()) {
    const std::string &Source = Files.read(Path);
    hashU64(H, Path.size());
    hashU64(H, Source.size());
    H.update(Path);
    H.update(Source);
  }
  return H.digest();
}

std::string ArtifactCache::fingerprint(const ApproxOptions &Opts,
                                       const std::string &MainModule) {
  // Engine, VmOptimize, and CountVmOpcodes are deliberately not part of the
  // fingerprint: all engine/optimizer configurations produce byte-identical
  // hints and stats, so their cache entries are interchangeable.
  std::ostringstream Out;
  Out << "approx:depth=" << Opts.MaxCallDepth
      << ",loops=" << Opts.MaxLoopIterations << ",steps=" << Opts.MaxSteps
      << ",module-hints=" << (Opts.CollectModuleHints ? 1 : 0)
      << ",ic=" << (Opts.EnableInlineCaches ? 1 : 0) << ";main=" << MainModule;
  return Out.str();
}

std::string ArtifactCache::entryPath(const Sha256Digest &Key) const {
  return Config.Dir + "/" + Sha256::hex(Key) + ".jsac";
}

bool ArtifactCache::load(const Sha256Digest &Key, const FileTable &Files,
                         CacheEntry &Out, std::string &Diag) {
  Diag.clear();
  if (!Config.reads())
    return false;
  std::string Path = entryPath(Key);
  auto Start = std::chrono::steady_clock::now();
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Bytes = Buf.str();
  if (!In.good() && !In.eof()) {
    CorruptEntries.fetch_add(1, std::memory_order_relaxed);
    Diag = "cache: read error on " + Path + "; recomputing";
    return false;
  }

  std::string Reason;
  if (!decodeCacheEntry(Bytes, Key, Files, Out, Reason)) {
    CorruptEntries.fetch_add(1, std::memory_order_relaxed);
    Diag = "cache: rejected " + Path + ": " + Reason + "; recomputing";
    return false;
  }
  auto Nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  Hits.fetch_add(1, std::memory_order_relaxed);
  BytesRead.fetch_add(Bytes.size(), std::memory_order_relaxed);
  DeserializeNanos.fetch_add(uint64_t(Nanos), std::memory_order_relaxed);
  return true;
}

bool ArtifactCache::store(const Sha256Digest &Key, const FileTable &Files,
                          const CacheEntry &Entry, std::string &Diag) {
  Diag.clear();
  if (!Config.writes())
    return false;
  std::error_code EC;
  std::filesystem::create_directories(Config.Dir, EC);
  if (EC) {
    WriteFailures.fetch_add(1, std::memory_order_relaxed);
    Diag = "cache: cannot create " + Config.Dir + ": " + EC.message();
    return false;
  }

  std::string Bytes = encodeCacheEntry(Entry, Key, Files);
  std::string Path = entryPath(Key);
  // Unique temp name per publisher so concurrent workers writing the same
  // key never share a temp file; the final rename is atomic, so readers
  // observe either no entry or a complete one.
  static std::atomic<uint64_t> TempCounter{0};
  std::string Temp = Path + ".tmp." +
                     std::to_string(uint64_t(::getpid())) + "." +
                     std::to_string(TempCounter.fetch_add(1));
  {
    std::ofstream OutFile(Temp, std::ios::binary | std::ios::trunc);
    if (!OutFile || !(OutFile << Bytes) || !OutFile.flush()) {
      WriteFailures.fetch_add(1, std::memory_order_relaxed);
      Diag = "cache: cannot write " + Temp;
      std::remove(Temp.c_str());
      return false;
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    WriteFailures.fetch_add(1, std::memory_order_relaxed);
    Diag = "cache: cannot publish " + Path;
    std::remove(Temp.c_str());
    return false;
  }
  Writes.fetch_add(1, std::memory_order_relaxed);
  BytesWritten.fetch_add(Bytes.size(), std::memory_order_relaxed);
  return true;
}

CacheStats ArtifactCache::stats() const {
  CacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.CorruptEntries = CorruptEntries.load(std::memory_order_relaxed);
  S.Writes = Writes.load(std::memory_order_relaxed);
  S.WriteFailures = WriteFailures.load(std::memory_order_relaxed);
  S.BytesRead = BytesRead.load(std::memory_order_relaxed);
  S.BytesWritten = BytesWritten.load(std::memory_order_relaxed);
  S.DeserializeSeconds =
      double(DeserializeNanos.load(std::memory_order_relaxed)) * 1e-9;
  return S;
}
