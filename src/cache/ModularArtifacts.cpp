//===- ModularArtifacts.cpp - Module-granular artifact slicing ------------===//

#include "cache/ModularArtifacts.h"

#include "lexer/Lexer.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jsai;

bool ModuleComponent::contains(const std::string &Path) const {
  return std::binary_search(Members.begin(), Members.end(), Path);
}

namespace {

/// All string-literal values in \p Source. Lexing never fails hard — bad
/// input just produces Error tokens we skip — and comments are invisible,
/// so only genuine literals become candidate require specs.
std::vector<std::string> stringLiterals(const std::string &Source) {
  DiagnosticEngine Scratch;
  Lexer L(FileId(0), Source, Scratch);
  std::vector<std::string> Out;
  for (Token T = L.next(); !T.is(TokenKind::Eof); T = L.next())
    if (T.is(TokenKind::String))
      Out.push_back(T.Text);
  return Out;
}

struct FileScan {
  /// spec → resolved path ("" when unresolved), deduped and ordered. Part
  /// of the component fingerprint: a new file that re-routes (or newly
  /// satisfies) any spec changes the map even when no member changed.
  std::map<std::string, std::string> Resolutions;
};

/// Union-find over module indices.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    for (size_t I = 0; I != N; ++I)
      Parent[I] = I;
  }
  size_t find(size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void unite(size_t A, size_t B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[std::max(A, B)] = std::min(A, B);
  }

private:
  std::vector<size_t> Parent;
};

void hashLenPrefixed(Sha256 &H, const std::string &S) {
  uint64_t Len = S.size();
  unsigned char Buf[8];
  for (int I = 0; I != 8; ++I)
    Buf[I] = (unsigned char)(Len >> (I * 8));
  H.update(Buf, sizeof(Buf));
  H.update(S);
}

} // namespace

ModulePartition
jsai::computeModulePartition(const FileSystem &FS,
                             const std::vector<std::string> &Roots) {
  std::vector<std::string> Paths = FS.allPaths();
  std::map<std::string, size_t> Index;
  for (size_t I = 0; I != Paths.size(); ++I)
    Index[Paths[I]] = I;

  // Scan every file once; edges are consulted only from reachable nodes,
  // but the per-file resolution maps feed member fingerprints.
  std::vector<FileScan> Scans(Paths.size());
  std::vector<std::vector<size_t>> Edges(Paths.size());
  for (size_t I = 0; I != Paths.size(); ++I) {
    for (const std::string &Spec : stringLiterals(FS.read(Paths[I]))) {
      std::string Resolved = FS.resolveRequire(Paths[I], Spec);
      Scans[I].Resolutions.emplace(Spec, Resolved);
      if (!Resolved.empty()) {
        auto It = Index.find(Resolved);
        if (It != Index.end() && It->second != I)
          Edges[I].push_back(It->second);
      }
    }
  }

  // BFS from the roots; only root-reachable modules participate in the
  // partition (a file nothing requires cannot affect any approx run, so
  // editing it must not invalidate any slice).
  std::vector<char> Reachable(Paths.size(), 0);
  std::vector<size_t> Work;
  for (const std::string &R : Roots) {
    auto It = Index.find(R);
    if (It != Index.end() && !Reachable[It->second]) {
      Reachable[It->second] = 1;
      Work.push_back(It->second);
    }
  }
  while (!Work.empty()) {
    size_t I = Work.back();
    Work.pop_back();
    for (size_t J : Edges[I])
      if (!Reachable[J]) {
        Reachable[J] = 1;
        Work.push_back(J);
      }
  }

  // Weakly-connected components over the reachable subgraph.
  UnionFind UF(Paths.size());
  for (size_t I = 0; I != Paths.size(); ++I)
    if (Reachable[I])
      for (size_t J : Edges[I])
        if (Reachable[J])
          UF.unite(I, J);

  // Group members, then order components by their first root's position so
  // the main module's component runs first and the order is deterministic.
  std::map<size_t, ModuleComponent> ByRep;
  for (size_t I = 0; I != Paths.size(); ++I)
    if (Reachable[I])
      ByRep[UF.find(I)].Members.push_back(Paths[I]);

  std::map<size_t, size_t> FirstRootIndex;
  for (size_t R = 0; R != Roots.size(); ++R) {
    auto It = Index.find(Roots[R]);
    if (It == Index.end())
      continue;
    size_t Rep = UF.find(It->second);
    ByRep[Rep].Roots.push_back(Roots[R]);
    FirstRootIndex.emplace(Rep, R);
  }

  std::vector<std::pair<size_t, ModuleComponent>> Ordered;
  for (auto &[Rep, C] : ByRep) {
    std::sort(C.Members.begin(), C.Members.end());
    Ordered.emplace_back(FirstRootIndex[Rep], std::move(C));
  }
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  ModulePartition P;
  for (auto &[RootIdx, C] : Ordered) {
    Sha256 H;
    H.update("jsai-module-component v2\n");
    for (const std::string &M : C.Members) {
      hashLenPrefixed(H, M);
      hashLenPrefixed(H, FS.read(M));
      for (const auto &[Spec, Resolved] : Scans[Index[M]].Resolutions) {
        hashLenPrefixed(H, Spec);
        hashLenPrefixed(H, Resolved);
      }
    }
    C.Fingerprint = Sha256::hex(H.digest());
    P.Components.push_back(std::move(C));
  }
  return P;
}

Sha256Digest jsai::computeSliceKey(const std::string &ConfigFingerprint,
                                   const ModuleComponent &Component,
                                   const std::string &ModulePath,
                                   const std::string &ModuleSource) {
  Sha256 H;
  H.update("jsai-module-slice v2\n");
  hashLenPrefixed(H, ConfigFingerprint);
  for (const std::string &R : Component.Roots)
    hashLenPrefixed(H, R);
  hashLenPrefixed(H, Component.Fingerprint);
  hashLenPrefixed(H, ModulePath);
  hashLenPrefixed(H, ModuleSource);
  return H.digest();
}

std::vector<HintSet> jsai::sliceHintsByModule(const HintSet &Hints,
                                              const ModuleComponent &Component,
                                              const FileTable &Files) {
  std::vector<HintSet> Slices(Component.Members.size());
  auto sliceFor = [&](FileId File) -> HintSet & {
    if (File != InvalidFileId) {
      const std::string &Path = Files.name(File);
      auto It = std::lower_bound(Component.Members.begin(),
                                 Component.Members.end(), Path);
      if (It != Component.Members.end() && *It == Path)
        return Slices[size_t(It - Component.Members.begin())];
    }
    return Slices[0]; // Leader absorbs unattributable hints.
  };

  for (const auto &[Loc, Refs] : Hints.readHints())
    for (const AllocRef &R : Refs)
      sliceFor(Loc.File).addReadHint(Loc, R);
  for (const WriteHint &W : Hints.writeHints())
    sliceFor(W.Base.Loc.File).addWriteHint(W.Base, W.Prop, W.Val);
  for (const auto &[Loc, Mods] : Hints.moduleHints())
    for (const std::string &M : Mods)
      sliceFor(Loc.File).addModuleHint(Loc, M);
  for (const auto &[Loc, Names] : Hints.readNames())
    for (const std::string &N : Names)
      sliceFor(Loc.File).addReadName(Loc, N);
  for (const auto &[Loc, Names] : Hints.writeNames())
    for (const std::string &N : Names)
      sliceFor(Loc.File).addWriteName(Loc, N);
  for (const auto &[Loc, Names] : Hints.proxyReadNames())
    for (const std::string &N : Names)
      sliceFor(Loc.File).addProxyReadName(Loc, N);
  // Eval hints are consumed in insertion order, which slicing by owner file
  // would destroy; park the whole ordered sequence with the leader.
  for (const auto &[Loc, Code] : Hints.evalHints())
    Slices[0].addEvalHint(Loc, Code);
  return Slices;
}
