//===- ArtifactCache.h - Content-addressed artifact store -------*- C++ -*-===//
///
/// \file
/// On-disk cache of per-project analysis artifacts, keyed by content
/// address: SHA-256 over (format version, analysis-config fingerprint, every
/// module path and source in deterministic order). Identical inputs on any
/// machine produce the same key and — because encodeCacheEntry is
/// deterministic — the same entry bytes.
///
/// Concurrency: one ArtifactCache is shared by all corpus-driver workers.
/// load()/store() touch disjoint temp files and publish atomically via
/// write-temp-then-rename, so a concurrent reader sees either no entry or a
/// complete entry, never a torn one; the statistics counters are atomic.
///
/// Failure policy: the cache is an accelerator, never a correctness
/// dependency. Unreadable, truncated, bit-flipped, wrong-version, or
/// wrong-key entries are counted, reported as a one-line diagnostic to the
/// caller, and treated as misses — the pipeline recomputes. No cache
/// condition ever throws out of this class.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CACHE_ARTIFACTCACHE_H
#define JSAI_CACHE_ARTIFACTCACHE_H

#include "approx/ApproxInterpreter.h"
#include "cache/Serialization.h"
#include "interp/FileSystem.h"

#include <atomic>
#include <string>

namespace jsai {

/// How the cache participates in a run.
enum class CacheMode : uint8_t {
  Off,       ///< Never consulted, never written.
  Read,      ///< Hits are consumed; misses are not published.
  ReadWrite, ///< Hits are consumed; misses are computed and published.
};

const char *cacheModeName(CacheMode M);

/// Cache location and participation mode (CLI: --cache-dir= / --cache=).
struct CacheConfig {
  std::string Dir;
  CacheMode Mode = CacheMode::ReadWrite;

  bool enabled() const { return !Dir.empty() && Mode != CacheMode::Off; }
  bool reads() const { return enabled(); }
  bool writes() const { return enabled() && Mode == CacheMode::ReadWrite; }
};

/// Copyable counter snapshot for summaries and telemetry.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;         ///< Absent entries (first-time keys).
  uint64_t CorruptEntries = 0; ///< Present but rejected by decode.
  uint64_t Writes = 0;
  uint64_t WriteFailures = 0;
  uint64_t BytesRead = 0;
  uint64_t BytesWritten = 0;
  /// Wall-clock spent reading + decoding hit entries, seconds
  /// (nondeterministic; telemetry gates it like every timing field).
  double DeserializeSeconds = 0;

  friend bool operator==(const CacheStats &, const CacheStats &) = default;
};

/// The content-addressed store.
class ArtifactCache {
public:
  explicit ArtifactCache(CacheConfig Config) : Config(std::move(Config)) {}

  const CacheConfig &config() const { return Config; }

  /// Derives the content-address key of one project configuration:
  /// SHA-256 over the format version, \p ConfigFingerprint, and every
  /// (path, source) pair of \p Files in lexicographic path order.
  static Sha256Digest computeKey(const FileSystem &Files,
                                 const std::string &ConfigFingerprint);

  /// Renders the analysis configuration facts that determine hint output:
  /// the approx budgets, hint-collection toggles, and the root-selection
  /// main module. Deadlines are deliberately absent — entries are only
  /// published by complete (non-degraded) runs, so a deadline never changes
  /// a published artifact (see DESIGN.md, "Artifact cache").
  static std::string fingerprint(const ApproxOptions &Opts,
                                 const std::string &MainModule);

  /// Looks up \p Key. \returns true and fills \p Out on a hit. On a miss
  /// or a rejected entry \returns false; \p Diag is non-empty exactly when
  /// the entry existed but was rejected (corrupt/version/key), naming the
  /// file and the reason.
  bool load(const Sha256Digest &Key, const FileTable &Files, CacheEntry &Out,
            std::string &Diag);

  /// Publishes \p Entry under \p Key atomically (write temp + rename).
  /// \returns false with a reason in \p Diag when the write fails; the
  /// analysis result is unaffected either way.
  bool store(const Sha256Digest &Key, const FileTable &Files,
             const CacheEntry &Entry, std::string &Diag);

  /// Path of the entry file for \p Key inside the cache directory.
  std::string entryPath(const Sha256Digest &Key) const;

  CacheStats stats() const;

private:
  CacheConfig Config;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> CorruptEntries{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> WriteFailures{0};
  std::atomic<uint64_t> BytesRead{0};
  std::atomic<uint64_t> BytesWritten{0};
  std::atomic<uint64_t> DeserializeNanos{0};
};

} // namespace jsai

#endif // JSAI_CACHE_ARTIFACTCACHE_H
