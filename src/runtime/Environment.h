//===- Environment.h - Lexical environments ---------------------*- C++ -*-===//
///
/// \file
/// Lexical environments for the tree-walking interpreter: a chain of
/// symbol-keyed frames. `this` and `arguments` are ordinary bindings under
/// reserved symbols; arrow functions simply do not rebind them, so lookup
/// naturally reaches the enclosing function's values.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_RUNTIME_ENVIRONMENT_H
#define JSAI_RUNTIME_ENVIRONMENT_H

#include "runtime/Value.h"
#include "support/StringPool.h"

#include <unordered_map>

namespace jsai {

/// One frame of the environment chain. Owned by the Heap.
class Environment {
public:
  explicit Environment(Environment *Parent) : Parent(Parent) {}

  Environment *parent() const { return Parent; }

  /// Defines (or overwrites) a binding in this frame.
  void define(Symbol Name, Value V) { Bindings[Name] = std::move(V); }

  bool hasOwn(Symbol Name) const { return Bindings.count(Name) != 0; }

  /// \returns the value of \p Name searching the chain, or null if unbound.
  Value *lookup(Symbol Name);

  /// Assigns to the nearest existing binding. \returns false if unbound
  /// anywhere in the chain (the interpreter then creates a global).
  bool assign(Symbol Name, const Value &V);

private:
  Environment *Parent;
  std::unordered_map<Symbol, Value> Bindings;
};

} // namespace jsai

#endif // JSAI_RUNTIME_ENVIRONMENT_H
