//===- Object.h - MiniJS heap objects ---------------------------*- C++ -*-===//
///
/// \file
/// Heap objects: plain objects, arrays, functions (closures and natives),
/// module records, and the proxy objects used by approximate interpretation
/// to stand in for unknown values (the paper's `p*`). Property insertion
/// order is preserved so `for-in` and `Object.keys` are deterministic, as in
/// modern JavaScript engines.
///
/// Properties live in a flat slot vector laid out by a shared Shape (hidden
/// class, see Shape.h): the shape maps Symbol -> slot index, and objects
/// built by the same code path share one shape. Deleting a property drops
/// the object into dictionary mode (a per-object symbol -> slot map, the
/// slow path), after which it never returns to shapes; inline caches key on
/// the shape pointer and therefore skip dictionary objects.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_RUNTIME_OBJECT_H
#define JSAI_RUNTIME_OBJECT_H

#include "ast/Ast.h"
#include "runtime/Shape.h"
#include "runtime/Value.h"
#include "support/SourceLoc.h"
#include "support/StringPool.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace jsai {

class Environment;
class Interpreter;

enum class ObjectClass : uint8_t {
  Plain,
  Array,
  Function,
  Arguments,
  Error,
  Module,
  /// The global proxy `p*` representing unknown values during approximate
  /// interpretation.
  Proxy,
  /// Wrapper around an inferred receiver object that delegates to `p*` for
  /// absent properties (Section 3, "Static property writes").
  ReceiverProxy,
};

/// Signature of native (builtin) function implementations.
using NativeFn = std::function<Completion(
    Interpreter &I, const Value &ThisV, std::vector<Value> &Args)>;

/// One property: either a data slot (V) or an accessor (Getter/Setter).
struct PropertySlot {
  Value V;
  Object *Getter = nullptr;
  Object *Setter = nullptr;
  bool isAccessor() const { return Getter != nullptr || Setter != nullptr; }
};

/// A heap object. All objects share one representation; the class tag and
/// optional payloads distinguish behaviors.
class Object {
public:
  /// \p Shapes is the owning Heap's shape tree; without one the object
  /// starts (and stays) in dictionary mode.
  Object(ObjectClass Class, SourceLoc BirthLoc, ShapeTree *Shapes = nullptr);

  ObjectClass objectClass() const { return Class; }
  bool isCallable() const { return Def != nullptr || Native; }
  bool isProxy() const {
    return Class == ObjectClass::Proxy || Class == ObjectClass::ReceiverProxy;
  }

  /// The allocation site, or an invalid loc for builtin objects and objects
  /// created in dynamically generated (eval) code — the paper's `loc` map.
  SourceLoc birthLoc() const { return BirthLoc; }
  void clearBirthLoc() { BirthLoc = SourceLoc::invalid(); }

  Object *proto() const { return Proto; }
  void setProto(Object *P) { Proto = P; }

  //===--------------------------------------------------------------------===
  // Named properties (insertion-ordered).
  //===--------------------------------------------------------------------===

  /// \returns the own *data* property \p Name, or nullopt (also for
  /// accessor properties — use getOwnSlot to see those).
  std::optional<Value> getOwn(Symbol Name) const;
  /// \returns the data property \p Name following the prototype chain.
  std::optional<Value> get(Symbol Name) const;
  bool hasOwn(Symbol Name) const { return getOwnSlot(Name) != nullptr; }
  bool has(Symbol Name) const { return findSlot(Name) != nullptr; }
  void setOwn(Symbol Name, Value V);
  /// Deletes an own property, converting the object to dictionary mode.
  /// \returns true if it existed.
  bool deleteOwn(Symbol Name);
  /// Own property names in insertion order.
  const std::vector<Symbol> &ownKeys() const;

  /// \returns the own slot for \p Name (data or accessor), or null. The
  /// pointer is invalidated by any property mutation of this object.
  const PropertySlot *getOwnSlot(Symbol Name) const;
  /// \returns the first slot for \p Name along the prototype chain, or null.
  const PropertySlot *findSlot(Symbol Name) const;
  /// Installs (or merges into) an accessor property. A null getter/setter
  /// leaves the respective half of an existing accessor untouched.
  void setAccessor(Symbol Name, Object *Getter, Object *Setter);

  //===--------------------------------------------------------------------===
  // Shape/inline-cache interface (see Interpreter's InlineCache).
  //===--------------------------------------------------------------------===

  /// The current layout, or null once in dictionary mode.
  Shape *shape() const { return CurShape; }
  bool inDictionaryMode() const { return CurShape == nullptr; }
  const PropertySlot &slotAt(uint32_t I) const { return Slots[I]; }
  PropertySlot &slotAt(uint32_t I) { return Slots[I]; }
  /// Appends a slot along an already-validated cached transition.
  /// \p NewShape must be the transition of the current shape for the
  /// property being added (checked by assertion).
  void addSlotViaCachedTransition(Shape *NewShape, Value V);

  //===--------------------------------------------------------------------===
  // Array elements (ObjectClass::Array / Arguments).
  //===--------------------------------------------------------------------===

  std::vector<Value> &elements() { return Elements; }
  const std::vector<Value> &elements() const { return Elements; }

  //===--------------------------------------------------------------------===
  // Callable payload.
  //===--------------------------------------------------------------------===

  FunctionDef *functionDef() const { return Def; }
  Environment *closureEnv() const { return ClosureEnv; }
  void setClosure(FunctionDef *F, Environment *Env) {
    Def = F;
    ClosureEnv = Env;
  }

  const NativeFn *native() const { return Native ? &NativeImpl : nullptr; }
  const std::string &nativeName() const { return NativeName; }
  void setNative(std::string Name, NativeFn Fn) {
    NativeName = std::move(Name);
    NativeImpl = std::move(Fn);
    Native = true;
  }

  /// Bound-function payload (Function.prototype.bind).
  Object *boundTarget() const { return BoundTarget; }
  const Value &boundThis() const { return BoundThis; }
  const std::vector<Value> &boundArgs() const { return BoundArgs; }
  void setBound(Object *Target, Value ThisV, std::vector<Value> Args) {
    BoundTarget = Target;
    BoundThis = std::move(ThisV);
    BoundArgs = std::move(Args);
  }

  //===--------------------------------------------------------------------===
  // Approximate-interpretation metadata.
  //===--------------------------------------------------------------------===

  /// The paper's `this` map: receiver to use when this function value is
  /// force-executed, inferred from static property writes.
  Object *approxThis() const { return ApproxThis; }
  void setApproxThis(Object *O) { ApproxThis = O; }

  /// Target of a ReceiverProxy.
  Object *proxyTarget() const { return ProxyTarget; }
  void setProxyTarget(Object *O) { ProxyTarget = O; }

  /// True for the implicit `.prototype` object of a program function. Such
  /// objects share the function definition's source location, so hints must
  /// distinguish them from the function object itself (see HintSet).
  bool isFunctionPrototype() const { return FunctionPrototype; }
  void setFunctionPrototype(bool V) { FunctionPrototype = V; }

private:
  /// Dictionary-mode state: per-object symbol -> slot map plus insertion
  /// order. Slot indices stay stable across deletes (deleted slots become
  /// unreferenced tombstones), so re-added properties append at the end.
  struct DictState {
    std::unordered_map<Symbol, uint32_t> Index;
    std::vector<Symbol> Keys;
  };

  PropertySlot *getOwnSlotMutable(Symbol Name) {
    return const_cast<PropertySlot *>(
        static_cast<const Object *>(this)->getOwnSlot(Name));
  }
  void addSlot(Symbol Name, PropertySlot S);
  void toDictionary();

  ObjectClass Class;
  SourceLoc BirthLoc;
  Object *Proto = nullptr;

  ShapeTree *Shapes = nullptr;
  Shape *CurShape = nullptr;
  std::vector<PropertySlot> Slots;
  std::unique_ptr<DictState> Dict;

  std::vector<Value> Elements;

  FunctionDef *Def = nullptr;
  Environment *ClosureEnv = nullptr;
  bool Native = false;
  std::string NativeName;
  NativeFn NativeImpl;

  Object *BoundTarget = nullptr;
  Value BoundThis;
  std::vector<Value> BoundArgs;

  Object *ApproxThis = nullptr;
  Object *ProxyTarget = nullptr;
  bool FunctionPrototype = false;
};

} // namespace jsai

#endif // JSAI_RUNTIME_OBJECT_H
