//===- Object.h - MiniJS heap objects ---------------------------*- C++ -*-===//
///
/// \file
/// Heap objects: plain objects, arrays, functions (closures and natives),
/// module records, and the proxy objects used by approximate interpretation
/// to stand in for unknown values (the paper's `p*`). Property insertion
/// order is preserved so `for-in` and `Object.keys` are deterministic, as in
/// modern JavaScript engines.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_RUNTIME_OBJECT_H
#define JSAI_RUNTIME_OBJECT_H

#include "ast/Ast.h"
#include "runtime/Value.h"
#include "support/SourceLoc.h"
#include "support/StringPool.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace jsai {

class Environment;
class Interpreter;

enum class ObjectClass : uint8_t {
  Plain,
  Array,
  Function,
  Arguments,
  Error,
  Module,
  /// The global proxy `p*` representing unknown values during approximate
  /// interpretation.
  Proxy,
  /// Wrapper around an inferred receiver object that delegates to `p*` for
  /// absent properties (Section 3, "Static property writes").
  ReceiverProxy,
};

/// Signature of native (builtin) function implementations.
using NativeFn = std::function<Completion(
    Interpreter &I, const Value &ThisV, std::vector<Value> &Args)>;

/// One property: either a data slot (V) or an accessor (Getter/Setter).
struct PropertySlot {
  Value V;
  Object *Getter = nullptr;
  Object *Setter = nullptr;
  bool isAccessor() const { return Getter != nullptr || Setter != nullptr; }
};

/// A heap object. All objects share one representation; the class tag and
/// optional payloads distinguish behaviors.
class Object {
public:
  Object(ObjectClass Class, SourceLoc BirthLoc)
      : Class(Class), BirthLoc(BirthLoc) {}

  ObjectClass objectClass() const { return Class; }
  bool isCallable() const { return Def != nullptr || Native; }
  bool isProxy() const {
    return Class == ObjectClass::Proxy || Class == ObjectClass::ReceiverProxy;
  }

  /// The allocation site, or an invalid loc for builtin objects and objects
  /// created in dynamically generated (eval) code — the paper's `loc` map.
  SourceLoc birthLoc() const { return BirthLoc; }
  void clearBirthLoc() { BirthLoc = SourceLoc::invalid(); }

  Object *proto() const { return Proto; }
  void setProto(Object *P) { Proto = P; }

  //===--------------------------------------------------------------------===
  // Named properties (insertion-ordered).
  //===--------------------------------------------------------------------===

  /// \returns the own *data* property \p Name, or nullopt (also for
  /// accessor properties — use getOwnSlot to see those).
  std::optional<Value> getOwn(Symbol Name) const;
  /// \returns the data property \p Name following the prototype chain.
  std::optional<Value> get(Symbol Name) const;
  bool hasOwn(Symbol Name) const { return Props.count(Name) != 0; }
  bool has(Symbol Name) const;
  void setOwn(Symbol Name, Value V);
  /// Deletes an own property. \returns true if it existed.
  bool deleteOwn(Symbol Name);
  /// Own property names in insertion order.
  const std::vector<Symbol> &ownKeys() const { return PropOrder; }

  /// \returns the own slot for \p Name (data or accessor), or null.
  const PropertySlot *getOwnSlot(Symbol Name) const;
  /// \returns the first slot for \p Name along the prototype chain, or null.
  const PropertySlot *findSlot(Symbol Name) const;
  /// Installs (or merges into) an accessor property. A null getter/setter
  /// leaves the respective half of an existing accessor untouched.
  void setAccessor(Symbol Name, Object *Getter, Object *Setter);

  //===--------------------------------------------------------------------===
  // Array elements (ObjectClass::Array / Arguments).
  //===--------------------------------------------------------------------===

  std::vector<Value> &elements() { return Elements; }
  const std::vector<Value> &elements() const { return Elements; }

  //===--------------------------------------------------------------------===
  // Callable payload.
  //===--------------------------------------------------------------------===

  FunctionDef *functionDef() const { return Def; }
  Environment *closureEnv() const { return ClosureEnv; }
  void setClosure(FunctionDef *F, Environment *Env) {
    Def = F;
    ClosureEnv = Env;
  }

  const NativeFn *native() const { return Native ? &NativeImpl : nullptr; }
  const std::string &nativeName() const { return NativeName; }
  void setNative(std::string Name, NativeFn Fn) {
    NativeName = std::move(Name);
    NativeImpl = std::move(Fn);
    Native = true;
  }

  /// Bound-function payload (Function.prototype.bind).
  Object *boundTarget() const { return BoundTarget; }
  const Value &boundThis() const { return BoundThis; }
  const std::vector<Value> &boundArgs() const { return BoundArgs; }
  void setBound(Object *Target, Value ThisV, std::vector<Value> Args) {
    BoundTarget = Target;
    BoundThis = std::move(ThisV);
    BoundArgs = std::move(Args);
  }

  //===--------------------------------------------------------------------===
  // Approximate-interpretation metadata.
  //===--------------------------------------------------------------------===

  /// The paper's `this` map: receiver to use when this function value is
  /// force-executed, inferred from static property writes.
  Object *approxThis() const { return ApproxThis; }
  void setApproxThis(Object *O) { ApproxThis = O; }

  /// Target of a ReceiverProxy.
  Object *proxyTarget() const { return ProxyTarget; }
  void setProxyTarget(Object *O) { ProxyTarget = O; }

  /// True for the implicit `.prototype` object of a program function. Such
  /// objects share the function definition's source location, so hints must
  /// distinguish them from the function object itself (see HintSet).
  bool isFunctionPrototype() const { return FunctionPrototype; }
  void setFunctionPrototype(bool V) { FunctionPrototype = V; }

private:
  ObjectClass Class;
  SourceLoc BirthLoc;
  Object *Proto = nullptr;

  std::vector<Symbol> PropOrder;
  std::unordered_map<Symbol, PropertySlot> Props;

  std::vector<Value> Elements;

  FunctionDef *Def = nullptr;
  Environment *ClosureEnv = nullptr;
  bool Native = false;
  std::string NativeName;
  NativeFn NativeImpl;

  Object *BoundTarget = nullptr;
  Value BoundThis;
  std::vector<Value> BoundArgs;

  Object *ApproxThis = nullptr;
  Object *ProxyTarget = nullptr;
  bool FunctionPrototype = false;
};

} // namespace jsai

#endif // JSAI_RUNTIME_OBJECT_H
