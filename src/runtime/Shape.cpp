//===- Shape.cpp ----------------------------------------------------------===//

#include "runtime/Shape.h"

#include <algorithm>

using namespace jsai;

bool Shape::findSlow(Symbol Name, uint32_t &SlotOut) const {
  if (NumSlots >= TableThreshold) {
    if (!Table) {
      auto T = std::make_unique<std::unordered_map<Symbol, uint32_t>>();
      T->reserve(NumSlots);
      for (const Shape *S = this; S->Parent; S = S->Parent)
        T->emplace(S->Name, S->SlotIndex); // emplace keeps the first
                                           // (nearest-to-leaf) entry
      Table = std::move(T);
    }
    auto It = Table->find(Name);
    if (It == Table->end())
      return false;
    SlotOut = It->second;
    return true;
  }
  for (const Shape *S = this; S->Parent; S = S->Parent)
    if (S->Name == Name) {
      SlotOut = S->SlotIndex;
      return true;
    }
  return false;
}

const std::vector<Symbol> &Shape::keys() const {
  if (!KeysCache) {
    auto K = std::make_unique<std::vector<Symbol>>();
    K->reserve(NumSlots);
    for (const Shape *S = this; S->Parent; S = S->Parent)
      K->push_back(S->Name);
    std::reverse(K->begin(), K->end());
    KeysCache = std::move(K);
  }
  return *KeysCache;
}

Shape *ShapeTree::transitionAdd(Shape *From, Symbol Name) {
  ++Stats.NumTransitions;
  if (From->LastTransKey == Name)
    return From->LastTrans;
  auto It = From->Transitions.find(Name);
  if (It != From->Transitions.end()) {
    From->LastTransKey = Name;
    From->LastTrans = It->second;
    return It->second;
  }
  Arena.emplace_back();
  Shape *S = &Arena.back();
  S->Parent = From;
  S->Name = Name;
  S->SlotIndex = From->NumSlots;
  S->NumSlots = From->NumSlots + 1;
  S->Mask = From->Mask | Shape::maskBit(Name);
  From->Transitions.emplace(Name, S);
  From->LastTransKey = Name;
  From->LastTrans = S;
  ++Stats.NumShapesCreated;
  return S;
}
