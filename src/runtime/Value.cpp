//===- Value.cpp ----------------------------------------------------------===//

#include "runtime/Value.h"

#include "runtime/Object.h"

#include <cmath>

using namespace jsai;

bool Value::toBoolean() const {
  switch (Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return false;
  case ValueKind::Boolean:
    return Num != 0;
  case ValueKind::Number:
    return Num != 0 && !std::isnan(Num);
  case ValueKind::String:
    return !Str.empty();
  case ValueKind::Object:
    return true;
  }
  return false;
}

const char *Value::typeOf() const {
  switch (Kind) {
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Null:
    return "object";
  case ValueKind::Boolean:
    return "boolean";
  case ValueKind::Number:
    return "number";
  case ValueKind::String:
    return "string";
  case ValueKind::Object:
    return Obj->isCallable() ? "function" : "object";
  }
  return "undefined";
}

bool Value::strictEquals(const Value &A, const Value &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return true;
  case ValueKind::Boolean:
    return A.asBoolean() == B.asBoolean();
  case ValueKind::Number:
    return A.Num == B.Num; // NaN != NaN by IEEE semantics.
  case ValueKind::String:
    return A.Str == B.Str;
  case ValueKind::Object:
    return A.Obj == B.Obj;
  }
  return false;
}
