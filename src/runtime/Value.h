//===- Value.h - MiniJS runtime values --------------------------*- C++ -*-===//
///
/// \file
/// Tagged runtime values and completion records. MiniJS values mirror the
/// JavaScript primitives plus heap objects. Control flow (return / break /
/// continue / throw) is threaded through Completion records instead of C++
/// exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_RUNTIME_VALUE_H
#define JSAI_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace jsai {

class Object;

enum class ValueKind : uint8_t {
  Undefined,
  Null,
  Boolean,
  Number,
  String,
  Object,
};

/// A MiniJS runtime value.
class Value {
public:
  Value() : Kind(ValueKind::Undefined), Num(0) {}

  static Value undefined() { return Value(); }
  static Value null() {
    Value V;
    V.Kind = ValueKind::Null;
    return V;
  }
  static Value boolean(bool B) {
    Value V;
    V.Kind = ValueKind::Boolean;
    V.Num = B ? 1 : 0;
    return V;
  }
  static Value number(double D) {
    Value V;
    V.Kind = ValueKind::Number;
    V.Num = D;
    return V;
  }
  static Value str(std::string S) {
    Value V;
    V.Kind = ValueKind::String;
    V.Str = std::move(S);
    return V;
  }
  static Value object(Object *O) {
    assert(O && "null object value; use Value::null()");
    Value V;
    V.Kind = ValueKind::Object;
    V.Obj = O;
    return V;
  }

  ValueKind kind() const { return Kind; }
  bool isUndefined() const { return Kind == ValueKind::Undefined; }
  bool isNull() const { return Kind == ValueKind::Null; }
  bool isNullish() const { return isUndefined() || isNull(); }
  bool isBoolean() const { return Kind == ValueKind::Boolean; }
  bool isNumber() const { return Kind == ValueKind::Number; }
  bool isString() const { return Kind == ValueKind::String; }
  bool isObject() const { return Kind == ValueKind::Object; }

  bool asBoolean() const {
    assert(isBoolean());
    return Num != 0;
  }
  double asNumber() const {
    assert(isNumber());
    return Num;
  }
  const std::string &asString() const {
    assert(isString());
    return Str;
  }
  Object *asObject() const {
    assert(isObject());
    return Obj;
  }

  /// ECMAScript ToBoolean.
  bool toBoolean() const;

  /// \returns the typeof spelling ("undefined", "object", "boolean",
  /// "number", "string", "function").
  const char *typeOf() const;

  /// Strict equality (===). Objects compare by identity.
  static bool strictEquals(const Value &A, const Value &B);

private:
  ValueKind Kind;
  double Num;
  std::string Str;
  Object *Obj = nullptr;
};

/// How a statement or expression completed.
enum class CompletionKind : uint8_t {
  Normal,   ///< Value produced / statement finished.
  Return,   ///< `return` unwinding, carries the value.
  Break,    ///< `break` unwinding.
  Continue, ///< `continue` unwinding.
  Throw,    ///< Exception unwinding, carries the thrown value.
  Abort,    ///< Execution budget exhausted (approximate interpretation).
};

/// Completion record threading non-local control flow without exceptions.
struct Completion {
  CompletionKind Kind = CompletionKind::Normal;
  Value V;

  Completion() = default;
  /*implicit*/ Completion(Value V)
      : Kind(CompletionKind::Normal), V(std::move(V)) {}

  static Completion normal(Value V = Value::undefined()) {
    return Completion(std::move(V));
  }
  static Completion ret(Value V) {
    Completion C(std::move(V));
    C.Kind = CompletionKind::Return;
    return C;
  }
  static Completion brk() {
    Completion C;
    C.Kind = CompletionKind::Break;
    return C;
  }
  static Completion cont() {
    Completion C;
    C.Kind = CompletionKind::Continue;
    return C;
  }
  static Completion toss(Value V) {
    Completion C(std::move(V));
    C.Kind = CompletionKind::Throw;
    return C;
  }
  static Completion abort() {
    Completion C;
    C.Kind = CompletionKind::Abort;
    return C;
  }

  bool isNormal() const { return Kind == CompletionKind::Normal; }
  bool isAbrupt() const { return Kind != CompletionKind::Normal; }
  bool isThrow() const { return Kind == CompletionKind::Throw; }
  bool isAbort() const { return Kind == CompletionKind::Abort; }
};

/// Propagate abrupt completions: `JSAI_PROPAGATE(C)` returns C from the
/// enclosing function unless C is normal.
#define JSAI_PROPAGATE(C)                                                      \
  do {                                                                         \
    if ((C).isAbrupt())                                                        \
      return (C);                                                              \
  } while (false)

} // namespace jsai

#endif // JSAI_RUNTIME_VALUE_H
