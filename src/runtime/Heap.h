//===- Heap.h - Object and environment arena --------------------*- C++ -*-===//
///
/// \file
/// Arena owning every runtime Object and Environment of one execution. The
/// analyzed programs are short-lived, so no garbage collection is performed;
/// everything is released when the Heap is destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_RUNTIME_HEAP_H
#define JSAI_RUNTIME_HEAP_H

#include "runtime/Environment.h"
#include "runtime/Object.h"

#include <deque>
#include <memory>

namespace jsai {

/// Allocator/owner for runtime objects and environments.
class Heap {
public:
  /// The shape (hidden-class) tree shared by this heap's objects.
  ShapeTree &shapes() { return Shapes; }
  const ShapeTree &shapes() const { return Shapes; }

  /// Allocates a plain (or class-tagged) object.
  Object *newObject(ObjectClass Class, SourceLoc BirthLoc,
                    Object *Proto = nullptr);

  /// Allocates an array object.
  Object *newArray(SourceLoc BirthLoc, std::vector<Value> Elements = {});

  /// Allocates a closure for \p Def captured over \p Env.
  Object *newClosure(FunctionDef *Def, Environment *Env, SourceLoc BirthLoc);

  /// Allocates a native (builtin) function.
  Object *newNative(std::string Name, NativeFn Fn);

  /// Allocates an environment frame.
  Environment *newEnvironment(Environment *Parent);

  size_t numObjects() const { return Objects.size(); }

private:
  ShapeTree Shapes;
  std::deque<std::unique_ptr<Object>> Objects;
  std::deque<std::unique_ptr<Environment>> Environments;
};

} // namespace jsai

#endif // JSAI_RUNTIME_HEAP_H
