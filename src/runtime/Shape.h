//===- Shape.h - Hidden classes for object layouts --------------*- C++ -*-===//
///
/// \file
/// Shapes (hidden classes) describe object property layouts so that objects
/// created by the same code path share one Symbol->slot mapping instead of
/// each carrying a hash map. A Shape is one node in a transition tree owned
/// by the Heap's ShapeTree: the root shape is the empty layout, and adding
/// property N to a layout follows (or creates) the cached transition edge
/// for N. Objects then store their properties in a flat slot vector indexed
/// by the shape, and the interpreter's inline caches key on the shape
/// pointer: same shape == same layout, so a cached slot index stays valid
/// until the object transitions (or falls off shapes into dictionary mode
/// after a delete).
///
/// Shapes are immutable once created (lazy caches aside) and live as long
/// as their ShapeTree, i.e. as long as the Heap. Like the rest of the
/// runtime, a ShapeTree belongs to exactly one analysis job and is not
/// thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_RUNTIME_SHAPE_H
#define JSAI_RUNTIME_SHAPE_H

#include "support/StringPool.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace jsai {

/// Property-system counters of one Heap, reported through InterpStats.
struct ShapeStats {
  /// Shape-to-shape moves taken when a property was appended (cached
  /// transitions and inline-cached transitions included).
  uint64_t NumTransitions = 0;
  /// Distinct shapes materialized in the tree (excluding the root).
  uint64_t NumShapesCreated = 0;
  /// Objects that fell back to dictionary mode (property deletion).
  uint64_t NumDictionaryConversions = 0;
};

/// One node of the shape tree: the layout reached by appending \p name() to
/// the parent layout at \p slotIndex(). The root shape is the empty layout.
class Shape {
public:
  Shape *parent() const { return Parent; }
  /// The property this shape appends; InvalidSymbol for the root.
  Symbol name() const { return Name; }
  /// Slot of name() in the object's slot vector. Slots are appended in
  /// insertion order, so slot k holds the k-th inserted property.
  uint32_t slotIndex() const { return SlotIndex; }
  /// Number of slots an object with this shape owns.
  uint32_t numSlots() const { return NumSlots; }

  /// Single-probe lookup of \p Name in this layout. \returns true and sets
  /// \p SlotOut on success. Misses are usually rejected in O(1) by the
  /// presence mask; deep shapes build a lazy lookup table and shallow ones
  /// walk the parent chain.
  bool find(Symbol Name, uint32_t &SlotOut) const {
    if (!(Mask & maskBit(Name)))
      return false; // Definitive: Name is not in this layout.
    return findSlow(Name, SlotOut);
  }

  /// Own property names in insertion order (lazily cached per shape; safe
  /// to return by reference because shapes outlive the objects using them).
  const std::vector<Symbol> &keys() const;

private:
  friend class ShapeTree;

  /// Layouts at least this deep get a hash lookup table instead of the
  /// linear parent walk.
  static constexpr uint32_t TableThreshold = 8;

  /// Bit of \p Name in the presence mask: set for every property of the
  /// layout (with collisions), so a clear bit proves absence. Proto-chain
  /// walks miss at almost every level, making the O(1) reject the common
  /// case.
  static uint64_t maskBit(Symbol Name) { return uint64_t(1) << (Name & 63); }

  bool findSlow(Symbol Name, uint32_t &SlotOut) const;

  Shape *Parent = nullptr;
  Symbol Name = InvalidSymbol;
  uint32_t SlotIndex = 0;
  uint32_t NumSlots = 0;
  uint64_t Mask = 0;
  /// Cached transition edges: symbol appended -> successor shape. The MRU
  /// pair short-circuits the map probe — most shapes have exactly one
  /// successor, taken every time the allocating code path re-runs.
  Symbol LastTransKey = InvalidSymbol;
  Shape *LastTrans = nullptr;
  std::unordered_map<Symbol, Shape *> Transitions;
  /// Lazy caches (shapes are logically immutable; these memoize pure
  /// functions of the parent chain).
  mutable std::unique_ptr<std::unordered_map<Symbol, uint32_t>> Table;
  mutable std::unique_ptr<std::vector<Symbol>> KeysCache;
};

/// Arena and transition cache for the shapes of one Heap.
class ShapeTree {
public:
  ShapeTree() = default;
  ShapeTree(const ShapeTree &) = delete;
  ShapeTree &operator=(const ShapeTree &) = delete;

  /// The empty layout every object starts from.
  Shape *root() { return &Root; }

  /// The layout reached from \p From by appending \p Name. Follows the
  /// cached edge when present, otherwise materializes a new shape.
  Shape *transitionAdd(Shape *From, Symbol Name);

  ShapeStats &stats() { return Stats; }
  const ShapeStats &stats() const { return Stats; }

  /// Shapes materialized besides the root.
  size_t numShapes() const { return Arena.size(); }

private:
  Shape Root;
  std::deque<Shape> Arena; // deque: stable Shape addresses
  ShapeStats Stats;
};

} // namespace jsai

#endif // JSAI_RUNTIME_SHAPE_H
