//===- Heap.cpp -----------------------------------------------------------===//

#include "runtime/Heap.h"

using namespace jsai;

Object *Heap::newObject(ObjectClass Class, SourceLoc BirthLoc, Object *Proto) {
  Objects.push_back(std::make_unique<Object>(Class, BirthLoc, &Shapes));
  Object *O = Objects.back().get();
  O->setProto(Proto);
  return O;
}

Object *Heap::newArray(SourceLoc BirthLoc, std::vector<Value> Elements) {
  Object *O = newObject(ObjectClass::Array, BirthLoc);
  O->elements() = std::move(Elements);
  return O;
}

Object *Heap::newClosure(FunctionDef *Def, Environment *Env,
                         SourceLoc BirthLoc) {
  Object *O = newObject(ObjectClass::Function, BirthLoc);
  O->setClosure(Def, Env);
  return O;
}

Object *Heap::newNative(std::string Name, NativeFn Fn) {
  Object *O = newObject(ObjectClass::Function, SourceLoc::invalid());
  O->setNative(std::move(Name), std::move(Fn));
  return O;
}

Environment *Heap::newEnvironment(Environment *Parent) {
  Environments.push_back(std::make_unique<Environment>(Parent));
  return Environments.back().get();
}
