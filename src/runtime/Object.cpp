//===- Object.cpp ---------------------------------------------------------===//

#include "runtime/Object.h"

#include <algorithm>

using namespace jsai;

std::optional<Value> Object::getOwn(Symbol Name) const {
  auto It = Props.find(Name);
  if (It == Props.end() || It->second.isAccessor())
    return std::nullopt;
  return It->second.V;
}

std::optional<Value> Object::get(Symbol Name) const {
  for (const Object *O = this; O; O = O->Proto) {
    auto It = O->Props.find(Name);
    if (It != O->Props.end()) {
      if (It->second.isAccessor())
        return std::nullopt; // Accessors need an interpreter to evaluate.
      return It->second.V;
    }
  }
  return std::nullopt;
}

const PropertySlot *Object::getOwnSlot(Symbol Name) const {
  auto It = Props.find(Name);
  return It == Props.end() ? nullptr : &It->second;
}

const PropertySlot *Object::findSlot(Symbol Name) const {
  for (const Object *O = this; O; O = O->Proto) {
    auto It = O->Props.find(Name);
    if (It != O->Props.end())
      return &It->second;
  }
  return nullptr;
}

bool Object::has(Symbol Name) const {
  for (const Object *O = this; O; O = O->Proto)
    if (O->Props.count(Name))
      return true;
  return false;
}

void Object::setOwn(Symbol Name, Value V) {
  auto [It, Inserted] = Props.try_emplace(Name);
  It->second.V = std::move(V);
  It->second.Getter = nullptr;
  It->second.Setter = nullptr;
  if (Inserted)
    PropOrder.push_back(Name);
}

void Object::setAccessor(Symbol Name, Object *Getter, Object *Setter) {
  auto [It, Inserted] = Props.try_emplace(Name);
  if (Inserted)
    PropOrder.push_back(Name);
  PropertySlot &Slot = It->second;
  if (!Slot.isAccessor()) {
    // Replacing a data slot: clear the stale value.
    Slot.V = Value::undefined();
    Slot.Getter = Getter;
    Slot.Setter = Setter;
    return;
  }
  if (Getter)
    Slot.Getter = Getter;
  if (Setter)
    Slot.Setter = Setter;
}

bool Object::deleteOwn(Symbol Name) {
  if (Props.erase(Name) == 0)
    return false;
  PropOrder.erase(std::find(PropOrder.begin(), PropOrder.end(), Name));
  return true;
}
