//===- Object.cpp ---------------------------------------------------------===//

#include "runtime/Object.h"

#include <algorithm>
#include <cassert>

using namespace jsai;

Object::Object(ObjectClass Class, SourceLoc BirthLoc, ShapeTree *Shapes)
    : Class(Class), BirthLoc(BirthLoc), Shapes(Shapes),
      CurShape(Shapes ? Shapes->root() : nullptr) {
  if (!Shapes)
    Dict = std::make_unique<DictState>();
}

const PropertySlot *Object::getOwnSlot(Symbol Name) const {
  if (CurShape) {
    uint32_t I;
    if (CurShape->find(Name, I))
      return &Slots[I];
    return nullptr;
  }
  auto It = Dict->Index.find(Name);
  return It == Dict->Index.end() ? nullptr : &Slots[It->second];
}

const PropertySlot *Object::findSlot(Symbol Name) const {
  for (const Object *O = this; O; O = O->Proto)
    if (const PropertySlot *S = O->getOwnSlot(Name))
      return S;
  return nullptr;
}

std::optional<Value> Object::getOwn(Symbol Name) const {
  const PropertySlot *S = getOwnSlot(Name);
  if (!S || S->isAccessor())
    return std::nullopt;
  return S->V;
}

std::optional<Value> Object::get(Symbol Name) const {
  for (const Object *O = this; O; O = O->Proto)
    if (const PropertySlot *S = O->getOwnSlot(Name)) {
      if (S->isAccessor())
        return std::nullopt; // Accessors need an interpreter to evaluate.
      return S->V;
    }
  return std::nullopt;
}

const std::vector<Symbol> &Object::ownKeys() const {
  if (CurShape)
    return CurShape->keys();
  return Dict->Keys;
}

void Object::setOwn(Symbol Name, Value V) {
  if (PropertySlot *S = getOwnSlotMutable(Name)) {
    S->V = std::move(V);
    S->Getter = nullptr;
    S->Setter = nullptr;
    return;
  }
  PropertySlot S;
  S.V = std::move(V);
  addSlot(Name, std::move(S));
}

void Object::setAccessor(Symbol Name, Object *Getter, Object *Setter) {
  if (PropertySlot *S = getOwnSlotMutable(Name)) {
    if (!S->isAccessor()) {
      // Replacing a data slot: clear the stale value.
      S->V = Value::undefined();
      S->Getter = Getter;
      S->Setter = Setter;
      return;
    }
    if (Getter)
      S->Getter = Getter;
    if (Setter)
      S->Setter = Setter;
    return;
  }
  PropertySlot S;
  S.Getter = Getter;
  S.Setter = Setter;
  addSlot(Name, std::move(S));
}

void Object::addSlot(Symbol Name, PropertySlot S) {
  if (CurShape) {
    CurShape = Shapes->transitionAdd(CurShape, Name);
    Slots.push_back(std::move(S));
    assert(Slots.size() == CurShape->numSlots());
    return;
  }
  Dict->Index.emplace(Name, uint32_t(Slots.size()));
  Dict->Keys.push_back(Name);
  Slots.push_back(std::move(S));
}

void Object::addSlotViaCachedTransition(Shape *NewShape, Value V) {
  assert(CurShape && NewShape->parent() == CurShape &&
         "cached transition does not extend the current shape");
  if (Shapes)
    ++Shapes->stats().NumTransitions;
  PropertySlot S;
  S.V = std::move(V);
  Slots.push_back(std::move(S));
  CurShape = NewShape;
  assert(Slots.size() == CurShape->numSlots());
}

bool Object::deleteOwn(Symbol Name) {
  if (!getOwnSlot(Name))
    return false;
  if (CurShape)
    toDictionary();
  auto It = Dict->Index.find(Name);
  // Tombstone the slot (indices of other properties stay stable) and drop
  // the key: a later re-insertion appends at the end of the order.
  Slots[It->second] = PropertySlot();
  Dict->Keys.erase(std::find(Dict->Keys.begin(), Dict->Keys.end(), Name));
  Dict->Index.erase(It);
  return true;
}

void Object::toDictionary() {
  auto D = std::make_unique<DictState>();
  const std::vector<Symbol> &Keys = CurShape->keys();
  D->Keys = Keys;
  D->Index.reserve(Keys.size());
  // Shape slots are appended in insertion order, so key k lives in slot k.
  for (uint32_t I = 0; I != uint32_t(Keys.size()); ++I)
    D->Index.emplace(Keys[I], I);
  Dict = std::move(D);
  CurShape = nullptr;
  if (Shapes)
    ++Shapes->stats().NumDictionaryConversions;
}
