//===- Environment.cpp ----------------------------------------------------===//

#include "runtime/Environment.h"

using namespace jsai;

Value *Environment::lookup(Symbol Name) {
  for (Environment *E = this; E; E = E->Parent) {
    auto It = E->Bindings.find(Name);
    if (It != E->Bindings.end())
      return &It->second;
  }
  return nullptr;
}

bool Environment::assign(Symbol Name, const Value &V) {
  for (Environment *E = this; E; E = E->Parent) {
    auto It = E->Bindings.find(Name);
    if (It != E->Bindings.end()) {
      It->second = V;
      return true;
    }
  }
  return false;
}
