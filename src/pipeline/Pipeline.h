//===- Pipeline.h - End-to-end per-project analysis -------------*- C++ -*-===//
///
/// \file
/// The public top-level API: run the full paper pipeline on one project —
/// parse, approximate interpretation (timed), baseline static analysis
/// (timed), hint-extended static analysis (timed), metrics, and optionally
/// the dynamic call graph with recall/precision.
///
/// ProjectAnalyzer is the reusable per-project state (one parse shared by
/// all phases); Pipeline::analyzeProject is the one-call convenience used
/// by examples and benches.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_PIPELINE_PIPELINE_H
#define JSAI_PIPELINE_PIPELINE_H

#include "analysis/StaticAnalysis.h"
#include "approx/ApproxInterpreter.h"
#include "explain/Explain.h"
#include "cache/ArtifactCache.h"
#include "cache/ModularArtifacts.h"
#include "callgraph/DynamicCallGraphRecorder.h"
#include "callgraph/Metrics.h"
#include "corpus/Project.h"
#include "support/Cancellation.h"
#include "vm/Bytecode.h"

#include <memory>
#include <optional>

namespace jsai {

/// Per-phase wall-clock deadlines for one project analysis. 0 disables a
/// deadline; enforcement is cooperative (CancellationToken polled at the
/// engines' budget checkpoints), so a phase overruns by at most one poll
/// interval.
struct PhaseDeadlines {
  /// Deadline for the approximate-interpretation phase. On expiry the
  /// project degrades to baseline-only analysis (Outcome = Degraded).
  double ApproxSeconds = 0;
  /// Deadline for each static-analysis run (baseline and extended are
  /// budgeted separately). On expiry the solver stops at a partial
  /// fixpoint and the project is marked Degraded.
  double AnalysisSeconds = 0;

  bool any() const { return ApproxSeconds > 0 || AnalysisSeconds > 0; }
};

/// How one project's analysis concluded.
enum class ProjectOutcome : uint8_t {
  Ok,       ///< All phases completed within their deadlines.
  Degraded, ///< A phase hit its deadline; the report holds fallback or
            ///< partial results (see ProjectReport::DegradedPhase).
  Error,    ///< The job failed outright (driver-level catch; never set by
            ///< Pipeline itself).
  Cancelled, ///< The run was interrupted (SIGINT/SIGTERM or a serve
             ///< shutdown); the report holds whatever completed.
};

const char *projectOutcomeName(ProjectOutcome O);

/// Per-project state: one parsed AST shared across analyses.
class ProjectAnalyzer {
public:
  /// \p Cache, when non-null, is consulted by hints() (a hit skips the
  /// forced-execution phase entirely) and written by publishToCache().
  explicit ProjectAnalyzer(const ProjectSpec &Spec,
                           ApproxOptions ApproxOpts = ApproxOptions(),
                           ArtifactCache *Cache = nullptr);

  /// Runs (and caches) the approximate interpretation phase.
  const HintSet &hints();
  /// Statistics of the (cached) approximate interpretation phase.
  const ApproxStats &approxStats();
  /// Bytecode compiler/optimizer counters accumulated on the loader's chunk
  /// cache across every VM-engine execution of this project (all zeros
  /// under the Ast engine or before any execution). Not part of
  /// ApproxStats: these describe the execution strategy, not the analysis
  /// outcome, and must not participate in stats equality.
  VmOptStats vmOptStats() const;
  /// Wall-clock seconds of the (cached) approximate interpretation phase.
  double approxSeconds();

  /// Runs a static analysis in \p Mode (hint modes consume hints()).
  AnalysisResult analyze(AnalysisMode Mode);
  /// Same, with full option control.
  AnalysisResult analyze(const AnalysisOptions &Opts);

  /// Constructs (but does not run) an analysis over this project, fetching
  /// hints first when the mode consumes them. Callers that need the run's
  /// provenance afterwards (the explain subsystem reads the solver through
  /// StaticAnalysis::explainView()) hold the object and call run()
  /// themselves; analyze() is this plus an immediate run-and-discard.
  std::unique_ptr<StaticAnalysis> createAnalysis(const AnalysisOptions &Opts);

  /// True when hints() was served from the artifact cache — either the
  /// whole-project entry or a full set of per-module slices (the approx
  /// phase never ran; approxStats() holds the deserialized blocks).
  bool hintsFromCache() const { return HintsFromCache; }

  /// The import-closure components hints() partitioned this project into
  /// (empty before hints(), after a whole-project cache hit, or when the
  /// project fell back to the joint pre-modular path).
  size_t numComponents() const { return Components.size(); }
  /// How many components were reconstructed from cached slices.
  size_t numComponentsFromCache() const;

  /// Publishes the freshly computed hints + stat blocks (and, when given,
  /// the analysis metric scalars) to the artifact cache. No-op when there
  /// is no writable cache, hints came from the cache, or the approx phase
  /// was cancelled (partial hints must never be published).
  void publishToCache(const AnalysisResult *Baseline = nullptr,
                      const AnalysisResult *Extended = nullptr);

  /// Executes the project's test driver concretely and records the dynamic
  /// call graph. Requires Spec.hasDynamicCallGraph().
  const CallGraph &dynamicCallGraph();

  /// Project size statistics (Table 1 columns).
  size_t numPackages() const { return Spec.numPackages(); }
  size_t numModules() const { return Spec.numModules(); }
  size_t codeBytes() const { return Spec.codeBytes(); }
  size_t numFunctions();

  AstContext &context() { return Ctx; }
  ModuleLoader &loader() { return *Loader; }
  const ProjectSpec &spec() const { return Spec; }
  DiagnosticEngine &diagnostics() { return Diags; }

private:
  ProjectSpec Spec;
  AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<ModuleLoader> Loader;
  ApproxOptions ApproxOpts;

  ArtifactCache *Cache = nullptr;

  std::optional<HintSet> CachedHints;
  ApproxStats CachedApproxStats;
  double CachedApproxSeconds = 0;
  bool HintsFromCache = false;
  /// The whole-project cache entry itself was the source of the hints (as
  /// opposed to slices or a fresh run); publishing it again would be
  /// pointless churn.
  bool ProjectEntryFromCache = false;
  /// The approx phase ran to completion (no cancellation) — the
  /// precondition for publishing its hints.
  bool ApproxComplete = false;
  std::optional<CallGraph> CachedDynamicCG;

  /// Per-component execution record backing the module-granular cache.
  struct ComponentRun {
    ModuleComponent Component;
    HintSet Hints;
    ApproxStats Stats; ///< Raw per-run stats; NumFunctionsTotal unused.
    bool FromCache = false;
    /// Ran to completion and every observed module load stayed inside the
    /// component — the precondition for publishing its slices.
    bool Publishable = false;
  };
  std::vector<ComponentRun> Components;

  /// Loads every member slice of \p CR's component, or returns false
  /// leaving \p CR untouched enough to re-run (partial hint merges are
  /// discarded).
  bool tryLoadComponentSlices(ComponentRun &CR,
                              const std::string &ConfigFingerprint);
};

/// One project's full evaluation record.
struct ProjectReport {
  std::string Name;
  std::string Pattern;

  // Table 1 columns.
  size_t NumPackages = 0;
  size_t NumModules = 0;
  size_t NumFunctions = 0;
  size_t CodeBytes = 0;

  // Phase timings (Table 3 columns).
  double ParseSeconds = 0;
  double BaselineSeconds = 0;
  double ApproxSeconds = 0;
  double ExtendedSeconds = 0;

  // Deadline outcome. DegradedPhase is "approx" or "analysis" when
  // Outcome == Degraded, empty otherwise.
  ProjectOutcome Outcome = ProjectOutcome::Ok;
  std::string DegradedPhase;

  // Pre-analysis outcome.
  ApproxStats Approx;
  size_t NumHints = 0;
  // Bytecode chunk cache / optimizer counters (VM engine only; all zeros
  // under ast). Reported in the timings-gated JSONL interp block.
  VmOptStats VmOpt;

  // Analysis results (Figures 4-7 data).
  AnalysisResult Baseline;
  AnalysisResult Extended;

  // Table 2 data (when a dynamic call graph exists).
  bool HasDynamicCG = false;
  size_t DynamicEdges = 0;
  RecallPrecision BaselineRP;
  RecallPrecision ExtendedRP;

  // Blame analysis of the extended run (only when the pipeline ran with
  // Explain on and the project has a dynamic call graph). Pure addition:
  // no existing field above changes with recording on or off.
  bool HasBlame = false;
  BlameSummary Blame;
};

/// Convenience facade.
class Pipeline {
public:
  /// \p Cache, when non-null, short-circuits the approx phase on hits and
  /// publishes artifacts (hints + stats + metric scalars) after a fully
  /// successful analysis.
  /// \p Interrupt, when non-null, is an externally latched token (signal
  /// handler, serve shutdown): every phase token chains to it, and a latched
  /// interrupt marks the project Cancelled.
  /// \p Explain turns on solver provenance recording for both analysis
  /// runs and, for projects with a dynamic call graph, attaches a
  /// BlameSummary of the extended run to the report. Guaranteed not to
  /// change any other report field.
  explicit Pipeline(ApproxOptions ApproxOpts = ApproxOptions(),
                    PhaseDeadlines Deadlines = PhaseDeadlines(),
                    ArtifactCache *Cache = nullptr,
                    SolverSetKind SolverSet = defaultSolverSetKind(),
                    CancellationToken *Interrupt = nullptr,
                    size_t SolverJobs = defaultSolverJobs(),
                    bool Explain = defaultExplainRecording())
      : ApproxOpts(ApproxOpts), Deadlines(Deadlines), Cache(Cache),
        SolverSet(SolverSet), Interrupt(Interrupt), SolverJobs(SolverJobs),
        Explain(Explain) {}

  /// Runs everything on \p Spec, enforcing the configured deadlines. An
  /// approx-phase timeout degrades the project to baseline-only results
  /// (Extended mirrors Baseline, NumHints = 0); an analysis timeout leaves
  /// the partial result of the interrupted run. Never throws or aborts on
  /// a deadline — the outcome is recorded in the report.
  ProjectReport analyzeProject(const ProjectSpec &Spec);

private:
  ApproxOptions ApproxOpts;
  PhaseDeadlines Deadlines;
  ArtifactCache *Cache = nullptr;
  SolverSetKind SolverSet = defaultSolverSetKind();
  CancellationToken *Interrupt = nullptr;
  size_t SolverJobs = defaultSolverJobs();
  bool Explain = defaultExplainRecording();
};

} // namespace jsai

#endif // JSAI_PIPELINE_PIPELINE_H
