//===- Pipeline.cpp -------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include <cassert>
#include <chrono>

using namespace jsai;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

const char *jsai::projectOutcomeName(ProjectOutcome O) {
  switch (O) {
  case ProjectOutcome::Ok:
    return "ok";
  case ProjectOutcome::Degraded:
    return "degraded";
  case ProjectOutcome::Error:
    return "error";
  case ProjectOutcome::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

ProjectAnalyzer::ProjectAnalyzer(const ProjectSpec &Spec,
                                 ApproxOptions ApproxOpts, ArtifactCache *Cache)
    : Spec(Spec), ApproxOpts(ApproxOpts), Cache(Cache) {
  Loader = std::make_unique<ModuleLoader>(Ctx, this->Spec.Files, Diags);
  Loader->parseAll();
}

size_t ProjectAnalyzer::numComponentsFromCache() const {
  size_t N = 0;
  for (const ComponentRun &CR : Components)
    N += CR.FromCache;
  return N;
}

bool ProjectAnalyzer::tryLoadComponentSlices(
    ComponentRun &CR, const std::string &ConfigFingerprint) {
  HintSet Merged;
  ApproxStats LeaderStats;
  for (size_t I = 0; I != CR.Component.Members.size(); ++I) {
    const std::string &M = CR.Component.Members[I];
    Sha256Digest Key =
        computeSliceKey(ConfigFingerprint, CR.Component, M, Spec.Files.read(M));
    CacheEntry Entry;
    std::string Diag;
    if (!Cache->load(Key, Ctx.files(), Entry, Diag)) {
      if (!Diag.empty())
        Diags.warning(SourceLoc::invalid(), Diag);
      return false;
    }
    // Members are sorted and the leader is first, so the order-sensitive
    // eval hints (parked wholesale in the leader's slice) merge back in
    // their original component order.
    Merged.merge(Entry.Hints);
    if (I == 0)
      LeaderStats = Entry.Approx;
  }
  CR.Hints = std::move(Merged);
  CR.Stats = LeaderStats;
  return true;
}

const HintSet &ProjectAnalyzer::hints() {
  if (CachedHints)
    return *CachedHints;

  std::string ConfigFp =
      ArtifactCache::fingerprint(ApproxOpts, Spec.MainModule);
  if (Cache && Cache->config().reads()) {
    Sha256Digest Key = ArtifactCache::computeKey(Spec.Files, ConfigFp);
    CacheEntry Entry;
    std::string Diag;
    if (Cache->load(Key, Ctx.files(), Entry, Diag)) {
      // Warm path: the forced-execution phase is skipped entirely; the
      // deserialized hints and stat blocks stand in for it, so downstream
      // analyses and telemetry are byte-identical to a cold run.
      CachedHints = std::move(Entry.Hints);
      CachedApproxStats = Entry.Approx;
      CachedApproxSeconds = 0;
      HintsFromCache = true;
      ProjectEntryFromCache = true;
      return *CachedHints;
    }
    if (!Diag.empty())
      Diags.warning(SourceLoc::invalid(), Diag);
  }

  // Worklist roots: the application-code modules, main module first
  // (Section 3: "each application-code module or a single designated main
  // module"). Library modules are explored transitively via require.
  std::string AppPrefix =
      Spec.MainModule.substr(0, Spec.MainModule.find('/') + 1);
  std::vector<std::string> Roots;
  Roots.push_back(Spec.MainModule);
  for (const std::string &Path : Spec.Files.allPaths())
    if (Path != Spec.MainModule && Path.rfind(AppPrefix, 0) == 0)
      Roots.push_back(Path);

  auto Start = std::chrono::steady_clock::now();

  // Partition the root-reachable modules into import-closure components —
  // the unit of the module-granular cache. Each component is executed in a
  // fresh interpreter, so its hints are a pure function of its own sources;
  // for the (overwhelmingly common) single-component project this is
  // exactly the pre-modular joint run.
  ModulePartition Part = computeModulePartition(Spec.Files, Roots);
  size_t CoveredRoots = 0;
  for (const ModuleComponent &C : Part.Components)
    CoveredRoots += C.Roots.size();
  if (Part.Components.empty() || CoveredRoots != Roots.size()) {
    // A root is missing from the file system (broken project): keep the
    // historical joint-run behavior, which loads missing roots and records
    // their aborts. Never sliceable.
    ApproxInterpreter Approx(*Loader, ApproxOpts);
    CachedHints = Approx.run(Roots);
    CachedApproxStats = Approx.stats();
    CachedApproxSeconds = secondsSince(Start);
    ApproxComplete = !(ApproxOpts.Cancel && ApproxOpts.Cancel->cancelled());
    return *CachedHints;
  }

  // The function-definition denominator is global (and counted before any
  // execution parses eval bodies into the context), independent of how the
  // work splits into components.
  size_t PreTotal = numFunctions();

  for (ModuleComponent &C : Part.Components) {
    Components.emplace_back();
    Components.back().Component = std::move(C);
  }

  HintSet Merged;
  ApproxStats MergedStats;
  bool AllFromCache = !Components.empty();
  for (ComponentRun &CR : Components) {
    if (ApproxOpts.Cancel && ApproxOpts.Cancel->expired()) {
      AllFromCache = false;
      break; // Deadline/interrupt: keep the hints collected so far.
    }
    bool Loaded = Cache && Cache->config().reads() &&
                  tryLoadComponentSlices(CR, ConfigFp);
    if (Loaded) {
      CR.FromCache = true;
    } else {
      AllFromCache = false;
      ApproxInterpreter Approx(*Loader, ApproxOpts);
      CR.Hints = Approx.run(CR.Component.Roots);
      CR.Stats = Approx.stats();
      bool Complete = !(ApproxOpts.Cancel && ApproxOpts.Cancel->cancelled());
      // Publish the component's slices only when execution stayed inside
      // its statically predicted member set — a dynamically computed
      // require that escaped the import scan disqualifies the component
      // (its hints depend on files outside the slice keys).
      CR.Publishable = Complete;
      if (Complete)
        for (const std::string &L : Approx.loadedModules())
          if (Spec.Files.exists(L) && !CR.Component.contains(L)) {
            CR.Publishable = false;
            break;
          }
    }
    Merged.merge(CR.Hints);
    MergedStats.NumFunctionsVisited += CR.Stats.NumFunctionsVisited;
    MergedStats.NumModulesLoaded += CR.Stats.NumModulesLoaded;
    MergedStats.NumForcedExecutions += CR.Stats.NumForcedExecutions;
    MergedStats.NumAborts += CR.Stats.NumAborts;
    MergedStats.Interp += CR.Stats.Interp;
  }
  MergedStats.NumFunctionsTotal = PreTotal;

  CachedHints = std::move(Merged);
  CachedApproxStats = MergedStats;
  CachedApproxSeconds = secondsSince(Start);
  HintsFromCache = AllFromCache;
  if (HintsFromCache)
    CachedApproxSeconds = 0; // Matches the whole-project warm path.
  ApproxComplete = !(ApproxOpts.Cancel && ApproxOpts.Cancel->cancelled());
  return *CachedHints;
}

void ProjectAnalyzer::publishToCache(const AnalysisResult *Baseline,
                                     const AnalysisResult *Extended) {
  if (!Cache || !Cache->config().writes())
    return;

  std::string ConfigFp =
      ArtifactCache::fingerprint(ApproxOpts, Spec.MainModule);

  // Per-module slices for every component that ran cleanly this time.
  for (const ComponentRun &CR : Components) {
    if (CR.FromCache || !CR.Publishable)
      continue;
    std::vector<HintSet> Slices =
        sliceHintsByModule(CR.Hints, CR.Component, Ctx.files());
    for (size_t I = 0; I != CR.Component.Members.size(); ++I) {
      const std::string &M = CR.Component.Members[I];
      CacheEntry Slice;
      Slice.Hints = std::move(Slices[I]);
      if (I == 0)
        Slice.Approx = CR.Stats; // Leader carries the component stat block.
      Slice.SliceModule = M;
      Slice.SliceComponent = CR.Component.Fingerprint;
      Sha256Digest Key =
          computeSliceKey(ConfigFp, CR.Component, M, Spec.Files.read(M));
      std::string Diag;
      if (!Cache->store(Key, Ctx.files(), Slice, Diag) && !Diag.empty())
        Diags.warning(SourceLoc::invalid(), Diag);
    }
  }

  // Whole-project entry: also refreshed when the hints were reconstructed
  // from slices, so the next unchanged run takes the single-load fast path.
  if (!CachedHints || ProjectEntryFromCache || !ApproxComplete)
    return;
  CacheEntry Entry;
  Entry.Hints = *CachedHints;
  Entry.Approx = CachedApproxStats;
  if (Baseline && Extended) {
    auto Scalars = [](const AnalysisResult &R) {
      CachedAnalysisMetrics M;
      M.CallEdges = R.NumCallEdges;
      M.ReachableFunctions = R.NumReachableFunctions;
      M.CallSites = R.NumCallSites;
      M.ResolvedCallSites = R.NumResolvedCallSites;
      M.MonomorphicCallSites = R.NumMonomorphicCallSites;
      return M;
    };
    Entry.HasMetrics = true;
    Entry.Baseline = Scalars(*Baseline);
    Entry.Extended = Scalars(*Extended);
  }
  Sha256Digest Key = ArtifactCache::computeKey(Spec.Files, ConfigFp);
  std::string Diag;
  if (!Cache->store(Key, Ctx.files(), Entry, Diag) && !Diag.empty())
    Diags.warning(SourceLoc::invalid(), Diag);
}

const ApproxStats &ProjectAnalyzer::approxStats() {
  hints();
  return CachedApproxStats;
}

VmOptStats ProjectAnalyzer::vmOptStats() const {
  if (const VmChunkCache *C = Loader->vmChunkCacheIfPresent())
    return C->Stats;
  return VmOptStats();
}

double ProjectAnalyzer::approxSeconds() {
  hints();
  return CachedApproxSeconds;
}

AnalysisResult ProjectAnalyzer::analyze(AnalysisMode Mode) {
  AnalysisOptions Opts;
  Opts.Mode = Mode;
  return analyze(Opts);
}

AnalysisResult ProjectAnalyzer::analyze(const AnalysisOptions &Opts) {
  return createAnalysis(Opts)->run();
}

std::unique_ptr<StaticAnalysis>
ProjectAnalyzer::createAnalysis(const AnalysisOptions &Opts) {
  const HintSet *H = nullptr;
  if (Opts.Mode == AnalysisMode::Hints ||
      Opts.Mode == AnalysisMode::NonRelationalHints)
    H = &hints();
  return std::make_unique<StaticAnalysis>(*Loader, Opts, H);
}

const CallGraph &ProjectAnalyzer::dynamicCallGraph() {
  assert(Spec.hasDynamicCallGraph() && "project has no test driver");
  if (CachedDynamicCG)
    return *CachedDynamicCG;
  DynamicCallGraphRecorder Recorder;
  Interpreter I(*Loader, InterpOptions(), &Recorder);
  I.loadModule(Spec.TestDriver);
  CachedDynamicCG = Recorder.callGraph();
  return *CachedDynamicCG;
}

size_t ProjectAnalyzer::numFunctions() {
  size_t Count = 0;
  for (const auto &F : Ctx.functions())
    if (!F->isModule() && !F->isInEval())
      ++Count;
  return Count;
}

ProjectReport Pipeline::analyzeProject(const ProjectSpec &Spec) {
  // Phase tokens live for the whole project run; each phase arms its token
  // just before starting so parse time never eats into a phase budget.
  CancellationToken ApproxToken, AnalysisToken;
  if (Interrupt) {
    // A latched interrupt (signal, serve shutdown) flows into every phase
    // through the parent chain, whether or not a deadline is configured.
    ApproxToken.setParent(Interrupt);
    AnalysisToken.setParent(Interrupt);
  }
  ApproxOptions AO = ApproxOpts;
  if (Deadlines.ApproxSeconds > 0 || Interrupt)
    AO.Cancel = &ApproxToken;

  auto Start = std::chrono::steady_clock::now();
  ProjectAnalyzer A(Spec, AO, Cache);
  ProjectReport R;
  R.ParseSeconds = secondsSince(Start);
  R.Name = Spec.Name;
  R.Pattern = Spec.Pattern;
  R.NumPackages = A.numPackages();
  R.NumModules = A.numModules();
  R.CodeBytes = A.codeBytes();

  AnalysisOptions BaseOpts;
  BaseOpts.Mode = AnalysisMode::Baseline;
  BaseOpts.SolverSet = SolverSet;
  BaseOpts.SolverJobs = SolverJobs;
  BaseOpts.Explain = Explain;
  if (Deadlines.AnalysisSeconds > 0 || Interrupt) {
    BaseOpts.Cancel = &AnalysisToken;
    if (Deadlines.AnalysisSeconds > 0)
      AnalysisToken.arm(Deadlines.AnalysisSeconds);
  }
  Start = std::chrono::steady_clock::now();
  R.Baseline = A.analyze(BaseOpts);
  R.BaselineSeconds = secondsSince(Start);
  bool AnalysisDegraded = AnalysisToken.cancelled();

  if (Deadlines.ApproxSeconds > 0)
    ApproxToken.arm(Deadlines.ApproxSeconds);
  R.NumHints = A.hints().size(); // Triggers the timed approx phase.
  R.ApproxSeconds = A.approxSeconds();
  R.Approx = A.approxStats();
  bool ApproxDegraded = ApproxToken.cancelled();
  // Function counting happens after the pre-analysis so eval-parsed
  // definitions don't skew the denominator.
  R.NumFunctions = A.numFunctions();

  // When blame is wanted, the extended run is retained (not discarded
  // after extraction) so the explain subsystem can read its solver's
  // provenance once the dynamic call graph exists. Retention changes
  // nothing about the run itself.
  std::unique_ptr<StaticAnalysis> ExtSA;
  if (ApproxDegraded) {
    // Graceful degradation: the partial hints are discarded and the
    // project is analyzed baseline-only (the extended columns mirror the
    // baseline so aggregates stay well-defined).
    R.NumHints = 0;
    R.Extended = R.Baseline;
    R.ExtendedSeconds = 0;
  } else {
    AnalysisOptions ExtOpts;
    ExtOpts.Mode = AnalysisMode::Hints;
    ExtOpts.SolverSet = SolverSet;
    ExtOpts.SolverJobs = SolverJobs;
    ExtOpts.Explain = Explain;
    if (Deadlines.AnalysisSeconds > 0 || Interrupt) {
      ExtOpts.Cancel = &AnalysisToken;
      if (Deadlines.AnalysisSeconds > 0)
        AnalysisToken.arm(Deadlines.AnalysisSeconds);
    }
    Start = std::chrono::steady_clock::now();
    if (Explain && Spec.hasDynamicCallGraph()) {
      ExtSA = A.createAnalysis(ExtOpts);
      R.Extended = ExtSA->run();
    } else {
      R.Extended = A.analyze(ExtOpts);
    }
    R.ExtendedSeconds = secondsSince(Start);
    AnalysisDegraded |= AnalysisToken.cancelled();
  }

  if (ApproxDegraded) {
    R.Outcome = ProjectOutcome::Degraded;
    R.DegradedPhase = "approx";
  } else if (AnalysisDegraded) {
    R.Outcome = ProjectOutcome::Degraded;
    R.DegradedPhase = "analysis";
  }
  if (Interrupt && Interrupt->cancelled()) {
    // An external interrupt outranks deadline degradation: the report holds
    // whatever completed and is flushed with outcome "cancelled".
    R.Outcome = ProjectOutcome::Cancelled;
    R.DegradedPhase.clear();
    R.VmOpt = A.vmOptStats();
    return R;
  }

  if (Spec.hasDynamicCallGraph()) {
    R.HasDynamicCG = true;
    const CallGraph &Dyn = A.dynamicCallGraph();
    R.DynamicEdges = Dyn.numEdges();
    R.BaselineRP = compareCallGraphs(R.Baseline.CG, Dyn);
    R.ExtendedRP = compareCallGraphs(R.Extended.CG, Dyn);
    if (ExtSA) {
      ExplainInputs In;
      In.StaticCG = &R.Extended.CG;
      In.DynamicCG = &Dyn;
      In.ApproxAborts = R.Approx.NumAborts;
      R.Blame = summarizeBlame(ExtSA->explainView(), In);
      R.HasBlame = true;
    }
  }

  // Captured last so counters from every VM-engine execution (per-component
  // approx runs and the dynamic call-graph run) are included.
  R.VmOpt = A.vmOptStats();

  // Only fully successful runs are published: a degraded run holds partial
  // hints or truncated analysis results that must never poison warm runs.
  if (R.Outcome == ProjectOutcome::Ok)
    A.publishToCache(&R.Baseline, &R.Extended);
  return R;
}
