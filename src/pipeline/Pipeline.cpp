//===- Pipeline.cpp -------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include <cassert>
#include <chrono>

using namespace jsai;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

const char *jsai::projectOutcomeName(ProjectOutcome O) {
  switch (O) {
  case ProjectOutcome::Ok:
    return "ok";
  case ProjectOutcome::Degraded:
    return "degraded";
  case ProjectOutcome::Error:
    return "error";
  }
  return "unknown";
}

ProjectAnalyzer::ProjectAnalyzer(const ProjectSpec &Spec,
                                 ApproxOptions ApproxOpts, ArtifactCache *Cache)
    : Spec(Spec), ApproxOpts(ApproxOpts), Cache(Cache) {
  Loader = std::make_unique<ModuleLoader>(Ctx, this->Spec.Files, Diags);
  Loader->parseAll();
}

const HintSet &ProjectAnalyzer::hints() {
  if (CachedHints)
    return *CachedHints;

  if (Cache && Cache->config().reads()) {
    Sha256Digest Key = ArtifactCache::computeKey(
        Spec.Files, ArtifactCache::fingerprint(ApproxOpts, Spec.MainModule));
    CacheEntry Entry;
    std::string Diag;
    if (Cache->load(Key, Ctx.files(), Entry, Diag)) {
      // Warm path: the forced-execution phase is skipped entirely; the
      // deserialized hints and stat blocks stand in for it, so downstream
      // analyses and telemetry are byte-identical to a cold run.
      CachedHints = std::move(Entry.Hints);
      CachedApproxStats = Entry.Approx;
      CachedApproxSeconds = 0;
      HintsFromCache = true;
      return *CachedHints;
    }
    if (!Diag.empty())
      Diags.warning(SourceLoc::invalid(), Diag);
  }

  auto Start = std::chrono::steady_clock::now();
  ApproxInterpreter Approx(*Loader, ApproxOpts);
  // Worklist roots: the application-code modules, main module first
  // (Section 3: "each application-code module or a single designated main
  // module"). Library modules are explored transitively via require.
  std::string AppPrefix =
      Spec.MainModule.substr(0, Spec.MainModule.find('/') + 1);
  std::vector<std::string> Roots;
  Roots.push_back(Spec.MainModule);
  for (const std::string &Path : Spec.Files.allPaths())
    if (Path != Spec.MainModule && Path.rfind(AppPrefix, 0) == 0)
      Roots.push_back(Path);
  CachedHints = Approx.run(Roots);
  CachedApproxStats = Approx.stats();
  CachedApproxSeconds = secondsSince(Start);
  ApproxComplete = !(ApproxOpts.Cancel && ApproxOpts.Cancel->cancelled());
  return *CachedHints;
}

void ProjectAnalyzer::publishToCache(const AnalysisResult *Baseline,
                                     const AnalysisResult *Extended) {
  if (!Cache || !Cache->config().writes())
    return;
  if (!CachedHints || HintsFromCache || !ApproxComplete)
    return;
  CacheEntry Entry;
  Entry.Hints = *CachedHints;
  Entry.Approx = CachedApproxStats;
  if (Baseline && Extended) {
    auto Scalars = [](const AnalysisResult &R) {
      CachedAnalysisMetrics M;
      M.CallEdges = R.NumCallEdges;
      M.ReachableFunctions = R.NumReachableFunctions;
      M.CallSites = R.NumCallSites;
      M.ResolvedCallSites = R.NumResolvedCallSites;
      M.MonomorphicCallSites = R.NumMonomorphicCallSites;
      return M;
    };
    Entry.HasMetrics = true;
    Entry.Baseline = Scalars(*Baseline);
    Entry.Extended = Scalars(*Extended);
  }
  Sha256Digest Key = ArtifactCache::computeKey(
      Spec.Files, ArtifactCache::fingerprint(ApproxOpts, Spec.MainModule));
  std::string Diag;
  if (!Cache->store(Key, Ctx.files(), Entry, Diag) && !Diag.empty())
    Diags.warning(SourceLoc::invalid(), Diag);
}

const ApproxStats &ProjectAnalyzer::approxStats() {
  hints();
  return CachedApproxStats;
}

double ProjectAnalyzer::approxSeconds() {
  hints();
  return CachedApproxSeconds;
}

AnalysisResult ProjectAnalyzer::analyze(AnalysisMode Mode) {
  AnalysisOptions Opts;
  Opts.Mode = Mode;
  return analyze(Opts);
}

AnalysisResult ProjectAnalyzer::analyze(const AnalysisOptions &Opts) {
  const HintSet *H = nullptr;
  if (Opts.Mode == AnalysisMode::Hints ||
      Opts.Mode == AnalysisMode::NonRelationalHints)
    H = &hints();
  StaticAnalysis SA(*Loader, Opts, H);
  return SA.run();
}

const CallGraph &ProjectAnalyzer::dynamicCallGraph() {
  assert(Spec.hasDynamicCallGraph() && "project has no test driver");
  if (CachedDynamicCG)
    return *CachedDynamicCG;
  DynamicCallGraphRecorder Recorder;
  Interpreter I(*Loader, InterpOptions(), &Recorder);
  I.loadModule(Spec.TestDriver);
  CachedDynamicCG = Recorder.callGraph();
  return *CachedDynamicCG;
}

size_t ProjectAnalyzer::numFunctions() {
  size_t Count = 0;
  for (const auto &F : Ctx.functions())
    if (!F->isModule() && !F->isInEval())
      ++Count;
  return Count;
}

ProjectReport Pipeline::analyzeProject(const ProjectSpec &Spec) {
  // Phase tokens live for the whole project run; each phase arms its token
  // just before starting so parse time never eats into a phase budget.
  CancellationToken ApproxToken, AnalysisToken;
  ApproxOptions AO = ApproxOpts;
  if (Deadlines.ApproxSeconds > 0)
    AO.Cancel = &ApproxToken;

  auto Start = std::chrono::steady_clock::now();
  ProjectAnalyzer A(Spec, AO, Cache);
  ProjectReport R;
  R.ParseSeconds = secondsSince(Start);
  R.Name = Spec.Name;
  R.Pattern = Spec.Pattern;
  R.NumPackages = A.numPackages();
  R.NumModules = A.numModules();
  R.CodeBytes = A.codeBytes();

  AnalysisOptions BaseOpts;
  BaseOpts.Mode = AnalysisMode::Baseline;
  BaseOpts.SolverSet = SolverSet;
  if (Deadlines.AnalysisSeconds > 0) {
    BaseOpts.Cancel = &AnalysisToken;
    AnalysisToken.arm(Deadlines.AnalysisSeconds);
  }
  Start = std::chrono::steady_clock::now();
  R.Baseline = A.analyze(BaseOpts);
  R.BaselineSeconds = secondsSince(Start);
  bool AnalysisDegraded = AnalysisToken.cancelled();

  if (Deadlines.ApproxSeconds > 0)
    ApproxToken.arm(Deadlines.ApproxSeconds);
  R.NumHints = A.hints().size(); // Triggers the timed approx phase.
  R.ApproxSeconds = A.approxSeconds();
  R.Approx = A.approxStats();
  bool ApproxDegraded = ApproxToken.cancelled();
  // Function counting happens after the pre-analysis so eval-parsed
  // definitions don't skew the denominator.
  R.NumFunctions = A.numFunctions();

  if (ApproxDegraded) {
    // Graceful degradation: the partial hints are discarded and the
    // project is analyzed baseline-only (the extended columns mirror the
    // baseline so aggregates stay well-defined).
    R.NumHints = 0;
    R.Extended = R.Baseline;
    R.ExtendedSeconds = 0;
  } else {
    AnalysisOptions ExtOpts;
    ExtOpts.Mode = AnalysisMode::Hints;
    ExtOpts.SolverSet = SolverSet;
    if (Deadlines.AnalysisSeconds > 0) {
      ExtOpts.Cancel = &AnalysisToken;
      AnalysisToken.arm(Deadlines.AnalysisSeconds);
    }
    Start = std::chrono::steady_clock::now();
    R.Extended = A.analyze(ExtOpts);
    R.ExtendedSeconds = secondsSince(Start);
    AnalysisDegraded |= AnalysisToken.cancelled();
  }

  if (ApproxDegraded) {
    R.Outcome = ProjectOutcome::Degraded;
    R.DegradedPhase = "approx";
  } else if (AnalysisDegraded) {
    R.Outcome = ProjectOutcome::Degraded;
    R.DegradedPhase = "analysis";
  }

  if (Spec.hasDynamicCallGraph()) {
    R.HasDynamicCG = true;
    const CallGraph &Dyn = A.dynamicCallGraph();
    R.DynamicEdges = Dyn.numEdges();
    R.BaselineRP = compareCallGraphs(R.Baseline.CG, Dyn);
    R.ExtendedRP = compareCallGraphs(R.Extended.CG, Dyn);
  }

  // Only fully successful runs are published: a degraded run holds partial
  // hints or truncated analysis results that must never poison warm runs.
  if (R.Outcome == ProjectOutcome::Ok)
    A.publishToCache(&R.Baseline, &R.Extended);
  return R;
}
