//===- Pipeline.cpp -------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include <cassert>
#include <chrono>

using namespace jsai;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

ProjectAnalyzer::ProjectAnalyzer(const ProjectSpec &Spec,
                                 ApproxOptions ApproxOpts)
    : Spec(Spec), ApproxOpts(ApproxOpts) {
  Loader = std::make_unique<ModuleLoader>(Ctx, this->Spec.Files, Diags);
  Loader->parseAll();
}

const HintSet &ProjectAnalyzer::hints() {
  if (CachedHints)
    return *CachedHints;
  auto Start = std::chrono::steady_clock::now();
  ApproxInterpreter Approx(*Loader, ApproxOpts);
  // Worklist roots: the application-code modules, main module first
  // (Section 3: "each application-code module or a single designated main
  // module"). Library modules are explored transitively via require.
  std::string AppPrefix =
      Spec.MainModule.substr(0, Spec.MainModule.find('/') + 1);
  std::vector<std::string> Roots;
  Roots.push_back(Spec.MainModule);
  for (const std::string &Path : Spec.Files.allPaths())
    if (Path != Spec.MainModule && Path.rfind(AppPrefix, 0) == 0)
      Roots.push_back(Path);
  CachedHints = Approx.run(Roots);
  CachedApproxStats = Approx.stats();
  CachedApproxSeconds = secondsSince(Start);
  return *CachedHints;
}

const ApproxStats &ProjectAnalyzer::approxStats() {
  hints();
  return CachedApproxStats;
}

double ProjectAnalyzer::approxSeconds() {
  hints();
  return CachedApproxSeconds;
}

AnalysisResult ProjectAnalyzer::analyze(AnalysisMode Mode) {
  AnalysisOptions Opts;
  Opts.Mode = Mode;
  return analyze(Opts);
}

AnalysisResult ProjectAnalyzer::analyze(const AnalysisOptions &Opts) {
  const HintSet *H = nullptr;
  if (Opts.Mode == AnalysisMode::Hints ||
      Opts.Mode == AnalysisMode::NonRelationalHints)
    H = &hints();
  StaticAnalysis SA(*Loader, Opts, H);
  return SA.run();
}

const CallGraph &ProjectAnalyzer::dynamicCallGraph() {
  assert(Spec.hasDynamicCallGraph() && "project has no test driver");
  if (CachedDynamicCG)
    return *CachedDynamicCG;
  DynamicCallGraphRecorder Recorder;
  Interpreter I(*Loader, InterpOptions(), &Recorder);
  I.loadModule(Spec.TestDriver);
  CachedDynamicCG = Recorder.callGraph();
  return *CachedDynamicCG;
}

size_t ProjectAnalyzer::numFunctions() {
  size_t Count = 0;
  for (const auto &F : Ctx.functions())
    if (!F->isModule() && !F->isInEval())
      ++Count;
  return Count;
}

ProjectReport Pipeline::analyzeProject(const ProjectSpec &Spec) {
  ProjectAnalyzer A(Spec, ApproxOpts);
  ProjectReport R;
  R.Name = Spec.Name;
  R.Pattern = Spec.Pattern;
  R.NumPackages = A.numPackages();
  R.NumModules = A.numModules();
  R.CodeBytes = A.codeBytes();

  auto Start = std::chrono::steady_clock::now();
  R.Baseline = A.analyze(AnalysisMode::Baseline);
  R.BaselineSeconds = secondsSince(Start);

  R.NumHints = A.hints().size(); // Triggers the timed approx phase.
  R.ApproxSeconds = A.approxSeconds();
  R.Approx = A.approxStats();
  // Function counting happens after the pre-analysis so eval-parsed
  // definitions don't skew the denominator.
  R.NumFunctions = A.numFunctions();

  Start = std::chrono::steady_clock::now();
  R.Extended = A.analyze(AnalysisMode::Hints);
  R.ExtendedSeconds = secondsSince(Start);

  if (Spec.hasDynamicCallGraph()) {
    R.HasDynamicCG = true;
    const CallGraph &Dyn = A.dynamicCallGraph();
    R.DynamicEdges = Dyn.numEdges();
    R.BaselineRP = compareCallGraphs(R.Baseline.CG, Dyn);
    R.ExtendedRP = compareCallGraphs(R.Extended.CG, Dyn);
  }
  return R;
}
