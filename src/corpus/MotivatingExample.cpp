//===- MotivatingExample.cpp - Figure 1 as a project -----------------------===//

#include "corpus/MotivatingExample.h"

using namespace jsai;

ProjectSpec jsai::motivatingExampleProject() {
  ProjectSpec P;
  P.Name = "motivating-example";
  P.Pattern = "figure-1";

  // Figure 1(a): the "Hello world!" Express web server.
  P.Files.addFile("app/main.js",
                  "const express = require('express');\n"
                  "const app = express();\n"
                  "app.get('/', function(req, res) {\n"
                  "  res.send('Hello world!');\n"
                  "  server.close();\n"
                  "});\n"
                  "var server = app.listen(8080);\n");

  // Figure 1(b): the express module creating web application objects.
  P.Files.addFile("express/index.js",
                  "var mixin = require('merge-descriptors');\n"
                  "var proto = require('./application');\n"
                  "var EventEmitter = require('events').EventEmitter;\n"
                  "exports = module.exports = createApplication;\n"
                  "function createApplication() {\n"
                  "  var app = function(req, res, next) {\n"
                  "    app.handle(req, res, next);\n"
                  "  };\n"
                  "  mixin(app, EventEmitter.prototype, false);\n"
                  "  mixin(app, proto, false);\n"
                  "  return app;\n"
                  "}\n");

  // Figure 1(c): merge-descriptors.
  P.Files.addFile(
      "merge-descriptors/index.js",
      "module.exports = merge;\n"
      "function merge(dest, src, redefine) {\n"
      "  Object.getOwnPropertyNames(src).forEach(function "
      "forOwnPropertyName(name) {\n"
      "    var descriptor = Object.getOwnPropertyDescriptor(src, name);\n"
      "    Object.defineProperty(dest, name, descriptor);\n"
      "  });\n"
      "  return dest;\n"
      "}\n");

  // Figure 1(d): the application module with dynamically defined methods
  // (plus express's lazy router, so the code actually runs).
  P.Files.addFile("express/application.js",
                  "var methods = require('methods');\n"
                  "var http = require('http');\n"
                  "var router = require('./router');\n"
                  "var slice = Array.prototype.slice;\n"
                  "var app = exports = module.exports = {};\n"
                  "app.lazyrouter = function lazyrouter() {\n"
                  "  if (!this._router) {\n"
                  "    this._router = router.create();\n"
                  "  }\n"
                  "};\n"
                  "app.handle = function handle(req, res, next) {\n"
                  "  this.lazyrouter();\n"
                  "  this._router.dispatch(req, res);\n"
                  "};\n"
                  "methods.forEach(function(method) {\n"
                  "  app[method] = function(path) {\n"
                  "    this.lazyrouter();\n"
                  "    var route = this._router.route(path);\n"
                  "    route[method].apply(route, slice.call(arguments, 1));\n"
                  "    return this;\n"
                  "  };\n"
                  "});\n"
                  "app.listen = function listen() {\n"
                  "  var server = http.createServer(this);\n"
                  "  return server.listen.apply(server, arguments);\n"
                  "};\n");

  // The router module backing the lazy router.
  P.Files.addFile("express/router.js",
                  "var methods = require('methods');\n"
                  "exports.create = function create() {\n"
                  "  return new Router();\n"
                  "};\n"
                  "function Router() {\n"
                  "  this.stack = [];\n"
                  "}\n"
                  "Router.prototype.route = function route(path) {\n"
                  "  var self = this;\n"
                  "  var r = { path: path };\n"
                  "  methods.forEach(function(method) {\n"
                  "    r[method] = function(handler) {\n"
                  "      self.stack.push(handler);\n"
                  "      return r;\n"
                  "    };\n"
                  "  });\n"
                  "  return r;\n"
                  "};\n"
                  "Router.prototype.dispatch = function dispatch(req, res) {\n"
                  "  this.stack.forEach(function(h) {\n"
                  "    h(req, res);\n"
                  "  });\n"
                  "};\n");

  // The methods package: HTTP method names built with string manipulation.
  P.Files.addFile("methods/index.js",
                  "var upper = ['GET', 'POST', 'PUT', 'DELETE', 'PATCH',\n"
                  "             'HEAD', 'OPTIONS'];\n"
                  "module.exports = upper.map(function(m) {\n"
                  "  return m.toLowerCase();\n"
                  "});\n");

  // Simple events package (MiniJS implementation, analyzed like any other
  // dependency).
  P.Files.addFile("events/index.js",
                  "function EventEmitter() {}\n"
                  "EventEmitter.prototype.on = function(name, fn) {\n"
                  "  this['__h_' + name] = fn;\n"
                  "  return this;\n"
                  "};\n"
                  "EventEmitter.prototype.emit = function(name) {\n"
                  "  var h = this['__h_' + name];\n"
                  "  if (h) { h.call(this); }\n"
                  "  return this;\n"
                  "};\n"
                  "module.exports = EventEmitter;\n"
                  "module.exports.EventEmitter = EventEmitter;\n");

  // Test driver standing in for the project's test suite: registers
  // handlers and drives a fake request through the router.
  P.Files.addFile("app/test.js",
                  "var express = require('express');\n"
                  "var app = express();\n"
                  "var hits = [];\n"
                  "app.get('/', function(req, res) {\n"
                  "  res.send('root');\n"
                  "});\n"
                  "app.post('/x', function(req, res) {\n"
                  "  res.send('posted');\n"
                  "});\n"
                  "var server = app.listen(8080);\n"
                  "app.handle({ url: '/' }, {\n"
                  "  send: function send(m) { hits.push(m); }\n"
                  "});\n"
                  "server.close();\n");
  P.TestDriver = "app/test.js";
  return P;
}
