//===- BenchmarkSuite.h - The 141-project benchmark suite -------*- C++ -*-===//
///
/// \file
/// Deterministic construction of the benchmark corpus standing in for the
/// paper's 141 npm/GitHub projects. Pattern families are weighted toward
/// the dynamic-initialization idioms the paper identifies as dominant in
/// real libraries; 36 projects carry test drivers, mirroring the subset
/// with usable dynamic call graphs (Table 1 / Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CORPUS_BENCHMARKSUITE_H
#define JSAI_CORPUS_BENCHMARKSUITE_H

#include "corpus/Project.h"

#include <vector>

namespace jsai {

/// Suite construction parameters (defaults reproduce the evaluation).
struct SuiteOptions {
  size_t Count = 141;
  uint64_t Seed = 20240624; ///< PLDI 2024 week; any fixed seed works.
  /// Keep test drivers on every Nth project so that exactly 36 of 141 have
  /// dynamic call graphs.
  size_t DynamicCGStride = 4;
};

/// Builds the corpus. Deterministic in \p Opts.
std::vector<ProjectSpec> buildBenchmarkSuite(SuiteOptions Opts = SuiteOptions());

/// The 36-project subset with dynamic call graphs (Table 1's population).
std::vector<ProjectSpec> benchmarksWithDynamicCG(SuiteOptions Opts = SuiteOptions());

} // namespace jsai

#endif // JSAI_CORPUS_BENCHMARKSUITE_H
