//===- Project.h - Synthetic benchmark projects -----------------*- C++ -*-===//
///
/// \file
/// A ProjectSpec bundles the virtual files of one benchmark project: a main
/// application package ("app"), its dependency packages, and optionally a
/// test-driver module that exercises the public API (the stand-in for the
/// paper's project test suites, which produce the dynamic call graphs).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CORPUS_PROJECT_H
#define JSAI_CORPUS_PROJECT_H

#include "interp/FileSystem.h"

#include <set>
#include <string>

namespace jsai {

/// One benchmark project.
struct ProjectSpec {
  std::string Name;
  /// The real-world pattern family this project instantiates.
  std::string Pattern;
  FileSystem Files;
  std::string MainModule = "app/main.js";
  /// Module whose top-level code plays the role of the project's test
  /// suite; empty when no dynamic call graph is available for the project.
  std::string TestDriver;

  bool hasDynamicCallGraph() const { return !TestDriver.empty(); }

  /// Distinct package names (first path segment of each file).
  std::set<std::string> packages() const;
  size_t numPackages() const { return packages().size(); }
  size_t numModules() const { return Files.size(); }
  size_t codeBytes() const { return Files.totalBytes(); }
};

/// Indentation-aware source emitter used by the pattern generators.
class SourceWriter {
public:
  /// Appends one line at the current indentation.
  SourceWriter &line(const std::string &S);
  /// Appends a line and indents subsequent lines (e.g. "function f() {").
  SourceWriter &open(const std::string &S);
  /// Dedents, then appends \p S (default "}").
  SourceWriter &close(const std::string &S = "}");
  std::string str() const { return Out; }

private:
  std::string Out;
  int Indent = 0;
};

} // namespace jsai

#endif // JSAI_CORPUS_PROJECT_H
