//===- Project.cpp --------------------------------------------------------===//

#include "corpus/Project.h"

using namespace jsai;

std::set<std::string> ProjectSpec::packages() const {
  std::set<std::string> Out;
  for (const std::string &Path : Files.allPaths()) {
    size_t Slash = Path.find('/');
    Out.insert(Slash == std::string::npos ? Path : Path.substr(0, Slash));
  }
  return Out;
}

SourceWriter &SourceWriter::line(const std::string &S) {
  Out.append(size_t(Indent) * 2, ' ');
  Out += S;
  Out += '\n';
  return *this;
}

SourceWriter &SourceWriter::open(const std::string &S) {
  line(S);
  ++Indent;
  return *this;
}

SourceWriter &SourceWriter::close(const std::string &S) {
  --Indent;
  line(S);
  return *this;
}
