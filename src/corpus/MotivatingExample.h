//===- MotivatingExample.h - The Figure-1 fixture ---------------*- C++ -*-===//
///
/// \file
/// The paper's motivating example (Figure 1) as a ProjectSpec: an Express-
/// style web framework whose API is assembled via merge-descriptors and
/// dynamically computed method names. Used by tests, the quickstart
/// examples, and the bench that reproduces the Section 5 in-text comparison
/// (136/138 call edges with hints vs. a FAST-like 12.3% recall).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CORPUS_MOTIVATINGEXAMPLE_H
#define JSAI_CORPUS_MOTIVATINGEXAMPLE_H

#include "corpus/Project.h"

namespace jsai {

/// Builds the Figure-1 project (app + express + merge-descriptors +
/// application + methods).
ProjectSpec motivatingExampleProject();

} // namespace jsai

#endif // JSAI_CORPUS_MOTIVATINGEXAMPLE_H
