//===- BenchmarkSuite.cpp -------------------------------------------------===//

#include "corpus/BenchmarkSuite.h"

#include "corpus/PatternGenerators.h"
#include "support/Rng.h"

using namespace jsai;

namespace {

using GeneratorFn = ProjectSpec (*)(Rng &, unsigned);

struct WeightedPattern {
  GeneratorFn Fn;
  unsigned Weight; ///< Relative frequency in the suite.
};

/// Express-style API initialization dominates real npm dependency chains;
/// control-group projects keep the averages honest.
const WeightedPattern Patterns[] = {
    {makeExpressLike, 3},    {makeEventHub, 2},     {makePluginRegistry, 2},
    {makeOopLibrary, 2},     {makeDelegator, 1},    {makeEvalInit, 1},
    {makeDynamicLoader, 1},  {makeUtilityLib, 2},   {makeMiddlewareChain, 2},
};

} // namespace

std::vector<ProjectSpec> jsai::buildBenchmarkSuite(SuiteOptions Opts) {
  unsigned TotalWeight = 0;
  for (const WeightedPattern &P : Patterns)
    TotalWeight += P.Weight;

  std::vector<ProjectSpec> Suite;
  Suite.reserve(Opts.Count);
  for (size_t I = 0; I != Opts.Count; ++I) {
    Rng R(Opts.Seed + I * 0x9E3779B97F4A7C15ULL);
    unsigned Pick = unsigned(R.below(TotalWeight));
    GeneratorFn Fn = Patterns[0].Fn;
    for (const WeightedPattern &P : Patterns) {
      if (Pick < P.Weight) {
        Fn = P.Fn;
        break;
      }
      Pick -= P.Weight;
    }
    unsigned Size = unsigned(R.below(3));
    ProjectSpec Spec = Fn(R, Size);
    Spec.Name = Spec.Pattern + "-" + std::to_string(I);
    // Only every DynamicCGStride-th project keeps its test driver
    // (dynamic call graphs are available for 36 of the 141).
    if (Opts.DynamicCGStride == 0 || I % Opts.DynamicCGStride != 0) {
      if (!Spec.TestDriver.empty()) {
        // The driver file stays in the project (it is ordinary application
        // code) but is not advertised as a usable test suite.
        Spec.TestDriver.clear();
      }
    }
    Suite.push_back(std::move(Spec));
  }
  return Suite;
}

std::vector<ProjectSpec> jsai::benchmarksWithDynamicCG(SuiteOptions Opts) {
  std::vector<ProjectSpec> All = buildBenchmarkSuite(Opts);
  std::vector<ProjectSpec> Out;
  for (ProjectSpec &Spec : All)
    if (Spec.hasDynamicCallGraph())
      Out.push_back(std::move(Spec));
  return Out;
}
