//===- PatternGenerators.cpp - Benchmark project generators -----------------===//
//
// Every generator emits semantically valid MiniJS: the pipeline runs the
// test drivers concretely (for dynamic call graphs), so the generated
// programs must execute without errors, not merely parse.
//
//===----------------------------------------------------------------------===//

#include "corpus/PatternGenerators.h"

using namespace jsai;

namespace {

const char *HttpMethods[] = {"get",     "post",  "put",    "del",
                             "patch",   "head",  "options", "all",
                             "search",  "trace", "link",    "unlink"};

const char *EventNames[] = {"start", "stop",  "data",   "error", "drain",
                            "close", "ready", "change", "tick",  "flush"};

const char *PluginNames[] = {"logger", "auth",  "cache",  "gzip",  "cors",
                             "static", "proxy", "limiter", "etag",  "session"};

const char *ModelNames[] = {"User",    "Order",  "Invoice", "Ticket",
                            "Product", "Session", "Account", "Report"};

const char *UtilVerbs[] = {"format", "parse",  "encode", "decode", "merge",
                           "clone",  "flatten", "pick",   "omit",   "chunk"};

std::string num(uint64_t N) { return std::to_string(N); }

/// Adds a filler utility module with \p NumFns simple functions (exported),
/// one of which is a dormant vulnerability. \returns the module path.
std::string addFillerModule(ProjectSpec &P, Rng &R, const std::string &Pkg,
                            unsigned Index, unsigned NumFns) {
  SourceWriter W;
  for (unsigned I = 0; I != NumFns; ++I) {
    // Function 0 has a deterministic name so other modules can call it.
    std::string Verb = I == 0 ? UtilVerbs[0] : UtilVerbs[R.below(10)];
    std::string Name = Verb + num(Index) + "_" + num(I);
    W.open("exports." + Name + " = function " + Name + "(value) {");
    switch (R.below(3)) {
    case 0:
      W.line("return '' + value + '/" + Name + "';");
      break;
    case 1:
      W.line("var out = [];");
      W.line("out.push(value);");
      W.line("return out;");
      break;
    default:
      W.open("if (!value) {");
      W.open("var fallback" + num(I) + " = function fallback" + num(Index) +
             "_" + num(I) + "() {");
      W.line("return null;");
      W.close("};");
      W.line("return fallback" + num(I) + "();");
      W.close();
      W.line("return { wrapped: value };");
      break;
    }
    W.close("};");
  }
  // A guarded nested closure: `mode` is p* during forced execution, the
  // strict comparison fails, and the inner definition is never created —
  // the coverage gap the paper reports (~60% of functions visited).
  W.open("exports.special" + num(Index) + " = function special" + num(Index) +
         "(mode) {");
  W.open("if (mode === 'special') {");
  W.open("var inner = function guardedInner" + num(Index) + "(x) {");
  W.line("return { special: x };");
  W.close("};");
  W.line("return inner;");
  W.close();
  W.line("return null;");
  W.close("};");
  // A dormant vulnerable function (never exported under its own name).
  W.open("function vuln_filler" + num(Index) + "(input) {");
  W.line("return '<script>' + input + '</script>';");
  W.close();
  std::string Path = Pkg + "/util" + num(Index) + ".js";
  P.Files.addFile(Path, W.str());
  return Path;
}


/// Adds a statically trivial core module to \p Pkg whose functions call
/// each other and run at load time; requiring packages wire it into their
/// index. Keeps per-project baselines realistic (most real dependency code
/// is statically reachable).
std::string addStaticCore(ProjectSpec &P, const std::string &Pkg,
                          unsigned NumFns) {
  SourceWriter W;
  for (unsigned I = 0; I != NumFns; ++I) {
    W.open("function core" + num(I) + "(x) {");
    if (I == 0)
      W.line("return x + 1;");
    else
      W.line("return core" + num(I - 1) + "(x) + " + num(I) + ";");
    W.close();
    W.line("exports.core" + num(I) + " = core" + num(I) + ";");
  }
  W.open("exports.warmup = function warmup() {");
  W.line("return core" + num(NumFns - 1) + "(0);");
  W.close("};");
  W.line("exports.ready = core" + num(NumFns - 1) + "(1);");
  // Platform-conditional implementation: the win32 branch never executes
  // (the sandbox reports 'linux'), so its closure is never created — one
  // of the paper's sources of unvisited functions.
  W.open("if (process.platform === 'win32') {");
  W.open("exports.sep = function winSep() {");
  W.line("return '\\\\';");
  W.close("};");
  W.close();
  W.open("if (process.platform !== 'win32') {");
  W.line("exports.sep = function posixSep() { return '/'; };");
  W.close();
  // Debug tooling, loaded only when JSAI_DEBUG is set (never, here): the
  // whole module stays unexecuted, all of its functions unvisited.
  W.open("if (process.env.JSAI_DEBUG) {");
  W.line("exports.debugTools = require('./debug');");
  W.close();
  std::string Path = Pkg + "/core.js";
  P.Files.addFile(Path, W.str());

  SourceWriter D;
  for (unsigned I = 0; I != NumFns; ++I) {
    D.open("exports.trace" + num(I) + " = function trace" + num(I) +
           "(label) {");
    D.line("var detail = function detail" + num(I) + "() {");
    D.line("  return 'trace:" + num(I) + ":' + label;");
    D.line("};");
    D.line("return detail();");
    D.close("};");
  }
  P.Files.addFile(Pkg + "/debug.js", D.str());
  return Path;
}

} // namespace

//===----------------------------------------------------------------------===//
// express-like
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeExpressLike(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "express-like";
  unsigned NumMethods = 4 + 2 * Size + unsigned(R.below(3));
  if (NumMethods > 12)
    NumMethods = 12;
  unsigned NumRoutes = 2 + 2 * Size;
  unsigned NumFillers = 1 + Size;

  // merge-descriptors: verbatim Figure 1(c).
  P.Files.addFile(
      "merge-descriptors/index.js",
      "module.exports = merge;\n"
      "function merge(dest, src, redefine) {\n"
      "  Object.getOwnPropertyNames(src).forEach(function "
      "forOwnPropertyName(name) {\n"
      "    var descriptor = Object.getOwnPropertyDescriptor(src, name);\n"
      "    Object.defineProperty(dest, name, descriptor);\n"
      "  });\n"
      "  return dest;\n"
      "}\n");

  // methods: HTTP method names built via string manipulation.
  {
    SourceWriter W;
    std::string List = "[";
    for (unsigned I = 0; I != NumMethods; ++I) {
      if (I)
        List += ", ";
      std::string Upper = HttpMethods[I];
      for (char &C : Upper)
        C = char(std::toupper(static_cast<unsigned char>(C)));
      List += "'" + Upper + "'";
    }
    List += "]";
    W.line("var upper = " + List + ";");
    W.open("module.exports = upper.map(function(m) {");
    W.line("return m.toLowerCase();");
    W.close("});");
    P.Files.addFile("methods/index.js", W.str());
  }

  // webfw/router.js
  {
    SourceWriter W;
    W.open("exports.create = function create() {");
    W.line("return new Router();");
    W.close("};");
    W.open("function Router() {");
    W.line("this.stack = [];");
    W.close();
    W.open("Router.prototype.add = function add(method, path, handler) {");
    W.line("this.stack.push({ method: method, path: path, handler: handler "
           "});");
    W.close("};");
    W.open("Router.prototype.dispatch = function dispatch(req, res) {");
    W.line("vuln_route_dump(this.stack);");
    W.open("this.stack.forEach(function(layer) {");
    W.line("layer.handler(req, res);");
    W.close("});");
    W.close("};");
    W.open("Router.prototype.describe = function describe() {");
    W.line("return this.stack.length;");
    W.close("};");
    W.open("function vuln_route_dump(stack) {");
    W.line("return '' + stack.length;");
    W.close();
    P.Files.addFile("webfw/router.js", W.str());
  }

  // webfw/application.js: the Figure-1(d) pattern.
  {
    SourceWriter W;
    W.line("var methods = require('methods');");
    W.line("var router = require('./router');");
    W.line("var helpers = require('./util0');");
    W.line("var app = exports = module.exports = {};");
    W.open("app.init = function init() {");
    W.line("this._router = router.create();");
    W.close("};");
    W.open("app.handle = function handle(req, res) {");
    W.line("this._router.dispatch(req, res);");
    W.close("};");
    W.open("methods.forEach(function(method) {");
    W.open("app[method] = function(path, handler) {");
    W.line("this._router.add(method, path, handler);");
    W.line("return this;");
    W.close("};");
    W.close("});");
    W.open("app.listen = function listen(port, cb) {");
    W.line("if (cb) { cb(); }");
    W.line("return { close: function close() {} };");
    W.close("};");
    W.line("var MODE_KEY = 'mode';");
    W.line("var HOOK_KEY = 'onReady';");
    W.open("app.configure = function configure(options) {");
    W.line("var mode = options[MODE_KEY];");
    W.line("if (mode) { this._mode = mode; }");
    W.line("var hook = options[HOOK_KEY];");
    W.line("if (hook) { hook(this); }");
    W.line("return this;");
    W.close("};");
    P.Files.addFile("webfw/application.js", W.str());
  }

  // webfw/index.js: createApplication + mixin (Figure 1(b)).
  {
    SourceWriter W;
    W.line("var mixin = require('merge-descriptors');");
    W.line("var proto = require('./application');");
    W.line("var core = require('./core');");
    W.line("core.warmup();");
    W.line("exports = module.exports = createApplication;");
    W.open("function createApplication() {");
    W.open("var app = function(req, res) {");
    W.line("app.handle(req, res);");
    W.close("};");
    W.line("mixin(app, proto, false);");
    W.line("app.init();");
    W.line("return app;");
    W.close();
    W.line("module.exports.helpers = require('./util0');");
    P.Files.addFile("webfw/index.js", W.str());
  }

  for (unsigned I = 0; I != NumFillers; ++I)
    addFillerModule(P, R, "webfw", I, 3 + 2 * Size);
  addStaticCore(P, "webfw", 8 + 4 * Size);

  // Application code (and the test driver, which also drives a request).
  // Statically trivial application helpers (baseline-reachable code).
  {
    SourceWriter W;
    W.open("exports.banner = function banner(name) {");
    W.line("return '[' + name + ']';");
    W.close("};");
    W.open("exports.logLine = function logLine(msg) {");
    W.line("console.log(msg);");
    W.close("};");
    P.Files.addFile("app/helpers.js", W.str());
  }

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var fw = require('webfw');");
    W.line("var helpers = require('./helpers');");
    W.line("var app = fw();");
    W.line("helpers.logLine(helpers.banner('srv'));");
    for (unsigned I = 0; I != NumRoutes; ++I) {
      std::string Method = HttpMethods[R.below(NumMethods)];
      W.open("app." + Method + "('/r" + num(I) + "', function handler" +
             num(I) + "(req, res) {");
      W.line("res.served = fw.helpers." + std::string(UtilVerbs[0]) +
             "0_0('r" + num(I) + "');");
      W.close("});");
    }
    if (Driver) {
      W.line("app.handle({ url: '/r0' }, {});");
      // Exercise the proxy-hostile guarded closure: these dynamic edges
      // stay unrecoverable, keeping recall realistically below 100%.
      W.line("var special = fw.helpers.special0('special');");
      W.line("if (special) { special(1); }");
      // configure() is only reached behind mocked I/O, so approximate
      // interpretation sees it with p* options only — the unknown-arg
      // extension is the sole way to resolve the onReady hook.
      W.line("var fs = require('fs');");
      W.open("fs.readFile('srv.cfg', function(err, data) {");
      W.open("if (data.length > 3) {");
      W.open("app.configure({ mode: 'fast', onReady: function onReady(a) {");
      W.line("a._ready = true;");
      W.close("} });");
      W.close();
      W.close("});");
    }
    W.line("var server = app.listen(8080, function onListening() {});");
    if (Driver)
      W.line("server.close();");
    return W.str();
  };
  // Note: the two calls consume the same Rng stream; regenerate with a
  // snapshot so main and test register identical routes.
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// event-hub
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeEventHub(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "event-hub";
  unsigned NumEvents = 3 + 2 * Size + unsigned(R.below(2));
  if (NumEvents > 10)
    NumEvents = 10;
  unsigned HandlersPerEvent = 1 + unsigned(R.below(2)) + (Size > 1 ? 1 : 0);

  {
    SourceWriter W;
    W.open("function Hub() {");
    W.line("this._events = {};");
    W.close();
    W.open("Hub.prototype.on = function on(name, fn) {");
    W.line("var list = this._events[name];");
    W.open("if (!list) {");
    W.line("list = [];");
    W.line("this._events[name] = list;");
    W.close();
    W.line("list.push(fn);");
    W.line("return this;");
    W.close("};");
    W.open("Hub.prototype.once = function once(name, fn) {");
    W.line("this['__once_' + name] = fn;");
    W.line("return this;");
    W.close("};");
    W.open("Hub.prototype.emit = function emit(name, payload) {");
    W.line("var list = this._events[name];");
    W.open("if (list) {");
    W.open("list.forEach(function(fn) {");
    W.line("fn(payload);");
    W.close("});");
    W.close();
    W.line("var onceFn = this['__once_' + name];");
    W.open("if (onceFn) {");
    W.line("delete this['__once_' + name];");
    W.line("onceFn(payload);");
    W.close();
    W.line("return this;");
    W.close("};");
    W.open("Hub.prototype.inspect = function inspect() {");
    W.line("return vuln_dump_events(this._events);");
    W.close("};");
    W.open("function vuln_dump_events(events) {");
    W.line("return Object.keys(events).join(',');");
    W.close();
    W.line("var core = require('./core');");
    W.line("core.warmup();");
    W.line("module.exports = Hub;");
    P.Files.addFile("hub/index.js", W.str());
  }
  addFillerModule(P, R, "hub", 0, 3 + Size);
  addStaticCore(P, "hub", 8 + 4 * Size);

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var Hub = require('hub');");
    W.line("var fs = require('fs');");
    W.line("var bus = new Hub();");
    W.line("var seen = { count: 0 };");
    W.open("fs.readFile('app.cfg', function(err, data) {");
    // During approximate interpretation `data` is p*, so the computed
    // event name is unknown and the direct-property registration leaves
    // no hint; the concrete run stores and later invokes the handler.
    W.line("bus.once('cfg:' + data.length, function onConfig(payload) {");
    W.line("  seen.count = seen.count + 100;");
    W.line("});");
    W.close("});");
    if (Driver)
      W.line("bus.emit('cfg:15', {});"); // '<fake contents>'.length === 15.
    for (unsigned E = 0; E != NumEvents; ++E)
      for (unsigned H = 0; H != HandlersPerEvent; ++H) {
        W.open("bus.on('" + std::string(EventNames[E]) + "', function on_" +
               std::string(EventNames[E]) + "_" + num(H) + "(payload) {");
        W.line("seen.count = seen.count + 1;");
        W.close("});");
      }
    if (Driver)
      for (unsigned E = 0; E != NumEvents; ++E)
        W.line("bus.emit('" + std::string(EventNames[E]) + "', { n: " +
               num(E) + " });");
    else
      W.line("bus.emit('" + std::string(EventNames[0]) + "', { n: 0 });");
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// plugin-registry
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makePluginRegistry(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "plugin-registry";
  unsigned NumPlugins = 2 + Size + unsigned(R.below(2));
  if (NumPlugins > 8)
    NumPlugins = 8;

  {
    SourceWriter W;
    W.line("var plugins = {};");
    W.open("exports.register = function register(name, plugin) {");
    W.line("plugins[name] = plugin;");
    W.close("};");
    W.open("exports.get = function get(name) {");
    W.line("return plugins[name];");
    W.close("};");
    W.open("exports.activateAll = function activateAll(ctx) {");
    W.open("for (var name in plugins) {");
    W.line("var p = plugins[name];");
    W.line("p.activate(ctx);");
    W.close();
    W.close("};");
    W.line("var core = require('./core');");
    W.line("core.warmup();");
    P.Files.addFile("plugreg/index.js", W.str());
  }
  addStaticCore(P, "plugreg", 8 + 4 * Size);

  for (unsigned I = 0; I != NumPlugins; ++I) {
    std::string Name = PluginNames[I];
    SourceWriter W;
    W.open("function helper_" + Name + "(ctx) {");
    W.line("ctx.log = (ctx.log || '') + '" + Name + ";';");
    W.close();
    W.open("function vuln_" + Name + "_backdoor(cmd) {");
    W.line("return 'exec:' + cmd;");
    W.close();
    W.open("module.exports = {");
    W.line("name: '" + Name + "',");
    W.open("activate: function activate(ctx) {");
    W.line("helper_" + Name + "(ctx);");
    W.close("},");
    W.open("teardown: function teardown(ctx) {");
    W.line("ctx.log = '';");
    W.close("}");
    W.close("};");
    P.Files.addFile("plugin-" + Name + "/index.js", W.str());
  }

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var reg = require('plugreg');");
    W.line("var fs = require('fs');");
    for (unsigned I = 0; I + 1 < NumPlugins; ++I) {
      std::string Name = PluginNames[I];
      W.line("var p_" + Name + " = require('plugin-" + Name + "');");
      // Registered under a computed key (the plugin's own name property).
      W.line("reg.register(p_" + Name + ".name, p_" + Name + ");");
    }
    // The last plugin is registered under a key derived from mocked I/O:
    // unknown during approximate interpretation, so the hints miss it.
    std::string Last = PluginNames[NumPlugins - 1];
    W.line("var p_" + Last + " = require('plugin-" + Last + "');");
    W.open("fs.readFile('plugins.cfg', function(err, data) {");
    W.line("reg.register('dyn_' + data.length, p_" + Last + ");");
    W.close("});");
    W.line("var ctx = { log: '' };");
    W.line("reg.activateAll(ctx);");
    if (Driver) {
      W.line("var first = reg.get('" + std::string(PluginNames[0]) + "');");
      W.line("first.teardown(ctx);");
    }
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// oop-library
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeOopLibrary(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "oop-library";
  unsigned NumModels = 2 + Size + unsigned(R.below(2));
  if (NumModels > 8)
    NumModels = 8;

  P.Files.addFile("models/base.js",
                  "function Base() {\n"
                  "  this.id = 0;\n"
                  "}\n"
                  "Base.prototype.describe = function describe() {\n"
                  "  return 'entity#' + this.id;\n"
                  "};\n"
                  "Base.prototype.touch = function touch() {\n"
                  "  this.id = this.id + 1;\n"
                  "  return this;\n"
                  "};\n"
                  "module.exports = Base;\n");

  {
    SourceWriter W;
    W.line("var util = require('util');");
    W.line("var Base = require('./base');");
    for (unsigned I = 0; I != NumModels; ++I) {
      std::string Name = ModelNames[I];
      W.open("function " + Name + "(label) {");
      W.line("Base.call(this);");
      W.line("this.label = label;");
      W.close();
      W.line("util.inherits(" + Name + ", Base);");
      // Methods installed from a descriptor table via dynamic writes onto
      // the prototype object.
      // A lazy accessor alongside the method table: reads of `.summaryText`
      // are getter calls in both call graphs (Figure 7's outlier source).
      W.open("Object.defineProperty(" + Name + ".prototype, 'summaryText', {");
      W.open("get: function get_summaryText_" + Name + "() {");
      W.line("return this.label + '#' + this.id;");
      W.close("}");
      W.close("});");
      W.open("var methods_" + Name + " = {");
      W.open("summary: function summary() {");
      W.line("return this.label + '/' + this.describe();");
      W.close("},");
      W.open("reset: function reset() {");
      W.line("this.id = 0;");
      W.line("return this;");
      W.close("},");
      W.open("vuln_raw_query: function vuln_raw_query(q) {");
      W.line("return 'SELECT ' + q;");
      W.close("}");
      W.close("};");
      W.open("Object.keys(methods_" + Name + ").forEach(function(k) {");
      W.line(Name + ".prototype[k] = methods_" + Name + "[k];");
      W.close("});");
      W.line("exports." + Name + " = " + Name + ";");
    }
    P.Files.addFile("models/index.js", W.str());
  }
  addFillerModule(P, R, "models", 0, 2 + Size);
  addStaticCore(P, "models", 8 + 4 * Size);

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var models = require('models');");
    W.line("var core = require('models/core');");
    W.line("core.warmup();");
    W.line("var results = [];");
    for (unsigned I = 0; I != NumModels; ++I) {
      std::string Name = ModelNames[I];
      std::string Var = "m" + num(I);
      W.line("var " + Var + " = new models." + Name + "('" + Name + num(I) +
             "');");
      W.line(Var + ".touch();");
      W.line("results.push(" + Var + ".summary());");
      if (Driver) {
        W.line(Var + ".reset();");
        W.line("results.push(" + Var + ".summaryText);");
      }
    }
    W.line("results.push(results.length);");
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// delegator
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeDelegator(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "delegator";
  unsigned NumDelegated = 2 + Size + unsigned(R.below(2));
  if (NumDelegated > 6)
    NumDelegated = 6;
  static const char *EngineMethods[] = {"start", "stop",   "pause",
                                        "resume", "status", "reset"};

  // The node-delegates pattern, nearly verbatim.
  P.Files.addFile(
      "delegate/index.js",
      "module.exports = Delegator;\n"
      "function Delegator(proto, target) {\n"
      "  if (!(this instanceof Delegator)) {\n"
      "    return new Delegator(proto, target);\n"
      "  }\n"
      "  this.proto = proto;\n"
      "  this.target = target;\n"
      "  this.methods = [];\n"
      "}\n"
      "Delegator.prototype.method = function method(name) {\n"
      "  var proto = this.proto;\n"
      "  var target = this.target;\n"
      "  proto[name] = function() {\n"
      "    return this[target][name].apply(this[target], arguments);\n"
      "  };\n"
      "  this.methods.push(name);\n"
      "  return this;\n"
      "};\n");

  {
    SourceWriter W;
    W.open("function Engine() {");
    W.line("this.state = 'new';");
    W.close();
    for (unsigned I = 0; I != NumDelegated; ++I) {
      std::string M = EngineMethods[I];
      W.open("Engine.prototype." + M + " = function " + M + "() {");
      W.line("this.state = '" + M + "';");
      W.line("return this.state;");
      W.close("};");
    }
    W.open("Engine.prototype.vuln_eval_config = function vuln_eval_config(s) "
           "{");
    W.line("return s;");
    W.close("};");
    W.line("module.exports = Engine;");
    P.Files.addFile("engine/index.js", W.str());
  }

  {
    SourceWriter W;
    W.line("var Delegator = require('delegate');");
    W.line("var Engine = require('engine');");
    W.open("function Service() {");
    W.line("this.engine = new Engine();");
    W.close();
    std::string Chain = "Delegator(Service.prototype, 'engine')";
    for (unsigned I = 0; I != NumDelegated; ++I)
      Chain += ".method('" + std::string(EngineMethods[I]) + "')";
    W.line(Chain + ";");
    W.line("var core = require('./core');");
    W.line("core.warmup();");
    W.line("module.exports = Service;");
    P.Files.addFile("service/index.js", W.str());
  }
  addStaticCore(P, "service", 8 + 4 * Size);

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var Service = require('service');");
    W.line("var svc = new Service();");
    unsigned Calls = Driver ? NumDelegated : 2;
    for (unsigned I = 0; I != Calls; ++I)
      W.line("svc." + std::string(EngineMethods[I]) + "();");
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// eval-init
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeEvalInit(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "eval-init";
  unsigned NumOps = 2 + Size + unsigned(R.below(2));
  if (NumOps > 6)
    NumOps = 6;
  static const char *OpNames[] = {"sum", "max", "head", "tail", "size",
                                  "rev"};

  {
    SourceWriter W;
    W.line("var api = exports;");
    for (unsigned I = 0; I != NumOps; ++I) {
      std::string Name = OpNames[I];
      W.open("function impl_" + Name + "(xs) {");
      W.line("return xs.length;");
      W.close();
    }
    W.open("function audit(name) {");
    W.line("return 'registered:' + name;");
    W.close();
    W.open("function vuln_codegen(name) {");
    W.line("return \"api['\" + name + \"'] = impl_\" + name +");
    W.line("       \"; audit('\" + name + \"');\";");
    W.close();
    std::string List = "[";
    for (unsigned I = 0; I != NumOps; ++I) {
      if (I)
        List += ", ";
      List += "'" + std::string(OpNames[I]) + "'";
    }
    List += "]";
    W.line("var names = " + List + ";");
    W.open("names.forEach(function(n) {");
    // API registration through dynamically generated code — statically
    // invisible, recovered by hints collected inside the eval'd code.
    W.line("eval(vuln_codegen(n));");
    W.close("});");
    W.line("var core = require('./core');");
    W.line("core.warmup();");
    P.Files.addFile("evalreg/index.js", W.str());
  }
  addFillerModule(P, R, "evalreg", 0, 2 + Size);
  addStaticCore(P, "evalreg", 8 + 4 * Size);

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var ops = require('evalreg');");
    W.line("var data = [1, 2, 3];");
    unsigned Calls = Driver ? NumOps : (NumOps > 2 ? 2 : NumOps);
    for (unsigned I = 0; I != Calls; ++I)
      W.line("var r" + num(I) + " = ops." + OpNames[I] + "(data);");
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// dynamic-loader
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeDynamicLoader(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "dynamic-loader";
  unsigned NumFeatures = 2 + Size + unsigned(R.below(2));
  if (NumFeatures > 8)
    NumFeatures = 8;

  for (unsigned I = 0; I != NumFeatures; ++I) {
    std::string Name = PluginNames[I];
    SourceWriter W;
    W.line("var active = false;");
    W.open("exports.setup = function setup() {");
    W.line("active = true;");
    W.line("return internalInit();");
    W.close("};");
    W.open("exports.isActive = function isActive() {");
    W.line("return active;");
    W.close("};");
    W.open("function internalInit() {");
    W.line("return helperA(helperB(0));");
    W.close();
    W.open("function helperA(x) {");
    W.line("return x + 1;");
    W.close();
    W.open("function helperB(x) {");
    W.line("return x * 2;");
    W.close();
    W.open("function vuln_load_" + Name + "(path) {");
    W.line("return path;");
    W.close();
    P.Files.addFile("feature-" + Name + "/index.js", W.str());
  }

  {
    SourceWriter W;
    std::string List = "[";
    for (unsigned I = 0; I != NumFeatures; ++I) {
      if (I)
        List += ", ";
      List += "'" + std::string(PluginNames[I]) + "'";
    }
    List += "]";
    W.line("module.exports = { features: " + List + " };");
    P.Files.addFile("app/config.js", W.str());
  }

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var config = require('./config');");
    W.line("var loaded = [];");
    W.open("config.features.forEach(function(name) {");
    // The dynamically computed module name defeats static resolution; the
    // module-load hints (Section 3's extension) recover it.
    W.line("var mod = require('feature-' + name);");
    W.line("mod.setup();");
    W.line("loaded.push(mod);");
    W.close("});");
    if (Driver) {
      W.open("loaded.forEach(function(mod) {");
      W.line("mod.isActive();");
      W.close("});");
    }
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// utility-lib (control group)
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeUtilityLib(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "utility-lib";
  unsigned NumModules = 2 + Size;
  unsigned FnsPerModule = 3 + 2 * Size;

  SourceWriter Index;
  for (unsigned M = 0; M != NumModules; ++M) {
    SourceWriter W;
    // Every other module uses ES-module syntax — real npm packages mix
    // CommonJS and ESM, and the pipeline must handle both (footnote 2).
    bool UseEsm = M % 2 == 1;
    for (unsigned I = 0; I != FnsPerModule; ++I) {
      std::string Name =
          std::string(UtilVerbs[(M * FnsPerModule + I) % 10]) + num(M) + "_" +
          num(I);
      if (UseEsm)
        W.open("export function " + Name + "(x) {");
      else
        W.open("exports." + Name + " = function " + Name + "(x) {");
      if (R.chance(50)) {
        W.line("return '' + x;");
      } else {
        W.line("if (x === null || x === undefined) { return x; }");
        W.line("return [x];");
      }
      W.close(UseEsm ? "}" : "};");
    }
    W.open("function vuln_unsafe" + num(M) + "(x) {");
    W.line("return x;");
    W.close();
    std::string Mod = "mod" + num(M);
    P.Files.addFile("toolkit/" + Mod + ".js", W.str());
    Index.line("var " + Mod + " = require('./" + Mod + "');");
    // Static re-exports: this pattern family is the control group the
    // baseline analysis already handles well.
    for (unsigned I = 0; I != FnsPerModule; ++I) {
      std::string Name =
          std::string(UtilVerbs[(M * FnsPerModule + I) % 10]) + num(M) + "_" +
          num(I);
      Index.line("exports." + Name + " = " + Mod + "." + Name + ";");
    }
  }
  Index.line("var core = require('./core');");
  Index.line("core.warmup();");
  P.Files.addFile("toolkit/index.js", Index.str());

  addStaticCore(P, "toolkit", 8 + 4 * Size);

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var toolkit = require('toolkit');");
    unsigned Calls = Driver ? NumModules * 2 : NumModules;
    for (unsigned I = 0; I != Calls && I != NumModules * FnsPerModule; ++I) {
      unsigned M = I % NumModules;
      unsigned F = I / NumModules;
      std::string Name =
          std::string(UtilVerbs[(M * FnsPerModule + F) % 10]) + num(M) + "_" +
          num(F);
      W.line("toolkit." + Name + "(" + num(I) + ");");
    }
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}

//===----------------------------------------------------------------------===//
// middleware-chain (connect-style)
//===----------------------------------------------------------------------===//

ProjectSpec jsai::makeMiddlewareChain(Rng &R, unsigned Size) {
  ProjectSpec P;
  P.Pattern = "middleware-chain";
  unsigned NumMiddleware = 2 + Size + unsigned(R.below(2));
  if (NumMiddleware > 6)
    NumMiddleware = 6;

  // The connect-like core: app.use(fn) pushes onto a stack; handle() walks
  // the stack through next() continuations; errors divert to 4-argument
  // error middleware looked up by a computed key.
  {
    SourceWriter W;
    W.line("var core = require('./core');");
    W.line("core.warmup();");
    W.open("module.exports = function createApp() {");
    W.line("var stack = [];");
    W.line("var phases = {};");
    W.open("var app = {");
    W.open("use: function use(fn) {");
    W.line("stack.push(fn);");
    W.line("return app;");
    W.close("},");
    W.open("phase: function phase(name, fn) {");
    W.line("phases['on' + name] = fn;");  // Dynamic write.
    W.line("return app;");
    W.close("},");
    W.open("handle: function handle(req, res) {");
    W.line("var idx = { i: 0 };");
    W.open("function next(err) {");
    W.open("if (err) {");
    W.line("var h = phases['on' + 'error'];");  // Dynamic read.
    W.line("if (h) { h(err, req, res); }");
    W.line("return null;");
    W.close();
    W.line("var layer = stack[idx.i];");
    W.line("if (!layer) { return null; }");
    W.line("idx.i = idx.i + 1;");
    W.line("return layer(req, res, next);");
    W.close();
    W.line("return next();");
    W.close("}");
    W.close("};");
    W.line("return app;");
    W.close("};");
    P.Files.addFile("midware/index.js", W.str());
  }
  addStaticCore(P, "midware", 8 + 4 * Size);
  addFillerModule(P, R, "midware", 0, 3 + Size);

  auto AppSource = [&](bool Driver) {
    SourceWriter W;
    W.line("var createApp = require('midware');");
    W.line("var app = createApp();");
    W.line("var trace = [];");
    for (unsigned I = 0; I != NumMiddleware; ++I) {
      W.open("app.use(function mw" + num(I) + "(req, res, next) {");
      W.line("trace.push(" + num(I) + ");");
      if (I + 1 == NumMiddleware)
        W.line("res.done = true;");
      W.line("return next();");
      W.close("});");
    }
    W.open("app.phase('error', function onError(err, req, res) {");
    W.line("res.failed = true;");
    W.close("});");
    if (Driver) {
      W.line("app.handle({ url: '/' }, {});");
      // Drive the error path too: the error phase handler is stored under
      // a dynamically computed key.
      W.open("app.use(function boom(req, res, next) {");
      W.line("return next(new Error('boom'));");
      W.close("});");
      W.line("app.handle({ url: '/fail' }, {});");
    }
    return W.str();
  };
  Rng Snapshot = R;
  P.Files.addFile("app/main.js", AppSource(false));
  R = Snapshot;
  P.Files.addFile("app/test.js", AppSource(true));
  P.TestDriver = "app/test.js";
  return P;
}
