//===- PatternGenerators.h - Real-world coding-pattern generators -*- C++ -*-===//
///
/// \file
/// Generators for the benchmark corpus. Each produces a multi-package
/// project built around one of the dynamic-object-manipulation patterns the
/// paper identifies in real libraries (plus statically-easy control
/// patterns):
///
///  - express-like: mixin-based API initialization with method-name arrays
///    (Figure 1's pattern, the dominant source of baseline unsoundness);
///  - event-hub:    EventEmitter-style handler registries;
///  - plugin-registry: plugins stored and invoked by computed keys;
///  - oop-library:  constructor functions, prototype methods installed from
///    descriptor tables, util.inherits chains;
///  - delegator:    TJ-style delegation (obj[name].apply(obj, arguments));
///  - eval-init:    API registration through dynamically generated code;
///  - dynamic-loader: feature modules loaded via computed require names;
///  - utility-lib:  plain statically-resolvable exports (control group).
///
/// All generators are deterministic in the passed Rng; Size in {0,1,2}
/// scales module/function counts. Dependency packages contain "vuln_*"
/// functions for the vulnerability-reachability study — some wired into the
/// API paths, most dormant.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CORPUS_PATTERNGENERATORS_H
#define JSAI_CORPUS_PATTERNGENERATORS_H

#include "corpus/Project.h"
#include "support/Rng.h"

namespace jsai {

ProjectSpec makeExpressLike(Rng &R, unsigned Size);
ProjectSpec makeEventHub(Rng &R, unsigned Size);
ProjectSpec makePluginRegistry(Rng &R, unsigned Size);
ProjectSpec makeOopLibrary(Rng &R, unsigned Size);
ProjectSpec makeDelegator(Rng &R, unsigned Size);
ProjectSpec makeEvalInit(Rng &R, unsigned Size);
ProjectSpec makeDynamicLoader(Rng &R, unsigned Size);
ProjectSpec makeUtilityLib(Rng &R, unsigned Size);
/// connect-style middleware chains: handlers stored in a stack and invoked
/// through a next() continuation — higher-order but statically tractable,
/// with the error-handling branch only reachable dynamically.
ProjectSpec makeMiddlewareChain(Rng &R, unsigned Size);

} // namespace jsai

#endif // JSAI_CORPUS_PATTERNGENERATORS_H
