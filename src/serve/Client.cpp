//===- Client.cpp - jsai serve client --------------------------------------===//

#include "serve/Client.h"

#include "driver/Telemetry.h"
#include "support/Version.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace jsai;
using namespace jsai::serve;

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path empty or too long: '" + SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int NewFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (NewFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "cannot connect to '" + SocketPath + "': " + std::strerror(errno);
    ::close(NewFd);
    return false;
  }
  Fd = NewFd;
  Buffer.clear();
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

bool Client::sendLine(const std::string &Line, std::string &Error) {
  std::string Bytes = Line + "\n";
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Sent += size_t(N);
  }
  return true;
}

bool Client::recvLine(std::string &Line, std::string &Error) {
  char Tmp[4096];
  for (;;) {
    size_t Nl = Buffer.find('\n');
    if (Nl != std::string::npos) {
      Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      return true;
    }
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0) {
      Error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Error = "daemon closed the connection";
      return false;
    }
    Buffer.append(Tmp, size_t(N));
  }
}

bool Client::request(const JsonValue &Req, JsonValue &Resp,
                     std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!sendLine(writeJson(Req), Error))
    return false;
  std::string Line;
  if (!recvLine(Line, Error))
    return false;
  if (!parseJson(Line, Resp, Error) || !Resp.isObject()) {
    Error = "malformed response: " + Error;
    return false;
  }
  return true;
}

bool Client::handshake(JsonValue &Out, std::string &Error) {
  JsonValue Req = JsonValue::object();
  Req.set("cmd", JsonValue::str("handshake"));
  if (!request(Req, Out, Error))
    return false;
  if (!Out.boolField("ok")) {
    Error = "handshake rejected: " + Out.stringField("error", "unknown");
    return false;
  }
  std::string DaemonVersion = Out.stringField("version");
  if (DaemonVersion != JsaiVersion) {
    Error = "version mismatch: daemon is " + DaemonVersion + ", client is " +
            JsaiVersion;
    return false;
  }
  std::string Local = runConfigFingerprint(DriverOptions());
  std::string Remote = Out.stringField("config_fingerprint");
  if (Remote != Local) {
    Error = "config fingerprint mismatch: daemon " + Remote + ", client " +
            Local + " — served reports would not be byte-comparable";
    return false;
  }
  return true;
}
