//===- Server.h - Persistent analysis daemon --------------------*- C++ -*-===//
///
/// \file
/// The `jsai serve` daemon: a persistent analysis service listening on a
/// local Unix-domain socket. Requests (one JSON object per line — see
/// Protocol.h) dispatch onto the existing work-stealing CorpusDriver pool,
/// so a long-lived daemon serves `analyze`, `suite`, and `explain` runs
/// while keeping
/// the on-disk artifact cache warm across requests: the second analysis of
/// an edited project reuses the per-module slices of every unchanged
/// import-closure component and re-executes only the edited one.
///
/// Byte-identity contract: the "report" string in an analyze/suite
/// response is exactly the renderReport() bytes a one-shot `jsai suite
/// --report=` run would write. The daemon never rewrites or re-renders
/// reports, so served and local runs are byte-comparable (CI asserts
/// this).
///
/// Concurrency model: connections are accepted and served sequentially —
/// parallelism lives inside a request (the driver's worker pool), which
/// keeps responses strictly ordered per connection and the daemon free of
/// cross-request races. An identical repeated request is answered from an
/// in-memory replay map without re-running (analyze keys include a digest
/// of the project's file contents, so any edit misses the replay map and
/// re-analyzes).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SERVE_SERVER_H
#define JSAI_SERVE_SERVER_H

#include "driver/CorpusDriver.h"
#include "serve/Protocol.h"

#include <atomic>
#include <map>
#include <memory>
#include <string>

namespace jsai {
namespace serve {

/// Daemon configuration. Jobs/Deadlines/Cache/IncludeTimings are the
/// per-request defaults; analyze/suite requests may override jobs,
/// timings, and deadlines but not the cache or the analysis configuration
/// (those are fixed per daemon so the handshake fingerprint stays honest).
struct ServeOptions {
  std::string SocketPath;
  size_t Jobs = 1;
  PhaseDeadlines Deadlines;
  CacheConfig Cache;
  bool IncludeTimings = false;
  SolverSetKind SolverSet = defaultSolverSetKind();
  /// Threads per constraint-solver fixpoint (forwarded to every served
  /// run; results are byte-identical at any value).
  size_t SolverJobs = defaultSolverJobs();
  /// Retain a live, retractable solver per analyzed project and serve
  /// unchanged re-analyze requests by incremental revalidation (retract
  /// the mode-derived constraint group, re-add, re-solve) instead of a
  /// full cold pipeline run. The response served on a warm hit is the
  /// stored cold response — byte-identical by construction; revalidation
  /// acts as a guard and any refusal or metric mismatch falls back to the
  /// cold path. Building a slot re-runs one tracked extended analysis
  /// after the cold request, which is the documented extra cost.
  bool WarmSolver = false;
  /// Optional externally latched interrupt (signal handler). A latched
  /// interrupt stops the accept loop and cancels the in-flight request
  /// through the driver's cancellation path.
  CancellationToken *Interrupt = nullptr;
};

/// Daemon-lifetime counters, reported by the `stats` request.
struct ServeStats {
  uint64_t Requests = 0;
  uint64_t Analyses = 0;
  uint64_t Suites = 0;
  uint64_t Explains = 0;
  uint64_t Errors = 0;
  uint64_t ReplayHits = 0;
  /// Explain requests answered by re-rendering a retained BlameSummary
  /// (sources unchanged, only presentation parameters differ).
  uint64_t ExplainWarmHits = 0;
  /// Warm-solver slots built / requests answered by revalidation /
  /// revalidations that refused or mismatched and fell back to cold.
  uint64_t WarmSolverBuilds = 0;
  uint64_t WarmSolverHits = 0;
  uint64_t WarmSolverFallbacks = 0;
  /// Artifact-cache counters accumulated over every served run.
  CacheStats Cache;
};

/// How a Server::run() loop ended.
enum class ServeExit : uint8_t {
  Shutdown,    ///< A client sent the shutdown request.
  Interrupted, ///< The external interrupt token latched (SIGINT/SIGTERM).
  Error,       ///< The listening socket died.
};

class Server {
public:
  explicit Server(ServeOptions Opts) : Opts(std::move(Opts)) {}
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on the configured socket path. A stale socket file
  /// (left by a dead daemon) is detected by a probe connect and replaced;
  /// a live daemon on the same path is an error. \returns false and fills
  /// \p Error on failure.
  bool start(std::string &Error);

  /// Serves requests until a shutdown request, an interrupt, or a socket
  /// error. start() must have succeeded.
  ServeExit run();

  /// Asks a run() loop on another thread to stop (used by tests and
  /// benches); the loop notices within one poll interval.
  void requestStop() { StopRequested.store(true, std::memory_order_relaxed); }

  /// Handles one request line and returns the response line (no trailing
  /// newline). Public so tests can exercise the protocol without sockets;
  /// \p Shutdown is set when the request asks the daemon to exit.
  std::string handleLine(const std::string &Line, bool &Shutdown);

  const ServeStats &stats() const { return Stats; }
  const ServeOptions &options() const { return Opts; }

private:
  ServeOptions Opts;
  ServeStats Stats;
  int ListenFd = -1;
  std::atomic<bool> StopRequested{false};
  /// Request line (+ content digest for analyze) -> response line.
  std::map<std::string, std::string> Replay;

  /// One retained incremental analysis (--serve-warm-solver=on): the
  /// parsed project with its hints, a solved StaticAnalysis whose
  /// mode-derived constraints are retractable (runTracked), the cold
  /// response bytes it vouches for, and the extended metrics to recheck
  /// after each revalidation.
  struct WarmSlot {
    std::string SrcDigest;
    std::string StoredResponse;
    AnalysisResult StoredExtended;
    std::unique_ptr<ProjectAnalyzer> Analyzer;
    std::unique_ptr<StaticAnalysis> Extended;
  };
  static constexpr size_t MaxWarmSlots = 8;
  /// dir + '\n' + main module -> retained analysis.
  std::map<std::string, WarmSlot> Warm;

  /// One retained blame analysis for the `explain` request: the fully
  /// rendered BlameSummary (self-contained strings, no live solver) plus
  /// the JSONL report bytes of the run that produced it. An explain over
  /// unchanged sources that differs only in presentation parameters
  /// (e.g. "top") re-renders from the slot instead of re-analyzing —
  /// the explain analogue of the warm-solver path.
  struct ExplainSlot {
    std::string SrcDigest;
    BlameSummary Blame;
    std::string Project;
    std::string ReportBytes;
    size_t DynamicEdges = 0;
  };
  /// dir + '\n' + main module + '\n' + driver -> retained blame.
  std::map<std::string, ExplainSlot> WarmExplain;

  bool interrupted() const {
    return Opts.Interrupt && Opts.Interrupt->cancelled();
  }

  /// Serves one accepted connection until the peer closes it. \returns
  /// true when the daemon should shut down afterwards.
  bool handleConnection(int Fd);

  JsonValue handleHandshake();
  JsonValue handleAnalyze(const JsonValue &Req, const std::string &Line);
  JsonValue handleSuite(const JsonValue &Req, const std::string &Line);
  JsonValue handleExplain(const JsonValue &Req, const std::string &Line);
  JsonValue handleStats();

  /// Builds the per-request driver options from the daemon defaults plus
  /// the request's overrides.
  DriverOptions driverOptions(const JsonValue &Req) const;
  void accumulate(const RunSummary &Summary);

  /// Runs one tracked extended analysis for \p Spec and retains it as a
  /// warm slot when it can revalidate and reproduces \p Cold exactly.
  void buildWarmSlot(const std::string &WarmKey, const std::string &SrcDigest,
                     const std::string &Response, const ProjectSpec &Spec,
                     const DriverOptions &DO, const AnalysisResult &Cold);
};

/// The handshake/stats identity block shared by daemon and client:
/// version, config fingerprint (runConfigFingerprint over the daemon's
/// driver defaults), and pid.
JsonValue identityJson(const ServeOptions &Opts);

} // namespace serve
} // namespace jsai

#endif // JSAI_SERVE_SERVER_H
