//===- Protocol.cpp - jsai serve wire protocol -----------------------------===//

#include "serve/Protocol.h"

#include "driver/Telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace jsai;
using namespace jsai::serve;

const JsonValue *JsonValue::field(const std::string &Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &F : Obj)
    if (F.first == Name)
      return &F.second;
  return nullptr;
}

void JsonValue::set(const std::string &Name, JsonValue V) {
  for (auto &F : Obj)
    if (F.first == Name) {
      F.second = std::move(V);
      return;
    }
  Obj.emplace_back(Name, std::move(V));
}

std::string JsonValue::stringField(const std::string &Name,
                                   const std::string &Default) const {
  const JsonValue *F = field(Name);
  return F && F->K == Kind::String ? F->Str : Default;
}

double JsonValue::numberField(const std::string &Name, double Default) const {
  const JsonValue *F = field(Name);
  return F && F->K == Kind::Number ? F->Num : Default;
}

bool JsonValue::boolField(const std::string &Name, bool Default) const {
  const JsonValue *F = field(Name);
  return F && F->K == Kind::Bool ? F->B : Default;
}

namespace {

/// Recursive-descent JSON parser over an in-memory buffer.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return true;
  }

private:
  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;

  bool fail(const std::string &Msg) {
    Error = Msg + " (at offset " + std::to_string(Pos) + ")";
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = 0;
    while (Word[Len])
      ++Len;
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  static void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out += char(Cp);
    } else if (Cp < 0x800) {
      Out += char(0xC0 | (Cp >> 6));
      Out += char(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += char(0xE0 | (Cp >> 12));
      Out += char(0x80 | ((Cp >> 6) & 0x3F));
      Out += char(0x80 | (Cp & 0x3F));
    } else {
      Out += char(0xF0 | (Cp >> 18));
      Out += char(0x80 | ((Cp >> 12) & 0x3F));
      Out += char(0x80 | ((Cp >> 6) & 0x3F));
      Out += char(0x80 | (Cp & 0x3F));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos + I];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = uint32_t(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = uint32_t(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        D = uint32_t(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
      Out = (Out << 4) | D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp = 0;
        if (!parseHex4(Cp))
          return false;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          // Surrogate pair: the low half must follow immediately.
          uint32_t Low = 0;
          if (!consume('\\') || !consume('u') || !parseHex4(Low) ||
              Low < 0xDC00 || Low > 0xDFFF)
            return fail("bad surrogate pair");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Low - 0xDC00);
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected number");
    char *End = nullptr;
    std::string Tok = Text.substr(Start, Pos - Start);
    double V = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = JsonValue::number(V);
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = JsonValue::object();
      skipSpace();
      if (consume('}'))
        return true;
      for (;;) {
        skipSpace();
        std::string Name;
        if (!parseString(Name))
          return false;
        skipSpace();
        if (!consume(':'))
          return fail("expected ':'");
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Obj.emplace_back(std::move(Name), std::move(V));
        skipSpace();
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out = JsonValue::array();
      skipSpace();
      if (consume(']'))
        return true;
      for (;;) {
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipSpace();
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::str(std::move(S));
      return true;
    }
    if (literal("true")) {
      Out = JsonValue::boolean(true);
      return true;
    }
    if (literal("false")) {
      Out = JsonValue::boolean(false);
      return true;
    }
    if (literal("null")) {
      Out = JsonValue::null();
      return true;
    }
    return parseNumber(Out);
  }
};

void writeValue(const JsonValue &V, std::string &Out) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.B ? "true" : "false";
    break;
  case JsonValue::Kind::Number: {
    double N = V.Num;
    if (std::floor(N) == N && std::fabs(N) < 9007199254740992.0) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld", (long long)N);
      Out += Buf;
    } else {
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), "%.17g", N);
      Out += Buf;
    }
    break;
  }
  case JsonValue::Kind::String:
    Out += '"';
    Out += jsonEscape(V.Str);
    Out += '"';
    break;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.Arr) {
      if (!First)
        Out += ',';
      First = false;
      writeValue(E, Out);
    }
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &F : V.Obj) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(F.first);
      Out += "\":";
      writeValue(F.second, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

bool jsai::serve::parseJson(const std::string &Text, JsonValue &Out,
                            std::string &Error) {
  Error.clear();
  return Parser(Text, Error).parse(Out);
}

std::string jsai::serve::writeJson(const JsonValue &V) {
  std::string Out;
  writeValue(V, Out);
  return Out;
}
