//===- Server.cpp - Persistent analysis daemon -----------------------------===//

#include "serve/Server.h"

#include "cache/Sha256.h"
#include "corpus/BenchmarkSuite.h"
#include "driver/Telemetry.h"
#include "support/Version.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace jsai;
using namespace jsai::serve;

namespace {

JsonValue errorJson(const std::string &Message) {
  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(false));
  R.set("error", JsonValue::str(Message));
  return R;
}

JsonValue cacheStatsJson(const CacheStats &C) {
  JsonValue J = JsonValue::object();
  J.set("hits", JsonValue::number(double(C.Hits)));
  J.set("misses", JsonValue::number(double(C.Misses)));
  J.set("corrupt_entries", JsonValue::number(double(C.CorruptEntries)));
  J.set("writes", JsonValue::number(double(C.Writes)));
  J.set("bytes_read", JsonValue::number(double(C.BytesRead)));
  J.set("bytes_written", JsonValue::number(double(C.BytesWritten)));
  return J;
}

JsonValue outcomesJson(const RunAggregates &A) {
  JsonValue J = JsonValue::object();
  J.set("ok", JsonValue::number(double(A.Ok)));
  J.set("degraded", JsonValue::number(double(A.Degraded)));
  J.set("error", JsonValue::number(double(A.Errors)));
  J.set("cancelled", JsonValue::number(double(A.Cancelled)));
  return J;
}

/// Every extraction-level scalar the rendered report derives from the
/// extended analysis. These are pure functions of the solved fixpoint
/// (extract() is idempotent), so a revalidated solve that agrees here
/// reproduced the analysis result the stored report describes. Cumulative
/// solver counters are deliberately excluded: a retract + re-solve
/// legitimately grows them (retraction events, redelivered tokens) even
/// when the fixpoint is identical.
bool metricsMatch(const AnalysisResult &A, const AnalysisResult &B) {
  return A.NumCallSites == B.NumCallSites &&
         A.NumResolvedCallSites == B.NumResolvedCallSites &&
         A.NumMonomorphicCallSites == B.NumMonomorphicCallSites &&
         A.NumCallEdges == B.NumCallEdges && A.NumFunctions == B.NumFunctions &&
         A.NumReachableFunctions == B.NumReachableFunctions &&
         A.NumTokens == B.NumTokens && A.NumVars == B.NumVars;
}

bool sendAll(int Fd, const std::string &Bytes) {
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += size_t(N);
  }
  return true;
}

} // namespace

JsonValue jsai::serve::identityJson(const ServeOptions &Opts) {
  DriverOptions DO;
  DO.SolverSet = Opts.SolverSet;
  JsonValue J = JsonValue::object();
  J.set("version", JsonValue::str(JsaiVersion));
  J.set("config_fingerprint", JsonValue::str(runConfigFingerprint(DO)));
  J.set("pid", JsonValue::number(double(::getpid())));
  return J;
}

Server::~Server() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

bool Server::start(std::string &Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path empty or too long: '" + Opts.SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (errno != EADDRINUSE) {
      Error = std::string("bind: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    // The path exists. Probe it: a successful connect means a live daemon
    // owns it; a refused connect means a stale file we may reclaim.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool Live = Probe >= 0 && ::connect(Probe, reinterpret_cast<sockaddr *>(
                                                   &Addr),
                                        sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Live) {
      Error = "a daemon is already serving on '" + Opts.SocketPath + "'";
      ::close(Fd);
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      Error = std::string("bind: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
  }
  if (::listen(Fd, 8) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }
  ListenFd = Fd;
  return true;
}

ServeExit Server::run() {
  for (;;) {
    if (interrupted())
      return ServeExit::Interrupted;
    if (StopRequested.load(std::memory_order_relaxed))
      return ServeExit::Shutdown;
    pollfd P;
    P.fd = ListenFd;
    P.events = POLLIN;
    P.revents = 0;
    int R = ::poll(&P, 1, /*timeout ms=*/100);
    if (R < 0) {
      if (errno == EINTR)
        continue; // A signal: the next loop iteration checks the token.
      return ServeExit::Error;
    }
    if (R == 0)
      continue;
    int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      return ServeExit::Error;
    }
    bool Shutdown = handleConnection(Client);
    ::close(Client);
    if (Shutdown)
      return ServeExit::Shutdown;
  }
}

bool Server::handleConnection(int Fd) {
  std::string Buf;
  char Tmp[4096];
  for (;;) {
    size_t Nl;
    while ((Nl = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (Line.empty())
        continue;
      bool Shutdown = false;
      std::string Resp = handleLine(Line, Shutdown);
      Resp += '\n';
      if (!sendAll(Fd, Resp))
        return false;
      if (Shutdown)
        return true;
    }
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false; // Peer closed (or error): back to the accept loop.
    Buf.append(Tmp, size_t(N));
  }
}

std::string Server::handleLine(const std::string &Line, bool &Shutdown) {
  ++Stats.Requests;
  JsonValue Req;
  std::string Err;
  if (!parseJson(Line, Req, Err) || !Req.isObject()) {
    ++Stats.Errors;
    return writeJson(errorJson("malformed request: " +
                               (Err.empty() ? "not a JSON object" : Err)));
  }
  std::string Cmd = Req.stringField("cmd");
  if (Cmd == "handshake")
    return writeJson(handleHandshake());
  if (Cmd == "analyze")
    return writeJson(handleAnalyze(Req, Line));
  if (Cmd == "suite")
    return writeJson(handleSuite(Req, Line));
  if (Cmd == "explain")
    return writeJson(handleExplain(Req, Line));
  if (Cmd == "stats")
    return writeJson(handleStats());
  if (Cmd == "shutdown") {
    Shutdown = true;
    JsonValue R = JsonValue::object();
    R.set("ok", JsonValue::boolean(true));
    R.set("shutdown", JsonValue::boolean(true));
    return writeJson(R);
  }
  ++Stats.Errors;
  return writeJson(errorJson("unknown cmd '" + Cmd + "'"));
}

JsonValue Server::handleHandshake() {
  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(true));
  JsonValue Id = identityJson(Opts);
  for (auto &F : Id.Obj)
    R.set(F.first, std::move(F.second));
  R.set("jobs", JsonValue::number(double(Opts.Jobs)));
  R.set("cache", JsonValue::boolean(Opts.Cache.enabled()));
  return R;
}

DriverOptions Server::driverOptions(const JsonValue &Req) const {
  DriverOptions DO;
  DO.Jobs = Opts.Jobs;
  DO.Deadlines = Opts.Deadlines;
  DO.Cache = Opts.Cache;
  DO.IncludeTimings = Opts.IncludeTimings;
  DO.SolverSet = Opts.SolverSet;
  DO.SolverJobs = Opts.SolverJobs;
  DO.Interrupt = Opts.Interrupt;
  if (const JsonValue *J = Req.field("jobs"))
    if (J->K == JsonValue::Kind::Number && J->Num >= 0)
      DO.Jobs = size_t(J->Num);
  if (const JsonValue *T = Req.field("timings"))
    if (T->K == JsonValue::Kind::Bool)
      DO.IncludeTimings = T->B;
  if (const JsonValue *D = Req.field("deadline_approx"))
    if (D->K == JsonValue::Kind::Number)
      DO.Deadlines.ApproxSeconds = D->Num;
  if (const JsonValue *D = Req.field("deadline_analysis"))
    if (D->K == JsonValue::Kind::Number)
      DO.Deadlines.AnalysisSeconds = D->Num;
  return DO;
}

void Server::accumulate(const RunSummary &Summary) {
  if (!Summary.CacheEnabled)
    return;
  const CacheStats &C = Summary.Cache;
  Stats.Cache.Hits += C.Hits;
  Stats.Cache.Misses += C.Misses;
  Stats.Cache.CorruptEntries += C.CorruptEntries;
  Stats.Cache.Writes += C.Writes;
  Stats.Cache.WriteFailures += C.WriteFailures;
  Stats.Cache.BytesRead += C.BytesRead;
  Stats.Cache.BytesWritten += C.BytesWritten;
  Stats.Cache.DeserializeSeconds += C.DeserializeSeconds;
}

JsonValue Server::handleAnalyze(const JsonValue &Req, const std::string &Line) {
  std::string Dir = Req.stringField("dir");
  if (Dir.empty()) {
    ++Stats.Errors;
    return errorJson("analyze requires \"dir\"");
  }
  ProjectSpec Spec;
  if (Spec.Files.addDirectory(Dir) == 0) {
    ++Stats.Errors;
    return errorJson("no .js files under '" + Dir + "'");
  }
  Spec.Name = Dir;
  Spec.MainModule = Req.stringField("main", "app/main.js");
  if (!Spec.Files.exists(Spec.MainModule)) {
    ++Stats.Errors;
    return errorJson("main module '" + Spec.MainModule + "' not found");
  }

  // Source digest over every file the project currently holds, so any
  // on-disk edit misses both the replay map and the warm slot.
  Sha256 SrcH;
  for (const std::string &Path : Spec.Files.allPaths()) {
    const std::string &Source = Spec.Files.read(Path);
    SrcH.update(Path);
    SrcH.update("\0", 1);
    SrcH.update(Source);
    SrcH.update("\0", 1);
  }
  std::string SrcDigest = Sha256::hex(SrcH.digest());

  // Replay key: the request line plus the source digest.
  Sha256 H;
  H.update(Line);
  H.update("\n", 1);
  H.update(SrcDigest);
  std::string Key = "analyze:" + Sha256::hex(H.digest());
  auto It = Replay.find(Key);
  if (It != Replay.end()) {
    ++Stats.ReplayHits;
    JsonValue Cached;
    std::string Err;
    parseJson(It->second, Cached, Err);
    return Cached;
  }

  DriverOptions DO = driverOptions(Req);

  // Warm-solver path: the exact request line is new (so the replay map
  // missed) but the sources are unchanged and the report bytes cannot
  // depend on what differs (jobs counts; timings and deadlines are
  // guarded below). Revalidate the retained solver — retract the
  // mode-derived group, re-add it, re-solve incrementally — and serve the
  // stored cold response only when the re-solved metrics reproduce it
  // exactly. Any refusal or mismatch drops the slot and falls through to
  // the cold path.
  std::string WarmKey = Dir + '\n' + Spec.MainModule;
  if (Opts.WarmSolver && !DO.IncludeTimings && !DO.Deadlines.any()) {
    auto WIt = Warm.find(WarmKey);
    if (WIt != Warm.end() && WIt->second.SrcDigest == SrcDigest) {
      WarmSlot &Slot = WIt->second;
      std::optional<AnalysisResult> Re = Slot.Extended->canRevalidate()
                                             ? Slot.Extended->revalidate()
                                             : std::nullopt;
      if (Re && metricsMatch(*Re, Slot.StoredExtended)) {
        ++Stats.WarmSolverHits;
        JsonValue Cached;
        std::string Err;
        parseJson(Slot.StoredResponse, Cached, Err);
        Replay.emplace(Key, Slot.StoredResponse);
        return Cached;
      }
      ++Stats.WarmSolverFallbacks;
      Warm.erase(WIt);
    }
  }

  RunSummary Summary = CorpusDriver(DO).run({Spec});
  accumulate(Summary);
  ++Stats.Analyses;

  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(true));
  R.set("project", JsonValue::str(Spec.Name));
  R.set("outcome",
        JsonValue::str(projectOutcomeName(Summary.Jobs[0].Report.Outcome)));
  R.set("report", JsonValue::str(renderReport(Summary, DO)));
  bool Stored = Summary.Totals.Cancelled == 0 && !interrupted();
  std::string Resp = writeJson(R);
  if (Stored)
    Replay.emplace(Key, Resp);
  if (Stored && Opts.WarmSolver && !DO.IncludeTimings &&
      !DO.Deadlines.any() &&
      Summary.Jobs[0].Report.Outcome == ProjectOutcome::Ok)
    buildWarmSlot(WarmKey, SrcDigest, Resp, Spec, DO,
                  Summary.Jobs[0].Report.Extended);
  return R;
}

void Server::buildWarmSlot(const std::string &WarmKey,
                           const std::string &SrcDigest,
                           const std::string &Response,
                           const ProjectSpec &Spec, const DriverOptions &DO,
                           const AnalysisResult &Cold) {
  // The documented extra cost of --serve-warm-solver=on: one additional
  // parse + approx + tracked extended solve after the cold request, so a
  // live solver with a retractable constraint group outlives it.
  WarmSlot Slot;
  Slot.SrcDigest = SrcDigest;
  Slot.StoredResponse = Response;
  Slot.Analyzer = std::make_unique<ProjectAnalyzer>(Spec, DO.Approx, nullptr);
  const HintSet &Hints = Slot.Analyzer->hints();
  AnalysisOptions AO;
  AO.Mode = AnalysisMode::Hints;
  AO.SolverSet = DO.SolverSet;
  AO.SolverJobs = DO.SolverJobs;
  Slot.Extended =
      std::make_unique<StaticAnalysis>(Slot.Analyzer->loader(), AO, &Hints);
  Slot.StoredExtended = Slot.Extended->runTracked();
  // A solve that collapsed a cycle while tracking cannot retract, and a
  // tracked solve that diverges from the cold pipeline run must never
  // vouch for its response: both discard the slot silently. At build time
  // the solver counters must match too — runTracked follows the same
  // build/apply/solve sequence as the cold run, so any divergence here
  // means the slot does not model the run it would vouch for.
  if (!Slot.Extended->canRevalidate() ||
      !metricsMatch(Slot.StoredExtended, Cold) ||
      !(Slot.StoredExtended.Solver == Cold.Solver))
    return;
  if (Warm.size() >= MaxWarmSlots && Warm.find(WarmKey) == Warm.end())
    Warm.erase(Warm.begin());
  ++Stats.WarmSolverBuilds;
  Warm.insert_or_assign(WarmKey, std::move(Slot));
}

JsonValue Server::handleExplain(const JsonValue &Req,
                                const std::string &Line) {
  std::string Dir = Req.stringField("dir");
  if (Dir.empty()) {
    ++Stats.Errors;
    return errorJson("explain requires \"dir\"");
  }
  ProjectSpec Spec;
  if (Spec.Files.addDirectory(Dir) == 0) {
    ++Stats.Errors;
    return errorJson("no .js files under '" + Dir + "'");
  }
  Spec.Name = Dir;
  Spec.MainModule = Req.stringField("main", "app/main.js");
  if (!Spec.Files.exists(Spec.MainModule)) {
    ++Stats.Errors;
    return errorJson("main module '" + Spec.MainModule + "' not found");
  }
  Spec.TestDriver = Req.stringField("driver", Spec.MainModule);
  if (!Spec.Files.exists(Spec.TestDriver)) {
    ++Stats.Errors;
    return errorJson("driver module '" + Spec.TestDriver + "' not found");
  }
  size_t Top = 0;
  if (const JsonValue *T = Req.field("top"))
    if (T->K == JsonValue::Kind::Number && T->Num > 0)
      Top = size_t(T->Num);

  // Same source-digest discipline as analyze: any on-disk edit misses
  // both the replay map and the warm explain slot.
  Sha256 SrcH;
  for (const std::string &Path : Spec.Files.allPaths()) {
    const std::string &Source = Spec.Files.read(Path);
    SrcH.update(Path);
    SrcH.update("\0", 1);
    SrcH.update(Source);
    SrcH.update("\0", 1);
  }
  std::string SrcDigest = Sha256::hex(SrcH.digest());

  Sha256 H;
  H.update(Line);
  H.update("\n", 1);
  H.update(SrcDigest);
  std::string Key = "explain:" + Sha256::hex(H.digest());
  auto It = Replay.find(Key);
  if (It != Replay.end()) {
    ++Stats.ReplayHits;
    JsonValue Cached;
    std::string Err;
    parseJson(It->second, Cached, Err);
    return Cached;
  }

  DriverOptions DO = driverOptions(Req);
  bool Deterministic = !DO.IncludeTimings && !DO.Deadlines.any();

  auto respond = [&](const ExplainSlot &Slot) {
    JsonValue R = JsonValue::object();
    R.set("ok", JsonValue::boolean(true));
    R.set("project", JsonValue::str(Slot.Project));
    R.set("dynamic_edges", JsonValue::number(double(Slot.DynamicEdges)));
    R.set("missed_edges",
          JsonValue::number(double(Slot.Blame.MissedEdges)));
    R.set("spurious_edges",
          JsonValue::number(double(Slot.Blame.SpuriousEdges)));
    R.set("output", JsonValue::str(renderBlameReport(Slot.Blame, Top)));
    R.set("report", JsonValue::str(Slot.ReportBytes));
    if (!interrupted())
      Replay.emplace(Key, writeJson(R));
    return R;
  };

  // Warm path: identical sources, different presentation (e.g. another
  // --top=). The BlameSummary is self-contained, so the answer is a pure
  // re-render of the retained slot.
  std::string WarmKey = Dir + '\n' + Spec.MainModule + '\n' + Spec.TestDriver;
  if (Deterministic) {
    auto WIt = WarmExplain.find(WarmKey);
    if (WIt != WarmExplain.end() && WIt->second.SrcDigest == SrcDigest) {
      ++Stats.ExplainWarmHits;
      return respond(WIt->second);
    }
  }

  try {
    ProjectAnalyzer Analyzer(Spec, DO.Approx, nullptr);
    if (Analyzer.diagnostics().hasErrors()) {
      ++Stats.Errors;
      return errorJson("project has parse errors");
    }
    const CallGraph &Dyn = Analyzer.dynamicCallGraph();

    AnalysisOptions AO;
    AO.Mode = AnalysisMode::Hints;
    AO.SolverSet = DO.SolverSet;
    AO.SolverJobs = DO.SolverJobs;
    AO.Explain = true;
    std::unique_ptr<StaticAnalysis> SA = Analyzer.createAnalysis(AO);
    AnalysisResult Res = SA->run();

    ExplainInputs In;
    In.StaticCG = &Res.CG;
    In.DynamicCG = &Dyn;
    In.ApproxAborts = Analyzer.approxStats().NumAborts;

    ExplainSlot Slot;
    Slot.SrcDigest = SrcDigest;
    Slot.Project = Spec.Name;
    Slot.DynamicEdges = Dyn.numEdges();
    Slot.Blame = summarizeBlame(SA->explainView(), In);

    // The JSONL report a local `jsai explain --report=` run would write:
    // one job record, the manifest, then the blame record.
    JobResult Job;
    ProjectReport &PR = Job.Report;
    PR.Name = Spec.Name;
    PR.Pattern = Spec.Pattern;
    PR.NumPackages = Analyzer.numPackages();
    PR.NumModules = Analyzer.numModules();
    PR.NumFunctions = Analyzer.numFunctions();
    PR.CodeBytes = Analyzer.codeBytes();
    PR.Approx = Analyzer.approxStats();
    PR.NumHints = Analyzer.hints().size();
    PR.Extended = Res;
    PR.HasDynamicCG = true;
    PR.DynamicEdges = Dyn.numEdges();
    PR.ExtendedRP = compareCallGraphs(Res.CG, Dyn);
    PR.HasBlame = true;
    PR.Blame = Slot.Blame;
    RunSummary Summary;
    Summary.Jobs.push_back(std::move(Job));
    RunAggregates &Agg = Summary.Totals;
    const ProjectReport &JR = Summary.Jobs[0].Report;
    Agg.Projects = 1;
    Agg.Ok = 1;
    Agg.ExtendedCallEdges = JR.Extended.NumCallEdges;
    Agg.ExtendedReachable = JR.Extended.NumReachableFunctions;
    Agg.Hints = JR.NumHints;
    Agg.SolverTokensPropagated = JR.Extended.Solver.NumTokensPropagated;
    Slot.ReportBytes = renderReport(Summary, DO);

    ++Stats.Explains;
    JsonValue R = respond(Slot);
    if (Deterministic && !interrupted()) {
      if (WarmExplain.size() >= MaxWarmSlots &&
          WarmExplain.find(WarmKey) == WarmExplain.end())
        WarmExplain.erase(WarmExplain.begin());
      WarmExplain.insert_or_assign(WarmKey, std::move(Slot));
    }
    return R;
  } catch (const std::exception &E) {
    ++Stats.Errors;
    return errorJson(std::string("explain failed: ") + E.what());
  }
}

JsonValue Server::handleSuite(const JsonValue &Req, const std::string &Line) {
  std::string Key = "suite:" + Line;
  auto It = Replay.find(Key);
  if (It != Replay.end()) {
    ++Stats.ReplayHits;
    JsonValue Cached;
    std::string Err;
    parseJson(It->second, Cached, Err);
    return Cached;
  }

  DriverOptions DO = driverOptions(Req);
  RunSummary Summary = CorpusDriver(DO).run(buildBenchmarkSuite());
  accumulate(Summary);
  ++Stats.Suites;

  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(true));
  R.set("projects", JsonValue::number(double(Summary.Totals.Projects)));
  R.set("outcomes", outcomesJson(Summary.Totals));
  if (Summary.CacheEnabled)
    R.set("cache", cacheStatsJson(Summary.Cache));
  R.set("report", JsonValue::str(renderReport(Summary, DO)));
  if (Summary.Totals.Cancelled == 0 && !interrupted())
    Replay.emplace(Key, writeJson(R));
  return R;
}

JsonValue Server::handleStats() {
  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(true));
  JsonValue Id = identityJson(Opts);
  for (auto &F : Id.Obj)
    R.set(F.first, std::move(F.second));
  R.set("requests", JsonValue::number(double(Stats.Requests)));
  R.set("analyses", JsonValue::number(double(Stats.Analyses)));
  R.set("suites", JsonValue::number(double(Stats.Suites)));
  R.set("explains", JsonValue::number(double(Stats.Explains)));
  R.set("errors", JsonValue::number(double(Stats.Errors)));
  R.set("replay_hits", JsonValue::number(double(Stats.ReplayHits)));
  R.set("explain_warm_hits",
        JsonValue::number(double(Stats.ExplainWarmHits)));
  R.set("warm_solver_builds", JsonValue::number(double(Stats.WarmSolverBuilds)));
  R.set("warm_solver_hits", JsonValue::number(double(Stats.WarmSolverHits)));
  R.set("warm_solver_fallbacks",
        JsonValue::number(double(Stats.WarmSolverFallbacks)));
  R.set("cache", cacheStatsJson(Stats.Cache));
  return R;
}
