//===- Protocol.h - jsai serve wire protocol --------------------*- C++ -*-===//
///
/// \file
/// The `jsai serve` wire protocol: newline-delimited JSON over a local
/// Unix-domain stream socket. Each request is one JSON object on one line;
/// the daemon answers with exactly one JSON object on one line. The schema
/// is documented in README.md ("Analysis service").
///
/// The JsonValue here is a deliberately small document model — objects
/// preserve insertion order so responses render deterministically, numbers
/// are doubles (integral values round-trip exactly up to 2^53, far beyond
/// any counter the protocol carries), and parsing accepts exactly the JSON
/// this repo emits plus standard escapes. No external JSON dependency.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SERVE_PROTOCOL_H
#define JSAI_SERVE_PROTOCOL_H

#include <string>
#include <utility>
#include <vector>

namespace jsai {
namespace serve {

/// One JSON document node.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  /// Insertion-ordered: writeJson renders fields in the order they were
  /// set, so a given request/response always serializes identically.
  std::vector<std::pair<std::string, JsonValue>> Obj;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V) {
    JsonValue J;
    J.K = Kind::Bool;
    J.B = V;
    return J;
  }
  static JsonValue number(double V) {
    JsonValue J;
    J.K = Kind::Number;
    J.Num = V;
    return J;
  }
  static JsonValue str(std::string V) {
    JsonValue J;
    J.K = Kind::String;
    J.Str = std::move(V);
    return J;
  }
  static JsonValue array() {
    JsonValue J;
    J.K = Kind::Array;
    return J;
  }
  static JsonValue object() {
    JsonValue J;
    J.K = Kind::Object;
    return J;
  }

  bool isObject() const { return K == Kind::Object; }

  /// Object field lookup (first match). \returns nullptr when absent or
  /// this is not an object.
  const JsonValue *field(const std::string &Name) const;

  /// Sets (or overwrites) an object field, keeping insertion order.
  void set(const std::string &Name, JsonValue V);

  // Typed field accessors with defaults; a missing or mistyped field
  // yields the default (the server validates required fields explicitly).
  std::string stringField(const std::string &Name,
                          const std::string &Default = "") const;
  double numberField(const std::string &Name, double Default = 0) const;
  bool boolField(const std::string &Name, bool Default = false) const;
};

/// Parses one JSON document from \p Text (trailing whitespace allowed,
/// trailing garbage rejected). \returns false and fills \p Error on
/// malformed input.
bool parseJson(const std::string &Text, JsonValue &Out, std::string &Error);

/// Renders \p V as compact single-line JSON (no spaces, no trailing
/// newline). Deterministic: field order is insertion order.
std::string writeJson(const JsonValue &V);

} // namespace serve
} // namespace jsai

#endif // JSAI_SERVE_PROTOCOL_H
