//===- Client.h - jsai serve client ----------------------------*- C++ -*-===//
///
/// \file
/// Client side of the `jsai serve` protocol: connect to a daemon's Unix
/// socket, exchange one JSON line per request/response, and verify on
/// handshake that the daemon would produce the same report bytes this
/// build would locally (version + config fingerprint match).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SERVE_CLIENT_H
#define JSAI_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <string>

namespace jsai {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon at \p SocketPath. \returns false and fills
  /// \p Error on failure.
  bool connect(const std::string &SocketPath, std::string &Error);

  /// Sends the handshake request and fills \p Out with the daemon's
  /// identity. Fails when the daemon's version or config fingerprint
  /// differs from this build's — a mismatched pair could silently produce
  /// different report bytes, which defeats the service's byte-identity
  /// contract.
  bool handshake(JsonValue &Out, std::string &Error);

  /// Sends \p Req as one line and waits for the one-line response. Fails
  /// on transport errors or malformed responses; a well-formed
  /// `{"ok":false,...}` response is returned as success (the caller
  /// inspects "ok").
  bool request(const JsonValue &Req, JsonValue &Resp, std::string &Error);

  bool connected() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
  /// Unconsumed bytes read past the last response line.
  std::string Buffer;

  bool sendLine(const std::string &Line, std::string &Error);
  bool recvLine(std::string &Line, std::string &Error);
};

} // namespace serve
} // namespace jsai

#endif // JSAI_SERVE_CLIENT_H
