//===- Telemetry.h - JSONL run telemetry ------------------------*- C++ -*-===//
///
/// \file
/// Structured telemetry for corpus runs: one JSONL record per project (in
/// project order) followed by one run-manifest record with aggregate
/// metrics. The record schema is documented in README.md ("JSONL run
/// telemetry").
///
/// Determinism contract: by default every emitted field is a deterministic
/// function of the corpus and the configuration — wall-clock timings, the
/// jobs count, and other run-environment facts are emitted only when
/// DriverOptions::IncludeTimings is set. A deadline-free report is
/// therefore byte-identical across repeated runs and across any --jobs
/// value.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_DRIVER_TELEMETRY_H
#define JSAI_DRIVER_TELEMETRY_H

#include "driver/CorpusDriver.h"

#include <string>

namespace jsai {

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Short hex fingerprint of the run configuration facts that determine the
/// default (timing-free) report bytes: the tool version, the cache format,
/// and the approx tunables. Deliberately EXCLUDES the solver-set, the
/// interpreter engine, the jobs count, and deadlines — by the repo's
/// cross-representation byte-identity contracts none of those may change a
/// default report, so none may change its fingerprint. Emitted ungated in
/// the manifest and echoed in the serve handshake so a client can tell
/// whether a daemon would produce the same bytes it would locally.
std::string runConfigFingerprint(const DriverOptions &Opts);

/// One project's JSONL record (no trailing newline).
std::string jobRecordJson(const JobResult &Job, bool IncludeTimings);

/// One project's blame record (no trailing newline) — the `{"blame":...}`
/// JSONL line emitted after the manifest for every project analyzed with
/// --explain=record that has a dynamic call graph. Misses are ordered by
/// (cause rank, site, callee, callee-variable id); blame records follow
/// project order. Stripping every line containing `"blame"` from a
/// recording run's report yields the --explain=off report byte-for-byte.
std::string blameRecordJson(const JobResult &Job);

/// The run-manifest JSONL record (no trailing newline).
std::string manifestJson(const RunSummary &Summary, const DriverOptions &Opts);

/// The full report: one record per job in project order, then the
/// manifest, newline-terminated.
std::string renderReport(const RunSummary &Summary, const DriverOptions &Opts);

/// Writes renderReport() to \p Path. \returns false when the file cannot
/// be opened.
bool writeReport(const std::string &Path, const RunSummary &Summary,
                 const DriverOptions &Opts);

} // namespace jsai

#endif // JSAI_DRIVER_TELEMETRY_H
