//===- Telemetry.cpp - JSONL run telemetry --------------------------------===//

#include "driver/Telemetry.h"

#include "cache/Serialization.h"
#include "cache/Sha256.h"
#include "support/Version.h"
#include "vm/EngineKind.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace jsai;

namespace {

/// Stable decimal rendering for timing fields (always 6 fractional
/// digits, no locale dependence).
std::string jsonSeconds(double S) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6f", S);
  return Buf;
}

/// Recall/precision fractions, same stable rendering.
std::string jsonFraction(double F) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6f", F);
  return Buf;
}

std::string num(uint64_t N) { return std::to_string(N); }

/// The per-mode analysis metric object shared by "baseline" and
/// "extended".
std::string analysisJson(const AnalysisResult &R) {
  std::string Out = "{";
  Out += "\"call_edges\":" + num(R.NumCallEdges);
  Out += ",\"reachable_functions\":" + num(R.NumReachableFunctions);
  Out += ",\"call_sites\":" + num(R.NumCallSites);
  Out += ",\"resolved_call_sites\":" + num(R.NumResolvedCallSites);
  Out += ",\"monomorphic_call_sites\":" + num(R.NumMonomorphicCallSites);
  Out += "}";
  return Out;
}

std::string solverJson(const SolverStats &S, bool IncludeMemory,
                       const SolverParallelStats *Par = nullptr) {
  std::string Out = "{";
  Out += "\"edges\":" + num(S.NumEdges);
  Out += ",\"duplicate_edges\":" + num(S.NumDuplicateEdges);
  Out += ",\"listeners\":" + num(S.NumListeners);
  Out += ",\"batches_flushed\":" + num(S.NumBatchesFlushed);
  Out += ",\"cycles_collapsed\":" + num(S.NumCyclesCollapsed);
  Out += ",\"vars_merged\":" + num(S.NumVarsMerged);
  Out += ",\"tokens_propagated\":" + num(S.NumTokensPropagated);
  if (IncludeMemory) {
    // Set-memory accounting is representation-dependent (dense vs adaptive
    // must still produce byte-identical default reports), so it rides
    // behind the same gate as timings.
    Out += ",\"set_bytes_live\":" + num(S.SetBytesLive);
    Out += ",\"set_bytes_peak\":" + num(S.SetBytesPeak);
    Out += ",\"set_promotions_sparse\":" + num(S.SetTierPromotionsSparse);
    Out += ",\"set_promotions_dense\":" + num(S.SetTierPromotionsDense);
    Out += ",\"sets_small\":" + num(S.SetsSmall);
    Out += ",\"sets_sparse\":" + num(S.SetsSparse);
    Out += ",\"sets_dense\":" + num(S.SetsDense);
  }
  if (Par) {
    // Wave/thread accounting depends on the solver-jobs configuration
    // (the solved fixpoint and every field above do not), so it rides
    // behind the timings gate like the other config-dependent extras.
    Out += ",\"jobs\":" + num(Par->Jobs);
    Out += ",\"waves\":" + num(Par->NumWaves);
    Out += ",\"wave_pops\":" + num(Par->NumWavePops);
    Out += ",\"precomputed_edges\":" + num(Par->NumPrecomputedEdges);
    Out += ",\"stale_slots\":" + num(Par->NumStaleSlots);
  }
  Out += "}";
  return Out;
}

} // namespace

std::string jsai::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string jsai::runConfigFingerprint(const DriverOptions &Opts) {
  // Render only output-determining facts; see the header for why solver
  // set, engine, jobs, and deadlines are absent.
  std::ostringstream Facts;
  Facts << "jsai-run-config v1"
        << ";version=" << JsaiVersion << ";cache-format=" << CacheFormatVersion
        << ";approx:depth=" << Opts.Approx.MaxCallDepth
        << ",loops=" << Opts.Approx.MaxLoopIterations
        << ",steps=" << Opts.Approx.MaxSteps
        << ",module-hints=" << (Opts.Approx.CollectModuleHints ? 1 : 0)
        << ",ic=" << (Opts.Approx.EnableInlineCaches ? 1 : 0);
  Sha256 H;
  H.update(Facts.str());
  return Sha256::hex(H.digest()).substr(0, 16);
}

std::string jsai::jobRecordJson(const JobResult &Job, bool IncludeTimings) {
  const ProjectReport &R = Job.Report;
  std::string Out = "{";
  Out += "\"project\":\"" + jsonEscape(R.Name) + "\"";
  Out += ",\"pattern\":\"" + jsonEscape(R.Pattern) + "\"";
  Out += ",\"outcome\":\"";
  Out += projectOutcomeName(R.Outcome);
  Out += "\"";
  if (!R.DegradedPhase.empty())
    Out += ",\"degraded_phase\":\"" + jsonEscape(R.DegradedPhase) + "\"";
  if (!Job.Error.empty())
    Out += ",\"error\":\"" + jsonEscape(Job.Error) + "\"";
  Out += ",\"packages\":" + num(R.NumPackages);
  Out += ",\"modules\":" + num(R.NumModules);
  Out += ",\"functions\":" + num(R.NumFunctions);
  Out += ",\"code_bytes\":" + num(R.CodeBytes);
  Out += ",\"hints\":" + num(R.NumHints);
  Out += ",\"approx\":{";
  Out += "\"functions_visited\":" + num(R.Approx.NumFunctionsVisited);
  Out += ",\"functions_total\":" + num(R.Approx.NumFunctionsTotal);
  Out += ",\"modules_loaded\":" + num(R.Approx.NumModulesLoaded);
  Out += ",\"forced_executions\":" + num(R.Approx.NumForcedExecutions);
  Out += ",\"aborts\":" + num(R.Approx.NumAborts);
  Out += "}";
  Out += ",\"interp\":{";
  Out += "\"ic_get_hits\":" + num(R.Approx.Interp.ICGetHits);
  Out += ",\"ic_get_misses\":" + num(R.Approx.Interp.ICGetMisses);
  Out += ",\"ic_set_hits\":" + num(R.Approx.Interp.ICSetHits);
  Out += ",\"ic_set_misses\":" + num(R.Approx.Interp.ICSetMisses);
  Out += ",\"ic_hit_rate\":" + jsonFraction(R.Approx.Interp.icHitRate());
  Out += ",\"shape_transitions\":" + num(R.Approx.Interp.ShapeTransitions);
  Out += ",\"shapes_created\":" + num(R.Approx.Interp.ShapesCreated);
  Out += ",\"dictionary_conversions\":" +
         num(R.Approx.Interp.DictionaryConversions);
  if (IncludeTimings) {
    // Which execution engine ran (tree walker or bytecode VM). Engine
    // choice must never change any metric field, so — like solver memory
    // accounting — the engine-identifying field rides behind the timings
    // gate to keep default reports byte-identical across engines.
    Out += ",\"mode\":\"";
    Out += interpEngineKindName(defaultInterpEngineKind());
    Out += "\"";
    // Bytecode optimizer counters (all zeros under ast or --vm-opt=off,
    // except chunk_compiles/chunk_reuses which any VM run accumulates).
    // Same rule as "mode": these describe execution strategy, never
    // analysis output, so they stay behind the timings gate.
    Out += ",\"vm_opt\":\"";
    Out += vmOptModeName(defaultVmOptEnabled());
    Out += "\"";
    Out += ",\"chunk_compiles\":" + num(R.VmOpt.ChunkCompiles);
    Out += ",\"chunk_reuses\":" + num(R.VmOpt.ChunkReuses);
    Out += ",\"fused_insns\":" + num(R.VmOpt.FusedInsns);
    Out += ",\"quickened_sites\":" + num(R.VmOpt.QuickenedSites);
    Out += ",\"deopts\":" + num(R.VmOpt.Deopts);
  }
  Out += "}";
  Out += ",\"baseline\":" + analysisJson(R.Baseline);
  Out += ",\"extended\":" + analysisJson(R.Extended);
  Out += ",\"solver\":" +
         solverJson(R.Extended.Solver, IncludeTimings,
                    IncludeTimings ? &R.Extended.SolverParallel : nullptr);
  if (R.HasDynamicCG) {
    Out += ",\"dynamic\":{";
    Out += "\"edges\":" + num(R.DynamicEdges);
    Out += ",\"baseline_recall\":" + jsonFraction(R.BaselineRP.Recall);
    Out += ",\"baseline_precision\":" + jsonFraction(R.BaselineRP.Precision);
    Out += ",\"extended_recall\":" + jsonFraction(R.ExtendedRP.Recall);
    Out += ",\"extended_precision\":" + jsonFraction(R.ExtendedRP.Precision);
    Out += "}";
  }
  if (IncludeTimings) {
    Out += ",\"timings\":{";
    Out += "\"parse_s\":" + jsonSeconds(R.ParseSeconds);
    Out += ",\"baseline_s\":" + jsonSeconds(R.BaselineSeconds);
    Out += ",\"approx_s\":" + jsonSeconds(R.ApproxSeconds);
    Out += ",\"extended_s\":" + jsonSeconds(R.ExtendedSeconds);
    Out += ",\"total_s\":" + jsonSeconds(Job.TotalSeconds);
    Out += "}";
  }
  Out += "}";
  return Out;
}

std::string jsai::blameRecordJson(const JobResult &Job) {
  const ProjectReport &R = Job.Report;
  const BlameSummary &B = R.Blame;
  std::string Out = "{\"blame\":{";
  Out += "\"project\":\"" + jsonEscape(R.Name) + "\"";
  Out += ",\"dynamic_edges\":" + num(B.DynamicEdges);
  Out += ",\"missed_edges\":" + num(B.MissedEdges);
  Out += ",\"spurious_edges\":" + num(B.SpuriousEdges);
  Out += ",\"causes\":{";
  for (size_t K = 0; K != size_t(CauseKind::NumCauseKinds); ++K) {
    if (K != 0)
      Out += ",";
    Out += "\"" + std::string(causeName(CauseKind(K))) +
           "\":" + num(B.CauseHist[K]);
  }
  Out += "}";
  Out += ",\"misses\":[";
  for (size_t I = 0; I != B.Misses.size(); ++I) {
    const MissRecord &M = B.Misses[I];
    if (I != 0)
      Out += ",";
    Out += "{\"site\":\"" + jsonEscape(M.Site) + "\"";
    Out += ",\"callee\":\"" + jsonEscape(M.Callee) + "\"";
    Out += ",\"cause\":\"";
    Out += causeName(M.Cause);
    Out += "\"";
    Out += ",\"detail\":\"" + jsonEscape(M.Detail) + "\"";
    Out += ",\"witness\":[";
    for (size_t W = 0; W != M.Witness.size(); ++W) {
      if (W != 0)
        Out += ",";
      Out += "\"" + jsonEscape(M.Witness[W]) + "\"";
    }
    Out += "]}";
  }
  Out += "]";
  Out += ",\"origins\":[";
  for (size_t I = 0; I != B.RankedOrigins.size(); ++I) {
    if (I != 0)
      Out += ",";
    Out += "{\"origin\":\"" + jsonEscape(B.RankedOrigins[I].Origin) +
           "\",\"spurious_tokens\":" + num(B.RankedOrigins[I].SpuriousTokens) +
           "}";
  }
  Out += "]";
  Out += "}}";
  return Out;
}

std::string jsai::manifestJson(const RunSummary &Summary,
                               const DriverOptions &Opts) {
  const RunAggregates &A = Summary.Totals;
  std::string Out = "{\"manifest\":{";
  Out += "\"schema\":2";
  // Both fields are deterministic functions of the build and the options
  // (constant across runs and jobs counts), so they stay outside the
  // timings gate.
  Out += ",\"version\":\"";
  Out += JsaiVersion;
  Out += "\"";
  Out += ",\"config_fingerprint\":\"" + runConfigFingerprint(Opts) + "\"";
  Out += ",\"projects\":" + num(A.Projects);
  Out += ",\"outcomes\":{\"ok\":" + num(A.Ok) +
         ",\"degraded\":" + num(A.Degraded) + ",\"error\":" + num(A.Errors) +
         ",\"cancelled\":" + num(A.Cancelled) + "}";
  Out += ",\"deadlines\":{\"approx_s\":" +
         jsonSeconds(Opts.Deadlines.ApproxSeconds) +
         ",\"analysis_s\":" + jsonSeconds(Opts.Deadlines.AnalysisSeconds) +
         "}";
  Out += ",\"baseline_call_edges\":" + num(A.BaselineCallEdges);
  Out += ",\"extended_call_edges\":" + num(A.ExtendedCallEdges);
  Out += ",\"baseline_reachable_functions\":" + num(A.BaselineReachable);
  Out += ",\"extended_reachable_functions\":" + num(A.ExtendedReachable);
  Out += ",\"hints\":" + num(A.Hints);
  Out += ",\"solver_tokens_propagated\":" + num(A.SolverTokensPropagated);
  if (Opts.IncludeTimings) {
    // Run-environment facts live behind the same gate as timings: both
    // vary across runs, and the default report must not.
    Out += ",\"jobs\":" + num(Summary.Workers);
    Out += ",\"wall_s\":" + jsonSeconds(Summary.WallSeconds);
    if (Summary.CacheEnabled) {
      // Cache counters differ between cold and warm runs by construction,
      // so they share the timings gate: the default report stays
      // byte-identical across cache states.
      const CacheStats &C = Summary.Cache;
      Out += ",\"cache\":{";
      Out += "\"hits\":" + num(C.Hits);
      Out += ",\"misses\":" + num(C.Misses);
      Out += ",\"corrupt_entries\":" + num(C.CorruptEntries);
      Out += ",\"writes\":" + num(C.Writes);
      Out += ",\"write_failures\":" + num(C.WriteFailures);
      Out += ",\"bytes_read\":" + num(C.BytesRead);
      Out += ",\"bytes_written\":" + num(C.BytesWritten);
      Out += ",\"deserialize_s\":" + jsonSeconds(C.DeserializeSeconds);
      Out += "}";
    }
  }
  Out += "}}";
  return Out;
}

std::string jsai::renderReport(const RunSummary &Summary,
                               const DriverOptions &Opts) {
  std::string Out;
  for (const JobResult &Job : Summary.Jobs) {
    Out += jobRecordJson(Job, Opts.IncludeTimings);
    Out += '\n';
  }
  Out += manifestJson(Summary, Opts);
  Out += '\n';
  // Blame records trail the manifest (project order) so a recording run's
  // report minus its "blame" lines is byte-identical to an off run — the
  // invariant CI's explain job enforces with grep -v + cmp.
  for (const JobResult &Job : Summary.Jobs)
    if (Job.Report.HasBlame) {
      Out += blameRecordJson(Job);
      Out += '\n';
    }
  return Out;
}

bool jsai::writeReport(const std::string &Path, const RunSummary &Summary,
                       const DriverOptions &Opts) {
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile)
    return false;
  OutFile << renderReport(Summary, Opts);
  return bool(OutFile);
}
