//===- CorpusDriver.h - Parallel corpus scheduler ---------------*- C++ -*-===//
///
/// \file
/// The batch engine over many projects (the paper's Section 5 evaluation
/// shape: 141 projects through parse → approx → baseline → extended). Per-
/// project analyses share no mutable state — every job owns its AstContext
/// (and thus StringPool), DiagnosticEngine, Heap, and solver — so the
/// driver schedules them across a work-stealing thread pool:
///
///  - jobs are seeded round-robin onto per-worker deques; a worker pops
///    from the front of its own deque and steals from the back of others
///    when it runs dry, so one pathological project cannot serialize the
///    tail of the run;
///  - per-phase deadlines (PhaseDeadlines) are enforced cooperatively
///    inside each job via CancellationToken; a timed-out phase degrades
///    the project (ProjectOutcome::Degraded), never the run;
///  - results land in a pre-sized slot per project, so the returned
///    summary — and the JSONL telemetry derived from it (Telemetry.h) —
///    is in project order regardless of completion order.
///
/// Determinism contract: with no deadlines configured, every job is fully
/// deterministic and isolated, so aggregate metrics and the (timing-free)
/// JSONL report are byte-identical for any jobs count.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_DRIVER_CORPUSDRIVER_H
#define JSAI_DRIVER_CORPUSDRIVER_H

#include "pipeline/Pipeline.h"

#include <string>
#include <vector>

namespace jsai {

/// Scheduler configuration.
struct DriverOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = run inline on the
  /// calling thread (no threads spawned).
  size_t Jobs = 1;
  /// Per-phase deadlines applied to every job (0 = none).
  PhaseDeadlines Deadlines;
  /// Approximate-interpretation tunables forwarded to every job.
  ApproxOptions Approx;
  /// Points-to set representation forwarded to every job's solvers
  /// (--solver-set= ablation toggle).
  SolverSetKind SolverSet = defaultSolverSetKind();
  /// Intra-solver fixpoint threads per job (--solver-jobs= toggle). 1 =
  /// the sequential loop. The driver clamps the effective value so the
  /// product with the worker count never oversubscribes the machine:
  /// with W > 1 workers, each job gets at most hardware_threads / W.
  size_t SolverJobs = defaultSolverJobs();
  /// Provenance recording + blame analysis per job (--explain= toggle).
  /// When on, projects with a dynamic call graph get a BlameSummary and
  /// the JSONL report gains trailing "blame" records; every default
  /// record stays byte-identical to an --explain=off run.
  bool Explain = defaultExplainRecording();
  /// Include wall-clock fields in JSONL telemetry. Off by default: timing
  /// fields are inherently nondeterministic, and omitting them keeps
  /// reports byte-comparable across runs and jobs counts.
  bool IncludeTimings = false;
  /// Artifact-cache configuration. When enabled, each job consults the
  /// shared on-disk store before its approx phase and publishes after a
  /// fully successful analysis; warm runs produce byte-identical
  /// (timing-free) reports while skipping approx for unchanged projects.
  CacheConfig Cache;
  /// Optional externally latched interrupt (signal handler, serve
  /// shutdown). Not owned. Once latched, workers stop claiming jobs —
  /// unstarted projects are reported with outcome "cancelled" — and the
  /// in-flight jobs wind down through the pipeline's cancellation path.
  CancellationToken *Interrupt = nullptr;
};

/// One scheduled project analysis.
struct JobResult {
  ProjectReport Report;
  /// End-to-end job wall clock (parse through extraction), seconds.
  double TotalSeconds = 0;
  /// Non-empty when the job died on an exception (Outcome == Error);
  /// the run always continues.
  std::string Error;
};

/// Aggregate metrics over a run, accumulated in project order.
struct RunAggregates {
  size_t Projects = 0;
  size_t Ok = 0;
  size_t Degraded = 0;
  size_t Errors = 0;
  size_t Cancelled = 0;
  size_t BaselineCallEdges = 0;
  size_t ExtendedCallEdges = 0;
  size_t BaselineReachable = 0;
  size_t ExtendedReachable = 0;
  size_t Hints = 0;
  uint64_t SolverTokensPropagated = 0;

  friend bool operator==(const RunAggregates &, const RunAggregates &) =
      default;
};

/// Everything a run produced. Jobs is in project (input) order.
struct RunSummary {
  std::vector<JobResult> Jobs;
  RunAggregates Totals;
  /// Whole-run wall clock, seconds (nondeterministic; reported in
  /// telemetry only when DriverOptions::IncludeTimings is set).
  double WallSeconds = 0;
  /// Worker threads actually used.
  size_t Workers = 1;
  /// True when the run used an artifact cache; Cache then holds its
  /// whole-run counters (all-zero otherwise).
  bool CacheEnabled = false;
  CacheStats Cache;
};

/// Schedules ProjectAnalyzer jobs across a work-stealing thread pool.
class CorpusDriver {
public:
  explicit CorpusDriver(DriverOptions Opts = DriverOptions()) : Opts(Opts) {}

  /// Analyzes every project of \p Suite. Never throws: per-job failures
  /// are captured as Outcome == Error in that job's slot.
  RunSummary run(const std::vector<ProjectSpec> &Suite);

  const DriverOptions &options() const { return Opts; }

private:
  JobResult runJob(const ProjectSpec &Spec, ArtifactCache *Cache,
                   size_t SolverJobs) const;

  DriverOptions Opts;
};

} // namespace jsai

#endif // JSAI_DRIVER_CORPUSDRIVER_H
