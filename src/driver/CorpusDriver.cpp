//===- CorpusDriver.cpp - Work-stealing corpus scheduler ------------------===//

#include "driver/CorpusDriver.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

using namespace jsai;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One worker's job queue. The owner pops from the front; thieves pop from
/// the back, so an owner working down its seed keeps cache-warm neighbors
/// while thieves drain the far end.
struct WorkerQueue {
  std::mutex M;
  std::deque<size_t> Q;

  bool popFront(size_t &Job) {
    std::lock_guard<std::mutex> L(M);
    if (Q.empty())
      return false;
    Job = Q.front();
    Q.pop_front();
    return true;
  }

  bool popBack(size_t &Job) {
    std::lock_guard<std::mutex> L(M);
    if (Q.empty())
      return false;
    Job = Q.back();
    Q.pop_back();
    return true;
  }
};

} // namespace

JobResult CorpusDriver::runJob(const ProjectSpec &Spec, ArtifactCache *Cache,
                               size_t SolverJobs) const {
  JobResult R;
  auto Start = std::chrono::steady_clock::now();
  try {
    Pipeline P(Opts.Approx, Opts.Deadlines, Cache, Opts.SolverSet,
               Opts.Interrupt, SolverJobs, Opts.Explain);
    R.Report = P.analyzeProject(Spec);
  } catch (const std::exception &E) {
    R.Report.Name = Spec.Name;
    R.Report.Pattern = Spec.Pattern;
    R.Report.Outcome = ProjectOutcome::Error;
    R.Error = E.what();
  } catch (...) {
    R.Report.Name = Spec.Name;
    R.Report.Pattern = Spec.Pattern;
    R.Report.Outcome = ProjectOutcome::Error;
    R.Error = "unknown exception";
  }
  R.TotalSeconds = secondsSince(Start);
  return R;
}

RunSummary CorpusDriver::run(const std::vector<ProjectSpec> &Suite) {
  RunSummary Summary;
  Summary.Jobs.resize(Suite.size());

  // One store shared by every worker; its counters are atomic and its
  // publishes are temp-file + rename, so no further coordination is needed.
  std::optional<ArtifactCache> Cache;
  if (Opts.Cache.enabled())
    Cache.emplace(Opts.Cache);
  ArtifactCache *CachePtr = Cache ? &*Cache : nullptr;

  size_t Workers = Opts.Jobs;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  if (Workers > Suite.size())
    Workers = Suite.size() == 0 ? 1 : Suite.size();
  Summary.Workers = Workers;

  // Oversubscription policy: with more than one worker, the per-job solver
  // thread budget is clamped so Workers x SolverJobs stays within twice the
  // machine's core count. The 2x allowance keeps a modest --jobs x
  // --solver-jobs request (say 4x2 on four cores) from silently losing the
  // parallel solver — precompute threads spend part of each wave blocked on
  // the barrier, so mild oversubscription is cheap — while still preventing
  // multiplicative thread blowup. Results are unaffected — the solver is
  // byte-deterministic at any thread count — only wall clock.
  size_t SolverJobs = Opts.SolverJobs == 0 ? 1 : Opts.SolverJobs;
  if (Workers > 1 && SolverJobs > 1) {
    size_t HW = std::thread::hardware_concurrency();
    if (HW == 0)
      HW = 1;
    SolverJobs = std::min(SolverJobs, std::max<size_t>(1, (2 * HW) / Workers));
  }

  auto Interrupted = [this] {
    return Opts.Interrupt && Opts.Interrupt->cancelled();
  };

  auto Start = std::chrono::steady_clock::now();
  if (Workers <= 1) {
    // Inline: no threads, identical code path to the parallel case.
    for (size_t I = 0; I != Suite.size(); ++I) {
      if (Interrupted())
        break; // Unclaimed slots are marked cancelled below.
      Summary.Jobs[I] = runJob(Suite[I], CachePtr, SolverJobs);
    }
  } else {
    // Seed the per-worker deques round-robin; the task set is fixed up
    // front (jobs never spawn jobs), so a worker may exit as soon as a
    // full steal sweep finds every queue empty.
    std::vector<WorkerQueue> Queues(Workers);
    for (size_t I = 0; I != Suite.size(); ++I)
      Queues[I % Workers].Q.push_back(I);

    auto WorkerMain = [&](size_t Self) {
      for (;;) {
        if (Interrupted())
          return; // Stop claiming; in-flight jobs wind down on their own.
        size_t Job;
        if (!Queues[Self].popFront(Job)) {
          bool Stole = false;
          for (size_t Off = 1; Off != Workers && !Stole; ++Off)
            Stole = Queues[(Self + Off) % Workers].popBack(Job);
          if (!Stole)
            return;
        }
        // Slots are index-disjoint across workers: no lock needed.
        Summary.Jobs[Job] = runJob(Suite[Job], CachePtr, SolverJobs);
      }
    };

    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (size_t W = 0; W != Workers; ++W)
      Threads.emplace_back(WorkerMain, W);
    for (std::thread &T : Threads)
      T.join();
  }
  // Fill the slots of jobs no worker claimed before the interrupt so the
  // flushed report covers every project (outcome "cancelled").
  if (Interrupted())
    for (size_t I = 0; I != Suite.size(); ++I) {
      JobResult &J = Summary.Jobs[I];
      if (J.Report.Name.empty()) {
        J.Report.Name = Suite[I].Name;
        J.Report.Pattern = Suite[I].Pattern;
        J.Report.Outcome = ProjectOutcome::Cancelled;
      }
    }

  Summary.WallSeconds = secondsSince(Start);
  if (Cache) {
    Summary.CacheEnabled = true;
    Summary.Cache = Cache->stats();
  }

  // Aggregate in project order (completion order never matters).
  RunAggregates &A = Summary.Totals;
  for (const JobResult &J : Summary.Jobs) {
    ++A.Projects;
    switch (J.Report.Outcome) {
    case ProjectOutcome::Ok:
      ++A.Ok;
      break;
    case ProjectOutcome::Degraded:
      ++A.Degraded;
      break;
    case ProjectOutcome::Error:
      ++A.Errors;
      break;
    case ProjectOutcome::Cancelled:
      ++A.Cancelled;
      break;
    }
    A.BaselineCallEdges += J.Report.Baseline.NumCallEdges;
    A.ExtendedCallEdges += J.Report.Extended.NumCallEdges;
    A.BaselineReachable += J.Report.Baseline.NumReachableFunctions;
    A.ExtendedReachable += J.Report.Extended.NumReachableFunctions;
    A.Hints += J.Report.NumHints;
    A.SolverTokensPropagated += J.Report.Extended.Solver.NumTokensPropagated;
  }
  return Summary;
}
