//===- Parser.h - MiniJS parser ---------------------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for MiniJS. All tokens are lexed upfront, giving
/// arbitrary lookahead (needed to distinguish parenthesized expressions from
/// arrow-function parameter lists). The parser creates FunctionDefs with
/// their scope maps and hoisted declarations, so the later ScopeResolver
/// pass only needs to bind identifier uses.
///
/// MiniJS requires explicit semicolons (no automatic semicolon insertion);
/// the corpus generator always emits them.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_PARSER_PARSER_H
#define JSAI_PARSER_PARSER_H

#include "ast/Ast.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace jsai {

/// Parses MiniJS modules (and eval snippets) into an AstContext.
class Parser {
public:
  Parser(AstContext &Ctx, DiagnosticEngine &Diags) : Ctx(Ctx), Diags(Diags) {}

  /// Parses \p Source as the module at \p Path (package \p Package),
  /// creating the Module and its implicit module function with parameters
  /// (exports, require, module). \returns null on hard failure.
  Module *parseModule(const std::string &Path, const std::string &Package,
                      const std::string &Source);

  /// Parses \p Source as dynamically generated code evaluated inside
  /// \p Parent. The result (and every function nested in it) is marked
  /// in-eval so allocation-site recording is disabled for it (Section 3).
  /// \returns null on parse errors.
  FunctionDef *parseEval(const std::string &Source, FunctionDef *Parent,
                         SourceLoc EvalLoc);

private:
  // Token stream helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advanceToken();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  SourceLoc hereLoc() const { return current().Loc; }

  // Scope helpers.
  VarDecl *declareVar(Symbol Name, VarKind Kind, SourceLoc Loc);
  FunctionDef *currentFunction() const { return FuncStack.back(); }

  // Statements.
  Stmt *parseStatement();
  Stmt *parseVarDeclStatement();
  Stmt *parseFunctionDeclaration();
  BlockStmt *parseBlock();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDoWhile();
  Stmt *parseFor();
  Stmt *parseReturn();
  Stmt *parseThrow();
  Stmt *parseTry();
  Stmt *parseSwitch();
  /// ES-module statements, desugared to the CommonJS machinery at parse
  /// time (footnote 2 of the paper: the approach covers ES modules too).
  Stmt *parseImport();
  Stmt *parseExport();
  /// Synthesizes `require('<Spec>')` at \p Loc.
  Expr *makeRequireCall(SourceLoc Loc, Symbol Spec);
  /// Synthesizes `exports.<Name> = <Value>` at \p Loc.
  Stmt *makeExportAssign(SourceLoc Loc, Symbol Name, Expr *Value);

  // Expressions, by precedence.
  Expr *parseExpression();     // Comma sequences.
  Expr *parseAssignment();     // =, +=, ... and arrows.
  Expr *parseConditional();    // ?:
  Expr *parseNullish();        // ??
  Expr *parseLogicalOr();      // ||
  Expr *parseLogicalAnd();     // &&
  Expr *parseBitOr();
  Expr *parseBitXor();
  Expr *parseBitAnd();
  Expr *parseEquality();
  Expr *parseRelational();
  Expr *parseShift();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parseCallMember();
  Expr *parseNew();
  Expr *parsePrimary();
  Expr *parseObjectLiteral();
  Expr *parseArrayLiteral();
  Expr *parseFunctionExpression(bool IsStatementPosition, Symbol *OutName);
  Expr *parseArrowFunction(SourceLoc Loc, std::vector<Symbol> ParamNames,
                           std::vector<SourceLoc> ParamLocs);
  std::vector<Expr *> parseArguments();

  /// True if the token stream starting at the current '(' is an arrow
  /// function parameter list (i.e. the matching ')' is followed by '=>').
  bool isArrowParameterListAhead() const;

  /// Creates a FunctionDef with the given parameters and a self-binding
  /// (for named function expressions), ready for body parsing.
  FunctionDef *beginFunction(Symbol Name, SourceLoc Loc, bool IsArrow,
                             bool IsModule,
                             const std::vector<Symbol> &ParamNames,
                             const std::vector<SourceLoc> &ParamLocs,
                             Symbol SelfBindingName);

  /// Parses `{ ... }` as the body of the current function and pops it.
  void finishFunctionWithBlockBody(FunctionDef *F);

  std::vector<Stmt *> parseStatementListUntil(TokenKind Terminator);

  /// Initializes token state for a new source buffer.
  void startTokens(FileId File, const std::string &Source);

  AstContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t TokenPos = 0;
  std::vector<FunctionDef *> FuncStack;
  /// Lexical parent for the root function when parsing eval snippets.
  FunctionDef *EvalParent = nullptr;
  bool InEval = false;
  /// True while parsing a for-loop initializer, where the `in` operator is
  /// not allowed (it would be ambiguous with for-in).
  bool NoInContext = false;
  /// Fresh-name counter for desugared import temporaries.
  unsigned ImportCounter = 0;
};

} // namespace jsai

#endif // JSAI_PARSER_PARSER_H
