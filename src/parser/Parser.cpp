//===- Parser.cpp ---------------------------------------------------------===//

#include "parser/Parser.h"

#include "lexer/Lexer.h"
#include "support/JsNumber.h"

#include <cassert>
#include <cctype>

using namespace jsai;

//===----------------------------------------------------------------------===//
// Token stream helpers
//===----------------------------------------------------------------------===//

void Parser::startTokens(FileId File, const std::string &Source) {
  Lexer Lex(File, Source, Diags);
  Tokens = Lex.lexAll();
  TokenPos = 0;
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Idx = TokenPos + Ahead;
  if (Idx >= Tokens.size())
    Idx = Tokens.size() - 1; // Eof sentinel.
  return Tokens[Idx];
}

Token Parser::advanceToken() {
  Token T = current();
  if (TokenPos + 1 < Tokens.size())
    ++TokenPos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advanceToken();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(hereLoc(), std::string("expected ") + tokenKindName(Kind) +
                             " " + Context + ", found " +
                             tokenKindName(current().Kind));
  return false;
}

//===----------------------------------------------------------------------===//
// Scope helpers
//===----------------------------------------------------------------------===//

VarDecl *Parser::declareVar(Symbol Name, VarKind Kind, SourceLoc Loc) {
  FunctionDef *F = currentFunction();
  // `var x` redeclarations (and `var` after a parameter of the same name)
  // bind to the existing declaration, as in JavaScript's function scoping.
  if (VarDecl *Existing = F->lookupScope(Name))
    return Existing;
  VarDecl *D = Ctx.createVar(Name, Kind, F, Loc);
  F->declareInScope(Name, D);
  F->addHoistedVar(D);
  return D;
}

FunctionDef *Parser::beginFunction(Symbol Name, SourceLoc Loc, bool IsArrow,
                                   bool IsModule,
                                   const std::vector<Symbol> &ParamNames,
                                   const std::vector<SourceLoc> &ParamLocs,
                                   Symbol SelfBindingName) {
  FunctionDef *Parent = FuncStack.empty() ? EvalParent : FuncStack.back();
  FunctionDef *F = Ctx.createFunction(Name, Loc, IsArrow, IsModule, Parent);
  F->setInEval(InEval);
  std::vector<VarDecl *> Params;
  Params.reserve(ParamNames.size());
  for (size_t I = 0; I != ParamNames.size(); ++I) {
    VarDecl *P = Ctx.createVar(ParamNames[I], VarKind::Param, F, ParamLocs[I]);
    F->declareInScope(ParamNames[I], P);
    Params.push_back(P);
  }
  F->setParams(std::move(Params));
  // Named function expressions bind their own name inside the body.
  if (SelfBindingName != InvalidSymbol && !F->lookupScope(SelfBindingName)) {
    VarDecl *Self = Ctx.createVar(SelfBindingName, VarKind::Function, F, Loc);
    F->declareInScope(SelfBindingName, Self);
  }
  FuncStack.push_back(F);
  return F;
}

void Parser::finishFunctionWithBlockBody(FunctionDef *F) {
  assert(currentFunction() == F && "mismatched function stack");
  BlockStmt *Body = parseBlock();
  F->setBody(Body);
  FuncStack.pop_back();
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Module *Parser::parseModule(const std::string &Path,
                            const std::string &Package,
                            const std::string &Source) {
  FileId File = Ctx.files().add(Path);
  startTokens(File, Source);
  EvalParent = nullptr;

  // Line 0 is reserved for per-module synthetic entities; (0,0) is the
  // module function itself, so it can never collide with a real function
  // defined at 1:1.
  SourceLoc Loc(File, 0, 0);
  Symbol ModName = Ctx.strings().intern(Path);
  std::vector<Symbol> Params = {Ctx.SymExports, Ctx.SymRequire, Ctx.SymModule};
  std::vector<SourceLoc> ParamLocs = {Loc, Loc, Loc};
  FunctionDef *F = beginFunction(ModName, Loc, /*IsArrow=*/false,
                                 /*IsModule=*/true, Params, ParamLocs,
                                 InvalidSymbol);
  std::vector<Stmt *> Body = parseStatementListUntil(TokenKind::Eof);
  F->setBody(Ctx.create<BlockStmt>(Loc, std::move(Body)));
  FuncStack.pop_back();

  Module *M = Ctx.createModule(Path, Package, File);
  M->Func = F;
  return M;
}

FunctionDef *Parser::parseEval(const std::string &Source, FunctionDef *Parent,
                               SourceLoc EvalLoc) {
  std::string PseudoPath =
      "<eval:" + std::to_string(EvalLoc.key()) + ">";
  FileId File = Ctx.files().add(PseudoPath);
  startTokens(File, Source);
  InEval = true;
  EvalParent = Parent;

  size_t ErrorsBefore = Diags.errorCount();
  FunctionDef *F = beginFunction(InvalidSymbol, EvalLoc, /*IsArrow=*/false,
                                 /*IsModule=*/false, {}, {}, InvalidSymbol);
  std::vector<Stmt *> Body = parseStatementListUntil(TokenKind::Eof);
  F->setBody(Ctx.create<BlockStmt>(EvalLoc, std::move(Body)));
  FuncStack.pop_back();
  if (Diags.errorCount() != ErrorsBefore)
    return nullptr;
  return F;
}

std::vector<Stmt *> Parser::parseStatementListUntil(TokenKind Terminator) {
  std::vector<Stmt *> Stmts;
  while (!check(Terminator) && !check(TokenKind::Eof)) {
    size_t Before = TokenPos;
    Stmts.push_back(parseStatement());
    if (TokenPos == Before)
      advanceToken(); // Error recovery: guarantee progress.
  }
  return Stmts;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::KwVar:
  case TokenKind::KwLet:
  case TokenKind::KwConst:
    return parseVarDeclStatement();
  case TokenKind::KwFunction:
    return parseFunctionDeclaration();
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwThrow:
    return parseThrow();
  case TokenKind::KwTry:
    return parseTry();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwImport:
    return parseImport();
  case TokenKind::KwExport:
    return parseExport();
  case TokenKind::KwBreak: {
    SourceLoc Loc = advanceToken().Loc;
    expect(TokenKind::Semi, "after 'break'");
    return Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = advanceToken().Loc;
    expect(TokenKind::Semi, "after 'continue'");
    return Ctx.create<ContinueStmt>(Loc);
  }
  case TokenKind::Semi: {
    SourceLoc Loc = advanceToken().Loc;
    return Ctx.create<EmptyStmt>(Loc);
  }
  default: {
    SourceLoc Loc = hereLoc();
    Expr *E = parseExpression();
    expect(TokenKind::Semi, "after expression statement");
    return Ctx.create<ExprStmt>(Loc, E);
  }
  }
}

Stmt *Parser::parseVarDeclStatement() {
  SourceLoc Loc = hereLoc();
  VarKind Kind;
  switch (advanceToken().Kind) {
  case TokenKind::KwLet:
    Kind = VarKind::Let;
    break;
  case TokenKind::KwConst:
    Kind = VarKind::Const;
    break;
  default:
    Kind = VarKind::Var;
    break;
  }
  std::vector<VarDeclarator> Decls;
  do {
    if (!check(TokenKind::Identifier)) {
      Diags.error(hereLoc(), "expected identifier in variable declaration");
      break;
    }
    Token NameTok = advanceToken();
    Symbol Name = Ctx.strings().intern(NameTok.Text);
    VarDecl *D = declareVar(Name, Kind, NameTok.Loc);
    Expr *Init = nullptr;
    if (accept(TokenKind::Assign))
      Init = parseAssignment();
    Decls.push_back({D, Init});
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semi, "after variable declaration");
  return Ctx.create<VarDeclStmt>(Loc, Kind, std::move(Decls));
}

Stmt *Parser::parseFunctionDeclaration() {
  SourceLoc Loc = hereLoc();
  advanceToken(); // 'function'
  if (!check(TokenKind::Identifier)) {
    Diags.error(hereLoc(), "expected function name");
    return Ctx.create<EmptyStmt>(Loc);
  }
  Token NameTok = advanceToken();
  Symbol Name = Ctx.strings().intern(NameTok.Text);
  FunctionDef *Enclosing = currentFunction();
  VarDecl *Binding = declareVar(Name, VarKind::Function, NameTok.Loc);

  expect(TokenKind::LParen, "after function name");
  std::vector<Symbol> ParamNames;
  std::vector<SourceLoc> ParamLocs;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        Diags.error(hereLoc(), "expected parameter name");
        break;
      }
      Token P = advanceToken();
      ParamNames.push_back(Ctx.strings().intern(P.Text));
      ParamLocs.push_back(P.Loc);
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");

  FunctionDef *F = beginFunction(Name, Loc, /*IsArrow=*/false,
                                 /*IsModule=*/false, ParamNames, ParamLocs,
                                 InvalidSymbol);
  finishFunctionWithBlockBody(F);

  auto *S = Ctx.create<FunctionDeclStmt>(Loc, F, Binding);
  Enclosing->addHoistedFunc(S);
  return S;
}

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = hereLoc();
  expect(TokenKind::LBrace, "to open block");
  std::vector<Stmt *> Body = parseStatementListUntil(TokenKind::RBrace);
  expect(TokenKind::RBrace, "to close block");
  return Ctx.create<BlockStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = advanceToken().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpression();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStatement();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = advanceToken().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpression();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStatement();
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseDoWhile() {
  SourceLoc Loc = advanceToken().Loc; // 'do'
  Stmt *Body = parseStatement();
  expect(TokenKind::KwWhile, "after do-while body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpression();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while");
  return Ctx.create<DoWhileStmt>(Loc, Body, Cond);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = advanceToken().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");

  // for (var x in E) / for (var x of E) / classic for with declaration.
  if (check(TokenKind::KwVar) || check(TokenKind::KwLet) ||
      check(TokenKind::KwConst)) {
    VarKind Kind;
    switch (current().Kind) {
    case TokenKind::KwLet:
      Kind = VarKind::Let;
      break;
    case TokenKind::KwConst:
      Kind = VarKind::Const;
      break;
    default:
      Kind = VarKind::Var;
      break;
    }
    SourceLoc DeclLoc = advanceToken().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(hereLoc(), "expected identifier in for-loop declaration");
      return Ctx.create<EmptyStmt>(Loc);
    }
    Token NameTok = advanceToken();
    Symbol Name = Ctx.strings().intern(NameTok.Text);
    VarDecl *D = declareVar(Name, Kind, NameTok.Loc);

    if (check(TokenKind::KwIn) || check(TokenKind::KwOf)) {
      bool IsOf = advanceToken().is(TokenKind::KwOf);
      Expr *Object = parseExpression();
      expect(TokenKind::RParen, "after for-in/of object");
      Stmt *Body = parseStatement();
      return Ctx.create<ForInStmt>(Loc, D, nullptr, Object, Body, IsOf);
    }

    // Classic for: finish the declarator list.
    std::vector<VarDeclarator> Decls;
    Expr *Init = nullptr;
    if (accept(TokenKind::Assign))
      Init = parseAssignment();
    Decls.push_back({D, Init});
    while (accept(TokenKind::Comma)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(hereLoc(), "expected identifier in for-loop declaration");
        break;
      }
      Token Tok = advanceToken();
      VarDecl *D2 =
          declareVar(Ctx.strings().intern(Tok.Text), Kind, Tok.Loc);
      Expr *Init2 = nullptr;
      if (accept(TokenKind::Assign))
        Init2 = parseAssignment();
      Decls.push_back({D2, Init2});
    }
    expect(TokenKind::Semi, "after for-loop initializer");
    Stmt *InitStmt = Ctx.create<VarDeclStmt>(DeclLoc, Kind, std::move(Decls));

    Expr *Cond = check(TokenKind::Semi) ? nullptr : parseExpression();
    expect(TokenKind::Semi, "after for-loop condition");
    Expr *Step = check(TokenKind::RParen) ? nullptr : parseExpression();
    expect(TokenKind::RParen, "after for-loop step");
    Stmt *Body = parseStatement();
    return Ctx.create<ForStmt>(Loc, InitStmt, Cond, Step, Body);
  }

  // No declaration: `for (;;)`, `for (e; e; e)`, or `for (x in E)`.
  Stmt *InitStmt = nullptr;
  if (!check(TokenKind::Semi)) {
    SourceLoc ExprLoc = hereLoc();
    NoInContext = true;
    Expr *E = parseExpression();
    NoInContext = false;
    if (check(TokenKind::KwIn) || check(TokenKind::KwOf)) {
      bool IsOf = advanceToken().is(TokenKind::KwOf);
      Expr *Object = parseExpression();
      expect(TokenKind::RParen, "after for-in/of object");
      Stmt *Body = parseStatement();
      return Ctx.create<ForInStmt>(Loc, nullptr, E, Object, Body, IsOf);
    }
    InitStmt = Ctx.create<ExprStmt>(ExprLoc, E);
  }
  expect(TokenKind::Semi, "after for-loop initializer");
  Expr *Cond = check(TokenKind::Semi) ? nullptr : parseExpression();
  expect(TokenKind::Semi, "after for-loop condition");
  Expr *Step = check(TokenKind::RParen) ? nullptr : parseExpression();
  expect(TokenKind::RParen, "after for-loop step");
  Stmt *Body = parseStatement();
  return Ctx.create<ForStmt>(Loc, InitStmt, Cond, Step, Body);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = advanceToken().Loc; // 'return'
  Expr *Value = nullptr;
  if (!check(TokenKind::Semi))
    Value = parseExpression();
  expect(TokenKind::Semi, "after return statement");
  return Ctx.create<ReturnStmt>(Loc, Value);
}

Stmt *Parser::parseThrow() {
  SourceLoc Loc = advanceToken().Loc; // 'throw'
  Expr *Value = parseExpression();
  expect(TokenKind::Semi, "after throw statement");
  return Ctx.create<ThrowStmt>(Loc, Value);
}

Stmt *Parser::parseTry() {
  SourceLoc Loc = advanceToken().Loc; // 'try'
  BlockStmt *Body = parseBlock();
  VarDecl *CatchParam = nullptr;
  BlockStmt *Handler = nullptr;
  BlockStmt *Finalizer = nullptr;
  if (accept(TokenKind::KwCatch)) {
    if (accept(TokenKind::LParen)) {
      if (check(TokenKind::Identifier)) {
        Token P = advanceToken();
        CatchParam =
            declareVar(Ctx.strings().intern(P.Text), VarKind::Catch, P.Loc);
      } else {
        Diags.error(hereLoc(), "expected catch parameter");
      }
      expect(TokenKind::RParen, "after catch parameter");
    }
    Handler = parseBlock();
  }
  if (accept(TokenKind::KwFinally))
    Finalizer = parseBlock();
  if (!Handler && !Finalizer)
    Diags.error(Loc, "'try' requires 'catch' or 'finally'");
  return Ctx.create<TryStmt>(Loc, Body, CatchParam, Handler, Finalizer);
}

Stmt *Parser::parseSwitch() {
  SourceLoc Loc = advanceToken().Loc; // 'switch'
  expect(TokenKind::LParen, "after 'switch'");
  Expr *Disc = parseExpression();
  expect(TokenKind::RParen, "after switch discriminant");
  expect(TokenKind::LBrace, "to open switch body");
  std::vector<SwitchCase> Cases;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    SwitchCase Case;
    if (accept(TokenKind::KwCase)) {
      Case.Test = parseExpression();
      expect(TokenKind::Colon, "after case expression");
    } else if (accept(TokenKind::KwDefault)) {
      expect(TokenKind::Colon, "after 'default'");
    } else {
      Diags.error(hereLoc(), "expected 'case' or 'default' in switch body");
      break;
    }
    while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
           !check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
      size_t Before = TokenPos;
      Case.Body.push_back(parseStatement());
      if (TokenPos == Before)
        advanceToken();
    }
    Cases.push_back(std::move(Case));
  }
  expect(TokenKind::RBrace, "to close switch body");
  return Ctx.create<SwitchStmt>(Loc, Disc, std::move(Cases));
}

//===----------------------------------------------------------------------===//
// ES modules (desugared to CommonJS)
//===----------------------------------------------------------------------===//

Expr *Parser::makeRequireCall(SourceLoc Loc, Symbol Spec) {
  Expr *Callee = Ctx.create<Ident>(Loc, Ctx.SymRequire);
  Expr *Arg = Ctx.create<StringLit>(Loc, Spec);
  return Ctx.create<CallExpr>(Loc, Callee, std::vector<Expr *>{Arg});
}

Stmt *Parser::makeExportAssign(SourceLoc Loc, Symbol Name, Expr *Value) {
  Expr *Target = Ctx.create<MemberExpr>(
      Loc, static_cast<Expr *>(Ctx.create<Ident>(Loc, Ctx.SymExports)), Name);
  Expr *Assign =
      Ctx.create<AssignExpr>(Loc, AssignOp::Assign, Target, Value);
  return Ctx.create<ExprStmt>(Loc, Assign);
}

/// import 'spec';
/// import Name from 'spec';
/// import * as NS from 'spec';
/// import { a, b as c } from 'spec';
/// import Name, { a } from 'spec';     import Name, * as NS from 'spec';
Stmt *Parser::parseImport() {
  SourceLoc Loc = advanceToken().Loc; // 'import'

  // Bare side-effect import.
  if (check(TokenKind::String)) {
    Symbol Spec = Ctx.strings().intern(advanceToken().Text);
    expect(TokenKind::Semi, "after import");
    return Ctx.create<ExprStmt>(Loc, makeRequireCall(Loc, Spec));
  }

  Symbol DefaultName = InvalidSymbol;
  Symbol NamespaceName = InvalidSymbol;
  std::vector<std::pair<Symbol, Symbol>> Named; // (exported, local)

  auto ParseNamespace = [&] {
    // `* as NS`
    expect(TokenKind::Star, "in namespace import");
    if (!check(TokenKind::Identifier) || current().Text != "as") {
      Diags.error(hereLoc(), "expected 'as' in namespace import");
      return;
    }
    advanceToken(); // 'as'
    if (!check(TokenKind::Identifier)) {
      Diags.error(hereLoc(), "expected namespace binding name");
      return;
    }
    NamespaceName = Ctx.strings().intern(advanceToken().Text);
  };
  auto ParseNamedList = [&] {
    expect(TokenKind::LBrace, "in named import");
    while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(hereLoc(), "expected imported name");
        break;
      }
      Symbol Exported = Ctx.strings().intern(advanceToken().Text);
      Symbol Local = Exported;
      if (check(TokenKind::Identifier) && current().Text == "as") {
        advanceToken();
        if (!check(TokenKind::Identifier)) {
          Diags.error(hereLoc(), "expected local binding name");
          break;
        }
        Local = Ctx.strings().intern(advanceToken().Text);
      }
      Named.emplace_back(Exported, Local);
      if (!accept(TokenKind::Comma))
        break;
    }
    expect(TokenKind::RBrace, "to close named import");
  };

  if (check(TokenKind::Star)) {
    ParseNamespace();
  } else if (check(TokenKind::LBrace)) {
    ParseNamedList();
  } else if (check(TokenKind::Identifier)) {
    DefaultName = Ctx.strings().intern(advanceToken().Text);
    if (accept(TokenKind::Comma)) {
      if (check(TokenKind::Star))
        ParseNamespace();
      else
        ParseNamedList();
    }
  } else {
    Diags.error(hereLoc(), "expected import bindings");
  }

  if (!check(TokenKind::Identifier) || current().Text != "from") {
    Diags.error(hereLoc(), "expected 'from' in import");
    return Ctx.create<EmptyStmt>(Loc);
  }
  advanceToken(); // 'from'
  if (!check(TokenKind::String)) {
    Diags.error(hereLoc(), "expected module name string");
    return Ctx.create<EmptyStmt>(Loc);
  }
  Symbol Spec = Ctx.strings().intern(advanceToken().Text);
  expect(TokenKind::Semi, "after import");

  // Desugar: var __importN = require('spec'); then per-binding reads.
  Symbol Temp = Ctx.strings().intern("__import" +
                                     std::to_string(ImportCounter++));
  VarDecl *TempDecl = declareVar(Temp, VarKind::Var, Loc);
  std::vector<Stmt *> Out;
  Out.push_back(Ctx.create<VarDeclStmt>(
      Loc, VarKind::Var,
      std::vector<VarDeclarator>{{TempDecl, makeRequireCall(Loc, Spec)}}));

  auto BindFromTemp = [&](Symbol Local, Expr *Value) {
    VarDecl *D = declareVar(Local, VarKind::Var, Loc);
    Out.push_back(Ctx.create<VarDeclStmt>(
        Loc, VarKind::Var, std::vector<VarDeclarator>{{D, Value}}));
  };
  if (NamespaceName != InvalidSymbol)
    BindFromTemp(NamespaceName, Ctx.create<Ident>(Loc, Temp));
  if (DefaultName != InvalidSymbol) {
    // `import X from 'm'` binds m.default, falling back to the exports
    // object itself (CommonJS interop).
    Expr *DefaultRead = Ctx.create<MemberExpr>(
        Loc, static_cast<Expr *>(Ctx.create<Ident>(Loc, Temp)),
        Ctx.strings().intern("default"));
    Expr *Fallback = Ctx.create<LogicalExpr>(
        Loc, LogicalOp::Or, DefaultRead,
        static_cast<Expr *>(Ctx.create<Ident>(Loc, Temp)));
    BindFromTemp(DefaultName, Fallback);
  }
  for (const auto &[Exported, Local] : Named)
    BindFromTemp(Local,
                 Ctx.create<MemberExpr>(
                     Loc, static_cast<Expr *>(Ctx.create<Ident>(Loc, Temp)),
                     Exported));
  return Ctx.create<BlockStmt>(Loc, std::move(Out));
}

/// export default E;            export default function f() {...}
/// export function f() {...}    export var x = 1, y;
/// export { a, b as c };        export { a } from 'spec';
Stmt *Parser::parseExport() {
  SourceLoc Loc = advanceToken().Loc; // 'export'

  if (accept(TokenKind::KwDefault)) {
    Expr *Value;
    if (check(TokenKind::KwFunction)) {
      Value = parseFunctionExpression(/*IsStatementPosition=*/false, nullptr);
      accept(TokenKind::Semi);
    } else {
      Value = parseAssignment();
      expect(TokenKind::Semi, "after export default");
    }
    return makeExportAssign(Loc, Ctx.strings().intern("default"), Value);
  }

  if (check(TokenKind::KwFunction)) {
    Stmt *Decl = parseFunctionDeclaration();
    std::vector<Stmt *> Out = {Decl};
    if (auto *FD = dyn_cast<FunctionDeclStmt>(Decl)) {
      Symbol Name = FD->decl()->name();
      Out.push_back(
          makeExportAssign(Loc, Name, Ctx.create<Ident>(Loc, Name)));
    }
    return Ctx.create<BlockStmt>(Loc, std::move(Out));
  }

  if (check(TokenKind::KwVar) || check(TokenKind::KwLet) ||
      check(TokenKind::KwConst)) {
    Stmt *Decl = parseVarDeclStatement();
    std::vector<Stmt *> Out = {Decl};
    if (auto *VD = dyn_cast<VarDeclStmt>(Decl))
      for (const VarDeclarator &D : VD->declarators())
        Out.push_back(makeExportAssign(
            Loc, D.Decl->name(), Ctx.create<Ident>(Loc, D.Decl->name())));
    return Ctx.create<BlockStmt>(Loc, std::move(Out));
  }

  if (check(TokenKind::LBrace)) {
    advanceToken();
    std::vector<std::pair<Symbol, Symbol>> Entries; // (local, exported)
    while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(hereLoc(), "expected exported name");
        break;
      }
      Symbol Local = Ctx.strings().intern(advanceToken().Text);
      Symbol Exported = Local;
      if (check(TokenKind::Identifier) && current().Text == "as") {
        advanceToken();
        if (!check(TokenKind::Identifier)) {
          Diags.error(hereLoc(), "expected export alias");
          break;
        }
        Exported = Ctx.strings().intern(advanceToken().Text);
      }
      Entries.emplace_back(Local, Exported);
      if (!accept(TokenKind::Comma))
        break;
    }
    expect(TokenKind::RBrace, "to close export list");

    std::vector<Stmt *> Out;
    if (check(TokenKind::Identifier) && current().Text == "from") {
      // Re-export: read from the required module instead of local scope.
      advanceToken();
      if (!check(TokenKind::String)) {
        Diags.error(hereLoc(), "expected module name string");
        return Ctx.create<EmptyStmt>(Loc);
      }
      Symbol Spec = Ctx.strings().intern(advanceToken().Text);
      Symbol Temp = Ctx.strings().intern(
          "__import" + std::to_string(ImportCounter++));
      VarDecl *TempDecl = declareVar(Temp, VarKind::Var, Loc);
      Out.push_back(Ctx.create<VarDeclStmt>(
          Loc, VarKind::Var,
          std::vector<VarDeclarator>{{TempDecl, makeRequireCall(Loc, Spec)}}));
      for (const auto &[Local, Exported] : Entries)
        Out.push_back(makeExportAssign(
            Loc, Exported,
            Ctx.create<MemberExpr>(
                Loc, static_cast<Expr *>(Ctx.create<Ident>(Loc, Temp)),
                Local)));
    } else {
      for (const auto &[Local, Exported] : Entries)
        Out.push_back(makeExportAssign(Loc, Exported,
                                       Ctx.create<Ident>(Loc, Local)));
    }
    expect(TokenKind::Semi, "after export list");
    return Ctx.create<BlockStmt>(Loc, std::move(Out));
  }

  Diags.error(hereLoc(), "unsupported export form");
  return Ctx.create<EmptyStmt>(Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpression() {
  Expr *First = parseAssignment();
  if (!check(TokenKind::Comma))
    return First;
  std::vector<Expr *> Exprs = {First};
  SourceLoc Loc = First->loc();
  while (accept(TokenKind::Comma))
    Exprs.push_back(parseAssignment());
  return Ctx.create<SequenceExpr>(Loc, std::move(Exprs));
}

static bool isValidAssignTarget(const Expr *E) {
  return isa<Ident>(E) || isa<MemberExpr>(E);
}

Expr *Parser::parseAssignment() {
  Expr *Lhs = parseConditional();
  AssignOp Op;
  switch (current().Kind) {
  case TokenKind::Assign:
    Op = AssignOp::Assign;
    break;
  case TokenKind::PlusAssign:
    Op = AssignOp::Add;
    break;
  case TokenKind::MinusAssign:
    Op = AssignOp::Sub;
    break;
  case TokenKind::StarAssign:
    Op = AssignOp::Mul;
    break;
  case TokenKind::SlashAssign:
    Op = AssignOp::Div;
    break;
  case TokenKind::OrOrAssign:
    Op = AssignOp::OrOr;
    break;
  default:
    return Lhs;
  }
  SourceLoc Loc = advanceToken().Loc;
  if (!isValidAssignTarget(Lhs))
    Diags.error(Loc, "invalid assignment target");
  Expr *Rhs = parseAssignment(); // Right-associative.
  return Ctx.create<AssignExpr>(Loc, Op, Lhs, Rhs);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseNullish();
  if (!accept(TokenKind::Question))
    return Cond;
  Expr *Then = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *Else = parseAssignment();
  return Ctx.create<ConditionalExpr>(Cond->loc(), Cond, Then, Else);
}

Expr *Parser::parseNullish() {
  Expr *Lhs = parseLogicalOr();
  while (check(TokenKind::QuestionQuestion)) {
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseLogicalOr();
    Lhs = Ctx.create<LogicalExpr>(Loc, LogicalOp::Nullish, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseLogicalOr() {
  Expr *Lhs = parseLogicalAnd();
  while (check(TokenKind::OrOr)) {
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseLogicalAnd();
    Lhs = Ctx.create<LogicalExpr>(Loc, LogicalOp::Or, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseLogicalAnd() {
  Expr *Lhs = parseBitOr();
  while (check(TokenKind::AndAnd)) {
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseBitOr();
    Lhs = Ctx.create<LogicalExpr>(Loc, LogicalOp::And, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseBitOr() {
  Expr *Lhs = parseBitXor();
  while (check(TokenKind::Pipe)) {
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseBitXor();
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::BitOr, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseBitXor() {
  Expr *Lhs = parseBitAnd();
  while (check(TokenKind::Caret)) {
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseBitAnd();
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::BitXor, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseBitAnd() {
  Expr *Lhs = parseEquality();
  while (check(TokenKind::Amp)) {
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseEquality();
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::BitAnd, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseEquality() {
  Expr *Lhs = parseRelational();
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::EqEq:
      Op = BinaryOp::EqLoose;
      break;
    case TokenKind::EqEqEq:
      Op = BinaryOp::EqStrict;
      break;
    case TokenKind::NotEq:
      Op = BinaryOp::NeLoose;
      break;
    case TokenKind::NotEqEq:
      Op = BinaryOp::NeStrict;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseRelational();
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseRelational() {
  Expr *Lhs = parseShift();
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEq:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::GreaterEq:
      Op = BinaryOp::Ge;
      break;
    case TokenKind::KwIn:
      if (NoInContext)
        return Lhs; // `in` belongs to the enclosing for-in statement.
      Op = BinaryOp::In;
      break;
    case TokenKind::KwInstanceof:
      Op = BinaryOp::Instanceof;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseShift();
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseShift() {
  Expr *Lhs = parseAdditive();
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Shl:
      Op = BinaryOp::Shl;
      break;
    case TokenKind::Shr:
      Op = BinaryOp::Shr;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseAdditive();
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseAdditive() {
  Expr *Lhs = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinaryOp Op =
        check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseMultiplicative();
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseMultiplicative() {
  Expr *Lhs = parseUnary();
  while (true) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Star:
      Op = BinaryOp::Mul;
      break;
    case TokenKind::Slash:
      Op = BinaryOp::Div;
      break;
    case TokenKind::Percent:
      Op = BinaryOp::Mod;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = advanceToken().Loc;
    Expr *Rhs = parseUnary();
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseUnary() {
  UnaryOp Op;
  switch (current().Kind) {
  case TokenKind::Not:
    Op = UnaryOp::Not;
    break;
  case TokenKind::Minus:
    Op = UnaryOp::Neg;
    break;
  case TokenKind::Plus:
    Op = UnaryOp::Plus;
    break;
  case TokenKind::Tilde:
    Op = UnaryOp::BitNot;
    break;
  case TokenKind::KwTypeof:
    Op = UnaryOp::Typeof;
    break;
  case TokenKind::KwDelete:
    Op = UnaryOp::Delete;
    break;
  case TokenKind::KwVoid:
    Op = UnaryOp::Void;
    break;
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus: {
    bool IsIncrement = check(TokenKind::PlusPlus);
    SourceLoc Loc = advanceToken().Loc;
    Expr *Target = parseUnary();
    if (!isValidAssignTarget(Target))
      Diags.error(Loc, "invalid update target");
    return Ctx.create<UpdateExpr>(Loc, IsIncrement, /*IsPrefix=*/true, Target);
  }
  default:
    return parsePostfix();
  }
  SourceLoc Loc = advanceToken().Loc;
  Expr *Operand = parseUnary();
  return Ctx.create<UnaryExpr>(Loc, Op, Operand);
}

Expr *Parser::parsePostfix() {
  Expr *E = parseCallMember();
  if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
    bool IsIncrement = check(TokenKind::PlusPlus);
    SourceLoc Loc = advanceToken().Loc;
    if (!isValidAssignTarget(E))
      Diags.error(Loc, "invalid update target");
    return Ctx.create<UpdateExpr>(Loc, IsIncrement, /*IsPrefix=*/false, E);
  }
  return E;
}

/// \returns the property-name spelling of \p T when it may follow '.'
/// (identifiers and keywords), or empty when it may not.
static std::string tokenAsPropertyName(const Token &T) {
  if (T.is(TokenKind::Identifier))
    return T.Text;
  const char *Name = tokenKindName(T.Kind);
  // Keyword spellings are quoted like "'default'"; strip the quotes.
  if (Name[0] == '\'') {
    std::string S(Name + 1);
    if (!S.empty() && S.back() == '\'')
      S.pop_back();
    // Only keywords (alphabetic spellings) qualify as property names.
    if (!S.empty() && (std::isalpha(static_cast<unsigned char>(S[0]))))
      return S;
  }
  return std::string();
}

std::vector<Expr *> Parser::parseArguments() {
  std::vector<Expr *> Args;
  expect(TokenKind::LParen, "to open argument list");
  bool SavedNoIn = NoInContext;
  NoInContext = false; // `in` is fine inside parentheses.
  if (!check(TokenKind::RParen)) {
    do {
      Args.push_back(parseAssignment());
    } while (accept(TokenKind::Comma));
  }
  NoInContext = SavedNoIn;
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

Expr *Parser::parseCallMember() {
  Expr *E = check(TokenKind::KwNew) ? parseNew() : parsePrimary();
  while (true) {
    if (check(TokenKind::Dot)) {
      SourceLoc Loc = advanceToken().Loc;
      std::string Name = tokenAsPropertyName(current());
      if (Name.empty()) {
        Diags.error(hereLoc(), "expected property name after '.'");
        return E;
      }
      advanceToken();
      E = Ctx.create<MemberExpr>(Loc, E, Ctx.strings().intern(Name));
      continue;
    }
    if (check(TokenKind::LBracket)) {
      SourceLoc Loc = advanceToken().Loc;
      Expr *Index = parseExpression();
      expect(TokenKind::RBracket, "to close computed property access");
      E = Ctx.create<MemberExpr>(Loc, E, Index);
      continue;
    }
    if (check(TokenKind::LParen)) {
      SourceLoc Loc = hereLoc();
      std::vector<Expr *> Args = parseArguments();
      E = Ctx.create<CallExpr>(Loc, E, std::move(Args));
      continue;
    }
    return E;
  }
}

Expr *Parser::parseNew() {
  SourceLoc Loc = advanceToken().Loc; // 'new'
  // Parse the callee as a member expression (no call suffixes).
  Expr *Callee =
      check(TokenKind::KwNew) ? parseNew() : parsePrimary();
  while (true) {
    if (check(TokenKind::Dot)) {
      SourceLoc MemberLoc = advanceToken().Loc;
      std::string Name = tokenAsPropertyName(current());
      if (Name.empty()) {
        Diags.error(hereLoc(), "expected property name after '.'");
        break;
      }
      advanceToken();
      Callee =
          Ctx.create<MemberExpr>(MemberLoc, Callee, Ctx.strings().intern(Name));
      continue;
    }
    if (check(TokenKind::LBracket)) {
      SourceLoc MemberLoc = advanceToken().Loc;
      Expr *Index = parseExpression();
      expect(TokenKind::RBracket, "to close computed property access");
      Callee = Ctx.create<MemberExpr>(MemberLoc, Callee, Index);
      continue;
    }
    break;
  }
  std::vector<Expr *> Args;
  if (check(TokenKind::LParen))
    Args = parseArguments();
  return Ctx.create<NewExpr>(Loc, Callee, std::move(Args));
}

bool Parser::isArrowParameterListAhead() const {
  assert(check(TokenKind::LParen) && "must start at '('");
  size_t Idx = TokenPos + 1;
  int Depth = 1;
  while (Idx < Tokens.size() && Depth > 0) {
    TokenKind K = Tokens[Idx].Kind;
    if (K == TokenKind::LParen)
      ++Depth;
    else if (K == TokenKind::RParen)
      --Depth;
    else if (K == TokenKind::Eof)
      return false;
    ++Idx;
  }
  return Idx < Tokens.size() && Tokens[Idx].is(TokenKind::Arrow);
}

Expr *Parser::parseArrowFunction(SourceLoc Loc,
                                 std::vector<Symbol> ParamNames,
                                 std::vector<SourceLoc> ParamLocs) {
  expect(TokenKind::Arrow, "in arrow function");
  FunctionDef *F = beginFunction(InvalidSymbol, Loc, /*IsArrow=*/true,
                                 /*IsModule=*/false, ParamNames, ParamLocs,
                                 InvalidSymbol);
  if (check(TokenKind::LBrace)) {
    finishFunctionWithBlockBody(F);
  } else {
    // Concise body: desugar `=> E` into `=> { return E; }`.
    SourceLoc BodyLoc = hereLoc();
    Expr *Value = parseAssignment();
    Stmt *Ret = Ctx.create<ReturnStmt>(BodyLoc, Value);
    F->setBody(Ctx.create<BlockStmt>(BodyLoc, std::vector<Stmt *>{Ret}));
    FuncStack.pop_back();
  }
  return Ctx.create<FunctionExpr>(Loc, F);
}

Expr *Parser::parseFunctionExpression(bool IsStatementPosition,
                                      Symbol *OutName) {
  (void)IsStatementPosition;
  SourceLoc Loc = advanceToken().Loc; // 'function'
  Symbol Name = InvalidSymbol;
  if (check(TokenKind::Identifier)) {
    Name = Ctx.strings().intern(advanceToken().Text);
    if (OutName)
      *OutName = Name;
  }
  expect(TokenKind::LParen, "after 'function'");
  std::vector<Symbol> ParamNames;
  std::vector<SourceLoc> ParamLocs;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        Diags.error(hereLoc(), "expected parameter name");
        break;
      }
      Token P = advanceToken();
      ParamNames.push_back(Ctx.strings().intern(P.Text));
      ParamLocs.push_back(P.Loc);
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");
  FunctionDef *F = beginFunction(Name, Loc, /*IsArrow=*/false,
                                 /*IsModule=*/false, ParamNames, ParamLocs,
                                 /*SelfBindingName=*/Name);
  finishFunctionWithBlockBody(F);
  return Ctx.create<FunctionExpr>(Loc, F);
}

Expr *Parser::parseObjectLiteral() {
  SourceLoc Loc = advanceToken().Loc; // '{'
  std::vector<ObjectProperty> Props;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    ObjectProperty Prop;
    if (check(TokenKind::LBracket)) {
      // Computed key `[E]: V`.
      advanceToken();
      Prop.KeyExpr = parseAssignment();
      expect(TokenKind::RBracket, "to close computed property key");
      expect(TokenKind::Colon, "after computed property key");
      Prop.Value = parseAssignment();
    } else {
      std::string KeyName;
      if (check(TokenKind::String)) {
        KeyName = advanceToken().Text;
      } else if (check(TokenKind::Number)) {
        KeyName = jsNumberToString(advanceToken().NumValue);
      } else {
        KeyName = tokenAsPropertyName(current());
        if (KeyName.empty()) {
          Diags.error(hereLoc(), "expected property name in object literal");
          break;
        }
        advanceToken();
      }
      // Accessors: `get name() {...}` / `set name(v) {...}` — the keyword
      // must be followed by another property name (not ':'/'(' etc.).
      if ((KeyName == "get" || KeyName == "set") &&
          !check(TokenKind::Colon) && !check(TokenKind::LParen) &&
          !check(TokenKind::Comma) && !check(TokenKind::RBrace)) {
        bool IsGetter = KeyName == "get";
        std::string AccessorName;
        if (check(TokenKind::String))
          AccessorName = advanceToken().Text;
        else {
          AccessorName = tokenAsPropertyName(current());
          if (AccessorName.empty()) {
            Diags.error(hereLoc(), "expected accessor property name");
            break;
          }
          advanceToken();
        }
        Prop.Key = Ctx.strings().intern(AccessorName);
        Prop.PKind = IsGetter ? PropertyKind::Getter : PropertyKind::Setter;
        SourceLoc AccessorLoc = hereLoc();
        expect(TokenKind::LParen, "after accessor name");
        std::vector<Symbol> ParamNames;
        std::vector<SourceLoc> ParamLocs;
        if (!check(TokenKind::RParen)) {
          do {
            if (!check(TokenKind::Identifier)) {
              Diags.error(hereLoc(), "expected parameter name");
              break;
            }
            Token Pm = advanceToken();
            ParamNames.push_back(Ctx.strings().intern(Pm.Text));
            ParamLocs.push_back(Pm.Loc);
          } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "after accessor parameters");
        FunctionDef *F =
            beginFunction(Prop.Key, AccessorLoc, /*IsArrow=*/false,
                          /*IsModule=*/false, ParamNames, ParamLocs,
                          InvalidSymbol);
        finishFunctionWithBlockBody(F);
        Prop.Value = Ctx.create<FunctionExpr>(AccessorLoc, F);
        Props.push_back(Prop);
        if (!accept(TokenKind::Comma))
          break;
        continue;
      }
      Prop.Key = Ctx.strings().intern(KeyName);
      if (accept(TokenKind::Colon)) {
        Prop.Value = parseAssignment();
      } else if (check(TokenKind::LParen)) {
        // Method shorthand `{ foo() { ... } }`.
        SourceLoc MethodLoc = hereLoc();
        std::vector<Symbol> ParamNames;
        std::vector<SourceLoc> ParamLocs;
        advanceToken(); // '('
        if (!check(TokenKind::RParen)) {
          do {
            if (!check(TokenKind::Identifier)) {
              Diags.error(hereLoc(), "expected parameter name");
              break;
            }
            Token P = advanceToken();
            ParamNames.push_back(Ctx.strings().intern(P.Text));
            ParamLocs.push_back(P.Loc);
          } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "after method parameters");
        FunctionDef *F =
            beginFunction(Prop.Key, MethodLoc, /*IsArrow=*/false,
                          /*IsModule=*/false, ParamNames, ParamLocs,
                          InvalidSymbol);
        finishFunctionWithBlockBody(F);
        Prop.Value = Ctx.create<FunctionExpr>(MethodLoc, F);
      } else {
        // Shorthand `{ foo }`.
        Prop.Value = Ctx.create<Ident>(Loc, Prop.Key);
      }
    }
    Props.push_back(Prop);
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBrace, "to close object literal");
  return Ctx.create<ObjectLit>(Loc, std::move(Props));
}

Expr *Parser::parseArrayLiteral() {
  SourceLoc Loc = advanceToken().Loc; // '['
  std::vector<Expr *> Elements;
  while (!check(TokenKind::RBracket) && !check(TokenKind::Eof)) {
    Elements.push_back(parseAssignment());
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBracket, "to close array literal");
  return Ctx.create<ArrayLit>(Loc, std::move(Elements));
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = hereLoc();
  switch (current().Kind) {
  case TokenKind::Number: {
    Token T = advanceToken();
    return Ctx.create<NumberLit>(Loc, T.NumValue);
  }
  case TokenKind::String: {
    Token T = advanceToken();
    return Ctx.create<StringLit>(Loc, Ctx.strings().intern(T.Text));
  }
  case TokenKind::KwTrue:
    advanceToken();
    return Ctx.create<BoolLit>(Loc, true);
  case TokenKind::KwFalse:
    advanceToken();
    return Ctx.create<BoolLit>(Loc, false);
  case TokenKind::KwNull:
    advanceToken();
    return Ctx.create<NullLit>(Loc);
  case TokenKind::KwUndefined:
    advanceToken();
    return Ctx.create<UndefinedLit>(Loc);
  case TokenKind::KwThis:
    advanceToken();
    return Ctx.create<ThisExpr>(Loc);
  case TokenKind::Identifier: {
    // `x => E` arrow function?
    if (peek(1).is(TokenKind::Arrow)) {
      Token NameTok = advanceToken();
      return parseArrowFunction(Loc,
                                {Ctx.strings().intern(NameTok.Text)},
                                {NameTok.Loc});
    }
    Token T = advanceToken();
    return Ctx.create<Ident>(Loc, Ctx.strings().intern(T.Text));
  }
  case TokenKind::LParen: {
    if (isArrowParameterListAhead()) {
      advanceToken(); // '('
      std::vector<Symbol> ParamNames;
      std::vector<SourceLoc> ParamLocs;
      if (!check(TokenKind::RParen)) {
        do {
          if (!check(TokenKind::Identifier)) {
            Diags.error(hereLoc(), "expected arrow parameter name");
            break;
          }
          Token P = advanceToken();
          ParamNames.push_back(Ctx.strings().intern(P.Text));
          ParamLocs.push_back(P.Loc);
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after arrow parameters");
      return parseArrowFunction(Loc, std::move(ParamNames),
                                std::move(ParamLocs));
    }
    advanceToken(); // '('
    bool SavedNoIn = NoInContext;
    NoInContext = false; // `in` is fine inside parentheses.
    Expr *E = parseExpression();
    NoInContext = SavedNoIn;
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::LBrace:
    return parseObjectLiteral();
  case TokenKind::LBracket:
    return parseArrayLiteral();
  case TokenKind::KwFunction:
    return parseFunctionExpression(/*IsStatementPosition=*/false, nullptr);
  case TokenKind::KwNew:
    return parseNew();
  default:
    Diags.error(Loc, std::string("unexpected token ") +
                         tokenKindName(current().Kind) + " in expression");
    advanceToken();
    return Ctx.create<UndefinedLit>(Loc);
  }
}
