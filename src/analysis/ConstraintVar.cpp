//===- ConstraintVar.cpp --------------------------------------------------===//

#include "analysis/ConstraintVar.h"

using namespace jsai;

CVarId CVarFactory::get(CVar::Kind K, uint32_t A, uint32_t B) {
  // Composite key: kind in the top bits cannot collide because A and B are
  // dense ids far below 2^31, and Prop vars (the only users of B) key on
  // (token, symbol) pairs.
  uint64_t Key = (uint64_t(uint8_t(K)) << 61) ^ (uint64_t(A) << 30) ^ B;
  auto [It, Inserted] = Index.try_emplace(Key, CVarId(Vars.size()));
  if (Inserted)
    Vars.push_back(CVar{K, A, B});
  return It->second;
}

CVarId CVarFactory::propVar(TokenId T, Symbol P) {
  size_t Before = Vars.size();
  CVarId Id = get(CVar::Kind::Prop, T, P);
  if (Vars.size() != Before) {
    Props[T].emplace_back(P, Id);
    if (OnPropVar)
      OnPropVar(T, P, Id);
  }
  return Id;
}

const std::vector<std::pair<Symbol, CVarId>> &CVarFactory::propsOf(TokenId T) {
  auto It = Props.find(T);
  return It == Props.end() ? EmptyProps : It->second;
}
