//===- StaticAnalysis.cpp - Driver, hint rules, and extraction --------------===//
//
// Implements the [DPR]/[DPW] rules of Figure 3, the two ablation modes, and
// the metric extraction used by the evaluation.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

#include "ast/ScopeResolver.h"
#include "parser/Parser.h"

#include <cassert>
#include <deque>

using namespace jsai;

StaticAnalysis::StaticAnalysis(ModuleLoader &Loader, AnalysisOptions Opts,
                               const HintSet *Hints)
    : Loader(Loader), Opts(Opts), Hints(Hints), TF(Loader.context()) {
  Loader.parseAll();
  StringPool &SP = Loader.context().strings();
  SymProtoChain = SP.intern("[[proto]]");
  SymElem = SP.intern("[[elem]]");
  SymHandlers = SP.intern("[[handlers]]");
  SymAnyProp = SP.intern("[[any]]");
  SymPrototypeName = SP.intern("prototype");

  // Dispatch property-variable creation to the registered summaries
  // (Object.assign copies, Object.values, over-approximated reads).
  VF.setPropVarHook([this](TokenId T, Symbol Sym, CVarId Var) {
    auto It = PropCallbacks.find(T);
    if (It == PropCallbacks.end())
      return;
    // Callbacks may add further callbacks for this token; index loop.
    for (size_t I = 0; I < It->second.size(); ++I)
      It->second[I](Sym, Var);
  });
}

void StaticAnalysis::applyModeConstraints() {
  switch (Opts.Mode) {
  case AnalysisMode::Baseline:
    break; // Dynamic property accesses stay ignored.
  case AnalysisMode::Hints:
    applyHints();
    break;
  case AnalysisMode::NonRelationalHints:
    applyNonRelationalHints();
    break;
  case AnalysisMode::OverApprox:
    applyOverApproximation();
    break;
  }
}

AnalysisResult StaticAnalysis::run() {
  S.setSetKind(Opts.SolverSet);
  S.setJobs(Opts.SolverJobs);
  S.setCancellation(Opts.Cancel);
  S.setExplainRecording(Opts.Explain);
  buildAll();
  applyModeConstraints();
  S.solve();
  return extract();
}

AnalysisResult StaticAnalysis::runTracked() {
  S.setSetKind(Opts.SolverSet);
  S.setJobs(Opts.SolverJobs);
  S.setCancellation(Opts.Cancel);
  S.setExplainRecording(Opts.Explain);
  buildAll();
  // Everything derived from the mode's constraints — the [DPR]/[DPW] edges
  // and whatever the listeners they trigger generate during the solve —
  // carries the tracked group, so revalidate() can retract exactly this
  // batch. The solve itself runs inside the group: constraints a group-0
  // listener derives keep group 0 (flush saves/restores per listener), and
  // a cycle collapse anywhere during it correctly poisons retraction.
  TrackedGroup = 1;
  S.setGroup(TrackedGroup);
  applyModeConstraints();
  S.solve();
  S.setGroup(0);
  return extract();
}

std::optional<AnalysisResult> StaticAnalysis::revalidate() {
  if (!S.retractGroup(TrackedGroup))
    return std::nullopt;
  ++TrackedGroup;
  S.setGroup(TrackedGroup);
  applyModeConstraints();
  S.solve();
  S.setGroup(0);
  if (S.wasCancelled())
    return std::nullopt;
  return extract();
}

//===----------------------------------------------------------------------===//
// Rule [DPR] and [DPW] (Figure 3)
//===----------------------------------------------------------------------===//

void StaticAnalysis::applyHints() {
  assert(Hints && "hint mode requires hints");
  StringPool &SP = Loader.context().strings();

  if (Opts.UseReadHints) {
    // [DPR]: for every l' in H_R(l), add t_{l'} to [[E[E']]] at l.
    for (const auto &[ReadLoc, Refs] : Hints->readHints()) {
      auto SiteIt = DynReadByLoc.find(ReadLoc);
      if (SiteIt == DynReadByLoc.end())
        continue; // Read happened in eval code or a builtin.
      OriginScope Tag(*this, OriginKind::ReadHint, ReadLoc);
      const DynReadSite &Site = DynReads[SiteIt->second];
      CVarId Result = VF.exprVar(Site.Node->id());
      for (const AllocRef &Ref : Refs) {
        TokenId T = TF.tokenForAllocSite(Ref);
        if (T != ~TokenId(0))
          S.addToken(Result, T);
      }
    }
  }

  if (Opts.UseWriteHints) {
    // [DPW]: for every (l, p, l'') in H_W, add t_{l''} to [[t_l.p]].
    for (const WriteHint &W : Hints->writeHints()) {
      TokenId Base = TF.tokenForAllocSite(W.Base);
      TokenId Val = TF.tokenForAllocSite(W.Val);
      if (Base == ~TokenId(0) || Val == ~TokenId(0))
        continue;
      OriginScope Tag(*this, OriginKind::WriteHint, W.Base.Loc);
      S.addToken(VF.propVar(Base, SP.intern(W.Prop)), Val);
    }
  }
  // Module hints are consumed lazily by the Require builtin model.

  if (Opts.UseUnknownArgHints)
    applyUnknownArgHints();
  if (Opts.UseEvalBodyAnalysis)
    applyEvalBodies();
}

//===----------------------------------------------------------------------===//
// Section 6 extension: unknown-function-argument hints
//===----------------------------------------------------------------------===//

void StaticAnalysis::applyUnknownArgHints() {
  assert(Hints && "extension requires hints");
  StringPool &SP = Loader.context().strings();
  // A dynamic read x[y] where x was p* but y was the known string "p" is
  // treated as the static read x.p — but only when the site produced no
  // ordinary read hints, the paper's guard against polluting polymorphic
  // functions.
  for (const auto &[ReadLoc, Names] : Hints->proxyReadNames()) {
    if (Hints->readHints().count(ReadLoc))
      continue;
    auto SiteIt = DynReadByLoc.find(ReadLoc);
    if (SiteIt == DynReadByLoc.end())
      continue;
    OriginScope Tag(*this, OriginKind::UnknownArgHint, ReadLoc);
    const DynReadSite &Site = DynReads[SiteIt->second];
    CVarId Result = VF.exprVar(Site.Node->id());
    for (const std::string &Name : Names)
      readProperty(Site.Base, SP.intern(Name), Result);
  }
}

//===----------------------------------------------------------------------===//
// Section 6 extension: analyzing eval'd code strings
//===----------------------------------------------------------------------===//

void StaticAnalysis::applyEvalBodies() {
  assert(Hints && "extension requires hints");
  AstContext &Ctx = Loader.context();

  // Map eval call locations to their enclosing function and module. Records
  // are copied (not pointed to): walking an eval body appends to CallSites,
  // which may reallocate.
  std::map<SourceLoc, SiteRecord> SiteByLoc;
  for (const SiteRecord &Rec : CallSites)
    SiteByLoc[Rec.Site->loc()] = Rec;

  std::map<FileId, Module *> ModuleByFile;
  for (const auto &M : Ctx.modules())
    ModuleByFile[M->File] = M.get();

  // HintSet deduplicates eval hints at insert, so every (loc, code) pair
  // here is unique.
  for (const auto &[CallLoc, Code] : Hints->evalHints()) {
    auto SiteIt = SiteByLoc.find(CallLoc);
    if (SiteIt == SiteByLoc.end())
      continue; // eval inside eval'd code, or a Function-ctor pseudo site.
    const SiteRecord &Rec = SiteIt->second;

    // Parse the observed code string in the lexical scope of the eval call
    // and analyze it like a nested function body.
    DiagnosticEngine EvalDiags; // Parse errors must not pollute the project.
    Parser P(Ctx, EvalDiags);
    FunctionDef *F = P.parseEval(Code, Rec.Enclosing, CallLoc);
    if (!F)
      continue;
    ScopeResolver(Ctx).resolveFunction(F);

    Module *SavedModule = CurModule;
    auto ModIt = ModuleByFile.find(CallLoc.File);
    CurModule = ModIt == ModuleByFile.end() ? SavedModule : ModIt->second;
    OriginScope Tag(*this, OriginKind::EvalBody, CallLoc);
    registerFunction(F);
    walkFunctionBody(F);
    CurModule = SavedModule;
    // Let reachability flow from the eval call site into the eval'd code.
    ModuleEdges[Rec.Site->id()].insert(F->id());
  }
}

//===----------------------------------------------------------------------===//
// Ablation: non-relational (property-name-only) hints
//===----------------------------------------------------------------------===//

void StaticAnalysis::applyNonRelationalHints() {
  assert(Hints && "non-relational mode requires hints");
  StringPool &SP = Loader.context().strings();

  // A dynamic read at l with observed names p1..pn becomes the static reads
  // E.p1, ..., E.pn.
  for (const auto &[ReadLoc, Names] : Hints->readNames()) {
    auto SiteIt = DynReadByLoc.find(ReadLoc);
    if (SiteIt == DynReadByLoc.end())
      continue;
    OriginScope Tag(*this, OriginKind::NonRelationalHint, ReadLoc);
    const DynReadSite &Site = DynReads[SiteIt->second];
    CVarId Result = VF.exprVar(Site.Node->id());
    for (const std::string &Name : Names)
      readProperty(Site.Base, SP.intern(Name), Result);
  }

  // A dynamic write at l with observed names p1..pn becomes the static
  // writes E.p1 = E'', ..., E.pn = E'' — the imprecise alternative the
  // paper discusses at the end of Section 4.
  for (const DynWriteSite &Site : DynWrites) {
    auto NamesIt = Hints->writeNames().find(Site.OpLoc);
    if (NamesIt == Hints->writeNames().end())
      continue;
    OriginScope Tag(*this, OriginKind::NonRelationalHint, Site.OpLoc);
    for (const std::string &Name : NamesIt->second)
      writeProperty(Site.Base, SP.intern(Name), Site.Value);
  }
}

//===----------------------------------------------------------------------===//
// Ablation: TAJS-style over-approximation
//===----------------------------------------------------------------------===//

void StaticAnalysis::applyOverApproximation() {
  // Dynamic writes may hit any property: the value flows into the [[any]]
  // field of every base token; fixed and dynamic reads include [[any]]
  // (fixed reads get it in readPropertyFromToken).
  for (const DynWriteSite &Site : DynWrites) {
    OriginScope Tag(*this, OriginKind::OverApprox, Site.OpLoc);
    CVarId Value = Site.Value;
    S.addListener(Site.Base, [this, Value](TokenId T) {
      if (TF.token(T).K == AbsValue::Kind::Builtin)
        return;
      S.addEdge(Value, VF.propVar(T, SymAnyProp));
    });
  }
  // Dynamic reads may yield any property's values.
  for (const DynReadSite &Site : DynReads) {
    OriginScope Tag(*this, OriginKind::OverApprox, Site.Node->loc());
    CVarId Result = VF.exprVar(Site.Node->id());
    S.addListener(Site.Base, [this, Result](TokenId T) {
      S.addEdge(VF.propVar(T, SymAnyProp), Result);
      forEachPropVar(T, [this, Result](Symbol Sym, CVarId Var) {
        if (!isInternalSymbol(Sym))
          S.addEdge(Var, Result);
      });
    });
  }
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

AnalysisResult StaticAnalysis::extract() {
  AstContext &Ctx = Loader.context();
  AnalysisResult R;
  R.Solver = S.stats();
  R.SolverParallel = S.parallelStats();
  R.NumTokens = TF.size();
  R.NumVars = VF.size();

  for (const auto &F : Ctx.functions())
    if (!F->isModule() && !F->isInEval())
      ++R.NumFunctions;

  // Call-site metrics and the location-keyed call graph. Accessor access
  // sites (getter/setter invocations at property reads/writes) join the
  // call-site population, as in the paper's Figure 7 discussion.
  std::vector<SiteRecord> AllSites = CallSites;
  for (const auto &[NodeIdKey, Rec] : AccessorSites)
    AllSites.push_back(Rec);
  R.NumCallSites = AllSites.size();
  for (const SiteRecord &Rec : AllSites) {
    auto It = CallEdges.find(Rec.Site->id());
    size_t NumCallees = It == CallEdges.end() ? 0 : It->second.size();
    if (NumCallees >= 1)
      ++R.NumResolvedCallSites;
    if (NumCallees <= 1)
      ++R.NumMonomorphicCallSites;
    R.NumCallEdges += NumCallees;
    if (It != CallEdges.end())
      for (FunctionId F : It->second)
        R.CG.addEdge(Rec.Site->loc(), Ctx.function(F)->loc());
  }

  // Reachability from the main package's module functions, following both
  // call edges and require (module) edges.
  std::set<FunctionId> Reachable;
  std::deque<FunctionId> Work;
  for (const auto &M : Ctx.modules())
    if (M->Package == Opts.MainPackage)
      if (Reachable.insert(M->Func->id()).second)
        Work.push_back(M->Func->id());

  // Group call sites by enclosing function for the traversal.
  std::map<FunctionId, std::vector<const SiteRecord *>> SitesByFunc;
  for (const SiteRecord &Rec : AllSites)
    if (Rec.Enclosing)
      SitesByFunc[Rec.Enclosing->id()].push_back(&Rec);

  while (!Work.empty()) {
    FunctionId F = Work.front();
    Work.pop_front();
    auto SitesIt = SitesByFunc.find(F);
    if (SitesIt == SitesByFunc.end())
      continue;
    for (const SiteRecord *Rec : SitesIt->second) {
      auto Visit = [&](const std::map<NodeId, std::set<FunctionId>> &Edges) {
        auto It = Edges.find(Rec->Site->id());
        if (It == Edges.end())
          return;
        for (FunctionId Callee : It->second)
          if (Reachable.insert(Callee).second)
            Work.push_back(Callee);
      };
      Visit(CallEdges);
      Visit(ModuleEdges);
    }
  }
  R.NumReachableFunctions = Reachable.size();
  for (FunctionId F : Reachable)
    R.ReachableFunctions.insert(Ctx.function(F)->loc());
  return R;
}
