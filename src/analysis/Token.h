//===- Token.h - Abstract values for the points-to analysis -----*- C++ -*-===//
///
/// \file
/// Abstract values (tokens) of the subset-based analysis (Section 4). The
/// paper's `t_l` tokens use allocation-site abstraction; tokens here carry
/// the kind of site so hints (AllocRef = location + prototype flag) resolve
/// unambiguously:
///
///  - Function:  a function definition (one token per FunctionDef);
///  - Object:    an allocation at an expression node (object/array literal,
///               new-expression, or an allocating builtin call site);
///  - Prototype: the implicit `.prototype` object of a function;
///  - Exports:   the default `module.exports` object of a module;
///  - ModuleObj: the `module` object of a module;
///  - Builtin:   a modeled standard-library object or function.
///
/// Token ids are dense, enabling BitSet points-to sets.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_ANALYSIS_TOKEN_H
#define JSAI_ANALYSIS_TOKEN_H

#include "approx/HintSet.h"
#include "ast/Ast.h"

#include <unordered_map>
#include <vector>

namespace jsai {

/// Modeled standard-library entities. Extend as models grow; order is part
/// of determinism, append only.
enum class BuiltinId : uint16_t {
  // Namespaces / prototype objects.
  ObjectCtor,
  ArrayCtor,
  FunctionCtor,
  StringCtor,
  NumberCtor,
  BooleanCtor,
  ErrorCtor,
  Console,
  MathObj,
  JsonObj,
  ProcessObj,
  ObjectProto,
  ArrayProto,
  FunctionProto,
  StringProto,
  EventEmitterProto,
  ServerObj,
  // Functions with dataflow models.
  Require,
  ObjectAssign,
  ObjectCreate,
  ObjectKeys,
  ObjectValues,
  ObjectGetOwnPropertyNames,
  ObjectGetOwnPropertyDescriptor,
  ObjectDefineProperty,
  ObjectDefineProperties,
  ObjectGetPrototypeOf,
  ObjectSetPrototypeOf,
  ObjectFreeze,
  ArrayIsArray,
  ArrayFrom,
  ArrayForEach,
  ArrayMap,
  ArrayFilter,
  ArraySome,
  ArrayEvery,
  ArrayFind,
  ArrayReduce,
  ArrayPush,
  ArrayPop,
  ArrayShift,
  ArrayUnshift,
  ArraySlice,
  ArraySplice,
  ArrayConcat,
  ArraySort,
  ArrayReverse,
  ArrayJoin,
  FunctionApply,
  FunctionCall,
  FunctionBind,
  CallbackInvoker, ///< Generic: invokes any function argument (timers, http,
                   ///< fs callbacks, server.listen, ...).
  EventEmitterCtor,
  EventEmitterOn,
  EventEmitterEmit,
  UtilInherits,
  EvalFn,
  Noop, ///< Modeled as value- and effect-free.
  // Builtin Node modules (the fallbacks when no project package shadows
  // them).
  HttpModule,
  FsModule,
  NetModule,
  PathModule,
  UtilModule,
  ChildProcessModule,
  NumBuiltinIds
};

/// One abstract value.
struct AbsValue {
  enum class Kind : uint8_t {
    Function,
    Object,
    Prototype,
    Exports,
    ModuleObj,
    Builtin,
    /// The `arguments` object of a function (array-like summary).
    Arguments,
  };
  Kind K;
  uint32_t Payload; ///< FunctionId / NodeId / module index / BuiltinId.
};

/// Dense token id.
using TokenId = uint32_t;

/// Interns tokens and maps allocation-site references (from hints) to them.
class TokenFactory {
public:
  explicit TokenFactory(const AstContext &Ctx) : Ctx(Ctx) {}

  TokenId functionToken(FunctionId F) { return get(AbsValue::Kind::Function, F); }
  TokenId objectToken(NodeId N) { return get(AbsValue::Kind::Object, N); }
  TokenId prototypeToken(FunctionId F) {
    return get(AbsValue::Kind::Prototype, F);
  }
  TokenId exportsToken(uint32_t ModuleIdx) {
    return get(AbsValue::Kind::Exports, ModuleIdx);
  }
  TokenId moduleObjToken(uint32_t ModuleIdx) {
    return get(AbsValue::Kind::ModuleObj, ModuleIdx);
  }
  TokenId builtinToken(BuiltinId B) {
    return get(AbsValue::Kind::Builtin, uint32_t(B));
  }
  TokenId argumentsToken(FunctionId F) {
    return get(AbsValue::Kind::Arguments, F);
  }

  const AbsValue &token(TokenId Id) const { return Tokens[Id]; }
  size_t size() const { return Tokens.size(); }

  /// Registers \p Ref as the allocation site of \p Id (used when resolving
  /// hints back to tokens). First registration wins.
  void registerAllocSite(const AllocRef &Ref, TokenId Id);

  /// \returns the token allocated at \p Ref, or ~0u when the location does
  /// not correspond to any statically known allocation site.
  TokenId tokenForAllocSite(const AllocRef &Ref) const;

  /// Debug rendering ("fn:express/index.js:4:1", "obj:...", ...).
  std::string describe(TokenId Id) const;

private:
  TokenId get(AbsValue::Kind K, uint32_t Payload);

  const AstContext &Ctx;
  std::vector<AbsValue> Tokens;
  std::unordered_map<uint64_t, TokenId> Index;
  std::unordered_map<uint64_t, TokenId> AllocSites;

  static uint64_t allocKey(const AllocRef &Ref) {
    return (Ref.Loc.key() << 1) | (Ref.IsPrototype ? 1 : 0);
  }
};

} // namespace jsai

#endif // JSAI_ANALYSIS_TOKEN_H
