//===- StaticAnalysis.h - Call graph / points-to analysis -------*- C++ -*-===//
///
/// \file
/// The subset-based, flow- and context-insensitive points-to analysis with
/// on-the-fly call-graph construction of Section 4, over whole projects
/// (application + all dependencies), with standard-library models.
///
/// Modes:
///  - Baseline:          dynamic property reads/writes are ignored (the
///                       pragmatic-but-unsound design of WALA/JAM/Jelly);
///  - Hints:             baseline + the paper's [DPR]/[DPW] rules consuming
///                       approximate-interpretation hints (and, optionally,
///                       module-load hints);
///  - NonRelationalHints: the Section 4 alternative — only observed property
///                       *names* are used, dynamic accesses become static
///                       accesses for each observed name (ablation);
///  - OverApprox:        TAJS-style conservative treatment — a dynamic write
///                       may hit any property, a dynamic read may yield any
///                       property's values (ablation).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_ANALYSIS_STATICANALYSIS_H
#define JSAI_ANALYSIS_STATICANALYSIS_H

#include "analysis/Solver.h"
#include "approx/HintSet.h"
#include "callgraph/CallGraph.h"
#include "explain/Provenance.h"
#include "interp/ModuleLoader.h"

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

namespace jsai {

enum class AnalysisMode : uint8_t {
  Baseline,
  Hints,
  NonRelationalHints,
  OverApprox,
};

/// Analysis configuration.
struct AnalysisOptions {
  AnalysisMode Mode = AnalysisMode::Baseline;
  /// Apply rule [DPR] (read hints). The evaluation disables this for one
  /// benchmark (Table 2's starred row).
  bool UseReadHints = true;
  /// Apply rule [DPW] (write hints).
  bool UseWriteHints = true;
  /// Apply module-load hints at dynamic require sites.
  bool UseModuleHints = true;
  /// Section 6 extension: treat a dynamic read whose base was unknown (p*)
  /// but whose name was observed as a static read — only at sites where no
  /// ordinary read hints exist (the paper's precision guard).
  bool UseUnknownArgHints = false;
  /// Section 6 extension: statically analyze the code strings observed at
  /// eval calls as additional program code.
  bool UseEvalBodyAnalysis = false;
  /// Package whose module functions seed the reachability metric.
  std::string MainPackage = "app";
  /// Points-to set representation for the solver (ablation toggle; the
  /// default follows --solver-set= / JSAI_SOLVER_SET).
  SolverSetKind SolverSet = defaultSolverSetKind();
  /// Thread budget for the solver's fixpoint loop (the default follows
  /// --solver-jobs= / JSAI_SOLVER_JOBS). Results are byte-identical at any
  /// value; > 1 merely parallelizes the per-wave set arithmetic.
  size_t SolverJobs = defaultSolverJobs();
  /// Provenance recording for the explain subsystem (the default follows
  /// --explain= / JSAI_EXPLAIN). When on, the solver tags every first
  /// token arrival with its origin (hint, builtin model, eval body, ...) so
  /// `jsai explain` can trace missed call edges and inflated points-to
  /// sets back to root causes. Never changes any analysis result or metric
  /// — only the side provenance tables.
  bool Explain = defaultExplainRecording();
  /// Optional deadline token (armed by the caller): the solver polls it per
  /// worklist pop and stops at a partial fixpoint on expiry. The extracted
  /// result is then an under-approximation of the full fixpoint.
  CancellationToken *Cancel = nullptr;
};

/// Everything the evaluation needs from one analysis run.
struct AnalysisResult {
  CallGraph CG;
  size_t NumCallSites = 0;
  size_t NumResolvedCallSites = 0;
  size_t NumMonomorphicCallSites = 0;
  size_t NumCallEdges = 0;
  size_t NumFunctions = 0;
  size_t NumReachableFunctions = 0;
  /// Locations of reachable functions (used by the vulnerability study).
  std::set<SourceLoc> ReachableFunctions;
  SolverStats Solver;
  /// Execution-strategy counters of the parallel fixpoint; not part of
  /// SolverStats so default telemetry stays independent of --solver-jobs.
  SolverParallelStats SolverParallel;
  size_t NumTokens = 0;
  size_t NumVars = 0;

  double resolvedFraction() const {
    return NumCallSites ? double(NumResolvedCallSites) / double(NumCallSites)
                        : 0.0;
  }
  double monomorphicFraction() const {
    return NumCallSites
               ? double(NumMonomorphicCallSites) / double(NumCallSites)
               : 0.0;
  }
};

/// One analysis run over a parsed project.
class StaticAnalysis {
public:
  /// \p Hints may be null for AnalysisMode::Baseline / OverApprox; it is
  /// required for the hint-consuming modes.
  StaticAnalysis(ModuleLoader &Loader, AnalysisOptions Opts = AnalysisOptions(),
                 const HintSet *Hints = nullptr);

  /// Builds constraints, applies hints, solves, and extracts the result.
  AnalysisResult run();

  /// Like run(), but tags every mode-derived constraint (hints and all
  /// constraints listeners derive from them) with a retractable solver
  /// group and keeps the object alive for revalidate(). The serve warm
  /// path uses this to keep one solved analysis per project.
  AnalysisResult runTracked();

  /// Whether revalidate() could currently succeed (no cycle collapse since
  /// tracking began, no cross-group duplicate edge).
  bool canRevalidate() const { return S.canRetract(TrackedGroup); }

  /// Retract-and-readd revalidation over the solved state from
  /// runTracked(): retracts the tracked constraint group, re-applies the
  /// mode's constraints from the (unchanged) hints into a fresh group, and
  /// re-solves. Because re-adding identical constraints reaches exactly
  /// the cold fixpoint (retraction is a sound over-approximation and the
  /// re-add re-derives every lingering token), the extracted metrics must
  /// match the runTracked() result; callers compare and fall back to a
  /// cold solve on any mismatch. \returns nullopt when retraction refuses
  /// or the solver was cancelled.
  std::optional<AnalysisResult> revalidate();

  /// One recorded call site (public: the explain subsystem classifies
  /// missed dynamic edges by the shape of their static site).
  struct SiteRecord {
    Node *Site = nullptr;
    FunctionDef *Enclosing = nullptr;
    /// Constraint variable the call dispatches on (~0 for accessor sites,
    /// which have no syntactic callee expression).
    CVarId CalleeVar = ~CVarId(0);
    /// True when the callee is a computed member access (obj[expr]()) —
    /// the dynamic-dispatch shape hints exist to resolve.
    bool ComputedCallee = false;
  };

  /// Read-only views over one finished run for the explain subsystem
  /// (src/explain/). Valid only while this object is alive; pointers are
  /// borrowed, never owned.
  struct ExplainView {
    const ModuleLoader *Loader = nullptr;
    const AnalysisOptions *Opts = nullptr;
    const TokenFactory *TF = nullptr;
    const CVarFactory *VF = nullptr;
    const Solver *S = nullptr;
    const OriginTable *Origins = nullptr;
    const std::vector<SiteRecord> *Sites = nullptr;
    /// The hint set the run consumed (null in hint-free modes).
    const HintSet *Hints = nullptr;
  };
  ExplainView explainView() const {
    return ExplainView{&Loader, &Opts, &TF, &VF, &S, &Origins, &CallSites,
                       Hints};
  }

private:
  //===--------------------------------------------------------------------===
  // AST constraint generation (AnalysisBuilder.cpp)
  //===--------------------------------------------------------------------===
  void buildAll();
  void buildModule(Module *M, uint32_t ModuleIdx);
  void walkFunctionBody(FunctionDef *F);
  void buildStmt(Stmt *S);
  CVarId buildExpr(Expr *E);
  CVarId buildCallLike(Node *Site, Expr *Callee,
                       const std::vector<Expr *> &Args, bool IsNew);
  TokenId registerFunction(FunctionDef *F);
  /// The innermost non-arrow function enclosing the current position (for
  /// `this`).
  FunctionDef *thisOwner() const;

  //===--------------------------------------------------------------------===
  // Property and call machinery (AnalysisBuilder.cpp)
  //===--------------------------------------------------------------------===
  /// \p Site (when given) is the AST node of the access, used to record
  /// getter/setter call edges at read/write sites.
  void readProperty(CVarId Base, Symbol Name, CVarId Result,
                    Node *Site = nullptr);
  void readPropertyFromToken(TokenId T, Symbol Name, CVarId Result,
                             Node *Site = nullptr,
                             FunctionDef *SiteOwner = nullptr);
  void writeProperty(CVarId Base, Symbol Name, CVarId Value,
                     Node *Site = nullptr);
  /// Registers \p Site as a getter/setter call site (property accesses
  /// that the solver resolved to accessor invocations).
  void recordAccessorSite(Node *Site, FunctionDef *SiteOwner,
                          FunctionId Accessor);
  /// Runs \p Fn for every named property variable of \p T, present and
  /// future (the engine behind Object.assign summaries, Object.values, and
  /// the over-approximating ablation).
  void forEachPropVar(TokenId T, std::function<void(Symbol, CVarId)> Fn);
  /// Installs a property-copy summary: every property of \p Src (current
  /// and future) flows to the same-named property of \p Dst.
  void copyAllProps(TokenId Src, TokenId Dst);
  /// True for analysis-internal property names that copies and
  /// all-property reads must skip.
  bool isInternalSymbol(Symbol Sym) const;
  /// Marks \p T as array-like: dynamic accesses on it use the element
  /// summary even in baseline mode (array handling is not the unsoundness
  /// the paper targets).
  void markArrayLike(TokenId T) { ArrayLike.insert(T); }
  bool isArrayLike(TokenId T) const { return ArrayLike.count(T) != 0; }

  struct CallSiteInfo {
    Node *Site = nullptr;
    std::vector<CVarId> Args;
    CVarId Receiver = 0;
    bool HasReceiver = false;
    CVarId Result = 0;
    bool IsNew = false;
    Module *EnclosingModule = nullptr;
  };
  /// Attaches the on-the-fly call dispatch to \p CalleeVar.
  void addCallConstraint(std::shared_ptr<CallSiteInfo> CS, CVarId CalleeVar);
  void applyFunctionCall(const CallSiteInfo &CS, FunctionId F);
  void recordCallEdge(Node *Site, FunctionId Callee);
  /// Runs \p Fn for every pair of tokens from \p VarA x \p VarB.
  void forEachPair(CVarId VarA, CVarId VarB,
                   std::function<void(TokenId, TokenId)> Fn);

  //===--------------------------------------------------------------------===
  // Builtin models (BuiltinModels.cpp)
  //===--------------------------------------------------------------------===
  void seedBuiltins();
  void seedGlobal(const char *Name, BuiltinId B);
  void seedMethod(BuiltinId Holder, const char *Name, BuiltinId Method);
  void applyBuiltinCall(std::shared_ptr<CallSiteInfo> CS, BuiltinId B);
  /// Allocation performed by a builtin at its call site (Object.create,
  /// array results, ...).
  TokenId allocAtCallSite(const CallSiteInfo &CS, BuiltinId ProtoBuiltin);

  //===--------------------------------------------------------------------===
  // Hints and modes (StaticAnalysis.cpp)
  //===--------------------------------------------------------------------===
  /// Dispatches to the current mode's constraint application (hints /
  /// non-relational hints / over-approximation; baseline adds nothing).
  void applyModeConstraints();
  void applyHints();
  void applyUnknownArgHints();
  void applyEvalBodies();
  void applyNonRelationalHints();
  void applyOverApproximation();
  AnalysisResult extract();

  //===--------------------------------------------------------------------===
  // State
  //===--------------------------------------------------------------------===
  ModuleLoader &Loader;
  AnalysisOptions Opts;
  const HintSet *Hints;

  TokenFactory TF;
  CVarFactory VF;
  Solver S;
  /// Origin table for provenance recording; populated only when
  /// Opts.Explain (id 0 = plain AST constraint otherwise).
  OriginTable Origins;
  /// Group holding the mode-derived constraints of runTracked(); bumped on
  /// every revalidate() so the re-added constraints get a fresh tag.
  ConstraintGroup TrackedGroup = 0;

  /// Scoped origin tag: sets the solver's current origin for the duration
  /// when explain recording is on, restoring the previous one on exit; a
  /// no-op (not even an intern) otherwise.
  class OriginScope {
  public:
    OriginScope(StaticAnalysis &SA, OriginKind K, SourceLoc Loc,
                uint32_t Extra = 0)
        : S(SA.S), Active(SA.Opts.Explain) {
      if (Active) {
        Saved = S.currentOrigin();
        S.setOrigin(SA.Origins.intern(K, Loc, Extra));
      }
    }
    ~OriginScope() {
      if (Active)
        S.setOrigin(Saved);
    }
    OriginScope(const OriginScope &) = delete;
    OriginScope &operator=(const OriginScope &) = delete;

  private:
    Solver &S;
    bool Active;
    ProvOriginId Saved = 0;
  };

  // Interned internal property names.
  Symbol SymProtoChain;  ///< "[[proto]]"
  Symbol SymElem;        ///< "[[elem]]" — array element summary.
  Symbol SymHandlers;    ///< "[[handlers]]" — EventEmitter summary.
  Symbol SymAnyProp;     ///< "[[any]]" — over-approximation field.
  Symbol SymPrototypeName;

  // Walk state.
  Module *CurModule = nullptr;
  std::vector<FunctionDef *> FuncStack;

  // Recorded sites.
  struct DynReadSite {
    MemberExpr *Node;
    CVarId Base;
  };
  struct DynWriteSite {
    SourceLoc OpLoc;
    CVarId Base;
    CVarId Value;
  };
  std::vector<DynReadSite> DynReads;
  std::map<SourceLoc, size_t> DynReadByLoc;
  std::vector<DynWriteSite> DynWrites;
  std::vector<SiteRecord> CallSites;
  /// Property accesses resolved to accessor calls — they join the call-site
  /// population during extraction (the paper's getter/setter call sites).
  std::map<NodeId, SiteRecord> AccessorSites;
  std::map<NodeId, std::set<FunctionId>> CallEdges;
  /// require-site -> module-function edges; used for reachability only,
  /// not counted as call edges (matching NodeProf-style dynamic CGs).
  std::map<NodeId, std::set<FunctionId>> ModuleEdges;
  std::map<std::string, uint32_t> ModuleIndexByPath;
  std::map<std::string, BuiltinId> BuiltinModuleMap;

  // Summary state.
  std::map<TokenId, std::vector<std::function<void(Symbol, CVarId)>>>
      PropCallbacks;
  /// Accessor properties declared in object literals: (token, name) -> the
  /// getter / setter function definitions (getter call edges appear at
  /// read sites, matching the runtime and the paper's Figure 7 remark).
  std::map<std::pair<TokenId, Symbol>, std::set<FunctionId>> GetterProps;
  std::map<std::pair<TokenId, Symbol>, std::set<FunctionId>> SetterProps;
  std::set<TokenId> ArrayLike;
  std::set<uint64_t> ReadMemo;
  std::set<const FunctionDef *> WalkedBodies;
};

} // namespace jsai

#endif // JSAI_ANALYSIS_STATICANALYSIS_H
