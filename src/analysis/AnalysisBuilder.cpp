//===- AnalysisBuilder.cpp - AST constraint generation ----------------------===//
//
// Implements the constraint rules of Figure 3 (the first five, standard
// rows) plus the property/call machinery shared with the builtin models.
// Dynamic property accesses generate no constraints here — they are
// recorded and handled per analysis mode (ignored / hints / non-relational /
// over-approximation) in StaticAnalysis.cpp — except on array-like tokens,
// where element summaries apply in every mode.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

#include <cassert>

using namespace jsai;

//===----------------------------------------------------------------------===//
// Top-level structure
//===----------------------------------------------------------------------===//

void StaticAnalysis::buildAll() {
  AstContext &Ctx = Loader.context();
  const auto &Modules = Ctx.modules();
  for (uint32_t Idx = 0; Idx != Modules.size(); ++Idx)
    ModuleIndexByPath[Modules[Idx]->Path] = Idx;
  seedBuiltins();
  for (uint32_t Idx = 0; Idx != Modules.size(); ++Idx)
    buildModule(Modules[Idx].get(), Idx);
}

void StaticAnalysis::buildModule(Module *M, uint32_t ModuleIdx) {
  AstContext &Ctx = Loader.context();
  FunctionDef *F = M->Func;
  CurModule = M;

  TokenId FnTok = registerFunction(F);
  (void)FnTok;
  TokenId ExportsTok = TF.exportsToken(ModuleIdx);
  TokenId ModuleTok = TF.moduleObjToken(ModuleIdx);
  // The default exports object is "allocated" at the synthetic per-module
  // location (file, 0, 1) — matching the runtime's loadModule.
  TF.registerAllocSite(AllocRef{SourceLoc(M->File, 0, 1), false}, ExportsTok);
  TF.registerAllocSite(AllocRef{SourceLoc(M->File, 0, 2), false}, ModuleTok);
  S.addToken(VF.propVar(ExportsTok, SymProtoChain),
             TF.builtinToken(BuiltinId::ObjectProto));

  // Parameters: (exports, require, module).
  assert(F->params().size() == 3 && "module function shape");
  S.addToken(VF.declVar(F->params()[0]->id()), ExportsTok);
  S.addToken(VF.declVar(F->params()[1]->id()),
             TF.builtinToken(BuiltinId::Require));
  S.addToken(VF.declVar(F->params()[2]->id()), ModuleTok);
  S.addToken(VF.propVar(ModuleTok, Ctx.SymExports), ExportsTok);
  // Top-level `this` is module.exports.
  S.addToken(VF.thisVar(F->id()), ExportsTok);

  walkFunctionBody(F);
  CurModule = nullptr;
}

TokenId StaticAnalysis::registerFunction(FunctionDef *F) {
  TokenId FnTok = TF.functionToken(F->id());
  TokenId ProtoTok = TF.prototypeToken(F->id());
  TF.registerAllocSite(AllocRef{F->loc(), false}, FnTok);
  TF.registerAllocSite(AllocRef{F->loc(), true}, ProtoTok);
  S.addToken(VF.propVar(FnTok, SymPrototypeName), ProtoTok);
  S.addToken(VF.propVar(ProtoTok, Loader.context().SymConstructor), FnTok);
  S.addToken(VF.propVar(FnTok, SymProtoChain),
             TF.builtinToken(BuiltinId::FunctionProto));
  S.addToken(VF.propVar(ProtoTok, SymProtoChain),
             TF.builtinToken(BuiltinId::ObjectProto));
  return FnTok;
}

void StaticAnalysis::walkFunctionBody(FunctionDef *F) {
  if (!WalkedBodies.insert(F).second)
    return;
  FuncStack.push_back(F);
  for (Stmt *Child : F->body()->body())
    buildStmt(Child);
  FuncStack.pop_back();
}

FunctionDef *StaticAnalysis::thisOwner() const {
  for (auto It = FuncStack.rbegin(); It != FuncStack.rend(); ++It)
    if (!(*It)->isArrow())
      return *It;
  return FuncStack.front();
}

//===----------------------------------------------------------------------===//
// Property machinery
//===----------------------------------------------------------------------===//

bool StaticAnalysis::isInternalSymbol(Symbol Sym) const {
  return Sym == SymProtoChain || Sym == SymElem || Sym == SymHandlers ||
         Sym == SymAnyProp;
}

void StaticAnalysis::recordAccessorSite(Node *Site, FunctionDef *SiteOwner,
                                        FunctionId Accessor) {
  recordCallEdge(Site, Accessor);
  AccessorSites.emplace(Site->id(), SiteRecord{Site, SiteOwner});
}

void StaticAnalysis::readPropertyFromToken(TokenId T, Symbol Name,
                                           CVarId Result, Node *Site,
                                           FunctionDef *SiteOwner) {
  // Memoize: the same (token, name, result) may be reached repeatedly via
  // prototype-chain listeners.
  uint64_t Key =
      (uint64_t(T) << 40) ^ (uint64_t(Name) << 20) ^ uint64_t(Result);
  if (!ReadMemo.insert(Key).second)
    return;
  S.addEdge(VF.propVar(T, Name), Result);
  if (Opts.Mode == AnalysisMode::OverApprox && !isInternalSymbol(Name))
    S.addEdge(VF.propVar(T, SymAnyProp), Result);
  // Accessor property: the read is a getter call (the property-access
  // location is the call site).
  if (Site) {
    auto GetterIt = GetterProps.find({T, Name});
    if (GetterIt != GetterProps.end())
      for (FunctionId G : GetterIt->second)
        recordAccessorSite(Site, SiteOwner, G);
  }
  // Walk the prototype chain on the fly.
  S.addListener(VF.propVar(T, SymProtoChain),
                [this, Name, Result, Site, SiteOwner](TokenId P) {
                  readPropertyFromToken(P, Name, Result, Site, SiteOwner);
                });
}

void StaticAnalysis::readProperty(CVarId Base, Symbol Name, CVarId Result,
                                  Node *Site) {
  // Capture the enclosing function now: the listener fires during solving,
  // when the walk stack is gone (needed for accessor-site reachability).
  FunctionDef *SiteOwner = FuncStack.empty() ? nullptr : FuncStack.back();
  S.addListener(Base, [this, Name, Result, Site, SiteOwner](TokenId T) {
    readPropertyFromToken(T, Name, Result, Site, SiteOwner);
  });
}

void StaticAnalysis::writeProperty(CVarId Base, Symbol Name, CVarId Value,
                                   Node *Site) {
  FunctionDef *SiteOwner = FuncStack.empty() ? nullptr : FuncStack.back();
  S.addListener(Base, [this, Name, Value, Site, SiteOwner](TokenId T) {
    const AbsValue &Tok = TF.token(T);
    if (Tok.K == AbsValue::Kind::Builtin)
      return; // Writes onto builtin namespaces are not tracked.
    S.addEdge(Value, VF.propVar(T, Name));
    // Accessor property: the write is a setter call.
    auto SetterIt = SetterProps.find({T, Name});
    if (SetterIt != SetterProps.end())
      for (FunctionId SetterFn : SetterIt->second) {
        FunctionDef *Fn = Loader.context().function(SetterFn);
        if (!Fn->params().empty())
          S.addEdge(Value, VF.declVar(Fn->params()[0]->id()));
        if (Site)
          recordAccessorSite(Site, SiteOwner, SetterFn);
      }
  });
}

void StaticAnalysis::forEachPropVar(TokenId T,
                                    std::function<void(Symbol, CVarId)> Fn) {
  // Replay existing property variables, then subscribe to new ones (the
  // CVarFactory hook dispatches through PropCallbacks).
  for (const auto &[Sym, Var] : VF.propsOf(T))
    Fn(Sym, Var);
  PropCallbacks[T].push_back(std::move(Fn));
}

void StaticAnalysis::copyAllProps(TokenId Src, TokenId Dst) {
  if (Src == Dst)
    return;
  forEachPropVar(Src, [this, Dst](Symbol Sym, CVarId Var) {
    if (isInternalSymbol(Sym) || Sym == SymPrototypeName)
      return;
    S.addEdge(Var, VF.propVar(Dst, Sym));
  });
  // Element summaries copy too (Object.assign over arrays).
  S.addEdge(VF.propVar(Src, SymElem), VF.propVar(Dst, SymElem));
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

void StaticAnalysis::recordCallEdge(Node *Site, FunctionId Callee) {
  CallEdges[Site->id()].insert(Callee);
}

void StaticAnalysis::forEachPair(CVarId VarA, CVarId VarB,
                                 std::function<void(TokenId, TokenId)> Fn) {
  struct PairState {
    std::vector<TokenId> As, Bs;
    std::function<void(TokenId, TokenId)> Fn;
  };
  auto State = std::make_shared<PairState>();
  State->Fn = std::move(Fn);
  S.addListener(VarA, [State](TokenId A) {
    State->As.push_back(A);
    for (TokenId B : State->Bs)
      State->Fn(A, B);
  });
  S.addListener(VarB, [State](TokenId B) {
    State->Bs.push_back(B);
    for (TokenId A : State->As)
      State->Fn(A, B);
  });
}

void StaticAnalysis::applyFunctionCall(const CallSiteInfo &CS, FunctionId F) {
  AstContext &Ctx = Loader.context();
  FunctionDef *Fn = Ctx.function(F);
  if (Fn->isModule())
    return; // Module functions are only invoked via require.
  recordCallEdge(CS.Site, F);

  const std::vector<VarDecl *> &Params = Fn->params();
  for (size_t I = 0; I < CS.Args.size() && I < Params.size(); ++I)
    S.addEdge(CS.Args[I], VF.declVar(Params[I]->id()));
  // All arguments also feed the callee's `arguments` summary.
  if (!Fn->isArrow())
    for (CVarId A : CS.Args)
      S.addEdge(A, VF.propVar(TF.argumentsToken(F), SymElem));

  if (!Fn->isArrow()) {
    if (CS.HasReceiver)
      S.addEdge(CS.Receiver, VF.thisVar(F));
    if (CS.IsNew) {
      TokenId NewTok = TF.objectToken(CS.Site->id());
      TF.registerAllocSite(AllocRef{CS.Site->loc(), false}, NewTok);
      S.addToken(VF.thisVar(F), NewTok);
      S.addToken(CS.Result, NewTok);
      // The instance's prototype chain starts at F.prototype.
      S.addEdge(VF.propVar(TF.functionToken(F), SymPrototypeName),
                VF.propVar(NewTok, SymProtoChain));
    }
  }
  S.addEdge(VF.retVar(F), CS.Result);
}

void StaticAnalysis::addCallConstraint(std::shared_ptr<CallSiteInfo> CS,
                                       CVarId CalleeVar) {
  S.addListener(CalleeVar, [this, CS](TokenId T) {
    const AbsValue &Tok = TF.token(T);
    switch (Tok.K) {
    case AbsValue::Kind::Function:
      applyFunctionCall(*CS, FunctionId(Tok.Payload));
      return;
    case AbsValue::Kind::Builtin:
      applyBuiltinCall(CS, BuiltinId(Tok.Payload));
      return;
    default:
      return; // Non-callable abstract value.
    }
  });
}

CVarId StaticAnalysis::buildCallLike(Node *Site, Expr *Callee,
                                     const std::vector<Expr *> &Args,
                                     bool IsNew) {
  auto CS = std::make_shared<CallSiteInfo>();
  CS->Site = Site;
  CS->IsNew = IsNew;
  CS->Result = VF.exprVar(Site->id());
  CS->EnclosingModule = CurModule;

  CVarId CalleeVar;
  bool ComputedCallee = false;
  if (auto *M = dyn_cast<MemberExpr>(Callee)) {
    CVarId BaseVar = buildExpr(M->object());
    CS->Receiver = BaseVar;
    CS->HasReceiver = true;
    CalleeVar = VF.exprVar(M->id());
    if (M->isComputed()) {
      ComputedCallee = true;
      buildExpr(M->index());
      // Dynamic callee read: recorded like any dynamic read so [DPR] (and
      // the ablations) can resolve method values.
      DynReadByLoc[M->loc()] = DynReads.size();
      DynReads.push_back({M, BaseVar});
      S.addListener(BaseVar, [this, M, CalleeVar](TokenId T) {
        if (isArrayLike(T))
          S.addEdge(VF.propVar(T, SymElem), CalleeVar);
      });
    } else {
      readProperty(BaseVar, M->name(), CalleeVar, M);
    }
  } else {
    CalleeVar = buildExpr(Callee);
  }

  CS->Args.reserve(Args.size());
  for (Expr *A : Args)
    CS->Args.push_back(buildExpr(A));

  CallSites.push_back({Site, FuncStack.back(), CalleeVar, ComputedCallee});
  addCallConstraint(CS, CalleeVar);
  return CS->Result;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

CVarId StaticAnalysis::buildExpr(Expr *E) {
  AstContext &Ctx = Loader.context();
  CVarId Result = VF.exprVar(E->id());
  switch (E->kind()) {
  case NodeKind::NumberLit:
  case NodeKind::StringLit:
  case NodeKind::BoolLit:
  case NodeKind::NullLit:
  case NodeKind::UndefinedLit:
    return Result; // Primitives carry no tokens.

  case NodeKind::Ident: {
    auto *I = cast<Ident>(E);
    if (I->decl()) {
      S.addEdge(VF.declVar(I->decl()->id()), Result);
      return Result;
    }
    if (I->name() == Ctx.SymArguments) {
      // The implicit `arguments` object of the enclosing non-arrow
      // function: an array-like summary fed by all call sites.
      TokenId Tok = TF.argumentsToken(thisOwner()->id());
      markArrayLike(Tok);
      S.addToken(Result, Tok);
      return Result;
    }
    S.addEdge(VF.globalVar(I->name()), Result);
    return Result;
  }

  case NodeKind::This:
    S.addEdge(VF.thisVar(thisOwner()->id()), Result);
    return Result;

  case NodeKind::ObjectLit: {
    auto *O = cast<ObjectLit>(E);
    TokenId Tok = TF.objectToken(O->id());
    TF.registerAllocSite(AllocRef{O->loc(), false}, Tok);
    S.addToken(VF.propVar(Tok, SymProtoChain),
               TF.builtinToken(BuiltinId::ObjectProto));
    S.addToken(Result, Tok);
    for (const ObjectProperty &P : O->properties()) {
      if (P.PKind != PropertyKind::Value) {
        // Accessor entry: register the getter/setter so reads and writes
        // become call edges; the getter's returns are the property values.
        auto *FE = dyn_cast<FunctionExpr>(P.Value);
        if (!FE)
          continue;
        registerFunction(FE->def());
        walkFunctionBody(FE->def());
        FunctionId AccessorId = FE->def()->id();
        S.addToken(VF.thisVar(AccessorId), Tok);
        if (P.PKind == PropertyKind::Getter) {
          GetterProps[{Tok, P.Key}].insert(AccessorId);
          S.addEdge(VF.retVar(AccessorId), VF.propVar(Tok, P.Key));
        } else {
          SetterProps[{Tok, P.Key}].insert(AccessorId);
        }
        continue;
      }
      CVarId ValueVar = buildExpr(P.Value);
      if (P.KeyExpr) {
        buildExpr(P.KeyExpr);
        // Computed key: a dynamic property write on the fresh object.
        DynWrites.push_back({P.KeyExpr->loc(), Result, ValueVar});
        continue;
      }
      S.addEdge(ValueVar, VF.propVar(Tok, P.Key));
    }
    return Result;
  }

  case NodeKind::ArrayLit: {
    auto *A = cast<ArrayLit>(E);
    TokenId Tok = TF.objectToken(A->id());
    TF.registerAllocSite(AllocRef{A->loc(), false}, Tok);
    S.addToken(VF.propVar(Tok, SymProtoChain),
               TF.builtinToken(BuiltinId::ArrayProto));
    markArrayLike(Tok);
    S.addToken(Result, Tok);
    for (Expr *El : A->elements())
      S.addEdge(buildExpr(El), VF.propVar(Tok, SymElem));
    return Result;
  }

  case NodeKind::FunctionExpr: {
    auto *FE = cast<FunctionExpr>(E);
    TokenId Tok = registerFunction(FE->def());
    S.addToken(Result, Tok);
    // Named function expressions bind their own name in scope.
    if (FE->def()->name() != InvalidSymbol) {
      if (VarDecl *Self = FE->def()->lookupScope(FE->def()->name()))
        if (Self->owner() == FE->def())
          S.addToken(VF.declVar(Self->id()), Tok);
    }
    walkFunctionBody(FE->def());
    return Result;
  }

  case NodeKind::Unary:
    buildExpr(cast<UnaryExpr>(E)->operand());
    return Result; // typeof/!/- produce primitives.

  case NodeKind::Binary:
    buildExpr(cast<BinaryExpr>(E)->lhs());
    buildExpr(cast<BinaryExpr>(E)->rhs());
    return Result; // Arithmetic/comparison produce primitives.

  case NodeKind::Logical: {
    auto *L = cast<LogicalExpr>(E);
    S.addEdge(buildExpr(L->lhs()), Result);
    S.addEdge(buildExpr(L->rhs()), Result);
    return Result;
  }

  case NodeKind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    buildExpr(C->cond());
    S.addEdge(buildExpr(C->thenExpr()), Result);
    S.addEdge(buildExpr(C->elseExpr()), Result);
    return Result;
  }

  case NodeKind::Assign: {
    auto *A = cast<AssignExpr>(E);
    CVarId ValueVar = buildExpr(A->value());
    bool TracksTokens =
        A->op() == AssignOp::Assign || A->op() == AssignOp::OrOr;

    if (auto *I = dyn_cast<Ident>(A->target())) {
      CVarId Target =
          I->decl() ? VF.declVar(I->decl()->id()) : VF.globalVar(I->name());
      if (TracksTokens) {
        S.addEdge(ValueVar, Target);
        S.addEdge(Target, Result);
        S.addEdge(ValueVar, Result);
      }
      return Result;
    }

    auto *M = cast<MemberExpr>(A->target());
    CVarId BaseVar = buildExpr(M->object());
    if (!TracksTokens) {
      if (M->isComputed())
        buildExpr(M->index());
      return Result;
    }
    if (M->isComputed()) {
      buildExpr(M->index());
      DynWrites.push_back({M->loc(), BaseVar, ValueVar});
      // Array-like bases take element writes in every mode.
      S.addListener(BaseVar, [this, ValueVar](TokenId T) {
        if (isArrayLike(T))
          S.addEdge(ValueVar, VF.propVar(T, SymElem));
      });
      if (A->op() == AssignOp::OrOr) {
        DynReadByLoc[M->loc()] = DynReads.size();
        DynReads.push_back({M, BaseVar});
        S.addEdge(VF.exprVar(M->id()), Result);
      }
    } else {
      writeProperty(BaseVar, M->name(), ValueVar, M);
      if (A->op() == AssignOp::OrOr) {
        readProperty(BaseVar, M->name(), Result, M);
      }
    }
    S.addEdge(ValueVar, Result);
    return Result;
  }

  case NodeKind::Update:
    buildExpr(cast<UpdateExpr>(E)->target());
    return Result; // Numeric.

  case NodeKind::Call: {
    auto *C = cast<CallExpr>(E);
    return buildCallLike(C, C->callee(), C->args(), /*IsNew=*/false);
  }

  case NodeKind::New: {
    auto *N = cast<NewExpr>(E);
    return buildCallLike(N, N->callee(), N->args(), /*IsNew=*/true);
  }

  case NodeKind::Member: {
    auto *M = cast<MemberExpr>(E);
    CVarId BaseVar = buildExpr(M->object());
    if (!M->isComputed()) {
      readProperty(BaseVar, M->name(), Result, M);
      return Result;
    }
    buildExpr(M->index());
    // Dynamic property read: ignored by the baseline ([DPR] or an ablation
    // may attach constraints later), except for array elements.
    DynReadByLoc[M->loc()] = DynReads.size();
    DynReads.push_back({M, BaseVar});
    S.addListener(BaseVar, [this, Result](TokenId T) {
      if (isArrayLike(T))
        S.addEdge(VF.propVar(T, SymElem), Result);
    });
    return Result;
  }

  case NodeKind::Sequence: {
    auto *Q = cast<SequenceExpr>(E);
    CVarId Last = Result;
    for (Expr *X : Q->exprs())
      Last = buildExpr(X);
    S.addEdge(Last, Result);
    return Result;
  }

  default:
    assert(false && "statement node in expression builder");
    return Result;
  }
  (void)Ctx;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void StaticAnalysis::buildStmt(Stmt *Stm) {
  switch (Stm->kind()) {
  case NodeKind::ExprStmt:
    buildExpr(cast<ExprStmt>(Stm)->expr());
    return;
  case NodeKind::VarDeclStmt:
    for (const VarDeclarator &D : cast<VarDeclStmt>(Stm)->declarators())
      if (D.Init)
        S.addEdge(buildExpr(D.Init), VF.declVar(D.Decl->id()));
    return;
  case NodeKind::FunctionDeclStmt: {
    auto *FD = cast<FunctionDeclStmt>(Stm);
    TokenId Tok = registerFunction(FD->def());
    S.addToken(VF.declVar(FD->decl()->id()), Tok);
    walkFunctionBody(FD->def());
    return;
  }
  case NodeKind::Block:
    for (Stmt *Child : cast<BlockStmt>(Stm)->body())
      buildStmt(Child);
    return;
  case NodeKind::If: {
    auto *I = cast<IfStmt>(Stm);
    buildExpr(I->cond());
    buildStmt(I->thenStmt());
    if (I->elseStmt())
      buildStmt(I->elseStmt());
    return;
  }
  case NodeKind::While:
    buildExpr(cast<WhileStmt>(Stm)->cond());
    buildStmt(cast<WhileStmt>(Stm)->body());
    return;
  case NodeKind::DoWhile:
    buildStmt(cast<DoWhileStmt>(Stm)->body());
    buildExpr(cast<DoWhileStmt>(Stm)->cond());
    return;
  case NodeKind::For: {
    auto *L = cast<ForStmt>(Stm);
    if (L->init())
      buildStmt(L->init());
    if (L->cond())
      buildExpr(L->cond());
    if (L->step())
      buildExpr(L->step());
    buildStmt(L->body());
    return;
  }
  case NodeKind::ForIn: {
    auto *L = cast<ForInStmt>(Stm);
    CVarId ObjVar = buildExpr(L->object());
    if (L->isOf()) {
      // Element values flow to the loop variable.
      CVarId LoopVar = L->decl() ? VF.declVar(L->decl()->id())
                                 : buildExpr(L->target());
      readProperty(ObjVar, SymElem, LoopVar);
    } else if (L->target()) {
      buildExpr(L->target());
    }
    // for-in keys are strings: no tokens.
    buildStmt(L->body());
    return;
  }
  case NodeKind::Return: {
    auto *R = cast<ReturnStmt>(Stm);
    if (R->value())
      S.addEdge(buildExpr(R->value()), VF.retVar(FuncStack.back()->id()));
    return;
  }
  case NodeKind::Throw:
    buildExpr(cast<ThrowStmt>(Stm)->value());
    return;
  case NodeKind::Try: {
    auto *T = cast<TryStmt>(Stm);
    buildStmt(T->body());
    // Thrown-value flow into catch parameters is not modeled (documented
    // limitation; error objects rarely carry call-graph-relevant values).
    if (T->handler())
      buildStmt(T->handler());
    if (T->finalizer())
      buildStmt(T->finalizer());
    return;
  }
  case NodeKind::Switch: {
    auto *W = cast<SwitchStmt>(Stm);
    buildExpr(W->discriminant());
    for (const SwitchCase &C : W->cases()) {
      if (C.Test)
        buildExpr(C.Test);
      for (Stmt *Child : C.Body)
        buildStmt(Child);
    }
    return;
  }
  case NodeKind::Break:
  case NodeKind::Continue:
  case NodeKind::Empty:
    return;
  default:
    assert(false && "expression node in statement builder");
    return;
  }
}
