//===- BuiltinModels.cpp - Standard-library dataflow models -----------------===//
//
// Mirrors the runtime's builtin behaviors in the constraint domain, so the
// baseline analysis matches what Jelly-style analyzers model: Object.assign
// copies statically-known properties, array iteration methods invoke their
// callbacks with element values, Function.prototype.apply/call dispatch,
// require resolves constant module names, and side-effectful Node builtins
// invoke their callback arguments.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

using namespace jsai;

void StaticAnalysis::seedGlobal(const char *Name, BuiltinId B) {
  S.addToken(VF.globalVar(Loader.context().strings().intern(Name)),
             TF.builtinToken(B));
}

void StaticAnalysis::seedMethod(BuiltinId Holder, const char *Name,
                                BuiltinId Method) {
  S.addToken(VF.propVar(TF.builtinToken(Holder),
                        Loader.context().strings().intern(Name)),
             TF.builtinToken(Method));
}

void StaticAnalysis::seedBuiltins() {
  // Builtin prototype chains: function-valued builtins inherit apply/call/
  // bind from Function.prototype (so `Array.prototype.slice.call(...)`
  // resolves); prototype objects chain to Object.prototype.
  TokenId FunctionProtoTok = TF.builtinToken(BuiltinId::FunctionProto);
  TokenId ObjectProtoTok = TF.builtinToken(BuiltinId::ObjectProto);
  for (uint16_t Raw = 0; Raw != uint16_t(BuiltinId::NumBuiltinIds); ++Raw) {
    BuiltinId B = BuiltinId(Raw);
    TokenId Tok = TF.builtinToken(B);
    switch (B) {
    case BuiltinId::ObjectProto:
      break;
    case BuiltinId::ArrayProto:
    case BuiltinId::StringProto:
    case BuiltinId::FunctionProto:
    case BuiltinId::EventEmitterProto:
    case BuiltinId::ServerObj:
    case BuiltinId::Console:
    case BuiltinId::MathObj:
    case BuiltinId::JsonObj:
    case BuiltinId::ProcessObj:
    case BuiltinId::HttpModule:
    case BuiltinId::FsModule:
    case BuiltinId::NetModule:
    case BuiltinId::PathModule:
    case BuiltinId::UtilModule:
    case BuiltinId::ChildProcessModule:
      S.addToken(VF.propVar(Tok, SymProtoChain), ObjectProtoTok);
      break;
    default:
      S.addToken(VF.propVar(Tok, SymProtoChain), FunctionProtoTok);
      break;
    }
  }

  // Global namespaces.
  seedGlobal("Object", BuiltinId::ObjectCtor);
  seedGlobal("Array", BuiltinId::ArrayCtor);
  seedGlobal("Function", BuiltinId::FunctionCtor);
  seedGlobal("String", BuiltinId::StringCtor);
  seedGlobal("Number", BuiltinId::NumberCtor);
  seedGlobal("Boolean", BuiltinId::BooleanCtor);
  seedGlobal("console", BuiltinId::Console);
  seedGlobal("Math", BuiltinId::MathObj);
  seedGlobal("JSON", BuiltinId::JsonObj);
  seedGlobal("process", BuiltinId::ProcessObj);
  seedGlobal("eval", BuiltinId::EvalFn);
  for (const char *E : {"Error", "TypeError", "RangeError", "SyntaxError",
                        "ReferenceError"})
    seedGlobal(E, BuiltinId::ErrorCtor);
  for (const char *T : {"setTimeout", "setInterval", "setImmediate"})
    seedGlobal(T, BuiltinId::CallbackInvoker);
  for (const char *N : {"parseInt", "parseFloat", "isNaN", "isFinite",
                        "clearTimeout", "clearInterval"})
    seedGlobal(N, BuiltinId::Noop);

  // Object statics and prototype.
  seedMethod(BuiltinId::ObjectCtor, "assign", BuiltinId::ObjectAssign);
  seedMethod(BuiltinId::ObjectCtor, "create", BuiltinId::ObjectCreate);
  seedMethod(BuiltinId::ObjectCtor, "keys", BuiltinId::ObjectKeys);
  seedMethod(BuiltinId::ObjectCtor, "values", BuiltinId::ObjectValues);
  seedMethod(BuiltinId::ObjectCtor, "entries", BuiltinId::ObjectKeys);
  seedMethod(BuiltinId::ObjectCtor, "getOwnPropertyNames",
             BuiltinId::ObjectGetOwnPropertyNames);
  seedMethod(BuiltinId::ObjectCtor, "getOwnPropertyDescriptor",
             BuiltinId::ObjectGetOwnPropertyDescriptor);
  seedMethod(BuiltinId::ObjectCtor, "defineProperty",
             BuiltinId::ObjectDefineProperty);
  seedMethod(BuiltinId::ObjectCtor, "defineProperties",
             BuiltinId::ObjectDefineProperties);
  seedMethod(BuiltinId::ObjectCtor, "getPrototypeOf",
             BuiltinId::ObjectGetPrototypeOf);
  seedMethod(BuiltinId::ObjectCtor, "setPrototypeOf",
             BuiltinId::ObjectSetPrototypeOf);
  for (const char *F : {"freeze", "seal", "preventExtensions"})
    seedMethod(BuiltinId::ObjectCtor, F, BuiltinId::ObjectFreeze);
  seedMethod(BuiltinId::ObjectCtor, "prototype", BuiltinId::ObjectProto);
  for (const char *M : {"hasOwnProperty", "toString", "isPrototypeOf"})
    seedMethod(BuiltinId::ObjectProto, M, BuiltinId::Noop);
  seedMethod(BuiltinId::ObjectProto, "valueOf", BuiltinId::Noop);

  // Array statics and prototype.
  seedMethod(BuiltinId::ArrayCtor, "isArray", BuiltinId::ArrayIsArray);
  seedMethod(BuiltinId::ArrayCtor, "from", BuiltinId::ArrayFrom);
  seedMethod(BuiltinId::ArrayCtor, "prototype", BuiltinId::ArrayProto);
  seedMethod(BuiltinId::ArrayProto, "forEach", BuiltinId::ArrayForEach);
  seedMethod(BuiltinId::ArrayProto, "map", BuiltinId::ArrayMap);
  seedMethod(BuiltinId::ArrayProto, "filter", BuiltinId::ArrayFilter);
  seedMethod(BuiltinId::ArrayProto, "some", BuiltinId::ArraySome);
  seedMethod(BuiltinId::ArrayProto, "every", BuiltinId::ArrayEvery);
  seedMethod(BuiltinId::ArrayProto, "find", BuiltinId::ArrayFind);
  seedMethod(BuiltinId::ArrayProto, "reduce", BuiltinId::ArrayReduce);
  seedMethod(BuiltinId::ArrayProto, "push", BuiltinId::ArrayPush);
  seedMethod(BuiltinId::ArrayProto, "pop", BuiltinId::ArrayPop);
  seedMethod(BuiltinId::ArrayProto, "shift", BuiltinId::ArrayShift);
  seedMethod(BuiltinId::ArrayProto, "unshift", BuiltinId::ArrayUnshift);
  seedMethod(BuiltinId::ArrayProto, "slice", BuiltinId::ArraySlice);
  seedMethod(BuiltinId::ArrayProto, "splice", BuiltinId::ArraySplice);
  seedMethod(BuiltinId::ArrayProto, "concat", BuiltinId::ArrayConcat);
  seedMethod(BuiltinId::ArrayProto, "sort", BuiltinId::ArraySort);
  seedMethod(BuiltinId::ArrayProto, "reverse", BuiltinId::ArrayReverse);
  for (const char *M : {"join", "indexOf", "includes", "lastIndexOf"})
    seedMethod(BuiltinId::ArrayProto, M, BuiltinId::Noop);

  // Function prototype.
  seedMethod(BuiltinId::FunctionCtor, "prototype", BuiltinId::FunctionProto);
  seedMethod(BuiltinId::FunctionProto, "apply", BuiltinId::FunctionApply);
  seedMethod(BuiltinId::FunctionProto, "call", BuiltinId::FunctionCall);
  seedMethod(BuiltinId::FunctionProto, "bind", BuiltinId::FunctionBind);
  seedMethod(BuiltinId::FunctionProto, "toString", BuiltinId::Noop);

  // String.prototype.replace may invoke a callback.
  seedMethod(BuiltinId::StringCtor, "prototype", BuiltinId::StringProto);
  seedMethod(BuiltinId::StringProto, "replace", BuiltinId::CallbackInvoker);

  // Namespaces whose methods carry no object dataflow.
  for (const char *M : {"log", "warn", "error", "info", "debug"})
    seedMethod(BuiltinId::Console, M, BuiltinId::Noop);
  for (const char *M : {"floor", "ceil", "round", "abs", "sqrt", "trunc",
                        "max", "min", "pow", "random"})
    seedMethod(BuiltinId::MathObj, M, BuiltinId::Noop);
  for (const char *M : {"stringify", "parse"})
    seedMethod(BuiltinId::JsonObj, M, BuiltinId::Noop);
  seedMethod(BuiltinId::ProcessObj, "nextTick", BuiltinId::CallbackInvoker);
  for (const char *M : {"exit", "cwd"})
    seedMethod(BuiltinId::ProcessObj, M, BuiltinId::Noop);

  // EventEmitter (native fallback).
  seedMethod(BuiltinId::EventEmitterProto, "on", BuiltinId::EventEmitterOn);
  seedMethod(BuiltinId::EventEmitterProto, "once", BuiltinId::EventEmitterOn);
  seedMethod(BuiltinId::EventEmitterProto, "emit",
             BuiltinId::EventEmitterEmit);
  seedMethod(BuiltinId::EventEmitterProto, "removeListener", BuiltinId::Noop);
  // `require('events')` exposes the constructor both ways.
  seedMethod(BuiltinId::EventEmitterCtor, "EventEmitter",
             BuiltinId::EventEmitterCtor);
  seedMethod(BuiltinId::EventEmitterCtor, "prototype",
             BuiltinId::EventEmitterProto);

  // Builtin Node modules.
  BuiltinModuleMap = {
      {"events", BuiltinId::EventEmitterCtor},
      {"http", BuiltinId::HttpModule},
      {"net", BuiltinId::NetModule},
      {"fs", BuiltinId::FsModule},
      {"path", BuiltinId::PathModule},
      {"util", BuiltinId::UtilModule},
      {"child_process", BuiltinId::ChildProcessModule},
  };
  seedMethod(BuiltinId::HttpModule, "createServer",
             BuiltinId::CallbackInvoker);
  seedMethod(BuiltinId::HttpModule, "get", BuiltinId::CallbackInvoker);
  seedMethod(BuiltinId::HttpModule, "request", BuiltinId::CallbackInvoker);
  seedMethod(BuiltinId::NetModule, "createServer",
             BuiltinId::CallbackInvoker);
  seedMethod(BuiltinId::NetModule, "connect", BuiltinId::CallbackInvoker);
  for (const char *M : {"readFile", "writeFile", "readdir", "exec", "spawn"})
    seedMethod(BuiltinId::FsModule, M, BuiltinId::CallbackInvoker);
  for (const char *M : {"readFileSync", "writeFileSync", "existsSync",
                        "readdirSync"})
    seedMethod(BuiltinId::FsModule, M, BuiltinId::Noop);
  for (const char *M : {"join", "resolve", "basename", "dirname", "extname"})
    seedMethod(BuiltinId::PathModule, M, BuiltinId::Noop);
  seedMethod(BuiltinId::UtilModule, "inherits", BuiltinId::UtilInherits);
  seedMethod(BuiltinId::UtilModule, "format", BuiltinId::Noop);
  seedMethod(BuiltinId::UtilModule, "isArray", BuiltinId::Noop);
  for (const char *M : {"exec", "execSync", "spawn"})
    seedMethod(BuiltinId::ChildProcessModule, M, BuiltinId::CallbackInvoker);

  // Server objects returned by http/net.createServer.
  for (const char *M : {"listen", "close", "on", "address"})
    seedMethod(BuiltinId::ServerObj, M, BuiltinId::CallbackInvoker);
}

TokenId StaticAnalysis::allocAtCallSite(const CallSiteInfo &CS,
                                        BuiltinId ProtoBuiltin) {
  TokenId Tok = TF.objectToken(CS.Site->id());
  TF.registerAllocSite(AllocRef{CS.Site->loc(), false}, Tok);
  S.addToken(VF.propVar(Tok, SymProtoChain), TF.builtinToken(ProtoBuiltin));
  if (ProtoBuiltin == BuiltinId::ArrayProto)
    markArrayLike(Tok);
  return Tok;
}

/// \returns argument \p Idx of the call at \p Site as a string literal, or
/// empty when absent / not a literal.
static std::string literalArg(Node *Site, const AstContext &Ctx, size_t Idx) {
  std::vector<Expr *> Args;
  if (auto *C = dyn_cast<CallExpr>(Site))
    Args = C->args();
  else if (auto *N = dyn_cast<NewExpr>(Site))
    Args = N->args();
  if (Idx >= Args.size())
    return std::string();
  if (auto *Lit = dyn_cast<StringLit>(Args[Idx]))
    return Ctx.strings().str(Lit->value());
  return std::string();
}

void StaticAnalysis::applyBuiltinCall(std::shared_ptr<CallSiteInfo> CS,
                                      BuiltinId B) {
  OriginScope Tag(*this, OriginKind::Builtin, CS->Site->loc(), uint32_t(B));
  AstContext &Ctx = Loader.context();
  auto Arg = [&CS](size_t Idx) -> CVarId {
    return Idx < CS->Args.size() ? CS->Args[Idx] : ~CVarId(0);
  };
  auto HasArg = [&CS](size_t Idx) { return Idx < CS->Args.size(); };

  switch (B) {
  case BuiltinId::Require: {
    std::string Spec = literalArg(CS->Site, Ctx, 0);
    Module *From = CS->EnclosingModule;
    if (!Spec.empty()) {
      if (Module *M = Loader.resolve(From->Path, Spec)) {
        uint32_t Idx = ModuleIndexByPath.at(M->Path);
        S.addEdge(VF.propVar(TF.moduleObjToken(Idx), Ctx.SymExports),
                  CS->Result);
        ModuleEdges[CS->Site->id()].insert(M->Func->id());
        return;
      }
      auto It = BuiltinModuleMap.find(Spec);
      if (It != BuiltinModuleMap.end())
        S.addToken(CS->Result, TF.builtinToken(It->second));
      return;
    }
    // Dynamically computed module name: resolvable via module hints only.
    if (Hints && Opts.UseModuleHints && Opts.Mode == AnalysisMode::Hints) {
      OriginScope HintTag(*this, OriginKind::ModuleHint, CS->Site->loc());
      auto HintIt = Hints->moduleHints().find(CS->Site->loc());
      if (HintIt == Hints->moduleHints().end())
        return;
      for (const std::string &Path : HintIt->second) {
        auto IdxIt = ModuleIndexByPath.find(Path);
        if (IdxIt == ModuleIndexByPath.end())
          continue;
        S.addEdge(
            VF.propVar(TF.moduleObjToken(IdxIt->second), Ctx.SymExports),
            CS->Result);
        ModuleEdges[CS->Site->id()].insert(
            Ctx.modules()[IdxIt->second]->Func->id());
      }
    }
    return;
  }

  case BuiltinId::ObjectAssign: {
    if (!HasArg(0))
      return;
    S.addEdge(Arg(0), CS->Result);
    for (size_t SrcIdx = 1; SrcIdx < CS->Args.size(); ++SrcIdx)
      forEachPair(Arg(0), Arg(SrcIdx), [this](TokenId Dst, TokenId Src) {
        if (TF.token(Dst).K == AbsValue::Kind::Builtin ||
            TF.token(Src).K == AbsValue::Kind::Builtin)
          return;
        copyAllProps(Src, Dst);
      });
    return;
  }

  case BuiltinId::ObjectCreate: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ObjectProto);
    if (HasArg(0))
      S.addEdge(Arg(0), VF.propVar(Tok, SymProtoChain));
    S.addToken(CS->Result, Tok);
    return;
  }

  case BuiltinId::ObjectKeys:
  case BuiltinId::ObjectGetOwnPropertyNames: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ArrayProto);
    S.addToken(CS->Result, Tok); // String elements: no tokens inside.
    return;
  }

  case BuiltinId::ObjectValues: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ArrayProto);
    S.addToken(CS->Result, Tok);
    if (!HasArg(0))
      return;
    CVarId ElemVar = VF.propVar(Tok, SymElem);
    S.addListener(Arg(0), [this, ElemVar](TokenId T) {
      forEachPropVar(T, [this, ElemVar](Symbol Sym, CVarId Var) {
        if (!isInternalSymbol(Sym) && Sym != SymPrototypeName)
          S.addEdge(Var, ElemVar);
      });
    });
    return;
  }

  case BuiltinId::ObjectGetOwnPropertyDescriptor: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ObjectProto);
    S.addToken(CS->Result, Tok);
    std::string Name = literalArg(CS->Site, Ctx, 1);
    if (Name.empty())
      return; // Dynamic name: baseline unsoundness by design.
    Symbol NameSym = Ctx.strings().intern(Name);
    CVarId ValueVar = VF.propVar(Tok, Ctx.WK.Value);
    S.addListener(Arg(0), [this, NameSym, ValueVar](TokenId T) {
      readPropertyFromToken(T, NameSym, ValueVar);
    });
    return;
  }

  case BuiltinId::ObjectDefineProperty: {
    if (HasArg(0))
      S.addEdge(Arg(0), CS->Result);
    std::string Name = literalArg(CS->Site, Ctx, 1);
    if (Name.empty() || !HasArg(2))
      return; // Dynamic name: ignored (the paper's core unsoundness).
    Symbol NameSym = Ctx.strings().intern(Name);
    Symbol ValueSym = Ctx.WK.Value;
    Symbol GetSym = Ctx.WK.Get;
    forEachPair(Arg(0), Arg(2),
                [this, NameSym, ValueSym, GetSym](TokenId T, TokenId D) {
                  if (TF.token(T).K == AbsValue::Kind::Builtin)
                    return;
                  S.addEdge(VF.propVar(D, ValueSym), VF.propVar(T, NameSym));
                  S.addEdge(VF.propVar(D, GetSym), VF.propVar(T, NameSym));
                });
    return;
  }

  case BuiltinId::ObjectDefineProperties: {
    if (HasArg(0))
      S.addEdge(Arg(0), CS->Result);
    if (!HasArg(1))
      return;
    Symbol ValueSym = Ctx.WK.Value;
    forEachPair(Arg(0), Arg(1), [this, ValueSym](TokenId T, TokenId P) {
      if (TF.token(T).K == AbsValue::Kind::Builtin)
        return;
      forEachPropVar(P, [this, T, ValueSym](Symbol Sym, CVarId DescVar) {
        if (isInternalSymbol(Sym) || Sym == SymPrototypeName)
          return;
        // Each property's descriptors flow their `value` into T's property.
        CVarId Target = VF.propVar(T, Sym);
        S.addListener(DescVar, [this, ValueSym, Target](TokenId D) {
          S.addEdge(VF.propVar(D, ValueSym), Target);
        });
      });
    });
    return;
  }

  case BuiltinId::ObjectGetPrototypeOf:
    if (HasArg(0))
      S.addListener(Arg(0), [this, CS](TokenId T) {
        S.addEdge(VF.propVar(T, SymProtoChain), CS->Result);
      });
    return;

  case BuiltinId::ObjectSetPrototypeOf:
    if (HasArg(0))
      S.addEdge(Arg(0), CS->Result);
    if (HasArg(0) && HasArg(1))
      forEachPair(Arg(0), Arg(1), [this](TokenId T, TokenId P) {
        if (TF.token(T).K != AbsValue::Kind::Builtin)
          S.addToken(VF.propVar(T, SymProtoChain), P);
      });
    return;

  case BuiltinId::ObjectFreeze:
  case BuiltinId::ObjectCtor:
    if (HasArg(0))
      S.addEdge(Arg(0), CS->Result);
    if (B == BuiltinId::ObjectCtor && CS->IsNew)
      S.addToken(CS->Result, allocAtCallSite(*CS, BuiltinId::ObjectProto));
    return;

  case BuiltinId::ArrayCtor: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ArrayProto);
    S.addToken(CS->Result, Tok);
    for (CVarId A : CS->Args)
      S.addEdge(A, VF.propVar(Tok, SymElem));
    return;
  }

  case BuiltinId::ArrayFrom: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ArrayProto);
    S.addToken(CS->Result, Tok);
    if (HasArg(0)) {
      CVarId ElemVar = VF.propVar(Tok, SymElem);
      S.addListener(Arg(0), [this, ElemVar](TokenId T) {
        S.addEdge(VF.propVar(T, SymElem), ElemVar);
      });
    }
    return;
  }

  case BuiltinId::ArrayForEach:
  case BuiltinId::ArrayMap:
  case BuiltinId::ArrayFilter:
  case BuiltinId::ArraySome:
  case BuiltinId::ArrayEvery:
  case BuiltinId::ArrayFind: {
    if (!CS->HasReceiver || !HasArg(0))
      return;
    TokenId ResultTok = ~TokenId(0);
    if (B == BuiltinId::ArrayMap || B == BuiltinId::ArrayFilter) {
      ResultTok = allocAtCallSite(*CS, BuiltinId::ArrayProto);
      S.addToken(CS->Result, ResultTok);
    }
    CVarId ThisArg = HasArg(1) ? Arg(1) : ~CVarId(0);
    forEachPair(
        CS->Receiver, Arg(0),
        [this, CS, B, ResultTok, ThisArg](TokenId A, TokenId F) {
          const AbsValue &FT = TF.token(F);
          if (FT.K != AbsValue::Kind::Function)
            return;
          FunctionDef *Fn =
              Loader.context().function(FunctionId(FT.Payload));
          if (Fn->isModule())
            return;
          recordCallEdge(CS->Site, FunctionId(FT.Payload));
          CVarId ElemVar = VF.propVar(A, SymElem);
          const auto &Params = Fn->params();
          if (!Params.empty())
            S.addEdge(ElemVar, VF.declVar(Params[0]->id()));
          if (Params.size() >= 3)
            S.addEdge(CS->Receiver, VF.declVar(Params[2]->id()));
          if (ThisArg != ~CVarId(0) && !Fn->isArrow())
            S.addEdge(ThisArg, VF.thisVar(Fn->id()));
          if (B == BuiltinId::ArrayMap)
            S.addEdge(VF.retVar(Fn->id()), VF.propVar(ResultTok, SymElem));
          if (B == BuiltinId::ArrayFilter)
            S.addEdge(ElemVar, VF.propVar(ResultTok, SymElem));
          if (B == BuiltinId::ArrayFind)
            S.addEdge(ElemVar, CS->Result);
        });
    return;
  }

  case BuiltinId::ArrayReduce: {
    if (!CS->HasReceiver || !HasArg(0))
      return;
    CVarId Init = HasArg(1) ? Arg(1) : ~CVarId(0);
    forEachPair(CS->Receiver, Arg(0),
                [this, CS, Init](TokenId A, TokenId F) {
                  const AbsValue &FT = TF.token(F);
                  if (FT.K != AbsValue::Kind::Function)
                    return;
                  FunctionDef *Fn =
                      Loader.context().function(FunctionId(FT.Payload));
                  recordCallEdge(CS->Site, FunctionId(FT.Payload));
                  const auto &Params = Fn->params();
                  CVarId ElemVar = VF.propVar(A, SymElem);
                  if (!Params.empty()) {
                    CVarId Acc = VF.declVar(Params[0]->id());
                    if (Init != ~CVarId(0))
                      S.addEdge(Init, Acc);
                    S.addEdge(VF.retVar(Fn->id()), Acc);
                    S.addEdge(ElemVar, Acc);
                  }
                  if (Params.size() >= 2)
                    S.addEdge(ElemVar, VF.declVar(Params[1]->id()));
                  S.addEdge(VF.retVar(Fn->id()), CS->Result);
                  if (Init != ~CVarId(0))
                    S.addEdge(Init, CS->Result);
                });
    return;
  }

  case BuiltinId::ArrayPush:
  case BuiltinId::ArrayUnshift:
    if (CS->HasReceiver)
      S.addListener(CS->Receiver, [this, CS](TokenId A) {
        if (TF.token(A).K == AbsValue::Kind::Builtin)
          return;
        for (CVarId V : CS->Args)
          S.addEdge(V, VF.propVar(A, SymElem));
      });
    return;

  case BuiltinId::ArrayPop:
  case BuiltinId::ArrayShift:
    if (CS->HasReceiver)
      S.addListener(CS->Receiver, [this, CS](TokenId A) {
        S.addEdge(VF.propVar(A, SymElem), CS->Result);
      });
    return;

  case BuiltinId::ArraySlice:
  case BuiltinId::ArraySplice:
  case BuiltinId::ArrayConcat: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ArrayProto);
    S.addToken(CS->Result, Tok);
    CVarId ElemVar = VF.propVar(Tok, SymElem);
    if (CS->HasReceiver)
      S.addListener(CS->Receiver, [this, ElemVar](TokenId A) {
        S.addEdge(VF.propVar(A, SymElem), ElemVar);
      });
    if (B == BuiltinId::ArrayConcat)
      for (CVarId V : CS->Args) {
        S.addEdge(V, ElemVar); // Non-array values are appended directly.
        S.addListener(V, [this, ElemVar](TokenId A) {
          S.addEdge(VF.propVar(A, SymElem), ElemVar);
        });
      }
    return;
  }

  case BuiltinId::ArraySort:
  case BuiltinId::ArrayReverse: {
    if (!CS->HasReceiver)
      return;
    S.addEdge(CS->Receiver, CS->Result); // Returns the receiver.
    if (B == BuiltinId::ArraySort && HasArg(0))
      forEachPair(CS->Receiver, Arg(0), [this, CS](TokenId A, TokenId F) {
        const AbsValue &FT = TF.token(F);
        if (FT.K != AbsValue::Kind::Function)
          return;
        FunctionDef *Fn = Loader.context().function(FunctionId(FT.Payload));
        recordCallEdge(CS->Site, FunctionId(FT.Payload));
        CVarId ElemVar = VF.propVar(A, SymElem);
        const auto &Params = Fn->params();
        for (size_t I = 0; I < Params.size() && I < 2; ++I)
          S.addEdge(ElemVar, VF.declVar(Params[I]->id()));
      });
    return;
  }

  case BuiltinId::FunctionApply:
  case BuiltinId::FunctionCall: {
    if (!CS->HasReceiver)
      return;
    bool IsApply = B == BuiltinId::FunctionApply;
    S.addListener(CS->Receiver, [this, CS, IsApply](TokenId F) {
      const AbsValue &FT = TF.token(F);
      if (FT.K == AbsValue::Kind::Builtin) {
        // Re-dispatch: e.g. `slice.call(arguments, 1)`.
        auto Inner = std::make_shared<CallSiteInfo>();
        Inner->Site = CS->Site;
        Inner->Result = CS->Result;
        Inner->IsNew = false;
        Inner->EnclosingModule = CS->EnclosingModule;
        Inner->HasReceiver = !CS->Args.empty();
        if (Inner->HasReceiver)
          Inner->Receiver = CS->Args[0];
        if (!IsApply && CS->Args.size() > 1)
          Inner->Args.assign(CS->Args.begin() + 1, CS->Args.end());
        applyBuiltinCall(Inner, BuiltinId(FT.Payload));
        return;
      }
      if (FT.K != AbsValue::Kind::Function)
        return;
      FunctionDef *Fn = Loader.context().function(FunctionId(FT.Payload));
      if (Fn->isModule())
        return;
      recordCallEdge(CS->Site, FunctionId(FT.Payload));
      if (!CS->Args.empty() && !Fn->isArrow())
        S.addEdge(CS->Args[0], VF.thisVar(Fn->id()));
      S.addEdge(VF.retVar(Fn->id()), CS->Result);
      const auto &Params = Fn->params();
      CVarId ArgsElem =
          VF.propVar(TF.argumentsToken(Fn->id()), SymElem);
      if (IsApply) {
        if (CS->Args.size() >= 2)
          S.addListener(CS->Args[1], [this, Fn, ArgsElem](TokenId A) {
            CVarId ElemVar = VF.propVar(A, SymElem);
            for (VarDecl *P : Fn->params())
              S.addEdge(ElemVar, VF.declVar(P->id()));
            S.addEdge(ElemVar, ArgsElem);
          });
      } else {
        for (size_t I = 1; I < CS->Args.size(); ++I) {
          if (I - 1 < Params.size())
            S.addEdge(CS->Args[I], VF.declVar(Params[I - 1]->id()));
          S.addEdge(CS->Args[I], ArgsElem);
        }
      }
    });
    return;
  }

  case BuiltinId::FunctionBind: {
    if (!CS->HasReceiver)
      return;
    // Bound functions are approximated by the original function value.
    S.addEdge(CS->Receiver, CS->Result);
    if (HasArg(0))
      S.addListener(CS->Receiver, [this, CS](TokenId F) {
        const AbsValue &FT = TF.token(F);
        if (FT.K != AbsValue::Kind::Function)
          return;
        FunctionDef *Fn = Loader.context().function(FunctionId(FT.Payload));
        if (!Fn->isArrow())
          S.addEdge(CS->Args[0], VF.thisVar(Fn->id()));
      });
    return;
  }

  case BuiltinId::CallbackInvoker: {
    // Invokes any function argument (timers, fs/http callbacks, server
    // methods, ...). Parameters receive nothing (unknown payloads).
    for (CVarId V : CS->Args)
      S.addListener(V, [this, CS](TokenId F) {
        const AbsValue &FT = TF.token(F);
        if (FT.K == AbsValue::Kind::Function &&
            !Loader.context().function(FunctionId(FT.Payload))->isModule())
          recordCallEdge(CS->Site, FunctionId(FT.Payload));
      });
    // http.createServer & friends: expose a server-shaped result; `listen`
    // returning `this` is covered by Receiver -> Result.
    S.addToken(CS->Result, TF.builtinToken(BuiltinId::ServerObj));
    if (CS->HasReceiver)
      S.addEdge(CS->Receiver, CS->Result);
    return;
  }

  case BuiltinId::EventEmitterCtor: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::EventEmitterProto);
    S.addToken(CS->Result, Tok);
    return;
  }

  case BuiltinId::EventEmitterOn: {
    if (!CS->HasReceiver || CS->Args.size() < 2)
      return;
    S.addEdge(CS->Receiver, CS->Result); // Chaining.
    forEachPair(CS->Receiver, Arg(1), [this](TokenId E, TokenId F) {
      S.addToken(VF.propVar(E, SymHandlers), F);
    });
    return;
  }

  case BuiltinId::EventEmitterEmit: {
    if (!CS->HasReceiver)
      return;
    S.addListener(CS->Receiver, [this, CS](TokenId E) {
      S.addListener(VF.propVar(E, SymHandlers), [this, CS](TokenId F) {
        const AbsValue &FT = TF.token(F);
        if (FT.K != AbsValue::Kind::Function)
          return;
        FunctionDef *Fn = Loader.context().function(FunctionId(FT.Payload));
        recordCallEdge(CS->Site, FunctionId(FT.Payload));
        const auto &Params = Fn->params();
        for (size_t I = 1; I < CS->Args.size() && I - 1 < Params.size(); ++I)
          S.addEdge(CS->Args[I], VF.declVar(Params[I - 1]->id()));
        if (!Fn->isArrow())
          S.addEdge(CS->Receiver, VF.thisVar(Fn->id()));
      });
    });
    return;
  }

  case BuiltinId::UtilInherits: {
    if (CS->Args.size() < 2)
      return;
    forEachPair(Arg(0), Arg(1), [this](TokenId Ctor, TokenId Super) {
      S.addListener(VF.propVar(Ctor, SymPrototypeName),
                    [this, Super](TokenId P1) {
                      S.addEdge(VF.propVar(Super, SymPrototypeName),
                                VF.propVar(P1, SymProtoChain));
                    });
    });
    return;
  }

  case BuiltinId::ErrorCtor: {
    TokenId Tok = allocAtCallSite(*CS, BuiltinId::ObjectProto);
    S.addToken(CS->Result, Tok);
    return;
  }

  case BuiltinId::StringCtor:
  case BuiltinId::NumberCtor:
  case BuiltinId::BooleanCtor:
  case BuiltinId::ArrayIsArray:
  case BuiltinId::EvalFn: // eval'd code is not analyzed statically.
  case BuiltinId::FunctionCtor:
  case BuiltinId::Noop:
  default:
    return;
  }
}
