//===- Token.cpp ----------------------------------------------------------===//

#include "analysis/Token.h"

using namespace jsai;

TokenId TokenFactory::get(AbsValue::Kind K, uint32_t Payload) {
  uint64_t Key = (uint64_t(uint8_t(K)) << 32) | Payload;
  auto [It, Inserted] = Index.try_emplace(Key, TokenId(Tokens.size()));
  if (Inserted)
    Tokens.push_back(AbsValue{K, Payload});
  return It->second;
}

void TokenFactory::registerAllocSite(const AllocRef &Ref, TokenId Id) {
  if (!Ref.isValid())
    return;
  AllocSites.try_emplace(allocKey(Ref), Id);
}

TokenId TokenFactory::tokenForAllocSite(const AllocRef &Ref) const {
  auto It = AllocSites.find(allocKey(Ref));
  return It == AllocSites.end() ? ~TokenId(0) : It->second;
}

std::string TokenFactory::describe(TokenId Id) const {
  const AbsValue &T = Tokens[Id];
  switch (T.K) {
  case AbsValue::Kind::Function: {
    const FunctionDef *F =
        const_cast<AstContext &>(Ctx).function(FunctionId(T.Payload));
    return "fn:" + Ctx.files().format(F->loc());
  }
  case AbsValue::Kind::Object: {
    const Node *N = Ctx.node(NodeId(T.Payload));
    return "obj:" + Ctx.files().format(N->loc());
  }
  case AbsValue::Kind::Prototype: {
    const FunctionDef *F =
        const_cast<AstContext &>(Ctx).function(FunctionId(T.Payload));
    return "proto:" + Ctx.files().format(F->loc());
  }
  case AbsValue::Kind::Exports:
    return "exports:" + Ctx.modules()[T.Payload]->Path;
  case AbsValue::Kind::ModuleObj:
    return "module:" + Ctx.modules()[T.Payload]->Path;
  case AbsValue::Kind::Builtin:
    return "builtin#" + std::to_string(T.Payload);
  case AbsValue::Kind::Arguments: {
    const FunctionDef *F =
        const_cast<AstContext &>(Ctx).function(FunctionId(T.Payload));
    return "arguments:" + Ctx.files().format(F->loc());
  }
  }
  return "?";
}
