//===- Solver.cpp ---------------------------------------------------------===//
//
// Propagation engine: union-find cycle collapsing + hashed edge dedup +
// batched deltas. Invariants:
//
//  - Delta[R] is always a subset of PointsTo[R] for every representative R.
//  - Succs/Listeners/PointsTo/Delta are authoritative only for
//    representatives; merged members' storage is released on collapse.
//  - Collapses happen only between flushes of the solve loop — listener
//    callbacks may add tokens, edges, and listeners, but can never observe
//    a representative changing underneath them.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

using namespace jsai;

static size_t &defaultJobsStorage() {
  static size_t Jobs = [] {
    const char *Env = std::getenv("JSAI_SOLVER_JOBS");
    if (Env == nullptr || *Env == '\0')
      return size_t(1);
    long Parsed = std::strtol(Env, nullptr, 10);
    return Parsed > 1 ? size_t(Parsed) : size_t(1);
  }();
  return Jobs;
}

size_t jsai::defaultSolverJobs() { return defaultJobsStorage(); }

void jsai::setDefaultSolverJobs(size_t N) {
  defaultJobsStorage() = N == 0 ? 1 : N;
}

static bool &defaultExplainStorage() {
  static bool On = [] {
    const char *Env = std::getenv("JSAI_EXPLAIN");
    if (Env == nullptr)
      return false;
    return std::strcmp(Env, "record") == 0 || std::strcmp(Env, "1") == 0;
  }();
  return On;
}

bool jsai::defaultExplainRecording() { return defaultExplainStorage(); }

void jsai::setDefaultExplainRecording(bool On) { defaultExplainStorage() = On; }

Solver::Solver() {
  FlushScratch.attachMemoryStats(&SetMem);
  if (SetKind == SolverSetKind::Dense)
    FlushScratch.forceDense();
  PStats.Jobs = Jobs;
}

void Solver::setJobs(size_t N) {
  Jobs = N == 0 ? 1 : N;
  PStats.Jobs = Jobs;
  if (Pool && Pool->threads() + 1 != Jobs)
    Pool.reset(); // Respawned lazily at the next big-enough wave.
}

void Solver::setSetKind(SolverSetKind K) {
  SetKind = K;
  if (K != SolverSetKind::Dense)
    return; // Existing sets were created adaptive and can stay that way.
  FlushScratch.forceDense();
  for (AdaptiveSet &S : PointsTo)
    S.forceDense();
  for (AdaptiveSet &S : Delta)
    S.forceDense();
  for (std::vector<ListenerRecord> &Recs : Listeners)
    for (ListenerRecord &Rec : Recs)
      Rec.Delivered.forceDense();
}

void Solver::ensure(CVarId V) {
  if (V < Parent.size())
    return;
  // Ids are dense and arrive roughly in ascending order; growing all six
  // vectors one slot at a time would pay the resize machinery per variable,
  // so grow geometrically (spare slots hold empty sets and cost no heap).
  size_t Old = Parent.size();
  size_t NewSize = std::max<size_t>(size_t(V) + 1, Old + Old / 2 + 8);
  Parent.resize(NewSize);
  for (size_t I = Old; I != NewSize; ++I)
    Parent[I] = CVarId(I);
  PointsTo.resize(NewSize);
  Delta.resize(NewSize);
  for (size_t I = Old; I != NewSize; ++I) {
    PointsTo[I].attachMemoryStats(&SetMem);
    Delta[I].attachMemoryStats(&SetMem);
    if (SetKind == SolverSetKind::Dense) {
      PointsTo[I].forceDense();
      Delta[I].forceDense();
    }
  }
  Succs.resize(NewSize);
  Listeners.resize(NewSize);
  InWorklist.resize(NewSize, false);
  DeltaEpoch.resize(NewSize, 0);
}

CVarId Solver::find(CVarId V) {
  while (Parent[V] != V) {
    Parent[V] = Parent[Parent[V]]; // Path halving.
    V = Parent[V];
  }
  return V;
}

CVarId Solver::findConst(CVarId V) const {
  if (V >= Parent.size())
    return V;
  while (Parent[V] != V)
    V = Parent[V];
  return V;
}

void Solver::schedule(CVarId R) {
  if (InWorklist[R])
    return;
  InWorklist[R] = true;
  Worklist.push_back(R);
}

void Solver::recordArrivals(CVarId To, const AdaptiveSet &Ts, CVarId ViaFrom,
                            ProvOriginId Origin) {
  // Read-only subtraction sweep (same shape as precomputeSlot): every token
  // of Ts that [[To]] lacks is about to be inserted for the first time, so
  // it gets a first-arrival record. map::emplace keeps an existing entry,
  // which can only happen after a collapse re-keyed a member's records
  // onto To — first arrival still wins.
  AdaptiveSet::WordCursor Have(PointsTo[To]);
  Ts.forEachWord([&](uint32_t WordIdx, uint64_t Bits) {
    uint64_t Missing = Bits & ~Have.wordAt(WordIdx);
    while (Missing != 0) {
      unsigned Bit = __builtin_ctzll(Missing);
      Missing &= Missing - 1;
      Arrivals.emplace(arrivalKey(To, TokenId(WordIdx * 64 + Bit)),
                       TokenArrival{ViaFrom, Origin});
    }
  });
}

bool Solver::insertTokens(CVarId To, const AdaptiveSet &Ts, CVarId ViaFrom,
                          ProvOriginId Origin) {
  if (Recording)
    recordArrivals(To, Ts, ViaFrom, Origin);
  if (!PointsTo[To].unionWithRecordingNew(Ts, Delta[To]))
    return false;
  ++DeltaEpoch[To];
  schedule(To);
  return true;
}

void Solver::addToken(CVarId V, TokenId T) {
  ensure(V);
  CVarId R = find(V);
  if (!PointsTo[R].insert(T))
    return;
  if (Recording)
    Arrivals.emplace(arrivalKey(R, T), TokenArrival{~CVarId(0), CurOrigin});
  Delta[R].insert(T);
  ++DeltaEpoch[R];
  schedule(R);
}

void Solver::addEdge(CVarId From, CVarId To) {
  ensure(From);
  ensure(To);
  CVarId F = find(From);
  CVarId T = find(To);
  if (F == T)
    return; // Self edges (possibly created by collapsing) are no-ops.
  uint64_t Key = edgeKey(F, T);
  if (!EdgeSet.insert(Key)) {
    // A previously retracted edge re-appears: treat it as fresh (the
    // insert-only key set cannot forget it).
    if (!Tracking || RemovedEdges.erase(Key) == 0) {
      ++Stats.NumDuplicateEdges;
      if (Tracking) {
        // Two owners, one physical edge: retracting either would silently
        // drop the other's constraint.
        auto It = EdgeOwner.find(Key);
        ConstraintGroup Owner = It == EdgeOwner.end() ? 0 : It->second;
        if (Owner != CurGroup) {
          if (Owner)
            TaintedGroups.insert(Owner);
          if (CurGroup)
            TaintedGroups.insert(CurGroup);
        }
      }
      return;
    }
  }
  if (Tracking) {
    EdgeOwner[Key] = CurGroup;
    if (CurGroup)
      EdgeLog[CurGroup].emplace_back(F, T);
  }
  Succs[F].push_back(T);
  ++Stats.NumEdges;
  // The edge remembers the origin of the context that created it; tokens
  // that later flow across it inherit that origin (flush looks it up).
  if (Recording)
    EdgeOrigins.emplace(Key, CurOrigin);
  // Tokens already in [[F]] reach [[T]]'s set now (one batched union);
  // listeners on T observe them at the next flush — identical behavior
  // whether the edge arrives before solve() or from inside a listener.
  if (!PointsTo[F].empty())
    insertTokens(T, PointsTo[F], F, CurOrigin);
}

void Solver::addListener(CVarId V, Listener L) {
  ensure(V);
  CVarId R = find(V);
  ++Stats.NumListeners;
  // Replay current tokens, then subscribe for future ones. The delivered-set
  // is pre-marked with the whole current points-to set, so deltas of these
  // tokens still sitting in the worklist cannot re-fire this listener.
  std::vector<uint32_t> Known = PointsTo[R].toVector();
  ListenerRecord Rec;
  Rec.Fn = std::make_shared<Listener>(std::move(L));
  Rec.Group = CurGroup;
  Rec.Origin = CurOrigin;
  Rec.Delivered.attachMemoryStats(&SetMem);
  if (SetKind == SolverSetKind::Dense)
    Rec.Delivered.forceDense();
  Rec.Delivered = PointsTo[R];
  // Keep a handle across the replay: the callback may append to this
  // listener list (or allocate new variables) and reallocate the vectors
  // the record lives in.
  std::shared_ptr<Listener> Fn = Rec.Fn;
  ConstraintGroup Group = Rec.Group;
  ProvOriginId Origin = Rec.Origin;
  Listeners[R].push_back(std::move(Rec));
  // Constraints derived during the replay belong to the listener's group
  // and origin (those current at registration — already CurGroup/CurOrigin
  // here, but keep the save/restore symmetric with flush()).
  ConstraintGroup SavedGroup = CurGroup;
  ProvOriginId SavedOrigin = CurOrigin;
  CurGroup = Group;
  CurOrigin = Origin;
  for (uint32_t T : Known)
    (*Fn)(T);
  CurGroup = SavedGroup;
  CurOrigin = SavedOrigin;
}

void Solver::canonicalizeSuccs(CVarId V) {
  std::vector<CVarId> Clean;
  Clean.reserve(Succs[V].size());
  std::unordered_set<CVarId> Local;
  for (CVarId S : Succs[V]) {
    CVarId W = find(S);
    if (W == V || !Local.insert(W).second)
      continue;
    Clean.push_back(W);
    EdgeSet.insert(edgeKey(V, W)); // Refresh the canonical dedup key.
    // Carry the edge's recorded origin to its canonical key. Best-effort:
    // entries are keyed under the source representative at insert time, so
    // an edge spliced here off a merged member is missed and its tokens
    // fall back to origin 0 (see the EdgeOrigins field comment).
    if (Recording && W != S) {
      auto It = EdgeOrigins.find(edgeKey(V, S));
      if (It != EdgeOrigins.end())
        EdgeOrigins.emplace(edgeKey(V, W), It->second);
    }
  }
  Succs[V] = std::move(Clean);
}

void Solver::flush(CVarId V,
                   std::vector<std::pair<CVarId, CVarId>> &Candidates,
                   const PrecomputeSlot *Pre) {
  ++Stats.NumBatchesFlushed;
  // Swap the pending delta into the scratch set; V's delta inherits the
  // scratch's zeroed storage, so neither side reallocates on the next round.
  FlushScratch.clear();
  FlushScratch.swap(Delta[V]);
  ++DeltaEpoch[V];
  AdaptiveSet &Cur = FlushScratch;
  Stats.NumTokensPropagated += Cur.count();

  // Drop successor entries invalidated by collapsing before iterating.
  bool Stale = false;
  for (CVarId S : Succs[V])
    if (S == V || Parent[S] != S) {
      Stale = true;
      break;
    }
  if (Stale)
    canonicalizeSuccs(V);

  // Edges appended by listener callbacks during this flush receive the full
  // current set at addEdge time, so iterating the pre-flush successor count
  // is enough (the vector may still reallocate; index access stays valid).
  size_t NumSuccs = Succs[V].size();
  for (size_t I = 0; I < NumSuccs; ++I) {
    CVarId W = find(Succs[V][I]);
    if (W == V)
      continue;
    // A valid precomputed slot holds Cur \ PointsTo[W] as of the wave
    // snapshot. PointsTo[W] can only have grown since (collapses void the
    // slot), so unioning just those tokens adds exactly what the full
    // union would, returns the same change flag, and — because
    // all-duplicate word unions never touch storage on any tier — leaves
    // byte-identical sets and capacity accounting. Successor entries past
    // the slot's snapshot count (edges appended by listeners mid-wave)
    // take the full union.
    // Arrivals across this edge are attributed to the origin recorded when
    // the edge was added (0 when the edge predates recording or lost its
    // entry to a collapse).
    ProvOriginId EdgeOrigin = 0;
    if (Recording) {
      auto It = EdgeOrigins.find(edgeKey(V, W));
      if (It != EdgeOrigins.end())
        EdgeOrigin = It->second;
    }
    bool Changed;
    if (Pre && I < Pre->NumSuccs) {
      ++PStats.NumPrecomputedEdges;
      Changed = insertTokens(W, Pre->NewBits[I], V, EdgeOrigin);
    } else {
      Changed = insertTokens(W, Cur, V, EdgeOrigin);
    }
    // Lazy cycle detection (Hardekopf–Lin): a no-op propagation across an
    // edge whose endpoint sets are equal suggests a cycle. Each edge is
    // submitted to the (bounded) DFS at most once; the hash probe runs
    // before the set comparison so settled edges cost O(1) per flush.
    if (!Changed) {
      uint64_t Key = edgeKey(V, W);
      if (!CheckedEdges.contains(Key) && PointsTo[W] == PointsTo[V]) {
        CheckedEdges.insert(Key);
        Candidates.emplace_back(V, W);
      }
    }
  }

  // Deliver the batch to listeners. Index loops pick up listeners appended
  // during this flush too; their registration replay already covered Cur,
  // so the delivered-set check skips them. Most variables carry no
  // listeners; skip the token materialization outright for them.
  if (Listeners[V].empty())
    return;
  std::vector<uint32_t> Tokens = Cur.toVector();
  for (size_t I = 0; I < Listeners[V].size(); ++I) {
    // Handle copy: callbacks may reallocate the record vectors.
    std::shared_ptr<Listener> Fn = Listeners[V][I].Fn;
    // Derived constraints inherit the firing listener's group (so a
    // module's transitively generated edges/listeners retract with it) and
    // its origin (so provenance chains attribute them to the hint/model
    // that registered the listener).
    ConstraintGroup SavedGroup = CurGroup;
    ProvOriginId SavedOrigin = CurOrigin;
    CurGroup = Listeners[V][I].Group;
    CurOrigin = Listeners[V][I].Origin;
    for (uint32_t T : Tokens) {
      if (!Listeners[V][I].Delivered.insert(T))
        continue;
      (*Fn)(T);
    }
    CurGroup = SavedGroup;
    CurOrigin = SavedOrigin;
  }
}

void Solver::collapseCycle(CVarId From, CVarId To) {
  CVarId Target = find(From);
  CVarId Start = find(To);
  if (Target == Start)
    return; // Already merged by an earlier candidate.

  // Iterative DFS from Start over canonical successors, looking for an edge
  // back to Target (the edge Target -> Start closes the cycle). Succ order
  // is insertion order, so the search is deterministic.
  std::vector<std::pair<CVarId, size_t>> Stack;
  std::unordered_set<CVarId> Visited;
  Stack.push_back({Start, 0});
  Visited.insert(Start);
  bool Found = false;
  while (!Stack.empty()) {
    auto &Top = Stack.back();
    if (Top.second >= Succs[Top.first].size()) {
      Stack.pop_back();
      continue;
    }
    CVarId S = find(Succs[Top.first][Top.second++]);
    if (S == Target) {
      Found = true;
      break;
    }
    if (S == Top.first || !Visited.insert(S).second)
      continue;
    Stack.push_back({S, 0});
  }
  if (!Found)
    return;

  // The cycle is Target -> Start -> ... -> stack top -> Target. Merge all
  // members into the smallest id (deterministic representative choice).
  CVarId NewRep = Target;
  for (const auto &Entry : Stack)
    NewRep = std::min(NewRep, Entry.first);
  ++Stats.NumCyclesCollapsed;
  // Representatives are about to move: every precomputed slot of the
  // current wave (if one is committing) was computed against the old
  // union-find state and must fall back to the sequential path.
  WaveCollapsed = true;
  // Collapsing splices and dedups successor lists, so per-group edge logs
  // no longer name physical edges; every group's retraction is now unsound
  // and must fall back to a cold solve.
  if (Tracking)
    CollapsedWhileTracking = true;

  auto Merge = [this, NewRep](CVarId M) {
    if (M == NewRep)
      return;
    Parent[M] = NewRep;
    ++Stats.NumVarsMerged;
    // Re-key the member's arrival records onto the new representative so
    // provenance survives the merge. Arrivals are keyed (var << 32) | token,
    // so M's records form one contiguous range; NewRep is the cycle's
    // minimum id, so the re-keyed records land strictly below the range
    // being drained (emplace keeps an existing NewRep record — between two
    // first arrivals of one token the representative's wins, matching the
    // keep-first discipline everywhere else).
    if (Recording) {
      auto It = Arrivals.lower_bound(uint64_t(M) << 32);
      auto End = Arrivals.lower_bound((uint64_t(M) + 1) << 32);
      for (auto Cur = It; Cur != End; ++Cur)
        Arrivals.emplace(arrivalKey(NewRep, TokenId(Cur->first)),
                         Cur->second);
      Arrivals.erase(It, End);
    }
    PointsTo[NewRep].unionWith(PointsTo[M]);
    PointsTo[M].clear();
    Delta[M].clear(); // Subsumed by the full redelivery below.
    for (ListenerRecord &Rec : Listeners[M])
      Listeners[NewRep].push_back(std::move(Rec));
    Listeners[M].clear();
    Listeners[M].shrink_to_fit();
    for (CVarId S : Succs[M])
      Succs[NewRep].push_back(S);
    Succs[M].clear();
    Succs[M].shrink_to_fit();
  };
  Merge(Target);
  for (const auto &Entry : Stack)
    Merge(Entry.first);
  canonicalizeSuccs(NewRep);

  // Members' listeners and successors may not have seen tokens that arrived
  // at other members: redeliver the merged set once. Delivered-sets and
  // set unions make the redelivery a dedup-only pass.
  Delta[NewRep] = PointsTo[NewRep];
  ++DeltaEpoch[NewRep];
  if (!Delta[NewRep].empty())
    schedule(NewRep);
}

bool Solver::stepOne(std::vector<std::pair<CVarId, CVarId>> &Candidates) {
  if (Cancel && Cancel->expired()) {
    Cancelled = true;
    return false; // Pending deltas stay queued; extract() sees a partial
                  // fixpoint.
  }
  CVarId Popped = Worklist.front();
  Worklist.pop_front();
  InWorklist[Popped] = false;
  CVarId V = find(Popped);
  if (V != Popped) {
    // Collapsed while queued; its delta (if any) lives on in the rep.
    if (!Delta[V].empty())
      schedule(V);
    return true;
  }
  if (Delta[V].empty())
    return true;
  flush(V, Candidates);
  // Collapsing is deferred to here so no representative changes while a
  // flush is iterating its state.
  for (const auto &[A, B] : Candidates)
    collapseCycle(A, B);
  Candidates.clear();
  return true;
}

void Solver::precomputeSlot(CVarId Popped, PrecomputeSlot &Out) const {
  Out.Usable = false;
  CVarId V = findConst(Popped);
  if (V != Popped || Delta[V].empty())
    return; // The commit's merged-pop / empty-delta paths do no set work.
  const std::vector<CVarId> &Sv = Succs[V];
  // flush() canonicalizes a successor list holding merged entries before
  // iterating, which rewrites and reorders it — leave such pops to the
  // plain path. The bail also means every successor below is its own
  // representative, so no find() is needed per edge.
  for (CVarId S : Sv)
    if (S == V || Parent[S] != S)
      return;
  Out.V = V;
  Out.DeltaEpoch = DeltaEpoch[V];
  Out.NumSuccs = uint32_t(Sv.size());
  if (Out.NewBits.size() < Sv.size())
    Out.NewBits.resize(Sv.size());
  const AdaptiveSet &Cur = Delta[V];
  for (uint32_t I = 0; I != Out.NumSuccs; ++I) {
    AdaptiveSet &NB = Out.NewBits[I];
    NB.clear();
    // WordCursor keeps its scan position in itself: several threads may
    // subtract against the same successor's set concurrently.
    AdaptiveSet::WordCursor Have(PointsTo[Sv[I]]);
    Cur.forEachWord([&](uint32_t WordIdx, uint64_t Bits) {
      uint64_t Missing = Bits & ~Have.wordAt(WordIdx);
      if (Missing != 0)
        NB.orWord(WordIdx, Missing);
    });
  }
  Out.Usable = true;
}

bool Solver::solveWave(std::vector<std::pair<CVarId, CVarId>> &Candidates) {
  size_t N = Worklist.size();
  if (Slots.size() < N)
    Slots.resize(N);
  ++PStats.NumWaves;
  WaveCollapsed = false;

  // Parallel phase: strictly read-only on solver state; each worker writes
  // only its own slots. The parallelFor join is the wave barrier — every
  // slot write happens-before the commit below.
  if (!Pool && Jobs > 1 && N >= PoolMinWave)
    Pool = std::make_unique<WorkerPool>(Jobs - 1);
  auto Work = [this](size_t I) { precomputeSlot(Worklist[I], Slots[I]); };
  if (Pool && N >= PoolMinWave)
    Pool->parallelFor(N, Work);
  else
    for (size_t I = 0; I != N; ++I)
      Work(I);

  // Commit phase, single-threaded: exactly the sequential loop over the
  // first N pops. Nothing ever enters the worklist at the front, so those
  // pops are exactly the snapshot the slots were computed from; each slot
  // is used only while still valid (no collapse since the snapshot, the
  // source delta untouched by earlier commits of this wave).
  for (size_t I = 0; I != N; ++I) {
    if (Cancel && Cancel->expired()) {
      Cancelled = true;
      return false; // Uncommitted pops stay queued, like a sequential stop.
    }
    CVarId Popped = Worklist.front();
    Worklist.pop_front();
    InWorklist[Popped] = false;
    ++PStats.NumWavePops;
    CVarId V = find(Popped);
    if (V != Popped) {
      if (!Delta[V].empty())
        schedule(V);
      continue;
    }
    if (Delta[V].empty())
      continue;
    PrecomputeSlot &Slot = Slots[I];
    bool Valid = Slot.Usable && !WaveCollapsed && Slot.V == V &&
                 Slot.DeltaEpoch == DeltaEpoch[V];
    if (Slot.Usable && !Valid)
      ++PStats.NumStaleSlots;
    flush(V, Candidates, Valid ? &Slot : nullptr);
    for (const auto &[A, B] : Candidates)
      collapseCycle(A, B);
    Candidates.clear();
  }
  return true;
}

void Solver::solve() {
  if (Solving)
    return; // Re-entered from a listener; the outer loop drains all work.
  Solving = true;
  std::vector<std::pair<CVarId, CVarId>> Candidates;
  while (!Worklist.empty()) {
    if (Jobs > 1 && Worklist.size() >= MinWavePops) {
      if (!solveWave(Candidates))
        break;
      continue;
    }
    if (!stepOne(Candidates))
      break;
  }
  Solving = false;
}

void Solver::setGroup(ConstraintGroup G) {
  CurGroup = G;
  if (G != 0)
    Tracking = true;
}

bool Solver::canRetract(ConstraintGroup G) const {
  return Tracking && G != 0 && !Solving && !CollapsedWhileTracking &&
         TaintedGroups.count(G) == 0;
}

bool Solver::retractGroup(ConstraintGroup G) {
  if (!canRetract(G)) {
    ++Stats.NumRetractionRefusals;
    return false;
  }
  // Listeners: drop every record tagged G, wherever it lives. Removing a
  // listener is always exact — it only stops future deliveries; constraints
  // it already derived are tagged G and removed below / left as stale
  // over-approximation (tokens).
  for (size_t V = 0, E = Listeners.size(); V != E; ++V) {
    auto &Recs = Listeners[V];
    Recs.erase(std::remove_if(Recs.begin(), Recs.end(),
                              [G](const ListenerRecord &R) {
                                return R.Group == G;
                              }),
               Recs.end());
  }
  // Edges: the log holds (From, To) representatives at insert time, and no
  // collapse has happened since (checked above), so each names exactly one
  // live successor entry.
  auto LogIt = EdgeLog.find(G);
  if (LogIt != EdgeLog.end()) {
    for (auto [F, T] : LogIt->second) {
      auto &S = Succs[F];
      auto It = std::find(S.begin(), S.end(), T);
      if (It != S.end())
        S.erase(It);
      uint64_t Key = edgeKey(F, T);
      RemovedEdges.insert(Key);
      EdgeOwner.erase(Key);
    }
    EdgeLog.erase(LogIt);
  }
  // Tokens G propagated stay behind as extra may-facts: the post-retract
  // state over-approximates the fixpoint without G, never under-approximates
  // it (see the header contract).
  ++Stats.NumGroupRetractions;
  return true;
}

const AdaptiveSet &Solver::pointsTo(CVarId V) const {
  if (V >= Parent.size())
    return Empty;
  return PointsTo[findConst(V)];
}

const TokenArrival *Solver::arrival(CVarId V, TokenId T) const {
  if (V >= Parent.size())
    return nullptr;
  auto It = Arrivals.find(arrivalKey(findConst(V), T));
  return It == Arrivals.end() ? nullptr : &It->second;
}

const SolverStats &Solver::stats() {
  Stats.SetBytesLive = SetMem.LiveBytes;
  Stats.SetBytesPeak = SetMem.PeakBytes;
  Stats.SetTierPromotionsSparse = SetMem.PromotionsToSparse;
  Stats.SetTierPromotionsDense = SetMem.PromotionsToDense;
  Stats.SetsSmall = Stats.SetsSparse = Stats.SetsDense = 0;
  // Histogram over non-empty representative points-to sets only: ensure()
  // pre-allocates spare slots geometrically, and merged members' sets are
  // cleared on collapse — counting either would inflate the small tier.
  for (size_t I = 0, E = Parent.size(); I != E; ++I) {
    if (Parent[I] != CVarId(I))
      continue;
    const AdaptiveSet &S = PointsTo[I];
    if (S.empty())
      continue;
    switch (S.tier()) {
    case AdaptiveSet::Tier::Small:
      ++Stats.SetsSmall;
      break;
    case AdaptiveSet::Tier::Sparse:
      ++Stats.SetsSparse;
      break;
    case AdaptiveSet::Tier::Dense:
      ++Stats.SetsDense;
      break;
    }
  }
  return Stats;
}
