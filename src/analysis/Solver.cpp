//===- Solver.cpp ---------------------------------------------------------===//

#include "analysis/Solver.h"

using namespace jsai;

void Solver::ensure(CVarId V) {
  if (V >= PointsTo.size()) {
    PointsTo.resize(V + 1);
    Succs.resize(V + 1);
    Listeners.resize(V + 1);
  }
}

void Solver::addToken(CVarId V, TokenId T) {
  ensure(V);
  if (!PointsTo[V].insert(T))
    return;
  Pending.emplace_back(V, T);
}

void Solver::addEdge(CVarId From, CVarId To) {
  if (From == To)
    return;
  ensure(From);
  ensure(To);
  // Duplicate edges are common (one per resolved token); a linear scan of
  // the successor list is cheap at our fan-outs and keeps memory tight.
  for (CVarId Existing : Succs[From])
    if (Existing == To)
      return;
  Succs[From].push_back(To);
  ++Stats.NumEdges;
  // Flush already-known tokens across the new edge. Copy first: addToken may
  // grow the PointsTo vector and move the set being iterated.
  std::vector<uint32_t> Known = PointsTo[From].toVector();
  for (uint32_t T : Known)
    addToken(To, T);
}

void Solver::addListener(CVarId V, Listener L) {
  ensure(V);
  ++Stats.NumListeners;
  // Replay current tokens, then subscribe for future ones. Copy first: the
  // listener may allocate new variables and move the PointsTo storage.
  std::vector<uint32_t> Known = PointsTo[V].toVector();
  Listeners[V].push_back(L); // Keep a local copy: the callback may append
                             // to this listener list and reallocate it.
  for (uint32_t T : Known)
    L(T);
}

void Solver::solve() {
  // Listeners may re-enter via addEdge/addToken/addListener; the FIFO queue
  // serializes all work.
  while (!Pending.empty()) {
    auto [V, T] = Pending.front();
    Pending.pop_front();
    ++Stats.NumTokensPropagated;
    // Successor lists and listener lists may grow while we iterate;
    // index-based loops pick up appended entries for *this* delta too.
    for (size_t I = 0; I < Succs[V].size(); ++I)
      addToken(Succs[V][I], T);
    for (size_t I = 0; I < Listeners[V].size(); ++I)
      Listeners[V][I](T);
  }
}

const BitSet &Solver::pointsTo(CVarId V) const {
  if (V >= PointsTo.size())
    return Empty;
  return PointsTo[V];
}
