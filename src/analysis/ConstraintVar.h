//===- ConstraintVar.h - Constraint variables -------------------*- C++ -*-===//
///
/// \file
/// Constraint variables of the subset analysis (the paper's [[E]] and
/// [[t.p]]). Kinds:
///
///  - Expr:   [[E]] for an expression node;
///  - Decl:   one variable per declaration (flow-insensitive);
///  - Prop:   [[t.p]] for token t and property name p (created lazily);
///  - Ret:    the return-value variable of a function ([[E_t]]);
///  - This:   the receiver variable of a function;
///  - Global: an unresolved global name (shared program-wide).
///
/// Ids are dense; the factory notifies an observer when a Prop variable is
/// created so property-copy summaries (Object.assign) and the
/// over-approximating ablation can attach edges to future properties.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_ANALYSIS_CONSTRAINTVAR_H
#define JSAI_ANALYSIS_CONSTRAINTVAR_H

#include "analysis/Token.h"

#include <functional>

namespace jsai {

/// Dense constraint-variable id.
using CVarId = uint32_t;

/// One constraint variable.
struct CVar {
  enum class Kind : uint8_t { Expr, Decl, Prop, Ret, This, Global };
  Kind K;
  uint32_t A; ///< NodeId / VarId / TokenId / FunctionId / Symbol.
  uint32_t B; ///< Property Symbol for Prop vars.
};

/// Interns constraint variables.
class CVarFactory {
public:
  // Pre-size the intern table: every analysis creates thousands of vars,
  // and interning is the hottest analysis-side path (one lookup per AST
  // node visit), so incremental rehashing shows up in profiles.
  CVarFactory() { Index.reserve(4096); }

  /// Called with (Token, PropertySymbol, NewVar) whenever a Prop variable is
  /// first created.
  using PropVarHook = std::function<void(TokenId, Symbol, CVarId)>;

  CVarId exprVar(NodeId N) { return get(CVar::Kind::Expr, N, 0); }
  CVarId declVar(VarId V) { return get(CVar::Kind::Decl, V, 0); }
  CVarId retVar(FunctionId F) { return get(CVar::Kind::Ret, F, 0); }
  CVarId thisVar(FunctionId F) { return get(CVar::Kind::This, F, 0); }
  CVarId globalVar(Symbol S) { return get(CVar::Kind::Global, S, 0); }
  CVarId propVar(TokenId T, Symbol P);

  /// Property variables of \p T created so far, in creation order.
  const std::vector<std::pair<Symbol, CVarId>> &propsOf(TokenId T);

  void setPropVarHook(PropVarHook Hook) { OnPropVar = std::move(Hook); }

  const CVar &var(CVarId Id) const { return Vars[Id]; }
  size_t size() const { return Vars.size(); }

private:
  CVarId get(CVar::Kind K, uint32_t A, uint32_t B);

  std::vector<CVar> Vars;
  std::unordered_map<uint64_t, CVarId> Index;
  std::unordered_map<TokenId, std::vector<std::pair<Symbol, CVarId>>> Props;
  std::vector<std::pair<Symbol, CVarId>> EmptyProps;
  PropVarHook OnPropVar;
};

} // namespace jsai

#endif // JSAI_ANALYSIS_CONSTRAINTVAR_H
