//===- Solver.h - Subset-constraint propagation engine ----------*- C++ -*-===//
///
/// \file
/// The propagation core of the points-to analysis: dense points-to sets
/// (BitSet of TokenIds) per constraint variable, subset edges, and
/// listeners. Listeners implement the "complex" constraints (property
/// accesses, calls, builtin models): they run once per (variable, token)
/// pair — for tokens already present at registration time and for every
/// token that arrives later — so constraint generation is fully on-the-fly.
///
/// Propagation is a FIFO worklist of (variable, token) deltas; all iteration
/// orders are index-based, so solving is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_ANALYSIS_SOLVER_H
#define JSAI_ANALYSIS_SOLVER_H

#include "analysis/ConstraintVar.h"
#include "support/BitSet.h"

#include <deque>
#include <functional>

namespace jsai {

/// Statistics for the evaluation section (analysis cost).
struct SolverStats {
  uint64_t NumTokensPropagated = 0;
  uint64_t NumEdges = 0;
  uint64_t NumListeners = 0;
};

/// Subset-constraint solver.
class Solver {
public:
  using Listener = std::function<void(TokenId)>;

  /// Adds t to [[V]]; schedules propagation.
  void addToken(CVarId V, TokenId T);

  /// Adds the subset edge [[From]] subseteq [[To]].
  void addEdge(CVarId From, CVarId To);

  /// Registers \p L on \p V: runs for every current and future token.
  ///
  /// Contract: listeners must be IDEMPOTENT per (variable, token) pair —
  /// when registration replay races with queued deltas, a listener may
  /// observe the same token twice. All built-in effects (addToken, addEdge,
  /// call-edge set insertion) satisfy this naturally.
  void addListener(CVarId V, Listener L);

  /// Runs propagation to a fixpoint.
  void solve();

  const BitSet &pointsTo(CVarId V) const;
  const SolverStats &stats() const { return Stats; }

private:
  void ensure(CVarId V);

  std::vector<BitSet> PointsTo;
  std::vector<std::vector<CVarId>> Succs;
  std::vector<std::vector<Listener>> Listeners;
  std::deque<std::pair<CVarId, TokenId>> Pending;
  SolverStats Stats;
  BitSet Empty;
  bool Solving = false;
};

} // namespace jsai

#endif // JSAI_ANALYSIS_SOLVER_H
